# Empty dependencies file for bench_ablation_offsetting.
# This may be replaced when dependencies are built.
