/**
 * @file
 * Clang thread-safety-analysis capability annotations.
 *
 * The concurrent Shared UTLB-Cache (per-set seqlocks under striped
 * spinlocks), the driver's ioctl mutex, and the pin manager's opt-in
 * mutex each follow a locking discipline that used to live only in
 * comments. These macros turn that discipline into compiler-checked
 * attributes: under clang with `-Wthread-safety` (the
 * `UTLB_THREAD_SAFETY=ON` CMake option) every guarded field access
 * and every capability-requiring call is verified statically; under
 * any other compiler they expand to nothing and the code is exactly
 * what it was.
 *
 * Naming follows the "modern" capability spelling of the clang
 * documentation (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html):
 *
 *  - UTLB_CAPABILITY / UTLB_SCOPED_CAPABILITY mark lock classes and
 *    their RAII holders (sim::Spinlock + sim::SpinGuard, sim::Mutex +
 *    sim::LockGuard);
 *  - UTLB_GUARDED_BY(mu) on a field requires mu to be held for every
 *    access;
 *  - UTLB_REQUIRES(mu) on a function makes "caller already holds mu"
 *    part of its checked signature;
 *  - UTLB_ACQUIRE / UTLB_RELEASE / UTLB_TRY_ACQUIRE annotate the
 *    lock primitives themselves;
 *  - UTLB_NO_THREAD_SAFETY_ANALYSIS opts a function out — used only
 *    for the documented quiescent-only accessors (stats, audit,
 *    pageTable, ...) whose safety argument is "no worker is running",
 *    which no static analysis can see. Every use carries a comment
 *    saying so.
 *
 * What the analysis cannot express (seqlock read-section purity,
 * shard-only stat mutation in `*MT` methods, the memory-order
 * allowlist, "every lock() is scoped") is enforced by the companion
 * lint, scripts/concurrency_lint.py — see docs/checking.md.
 */

#ifndef UTLB_SIM_ANNOTATIONS_HPP
#define UTLB_SIM_ANNOTATIONS_HPP

#if defined(__clang__) && !defined(UTLB_NO_THREAD_SAFETY_ATTRIBUTES)
#define UTLB_TSA_ATTR(x) __attribute__((x))
#else
#define UTLB_TSA_ATTR(x) // no-op: GCC and MSVC have no analysis
#endif

/** Marks a class as a lockable capability (a mutex-like thing). */
#define UTLB_CAPABILITY(x) UTLB_TSA_ATTR(capability(x))

/** Marks an RAII class that acquires in its ctor, releases in dtor. */
#define UTLB_SCOPED_CAPABILITY UTLB_TSA_ATTR(scoped_lockable)

/** Field may only be accessed while holding capability @p x. */
#define UTLB_GUARDED_BY(x) UTLB_TSA_ATTR(guarded_by(x))

/** Pointer field whose *pointee* is guarded by capability @p x. */
#define UTLB_PT_GUARDED_BY(x) UTLB_TSA_ATTR(pt_guarded_by(x))

/** Caller must hold the listed capabilities (exclusively). */
#define UTLB_REQUIRES(...) \
    UTLB_TSA_ATTR(requires_capability(__VA_ARGS__))

/** Caller must hold the listed capabilities (at least shared). */
#define UTLB_REQUIRES_SHARED(...) \
    UTLB_TSA_ATTR(requires_shared_capability(__VA_ARGS__))

/** Function acquires the capability (and does not release it). */
#define UTLB_ACQUIRE(...) UTLB_TSA_ATTR(acquire_capability(__VA_ARGS__))

/** Function releases the capability. */
#define UTLB_RELEASE(...) UTLB_TSA_ATTR(release_capability(__VA_ARGS__))

/** Function acquires the capability iff it returns @p result. */
#define UTLB_TRY_ACQUIRE(...) \
    UTLB_TSA_ATTR(try_acquire_capability(__VA_ARGS__))

/** Caller must NOT hold the listed capabilities (anti-deadlock). */
#define UTLB_EXCLUDES(...) UTLB_TSA_ATTR(locks_excluded(__VA_ARGS__))

/** Runtime-checked claim that the capability is already held. */
#define UTLB_ASSERT_CAPABILITY(x) UTLB_TSA_ATTR(assert_capability(x))

/** Function returns a reference to the named capability. */
#define UTLB_RETURN_CAPABILITY(x) UTLB_TSA_ATTR(lock_returned(x))

/**
 * Opt a function out of the analysis. Reserved for quiescent-only
 * accessors and conditional-locking helpers whose correctness
 * argument is temporal ("no worker is in flight"), not lexical;
 * every use must say which in a comment.
 */
#define UTLB_NO_THREAD_SAFETY_ANALYSIS \
    UTLB_TSA_ATTR(no_thread_safety_analysis)

#endif // UTLB_SIM_ANNOTATIONS_HPP
