# Empty dependencies file for bench_fig8_prefetch.
# This may be replaced when dependencies are built.
