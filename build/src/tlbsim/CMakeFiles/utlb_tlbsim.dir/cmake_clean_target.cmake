file(REMOVE_RECURSE
  "libutlb_tlbsim.a"
)
