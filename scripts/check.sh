#!/bin/sh
# Full correctness sweep: sanitizer build + tests, a self-checking
# simulator run, clang-tidy, and a format lint of changed files.
# Stages whose tools are missing are skipped with a notice; every
# stage that runs must pass. Usage: scripts/check.sh [build-dir]
set -e
cd "$(dirname "$0")/.."
BUILD="${1:-build-check}"

step() { printf '\n=== %s ===\n' "$*"; }
skip() { printf 'SKIP: %s\n' "$*"; }

# --- Stage 1: build under ASan+UBSan at full check level ------------
step "sanitizer build (address,undefined; UTLB_CHECK_LEVEL=full)"
cmake -B "$BUILD" -G Ninja \
    -DUTLB_SANITIZE=address,undefined \
    -DUTLB_CHECK_LEVEL=full \
    -DUTLB_WERROR=ON > /dev/null
cmake --build "$BUILD"

# --- Stage 2: the whole test suite under the sanitizers -------------
step "ctest under sanitizers"
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

# --- Stage 3: a self-auditing simulator run -------------------------
# Periodic invariant sweeps over the live translation stack; any
# violation aborts (and the sanitizers watch the whole replay).
step "tlbsim --audit-every sweep"
"$BUILD"/src/tlbsim/tlbsim water --entries 1024 --memlimit 512 \
    --audit-every 500 > /dev/null
"$BUILD"/src/tlbsim/tlbsim --synthetic hotcold --entries 256 \
    --memlimit 128 --audit-every 250 > /dev/null
echo "audit sweeps clean"

# --- Stage 4: clang-tidy --------------------------------------------
step "clang-tidy"
if command -v clang-tidy > /dev/null 2>&1; then
    if command -v run-clang-tidy > /dev/null 2>&1; then
        run-clang-tidy -p "$BUILD" -quiet "src/.*\.cpp$"
    else
        find src -name '*.cpp' -print0 \
            | xargs -0 clang-tidy -p "$BUILD" --quiet
    fi
else
    skip "clang-tidy not installed"
fi

# --- Stage 5: format lint of changed files --------------------------
# Only files touched relative to HEAD (plus untracked sources) are
# checked; the tree is never mass-reformatted.
step "clang-format lint (changed files only)"
if command -v clang-format > /dev/null 2>&1; then
    CHANGED=$( { git diff --name-only HEAD; \
                 git ls-files --others --exclude-standard; } \
               | grep -E '\.(cpp|hpp)$' | sort -u || true)
    if [ -z "$CHANGED" ]; then
        echo "no changed C++ files"
    else
        echo "$CHANGED" | xargs clang-format --dry-run -Werror
    fi
else
    skip "clang-format not installed"
fi

printf '\nAll checks passed.\n'
