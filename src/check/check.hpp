/**
 * @file
 * Leveled runtime assertion macros and the structured failure
 * handler.
 *
 * Check levels (selected at compile time with -DUTLB_CHECK_LEVEL):
 *
 *   0 (off)   — both macros compile to nothing;
 *   1 (cheap) — UTLB_ASSERT is live: O(1) preconditions on hot paths;
 *   2 (full)  — UTLB_INVARIANT is also live: whole-structure scans
 *               and cross-structure consistency sweeps.
 *
 * The CMake cache variable UTLB_CHECK_LEVEL (off/cheap/full, default
 * cheap) sets the macro for the whole tree.
 *
 * On failure the handler prints a structured diagnostic — the failing
 * expression, file:line, and whatever context has been registered
 * (component name, process id, and the event-queue time source) —
 * then aborts, so a debugger or a sanitizer run stops at the exact
 * corruption site. Tests that deliberately trip assertions can
 * install a throwing handler with setFailureHandler().
 */

#ifndef UTLB_CHECK_CHECK_HPP
#define UTLB_CHECK_CHECK_HPP

#include <cstdint>
#include <functional>
#include <string>

#ifndef UTLB_CHECK_LEVEL
#define UTLB_CHECK_LEVEL 1
#endif

namespace utlb::check {

/** Everything the failure handler knows about a failed check. */
struct Failure {
    const char *expr;       //!< the asserted expression, verbatim
    const char *file;
    int line;
    std::string message;    //!< formatted user message (may be empty)
    std::string component;  //!< innermost ScopedContext component
    std::uint64_t pid;      //!< process id from context (or ~0)
    std::uint64_t time;     //!< event-queue time (or 0 if no source)
    bool hasTime;           //!< a time source was registered
};

/** Sentinel pid for "no process in context". */
inline constexpr std::uint64_t kNoPid = ~std::uint64_t{0};

/**
 * Register the simulation clock so failure reports carry the
 * event-queue time. Pass nullptr to unregister.
 */
void setTimeSource(std::function<std::uint64_t()> source);

/**
 * Replace the default print-and-abort failure handler (tests use a
 * throwing handler to observe deliberate violations). Pass nullptr
 * to restore the default. If a custom handler returns, the process
 * aborts anyway: a failed UTLB_ASSERT must not fall through into
 * code whose preconditions no longer hold.
 */
void setFailureHandler(std::function<void(const Failure &)> handler);

/**
 * RAII context describing what the current code is operating on;
 * nested scopes shadow outer ones. The innermost component/pid is
 * reported by the failure handler.
 */
class ScopedContext
{
  public:
    explicit ScopedContext(const char *component,
                           std::uint64_t pid = kNoPid);
    ~ScopedContext();

    ScopedContext(const ScopedContext &) = delete;
    ScopedContext &operator=(const ScopedContext &) = delete;

  private:
    const char *prevComponent;
    std::uint64_t prevPid;
};

/** [internal] Invoked by the macros; never returns. */
[[noreturn]] void failCheck(const char *expr, const char *file,
                            int line, const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/** [internal] Message-less overload for bare UTLB_ASSERT(cond). */
[[noreturn]] void failCheck(const char *expr, const char *file,
                            int line);

} // namespace utlb::check

/**
 * UTLB_ASSERT(cond, ...) — cheap precondition, live at check level
 * >= 1. Optional printf-style message after the condition.
 */
#if UTLB_CHECK_LEVEL >= 1
#define UTLB_ASSERT(cond, ...)                                        \
    do {                                                              \
        if (!(cond)) {                                                \
            ::utlb::check::failCheck(#cond, __FILE__,                 \
                                     __LINE__ __VA_OPT__(, )          \
                                     __VA_ARGS__);                    \
        }                                                             \
    } while (0)
#else
#define UTLB_ASSERT(cond, ...) do { } while (0)
#endif

/**
 * UTLB_INVARIANT(cond, ...) — expensive whole-structure invariant,
 * live only at check level 2 (full).
 */
#if UTLB_CHECK_LEVEL >= 2
#define UTLB_INVARIANT(cond, ...)                                     \
    do {                                                              \
        if (!(cond)) {                                                \
            ::utlb::check::failCheck(#cond, __FILE__,                 \
                                     __LINE__ __VA_OPT__(, )          \
                                     __VA_ARGS__);                    \
        }                                                             \
    } while (0)
#else
#define UTLB_INVARIANT(cond, ...) do { } while (0)
#endif

#endif // UTLB_CHECK_CHECK_HPP
