file(REMOVE_RECURSE
  "../bench/bench_table5_limited_memory"
  "../bench/bench_table5_limited_memory.pdb"
  "CMakeFiles/bench_table5_limited_memory.dir/bench_table5_limited_memory.cpp.o"
  "CMakeFiles/bench_table5_limited_memory.dir/bench_table5_limited_memory.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_limited_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
