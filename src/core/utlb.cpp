#include "core/utlb.hpp"

#include "sim/log.hpp"

namespace utlb::core {

using mem::Vpn;

UserUtlb::UserUtlb(UtlbDriver &drv, SharedUtlbCache &cache,
                   const nic::NicTimings &t, mem::ProcId pid,
                   const UtlbConfig &config)
    : driver(&drv), nicCache(&cache), timings(&t), procId(pid),
      cfg(config), pinMgr(drv, pid, config.pin),
      statsGrp("proc" + std::to_string(pid))
{
    if (cfg.prefetchEntries == 0)
        sim::fatal("prefetchEntries must be >= 1");
    statsGrp.adopt(pinMgr.stats());
    if (cfg.concurrent) {
        nicCache->enableConcurrent();
        pinMgr.enableConcurrent();
        shard.emplace(nicCache->makeShard());
    }
}

UserUtlb::~UserUtlb()
{
    flushShardStats();
}

void
UserUtlb::flushShardStats()
{
    if (shard)
        nicCache->absorbShard(*shard);
}

EnsureResult
UserUtlb::prepare(mem::VirtAddr va, std::size_t nbytes)
{
    Vpn start = mem::pageOf(va);
    std::size_t npages = mem::pagesSpanned(va, nbytes);
    if (npages == 0)
        return EnsureResult{};
    return pinMgr.ensurePinned(start, npages);
}

NicLookup
UserUtlb::nicTranslate(Vpn vpn)
{
    NicLookup out = nicTranslateImpl(vpn);
    statTranslateLatency.sample(sim::ticksToUs(out.cost));
    return out;
}

NicLookup
UserUtlb::nicTranslateImpl(Vpn vpn)
{
    NicLookup out;
    CacheProbe probe = shard ? nicCache->lookupMT(procId, vpn, *shard)
                             : nicCache->lookup(procId, vpn);
    out.cost += probe.cost;
    if (tracer)
        tracer->complete("cache.probe", "nic", procId, probe.cost,
                         {{"vpn", vpn}, {"hit", probe.hit ? 1u : 0u}});
    if (probe.hit) {
        out.pfn = probe.pfn;
        return out;
    }

    out.miss = true;
    ++statMisses;
    HostPageTable &table = driver->pageTable(procId);
    table.readRun(vpn, cfg.prefetchEntries, runBuf);
    auto &run = runBuf;

    if (run.empty() || !run[0]) {
        // The page is not pinned: only reachable when the host-side
        // prepare() was bypassed. Fall back to interrupting the host
        // (§3.1), pinning on the NIC's behalf.
        out.fault = true;
        ++statFaults;
        sim::Tick faultCost = timings->interruptCost;
        IoctlResult io = driver->ioctlPinAndInstall(procId, vpn, 1);
        faultCost += io.cost;
        out.cost += faultCost;
        if (tracer)
            tracer->complete("pin.ioctl", "nic", procId, faultCost,
                             {{"vpn", vpn},
                              {"ok", io.status == mem::PinStatus::Ok
                                         ? 1u
                                         : 0u}});
        if (io.status != mem::PinStatus::Ok) {
            out.pfn = driver->garbageFrame();
            return out;
        }
        // The host pinned exactly one page for us; fetch that single
        // repaired entry rather than re-charging a full prefetch-width
        // DMA for neighbours we already know are absent.
        table.readRun(vpn, 1, runBuf);
    }

    // Install the missing entry plus any valid prefetched neighbours
    // ("in order for prefetching to work well, translations for
    // contiguous application pages must be available", §6.4). Only
    // run[0] answers a real reference; neighbours are speculative and
    // must not perturb LRU order when they merely refresh a resident
    // line.
    std::size_t installed = 0;
    for (std::size_t i = 0; i < run.size(); ++i) {
        if (!run[i])
            continue;
        InsertMode mode =
            i == 0 ? InsertMode::Demand : InsertMode::Prefetch;
        if (shard)
            nicCache->insertMT(procId, vpn + i, *run[i], mode, *shard);
        else
            nicCache->insert(procId, vpn + i, *run[i], mode);
        if (i != 0)
            ++statPrefetchInstalls;
        ++installed;
    }
    out.fetched = installed;
    // An empty run means the table gave us nothing to DMA: charge the
    // single directory reference that discovered that, not a
    // full-width fetch of entries that were never transferred.
    sim::Tick fetchCost = run.empty()
        ? timings->directoryRefCost
        : timings->missHandleCost(run.size());
    out.cost += fetchCost;
    if (tracer) {
        tracer->complete("table.dma_read", "nic", procId, fetchCost,
                         {{"vpn", vpn}, {"width", run.size()}});
        tracer->instant("cache.install", "nic", procId,
                        {{"vpn", vpn}, {"installed", installed}});
    }
    if (installed == 0 || !run[0]) {
        out.pfn = driver->garbageFrame();
        return out;
    }
    out.pfn = *run[0];
    return out;
}

namespace {

/** Copy an EnsureResult's accounting into a Translation. */
void
fillHostHalf(Translation &tr, const EnsureResult &host)
{
    tr.hostCost = host.cost;
    tr.pinCost = host.pinCost;
    tr.unpinCost = host.unpinCost;
    tr.pinIoctls = host.pinIoctls;
    tr.unpinIoctls = host.unpinIoctls;
    tr.checkMiss = host.checkMiss;
    tr.pagesPinned = host.pagesPinned;
    tr.pagesUnpinned = host.pagesUnpinned;
    tr.ok = host.ok;
}

} // namespace

Translation
UserUtlb::translate(mem::VirtAddr va, std::size_t nbytes)
{
    Translation tr;
    std::size_t npages = mem::pagesSpanned(va, nbytes);
    if (npages == 0)
        return tr;

    EnsureResult host = prepare(va, nbytes);
    fillHostHalf(tr, host);
    if (!host.ok)
        return tr;

    Vpn start = mem::pageOf(va);
    tr.pageAddrs.reserve(npages);
    for (std::size_t i = 0; i < npages; ++i) {
        NicLookup nl = nicTranslate(start + i);
        tr.nicCost += nl.cost;
        if (nl.miss) {
            ++tr.niMisses;
            tr.missPages.push_back(static_cast<std::uint32_t>(i));
        }
        if (nl.fault)
            ++tr.faults;
        tr.pageAddrs.push_back(mem::frameAddr(nl.pfn));
    }
    return tr;
}

Translation
UserUtlb::translateRange(mem::VirtAddr va, std::size_t nbytes)
{
    Translation tr;
    std::size_t npages = mem::pagesSpanned(va, nbytes);
    if (npages == 0)
        return tr;

    Vpn start = mem::pageOf(va);
    EnsureResult host = pinMgr.ensurePinnedRange(start, npages);
    fillHostHalf(tr, host);
    if (!host.ok)
        return tr;

    // The batched walk needs every hit to cost the same single probe
    // (direct-mapped) and emits no per-page trace events; otherwise
    // run the exact page-at-a-time loop.
    if (tracer != nullptr || nicCache->assoc() != 1) {
        tr.pageAddrs.reserve(npages);
        for (std::size_t i = 0; i < npages; ++i) {
            NicLookup nl = nicTranslate(start + i);
            tr.nicCost += nl.cost;
            if (nl.miss) {
                ++tr.niMisses;
                tr.missPages.push_back(static_cast<std::uint32_t>(i));
            }
            if (nl.fault)
                ++tr.faults;
            tr.pageAddrs.push_back(mem::frameAddr(nl.pfn));
        }
        return tr;
    }

    tr.pageAddrs.resize(npages);
    // Pfn and PhysAddr are the same 64-bit type: collect pfns in
    // place, then convert to frame addresses in one pass at the end.
    mem::Pfn *slots = tr.pageAddrs.data();

    std::size_t i = 0;
    CacheProbe fast;
    bool l0Hit = shard
        ? nicCache->hitViaRefMT(l0, procId, start, fast, *shard)
        : nicCache->hitViaRef(l0, procId, start, fast);
    if (l0Hit) {
        // Same first page as a recent call: the L0 handle revalidated,
        // recorded the hit, and spared us the cache probe.
        statTranslateLatency.sample(sim::ticksToUs(fast.cost));
        tr.nicCost += fast.cost;
        slots[0] = fast.pfn;
        i = 1;
    }

    while (i < npages) {
        SharedUtlbCache::LineRef *ref = i == 0 ? &l0 : nullptr;
        RunHits run = shard
            ? nicCache->lookupRunMT(procId, start + i, npages - i,
                                    slots + i, ref, *shard)
            : nicCache->lookupRun(procId, start + i, npages - i,
                                  slots + i, ref);
        if (run.hits > 0) {
            // Every hit in the run has the same modeled latency;
            // sampleN folds them without perturbing the histogram.
            statTranslateLatency.sampleN(sim::ticksToUs(run.perHitCost),
                                         run.hits);
            tr.nicCost += run.cost;
            i += run.hits;
            continue;
        }
        // First page of the window misses: take the one-page miss
        // path (its prefetch-width DMA install refills the cache, so
        // a stretch of contiguous misses costs one wide fetch per
        // prefetchEntries pages, not one per page).
        NicLookup nl = nicTranslate(start + i);
        tr.nicCost += nl.cost;
        ++tr.niMisses;
        tr.missPages.push_back(static_cast<std::uint32_t>(i));
        if (nl.fault)
            ++tr.faults;
        slots[i] = nl.pfn;
        ++i;
    }

    for (std::size_t p = 0; p < npages; ++p)
        slots[p] = mem::frameAddr(slots[p]);
    return tr;
}

} // namespace utlb::core
