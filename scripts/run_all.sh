#!/bin/sh
# Build, test, and regenerate every table/figure in one shot.
# Usage: scripts/run_all.sh [build-dir]
set -e
BUILD="${1:-build}"
cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure
for b in "$BUILD"/bench/*; do
    echo "===== $b ====="
    "$b"
    echo
done
