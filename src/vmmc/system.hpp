/**
 * @file
 * A whole simulated cluster: event queue, network, and nodes.
 *
 * Convenience wrapper that wires VmmcNodes onto one Network and one
 * EventQueue, mirroring the paper's testbed (a Myrinet switch with
 * PC nodes hanging off it).
 */

#ifndef UTLB_VMMC_SYSTEM_HPP
#define UTLB_VMMC_SYSTEM_HPP

#include <memory>
#include <vector>

#include "net/network.hpp"
#include "nic/timing.hpp"
#include "sim/event_queue.hpp"
#include "vmmc/node.hpp"

namespace utlb::vmmc {

/** Cluster-level configuration. */
struct ClusterConfig {
    std::size_t nodes = 2;
    NodeConfig node{};
    double lossProbability = 0.0;
    std::uint64_t seed = 0xfeedface;
};

/** A simulated VMMC cluster. */
class Cluster
{
  public:
    explicit Cluster(const ClusterConfig &cfg = {});

    ~Cluster();

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    /** Run every node's invariant auditor plus the event queue's. */
    void audit(check::AuditReport &report) const;

    std::size_t size() const { return nodeList.size(); }
    VmmcNode &node(net::NodeId id) { return *nodeList.at(id); }
    sim::EventQueue &clock() { return events; }
    net::Network &network() { return net; }
    const nic::NicTimings &timings() const { return nicTimings; }

    /** Run the event queue until it drains. @return final time. */
    sim::Tick run() { return events.run(); }

    /** Run events up to @p horizon ticks. */
    void runFor(sim::Tick horizon)
    {
        events.runUntil(events.now() + horizon);
    }

  private:
    sim::EventQueue events;
    nic::NicTimings nicTimings;
    net::Network net;
    std::vector<std::unique_ptr<VmmcNode>> nodeList;
};

} // namespace utlb::vmmc

#endif // UTLB_VMMC_SYSTEM_HPP
