/**
 * @file
 * Multiprogramming stress: several processes per node, concurrent
 * bidirectional traffic, shared NIC cache and SRAM, randomized
 * schedules — verifying end-to-end data integrity and cross-layer
 * invariants under contention.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "mem/page.hpp"
#include "sim/random.hpp"
#include "vmmc/system.hpp"

namespace {

using namespace utlb::vmmc;
using utlb::mem::addrOf;
using utlb::mem::kPageSize;
using utlb::mem::ProcId;
using utlb::mem::VirtAddr;
using utlb::sim::Rng;

std::vector<std::uint8_t>
stamp(std::size_t n, std::uint32_t tag)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(tag * 131 + i * 7);
    return v;
}

TEST(Multiprog, FourProcessesPerNodeBidirectionalIntegrity)
{
    ClusterConfig cfg;
    cfg.nodes = 2;
    cfg.node.cache = {512, 1, true};  // small: heavy sharing
    cfg.node.memoryFrames = 16384;
    Cluster cluster(cfg);
    auto &a = cluster.node(0);
    auto &b = cluster.node(1);

    constexpr int kProcsPerNode = 4;
    constexpr std::size_t kRegionPages = 32;

    // Every process on each node exports a region; every process on
    // the other node imports all of them.
    struct Link {
        VmmcNode *from;
        ProcId fromPid;
        VmmcNode *to;
        ProcId toPid;
        ImportSlot slot;
    };
    std::vector<Link> links;

    for (int p = 0; p < kProcsPerNode; ++p) {
        a.createProcess(10 + p);
        b.createProcess(20 + p);
    }
    std::map<ProcId, ExportId> a_exports, b_exports;
    for (int p = 0; p < kProcsPerNode; ++p) {
        a_exports[10 + p] = *a.exportBuffer(
            10 + p, addrOf(1000), kRegionPages * kPageSize);
        b_exports[20 + p] = *b.exportBuffer(
            20 + p, addrOf(1000), kRegionPages * kPageSize);
    }
    for (int s = 0; s < kProcsPerNode; ++s) {
        for (int d = 0; d < kProcsPerNode; ++d) {
            links.push_back({&a, static_cast<ProcId>(10 + s), &b,
                             static_cast<ProcId>(20 + d),
                             a.importBuffer(10 + s, 1,
                                            b_exports[20 + d])});
            links.push_back({&b, static_cast<ProcId>(20 + s), &a,
                             static_cast<ProcId>(10 + d),
                             b.importBuffer(20 + s, 0,
                                            a_exports[10 + d])});
        }
    }

    // Randomized traffic: each op writes a stamped page into a slot
    // of the destination region reserved for (sender, receiver), so
    // concurrent transfers never collide and all are verifiable.
    Rng rng(99);
    struct Expect {
        VmmcNode *node;
        ProcId pid;
        std::uint64_t offset;
        std::uint32_t tag;
    };
    std::vector<Expect> expectations;
    std::uint32_t tag = 1;
    for (int round = 0; round < 60; ++round) {
        const Link &link = links[rng.below(links.size())];
        std::uint64_t offset =
            ((link.fromPid % 4) * 4 + (link.toPid % 4))
            * 2 * kPageSize;
        VirtAddr src = addrOf(4000 + tag);
        link.from->space(link.fromPid)
            .writeBytes(src, stamp(kPageSize, tag));
        ASSERT_TRUE(link.from->send(link.fromPid, src, kPageSize,
                                    link.slot, offset));
        expectations.push_back(
            {link.to, link.toPid, offset, tag});
        ++tag;
        if (round % 5 == 4)
            cluster.run();
    }
    cluster.run();

    // Later sends to the same (sender, receiver) slot overwrite
    // earlier ones; verify the last write per slot.
    std::map<std::tuple<VmmcNode *, ProcId, std::uint64_t>,
             std::uint32_t>
        last;
    for (const auto &e : expectations)
        last[{e.node, e.pid, e.offset}] = e.tag;
    for (const auto &[key, expected_tag] : last) {
        auto [node, pid, offset] = key;
        std::vector<std::uint8_t> got(kPageSize);
        node->space(pid).readBytes(addrOf(1000) + offset, got);
        EXPECT_EQ(got, stamp(kPageSize, expected_tag))
            << "pid " << pid << " offset " << offset;
    }

    // Invariants after the storm: exported regions remain locked and
    // pinned; no NIC faults were needed; SRAM stayed within budget.
    for (int p = 0; p < kProcsPerNode; ++p) {
        EXPECT_TRUE(a.utlb(10 + p).pinManager().isLocked(1000));
        EXPECT_EQ(a.utlb(10 + p).nicFaults(), 0u);
        EXPECT_EQ(b.utlb(20 + p).nicFaults(), 0u);
    }
    EXPECT_LE(a.sram().used(), a.sram().capacity());
    EXPECT_GT(a.nicCache().hits() + a.nicCache().misses(), 0u);
}

TEST(Multiprog, CacheContentionDoesNotCorruptTranslations)
{
    // Two processes hammer buffers that collide in a tiny cache;
    // every transfer must still carry the right bytes.
    ClusterConfig cfg;
    cfg.nodes = 2;
    cfg.node.cache = {16, 1, false};  // pathological: no offsetting
    Cluster cluster(cfg);
    auto &a = cluster.node(0);
    auto &b = cluster.node(1);
    a.createProcess(1);
    a.createProcess(2);
    b.createProcess(3);
    auto exp = b.exportBuffer(3, addrOf(1000), 64 * kPageSize);
    auto s1 = a.importBuffer(1, 1, *exp);
    auto s2 = a.importBuffer(2, 1, *exp);

    for (int i = 0; i < 24; ++i) {
        // Both processes use the SAME page numbers: guaranteed cache
        // conflicts without offsetting.
        VirtAddr va = addrOf(100 + (i % 8));
        a.space(1).writeBytes(va, stamp(256, 1000 + i));
        a.space(2).writeBytes(va, stamp(256, 2000 + i));
        ASSERT_TRUE(a.send(1, va, 256, s1,
                           static_cast<std::uint64_t>(i) * kPageSize));
        ASSERT_TRUE(a.send(2, va, 256, s2,
                           (static_cast<std::uint64_t>(i) + 32)
                               * kPageSize));
        cluster.run();
        std::vector<std::uint8_t> got(256);
        b.space(3).readBytes(
            addrOf(1000) + static_cast<std::uint64_t>(i) * kPageSize,
            got);
        ASSERT_EQ(got, stamp(256, 1000 + i)) << i;
        b.space(3).readBytes(addrOf(1000)
                                 + (static_cast<std::uint64_t>(i) + 32)
                                     * kPageSize,
                             got);
        ASSERT_EQ(got, stamp(256, 2000 + i)) << i;
    }
    EXPECT_GT(a.nicCache().evictions(), 0u);
}

TEST(Multiprog, ManyProcessesExhaustSramGracefully)
{
    // Command posts and directories consume SRAM per process; a 1 MB
    // board supports a bounded number. Process creation must die
    // fatally (configuration error) rather than corrupt state.
    // 8 K-entry cache (32 KB) + per-process (ring + directory).
    ClusterConfig cfg;
    cfg.nodes = 1;
    cfg.node.commandSlots = 1024;  // ~40 KB of SRAM per process
    Cluster cluster(cfg);
    auto &n = cluster.node(0);
    // The first bunch fit.
    for (ProcId p = 1; p <= 20; ++p)
        n.createProcess(p);
    EXPECT_LE(n.sram().used(), n.sram().capacity());
    EXPECT_DEATH(
        {
            for (ProcId p = 21; p <= 60; ++p)
                cluster.node(0).createProcess(p);
        },
        "SRAM");
}

} // namespace
