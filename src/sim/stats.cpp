#include "sim/stats.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <ostream>

#include "sim/json.hpp"
#include "sim/log.hpp"

namespace utlb::sim {

namespace {

/** Pad a stat name to a fixed column so values line up. */
std::string
statNameWidth(const std::string &name)
{
    constexpr std::size_t width = 40;
    std::string out = name;
    if (out.size() < width)
        out.append(width - out.size(), ' ');
    else
        out.push_back(' ');
    return out;
}

} // namespace

StatBase::StatBase(StatGroup *parent, std::string name, std::string desc)
    : statName(std::move(name)), statDesc(std::move(desc))
{
    if (parent)
        parent->addStat(this);
}

void
Counter::addRelaxed(std::uint64_t n)
{
    std::atomic_ref<std::uint64_t>(val).fetch_add(
        n, std::memory_order_relaxed);
}

void
Counter::print(std::ostream &os) const
{
    os << statNameWidth(name()) << val << "  # " << desc() << '\n';
}

void
Counter::writeJson(JsonWriter &w) const
{
    w.beginObject(name());
    w.field("type", "counter");
    w.field("value", val);
    w.field("desc", desc());
    w.endObject();
}

void
Average::print(std::ostream &os) const
{
    os << statNameWidth(name()) << mean() << "  # " << desc()
       << " (" << count << " samples)\n";
}

void
Average::writeJson(JsonWriter &w) const
{
    w.beginObject(name());
    w.field("type", "average");
    w.field("mean", mean());
    w.field("samples", count);
    w.field("total", sum);
    w.field("desc", desc());
    w.endObject();
}

HistAccum::HistAccum(double max, std::size_t buckets)
    : maxValBound(max),
      bucketWidth(max / static_cast<double>(buckets)),
      counts(buckets, 0),
      minVal(std::numeric_limits<double>::infinity()),
      maxVal(-std::numeric_limits<double>::infinity())
{
    if (max <= 0.0 || buckets == 0)
        fatal("Histogram requires max > 0 and buckets > 0");
}

void
HistAccum::sample(double v)
{
    ++total;
    sum += v;
    minVal = std::min(minVal, v);
    maxVal = std::max(maxVal, v);
    if (v >= maxValBound || v < 0.0) {
        ++overflow;
        return;
    }
    ++counts[bucketOf(v)];
}

void
HistAccum::sampleN(double v, std::uint64_t n)
{
    if (n == 0)
        return;
    total += n;
    // Repeated addition, not sum += v * n: the contract is bit-exact
    // equality with n individual sample() calls, and fp addition is
    // not distributive over multiplication.
    for (std::uint64_t i = 0; i < n; ++i)
        sum += v;
    minVal = std::min(minVal, v);
    maxVal = std::max(maxVal, v);
    if (v >= maxValBound || v < 0.0) {
        overflow += n;
        return;
    }
    counts[bucketOf(v)] += n;
}

void
HistAccum::absorb(HistAccum &other)
{
    if (other.counts.size() != counts.size()
        || other.maxValBound != maxValBound)
        fatal("HistAccum::absorb geometry mismatch (%zu/%f vs %zu/%f)",
              counts.size(), maxValBound, other.counts.size(),
              other.maxValBound);
    if (other.total != 0) {
        total += other.total;
        sum += other.sum;
        minVal = std::min(minVal, other.minVal);
        maxVal = std::max(maxVal, other.maxVal);
        overflow += other.overflow;
        for (std::size_t i = 0; i < counts.size(); ++i)
            counts[i] += other.counts[i];
    }
    other.reset();
}

void
HistAccum::reset()
{
    std::fill(counts.begin(), counts.end(), 0);
    overflow = 0;
    total = 0;
    sum = 0.0;
    minVal = std::numeric_limits<double>::infinity();
    maxVal = -std::numeric_limits<double>::infinity();
}

Histogram::Histogram(StatGroup *parent, std::string name, std::string desc,
                     double max, std::size_t buckets)
    : StatBase(parent, std::move(name), std::move(desc)),
      acc(max, buckets)
{
}

void
Histogram::print(std::ostream &os) const
{
    os << statNameWidth(name()) << "hist(" << acc.total
       << " samples, mean " << mean() << ")  # " << desc() << '\n';
    for (std::size_t i = 0; i < acc.counts.size(); ++i) {
        if (!acc.counts[i])
            continue;
        os << "    [" << i * acc.bucketWidth << ", "
           << (i + 1) * acc.bucketWidth << "): " << acc.counts[i]
           << '\n';
    }
    if (acc.overflow)
        os << "    overflow: " << acc.overflow << '\n';
}

void
Histogram::writeJson(JsonWriter &w) const
{
    w.beginObject(name());
    w.field("type", "histogram");
    w.field("samples", acc.total);
    w.field("mean", mean());
    w.field("min", acc.total ? acc.minVal : 0.0);
    w.field("max", acc.total ? acc.maxVal : 0.0);
    w.field("bucket_width", acc.bucketWidth);
    w.beginArray("buckets");
    for (std::uint64_t c : acc.counts)
        w.value(c);
    w.endArray();
    w.field("overflow", acc.overflow);
    w.field("desc", desc());
    w.endObject();
}

void
MergedCounter::print(std::ostream &os) const
{
    os << statNameWidth(name()) << value() << "  # " << desc() << '\n';
}

// Field-for-field the Counter shape: a merged stat must serialize
// indistinguishably from its monolithic twin or the golden stats-dump
// comparisons would see the layout, not the numbers.
void
MergedCounter::writeJson(JsonWriter &w) const
{
    w.beginObject(name());
    w.field("type", "counter");
    w.field("value", value());
    w.field("desc", desc());
    w.endObject();
}

HistAccum
MergedHistogram::merged() const
{
    HistAccum out(shape.maxValBound, shape.counts.size());
    for (const HistAccum *src : slots) {
        HistAccum copy = *src;
        out.absorb(copy);
    }
    return out;
}

void
MergedHistogram::print(std::ostream &os) const
{
    HistAccum m = merged();
    double mn = m.total ? m.sum / static_cast<double>(m.total) : 0.0;
    os << statNameWidth(name()) << "hist(" << m.total
       << " samples, mean " << mn << ")  # " << desc() << '\n';
    for (std::size_t i = 0; i < m.counts.size(); ++i) {
        if (!m.counts[i])
            continue;
        os << "    [" << i * m.bucketWidth << ", "
           << (i + 1) * m.bucketWidth << "): " << m.counts[i] << '\n';
    }
    if (m.overflow)
        os << "    overflow: " << m.overflow << '\n';
}

void
MergedHistogram::writeJson(JsonWriter &w) const
{
    HistAccum m = merged();
    w.beginObject(name());
    w.field("type", "histogram");
    w.field("samples", m.total);
    w.field("mean", m.total ? m.sum / static_cast<double>(m.total)
                            : 0.0);
    w.field("min", m.total ? m.minVal : 0.0);
    w.field("max", m.total ? m.maxVal : 0.0);
    w.field("bucket_width", m.bucketWidth);
    w.beginArray("buckets");
    for (std::uint64_t c : m.counts)
        w.value(c);
    w.endArray();
    w.field("overflow", m.overflow);
    w.field("desc", desc());
    w.endObject();
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : groupName(std::move(name))
{
    if (parent)
        parent->addChild(this);
}

void
StatGroup::dump(std::ostream &os) const
{
    os << "---- " << groupName << " ----\n";
    for (const auto *s : stats)
        s->print(os);
    for (const auto *c : children)
        c->dump(os);
}

void
StatGroup::writeJson(JsonWriter &w) const
{
    w.beginObject();
    writeBody(w);
    w.endObject();
}

void
StatGroup::writeJson(JsonWriter &w, std::string_view key) const
{
    w.beginObject(key);
    writeBody(w);
    w.endObject();
}

void
StatGroup::writeBody(JsonWriter &w) const
{
    w.field("name", groupName);
    w.beginObject("stats");
    for (const auto *s : stats)
        s->writeJson(w);
    w.endObject();
    w.beginArray("groups");
    for (const auto *c : children)
        c->writeJson(w);
    w.endArray();
}

void
StatGroup::dumpJson(std::ostream &os) const
{
    JsonWriter w(os);
    writeJson(w);
    os << '\n';
}

void
StatGroup::removeChild(StatGroup *child)
{
    children.erase(std::remove(children.begin(), children.end(), child),
                   children.end());
}

void
StatGroup::resetAll()
{
    for (auto *s : stats)
        s->reset();
    for (auto *c : children)
        c->resetAll();
}

const StatBase *
StatGroup::find(const std::string &name) const
{
    for (const auto *s : stats) {
        if (s->name() == name)
            return s;
    }
    return nullptr;
}

} // namespace utlb::sim
