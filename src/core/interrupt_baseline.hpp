/**
 * @file
 * The interrupt-based address translation baseline (§2, §6.2).
 *
 * Models the UNet-MM-style approach the paper compares against: the
 * NIC holds a translation cache; on a miss it interrupts the host
 * CPU, which pins the page and installs the translation; "the
 * interrupt-based approach always unpins a page that is evicted from
 * the network interface translation cache". There is no user-level
 * check and no host-resident translation table — pinning is tied to
 * cache residency, which is precisely why it unpins so much more
 * than UTLB (Tables 4 and 5).
 *
 * Costs (§6.2 equations): every lookup pays ni_check; a miss adds
 * intr_cost + kernel_pin_cost; each eviction-driven unpin adds
 * kernel_unpin_cost (kernel-mode work needs no protection-domain
 * crossing, so the in-kernel pin/unpin constants are used, not the
 * ioctl batch curve).
 */

#ifndef UTLB_CORE_INTERRUPT_BASELINE_HPP
#define UTLB_CORE_INTERRUPT_BASELINE_HPP

#include <cstdint>

#include "core/cost_model.hpp"
#include "core/shared_cache.hpp"
#include "mem/pinning.hpp"
#include "nic/timing.hpp"
#include "sim/stats.hpp"

namespace utlb::core {

/** Outcome of one interrupt-based translation. */
struct IntrLookup {
    mem::Pfn pfn = mem::kInvalidPfn;
    sim::Tick cost = 0;
    bool miss = false;
    std::size_t unpins = 0;   //!< eviction-driven unpins this lookup
    bool failed = false;      //!< pin impossible (hard OOM)
};

/**
 * Interrupt-based translation mechanism shared by all processes on
 * a node (one NIC cache, host pinning per process).
 */
class InterruptTlb
{
  public:
    InterruptTlb(mem::PinFacility &pin_facility, SharedUtlbCache &cache,
                 const HostCosts &host_costs,
                 const nic::NicTimings &timings)
        : pins(&pin_facility), nicCache(&cache), costs(&host_costs),
          nicTimings(&timings)
    {}

    InterruptTlb(const InterruptTlb &) = delete;
    InterruptTlb &operator=(const InterruptTlb &) = delete;

    /** Translate one page for @p pid. */
    IntrLookup translate(mem::ProcId pid, mem::Vpn vpn);

    /** @name Lifetime counters @{ */
    std::uint64_t lookups() const { return statLookups.value(); }
    std::uint64_t misses() const { return statMisses.value(); }
    std::uint64_t interrupts() const { return statInterrupts.value(); }
    std::uint64_t unpins() const { return statUnpins.value(); }
    /** @} */

    /** This baseline's statistics subtree. */
    sim::StatGroup &stats() { return statsGrp; }
    const sim::StatGroup &stats() const { return statsGrp; }

  private:
    IntrLookup translateImpl(mem::ProcId pid, mem::Vpn vpn);

    /** Unpin the page behind an evicted cache entry. */
    void unpinEvicted(const EvictedEntry &ev, IntrLookup &out);

    mem::PinFacility *pins;
    SharedUtlbCache *nicCache;
    const HostCosts *costs;
    const nic::NicTimings *nicTimings;

    sim::StatGroup statsGrp{"interrupt_tlb"};
    sim::Counter statLookups{&statsGrp, "lookups",
                             "translations requested"};
    sim::Counter statMisses{&statsGrp, "misses",
                            "NIC cache misses"};
    sim::Counter statInterrupts{&statsGrp, "interrupts",
                                "host interrupts raised"};
    sim::Counter statUnpins{&statsGrp, "unpins",
                            "eviction-driven unpins"};
    sim::Histogram statLookupLatency{&statsGrp, "lookup_latency_us",
                                     "modeled per-page translation "
                                     "latency", 100.0, 25};
};

} // namespace utlb::core

#endif // UTLB_CORE_INTERRUPT_BASELINE_HPP
