file(REMOVE_RECURSE
  "libutlb_core.a"
)
