/**
 * @file
 * Multi-core throughput harness: aggregate translations per second
 * with 1..N worker threads driving the concurrent UTLB stack.
 *
 * Like bench_hotpath this measures the simulator's wall clock, not
 * the modeled machine: concurrency never changes results, modeled
 * costs, or stats (asserted below and by tests/test_concurrency.cpp)
 * — only how fast the host chews through them.
 *
 * Scenarios (bench_mt_common.hpp):
 *   mt_warm          disjoint per-worker ranges, all NIC-cache hits:
 *                    workers share no lock stripe, the shard-local
 *                    scaling ceiling;
 *   mt_miss_prefetch all workers sweep the same sets under their own
 *                    pids: stripe locks, miss DMAs, and evictions
 *                    stay contended;
 *   mt_pin_churn     disjoint sweeps under a per-process pin limit
 *                    half the working set: every window sheds and
 *                    repins pages, so the PinManager mutex and the
 *                    coherence-invalidate path carry the load;
 *   mt_warm_assoc4   the warm disjoint sweep at 4-way associativity:
 *                    page-at-a-time lookupMT through the per-set
 *                    seqlock way search;
 *   mt_miss_overlap  capacity-miss streams with the asynchronous fill
 *                    pipeline: misses post to the fill thread and
 *                    workers keep serving hits while the DMAs are in
 *                    flight. Timed with fills on and off, so the
 *                    async_speedup metric is the overlap win;
 *   mt_zipf_mix      Zipf(1.1) window choice over a working set
 *                    larger than the cache: hot all-hit windows mixed
 *                    with a cold miss tail, fills overlapping hits.
 *   mt_miss_shard    the pin-churn shape with four worker processes
 *                    and one driver shard per worker, timed against
 *                    the identical shape at shards=1. shard_speedup
 *                    (sharded over monolithic pages/sec) is the
 *                    lock-splitting win; shard_gate_skipped=1 marks
 *                    hosts with fewer than 4 cores, where the ratio
 *                    only measures time-slicing and CI must not gate
 *                    on it.
 *
 * The mt_miss_overlap shape additionally runs a fill-pool sweep
 * (mode mt_pool, fill_threads 1 and 2) so CI can check that growing
 * the pool never regresses the modeled cost per page.
 *
 * Before timing anything, a fixed-iteration golden check replays an
 * identical workload through a sequential-mode and a concurrent-mode
 * single-worker stack and dies unless every per-call field and the
 * full stats tree match bit-for-bit. Async scenarios additionally
 * gate on mtAsyncConsistency: the fill pipeline may reorder miss
 * service but must return identical translations.
 *
 * UTLB_MT_MS bounds the per-cell budget (default 300 ms);
 * UTLB_MT_THREADS caps the sweep (default 4). BENCH_mt.json records
 * threads, aggregate pages/sec, and scaling_efficiency (pages/sec at
 * N threads over N x the 1-thread rate). Every MT cell also records
 * host_cores and an oversubscribed flag; when worker threads exceed
 * the host's cores the efficiency figure would only measure the
 * scheduler's time-slicing, so it is omitted entirely (the flag tells
 * readers why).
 */

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "bench_mt_common.hpp"
#include "sim/stats.hpp"
#include "sim/table.hpp"

namespace {

using namespace utlb;
using bench::MtCell;
using bench::MtScenario;
using bench::MtStack;

double
budgetMs()
{
    if (const char *e = std::getenv("UTLB_MT_MS")) {
        double v = std::atof(e);
        if (v > 0)
            return v;
    }
    return 300.0;
}

unsigned
maxThreads()
{
    if (const char *e = std::getenv("UTLB_MT_THREADS")) {
        int v = std::atoi(e);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    return 4;
}

unsigned
hostCores()
{
    unsigned c = std::thread::hardware_concurrency();
    return c ? c : 1;
}

/**
 * Emit one timed MT cell. scaling_efficiency is only meaningful when
 * every worker thread can run on its own core: oversubscribed cells
 * (threads > cores) omit it and set the flag instead, so downstream
 * readers never mistake time-slicing arithmetic for scaling. Fill
 * threads burn cores too, so async cells pass them as @p extraThreads
 * and the oversubscription test covers the whole thread set.
 */
void
emitCell(bench::JsonReporter &json, sim::TextTable &table,
         const std::string &scenario, const char *mode, unsigned t,
         const MtCell &cell, double base, unsigned cores,
         unsigned extraThreads = 0,
         const std::vector<std::pair<const char *, double>> &extra = {})
{
    bool oversub = t + extraThreads > cores;
    double pps = cell.pagesPerSec();
    double eff = (!oversub && base > 0)
        ? pps / (static_cast<double>(t) * base)
        : 0.0;
    table.addRow({scenario, std::to_string(t),
                  sim::TextTable::num(pps, 0),
                  sim::TextTable::num(cell.nsPerPage(), 1),
                  sim::TextTable::num(cell.modeledUsPerPage(), 3),
                  oversub ? std::string("n/a")
                          : sim::TextTable::num(eff, 2)});
    std::vector<std::pair<const char *, double>> metrics = {
        {"threads", static_cast<double>(t)},
        {"pages_per_sec", pps},
        {"wall_ns", cell.wallNs},
        {"ns_per_page", cell.nsPerPage()},
        {"modeled_us_per_page", cell.modeledUsPerPage()},
        {"host_cores", static_cast<double>(cores)},
        {"oversubscribed", oversub ? 1.0 : 0.0}};
    // No 1-thread baseline (base == 0, e.g. the sharded-vs-mono
    // cells that only run at full width) means no efficiency figure
    // either, rather than a meaningless 0.
    if (!oversub && base > 0)
        metrics.emplace_back("scaling_efficiency", eff);
    for (const auto &m : extra)
        metrics.push_back(m);
    json.add({{"scenario", scenario},
              {"mode", mode},
              {"threads", std::to_string(t)}},
             metrics);
}

} // namespace

int
main()
{
    const MtScenario scenarios[] = {bench::kMtWarm,
                                    bench::kMtMissPrefetch,
                                    bench::kMtPinChurn,
                                    bench::kMtWarmAssoc4};
    const MtScenario asyncScenarios[] = {bench::kMtMissOverlap,
                                         bench::kMtZipfMix};
    double ms = budgetMs();
    unsigned nmax = maxThreads();
    unsigned cores = hostCores();

    bench::JsonReporter json("mt");
    json.setWorkerThreads(nmax);
    // The fill-pool sweep peaks at two drain threads; the async
    // scenarios run their configured pool width. host_info records
    // the max so the oversubscription warning counts every thread
    // the harness can have runnable at once.
    std::size_t maxFill = 2;
    for (const MtScenario &sc : asyncScenarios)
        maxFill = std::max(maxFill, sc.fillThreads);
    json.setFillThreads(static_cast<unsigned>(maxFill));
    sim::TextTable table("multi-thread wall clock ("
                         + sim::TextTable::num(ms, 0) + " ms/cell, "
                         + std::to_string(nmax) + " threads max, "
                         + std::to_string(cores) + " cores)");
    table.setHeader({"scenario", "threads", "agg pages/sec",
                     "ns/page", "modeled us/page", "efficiency"});

    for (const MtScenario &sc : scenarios) {
        std::string divergence = bench::mtGoldenDivergence(sc);
        if (!divergence.empty())
            sim::fatal("%s", divergence.c_str());
        json.add({{"scenario", sc.name}, {"mode", "golden"}},
                 {{"golden_equivalence", 1.0}});

        double base = 0.0;
        for (unsigned t = 1; t <= nmax; t *= 2) {
            MtStack stack(sc, t, true);
            MtCell cell = runMtCell(sc, stack, t, ms);
            if (t == 1)
                base = cell.pagesPerSec();
            emitCell(json, table, sc.name, "mt", t, cell, base, cores);
        }
    }

    for (const MtScenario &sc : asyncScenarios) {
        // Gate 1: threads=1 concurrent (fills off) is still
        // bit-identical to sequential for this workload shape.
        MtScenario syncShape = sc;
        syncShape.asyncFill = false;
        std::string divergence = bench::mtGoldenDivergence(syncShape);
        if (!divergence.empty())
            sim::fatal("%s", divergence.c_str());
        json.add({{"scenario", sc.name}, {"mode", "golden"}},
                 {{"golden_equivalence", 1.0}});

        // Gate 2: fills change miss timing, never translations.
        divergence = bench::mtAsyncConsistency(sc);
        if (!divergence.empty())
            sim::fatal("%s", divergence.c_str());
        json.add({{"scenario", sc.name}, {"mode", "async_golden"}},
                 {{"async_consistency", 1.0}});

        // Scaling efficiency is measured within each mode (sync
        // cells against the sync 1-thread rate, async against async):
        // the cross-mode comparison is async_speedup.
        double baseSync = 0.0;
        double baseAsync = 0.0;
        for (unsigned t = 1; t <= nmax; t *= 2) {
            // Serialized baseline: same shape, misses serviced in the
            // worker (the pre-pipeline behaviour).
            MtStack syncStack(syncShape, t, true);
            MtCell syncCell = runMtCell(syncShape, syncStack, t, ms);
            if (t == 1)
                baseSync = syncCell.pagesPerSec();
            emitCell(json, table, std::string(sc.name) + "(sync)",
                     "mt_sync", t, syncCell, baseSync, cores);

            MtStack stack(sc, t, true, true);
            MtCell cell = runMtCell(sc, stack, t, ms);
            stack.stopFill();
            if (t == 1)
                baseAsync = cell.pagesPerSec();
            double speedup = syncCell.pagesPerSec() > 0
                ? cell.pagesPerSec() / syncCell.pagesPerSec()
                : 0.0;
            double overlappedUs =
                sim::ticksToUs(stack.fill->overlappedTicks());
            emitCell(json, table, sc.name, "mt", t, cell, baseAsync,
                     cores,
                     static_cast<unsigned>(sc.fillThreads),
                     {{"async_speedup", speedup},
                      {"overlapped_modeled_us", overlappedUs},
                      {"fill_threads",
                       static_cast<double>(sc.fillThreads)},
                      {"fills_completed",
                       static_cast<double>(
                           stack.fill->fillsCompleted())}});
        }
    }

    // Fill-pool sweep: the overlap shape drained by one and by two
    // fill threads, one worker each so the comparison isolates the
    // drain side. Consistency is re-gated per pool size (routing by
    // stripe residue must not change translations); CI checks that
    // pool=2's modeled us/page stays within tolerance of pool=1's.
    for (std::size_t pool : {std::size_t{1}, std::size_t{2}}) {
        MtScenario sc = bench::kMtMissOverlap;
        sc.fillThreads = pool;
        std::string divergence = bench::mtAsyncConsistency(sc);
        if (!divergence.empty())
            sim::fatal("%s", divergence.c_str());
        MtStack stack(sc, 1, true, true);
        MtCell cell = runMtCell(sc, stack, 1, ms);
        stack.stopFill();
        emitCell(json, table,
                 std::string(sc.name) + "(pool"
                     + std::to_string(pool) + ")",
                 "mt_pool", 1, cell, 0.0, cores,
                 static_cast<unsigned>(pool),
                 {{"fill_threads", static_cast<double>(pool)},
                  {"fills_completed",
                   static_cast<double>(stack.fill->fillsCompleted())}});
    }

    // Driver sharding: the 4-process churn shape, monolithic then
    // one shard per worker. Sharding must be invisible to a single
    // thread (golden gate); the timed ratio is CI-gated only on
    // hosts with at least 4 cores (shard_gate_skipped says why).
    {
        const MtScenario &sharded = bench::kMtMissShard;
        MtScenario mono = sharded;
        mono.driverShards = 1;
        unsigned t = 4;

        std::string divergence = bench::mtGoldenDivergence(sharded);
        if (!divergence.empty())
            sim::fatal("%s", divergence.c_str());
        json.add({{"scenario", sharded.name}, {"mode", "golden"}},
                 {{"golden_equivalence", 1.0}});

        MtStack monoStack(mono, t, true);
        MtCell monoCell = runMtCell(mono, monoStack, t, ms);
        emitCell(json, table, std::string(sharded.name) + "(mono)",
                 "mt_mono", t, monoCell, 0.0, cores, 0,
                 {{"driver_shards", 1.0}});

        MtStack shardStack(sharded, t, true);
        MtCell shardCell = runMtCell(sharded, shardStack, t, ms);
        double speedup = monoCell.pagesPerSec() > 0
            ? shardCell.pagesPerSec() / monoCell.pagesPerSec()
            : 0.0;
        emitCell(json, table, sharded.name, "mt", t, shardCell, 0.0,
                 cores, 0,
                 {{"driver_shards",
                   static_cast<double>(sharded.driverShards)},
                  {"shard_speedup", speedup},
                  {"shard_gate_skipped", cores < 4 ? 1.0 : 0.0}});
    }
    table.print(std::cout);
    return 0;
}
