/**
 * @file
 * Host-side cost model, calibrated to the paper's measurements.
 *
 * Provenance of every constant in the default (PentiumIINT) profile:
 *
 *  - userCheck (0.5 us): §6.2 "the user check at 0.5 us" — the
 *    per-lookup user-level cost (bitmap / lookup-tree consultation)
 *    used in the lookup-cost equations.
 *  - checkCostMin / checkCostMax: Table 1 "check" rows — the bitmap
 *    scan cost as a function of the number of pages checked; the
 *    minimum (first bit found immediately) is a constant 0.2 us, the
 *    maximum depends on the run length scanned.
 *  - pinCost / unpinCost: Table 1 "pin"/"unpin" rows — the ioctl()
 *    cost of pinning/unpinning a batch of pages on the paper's
 *    300 MHz Pentium-II NT host (27 us / 25 us for one page).
 *  - interruptCost (10 us): §6.2 "10 us for invoking the system
 *    interrupt handler by the network interface".
 *  - kernelPin / kernelUnpin (16 us): §6.2 says that for the
 *    interrupt-based approach "the pinning and unpinning costs must
 *    be adjusted to factor out context switches" but does not print
 *    the adjusted value. We back-solve it from Table 6: with
 *    ni_check = 0.8, intr = 10, and Table 4's rates, the published
 *    Intr lookup costs (4.9 us Barnes @1K, 21.7 us FFT @1K) are
 *    reproduced by kernel pin = unpin = 16 us. See EXPERIMENTS.md
 *    for the fit.
 *  - cycleCounterRead: §5 — reading the Pentium cycle counter costs
 *    39 cycles (~0.13 us at 300 MHz); charged by the host-side
 *    microbenchmarks that model the paper's measurement harness.
 *
 * Other profiles:
 *
 *  - PentiumIILinux: §6.2 "On Linux, the pinning and unpinning costs
 *    are similar to those on NT" — same curves, same constants; it
 *    exists as a named profile to document that measurement.
 *  - ModernX86: early-2020s server numbers for the what-if ablation
 *    (`bench_ablation_modern`): mlock/get_user_pages fast path
 *    ~0.6 us/page with strong batching, MSI-X interrupt delivery
 *    ~2 us, sub-0.1 us user-level checks. These are era-typical
 *    figures, not measurements of a specific machine; they exist to
 *    show how the UTLB-vs-interrupt trade moved over 25 years.
 */

#ifndef UTLB_CORE_COST_MODEL_HPP
#define UTLB_CORE_COST_MODEL_HPP

#include <cstddef>

#include "sim/calibration.hpp"
#include "sim/types.hpp"

namespace utlb::core {

/** Which host machine the cost model describes. */
enum class HostProfile {
    PentiumIINT,     //!< the paper's testbed (default)
    PentiumIILinux,  //!< §6.2: "similar" costs; same numbers
    ModernX86,       //!< early-2020s server, for the what-if study
};

/** Host processor cost model. */
class HostCosts
{
  public:
    explicit HostCosts(HostProfile profile = HostProfile::PentiumIINT)
        : checkMinCurve(makeCheckMin(profile)),
          checkMaxCurve(makeCheckMax(profile)),
          pinCurve(makePin(profile)),
          unpinCurve(makeUnpin(profile)),
          userCheckTicks(profile == HostProfile::ModernX86
                             ? sim::usToTicks(0.05)
                             : sim::usToTicks(0.5)),
          interruptTicks(profile == HostProfile::ModernX86
                             ? sim::usToTicks(2.0)
                             : sim::usToTicks(10.0)),
          kernelPinTicks(profile == HostProfile::ModernX86
                             ? sim::usToTicks(0.6)
                             : sim::usToTicks(16.0)),
          kernelUnpinTicks(profile == HostProfile::ModernX86
                               ? sim::usToTicks(0.5)
                               : sim::usToTicks(16.0)),
          cycleReadTicks(profile == HostProfile::ModernX86
                             ? sim::nsToTicks(10.0)
                             : sim::nsToTicks(39.0 * 1000.0 / 300.0))
    {
    }

    /** Per-lookup user-level check cost (§6.2). */
    sim::Tick userCheck() const { return userCheckTicks; }

    /** Best-case bitmap check over @p npages pages (Table 1 min). */
    sim::Tick
    checkCostMin(std::size_t npages) const
    {
        return checkMinCurve.ticksAt(npages);
    }

    /** Worst-case bitmap check over @p npages pages (Table 1 max). */
    sim::Tick
    checkCostMax(std::size_t npages) const
    {
        return checkMaxCurve.ticksAt(npages);
    }

    /** ioctl() cost to pin @p npages pages (Table 1). */
    sim::Tick
    pinCost(std::size_t npages) const
    {
        return npages == 0 ? 0 : pinCurve.ticksAt(npages);
    }

    /** ioctl() cost to unpin @p npages pages (Table 1). */
    sim::Tick
    unpinCost(std::size_t npages) const
    {
        return npages == 0 ? 0 : unpinCurve.ticksAt(npages);
    }

    /** NIC-to-host interrupt delivery cost. */
    sim::Tick interruptCost() const { return interruptTicks; }

    /**
     * In-kernel pin of one page during interrupt handling, with
     * syscall/context-switch overhead factored out (§6.2, derived
     * from Table 6 — see file comment).
     */
    sim::Tick kernelPinCost() const { return kernelPinTicks; }

    /** In-kernel unpin of one page during interrupt handling. */
    sim::Tick kernelUnpinCost() const { return kernelUnpinTicks; }

    /** Reading the CPU cycle counter. */
    sim::Tick cycleCounterRead() const { return cycleReadTicks; }

  private:
    static sim::CalCurve
    makeCheckMin(HostProfile profile)
    {
        if (profile == HostProfile::ModernX86)
            return sim::CalCurve{{1, 0.02}, {32, 0.02}};
        return sim::CalCurve{{1, 0.2}, {2, 0.2}, {4, 0.2}, {8, 0.2},
                             {16, 0.2}, {32, 0.2}};
    }

    static sim::CalCurve
    makeCheckMax(HostProfile profile)
    {
        if (profile == HostProfile::ModernX86)
            return sim::CalCurve{{1, 0.04}, {32, 0.07}};
        return sim::CalCurve{{1, 0.4}, {2, 0.6}, {4, 0.6}, {8, 0.6},
                             {16, 0.6}, {32, 0.7}};
    }

    static sim::CalCurve
    makePin(HostProfile profile)
    {
        if (profile == HostProfile::ModernX86) {
            // mlock/gup fast path: ~1.5 us syscall + ~0.25 us/page.
            return sim::CalCurve{{1, 1.8}, {2, 2.0}, {4, 2.5},
                                 {8, 3.5}, {16, 5.5}, {32, 9.5}};
        }
        return sim::CalCurve{{1, 27.0}, {2, 30.0}, {4, 36.0},
                             {8, 47.0}, {16, 70.0}, {32, 115.0}};
    }

    static sim::CalCurve
    makeUnpin(HostProfile profile)
    {
        if (profile == HostProfile::ModernX86) {
            return sim::CalCurve{{1, 1.6}, {2, 1.8}, {4, 2.2},
                                 {8, 3.0}, {16, 4.6}, {32, 7.8}};
        }
        return sim::CalCurve{{1, 25.0}, {2, 30.0}, {4, 36.0},
                             {8, 50.0}, {16, 80.0}, {32, 139.0}};
    }

    sim::CalCurve checkMinCurve;
    sim::CalCurve checkMaxCurve;
    sim::CalCurve pinCurve;
    sim::CalCurve unpinCurve;
    sim::Tick userCheckTicks;
    sim::Tick interruptTicks;
    sim::Tick kernelPinTicks;
    sim::Tick kernelUnpinTicks;
    sim::Tick cycleReadTicks;
};

} // namespace utlb::core

#endif // UTLB_CORE_COST_MODEL_HPP
