/**
 * @file
 * Page-granularity address types shared by the whole project.
 *
 * The paper's system uses 4 KB pages throughout (Myrinet VMMC
 * firmware fragments transfers at 4 KB boundaries and the SVM traces
 * are counted in 4 KB pages), so the page size is a compile-time
 * constant here.
 */

#ifndef UTLB_MEM_PAGE_HPP
#define UTLB_MEM_PAGE_HPP

#include <cstddef>
#include <cstdint>

namespace utlb::mem {

/** A user virtual address. */
using VirtAddr = std::uint64_t;

/** A host physical address. */
using PhysAddr = std::uint64_t;

/** A virtual page number (VirtAddr >> kPageShift). */
using Vpn = std::uint64_t;

/** A physical frame number (PhysAddr >> kPageShift). */
using Pfn = std::uint64_t;

/** A process identifier. */
using ProcId = std::uint32_t;

/** log2 of the page size. */
inline constexpr unsigned kPageShift = 12;

/** Page size in bytes (4 KB, as in the paper). */
inline constexpr std::size_t kPageSize = std::size_t{1} << kPageShift;

/** Mask of the offset bits within a page. */
inline constexpr std::uint64_t kPageMask = kPageSize - 1;

/** Invalid frame sentinel. */
inline constexpr Pfn kInvalidPfn = ~Pfn{0};

/** Extract the virtual page number from an address. */
constexpr Vpn
pageOf(VirtAddr va)
{
    return va >> kPageShift;
}

/** Extract the in-page offset from an address. */
constexpr std::uint64_t
offsetOf(VirtAddr va)
{
    return va & kPageMask;
}

/** First address of a virtual page. */
constexpr VirtAddr
addrOf(Vpn vpn)
{
    return vpn << kPageShift;
}

/** Physical address of the start of a frame. */
constexpr PhysAddr
frameAddr(Pfn pfn)
{
    return pfn << kPageShift;
}

/** Number of pages spanned by [va, va + nbytes). */
constexpr std::size_t
pagesSpanned(VirtAddr va, std::size_t nbytes)
{
    if (nbytes == 0)
        return 0;
    Vpn first = pageOf(va);
    Vpn last = pageOf(va + nbytes - 1);
    return static_cast<std::size_t>(last - first + 1);
}

} // namespace utlb::mem

#endif // UTLB_MEM_PAGE_HPP
