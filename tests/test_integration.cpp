/**
 * @file
 * Cross-module integration and property tests: coherence invariants
 * across the user library / kernel / NIC layers under randomized
 * multi-process load, translation correctness against a reference
 * model, the §3.3 second-level-table paging extension end to end,
 * and SRAM budget exhaustion behaviour.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <unordered_map>

#include "core/cost_model.hpp"
#include "core/driver.hpp"
#include "core/interrupt_baseline.hpp"
#include "core/shared_cache.hpp"
#include "core/utlb.hpp"
#include "mem/address_space.hpp"
#include "mem/phys_memory.hpp"
#include "mem/pinning.hpp"
#include "nic/sram.hpp"
#include "nic/timing.hpp"
#include "sim/random.hpp"

namespace {

using namespace utlb::core;
using utlb::mem::addrOf;
using utlb::mem::AddressSpace;
using utlb::mem::kPageSize;
using utlb::mem::PhysMemory;
using utlb::mem::PinFacility;
using utlb::mem::ProcId;
using utlb::mem::Vpn;
using utlb::nic::NicTimings;
using utlb::nic::Sram;

/** A multi-process UTLB node for stress testing. */
class MultiProcStack : public ::testing::Test
{
  protected:
    MultiProcStack()
        : physMem(16384), sram(1 << 20),
          cache(CacheConfig{512, 2, true}, timings, &sram),
          driver(physMem, pins, sram, cache, costs)
    {
    }

    UserUtlb &
    addProcess(ProcId pid, std::size_t mem_limit = 0)
    {
        auto space = std::make_unique<AddressSpace>(pid, physMem);
        driver.registerProcess(*space);
        spaces.emplace(pid, std::move(space));
        UtlbConfig cfg;
        cfg.pin.memLimitPages = mem_limit;
        cfg.pin.seed = 100 + pid;
        auto utlb = std::make_unique<UserUtlb>(driver, cache, timings,
                                               pid, cfg);
        auto [it, ok] = utlbs.emplace(pid, std::move(utlb));
        return *it->second;
    }

    /**
     * The central coherence invariant of the design: every cached
     * NIC translation is backed by a valid host-table entry for a
     * page that the kernel holds pinned — i.e. the NIC can never
     * DMA through a stale mapping.
     */
    void
    checkCoherence(ProcId pid, Vpn lo, Vpn hi)
    {
        HostPageTable &table = driver.pageTable(pid);
        for (Vpn v = lo; v < hi; ++v) {
            auto cached = cache.peek(pid, v);
            auto host = table.get(v);
            bool pinned = pins.isPinned(pid, v);
            if (cached) {
                ASSERT_TRUE(host.has_value()) << "pid " << pid
                                              << " vpn " << v;
                ASSERT_EQ(*cached, *host);
                ASSERT_TRUE(pinned);
            }
            if (host) {
                ASSERT_TRUE(pinned);
                ASSERT_EQ(spaces.at(pid)->lookup(v), host);
            }
        }
    }

    HostCosts costs;
    NicTimings timings;
    PhysMemory physMem;
    PinFacility pins;
    Sram sram;
    SharedUtlbCache cache;
    UtlbDriver driver;
    std::map<ProcId, std::unique_ptr<AddressSpace>> spaces;
    std::map<ProcId, std::unique_ptr<UserUtlb>> utlbs;
};

TEST_F(MultiProcStack, RandomizedCoherenceUnderMemoryPressure)
{
    constexpr int kProcs = 4;
    constexpr Vpn kRange = 256;
    for (ProcId p = 1; p <= kProcs; ++p)
        addProcess(p, /*mem limit*/ 96);

    utlb::sim::Rng rng(42);
    for (int step = 0; step < 4000; ++step) {
        ProcId pid = 1 + static_cast<ProcId>(rng.below(kProcs));
        Vpn vpn = rng.below(kRange);
        std::size_t npages = 1 + rng.below(3);
        auto tr = utlbs.at(pid)->translate(
            addrOf(vpn), npages * kPageSize);
        ASSERT_TRUE(tr.ok);
        ASSERT_EQ(tr.pageAddrs.size(), npages);
        // Returned addresses match the kernel's pinned frames.
        for (std::size_t i = 0; i < npages; ++i) {
            auto pfn = pins.pinnedFrame(pid, vpn + i);
            ASSERT_TRUE(pfn.has_value());
            ASSERT_EQ(tr.pageAddrs[i], utlb::mem::frameAddr(*pfn));
        }
        ASSERT_LE(pins.pinnedPages(pid), 96u);
        if (step % 500 == 0)
            checkCoherence(pid, 0, kRange);
    }
    for (ProcId p = 1; p <= kProcs; ++p)
        checkCoherence(p, 0, kRange);
}

TEST_F(MultiProcStack, TranslationsMatchReferenceModelExactly)
{
    // Reference: a plain map of what the kernel pinned. Every
    // translate() result must agree with it, across eviction churn.
    auto &utlb = addProcess(1, 32);
    utlb::sim::Rng rng(7);
    for (int step = 0; step < 3000; ++step) {
        Vpn vpn = rng.below(128);
        auto tr = utlb.translate(addrOf(vpn), kPageSize);
        ASSERT_TRUE(tr.ok);
        auto pfn = spaces.at(1)->lookup(vpn);
        ASSERT_TRUE(pfn.has_value());
        ASSERT_EQ(tr.pageAddrs[0], utlb::mem::frameAddr(*pfn));
    }
}

TEST_F(MultiProcStack, UnregisterOneProcessLeavesOthersIntact)
{
    auto &u1 = addProcess(1);
    auto &u2 = addProcess(2);
    u1.translate(addrOf(10), 4 * kPageSize);
    u2.translate(addrOf(10), 4 * kPageSize);
    driver.unregisterProcess(1);
    utlbs.erase(1);
    spaces.erase(1);
    // Process 2 still fully works and its cache entries survive.
    auto tr = u2.translate(addrOf(10), 4 * kPageSize);
    EXPECT_EQ(tr.niMisses, 0u);
    checkCoherence(2, 0, 64);
}

TEST_F(MultiProcStack, LeafSwappingRoundTripsThroughTheFaultPath)
{
    // §3.3's paging extension: a second-level table is swapped out
    // to disk; the NIC detects the missing leaf on a miss and
    // interrupts the host, which brings the leaf back in.
    auto &utlb = addProcess(1);
    utlb.translate(addrOf(5), 2 * kPageSize);
    HostPageTable &table = driver.pageTable(1);

    // Evict the cached copies, then swap the leaf out.
    cache.invalidateProcess(1);
    ASSERT_TRUE(table.swapOutLeaf(5));
    ASSERT_TRUE(table.leafSwappedOut(5));

    // NIC translation: leaf absent -> fault -> host re-installs.
    auto nl = utlb.nicTranslate(5);
    EXPECT_TRUE(nl.fault);
    EXPECT_FALSE(table.leafSwappedOut(5));
    EXPECT_EQ(nl.pfn, pins.pinnedFrame(1, 5));
    EXPECT_EQ(table.swapIns(), 1u);
    // The neighbouring entry survived the round trip.
    EXPECT_EQ(table.get(6), pins.pinnedFrame(1, 6));
}

TEST_F(MultiProcStack, GarbageFrameNeverEscapesIntoUserTranslations)
{
    auto &utlb = addProcess(1, 16);
    utlb::sim::Rng rng(13);
    for (int step = 0; step < 2000; ++step) {
        Vpn vpn = rng.below(64);
        auto tr = utlb.translate(addrOf(vpn), kPageSize);
        ASSERT_TRUE(tr.ok);
        ASSERT_NE(tr.pageAddrs[0],
                  utlb::mem::frameAddr(driver.garbageFrame()));
    }
}

TEST_F(MultiProcStack, UtlbAndIntrCoexistOnOneCacheSafely)
{
    // A UTLB-managed process and an interrupt-managed process share
    // the NIC cache; their entries never cross-contaminate.
    auto &utlb = addProcess(1);
    auto intr_space = std::make_unique<AddressSpace>(9, physMem);
    pins.registerSpace(*intr_space);
    InterruptTlb intr(pins, cache, costs, timings);

    utlb::sim::Rng rng(5);
    for (int step = 0; step < 2000; ++step) {
        Vpn vpn = rng.below(200);
        if (rng.chance(0.5)) {
            auto tr = utlb.translate(addrOf(vpn), kPageSize);
            ASSERT_TRUE(tr.ok);
            ASSERT_EQ(tr.pageAddrs[0],
                      utlb::mem::frameAddr(
                          *pins.pinnedFrame(1, vpn)));
        } else {
            auto lk = intr.translate(9, vpn);
            ASSERT_FALSE(lk.failed);
            ASSERT_EQ(lk.pfn, *pins.pinnedFrame(9, vpn));
        }
    }
}

TEST(SramBudget, SixteenKCacheLeavesRoomForDirectoriesIn1MB)
{
    // The largest swept configuration must coexist with per-process
    // directories and command rings inside the board's 1 MB.
    Sram sram(1 << 20);
    NicTimings timings;
    SharedUtlbCache cache({16384, 1, true}, timings, &sram);
    EXPECT_EQ(sram.regionSize("utlb-cache"), 64u * 1024);
    // 5 processes x (4 KB directory + ring) fit comfortably.
    EXPECT_GT(sram.available(), 100u * 1024);
}

TEST(SramBudgetDeath, OversizedCacheDiesFatally)
{
    EXPECT_DEATH(
        {
            Sram sram(16 * 1024);
            NicTimings timings;
            SharedUtlbCache cache({16384, 1, true}, timings, &sram);
        },
        "SRAM");
}

} // namespace
