/**
 * @file
 * Integration tests for the VMMC communication model: export /
 * import, remote store, remote fetch, transfer redirection, and the
 * whole stack under packet loss.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <vector>

#include "mem/page.hpp"
#include "vmmc/system.hpp"

namespace {

using namespace utlb::vmmc;
using utlb::mem::addrOf;
using utlb::mem::kPageSize;
using utlb::mem::pageOf;
using utlb::mem::VirtAddr;
using utlb::sim::Tick;
using utlb::sim::ticksToUs;

/** Fill a process buffer with a recognizable pattern. */
std::vector<std::uint8_t>
pattern(std::size_t n, std::uint8_t seed)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(seed + i * 7);
    return v;
}

class VmmcRig : public ::testing::Test
{
  protected:
    VmmcRig() : VmmcRig(0.0) {}

    explicit VmmcRig(double loss)
        : cluster(makeConfig(loss)),
          sender(cluster.node(0)), receiver(cluster.node(1))
    {
        sender.createProcess(1);
        receiver.createProcess(2);
    }

    static ClusterConfig
    makeConfig(double loss)
    {
        ClusterConfig cfg;
        cfg.nodes = 2;
        cfg.lossProbability = loss;
        cfg.node.memoryFrames = 4096;
        cfg.node.cache = {1024, 1, true};
        return cfg;
    }

    /** Export on the receiver and import on the sender. */
    ImportSlot
    wireBuffers(VirtAddr recv_va, std::size_t bytes)
    {
        auto exp = receiver.exportBuffer(2, recv_va, bytes);
        EXPECT_TRUE(exp.has_value());
        exportId = *exp;
        return sender.importBuffer(1, 1, *exp);
    }

    Cluster cluster;
    VmmcNode &sender;
    VmmcNode &receiver;
    ExportId exportId = 0;
};

TEST_F(VmmcRig, SinglePageRemoteStoreDeliversBytes)
{
    VirtAddr send_va = addrOf(10);
    VirtAddr recv_va = addrOf(20);
    auto slot = wireBuffers(recv_va, kPageSize);

    auto data = pattern(1024, 3);
    sender.space(1).writeBytes(send_va, data);
    ASSERT_TRUE(sender.send(1, send_va, data.size(), slot, 0));
    cluster.run();

    std::vector<std::uint8_t> got(data.size());
    receiver.space(2).readBytes(recv_va, got);
    EXPECT_EQ(got, data);
    EXPECT_EQ(receiver.bytesDeposited(), data.size());
    EXPECT_EQ(receiver.transfersCompleted(), 1u);
}

TEST_F(VmmcRig, MultiPageUnalignedTransfer)
{
    VirtAddr send_va = addrOf(10) + 123;   // unaligned source
    VirtAddr recv_va = addrOf(20) + 1111;  // differently unaligned dst
    std::size_t nbytes = 3 * kPageSize + 700;
    auto slot = wireBuffers(recv_va, nbytes);

    auto data = pattern(nbytes, 9);
    sender.space(1).writeBytes(send_va, data);
    ASSERT_TRUE(sender.send(1, send_va, nbytes, slot, 0));
    cluster.run();

    std::vector<std::uint8_t> got(nbytes);
    receiver.space(2).readBytes(recv_va, got);
    EXPECT_EQ(got, data);
    EXPECT_GE(sender.fragmentsSent(), 4u);
}

TEST_F(VmmcRig, RemoteOffsetPlacesDataWithinBuffer)
{
    VirtAddr recv_va = addrOf(20);
    auto slot = wireBuffers(recv_va, 2 * kPageSize);
    auto data = pattern(256, 1);
    sender.space(1).writeBytes(addrOf(5), data);
    ASSERT_TRUE(sender.send(1, addrOf(5), 256, slot, 5000));
    cluster.run();
    std::vector<std::uint8_t> got(256);
    receiver.space(2).readBytes(recv_va + 5000, got);
    EXPECT_EQ(got, data);
}

TEST_F(VmmcRig, BackToBackSendsAllArrive)
{
    VirtAddr recv_va = addrOf(50);
    auto slot = wireBuffers(recv_va, 32 * kPageSize);
    for (int i = 0; i < 16; ++i) {
        auto data = pattern(kPageSize, static_cast<std::uint8_t>(i));
        sender.space(1).writeBytes(addrOf(100 + i), data);
        ASSERT_TRUE(sender.send(1, addrOf(100 + i), kPageSize, slot,
                                static_cast<std::uint64_t>(i)
                                    * kPageSize));
    }
    cluster.run();
    for (int i = 0; i < 16; ++i) {
        std::vector<std::uint8_t> got(kPageSize);
        receiver.space(2).readBytes(
            recv_va + static_cast<std::uint64_t>(i) * kPageSize, got);
        EXPECT_EQ(got, pattern(kPageSize, static_cast<std::uint8_t>(i)))
            << "transfer " << i;
    }
    EXPECT_EQ(receiver.bytesDeposited(), 16u * kPageSize);
}

TEST_F(VmmcRig, RemoteFetchPullsData)
{
    // Receiver exports a buffer containing data; sender fetches it.
    VirtAddr remote_va = addrOf(30);
    auto data = pattern(2 * kPageSize, 17);
    receiver.space(2).writeBytes(remote_va, data);
    auto slot = wireBuffers(remote_va, 2 * kPageSize);

    VirtAddr local_va = addrOf(60) + 64;
    ASSERT_TRUE(sender.fetch(1, local_va, data.size(), slot, 0));
    cluster.run();

    std::vector<std::uint8_t> got(data.size());
    sender.space(1).readBytes(local_va, got);
    EXPECT_EQ(got, data);
    EXPECT_EQ(sender.transfersCompleted(), 1u);
}

TEST_F(VmmcRig, FetchWithOffsetReadsTheRightWindow)
{
    VirtAddr remote_va = addrOf(30);
    auto data = pattern(4 * kPageSize, 5);
    receiver.space(2).writeBytes(remote_va, data);
    auto slot = wireBuffers(remote_va, 4 * kPageSize);

    ASSERT_TRUE(sender.fetch(1, addrOf(70), 512, slot, 6000));
    cluster.run();

    std::vector<std::uint8_t> got(512);
    sender.space(1).readBytes(addrOf(70), got);
    std::vector<std::uint8_t> want(data.begin() + 6000,
                                   data.begin() + 6512);
    EXPECT_EQ(got, want);
}

TEST_F(VmmcRig, RedirectionDepositsAtNewBuffer)
{
    VirtAddr recv_va = addrOf(20);
    VirtAddr redirect_va = addrOf(90) + 256;
    auto slot = wireBuffers(recv_va, kPageSize);
    ASSERT_TRUE(receiver.redirect(exportId, redirect_va));

    auto data = pattern(2000, 11);
    sender.space(1).writeBytes(addrOf(4), data);
    ASSERT_TRUE(sender.send(1, addrOf(4), data.size(), slot, 0));
    cluster.run();

    std::vector<std::uint8_t> got(data.size());
    receiver.space(2).readBytes(redirect_va, got);
    EXPECT_EQ(got, data);
    // The original location stayed untouched (zero-filled pages).
    std::vector<std::uint8_t> orig(data.size());
    receiver.space(2).readBytes(recv_va, orig);
    EXPECT_EQ(std::count(orig.begin(), orig.end(), 0),
              static_cast<long>(orig.size()));
}

TEST_F(VmmcRig, UnredirectRestoresOriginalTarget)
{
    VirtAddr recv_va = addrOf(20);
    auto slot = wireBuffers(recv_va, kPageSize);
    receiver.redirect(exportId, addrOf(90));
    ASSERT_TRUE(receiver.unredirect(exportId));

    auto data = pattern(100, 2);
    sender.space(1).writeBytes(addrOf(4), data);
    sender.send(1, addrOf(4), 100, slot, 0);
    cluster.run();

    std::vector<std::uint8_t> got(100);
    receiver.space(2).readBytes(recv_va, got);
    EXPECT_EQ(got, data);
}

TEST_F(VmmcRig, DeliverCallbackFiresOnCompletion)
{
    VirtAddr recv_va = addrOf(20);
    auto slot = wireBuffers(recv_va, 4 * kPageSize);
    std::vector<std::pair<ExportId, std::uint64_t>> events;
    receiver.setDeliverCallback(
        [&](ExportId id, std::uint64_t bytes) {
            events.emplace_back(id, bytes);
        });
    sender.space(1).writeBytes(addrOf(4), pattern(3 * kPageSize, 1));
    sender.send(1, addrOf(4), 3 * kPageSize, slot, 0);
    cluster.run();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].first, exportId);
    EXPECT_EQ(events[0].second, 3u * kPageSize);
}

TEST_F(VmmcRig, SendLatencyIsPlausible)
{
    VirtAddr recv_va = addrOf(20);
    auto slot = wireBuffers(recv_va, kPageSize);
    sender.space(1).writeBytes(addrOf(4), pattern(kPageSize, 1));
    Tick start = cluster.clock().now();
    sender.send(1, addrOf(4), kPageSize, slot, 0);
    cluster.run();
    double us = ticksToUs(receiver.lastDepositTime() - start);
    // One page: pin (~27) + translations (~2x3) + two DMAs (~32 each)
    // + wire (~26). Anything from 60 us to 250 us is sane; anything
    // outside that means the cost plumbing broke.
    EXPECT_GT(us, 60.0);
    EXPECT_LT(us, 250.0);
}

TEST_F(VmmcRig, SecondSendIsFasterThanFirst)
{
    VirtAddr recv_va = addrOf(20);
    auto slot = wireBuffers(recv_va, kPageSize);
    sender.space(1).writeBytes(addrOf(4), pattern(kPageSize, 1));

    Tick t0 = cluster.clock().now();
    sender.send(1, addrOf(4), kPageSize, slot, 0);
    cluster.run();
    Tick first = receiver.lastDepositTime() - t0;

    Tick t1 = cluster.clock().now();
    sender.send(1, addrOf(4), kPageSize, slot, 0);
    cluster.run();
    Tick second = receiver.lastDepositTime() - t1;

    // Warm path: no pinning, NIC cache hits on both sides.
    EXPECT_LT(second, first);
}

TEST_F(VmmcRig, SenderPagesLockedOnlyWhileSendOutstanding)
{
    VirtAddr recv_va = addrOf(20);
    auto slot = wireBuffers(recv_va, kPageSize);
    sender.space(1).writeBytes(addrOf(4), pattern(64, 1));
    sender.send(1, addrOf(4), 64, slot, 0);
    // Immediately after posting, the page is locked (§3.1).
    EXPECT_TRUE(sender.utlb(1).pinManager().isLocked(4));
    cluster.run();
    EXPECT_FALSE(sender.utlb(1).pinManager().isLocked(4));
    // ...but still pinned (UTLB keeps translations alive).
    EXPECT_TRUE(sender.utlb(1).pinManager().isPinned(4));
}

TEST_F(VmmcRig, ExportPinsAndUnexportReleases)
{
    VirtAddr recv_va = addrOf(40);
    auto exp = receiver.exportBuffer(2, recv_va, 2 * kPageSize);
    ASSERT_TRUE(exp.has_value());
    EXPECT_TRUE(receiver.utlb(2).pinManager().isLocked(40));
    EXPECT_TRUE(receiver.utlb(2).pinManager().isLocked(41));
    EXPECT_TRUE(receiver.unexportBuffer(*exp));
    EXPECT_FALSE(receiver.utlb(2).pinManager().isLocked(40));
    EXPECT_FALSE(receiver.unexportBuffer(*exp));  // already gone
}

TEST_F(VmmcRig, SendToBogusSlotFails)
{
    EXPECT_FALSE(sender.send(1, addrOf(4), 64, 999, 0));
    EXPECT_FALSE(sender.send(1, addrOf(4), 0, 0, 0));
}

class LossyVmmcRig : public VmmcRig
{
  protected:
    LossyVmmcRig() : VmmcRig(0.15) {}
};

TEST_F(LossyVmmcRig, TransfersSurvivePacketLoss)
{
    VirtAddr recv_va = addrOf(20);
    std::size_t nbytes = 8 * kPageSize;
    auto slot = wireBuffers(recv_va, nbytes);
    auto data = pattern(nbytes, 77);
    sender.space(1).writeBytes(addrOf(100), data);
    ASSERT_TRUE(sender.send(1, addrOf(100), nbytes, slot, 0));
    cluster.run();

    std::vector<std::uint8_t> got(nbytes);
    receiver.space(2).readBytes(recv_va, got);
    EXPECT_EQ(got, data);
    EXPECT_GT(sender.reliable().retransmissions(), 0u);
    EXPECT_EQ(sender.reliable().unackedPackets(), 0u);
}

TEST_F(LossyVmmcRig, FetchSurvivesPacketLoss)
{
    VirtAddr remote_va = addrOf(30);
    auto data = pattern(4 * kPageSize, 21);
    receiver.space(2).writeBytes(remote_va, data);
    auto slot = wireBuffers(remote_va, 4 * kPageSize);
    ASSERT_TRUE(sender.fetch(1, addrOf(70), data.size(), slot, 0));
    cluster.run();
    std::vector<std::uint8_t> got(data.size());
    sender.space(1).readBytes(addrOf(70), got);
    EXPECT_EQ(got, data);
}

TEST(VmmcCluster, FourNodeAllToAll)
{
    ClusterConfig cfg;
    cfg.nodes = 4;
    cfg.node.memoryFrames = 4096;
    Cluster cluster(cfg);
    // Each node runs one process; everyone exports a buffer and
    // everyone stores a distinct pattern into everyone else's.
    std::vector<ExportId> exports(4);
    for (std::uint32_t n = 0; n < 4; ++n) {
        cluster.node(n).createProcess(100 + n);
        auto e = cluster.node(n).exportBuffer(100 + n, addrOf(10),
                                              4 * kPageSize);
        ASSERT_TRUE(e.has_value());
        exports[n] = *e;
    }
    for (std::uint32_t src = 0; src < 4; ++src) {
        for (std::uint32_t dst = 0; dst < 4; ++dst) {
            if (src == dst)
                continue;
            auto slot = cluster.node(src).importBuffer(100 + src, dst,
                                                       exports[dst]);
            auto data = pattern(kPageSize,
                                static_cast<std::uint8_t>(src * 4));
            cluster.node(src).space(100 + src)
                .writeBytes(addrOf(50 + dst), data);
            ASSERT_TRUE(cluster.node(src).send(
                100 + src, addrOf(50 + dst), kPageSize, slot,
                static_cast<std::uint64_t>(src) * kPageSize));
        }
    }
    cluster.run();
    for (std::uint32_t dst = 0; dst < 4; ++dst) {
        for (std::uint32_t src = 0; src < 4; ++src) {
            if (src == dst)
                continue;
            std::vector<std::uint8_t> got(kPageSize);
            cluster.node(dst).space(100 + dst).readBytes(
                addrOf(10) + static_cast<std::uint64_t>(src) * kPageSize,
                got);
            EXPECT_EQ(got, pattern(kPageSize,
                                   static_cast<std::uint8_t>(src * 4)))
                << src << "->" << dst;
        }
    }
}

} // namespace

// Re-opened namespace: interrupt-mode end-to-end tests.
namespace {

using utlb::vmmc::XlateMode;

class IntrModeRig : public ::testing::Test
{
  protected:
    IntrModeRig()
    {
        ClusterConfig cfg;
        cfg.nodes = 2;
        cfg.node.cache = {64, 1, true};  // tiny: force evictions
        cfg.node.mode = XlateMode::Interrupt;
        cluster = std::make_unique<Cluster>(cfg);
        cluster->node(0).createProcess(1);
        cluster->node(1).createProcess(2);
    }

    std::unique_ptr<Cluster> cluster;
};

TEST_F(IntrModeRig, DataIntegritySurvivesEvictionChurn)
{
    auto &a = cluster->node(0);
    auto &b = cluster->node(1);
    auto exp = b.exportBuffer(2, addrOf(20), 128 * kPageSize);
    auto slot = a.importBuffer(1, 1, *exp);

    // 128-page working set through a 64-entry cache: every lap
    // interrupts, pins, and unpins continuously.
    for (int i = 0; i < 128; ++i) {
        auto data = pattern(kPageSize, static_cast<std::uint8_t>(i));
        a.space(1).writeBytes(addrOf(500 + i), data);
        ASSERT_TRUE(a.send(1, addrOf(500 + i), kPageSize, slot,
                           static_cast<std::uint64_t>(i) * kPageSize));
        cluster->run();
    }
    for (int i = 0; i < 128; ++i) {
        std::vector<std::uint8_t> got(kPageSize);
        b.space(2).readBytes(
            addrOf(20) + static_cast<std::uint64_t>(i) * kPageSize,
            got);
        ASSERT_EQ(got, pattern(kPageSize, static_cast<std::uint8_t>(i)))
            << i;
    }
    EXPECT_EQ(b.bytesDeposited(), 128u * kPageSize);
}

TEST_F(IntrModeRig, InterruptModeUnpinsWhileUtlbModeDoesNot)
{
    auto &a = cluster->node(0);
    auto &b = cluster->node(1);
    auto exp = b.exportBuffer(2, addrOf(20), 128 * kPageSize);
    auto slot = a.importBuffer(1, 1, *exp);
    std::vector<std::uint8_t> page(kPageSize, 1);
    for (int i = 0; i < 128; ++i) {
        a.space(1).writeBytes(addrOf(500 + i), page);
        a.send(1, addrOf(500 + i), kPageSize, slot,
               static_cast<std::uint64_t>(i) * kPageSize);
        cluster->run();
    }
    // Cache churn forced eviction-driven unpins on the send side.
    EXPECT_GT(a.pinFacility().totalPagesUnpinned(), 0u);

    // Same workload in UTLB mode: zero unpins.
    ClusterConfig ucfg;
    ucfg.nodes = 2;
    ucfg.node.cache = {64, 1, true};
    Cluster utlb_cluster(ucfg);
    auto &ua = utlb_cluster.node(0);
    auto &ub = utlb_cluster.node(1);
    ua.createProcess(1);
    ub.createProcess(2);
    auto uexp = ub.exportBuffer(2, addrOf(20), 128 * kPageSize);
    auto uslot = ua.importBuffer(1, 1, *uexp);
    for (int i = 0; i < 128; ++i) {
        ua.space(1).writeBytes(addrOf(500 + i), page);
        ua.send(1, addrOf(500 + i), kPageSize, uslot,
                static_cast<std::uint64_t>(i) * kPageSize);
        utlb_cluster.run();
    }
    EXPECT_EQ(ua.pinFacility().totalPagesUnpinned(), 0u);
    EXPECT_EQ(ub.bytesDeposited(), 128u * kPageSize);
}

TEST_F(IntrModeRig, FetchWorksInInterruptMode)
{
    auto &a = cluster->node(0);
    auto &b = cluster->node(1);
    auto data = pattern(2 * kPageSize, 5);
    b.space(2).writeBytes(addrOf(30), data);
    auto exp = b.exportBuffer(2, addrOf(30), 2 * kPageSize);
    auto slot = a.importBuffer(1, 1, *exp);
    ASSERT_TRUE(a.fetch(1, addrOf(70), data.size(), slot, 0));
    cluster->run();
    std::vector<std::uint8_t> got(data.size());
    a.space(1).readBytes(addrOf(70), got);
    EXPECT_EQ(got, data);
}

} // namespace

// Per-process UTLB submit-by-index path (§3.1 + §4.2 garbage page).
namespace {

class SendIdxRig : public ::testing::Test
{
  protected:
    SendIdxRig()
    {
        ClusterConfig cfg;
        cfg.nodes = 2;
        cluster = std::make_unique<Cluster>(cfg);
        a = &cluster->node(0);
        b = &cluster->node(1);
        a->createProcess(1);
        b->createProcess(2);
        a->enablePerProcessUtlb(1, 64);
        auto exp = b->exportBuffer(2, addrOf(20), 4 * kPageSize);
        exportId = *exp;
        slot = a->importBuffer(1, 1, exportId);
    }

    std::unique_ptr<Cluster> cluster;
    VmmcNode *a = nullptr;
    VmmcNode *b = nullptr;
    ExportId exportId = 0;
    ImportSlot slot = 0;
};

TEST_F(SendIdxRig, IndexSubmissionDeliversData)
{
    auto data = pattern(1000, 5);
    a->space(1).writeBytes(addrOf(40) + 100, data);
    // User level: resolve the page to a table index (Figure 2).
    auto lk = a->perProcessUtlb(1).lookup(addrOf(40), kPageSize);
    ASSERT_TRUE(lk.ok);
    ASSERT_EQ(lk.indices.size(), 1u);
    // Submit the index to the NIC.
    ASSERT_TRUE(a->sendIdx(1, lk.indices[0], 100, data.size(), slot,
                           64));
    cluster->run();
    std::vector<std::uint8_t> got(data.size());
    b->space(2).readBytes(addrOf(20) + 64, got);
    EXPECT_EQ(got, data);
}

TEST_F(SendIdxRig, SecondLookupReturnsSameIndexWithoutPinning)
{
    auto lk1 = a->perProcessUtlb(1).lookup(addrOf(40), kPageSize);
    auto lk2 = a->perProcessUtlb(1).lookup(addrOf(40), kPageSize);
    EXPECT_EQ(lk1.indices, lk2.indices);
    EXPECT_EQ(lk2.pagesPinned, 0u);
    EXPECT_FALSE(lk2.checkMiss);
}

TEST_F(SendIdxRig, BogusIndexIsHarmlessGarbageTransfer)
{
    // A malicious/buggy process submits an index it never installed:
    // the NIC transfers from the driver's zero-filled garbage page.
    // "No harm is done to the system or other applications" (§4.2).
    b->space(2).writeBytes(addrOf(20), pattern(256, 9));  // pre-fill
    ASSERT_TRUE(a->sendIdx(1, 9999, 0, 256, slot, 0));
    cluster->run();
    std::vector<std::uint8_t> got(256);
    b->space(2).readBytes(addrOf(20), got);
    // Export overwritten with garbage-page zeros — ugly for the
    // buggy app, but isolated and crash-free.
    EXPECT_EQ(std::count(got.begin(), got.end(), 0), 256);
    EXPECT_EQ(b->bytesDeposited(), 256u);
}

TEST_F(SendIdxRig, StaleIndexAfterEvictionReadsGarbageNotOldPage)
{
    // Fill the 64-entry table so the first page's entry is evicted,
    // then submit the stale index: it must NOT leak the evicted
    // page's old frame.
    auto lk = a->perProcessUtlb(1).lookup(addrOf(40), kPageSize);
    auto stale = lk.indices[0];
    a->space(1).writeBytes(addrOf(40), pattern(64, 3));
    for (int i = 1; i <= 64; ++i)
        a->perProcessUtlb(1).lookup(addrOf(200 + i), kPageSize);
    EXPECT_FALSE(a->perProcessUtlb(1).indexOf(40).has_value());

    ASSERT_TRUE(a->sendIdx(1, stale, 0, 64, slot, 0));
    cluster->run();
    std::vector<std::uint8_t> got(64);
    b->space(2).readBytes(addrOf(20), got);
    // Either zeros (garbage page) or another still-valid page of the
    // same process — never a crash; with LRU eviction order the slot
    // was recycled, so we check it is not the stale page's data.
    EXPECT_NE(got, pattern(64, 3));
}

TEST_F(SendIdxRig, RejectsOversizedAndUnconfiguredUse)
{
    EXPECT_FALSE(a->sendIdx(1, 0, 100, kPageSize, slot, 0));  // spans
    EXPECT_FALSE(a->sendIdx(1, 0, 0, 0, slot, 0));            // empty
    // Process without a per-process table cannot use the path.
    b->createProcess(3);
    EXPECT_FALSE(b->sendIdx(3, 0, 0, 64, 0, 0));
}

} // namespace

// Node statistics report.
namespace {

TEST_F(VmmcRig, PrintStatsReportsActivity)
{
    VirtAddr recv_va = addrOf(20);
    auto slot = wireBuffers(recv_va, kPageSize);
    sender.space(1).writeBytes(addrOf(4), pattern(kPageSize, 1));
    sender.send(1, addrOf(4), kPageSize, slot, 0);
    cluster.run();

    std::ostringstream oss;
    sender.printStats(oss);
    receiver.printStats(oss);
    auto text = oss.str();
    EXPECT_NE(text.find("vmmc.sends                1"),
              std::string::npos);
    EXPECT_NE(text.find("nic.cache.hits"), std::string::npos);
    EXPECT_NE(text.find("host.pin.pagesPinned"), std::string::npos);
    EXPECT_NE(text.find("link.acksSent"), std::string::npos);
    EXPECT_NE(text.find("---- node 0 ----"), std::string::npos);
    EXPECT_NE(text.find("---- node 1 ----"), std::string::npos);
}

} // namespace
