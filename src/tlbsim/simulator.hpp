/**
 * @file
 * Trace-driven UTLB analysis (§6).
 *
 * Replays a node trace through the *real* UTLB stack (driver, pin
 * manager, host page tables, Shared UTLB-Cache) or through the
 * interrupt-based baseline, and reports the statistics the paper's
 * tables are built from: check misses, NIC translation misses, pin
 * and unpin counts, modeled lookup costs, and the
 * compulsory/capacity/conflict breakdown of NIC cache misses
 * (Hill's three-C model, classified against a fully-associative LRU
 * shadow cache of equal capacity).
 */

#ifndef UTLB_TLBSIM_SIMULATOR_HPP
#define UTLB_TLBSIM_SIMULATOR_HPP

#include <cstdint>
#include <string>

#include "core/cost_model.hpp"
#include "core/replacement.hpp"
#include "core/shared_cache.hpp"
#include "sim/tracer.hpp"
#include "sim/types.hpp"
#include "trace/record.hpp"

namespace utlb::tlbsim {

/** Configuration of one simulation run. */
struct SimConfig {
    core::CacheConfig cache{8192, 1, true};

    /** Entries fetched per NIC miss (UTLB only; 1 = no prefetch). */
    std::size_t prefetchEntries = 1;

    /**
     * Per-process physical memory allowance in pages (0 =
     * unlimited). 1024 models the paper's 4 MB restriction, 4096
     * the 16 MB one.
     */
    std::size_t memLimitPages = 0;

    /** User-level replacement policy (UTLB only). */
    core::PolicyKind policy = core::PolicyKind::Lru;

    /** Sequential pre-pin batch (UTLB only; §6.5). */
    std::size_t prepinPages = 1;

    /**
     * Drive the UTLB replay through translateRange() instead of the
     * per-page loop (UTLB only). Modeled costs and stats are
     * identical by construction; only the simulator's wall-clock
     * changes.
     */
    bool batchedRange = false;

    /** Seed for stochastic policies. */
    std::uint64_t seed = 12345;

    /**
     * Lookups to run before statistics collection starts (state is
     * still updated during warm-up). 0 reproduces the paper's
     * methodology, which includes the cold start; a nonzero window
     * isolates steady-state behaviour.
     */
    std::size_t warmupLookups = 0;

    /** Host machine the cost model describes. */
    core::HostProfile hostProfile = core::HostProfile::PentiumIINT;

    /**
     * Run the invariant auditors over the whole translation stack
     * every N lookups (0 = never). A violation aborts the run with
     * the full list of findings; see docs/checking.md.
     */
    std::size_t auditEvery = 0;

    /**
     * Optional event tracer: when set, the UTLB replay emits the
     * NIC miss path (cache probe -> table DMA read -> pin ioctl ->
     * install) as Chrome trace events. Owned by the caller.
     */
    sim::Tracer *tracer = nullptr;
};

/** Statistics of one simulation run. */
struct SimResult {
    std::uint64_t lookups = 0;         //!< communication operations
    std::uint64_t probes = 0;          //!< per-page NIC cache probes

    std::uint64_t checkMissLookups = 0; //!< lookups w/ unpinned pages
    std::uint64_t niMissLookups = 0;    //!< lookups w/ >=1 NIC miss
    std::uint64_t niMissProbes = 0;     //!< page-granularity misses

    std::uint64_t pagesPinned = 0;
    std::uint64_t pagesUnpinned = 0;
    std::uint64_t pinIoctls = 0;        //!< UTLB ioctl batches
    std::uint64_t interrupts = 0;       //!< Intr-approach interrupts

    sim::Tick hostTime = 0;             //!< user-level + ioctl time
    sim::Tick pinTime = 0;              //!< portion pinning
    sim::Tick unpinTime = 0;            //!< portion unpinning
    sim::Tick nicTime = 0;              //!< NIC probe + miss handling

    std::uint64_t compulsoryMisses = 0;
    std::uint64_t capacityMisses = 0;
    std::uint64_t conflictMisses = 0;

    std::uint64_t audits = 0;  //!< invariant sweeps run (all clean)

    /** Wall-clock time of the replay loop (simulator speed, not a
     *  modeled quantity). */
    double wallNs = 0;

    /**
     * The run serialized as one "utlb-stats-v1" JSON object:
     * mechanism, configuration, headline results (with the derived
     * table metrics), and the full per-component statistics tree
     * (shared cache, driver, pin facility, per-process pin
     * managers). Always populated; tlbsim --stats-json writes it
     * out.
     */
    std::string statsJson;

    /** Table 4/5 "check misses" row: per lookup. */
    double checkMissPerLookup() const
    {
        return ratio(checkMissLookups, lookups);
    }

    /** Table 4/5 "NI misses" row: lookups with a miss, per lookup. */
    double niMissPerLookup() const
    {
        return ratio(niMissLookups, lookups);
    }

    /** Table 4/5 "unpins" row: pages unpinned per lookup. */
    double unpinsPerLookup() const
    {
        return ratio(pagesUnpinned, lookups);
    }

    /** Table 8 / Fig 7-8 metric: misses per cache probe. */
    double probeMissRate() const { return ratio(niMissProbes, probes); }

    /** Table 6 metric: average per-lookup cost in microseconds. */
    double
    avgLookupCostUs() const
    {
        return lookups == 0
            ? 0.0
            : sim::ticksToUs(hostTime + nicTime)
                / static_cast<double>(lookups);
    }

    /** Table 7 metric: amortized pin cost per lookup (us). */
    double
    amortizedPinUs() const
    {
        return lookups == 0
            ? 0.0
            : sim::ticksToUs(pinTime) / static_cast<double>(lookups);
    }

    /** Table 7 metric: amortized unpin cost per lookup (us). */
    double
    amortizedUnpinUs() const
    {
        return lookups == 0
            ? 0.0
            : sim::ticksToUs(unpinTime) / static_cast<double>(lookups);
    }

    /** Average NIC-side cost per probe (us); Fig 8 right graph. */
    double
    avgProbeCostUs() const
    {
        return probes == 0
            ? 0.0
            : sim::ticksToUs(nicTime) / static_cast<double>(probes);
    }

  private:
    static double
    ratio(std::uint64_t num, std::uint64_t den)
    {
        return den == 0
            ? 0.0
            : static_cast<double>(num) / static_cast<double>(den);
    }
};

/** Replay @p trace through the UTLB mechanism. */
SimResult simulateUtlb(const trace::Trace &trace, const SimConfig &cfg);

/** Replay @p trace through the interrupt-based baseline. */
SimResult simulateIntr(const trace::Trace &trace, const SimConfig &cfg);

} // namespace utlb::tlbsim

#endif // UTLB_TLBSIM_SIMULATOR_HPP
