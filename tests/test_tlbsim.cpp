/**
 * @file
 * Tests for the trace-driven simulator: UTLB vs interrupt-baseline
 * invariants, miss classification, memory limits, prefetching, and
 * the cost equations.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "core/pin_manager.hpp"
#include "core/registration_cache.hpp"
#include "mem/address_space.hpp"
#include "mem/phys_memory.hpp"
#include "mem/pinning.hpp"
#include "nic/sram.hpp"
#include "tlbsim/simulator.hpp"
#include "trace/workloads.hpp"

namespace {

using namespace utlb::tlbsim;
using utlb::mem::addrOf;
using utlb::mem::kPageSize;
using utlb::trace::Trace;
using utlb::trace::TraceOp;
using utlb::trace::TraceRecord;

Trace
simpleTrace(std::initializer_list<std::pair<int, int>> pid_page,
            std::uint32_t nbytes = kPageSize)
{
    Trace t;
    std::uint64_t seq = 0;
    for (auto [pid, page] : pid_page) {
        t.push_back(TraceRecord{
            seq++, static_cast<utlb::mem::ProcId>(pid), TraceOp::Send,
            addrOf(static_cast<utlb::mem::Vpn>(page)), nbytes});
    }
    return t;
}

TEST(TlbSim, EmptyTraceYieldsZeroResult)
{
    SimConfig cfg;
    auto r = simulateUtlb({}, cfg);
    EXPECT_EQ(r.lookups, 0u);
    EXPECT_EQ(r.probes, 0u);
    EXPECT_DOUBLE_EQ(r.avgLookupCostUs(), 0.0);
}

TEST(TlbSim, ColdPagesAreCompulsoryMisses)
{
    SimConfig cfg;
    cfg.cache = {64, 1, true};
    auto r = simulateUtlb(simpleTrace({{1, 10}, {1, 11}, {1, 12}}),
                          cfg);
    EXPECT_EQ(r.lookups, 3u);
    EXPECT_EQ(r.probes, 3u);
    EXPECT_EQ(r.checkMissLookups, 3u);
    EXPECT_EQ(r.niMissProbes, 3u);
    EXPECT_EQ(r.compulsoryMisses, 3u);
    EXPECT_EQ(r.capacityMisses, 0u);
    EXPECT_EQ(r.conflictMisses, 0u);
    EXPECT_EQ(r.pagesPinned, 3u);
    EXPECT_EQ(r.pagesUnpinned, 0u);
}

TEST(TlbSim, RepeatedPageHitsEverything)
{
    SimConfig cfg;
    auto r = simulateUtlb(
        simpleTrace({{1, 10}, {1, 10}, {1, 10}, {1, 10}}), cfg);
    EXPECT_EQ(r.checkMissLookups, 1u);
    EXPECT_EQ(r.niMissProbes, 1u);
    EXPECT_EQ(r.pagesPinned, 1u);
}

TEST(TlbSim, ClassificationSumsToMisses)
{
    SimConfig cfg;
    cfg.cache = {1024, 1, true};
    auto trace = utlb::trace::generateTrace("water");
    auto r = simulateUtlb(trace, cfg);
    EXPECT_EQ(r.compulsoryMisses + r.capacityMisses + r.conflictMisses,
              r.niMissProbes);
    EXPECT_GT(r.compulsoryMisses, 0u);
}

TEST(TlbSim, ConflictMissesVanishWithFullAssociativityEquivalent)
{
    // A cache as large as the footprint with offsetting has (almost)
    // no capacity misses; conflicts may remain by definition.
    SimConfig cfg;
    cfg.cache = {65536, 1, true};
    auto trace = utlb::trace::generateTrace("water");
    auto r = simulateUtlb(trace, cfg);
    EXPECT_EQ(r.capacityMisses, 0u);
}

TEST(TlbSim, UtlbNeverUnpinsWithInfiniteMemory)
{
    SimConfig cfg;
    cfg.cache = {256, 1, true};
    for (const char *app : {"water", "volrend"}) {
        auto r = simulateUtlb(utlb::trace::generateTrace(app), cfg);
        EXPECT_EQ(r.pagesUnpinned, 0u) << app;
    }
}

TEST(TlbSim, IntrUnpinsOnEvictions)
{
    SimConfig cfg;
    cfg.cache = {256, 1, true};
    auto trace = utlb::trace::generateTrace("water");
    auto r = simulateIntr(trace, cfg);
    EXPECT_GT(r.pagesUnpinned, 0u);
    EXPECT_EQ(r.interrupts, r.niMissProbes);
    EXPECT_EQ(r.checkMissLookups, 0u);  // no user-level check
}

TEST(TlbSim, UtlbAndIntrSeeTheSameCacheBehaviour)
{
    // With infinite memory both mechanisms drive identical probe
    // streams into identically-configured caches (Table 4's NI-miss
    // rows are equal for UTLB and Intr).
    SimConfig cfg;
    cfg.cache = {512, 1, true};
    auto trace = utlb::trace::generateTrace("volrend");
    auto u = simulateUtlb(trace, cfg);
    auto i = simulateIntr(trace, cfg);
    EXPECT_EQ(u.niMissProbes, i.niMissProbes);
    EXPECT_EQ(u.probes, i.probes);
}

TEST(TlbSim, MemoryLimitForcesUtlbUnpins)
{
    SimConfig cfg;
    cfg.cache = {8192, 1, true};
    cfg.memLimitPages = 64;
    auto trace = utlb::trace::generateTrace("water");
    auto r = simulateUtlb(trace, cfg);
    EXPECT_GT(r.pagesUnpinned, 0u);
    // Re-pinning raises the check-miss rate versus unlimited memory.
    SimConfig unlimited = cfg;
    unlimited.memLimitPages = 0;
    auto r0 = simulateUtlb(trace, unlimited);
    EXPECT_GT(r.checkMissLookups, r0.checkMissLookups);
}

TEST(TlbSim, BiggerCacheNeverIncreasesMissesMuch)
{
    // Not strictly monotone (offset hashing), but a 16x larger cache
    // must not be worse.
    SimConfig small, big;
    small.cache = {1024, 1, true};
    big.cache = {16384, 1, true};
    for (const char *app : {"fft", "radix", "water"}) {
        auto trace = utlb::trace::generateTrace(app);
        auto s = simulateUtlb(trace, small);
        auto b = simulateUtlb(trace, big);
        EXPECT_LE(b.niMissProbes, s.niMissProbes) << app;
    }
}

TEST(TlbSim, PrefetchReducesMissesAndNeverBreaksCorrectness)
{
    auto trace = utlb::trace::generateTrace("radix");
    SimConfig none, aggressive;
    none.cache = aggressive.cache = {1024, 1, true};
    none.prefetchEntries = 1;
    aggressive.prefetchEntries = 16;
    aggressive.prepinPages = 16;
    auto r1 = simulateUtlb(trace, none);
    auto r16 = simulateUtlb(trace, aggressive);
    EXPECT_LT(r16.niMissProbes, r1.niMissProbes);
    EXPECT_EQ(r16.probes, r1.probes);
}

TEST(TlbSim, CostEquationComponentsArePositiveAndOrdered)
{
    SimConfig cfg;
    cfg.cache = {1024, 1, true};
    auto trace = utlb::trace::generateTrace("fft");
    auto u = simulateUtlb(trace, cfg);
    auto i = simulateIntr(trace, cfg);
    EXPECT_GT(u.avgLookupCostUs(), 0.0);
    // §6: UTLB beats the interrupt approach at small cache sizes for
    // FFT (Table 6's headline comparison).
    EXPECT_LT(u.avgLookupCostUs(), i.avgLookupCostUs());
    // Host-side: pin time is included in host time.
    EXPECT_GE(u.hostTime, u.pinTime + u.unpinTime);
}

TEST(TlbSim, MultiPageLookupsCountOncePerLookup)
{
    // Two-page lookups: check misses and NI-miss lookups are
    // per-operation, probes are per-page.
    SimConfig cfg;
    auto r = simulateUtlb(
        simpleTrace({{1, 10}, {1, 20}}, 2 * kPageSize), cfg);
    EXPECT_EQ(r.lookups, 2u);
    EXPECT_EQ(r.probes, 4u);
    EXPECT_EQ(r.checkMissLookups, 2u);
    EXPECT_EQ(r.niMissLookups, 2u);
    EXPECT_EQ(r.niMissProbes, 4u);
}

TEST(TlbSim, ProcessesShareOneCacheButNotPins)
{
    SimConfig cfg;
    cfg.cache = {8, 1, false};  // tiny, no offsetting: collisions
    // Two processes hammer the same page number; without offsetting
    // they collide in the same set and evict each other.
    Trace t;
    std::uint64_t seq = 0;
    for (int i = 0; i < 20; ++i) {
        t.push_back({seq++, 1, TraceOp::Send, addrOf(8), kPageSize});
        t.push_back({seq++, 2, TraceOp::Send, addrOf(8), kPageSize});
    }
    auto collide = simulateUtlb(t, cfg);
    SimConfig hashed = cfg;
    hashed.cache.indexOffsetting = true;
    auto spread = simulateUtlb(t, hashed);
    EXPECT_GT(collide.niMissProbes, spread.niMissProbes);
    // Pinning is per-process either way: exactly 2 pages pinned.
    EXPECT_EQ(collide.pagesPinned, 2u);
    EXPECT_EQ(spread.pagesPinned, 2u);
}

TEST(TlbSim, DeterministicAcrossRuns)
{
    SimConfig cfg;
    cfg.cache = {2048, 2, true};
    cfg.memLimitPages = 256;
    auto trace = utlb::trace::generateTrace("volrend");
    auto a = simulateUtlb(trace, cfg);
    auto b = simulateUtlb(trace, cfg);
    EXPECT_EQ(a.niMissProbes, b.niMissProbes);
    EXPECT_EQ(a.pagesUnpinned, b.pagesUnpinned);
    EXPECT_EQ(a.hostTime, b.hostTime);
    EXPECT_EQ(a.nicTime, b.nicTime);
}

/** Parameterized policy sweep under a tight memory limit. */
class PolicySweep
    : public ::testing::TestWithParam<utlb::core::PolicyKind>
{};

TEST_P(PolicySweep, AllPoliciesCompleteAndBalanceBudget)
{
    SimConfig cfg;
    cfg.cache = {1024, 1, true};
    cfg.memLimitPages = 128;
    cfg.policy = GetParam();
    auto trace = utlb::trace::generateTrace("water");
    auto r = simulateUtlb(trace, cfg);
    EXPECT_EQ(r.lookups, trace.size());
    // Conservation: pages pinned - unpinned fits within the budget
    // (per process; 5 processes).
    EXPECT_LE(r.pagesPinned - r.pagesUnpinned, 5u * 128u);
    EXPECT_GT(r.pagesPinned, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicySweep,
    ::testing::Values(utlb::core::PolicyKind::Lru,
                      utlb::core::PolicyKind::Mru,
                      utlb::core::PolicyKind::Lfu,
                      utlb::core::PolicyKind::Mfu,
                      utlb::core::PolicyKind::Fifo,
                      utlb::core::PolicyKind::Random),
    [](const ::testing::TestParamInfo<utlb::core::PolicyKind> &info) {
        return utlb::core::toString(info.param);
    });

} // namespace

// Warm-up window: steady-state analysis.
namespace {

TEST(TlbSimWarmup, WarmupExcludesColdStartStats)
{
    auto trace = utlb::trace::generateTrace("water");
    SimConfig cold, warm;
    cold.cache = warm.cache = {16384, 1, true};
    warm.warmupLookups = trace.size() / 2;

    auto c = simulateUtlb(trace, cold);
    auto w = simulateUtlb(trace, warm);
    // Only the post-warmup half is counted.
    EXPECT_EQ(w.lookups, trace.size() - warm.warmupLookups);
    // Water's footprint is fully pinned by halfway: steady state has
    // (almost) no check misses or compulsory misses.
    EXPECT_LT(w.checkMissPerLookup(), 0.02);
    EXPECT_LT(w.probeMissRate(), 0.02);
    EXPECT_GT(c.checkMissPerLookup(), 0.08);
    EXPECT_EQ(w.pagesUnpinned, 0u);
}

TEST(TlbSimWarmup, WarmupBeyondTraceYieldsNothing)
{
    auto trace = utlb::trace::generateTrace("water");
    SimConfig cfg;
    cfg.warmupLookups = trace.size() + 10;
    auto r = simulateUtlb(trace, cfg);
    EXPECT_EQ(r.lookups, 0u);
    EXPECT_EQ(r.probes, 0u);
}

TEST(PinningDifferential, BitmapAndRcacheConvergeToSamePinnedSet)
{
    // With no budget, the UTLB bitmap manager and the registration
    // cache must end up pinning exactly the same set of pages for
    // the same access stream (they only differ under eviction).
    auto trace = utlb::trace::generateTrace("volrend");

    auto run = [&](bool use_rcache) {
        auto shape = utlb::trace::measure(trace);
        auto pm = std::make_unique<utlb::mem::PhysMemory>(
            shape.distinctPages * 3 + 1024);
        utlb::mem::PinFacility pins;
        utlb::nic::Sram sram(4u << 20);
        utlb::nic::NicTimings timings;
        utlb::core::HostCosts costs;
        utlb::core::SharedUtlbCache cache({64, 1, true}, timings);
        utlb::core::UtlbDriver driver(*pm, pins, sram, cache, costs);
        std::map<utlb::mem::ProcId,
                 std::unique_ptr<utlb::mem::AddressSpace>> spaces;
        std::map<utlb::mem::ProcId,
                 std::unique_ptr<utlb::core::PinManager>> mgrs;
        std::map<utlb::mem::ProcId,
                 std::unique_ptr<utlb::core::RegistrationCache>> rcs;

        for (const auto &rec : trace) {
            if (!spaces.count(rec.pid)) {
                auto sp = std::make_unique<utlb::mem::AddressSpace>(
                    rec.pid, *pm);
                driver.registerProcess(*sp);
                spaces.emplace(rec.pid, std::move(sp));
            }
            if (use_rcache) {
                auto it = rcs.find(rec.pid);
                if (it == rcs.end()) {
                    it = rcs.emplace(
                                rec.pid,
                                std::make_unique<
                                    utlb::core::RegistrationCache>(
                                    driver, rec.pid,
                                    utlb::core::RegCacheConfig{}))
                             .first;
                }
                it->second->acquire(rec.va, rec.nbytes);
            } else {
                auto it = mgrs.find(rec.pid);
                if (it == mgrs.end()) {
                    it = mgrs.emplace(
                                rec.pid,
                                std::make_unique<
                                    utlb::core::PinManager>(
                                    driver, rec.pid,
                                    utlb::core::PinManagerConfig{}))
                             .first;
                }
                it->second->ensurePinned(
                    utlb::mem::pageOf(rec.va),
                    utlb::mem::pagesSpanned(rec.va, rec.nbytes));
            }
        }
        // Snapshot: per-process pinned-page counts plus a pinned
        // check over every page the trace touched (scanning the
        // whole VA space would be too slow; the trace's own pages
        // are the complete universe of candidates here).
        std::set<std::pair<utlb::mem::ProcId, utlb::mem::Vpn>> pinned;
        for (const auto &rec : trace) {
            utlb::mem::Vpn start = utlb::mem::pageOf(rec.va);
            std::size_t n =
                utlb::mem::pagesSpanned(rec.va, rec.nbytes);
            for (std::size_t i = 0; i < n; ++i) {
                if (pins.isPinned(rec.pid, start + i))
                    pinned.insert({rec.pid, start + i});
            }
        }
        for (const auto &[pid, sp] : spaces) {
            // Counts must agree with the set (no pins outside it).
            std::size_t in_set = 0;
            for (const auto &[p, v] : pinned)
                in_set += (p == pid);
            EXPECT_EQ(pins.pinnedPages(pid), in_set);
        }
        return pinned;
    };

    auto bitmap_set = run(false);
    auto rcache_set = run(true);
    EXPECT_EQ(bitmap_set, rcache_set);
}

} // namespace
