file(REMOVE_RECURSE
  "../bench/bench_e2e_modes"
  "../bench/bench_e2e_modes.pdb"
  "CMakeFiles/bench_e2e_modes.dir/bench_e2e_modes.cpp.o"
  "CMakeFiles/bench_e2e_modes.dir/bench_e2e_modes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2e_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
