# Empty compiler generated dependencies file for bench_table1_host_ops.
# This may be replaced when dependencies are built.
