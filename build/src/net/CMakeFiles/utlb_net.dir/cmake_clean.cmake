file(REMOVE_RECURSE
  "CMakeFiles/utlb_net.dir/network.cpp.o"
  "CMakeFiles/utlb_net.dir/network.cpp.o.d"
  "libutlb_net.a"
  "libutlb_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utlb_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
