#!/bin/sh
# Wall-clock performance run: Release build, then the hot-path
# harness (translate() vs translateRange() translations/sec) and a
# batched tlbsim replay. Copies BENCH_hotpath.json to the repo root
# so the checked-in baseline can be refreshed in place.
# Usage: scripts/perf.sh [build-dir]
set -e
cd "$(dirname "$0")/.."
BUILD="${1:-build-perf}"
OUT="${UTLB_PERF_OUT:-$BUILD/perf}"

step() { printf '\n=== %s ===\n' "$*"; }

step "Release build ($BUILD)"
cmake -B "$BUILD" -G Ninja -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "$BUILD" --target bench_hotpath tlbsim

mkdir -p "$OUT"

step "bench_hotpath (UTLB_HOTPATH_MS=${UTLB_HOTPATH_MS:-300} ms/cell)"
UTLB_BENCH_JSON_DIR="$OUT" "$BUILD"/bench/bench_hotpath

step "tlbsim --batch replay (radix)"
"$BUILD"/src/tlbsim/tlbsim radix --mode utlb --prefetch 8 --batch \
    --stats-json "$OUT/tlbsim_batch_radix.json"

cp "$OUT/BENCH_hotpath.json" BENCH_hotpath.json
step "done"
echo "results in $OUT; baseline refreshed at BENCH_hotpath.json"
