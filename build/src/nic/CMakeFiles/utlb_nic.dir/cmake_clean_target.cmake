file(REMOVE_RECURSE
  "libutlb_nic.a"
)
