/**
 * @file
 * Golden-equivalence suite for the batched translation path.
 *
 * translateRange() promises bit-identical results, modeled costs,
 * and statistics to a page-at-a-time translate() loop for every
 * configuration — the batching may only change the simulator's
 * wall-clock. These tests hold the two paths against each other over
 * randomized workloads and a config matrix (prefetch width, memory
 * limit, associativity, policy), comparing every Translation field
 * and the full serialized stats tree.
 *
 * The word-level PinBitVector range primitives the batched path is
 * built on (allSetInRange / firstClearInRange / firstSetInRange) are
 * also property-tested here against a brute-force bit loop, and the
 * RecencyPolicy's spliced onAccessRange() against per-page
 * onAccess().
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/bitvector.hpp"
#include "core/driver.hpp"
#include "core/replacement.hpp"
#include "core/utlb.hpp"
#include "mem/address_space.hpp"
#include "mem/phys_memory.hpp"
#include "mem/pinning.hpp"
#include "nic/sram.hpp"
#include "nic/timing.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"

namespace {

using namespace utlb::core;
using utlb::mem::Vpn;
using utlb::sim::Rng;

// ---------------------------------------------------------------------
// PinBitVector range primitives vs brute force
// ---------------------------------------------------------------------

TEST(BitVectorRange, PrimitivesMatchBruteForce)
{
    Rng rng(0xb17b17);
    for (int round = 0; round < 200; ++round) {
        PinBitVector bits;
        // Random pattern straddling several 64-bit words, with runs.
        Vpn base = rng.below(500);
        std::size_t span = 1 + rng.below(300);
        for (Vpn v = base; v < base + span; ++v) {
            if (rng.below(100) < 60)
                bits.set(v);
        }
        Vpn qstart = base > 5 ? base - 5 : 0;
        std::size_t qlen = span + 10;

        // Brute-force references.
        bool all = true;
        Vpn firstClear = 0, firstSet = 0;
        bool haveClear = false, haveSet = false;
        for (Vpn v = qstart; v < qstart + qlen; ++v) {
            if (bits.test(v)) {
                if (!haveSet) {
                    haveSet = true;
                    firstSet = v;
                }
            } else {
                all = false;
                if (!haveClear) {
                    haveClear = true;
                    firstClear = v;
                }
            }
        }

        EXPECT_EQ(bits.allSetInRange(qstart, qlen), all);
        auto clear = bits.firstClearInRange(qstart, qlen);
        ASSERT_EQ(clear.has_value(), haveClear);
        if (haveClear) {
            EXPECT_EQ(*clear, firstClear);
        }
        auto set = bits.firstSetInRange(qstart, qlen);
        ASSERT_EQ(set.has_value(), haveSet);
        if (haveSet) {
            EXPECT_EQ(*set, firstSet);
        }
    }
}

TEST(BitVectorRange, EmptyAndDegenerate)
{
    PinBitVector bits;
    EXPECT_TRUE(bits.allSetInRange(10, 0));
    EXPECT_FALSE(bits.firstClearInRange(10, 0).has_value());
    EXPECT_FALSE(bits.firstSetInRange(10, 0).has_value());
    EXPECT_FALSE(bits.allSetInRange(0, 1));
    bits.set(63);
    bits.set(64);  // word boundary
    EXPECT_TRUE(bits.allSetInRange(63, 2));
    EXPECT_EQ(bits.firstClearInRange(63, 3), Vpn{65});
    EXPECT_EQ(bits.firstSetInRange(0, 200), Vpn{63});
}

// ---------------------------------------------------------------------
// RecencyPolicy::onAccessRange vs per-page onAccess
// ---------------------------------------------------------------------

/** Drain a policy by repeated victim()+onRemove(); returns order. */
std::vector<Vpn>
drain(ReplacementPolicy &p)
{
    std::vector<Vpn> order;
    auto any = [](Vpn) { return true; };
    while (p.size() > 0) {
        auto v = p.victim(any);
        EXPECT_TRUE(v.has_value()) << "victim on nonempty policy";
        if (!v)
            break;
        order.push_back(*v);
        p.onRemove(*v);
    }
    return order;
}

TEST(RecencyRange, SplicedRangeAccessMatchesLoop)
{
    for (PolicyKind kind : {PolicyKind::Lru, PolicyKind::Mru}) {
        Rng rng(0x5eed + static_cast<int>(kind));
        for (int round = 0; round < 50; ++round) {
            auto a = ReplacementPolicy::create(kind);
            auto b = ReplacementPolicy::create(kind);
            // Random tracked population, including vpns past the
            // dense chunk window to hit the sparse fallback.
            std::vector<Vpn> pop;
            std::size_t n = 1 + rng.below(200);
            for (std::size_t i = 0; i < n; ++i) {
                Vpn v = rng.below(100) < 90
                    ? rng.below(4096)
                    : (std::uint64_t{1} << 36) + rng.below(512);
                if (!a->contains(v)) {
                    a->onInsert(v);
                    b->onInsert(v);
                    pop.push_back(v);
                }
            }
            // Interleave single accesses and range accesses (range
            // over a chain, a partial chain, and untracked gaps).
            for (int op = 0; op < 40; ++op) {
                if (rng.below(2) == 0 && !pop.empty()) {
                    Vpn v = pop[rng.below(pop.size())];
                    a->onAccess(v);
                    b->onAccess(v);
                } else {
                    Vpn start = rng.below(4096);
                    std::size_t len = 1 + rng.below(150);
                    for (std::size_t i = 0; i < len; ++i)
                        a->onAccess(start + i);
                    b->onAccessRange(start, len);
                }
            }
            EXPECT_EQ(drain(*a), drain(*b));
        }
    }
}

// ---------------------------------------------------------------------
// translate() vs translateRange() golden equivalence
// ---------------------------------------------------------------------

/** A full single-NIC stack with the simulator's stats tree shape. */
struct Harness {
    utlb::mem::PhysMemory phys;
    utlb::mem::PinFacility pins;
    utlb::nic::Sram sram;
    utlb::nic::NicTimings timings;
    HostCosts costs;
    SharedUtlbCache cache;
    UtlbDriver driver;
    std::unique_ptr<utlb::mem::AddressSpace> space;
    std::unique_ptr<UserUtlb> utlb;
    utlb::sim::StatGroup root{"stack"};

    Harness(std::size_t entries, unsigned assoc,
            const UtlbConfig &ucfg)
        : phys(4096), sram(1u << 20),
          costs(HostProfile::PentiumIINT),
          cache(CacheConfig{entries, assoc, true}, timings, &sram),
          driver(phys, pins, sram, cache, costs)
    {
        space = std::make_unique<utlb::mem::AddressSpace>(1, phys);
        driver.registerProcess(*space);
        utlb = std::make_unique<UserUtlb>(driver, cache, timings, 1,
                                          ucfg);
        root.adopt(cache.stats());
        root.adopt(driver.stats());
        root.adopt(pins.stats());
        root.adopt(sram.stats());
        root.adopt(utlb->stats());
    }

    std::string
    statsDump() const
    {
        std::ostringstream os;
        root.dumpJson(os);
        return os.str();
    }
};

void
expectSameTranslation(const Translation &a, const Translation &b,
                      const std::string &where)
{
    EXPECT_EQ(a.ok, b.ok) << where;
    EXPECT_EQ(a.pageAddrs, b.pageAddrs) << where;
    EXPECT_EQ(a.hostCost, b.hostCost) << where;
    EXPECT_EQ(a.nicCost, b.nicCost) << where;
    EXPECT_EQ(a.pinCost, b.pinCost) << where;
    EXPECT_EQ(a.unpinCost, b.unpinCost) << where;
    EXPECT_EQ(a.checkMiss, b.checkMiss) << where;
    EXPECT_EQ(a.niMisses, b.niMisses) << where;
    EXPECT_EQ(a.pagesPinned, b.pagesPinned) << where;
    EXPECT_EQ(a.pagesUnpinned, b.pagesUnpinned) << where;
    EXPECT_EQ(a.pinIoctls, b.pinIoctls) << where;
    EXPECT_EQ(a.unpinIoctls, b.unpinIoctls) << where;
    EXPECT_EQ(a.faults, b.faults) << where;
    EXPECT_EQ(a.missPages, b.missPages) << where;
}

/**
 * Replay the same randomized workload through both paths on
 * independent identical stacks; every call and the final stats tree
 * must match exactly.
 */
void
runGolden(std::size_t entries, unsigned assoc, std::size_t prefetch,
          std::size_t memlimit, PolicyKind policy,
          std::size_t prepin, std::uint64_t seed)
{
    UtlbConfig ucfg;
    ucfg.prefetchEntries = prefetch;
    ucfg.pin.memLimitPages = memlimit;
    ucfg.pin.policy = policy;
    ucfg.pin.prepinPages = prepin;
    ucfg.pin.seed = seed;

    Harness perpage(entries, assoc, ucfg);
    Harness batched(entries, assoc, ucfg);

    Rng rng(seed ^ 0xfeedULL);
    constexpr std::size_t kBufPages = 512;
    for (int call = 0; call < 300; ++call) {
        // Mixed shapes: repeated single pages (L0 path), small
        // windows, and full sweeps; unaligned starts and lengths.
        Vpn startPage;
        std::size_t npages;
        switch (rng.below(4)) {
        case 0:
            startPage = rng.below(8);
            npages = 1;
            break;
        case 1:
            startPage = rng.below(kBufPages);
            npages = 1 + rng.below(8);
            break;
        default:
            startPage = rng.below(kBufPages);
            npages = 1 + rng.below(96);
            break;
        }
        std::uint64_t offset = rng.below(utlb::mem::kPageSize);
        utlb::mem::VirtAddr va =
            startPage * utlb::mem::kPageSize + offset;
        std::size_t nbytes = npages * utlb::mem::kPageSize
            - offset - rng.below(utlb::mem::kPageSize - offset + 1);
        if (nbytes == 0)
            nbytes = 1;

        Translation a = perpage.utlb->translate(va, nbytes);
        Translation b = batched.utlb->translateRange(va, nbytes);
        expectSameTranslation(
            a, b, "call " + std::to_string(call));
        if (::testing::Test::HasFailure())
            return;
    }
    EXPECT_EQ(perpage.statsDump(), batched.statsDump());
}

TEST(BatchedRange, GoldenDirectMappedNoLimit)
{
    runGolden(1024, 1, 1, 0, PolicyKind::Lru, 1, 1);
}

TEST(BatchedRange, GoldenPrefetchWide)
{
    runGolden(256, 1, 8, 0, PolicyKind::Lru, 1, 2);
}

TEST(BatchedRange, GoldenMemLimitLru)
{
    runGolden(1024, 1, 4, 64, PolicyKind::Lru, 1, 3);
}

TEST(BatchedRange, GoldenMemLimitMru)
{
    runGolden(1024, 1, 4, 64, PolicyKind::Mru, 1, 4);
}

TEST(BatchedRange, GoldenMemLimitRandomPolicy)
{
    runGolden(512, 1, 4, 128, PolicyKind::Random, 1, 5);
}

TEST(BatchedRange, GoldenPrepinBatch)
{
    runGolden(1024, 1, 4, 96, PolicyKind::Lru, 16, 6);
}

TEST(BatchedRange, GoldenSetAssociativeFallback)
{
    // assoc != 1 exercises translateRange's exact per-page fallback.
    runGolden(1024, 2, 4, 64, PolicyKind::Lru, 1, 7);
}

TEST(BatchedRange, ZeroBytesIsEmpty)
{
    UtlbConfig ucfg;
    Harness h(256, 1, ucfg);
    Translation t = h.utlb->translateRange(0x1000, 0);
    EXPECT_TRUE(t.ok);
    EXPECT_TRUE(t.pageAddrs.empty());
    EXPECT_EQ(t.hostCost, 0u);
    EXPECT_EQ(t.nicCost, 0u);
}

TEST(BatchedRange, PinFailureReportedIdentically)
{
    // A 4-page budget cannot hold an 8-page buffer: both paths must
    // fail the same way with the same accounting.
    UtlbConfig ucfg;
    ucfg.pin.memLimitPages = 4;
    Harness a(256, 1, ucfg);
    Harness b(256, 1, ucfg);
    std::size_t nbytes = 8 * utlb::mem::kPageSize;
    Translation ta = a.utlb->translate(0, nbytes);
    Translation tb = b.utlb->translateRange(0, nbytes);
    EXPECT_FALSE(tb.ok);
    expectSameTranslation(ta, tb, "pin failure");
    EXPECT_EQ(a.statsDump(), b.statsDump());
}

} // namespace
