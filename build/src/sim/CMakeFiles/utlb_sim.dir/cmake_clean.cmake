file(REMOVE_RECURSE
  "CMakeFiles/utlb_sim.dir/event_queue.cpp.o"
  "CMakeFiles/utlb_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/utlb_sim.dir/log.cpp.o"
  "CMakeFiles/utlb_sim.dir/log.cpp.o.d"
  "CMakeFiles/utlb_sim.dir/stats.cpp.o"
  "CMakeFiles/utlb_sim.dir/stats.cpp.o.d"
  "CMakeFiles/utlb_sim.dir/table.cpp.o"
  "CMakeFiles/utlb_sim.dir/table.cpp.o.d"
  "libutlb_sim.a"
  "libutlb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utlb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
