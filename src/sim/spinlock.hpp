/**
 * @file
 * A minimal test-and-test-and-set spinlock, plus the seqlock version
 * counter that pairs with it.
 *
 * The spinlock guards the striped per-set write paths of the
 * concurrent Shared UTLB-Cache: critical sections there are a handful
 * of loads and stores on one cache line, far below the cost of
 * parking a thread, so spinning beats std::mutex. The relaxed re-test
 * loop keeps the waiting thread reading its local cache copy instead
 * of hammering the lock line with RMW traffic.
 *
 * SeqCount is the read-side complement: a per-set version counter in
 * the classic seqlock protocol, letting lookups read a set's ways
 * with no lock at all and retry when a writer was active (odd
 * version) or intervened (changed version).
 */

#ifndef UTLB_SIM_SPINLOCK_HPP
#define UTLB_SIM_SPINLOCK_HPP

#include <atomic>
#include <cstdint>

#include "sim/annotations.hpp"

namespace utlb::sim {

class UTLB_CAPABILITY("spinlock") Spinlock
{
  public:
    Spinlock() = default;

    Spinlock(const Spinlock &) = delete;
    Spinlock &operator=(const Spinlock &) = delete;

    void
    lock() UTLB_ACQUIRE()
    {
        while (flag.test_and_set(std::memory_order_acquire)) {
            while (flag.test(std::memory_order_relaxed)) {
#if defined(__x86_64__) || defined(__i386__)
                __builtin_ia32_pause();
#endif
            }
        }
    }

    void
    unlock() UTLB_RELEASE()
    {
        flag.clear(std::memory_order_release);
    }

    /**
     * One lock attempt, no spinning: true iff the lock was taken.
     * [[nodiscard]] so a discarded result — which would leave the
     * caller unsure whether it holds the lock — is a compile error;
     * the concurrency lint's scoped-guard rule relies on that.
     */
    [[nodiscard]] bool
    try_lock() UTLB_TRY_ACQUIRE(true)
    {
        return !flag.test_and_set(std::memory_order_acquire);
    }

  private:
    // Default construction leaves the flag clear since C++20
    // (ATOMIC_FLAG_INIT is deprecated and gone in C++23).
    std::atomic_flag flag;
};

/** Scoped Spinlock holder. */
class UTLB_SCOPED_CAPABILITY SpinGuard
{
  public:
    explicit SpinGuard(Spinlock &l) UTLB_ACQUIRE(l) : lk(&l)
    {
        lk->lock();
    }

    ~SpinGuard() UTLB_RELEASE() { lk->unlock(); }

    SpinGuard(const SpinGuard &) = delete;
    SpinGuard &operator=(const SpinGuard &) = delete;

  private:
    Spinlock *lk;
};

/**
 * A seqlock version counter (Boehm, "Can seqlocks get along with
 * programming language memory models?", MSPC 2012).
 *
 * Writers — who must already be serialized against each other, here
 * by the owning structure's stripe Spinlock — bracket their stores
 * with writeBegin()/writeEnd(), leaving the version odd for exactly
 * the duration of the write. Readers snapshot the version, read the
 * protected fields with relaxed atomic accesses, and retry if the
 * version was odd or moved. The protected fields themselves must be
 * accessed through std::atomic_ref on both sides: the seqlock makes
 * torn snapshots *detectable*, the atomics make the racing accesses
 * defined (and ThreadSanitizer-clean).
 *
 * The read-side purity rule — between readBegin() and readRetry() a
 * section performs relaxed atomic loads only: no stores, no member
 * writes, no stronger memory orders — cannot be expressed with
 * capability annotations; scripts/concurrency_lint.py enforces it
 * statically (rule `seqlock-read-section`).
 */
class SeqCount
{
  public:
    SeqCount() = default;

    SeqCount(const SeqCount &) = delete;
    SeqCount &operator=(const SeqCount &) = delete;

    /**
     * Snapshot the version before an optimistic read. An odd result
     * means a writer is mid-update; the caller may still perform the
     * (atomic) data reads, but readRetry() will send it around again.
     */
    std::uint32_t
    readBegin() const
    {
        return v.load(std::memory_order_acquire);
    }

    /** True if the optimistic read that started at @p begin is torn
     *  (writer active or intervened) and must be retried. */
    bool
    readRetry(std::uint32_t begin) const
    {
        std::atomic_thread_fence(std::memory_order_acquire);
        return (begin & 1u) != 0
            || v.load(std::memory_order_relaxed) != begin;
    }

    /**
     * The current version. Stable — and guaranteed even — only while
     * the caller holds the lock that serializes this counter's
     * writers; used to stamp version-carrying references minted
     * under that lock.
     */
    std::uint32_t
    value() const
    {
        return v.load(std::memory_order_relaxed);
    }

    /** Enter a write section. @pre the writer lock is held. */
    void
    writeBegin()
    {
        v.store(v.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_release);
    }

    /** Leave a write section. @pre the writer lock is held. */
    void
    writeEnd()
    {
        v.store(v.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
    }

  private:
    std::atomic<std::uint32_t> v{0};
};

} // namespace utlb::sim

#endif // UTLB_SIM_SPINLOCK_HPP
