#include "core/shared_cache.hpp"

#include <algorithm>
#include <atomic>
#include <bit>

#include "check/audit.hpp"
#include "check/check.hpp"
#include "sim/log.hpp"

namespace utlb::core {

using mem::Pfn;
using mem::ProcId;
using mem::Vpn;
using sim::fatal;
using sim::Tick;

namespace {

/**
 * Process-dependent index offset (§3.2): a multiplicative hash of
 * the pid spreads different processes' identical page numbers over
 * different sets. Knuth's multiplicative constant.
 */
std::uint64_t
processOffset(ProcId pid)
{
    return static_cast<std::uint64_t>(pid) * 2654435761ull;
}

/**
 * Relaxed atomic access to the seqlock-protected packed fields (tag
 * words and the cold pid/vpn/pfn). Optimistic readers and the
 * stripe-locked writers both go through these, so every racing
 * access is atomic — the seqlock version only has to make torn
 * snapshots *detectable*, and ThreadSanitizer sees no data race.
 * lastUse is deliberately not covered: recency stamps are only ever
 * touched under the stripe lock (or at quiescence) and never read
 * optimistically.
 */
template <class T>
T
loadRelaxed(T &field)
{
    return std::atomic_ref<T>(field).load(std::memory_order_relaxed);
}

template <class T>
void
storeRelaxed(T &field, T value)
{
    std::atomic_ref<T>(field).store(value, std::memory_order_relaxed);
}

/**
 * @name Load policies for the shared packed-probe helper
 *
 * probePacked() is the single way-scan authority; these policies are
 * the only thing that differs between the sequential and seqlock
 * read paths. DirectLoads issues plain loads and the SIMD tag
 * compare — legal only single-threaded or under the set's stripe
 * lock. RelaxedLoads issues relaxed atomic loads exclusively, the
 * contract for code running inside a seqlock read section
 * (scripts/concurrency_lint.py checks the marked helpers).
 * @{
 */
struct DirectLoads {
    static unsigned matchMask(std::uint64_t *tags, unsigned n,
                              std::uint64_t key)
    {
        return simd::matchWays(tags, n, key);
    }
    template <class C>
    static std::uint64_t pidVpn(C &c)
    {
        return c.pidVpn;
    }
    template <class C>
    static Pfn pfn(C &c)
    {
        return c.pfn;
    }
};

struct RelaxedLoads {
    static unsigned matchMask(std::uint64_t *tags, unsigned n,
                              std::uint64_t key)
    {
        // utlb-lint: seqlock-read-helper
        unsigned mask = 0;
        for (unsigned w = 0; w < n; ++w)
            mask |= (loadRelaxed(tags[w]) == key ? 1u : 0u) << w;
        return mask;
    }
    template <class C>
    static std::uint64_t pidVpn(C &c)
    {
        // utlb-lint: seqlock-read-helper
        return loadRelaxed(c.pidVpn);
    }
    template <class C>
    static Pfn pfn(C &c)
    {
        // utlb-lint: seqlock-read-helper
        return loadRelaxed(c.pfn);
    }
};
/** @} */

} // namespace

SharedUtlbCache::SharedUtlbCache(const CacheConfig &cfg,
                                 const nic::NicTimings &t,
                                 nic::Sram *board_sram)
    : config(cfg), timings(&t)
{
    if (config.entries == 0 || config.assoc == 0)
        fatal("cache requires entries > 0 and assoc > 0");
    if (config.entries % config.assoc != 0)
        fatal("cache entries (%zu) not divisible by assoc (%u)",
              config.entries, config.assoc);
    numSets = config.entries / config.assoc;
    setsMask = (numSets & (numSets - 1)) == 0 ? numSets - 1 : 0;
    tagWords.assign(config.entries + simd::kTagPadWords, 0);
    cold.assign(config.entries, Cold{});

    if (board_sram) {
        // 4 bytes per line, matching "32 KB (or 8 K entries)" (§4.2).
        auto base = board_sram->alloc("utlb-cache", config.entries * 4);
        if (!base)
            fatal("NIC SRAM cannot hold a %zu-entry UTLB cache",
                  config.entries);
    }
}

std::size_t
SharedUtlbCache::setIndex(ProcId pid, Vpn vpn) const
{
    std::uint64_t key = vpn;
    if (config.indexOffsetting)
        key += processOffset(pid);
    // Same result either way; the mask dodges a 64-bit divide on the
    // hottest instruction of the probe path.
    if (setsMask)
        return static_cast<std::size_t>(key & setsMask);
    return static_cast<std::size_t>(key % numSets);
}

template <class Loads>
unsigned
SharedUtlbCache::probePacked(std::size_t set, ProcId pid, Vpn vpn,
                             std::uint64_t key, unsigned &way,
                             Pfn &pfn)
{
    const std::size_t base = set * config.assoc;
    unsigned mask = Loads::matchMask(&tagWords[base], config.assoc,
                                     key);
    // The packed key is a filter; the cold packed (pid, vpn) word is
    // the authority (injective, one compare). Confirming candidates
    // in way order rejects a key collision and moves on, so the hit
    // way — and with it the probe count, modeled cost, and LRU stamp
    // — is exactly what a full per-way tag scan would produce.
    const std::uint64_t pv = packPidVpn(pid, vpn);
    while (mask != 0) {
        unsigned w = static_cast<unsigned>(std::countr_zero(mask));
        Cold &c = cold[base + w];
        if (Loads::pidVpn(c) == pv) {
            way = w;
            pfn = Loads::pfn(c);
            return w + 1;
        }
        mask &= mask - 1;
    }
    way = config.assoc;
    return config.assoc;
}

CacheProbe
SharedUtlbCache::lookup(ProcId pid, Vpn vpn)
{
    CacheProbe probe;
    std::size_t set = setIndex(pid, vpn);
    unsigned way = config.assoc;
    Pfn pfn = mem::kInvalidPfn;
    unsigned probes = probePacked<DirectLoads>(set, pid, vpn,
                                               tagKey(pid, vpn), way,
                                               pfn);
    // The firmware probes ways sequentially (§6.3); the first probe
    // is the published constant hit cost, each further way adds
    // perWayProbeCost.
    probe.cost = timings->cacheHitCost
        + Tick{probes > 0 ? probes - 1 : 0} * timings->perWayProbeCost;
    statProbeLatency.sample(sim::ticksToUs(probe.cost));
    if (way != config.assoc) {
        probe.hit = true;
        probe.pfn = pfn;
        cold[set * config.assoc + way].lastUse = ++useClock;
        ++statHits;
    } else {
        ++statMisses;
    }
    return probe;
}

RunHits
SharedUtlbCache::lookupRun(ProcId pid, Vpn start, std::size_t n,
                           Pfn *pfns, LineRef *first_hit)
{
    // A cost-model restriction, not a structural one: RunHits models
    // one shared perHitCost, which only holds when every hit is a
    // single-way probe. Associative callers take the page-at-a-time
    // path, whose per-page probe counts price each way probed.
    UTLB_ASSERT(config.assoc == 1,
                "lookupRun requires a direct-mapped cache (RunHits "
                "carries a single shared per-hit probe cost)");
    RunHits out;
    out.perHitCost = timings->cacheHitCost;

    // Consecutive vpns map to consecutive sets (the index is a sum
    // modulo numSets), so the run walks the packed arrays with an
    // increment instead of re-hashing every page; with assoc == 1
    // the way index is the set index.
    std::size_t set = setIndex(pid, start);
    std::size_t i = 0;
    for (; i < n; ++i) {
        Cold &c = cold[set];
        if (tagWords[set] != tagKey(pid, start + i)
            || c.pidVpn != packPidVpn(pid, start + i))
            break;  // first miss: record nothing, caller re-probes
        c.lastUse = ++useClock;
        pfns[i] = c.pfn;
        if (i == 0 && first_hit) {
            first_hit->set = static_cast<std::uint32_t>(set);
            first_hit->way = 0;
        }
        if (++set == numSets)
            set = 0;
    }

    out.hits = i;
    if (i > 0) {
        out.cost = static_cast<Tick>(i) * out.perHitCost;
        statHits += i;
        statProbeLatency.sampleN(sim::ticksToUs(out.perHitCost), i);
    }
    return out;
}

bool
SharedUtlbCache::hitViaRef(LineRef &ref, ProcId pid, Vpn vpn,
                           CacheProbe &out)
{
    if (ref.way == LineRef::kNoWay)
        return false;
    std::size_t idx =
        std::size_t{ref.set} * config.assoc + ref.way;
    Cold &c = cold[idx];
    // Revalidate the packed word first (0 = reclaimed), then the
    // full tags: any churn since the mint is a clean miss.
    if (tagWords[idx] != tagKey(pid, vpn)
        || c.pidVpn != packPidVpn(pid, vpn))
        return false;
    // A ref pins the exact way that served the original hit (for
    // refs minted by lookupRun, always way 0 of a direct-mapped
    // set), so the modeled firmware re-probe charges that way's
    // probe depth.
    out.hit = true;
    out.pfn = c.pfn;
    out.cost = timings->cacheHitCost
        + Tick{ref.way} * timings->perWayProbeCost;
    c.lastUse = ++useClock;
    ++statHits;
    statProbeLatency.sample(sim::ticksToUs(out.cost));
    return true;
}

void
SharedUtlbCache::enableConcurrent()
{
    if (concurrent())
        return;
    // Any associativity: probes validate a set's ways against its
    // seqlock version, writers bump that version under the set's
    // stripe lock. The paper's sweep runs 1-, 2-, and 4-way (§3.2).
    seqs = std::make_unique<sim::SeqCount[]>(numSets);
    stripes = std::make_unique<sim::Spinlock[]>(
        (numSets + kSetsPerStripe - 1) / kSetsPerStripe);
    numStripes = (numSets + kSetsPerStripe - 1) / kSetsPerStripe;
}

SharedUtlbCache::Shard
SharedUtlbCache::makeShard() const
{
    return Shard(statProbeLatency.makeLocal());
}

void
SharedUtlbCache::absorbShard(Shard &sh)
{
    sim::LockGuard g(absorbMu);
    statHits.absorb(sh.hits);
    statMisses.absorb(sh.misses);
    statInserts.absorb(sh.inserts);
    statRefreshes.absorb(sh.refreshes);
    statEvictions.absorb(sh.evictions);
    statCrossEvictions.absorb(sh.crossEvictions);
    statProbeLatency.absorb(sh.probeLatency);
}

std::uint64_t
SharedUtlbCache::nextStamp(Shard &sh)
{
    if (sh.stampNext == sh.stampEnd) {
        // One shared-clock RMW buys kStampBlock local stamps. The
        // base is the pre-add clock, so a lone worker draws exactly
        // the 1, 2, 3, ... sequence of the sequential ++useClock.
        std::uint64_t base =
            std::atomic_ref<std::uint64_t>(useClock).fetch_add(
                kStampBlock, std::memory_order_relaxed);
        sh.stampNext = base + 1;
        sh.stampEnd = base + kStampBlock + 1;
    }
    return sh.stampNext++;
}

unsigned
SharedUtlbCache::probeSetMT(std::size_t set, ProcId pid, Vpn vpn,
                            std::uint64_t key, unsigned &way,
                            Pfn &pfn, Shard &sh)
{
    sim::SeqCount &seq = seqs[set];
    for (unsigned attempt = 0; attempt < kSeqlockMaxRetries;
         ++attempt) {
        std::uint32_t v = seq.readBegin();
        unsigned probes = probePacked<RelaxedLoads>(set, pid, vpn,
                                                    key, way, pfn);
        if (!seq.readRetry(v))
            return probes;
        ++sh.seqRetries;
    }
    // Writers are hammering this set; take their lock instead of
    // spinning forever (the readers' progress guarantee). Under it
    // the scan cannot race anything.
    sim::SpinGuard g(stripeOf(set));
    return scanWaysLocked(set, pid, vpn, key, way, pfn);
}

unsigned
SharedUtlbCache::scanWaysLocked(std::size_t set, ProcId pid, Vpn vpn,
                                std::uint64_t key, unsigned &way,
                                Pfn &pfn)
{
    return probePacked<DirectLoads>(set, pid, vpn, key, way, pfn);
}

void
SharedUtlbCache::stampWayMT(std::size_t set, unsigned way, ProcId pid,
                            Vpn vpn, Shard &sh)
{
    sim::SpinGuard g(stripeOf(set));
    stampLineLocked(set, way, pid, vpn, sh);
}

void
SharedUtlbCache::stampLineLocked(std::size_t set, unsigned way,
                                 ProcId pid, Vpn vpn, Shard &sh)
{
    std::size_t idx = set * config.assoc + way;
    Cold &c = cold[idx];
    // If a writer reclaimed the way since the optimistic read, the
    // (already-consistent) hit simply leaves no recency mark — a
    // stamp here would resurrect a dead or foreign way. The tag word
    // distinguishes "same tags, still live" from "killed, cold tags
    // stale".
    if (tagWords[idx] == tagKey(pid, vpn)
        && c.pidVpn == packPidVpn(pid, vpn))
        c.lastUse = nextStamp(sh);
}

CacheProbe
SharedUtlbCache::lookupMT(ProcId pid, Vpn vpn, Shard &sh)
{
    CacheProbe probe;
    std::size_t set = setIndex(pid, vpn);
    unsigned way = config.assoc;
    Pfn pfn = mem::kInvalidPfn;
    unsigned probes = probeSetMT(set, pid, vpn, tagKey(pid, vpn), way,
                                 pfn, sh);
    // Same firmware model as lookup(): the first way probed is the
    // published constant hit cost, each further way adds
    // perWayProbeCost (§6.3).
    probe.cost = timings->cacheHitCost
        + Tick{probes > 0 ? probes - 1 : 0} * timings->perWayProbeCost;
    sh.probeLatency.sample(sim::ticksToUs(probe.cost));
    if (way == config.assoc) {
        ++sh.misses;
        return probe;
    }
    probe.hit = true;
    probe.pfn = pfn;
    stampWayMT(set, way, pid, vpn, sh);
    ++sh.hits;
    return probe;
}

RunHits
SharedUtlbCache::lookupRunMT(ProcId pid, Vpn start, std::size_t n,
                             Pfn *pfns, LineRef *first_hit, Shard &sh)
{
    // Same cost-model restriction as lookupRun (one shared
    // perHitCost); associative MT callers go page-at-a-time through
    // lookupMT, which prices every way probed.
    UTLB_ASSERT(config.assoc == 1,
                "lookupRunMT requires a direct-mapped cache (RunHits "
                "carries a single shared per-hit probe cost)");
    RunHits out;
    out.perHitCost = timings->cacheHitCost;

    // Same consecutive-set walk as lookupRun. Each stripe's window
    // is read optimistically (per-set seqlock validation, no lock
    // held), then the stripe lock is taken once to stamp the
    // window's hits — so readers only serialize against writers for
    // the stamping stores, never the probes.
    std::size_t set = setIndex(pid, start);
    std::size_t i = 0;
    bool missed = false;
    while (i < n && !missed) {
        std::size_t stripe_end = std::min(
            ((set >> kSetsPerStripeLog2) + 1) << kSetsPerStripeLog2,
            numSets);
        const std::size_t windowSet = set;
        const std::size_t windowI = i;
        for (; i < n && set < stripe_end; ++set, ++i) {
            unsigned way = 1;
            Pfn pfn = mem::kInvalidPfn;
            probeSetMT(set, pid, start + i, tagKey(pid, start + i),
                       way, pfn, sh);
            if (way == config.assoc) {
                missed = true;  // record nothing, caller re-probes
                break;
            }
            pfns[i] = pfn;
        }
        std::size_t hitsHere = i - windowI;
        if (hitsHere > 0) {
            sim::SpinGuard g(stripeOf(windowSet));
            for (std::size_t k = 0; k < hitsHere; ++k) {
                // assoc == 1: way index == set index.
                std::size_t idx = windowSet + k;
                Cold &c = cold[idx];
                Vpn v = start + windowI + k;
                // Re-validate: a concurrent writer may have
                // reclaimed the way since the optimistic read, and
                // a skipped stamp is the only correct outcome then.
                if (tagWords[idx] == tagKey(pid, v)
                    && c.pidVpn == packPidVpn(pid, v))
                    c.lastUse = nextStamp(sh);
            }
            if (windowI == 0 && first_hit) {
                // Mint the ref under the stripe lock: the version
                // recorded here is even and stays authoritative for
                // hitViaRefMT until the next tag write in the set.
                first_hit->set =
                    static_cast<std::uint32_t>(windowSet);
                first_hit->way = 0;
                first_hit->version = seqs[windowSet].value();
            }
        }
        if (set == numSets)
            set = 0;
    }

    out.hits = i;
    if (i > 0) {
        out.cost = static_cast<Tick>(i) * out.perHitCost;
        sh.hits += i;
        sh.probeLatency.sampleN(sim::ticksToUs(out.perHitCost), i);
    }
    return out;
}

bool
SharedUtlbCache::hitViaRefMT(LineRef &ref, ProcId pid, Vpn vpn,
                             CacheProbe &out, Shard &sh)
{
    if (ref.way == LineRef::kNoWay)
        return false;
    std::size_t set = ref.set;
    std::size_t idx = std::size_t{ref.set} * config.assoc + ref.way;
    sim::SpinGuard g(stripeOf(set));
    // Version guard: the set must not have seen a single tag write
    // since the ref was minted, or the way may have been reclaimed
    // for another translation — any churn demotes the ref to a
    // clean miss and the caller re-probes.
    if (seqs[set].value() != ref.version)
        return false;
    Cold &c = cold[idx];
    if (tagWords[idx] != tagKey(pid, vpn)
        || c.pidVpn != packPidVpn(pid, vpn))
        return false;
    out.hit = true;
    out.pfn = c.pfn;
    // The ref pins the exact way that served the original hit, so
    // the modeled re-probe charges that way's probe depth (way 0 —
    // the only minted way today — is the constant hit cost).
    out.cost = timings->cacheHitCost
        + Tick{ref.way} * timings->perWayProbeCost;
    c.lastUse = nextStamp(sh);
    ++sh.hits;
    sh.probeLatency.sample(sim::ticksToUs(out.cost));
    return true;
}

std::optional<EvictedEntry>
SharedUtlbCache::insertMT(ProcId pid, Vpn vpn, Pfn pfn,
                          InsertMode mode, Shard &sh)
{
    ++sh.inserts;
    UTLB_ASSERT((vpn >> 32) == 0,
                "vpn 0x%llx exceeds the 32-bit packed pid/vpn field",
                static_cast<unsigned long long>(vpn));
    std::size_t set = setIndex(pid, vpn);
    std::size_t base = set * config.assoc;
    std::uint64_t key = tagKey(pid, vpn);
    const std::uint64_t pv = packPidVpn(pid, vpn);
    sim::SeqCount &seq = seqs[set];
    sim::SpinGuard g(stripeOf(set));

    // Re-insert over an existing entry (refresh); prefetch refreshes
    // leave recency alone (§6.4), exactly as insert(). Only the pfn
    // store needs the version bump — the tags are unchanged.
    for (unsigned w = 0; w < config.assoc; ++w) {
        Cold &c = cold[base + w];
        if (tagWords[base + w] == key && c.pidVpn == pv) {
            seq.writeBegin();
            storeRelaxed(c.pfn, pfn);
            seq.writeEnd();
            if (mode == InsertMode::Demand)
                c.lastUse = nextStamp(sh);
            ++sh.refreshes;
            return std::nullopt;
        }
    }

    // Fill an invalid way if one exists. The tag word is published
    // last inside the write section: an optimistic reader either
    // sees 0 (way still dead) or retries on the version bump.
    for (unsigned w = 0; w < config.assoc; ++w) {
        if (tagWords[base + w] == 0) {
            Cold &c = cold[base + w];
            seq.writeBegin();
            storeRelaxed(c.pidVpn, pv);
            storeRelaxed(c.pfn, pfn);
            storeRelaxed(tagWords[base + w], key);
            seq.writeEnd();
            c.lastUse = nextStamp(sh);
            return std::nullopt;
        }
    }

    // Evict the LRU way; stamps are stable under the stripe lock,
    // so the victim scan matches insert()'s decision bit-for-bit
    // with a single worker.
    unsigned vw = 0;
    for (unsigned w = 1; w < config.assoc; ++w) {
        if (cold[base + w].lastUse < cold[base + vw].lastUse)
            vw = w;
    }
    Cold &victim = cold[base + vw];
    EvictedEntry out{pidOfPacked(victim.pidVpn),
                     vpnOfPacked(victim.pidVpn), victim.pfn};
    if (out.pid != pid)
        ++sh.crossEvictions;
    seq.writeBegin();
    storeRelaxed(victim.pidVpn, pv);
    storeRelaxed(victim.pfn, pfn);
    storeRelaxed(tagWords[base + vw], key);
    seq.writeEnd();
    victim.lastUse = nextStamp(sh);
    ++sh.evictions;
    return out;
}

std::optional<Pfn>
SharedUtlbCache::peek(ProcId pid, Vpn vpn) const
{
    auto *self = const_cast<SharedUtlbCache *>(this);
    std::size_t set = setIndex(pid, vpn);
    unsigned way = config.assoc;
    Pfn pfn = mem::kInvalidPfn;
    self->probePacked<DirectLoads>(set, pid, vpn, tagKey(pid, vpn),
                                   way, pfn);
    if (way == config.assoc)
        return std::nullopt;
    return pfn;
}

void
SharedUtlbCache::killWay(std::size_t idx)
{
    // A dead way must not retain a recency stamp: the next insert
    // reuses the way with a fresh stamp, and the audit relies on
    // invalid ways being fully scrubbed. The cold (pid, vpn, pfn)
    // may go stale — the zeroed tag word is the single validity
    // authority.
    tagWords[idx] = 0;
    cold[idx].lastUse = 0;
}

std::optional<EvictedEntry>
SharedUtlbCache::insert(ProcId pid, Vpn vpn, Pfn pfn, InsertMode mode)
{
    ++statInserts;
    UTLB_ASSERT((vpn >> 32) == 0,
                "vpn 0x%llx exceeds the 32-bit packed pid/vpn field",
                static_cast<unsigned long long>(vpn));
    std::size_t set = setIndex(pid, vpn);
    std::size_t base = set * config.assoc;
    std::uint64_t key = tagKey(pid, vpn);
    const std::uint64_t pv = packPidVpn(pid, vpn);

    // Re-insert over an existing entry (refresh). A prefetch refresh
    // updates the translation but not the recency: the NIC never
    // referenced this page, so promoting it would pollute the LRU
    // order of the set (§6.4).
    for (unsigned w = 0; w < config.assoc; ++w) {
        Cold &c = cold[base + w];
        if (tagWords[base + w] == key && c.pidVpn == pv) {
            c.pfn = pfn;
            if (mode == InsertMode::Demand)
                c.lastUse = ++useClock;
            ++statRefreshes;
            return std::nullopt;
        }
    }

    // Fill an invalid way if one exists.
    for (unsigned w = 0; w < config.assoc; ++w) {
        if (tagWords[base + w] == 0) {
            cold[base + w] = Cold{pv, pfn, ++useClock};
            tagWords[base + w] = key;
            return std::nullopt;
        }
    }

    // Evict the LRU way.
    unsigned vw = 0;
    for (unsigned w = 1; w < config.assoc; ++w) {
        if (cold[base + w].lastUse < cold[base + vw].lastUse)
            vw = w;
    }
    Cold &victim = cold[base + vw];
    EvictedEntry out{pidOfPacked(victim.pidVpn),
                     vpnOfPacked(victim.pidVpn), victim.pfn};
    if (out.pid != pid)
        ++statCrossEvictions;
    victim = Cold{pv, pfn, ++useClock};
    tagWords[base + vw] = key;
    ++statEvictions;
    return out;
}

bool
SharedUtlbCache::invalidate(ProcId pid, Vpn vpn)
{
    std::size_t set = setIndex(pid, vpn);
    std::size_t base = set * config.assoc;
    std::uint64_t key = tagKey(pid, vpn);
    if (concurrent()) {
        // Unpin-path coherence drops race with other workers'
        // optimistic probes, so scan the ways under the stripe lock
        // and retire the match inside a seqlock write section; the
        // counter bump is a relaxed RMW since it can race
        // absorbShard() readers of sibling counters on the same
        // cache line.
        bool dropped = false;
        {
            sim::SpinGuard g(stripeOf(set));
            const std::uint64_t pv = packPidVpn(pid, vpn);
            for (unsigned w = 0; w < config.assoc; ++w) {
                Cold &c = cold[base + w];
                if (tagWords[base + w] == key && c.pidVpn == pv) {
                    seqs[set].writeBegin();
                    storeRelaxed(tagWords[base + w],
                                 std::uint64_t{0});
                    seqs[set].writeEnd();
                    c.lastUse = 0;
                    dropped = true;
                    break;
                }
            }
        }
        if (dropped)
            statInvalidations.addRelaxed(1);
        return dropped;
    }
    unsigned way = config.assoc;
    Pfn pfn = mem::kInvalidPfn;
    probePacked<DirectLoads>(set, pid, vpn, key, way, pfn);
    if (way == config.assoc)
        return false;
    killWay(base + way);
    ++statInvalidations;
    return true;
}

std::optional<EvictedEntry>
SharedUtlbCache::evictLruOfProcess(ProcId pid)
{
    std::size_t victim = config.entries;
    for (std::size_t idx = 0; idx < config.entries; ++idx) {
        if (tagWords[idx] == 0
            || pidOfPacked(cold[idx].pidVpn) != pid)
            continue;
        if (victim == config.entries
            || cold[idx].lastUse < cold[victim].lastUse)
            victim = idx;
    }
    if (victim == config.entries)
        return std::nullopt;
    EvictedEntry out{pidOfPacked(cold[victim].pidVpn),
                     vpnOfPacked(cold[victim].pidVpn),
                     cold[victim].pfn};
    killWay(victim);
    ++statSheds;
    return out;
}

std::size_t
SharedUtlbCache::invalidateProcess(ProcId pid)
{
    if (concurrent()) {
        // Process teardown (driver unregister) overlaps other
        // tenants' live probes during fleet churn, so retire the
        // process' lines set by set under the stripe lock, batching
        // one seqlock write section around each set's kills —
        // exactly invalidate()'s protocol, amortized. Stamps are
        // scrubbed under the lock like killWay() does.
        std::size_t count = 0;
        for (std::size_t set = 0; set < numSets; ++set) {
            std::size_t base = set * config.assoc;
            sim::SpinGuard g(stripeOf(set));
            bool open = false;
            for (unsigned w = 0; w < config.assoc; ++w) {
                Cold &c = cold[base + w];
                if (tagWords[base + w] == 0
                    || pidOfPacked(c.pidVpn) != pid)
                    continue;
                if (!open) {
                    seqs[set].writeBegin();
                    open = true;
                }
                storeRelaxed(tagWords[base + w], std::uint64_t{0});
                c.lastUse = 0;
                ++count;
            }
            if (open)
                seqs[set].writeEnd();
        }
        if (count)
            statInvalidations.addRelaxed(count);
        return count;
    }
    std::size_t count = 0;
    for (std::size_t idx = 0; idx < config.entries; ++idx) {
        if (tagWords[idx] != 0
            && pidOfPacked(cold[idx].pidVpn) == pid) {
            killWay(idx);
            ++count;
        }
    }
    statInvalidations += count;
    return count;
}

void
SharedUtlbCache::clear()
{
    for (std::size_t idx = 0; idx < config.entries; ++idx) {
        if (tagWords[idx] != 0) {
            killWay(idx);
            ++statClearDrops;
        }
    }
}

std::size_t
SharedUtlbCache::validEntries() const
{
    return static_cast<std::size_t>(
        std::count_if(tagWords.begin(),
                      tagWords.begin()
                          + static_cast<std::ptrdiff_t>(
                              config.entries),
                      [](std::uint64_t t) { return t != 0; }));
}

std::size_t
SharedUtlbCache::occupancyOf(ProcId pid) const
{
    std::size_t count = 0;
    for (std::size_t idx = 0; idx < config.entries; ++idx) {
        if (tagWords[idx] != 0
            && pidOfPacked(cold[idx].pidVpn) == pid)
            ++count;
    }
    return count;
}

void
SharedUtlbCache::audit(check::AuditReport &report) const
{
    report.component("shared-cache");
    for (std::size_t set = 0; set < numSets; ++set) {
        const std::size_t base = set * config.assoc;
        for (unsigned w = 0; w < config.assoc; ++w) {
            const Cold &c = cold[base + w];
            if (tagWords[base + w] == 0) {
                // Dead ways must be fully scrubbed: a stale stamp
                // would silently distort LRU if ever trusted, and
                // signals a removal path that bypassed killWay().
                report.require(c.lastUse == 0,
                               "dead way %u of set %zu "
                               "retains recency stamp %llu",
                               w, set,
                               static_cast<unsigned long long>(
                                   c.lastUse));
                continue;
            }
            const mem::ProcId cpid = pidOfPacked(c.pidVpn);
            const mem::Vpn cvpn = vpnOfPacked(c.pidVpn);
            // Packed-tag coherence: the tag word must be exactly the
            // key of the cold tags, or probes see a different entry
            // than the one stored (an invisible line or a phantom
            // candidate that the cold confirm then rejects).
            report.require(tagWords[base + w] == tagKey(cpid, cvpn),
                           "way %u of set %zu: packed tag word "
                           "0x%llx does not match cold tags "
                           "(pid %u, vpn %llu)",
                           w, set,
                           static_cast<unsigned long long>(
                               tagWords[base + w]),
                           cpid,
                           static_cast<unsigned long long>(cvpn));
            // Tag/process-offset integrity: a line must live in the
            // set its (pid, vpn) hashes to, or lookups will silently
            // miss it (cross-process aliasing shows up the same way).
            std::size_t home = setIndex(cpid, cvpn);
            report.require(home == set,
                           "line (pid %u, vpn %llu) stored in set %zu "
                           "but indexes to set %zu",
                           cpid,
                           static_cast<unsigned long long>(cvpn),
                           set, home);
            report.require(c.lastUse <= useClock,
                           "line (pid %u, vpn %llu) LRU stamp %llu is "
                           "ahead of the use clock %llu",
                           cpid,
                           static_cast<unsigned long long>(cvpn),
                           static_cast<unsigned long long>(c.lastUse),
                           static_cast<unsigned long long>(useClock));
            for (unsigned w2 = w + 1; w2 < config.assoc; ++w2) {
                const Cold &dup = cold[base + w2];
                report.require(tagWords[base + w2] == 0
                                   || dup.pidVpn != c.pidVpn,
                               "duplicate (pid %u, vpn %llu) in ways "
                               "%u and %u of set %zu",
                               cpid,
                               static_cast<unsigned long long>(cvpn),
                               w, w2, set);
            }
        }
    }

    // The SIMD overread padding must stay zero: a nonzero pad word
    // can only come from an out-of-bounds write (the vector kernels
    // mask pad lanes off, so this is a canary, not a correctness
    // dependency).
    for (std::size_t p = config.entries; p < tagWords.size(); ++p) {
        report.require(tagWords[p] == 0,
                       "SIMD overread pad word %zu is nonzero "
                       "(0x%llx)",
                       p - config.entries,
                       static_cast<unsigned long long>(tagWords[p]));
    }

    // Removal-taxonomy conservation: every line present was installed
    // by an insert that created it (insertions minus refreshes; a
    // capacity eviction both removes and creates in one call), and
    // every line gone left through exactly one of the three removal
    // paths or a clear. Double-counting a shed as an eviction — the
    // bug this split fixes — breaks the balance immediately.
    auto created = static_cast<std::int64_t>(insertions())
        - static_cast<std::int64_t>(refreshes());
    auto removed = static_cast<std::int64_t>(evictions())
        + static_cast<std::int64_t>(sheds())
        + static_cast<std::int64_t>(invalidations())
        + static_cast<std::int64_t>(statClearDrops.value());
    auto expected = static_cast<std::int64_t>(statsBaseValid)
        + created - removed;
    report.require(static_cast<std::int64_t>(validEntries()) == expected,
                   "occupancy %zu disagrees with counter taxonomy "
                   "(base %zu + created %lld - removed %lld)",
                   validEntries(), statsBaseValid,
                   static_cast<long long>(created),
                   static_cast<long long>(removed));

    // Cross-tenant pollution is a classification of evictions, never
    // a fourth removal path: it can only count a subset of them.
    report.require(crossTenantEvictions() <= evictions(),
                   "%llu cross-tenant evictions exceed the %llu total "
                   "evictions they classify",
                   static_cast<unsigned long long>(
                       crossTenantEvictions()),
                   static_cast<unsigned long long>(evictions()));

    // Seqlock quiescence: the audit runs with no writer in flight, so
    // every set's version counter must be even — an odd counter means
    // a write section was entered and never closed, which would spin
    // all future optimistic readers of that set into the lock-based
    // fallback forever.
    if (numStripes != 0) {
        for (std::size_t set = 0; set < numSets; ++set) {
            std::uint32_t v = seqs[set].value();
            report.require((v & 1u) == 0,
                           "set %zu seqlock version %u is odd at "
                           "quiescence (unclosed write section)",
                           set, v);
        }
    }
}

void
SharedUtlbCache::resetStats()
{
    statsGrp.resetAll();
    statsBaseValid = validEntries();
}

} // namespace utlb::core
