/**
 * @file
 * Tests for the network model and the reliable link protocol.
 */

#include <gtest/gtest.h>

#include <vector>

#include "net/network.hpp"
#include "net/packet.hpp"
#include "nic/timing.hpp"
#include "sim/event_queue.hpp"
#include "vmmc/reliable.hpp"

namespace {

using namespace utlb::net;
using utlb::nic::NicTimings;
using utlb::sim::EventQueue;
using utlb::sim::Tick;
using utlb::vmmc::ReliableEndpoint;

Packet
makeData(NodeId src, NodeId dst, std::uint32_t tag,
         std::size_t payload = 64)
{
    Packet p;
    p.hdr.type = PacketType::Data;
    p.hdr.src = src;
    p.hdr.dst = dst;
    p.hdr.exportId = tag;
    p.payload.assign(payload, static_cast<std::uint8_t>(tag));
    return p;
}

TEST(Network, DeliversWithPositiveLatency)
{
    EventQueue eq;
    NicTimings t;
    Network net(eq, t, {2, 0.0, true, 1});
    std::vector<std::uint32_t> got;
    net.attach(1, [&](const Packet &p) { got.push_back(p.hdr.exportId); });
    net.send(makeData(0, 1, 7));
    EXPECT_TRUE(got.empty());  // not delivered synchronously
    Tick end = eq.run();
    EXPECT_GT(end, 0u);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], 7u);
    EXPECT_EQ(net.packetsDelivered(), 1u);
}

TEST(Network, PreservesPayloadBytes)
{
    EventQueue eq;
    NicTimings t;
    Network net(eq, t, {2, 0.0, true, 1});
    std::vector<std::uint8_t> got;
    net.attach(1, [&](const Packet &p) { got = p.payload; });
    Packet p = makeData(0, 1, 0, 0);
    p.payload = {1, 2, 3, 4, 5};
    net.send(std::move(p));
    eq.run();
    EXPECT_EQ(got, (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
}

TEST(Network, SameChannelPacketsArriveInOrder)
{
    EventQueue eq;
    NicTimings t;
    Network net(eq, t, {2, 0.0, true, 1});
    std::vector<std::uint32_t> got;
    net.attach(1, [&](const Packet &p) { got.push_back(p.hdr.exportId); });
    for (std::uint32_t i = 0; i < 20; ++i)
        net.send(makeData(0, 1, i, 4096));
    eq.run();
    ASSERT_EQ(got.size(), 20u);
    for (std::uint32_t i = 0; i < 20; ++i)
        EXPECT_EQ(got[i], i);
}

TEST(Network, LinkSerializationSpacesDeliveries)
{
    EventQueue eq;
    NicTimings t;
    Network net(eq, t, {2, 0.0, true, 1});
    std::vector<Tick> times;
    net.attach(1, [&](const Packet &) { times.push_back(eq.now()); });
    // Two full-page packets back to back: second must wait for the
    // first to clear the uplink.
    net.send(makeData(0, 1, 0, 4096));
    net.send(makeData(0, 1, 1, 4096));
    eq.run();
    ASSERT_EQ(times.size(), 2u);
    Tick wire = t.linkTransferCost(4096 + kHeaderBytes);
    EXPECT_GE(times[1] - times[0], wire);
}

TEST(Network, LossDropsApproximatelyTheConfiguredFraction)
{
    EventQueue eq;
    NicTimings t;
    Network net(eq, t, {2, 0.25, true, 42});
    int got = 0;
    net.attach(1, [&](const Packet &) { ++got; });
    const int n = 4000;
    for (int i = 0; i < n; ++i)
        net.send(makeData(0, 1, 0, 8));
    eq.run();
    double rate = 1.0 - static_cast<double>(got) / n;
    EXPECT_NEAR(rate, 0.25, 0.03);
    EXPECT_EQ(net.packetsDropped() + net.packetsDelivered(),
              static_cast<std::uint64_t>(n));
}

TEST(Network, ZeroLossDeliversEverything)
{
    EventQueue eq;
    NicTimings t;
    Network net(eq, t, {3, 0.0, true, 1});
    int got = 0;
    net.attach(2, [&](const Packet &) { ++got; });
    for (int i = 0; i < 100; ++i)
        net.send(makeData(0, 2, 0));
    eq.run();
    EXPECT_EQ(got, 100);
    EXPECT_EQ(net.packetsDropped(), 0u);
}

// ---------------------------------------------------------------------
// ReliableEndpoint
// ---------------------------------------------------------------------

/** Two endpoints wired through a (possibly lossy) network. */
class ReliableRig
{
  public:
    explicit ReliableRig(double loss, std::uint64_t seed = 9)
        : net(eq, t, {2, loss, true, seed}),
          a(0, net, eq), b(1, net, eq)
    {
        net.attach(0, [this](const Packet &p) {
            if (auto d = a.onPacket(p))
                aGot.push_back(*d);
        });
        net.attach(1, [this](const Packet &p) {
            if (auto d = b.onPacket(p))
                bGot.push_back(*d);
        });
    }

    EventQueue eq;
    NicTimings t;
    Network net;
    ReliableEndpoint a, b;
    std::vector<Packet> aGot, bGot;
};

TEST(Reliable, InOrderExactlyOnceWithoutLoss)
{
    ReliableRig rig(0.0);
    for (std::uint32_t i = 0; i < 50; ++i)
        rig.a.sendReliable(makeData(0, 1, i));
    rig.eq.run();
    ASSERT_EQ(rig.bGot.size(), 50u);
    for (std::uint32_t i = 0; i < 50; ++i)
        EXPECT_EQ(rig.bGot[i].hdr.exportId, i);
    EXPECT_EQ(rig.a.unackedPackets(), 0u);
    EXPECT_EQ(rig.a.retransmissions(), 0u);
}

TEST(Reliable, RecoversFromHeavyLoss)
{
    ReliableRig rig(0.3, 123);
    for (std::uint32_t i = 0; i < 100; ++i)
        rig.a.sendReliable(makeData(0, 1, i, 128));
    rig.eq.run();
    ASSERT_EQ(rig.bGot.size(), 100u);
    for (std::uint32_t i = 0; i < 100; ++i)
        EXPECT_EQ(rig.bGot[i].hdr.exportId, i);
    EXPECT_EQ(rig.a.unackedPackets(), 0u);
    EXPECT_GT(rig.a.retransmissions(), 0u);
    // Exactly once: duplicates were filtered, not delivered.
    EXPECT_GT(rig.b.duplicatesDropped() + rig.b.outOfOrderDropped(),
              0u);
}

TEST(Reliable, BidirectionalChannelsAreIndependent)
{
    ReliableRig rig(0.2, 77);
    for (std::uint32_t i = 0; i < 40; ++i) {
        rig.a.sendReliable(makeData(0, 1, i));
        rig.b.sendReliable(makeData(1, 0, 1000 + i));
    }
    rig.eq.run();
    ASSERT_EQ(rig.bGot.size(), 40u);
    ASSERT_EQ(rig.aGot.size(), 40u);
    for (std::uint32_t i = 0; i < 40; ++i) {
        EXPECT_EQ(rig.bGot[i].hdr.exportId, i);
        EXPECT_EQ(rig.aGot[i].hdr.exportId, 1000 + i);
    }
}

TEST(Reliable, PayloadSurvivesRetransmission)
{
    ReliableRig rig(0.4, 5);
    Packet p = makeData(0, 1, 0, 0);
    p.payload = {9, 8, 7, 6};
    rig.a.sendReliable(std::move(p));
    rig.eq.run();
    ASSERT_EQ(rig.bGot.size(), 1u);
    EXPECT_EQ(rig.bGot[0].payload,
              (std::vector<std::uint8_t>{9, 8, 7, 6}));
}

TEST(Reliable, TimersDoNotFireForever)
{
    ReliableRig rig(0.0);
    rig.a.sendReliable(makeData(0, 1, 0));
    Tick end = rig.eq.run();
    // The queue drained: no timer livelock once everything acked.
    EXPECT_LT(end, utlb::sim::usToTicks(10000.0));
    EXPECT_EQ(rig.eq.pending(), 0u);
}

} // namespace
