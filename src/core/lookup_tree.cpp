#include "core/lookup_tree.hpp"

namespace utlb::core {

void
LookupTree::set(mem::Vpn vpn, UtlbIndex index)
{
    std::uint64_t dir = vpn / kLeafEntries;
    std::size_t slot = static_cast<std::size_t>(vpn % kLeafEntries);
    auto &leaf = leaves[dir];
    if (!leaf)
        leaf = std::make_unique<Leaf>(kLeafEntries, kInvalidIndex);
    if ((*leaf)[slot] == kInvalidIndex)
        ++numValid;
    (*leaf)[slot] = index;
}

std::optional<UtlbIndex>
LookupTree::get(mem::Vpn vpn) const
{
    std::uint64_t dir = vpn / kLeafEntries;
    auto it = leaves.find(dir);
    if (it == leaves.end())
        return std::nullopt;
    UtlbIndex idx = (*it->second)[vpn % kLeafEntries];
    if (idx == kInvalidIndex)
        return std::nullopt;
    return idx;
}

bool
LookupTree::invalidate(mem::Vpn vpn)
{
    std::uint64_t dir = vpn / kLeafEntries;
    auto it = leaves.find(dir);
    if (it == leaves.end())
        return false;
    UtlbIndex &slot = (*it->second)[vpn % kLeafEntries];
    if (slot == kInvalidIndex)
        return false;
    slot = kInvalidIndex;
    --numValid;
    return true;
}

std::size_t
LookupTree::footprintBytes() const
{
    return leaves.size() * kLeafEntries * sizeof(UtlbIndex);
}

} // namespace utlb::core
