file(REMOVE_RECURSE
  "CMakeFiles/utlb_vmmc.dir/node.cpp.o"
  "CMakeFiles/utlb_vmmc.dir/node.cpp.o.d"
  "CMakeFiles/utlb_vmmc.dir/reliable.cpp.o"
  "CMakeFiles/utlb_vmmc.dir/reliable.cpp.o.d"
  "CMakeFiles/utlb_vmmc.dir/system.cpp.o"
  "CMakeFiles/utlb_vmmc.dir/system.cpp.o.d"
  "libutlb_vmmc.a"
  "libutlb_vmmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utlb_vmmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
