file(REMOVE_RECURSE
  "CMakeFiles/utlb_core.dir/bitvector.cpp.o"
  "CMakeFiles/utlb_core.dir/bitvector.cpp.o.d"
  "CMakeFiles/utlb_core.dir/driver.cpp.o"
  "CMakeFiles/utlb_core.dir/driver.cpp.o.d"
  "CMakeFiles/utlb_core.dir/interrupt_baseline.cpp.o"
  "CMakeFiles/utlb_core.dir/interrupt_baseline.cpp.o.d"
  "CMakeFiles/utlb_core.dir/lookup_tree.cpp.o"
  "CMakeFiles/utlb_core.dir/lookup_tree.cpp.o.d"
  "CMakeFiles/utlb_core.dir/per_process_utlb.cpp.o"
  "CMakeFiles/utlb_core.dir/per_process_utlb.cpp.o.d"
  "CMakeFiles/utlb_core.dir/pin_manager.cpp.o"
  "CMakeFiles/utlb_core.dir/pin_manager.cpp.o.d"
  "CMakeFiles/utlb_core.dir/registration_cache.cpp.o"
  "CMakeFiles/utlb_core.dir/registration_cache.cpp.o.d"
  "CMakeFiles/utlb_core.dir/replacement.cpp.o"
  "CMakeFiles/utlb_core.dir/replacement.cpp.o.d"
  "CMakeFiles/utlb_core.dir/shared_cache.cpp.o"
  "CMakeFiles/utlb_core.dir/shared_cache.cpp.o.d"
  "CMakeFiles/utlb_core.dir/table_pager.cpp.o"
  "CMakeFiles/utlb_core.dir/table_pager.cpp.o.d"
  "CMakeFiles/utlb_core.dir/translation_table.cpp.o"
  "CMakeFiles/utlb_core.dir/translation_table.cpp.o.d"
  "CMakeFiles/utlb_core.dir/utlb.cpp.o"
  "CMakeFiles/utlb_core.dir/utlb.cpp.o.d"
  "libutlb_core.a"
  "libutlb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utlb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
