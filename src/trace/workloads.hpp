/**
 * @file
 * Synthetic SPLASH-2 communication workloads (§6.1, Table 3).
 *
 * The paper drives its simulator with traces captured from seven
 * SPLASH-2 applications running under a home-based release-
 * consistency SVM protocol on a 4-node cluster of 4-way SMPs — four
 * application processes and one protocol process per node, all
 * sharing the NIC. Those traces are not available, so each workload
 * here is a generator that reproduces, by construction:
 *
 *  - the per-node communication footprint and translation-lookup
 *    count of Table 3 (within a few percent), and
 *  - the qualitative access pattern §6.1 describes: FFT's strided
 *    transpose phases, LU's blocked touch-twice sweeps, Barnes'
 *    repeated spatially-local partition sweeps, Radix's phased
 *    contiguous key ranges, Raytrace/Volrend's task-queue
 *    irregularity, and Water's small-footprint spatial reuse.
 *
 * Five process streams (pids 0-3 application, pid 4 protocol) are
 * fair-interleaved into one serialized node trace, mirroring the
 * paper's timestamp-serialized multiprogrammed stream.
 */

#ifndef UTLB_TRACE_WORKLOADS_HPP
#define UTLB_TRACE_WORKLOADS_HPP

#include <string>
#include <vector>

#include "trace/record.hpp"

namespace utlb::trace {

/** Number of application processes per node. */
inline constexpr std::size_t kAppProcs = 4;

/** Pid of the SVM protocol process. */
inline constexpr mem::ProcId kProtocolPid = 4;

/** Static description of one workload (Table 3 row). */
struct WorkloadInfo {
    std::string name;          //!< lower-case id ("fft", ...)
    std::string problemSize;   //!< Table 3 "Problem Size"
    std::size_t footprintPages; //!< Table 3 footprint (4 KB pages)
    std::size_t lookups;        //!< Table 3 "# translation lookups"
};

/** The seven SPLASH-2 workloads, in the paper's order. */
const std::vector<WorkloadInfo> &allWorkloads();

/** Look up a workload by name; fatal on unknown names. */
const WorkloadInfo &workloadByName(const std::string &name);

/**
 * Generate one node's trace for @p name.
 *
 * @param seed perturbs the irregular (task-queue) generators and the
 *             interleaving; regular apps are seed-independent apart
 *             from interleave jitter.
 */
Trace generateTrace(const std::string &name, std::uint64_t seed = 1);

/** Parameters for the synthetic micro-workloads. */
struct SyntheticSpec {
    std::size_t processes = 4;   //!< interleaved process streams
    std::size_t pages = 1024;    //!< footprint per process
    std::size_t lookups = 8192;  //!< operations per process
    double hotFraction = 0.9;    //!< for "hotcold": hot-access share
    std::size_t hotPages = 32;   //!< for "hotcold": hot-set size
};

/**
 * Generate a synthetic micro-workload trace (not part of Table 3):
 *
 *  - "uniform": independent uniform page accesses — the
 *    worst case for any translation cache;
 *  - "stream": a pure sequential sweep, never revisiting — all
 *    compulsory misses, the best case for prefetching;
 *  - "hotcold": a hot set absorbing most accesses over a cold
 *    expanse — the best case for LRU/LFU pinning policies.
 */
Trace generateSynthetic(const std::string &kind,
                        const SyntheticSpec &spec,
                        std::uint64_t seed = 1);

} // namespace utlb::trace

#endif // UTLB_TRACE_WORKLOADS_HPP
