#include "core/utlb.hpp"

#include "sim/log.hpp"

namespace utlb::core {

using mem::Vpn;

UserUtlb::UserUtlb(UtlbDriver &drv, SharedUtlbCache &cache,
                   const nic::NicTimings &t, mem::ProcId pid,
                   const UtlbConfig &config)
    : driver(&drv), nicCache(&cache), timings(&t), procId(pid),
      cfg(config), pinMgr(drv, pid, config.pin)
{
    if (cfg.prefetchEntries == 0)
        sim::fatal("prefetchEntries must be >= 1");
}

EnsureResult
UserUtlb::prepare(mem::VirtAddr va, std::size_t nbytes)
{
    Vpn start = mem::pageOf(va);
    std::size_t npages = mem::pagesSpanned(va, nbytes);
    if (npages == 0)
        return EnsureResult{};
    return pinMgr.ensurePinned(start, npages);
}

NicLookup
UserUtlb::nicTranslate(Vpn vpn)
{
    NicLookup out;
    CacheProbe probe = nicCache->lookup(procId, vpn);
    out.cost += probe.cost;
    if (probe.hit) {
        out.pfn = probe.pfn;
        return out;
    }

    out.miss = true;
    HostPageTable &table = driver->pageTable(procId);
    auto run = table.readRun(vpn, cfg.prefetchEntries);

    if (run.empty() || !run[0]) {
        // The page is not pinned: only reachable when the host-side
        // prepare() was bypassed. Fall back to interrupting the host
        // (§3.1), pinning on the NIC's behalf.
        out.fault = true;
        ++numFaults;
        out.cost += timings->interruptCost;
        IoctlResult io = driver->ioctlPinAndInstall(procId, vpn, 1);
        out.cost += io.cost;
        if (io.status != mem::PinStatus::Ok) {
            out.pfn = driver->garbageFrame();
            return out;
        }
        run = table.readRun(vpn, cfg.prefetchEntries);
    }

    // Install the missing entry plus any valid prefetched neighbours
    // ("in order for prefetching to work well, translations for
    // contiguous application pages must be available", §6.4).
    std::size_t installed = 0;
    for (std::size_t i = 0; i < run.size(); ++i) {
        if (!run[i])
            continue;
        nicCache->insert(procId, vpn + i, *run[i]);
        ++installed;
    }
    out.fetched = run.size();
    out.cost += timings->missHandleCost(run.empty() ? 1 : run.size());
    if (installed == 0 || !run[0]) {
        out.pfn = driver->garbageFrame();
        return out;
    }
    out.pfn = *run[0];
    return out;
}

Translation
UserUtlb::translate(mem::VirtAddr va, std::size_t nbytes)
{
    Translation tr;
    std::size_t npages = mem::pagesSpanned(va, nbytes);
    if (npages == 0)
        return tr;

    EnsureResult host = prepare(va, nbytes);
    tr.hostCost = host.cost;
    tr.checkMiss = host.checkMiss;
    tr.pagesPinned = host.pagesPinned;
    tr.pagesUnpinned = host.pagesUnpinned;
    if (!host.ok) {
        tr.ok = false;
        return tr;
    }

    Vpn start = mem::pageOf(va);
    tr.pageAddrs.reserve(npages);
    for (std::size_t i = 0; i < npages; ++i) {
        NicLookup nl = nicTranslate(start + i);
        tr.nicCost += nl.cost;
        if (nl.miss)
            ++tr.niMisses;
        if (nl.fault)
            ++tr.faults;
        tr.pageAddrs.push_back(mem::frameAddr(nl.pfn));
    }
    return tr;
}

} // namespace utlb::core
