/**
 * @file
 * Shared helpers for the table/figure reproduction harnesses.
 *
 * Each bench binary regenerates one of the paper's tables or
 * figures: it builds the synthetic workload traces, replays them
 * through the real UTLB / interrupt-baseline stacks, and prints the
 * same rows the paper reports. Paper values are printed alongside
 * where useful so the shape comparison is immediate.
 */

#ifndef UTLB_BENCH_COMMON_HPP
#define UTLB_BENCH_COMMON_HPP

#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "sim/table.hpp"
#include "tlbsim/simulator.hpp"
#include "trace/workloads.hpp"

namespace bench {

/** Cache sizes swept by Tables 4, 5, 8 and Figure 7. */
inline const std::vector<std::size_t> kCacheSizes{1024, 2048, 4096,
                                                  8192, 16384};

/** Short label for a cache size ("1K".."16K"). */
inline std::string
sizeLabel(std::size_t entries)
{
    return std::to_string(entries / 1024) + "K";
}

/** Two-decimal format used by the paper's per-lookup tables. */
inline std::string
rate(double v)
{
    return utlb::sim::TextTable::num(v, 2);
}

/** Cache of generated traces (one per workload) for one binary. */
class TraceSet
{
  public:
    const utlb::trace::Trace &
    get(const std::string &name)
    {
        auto it = traces.find(name);
        if (it == traces.end()) {
            it = traces
                     .emplace(name, utlb::trace::generateTrace(name))
                     .first;
        }
        return it->second;
    }

  private:
    std::map<std::string, utlb::trace::Trace> traces;
};

/** Names of all workloads, paper order. */
inline std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const auto &w : utlb::trace::allWorkloads())
        names.push_back(w.name);
    return names;
}

} // namespace bench

#endif // UTLB_BENCH_COMMON_HPP
