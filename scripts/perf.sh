#!/bin/sh
# Wall-clock performance run: Release build, then the hot-path
# harness (translate() vs translateRange() translations/sec), the
# multi-thread sweep, and a batched tlbsim replay. Copies
# BENCH_hotpath.json to the repo root so the checked-in baseline can
# be refreshed in place.
# Usage: scripts/perf.sh [build-dir]
set -e
cd "$(dirname "$0")/.."
BUILD="${1:-build-perf}"
OUT="${UTLB_PERF_OUT:-$BUILD/perf}"

step() { printf '\n=== %s ===\n' "$*"; }

step "Release build ($BUILD)"
cmake -B "$BUILD" -G Ninja -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "$BUILD" --target bench_hotpath bench_mt tlbsim

mkdir -p "$OUT"

step "bench_hotpath (UTLB_HOTPATH_MS=${UTLB_HOTPATH_MS:-300} ms/cell)"
UTLB_BENCH_JSON_DIR="$OUT" "$BUILD"/bench/bench_hotpath

# bench_mt fatals unless a threads=1 concurrent-mode stack replays
# bit-identically to the sequential path (results, modeled costs,
# stats tree), so this run doubles as the golden-equivalence gate.
step "bench_mt (UTLB_MT_MS=${UTLB_MT_MS:-300} ms/cell, \
UTLB_MT_THREADS=${UTLB_MT_THREADS:-4})"
UTLB_BENCH_JSON_DIR="$OUT" "$BUILD"/bench/bench_mt

# Oversubscription is recorded in-band (host_info.cores vs
# worker_threads + fill_threads, a warning cell, and per-cell
# oversubscribed flags); repeat it on the console so a 1-core
# container run is never mistaken for a scaling measurement.
python3 - "$OUT/BENCH_mt.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
hi = doc["host_info"]
print("host: %d core(s), %d worker thread(s) + %d fill thread(s)"
      % (hi["cores"], hi["worker_threads"], hi["fill_threads"]))
warn = [p for p in doc["points"]
        if p["labels"].get("mode") == "oversubscribed_warning"]
over = [p["labels"] for p in doc["points"]
        if p["metrics"].get("oversubscribed") == 1.0
        and p["labels"].get("mode") != "oversubscribed_warning"]
if warn:
    print("WARNING: oversubscribed run (threads exceed cores); "
          "wall-clock cells measure time-slicing, not scaling:")
    for lb in over:
        print("  - %s/%s threads=%s" % (lb.get("scenario"),
                                        lb.get("mode"),
                                        lb.get("threads")))
EOF

step "tlbsim --batch replay (radix)"
"$BUILD"/src/tlbsim/tlbsim radix --mode utlb --prefetch 8 --batch \
    --stats-json "$OUT/tlbsim_batch_radix.json"

cp "$OUT/BENCH_hotpath.json" BENCH_hotpath.json
step "done"
# Surface which packed tag-compare kernel the run dispatched to
# (host_info.simd): throughput is only comparable between runs that
# report the same value.
SIMD=$(python3 -c "import json; \
print(json.load(open('BENCH_hotpath.json'))['host_info']['simd'])")
echo "simd kernel: $SIMD (host_info.simd)"
echo "results in $OUT (incl. BENCH_mt.json); baseline refreshed at BENCH_hotpath.json"
