/**
 * @file
 * NIC DMA engine.
 *
 * Moves real bytes between host physical memory and NIC SRAM and
 * reports the modeled transfer cost. The engine itself is
 * synchronous; callers (the firmware loop) schedule completions on
 * the event queue using the returned cost, mirroring how the LANai
 * firmware blocks on its DMA doorbell.
 */

#ifndef UTLB_NIC_DMA_HPP
#define UTLB_NIC_DMA_HPP

#include <cstdint>
#include <span>

#include "mem/phys_memory.hpp"
#include "nic/sram.hpp"
#include "nic/timing.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace utlb::nic {

/**
 * The board DMA engine: host <-> SRAM block copies with a calibrated
 * cost model.
 */
class DmaEngine
{
  public:
    DmaEngine(mem::PhysMemory &host, Sram &board_sram,
              const NicTimings &t)
        : hostMem(&host), sram(&board_sram), timings(&t)
    {}

    DmaEngine(const DmaEngine &) = delete;
    DmaEngine &operator=(const DmaEngine &) = delete;

    /**
     * Copy @p len bytes from host physical memory into SRAM.
     * @return the modeled cost of the transfer.
     */
    sim::Tick hostToNic(mem::PhysAddr src, SramAddr dst, std::size_t len);

    /** Copy @p len bytes from SRAM into host physical memory. */
    sim::Tick nicToHost(SramAddr src, mem::PhysAddr dst, std::size_t len);

    /**
     * Copy host-to-host through the board (receive-side deposit of
     * data already staged in SRAM is modeled by the two halves; this
     * helper charges a single descriptor for bounce-free transfers).
     */
    sim::Tick hostToHost(mem::PhysAddr src, mem::PhysAddr dst,
                         std::size_t len);

    /** @name Lifetime counters @{ */
    std::uint64_t bytesToNic() const { return statBytesToNic.value(); }
    std::uint64_t bytesToHost() const
    {
        return statBytesToHost.value();
    }
    std::uint64_t transfers() const { return statTransfers.value(); }
    /** @} */

    /** This engine's statistics subtree. */
    sim::StatGroup &stats() { return statsGrp; }
    const sim::StatGroup &stats() const { return statsGrp; }

  private:
    mem::PhysMemory *hostMem;
    Sram *sram;
    const NicTimings *timings;

    sim::StatGroup statsGrp{"dma"};
    sim::Counter statBytesToNic{&statsGrp, "bytes_to_nic",
                                "bytes DMAed host -> SRAM"};
    sim::Counter statBytesToHost{&statsGrp, "bytes_to_host",
                                 "bytes DMAed SRAM -> host"};
    sim::Counter statTransfers{&statsGrp, "transfers",
                               "DMA descriptors issued"};
    sim::Histogram statTransferLatency{&statsGrp,
                                       "transfer_latency_us",
                                       "modeled cost per DMA transfer",
                                       100.0, 25};
};

} // namespace utlb::nic

#endif // UTLB_NIC_DMA_HPP
