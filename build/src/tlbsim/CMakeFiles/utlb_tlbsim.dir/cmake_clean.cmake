file(REMOVE_RECURSE
  "CMakeFiles/utlb_tlbsim.dir/simulator.cpp.o"
  "CMakeFiles/utlb_tlbsim.dir/simulator.cpp.o.d"
  "libutlb_tlbsim.a"
  "libutlb_tlbsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utlb_tlbsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
