/**
 * @file
 * tlbsim: trace-driven simulator CLI with periodic self-checking.
 *
 * Thin front end over simulateUtlb()/simulateIntr() for a single
 * configuration (the sweep tool is examples/trace_analysis). Its
 * distinguishing flag is --audit-every N, which runs the invariant
 * auditors over the whole translation stack every N lookups and
 * aborts with a structured report on the first violation — the
 * simulator equivalent of a debug kernel's periodic consistency
 * sweep. See docs/checking.md.
 *
 * Usage:
 *     tlbsim [workload] [--mode utlb|intr|both]
 *            [--entries N] [--assoc N] [--no-offset]
 *            [--prefetch N] [--memlimit PAGES] [--policy NAME]
 *            [--prepin N] [--seed S] [--warmup N]
 *            [--synthetic uniform|stream|hotcold]
 *            [--audit-every N]
 *            [--stats-json FILE] [--trace-out FILE]
 *
 * Examples:
 *     tlbsim radix --entries 4096 --audit-every 1000
 *     tlbsim --synthetic hotcold --mode intr --audit-every 64
 *     tlbsim fft --stats-json stats.json --trace-out trace.json
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/json.hpp"
#include "sim/log.hpp"
#include "sim/table.hpp"
#include "sim/tracer.hpp"
#include "tlbsim/simulator.hpp"
#include "trace/workloads.hpp"

namespace {

using namespace utlb;

void
usage()
{
    std::cout <<
        "usage: tlbsim [workload] [options]\n"
        "  workloads: fft lu barnes radix raytrace volrend water\n"
        "  --mode M        utlb|intr|both (default both)\n"
        "  --entries N     NIC cache entries (default 8192)\n"
        "  --assoc N       associativity 1/2/4 (default 1)\n"
        "  --no-offset     disable process index offsetting\n"
        "  --prefetch N    entries fetched per miss (default 1)\n"
        "  --memlimit P    per-process pin budget in pages\n"
        "  --policy NAME   lru|mru|lfu|mfu|fifo|random\n"
        "  --prepin N      sequential pre-pin batch (default 1)\n"
        "  --batch         drive the UTLB replay through\n"
        "                  translateRange() (identical modeled\n"
        "                  results; reports simulator wall-clock)\n"
        "  --seed S        RNG seed (default 12345)\n"
        "  --warmup N      lookups excluded from statistics\n"
        "  --synthetic K   micro-workload: uniform|stream|hotcold\n"
        "  --audit-every N run the invariant auditors every N\n"
        "                  lookups; abort on any violation (0 = "
        "never)\n"
        "  --stats-json F  write all runs' statistics (components\n"
        "                  tree included) as utlb-stats-v1 JSON to F\n"
        "  --trace-out F   write the UTLB miss path as Chrome\n"
        "                  trace-event JSON to F (load in\n"
        "                  chrome://tracing or Perfetto)\n";
}

/** Open @p path for writing, dying on failure. */
std::ofstream
openOut(const std::string &path)
{
    std::ofstream ofs(path);
    if (!ofs)
        sim::fatal("cannot open %s for writing", path.c_str());
    return ofs;
}

/**
 * Write the whole invocation as one "utlb-stats-v1" document: the
 * trace's shape plus each run's per-run object (already serialized
 * by the simulator) under "runs".
 */
void
writeStatsJson(const std::string &path, const std::string &workload,
               const trace::TraceShape &shape,
               const std::vector<std::pair<const char *, std::string>>
                   &runs)
{
    std::ofstream ofs = openOut(path);
    sim::JsonWriter w(ofs);
    w.beginObject();
    w.field("schema", "utlb-stats-v1");
    w.beginObject("workload");
    w.field("name", workload);
    w.field("lookups", shape.lookups);
    w.field("distinct_pages", shape.distinctPages);
    w.field("processes", shape.processes);
    w.endObject();
    w.beginArray("runs");
    for (const auto &[mech, json] : runs) {
        (void)mech;
        w.rawValue(json);
    }
    w.endArray();
    w.endObject();
    ofs << '\n';
}

/** Print one run's statistics as a two-column table. */
void
report(const char *mech, const tlbsim::SimResult &r, bool utlb)
{
    sim::TextTable t(std::string(mech) + " simulation");
    t.setHeader({"metric", "value"});
    auto add = [&](const char *name, const std::string &val) {
        t.addRow({name, val});
    };
    add("lookups", sim::TextTable::num(r.lookups));
    add("probes", sim::TextTable::num(r.probes));
    if (utlb)
        add("check misses / lookup",
            sim::TextTable::num(r.checkMissPerLookup(), 4));
    add("NI misses / lookup",
        sim::TextTable::num(r.niMissPerLookup(), 4));
    add("unpins / lookup", sim::TextTable::num(r.unpinsPerLookup(), 4));
    add("probe miss rate", sim::TextTable::num(r.probeMissRate(), 4));
    add("avg lookup cost (us)",
        sim::TextTable::num(r.avgLookupCostUs(), 2));
    add("amortized pin (us)",
        sim::TextTable::num(r.amortizedPinUs(), 2));
    add("amortized unpin (us)",
        sim::TextTable::num(r.amortizedUnpinUs(), 2));
    add("compulsory misses", sim::TextTable::num(r.compulsoryMisses));
    add("capacity misses", sim::TextTable::num(r.capacityMisses));
    add("conflict misses", sim::TextTable::num(r.conflictMisses));
    if (!utlb)
        add("interrupts", sim::TextTable::num(r.interrupts));
    add("invariant audits", sim::TextTable::num(r.audits));
    add("wall clock (ms)",
        sim::TextTable::num(r.wallNs / 1e6, 2));
    if (r.wallNs > 0)
        add("sim translations/sec",
            sim::TextTable::num(
                static_cast<double>(r.probes) * 1e9 / r.wallNs, 0));
    t.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "radix";
    std::string synthetic;
    std::string mode = "both";
    std::string statsPath;
    std::string tracePath;
    tlbsim::SimConfig cfg;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage();
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--mode") {
            mode = next();
        } else if (arg == "--entries") {
            cfg.cache.entries = std::stoul(next());
        } else if (arg == "--assoc") {
            cfg.cache.assoc = static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--no-offset") {
            cfg.cache.indexOffsetting = false;
        } else if (arg == "--prefetch") {
            cfg.prefetchEntries = std::stoul(next());
        } else if (arg == "--memlimit") {
            cfg.memLimitPages = std::stoul(next());
        } else if (arg == "--policy") {
            cfg.policy = core::policyFromName(next());
        } else if (arg == "--prepin") {
            cfg.prepinPages = std::stoul(next());
        } else if (arg == "--batch") {
            cfg.batchedRange = true;
        } else if (arg == "--seed") {
            cfg.seed = std::stoull(next());
        } else if (arg == "--warmup") {
            cfg.warmupLookups = std::stoul(next());
        } else if (arg == "--synthetic") {
            synthetic = next();
        } else if (arg == "--audit-every") {
            cfg.auditEvery = std::stoul(next());
        } else if (arg == "--stats-json") {
            statsPath = next();
        } else if (arg == "--trace-out") {
            tracePath = next();
        } else if (!arg.empty() && arg[0] != '-') {
            workload = arg;
        } else {
            usage();
            return 1;
        }
    }
    if (mode != "utlb" && mode != "intr" && mode != "both")
        sim::fatal("unknown --mode %s", mode.c_str());

    trace::Trace tr = synthetic.empty()
        ? trace::generateTrace(workload, cfg.seed)
        : trace::generateSynthetic(synthetic, trace::SyntheticSpec{},
                                   cfg.seed);

    auto shape = trace::measure(tr);
    std::cout << "trace: " << shape.lookups << " lookups, "
              << shape.distinctPages << " distinct pages, "
              << shape.processes << " processes\n";
    if (cfg.auditEvery != 0)
        std::cout << "auditing every " << cfg.auditEvery
                  << " lookups\n";
    std::cout << "\n";

    sim::Tracer tracer;
    if (!tracePath.empty())
        cfg.tracer = &tracer;

    std::vector<std::pair<const char *, std::string>> runs;
    if (mode == "utlb" || mode == "both") {
        tlbsim::SimResult r = tlbsim::simulateUtlb(tr, cfg);
        report("UTLB", r, true);
        runs.emplace_back("utlb", std::move(r.statsJson));
    }
    if (mode == "intr" || mode == "both") {
        tlbsim::SimResult r = tlbsim::simulateIntr(tr, cfg);
        report("Intr", r, false);
        runs.emplace_back("intr", std::move(r.statsJson));
    }

    if (!statsPath.empty()) {
        writeStatsJson(statsPath,
                       synthetic.empty() ? workload : synthetic,
                       shape, runs);
        std::cout << "stats written to " << statsPath << "\n";
    }
    if (!tracePath.empty()) {
        std::ofstream ofs = openOut(tracePath);
        tracer.writeJson(ofs);
        ofs << '\n';
        if (tracer.dropped())
            std::cout << tracer.dropped()
                      << " trace events dropped (buffer full)\n";
        std::cout << "trace written to " << tracePath << " ("
                  << tracer.events() << " events)\n";
    }
    return 0;
}
