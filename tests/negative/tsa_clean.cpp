// Positive control for scripts/negative_compile.sh: correct use of
// the annotated primitives MUST compile clean both with and without
// -Werror=thread-safety-analysis. If this file fails under the
// analysis flags, the toolchain (not the cases) is broken and the
// suite must not report the negative cases as "correctly rejected".

#include "sim/annotations.hpp"
#include "sim/mutex.hpp"
#include "sim/spinlock.hpp"

class Registry
{
  public:
    void add(int v)
    {
        utlb::sim::LockGuard g(mu);
        table[0] = v;
    }

    int peek() UTLB_REQUIRES(stripe) { return table2[0]; }

    int read()
    {
        utlb::sim::SpinGuard g(stripe);
        return peek();
    }

  private:
    utlb::sim::Mutex mu;
    int table[4] UTLB_GUARDED_BY(mu) = {};
    utlb::sim::Spinlock stripe;
    int table2[4] UTLB_GUARDED_BY(stripe) = {};
};

int
main()
{
    Registry r;
    r.add(1);
    return r.read();
}
