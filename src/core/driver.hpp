/**
 * @file
 * The UTLB device driver (§4.2).
 *
 * "The UTLB mechanism does not rely on OS modifications nor on
 * esoteric OS features. Only a device driver that accesses the OS
 * page-pinning and unpinning facility is required." This class is
 * that driver: it owns the pinned garbage page, allocates per-process
 * translation tables, and exposes the ioctl() the user-level library
 * calls to (a) lock pages and (b) fill translation entries.
 *
 * Costs: an ioctl pin/unpin charges the measured Table 1 batch curve
 * (syscall overhead included, since the paper measured through the
 * ioctl interface).
 */

#ifndef UTLB_CORE_DRIVER_HPP
#define UTLB_CORE_DRIVER_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/cost_model.hpp"
#include "core/shared_cache.hpp"
#include "core/translation_table.hpp"
#include "mem/address_space.hpp"
#include "mem/phys_memory.hpp"
#include "mem/pinning.hpp"
#include "nic/sram.hpp"
#include "sim/annotations.hpp"
#include "sim/mutex.hpp"
#include "sim/stats.hpp"

namespace utlb::core {

/** Result of a driver ioctl. */
struct IoctlResult {
    mem::PinStatus status = mem::PinStatus::Ok;
    sim::Tick cost = 0;          //!< modeled host time spent
    std::size_t pagesDone = 0;   //!< pages actually pinned/unpinned
};

/**
 * The VMMC/UTLB device driver.
 *
 * One driver instance per host; it manages every process using the
 * board. The driver keeps the host-resident Hierarchical-UTLB page
 * tables coherent with the pinning facility and the NIC shared
 * cache: an unpin always invalidates both the host table entry and
 * any cached NIC copy before the page becomes evictable.
 *
 * Thread safety: the driver is sharded by process. Per-process state
 * (the page-table/NIC-table/space directory and the ioctl statistics)
 * lives in one of @p shards shard blocks, each with its own mutex; an
 * ioctl takes only its process' shard lock, so concurrent misses from
 * different processes stop serializing the way they would on one
 * driver-wide lock. Process (un)registration and NIC-table creation
 * additionally serialize on registryMu (lock order: registryMu, then
 * one shard mutex — ioctls never hold two shard locks). With more
 * than one shard the constructor arms the pin facility's, the
 * physical allocator's, and the NIC cache's internal locking, since
 * a single shard lock no longer serializes access to those shared
 * structures. The default single shard reproduces the monolithic
 * driver exactly (same lock discipline, bit-identical stats).
 *
 * Accessors that hand out references (pageTable, nicTable,
 * pinFacility, stats, audit) are not locked: use them only after
 * registration has quiesced and, for stats/audit, when no worker is
 * in an ioctl.
 */
class UtlbDriver
{
    struct Shard;  // the per-shard block (defined below, private)

  public:
    UtlbDriver(mem::PhysMemory &host_mem, mem::PinFacility &pin_facility,
               nic::Sram &board_sram, SharedUtlbCache &cache,
               const HostCosts &costs, unsigned shards = 1);

    ~UtlbDriver();

    UtlbDriver(const UtlbDriver &) = delete;
    UtlbDriver &operator=(const UtlbDriver &) = delete;

    /** The always-pinned garbage frame (§4.2). */
    mem::Pfn garbageFrame() const { return garbagePfn; }

    /** The kernel pin facility this driver fronts. */
    const mem::PinFacility &pinFacility() const { return *pins; }

    /** Number of driver shards (a power of two; 1 = monolithic). */
    unsigned shardCount() const
    {
        return static_cast<unsigned>(shards.size());
    }

    /**
     * Register a process: creates its host-resident page table and
     * registers its address space with the pinning facility. Reserved
     * pids (the empty/tombstone sentinels of the shard directory,
     * which also cover kKernelPid) are rejected fatally.
     */
    void registerProcess(mem::AddressSpace &space);

    /** Tear down a process: unpins all pages, drops cache entries. */
    void unregisterProcess(mem::ProcId pid);

    /** True if @p pid is registered. */
    bool isRegistered(mem::ProcId pid) const;

    /** The process' Hierarchical-UTLB page table. */
    HostPageTable &pageTable(mem::ProcId pid);

    /**
     * pageTable()'s concurrent-safe twin: resolves the table under
     * the shard lock, so the directory probe cannot race another
     * tenant's register/unregister rehashing this shard (fleet churn
     * does exactly that mid-translate). The returned object is
     * heap-stable and outlives the lock; it stays valid until @p pid
     * itself unregisters, which miss-path callers — the process' own
     * view or a fill thread draining its tickets — preclude by
     * construction.
     * @return nullptr if @p pid is not registered.
     */
    HostPageTable *pageTableShared(mem::ProcId pid);

    /**
     * An opaque reference to the shard that serves one process'
     * ioctls. Resolving the shard is a cheap hash, but callers that
     * issue many ioctls for one pid (PinManager, the fill threads)
     * can resolve once and pass the handle to the ioctl overloads
     * below. A default-constructed handle is empty; handles stay
     * valid for the driver's lifetime (shards are never reallocated).
     */
    class ShardHandle
    {
        friend class UtlbDriver;
        Shard *sh = nullptr;

      public:
        ShardHandle() = default;
        explicit operator bool() const { return sh != nullptr; }
    };

    /** The shard handle for @p pid's ioctls. */
    ShardHandle shardOf(mem::ProcId pid)
    {
        ShardHandle h;
        h.sh = &shardFor(pid);
        return h;
    }

    /**
     * ioctl: pin [start, start+npages) and install the translations
     * into the process' host page table (all-or-nothing).
     *
     * On LimitExceeded/OutOfMemory nothing is pinned and the caller
     * (the user-level library) is expected to evict and retry.
     */
    IoctlResult ioctlPinAndInstall(mem::ProcId pid, mem::Vpn start,
                                   std::size_t npages);
    IoctlResult ioctlPinAndInstall(ShardHandle h, mem::ProcId pid,
                                   mem::Vpn start, std::size_t npages);

    /**
     * ioctl: unpin @p npages pages starting at @p start,
     * invalidating host-table entries and NIC cache copies.
     * Pages in the range that are not pinned are skipped.
     */
    IoctlResult ioctlUnpinAndInvalidate(mem::ProcId pid, mem::Vpn start,
                                        std::size_t npages);
    IoctlResult ioctlUnpinAndInvalidate(ShardHandle h, mem::ProcId pid,
                                        mem::Vpn start,
                                        std::size_t npages);

    /**
     * Create the per-process NIC-resident translation table used by
     * the §3.1 design. @p entries slots, garbage-initialized.
     */
    NicTranslationTable &createNicTable(mem::ProcId pid,
                                        std::size_t entries);

    /** The per-process NIC table (must have been created). */
    NicTranslationTable &nicTable(mem::ProcId pid);

    /**
     * ioctl for the per-process design: pin one page and install its
     * translation at @p index of the process' NIC table.
     */
    IoctlResult ioctlPinAtIndex(mem::ProcId pid, mem::Vpn vpn,
                                UtlbIndex index);

    /**
     * ioctl for the per-process design: unpin the page behind
     * @p index and reset the slot to the garbage frame.
     */
    IoctlResult ioctlUnpinIndex(mem::ProcId pid, mem::Vpn vpn,
                                UtlbIndex index);

    /**
     * @name Lifetime counters
     *
     * Quiescent-only accessors (class comment): they sum the
     * per-shard stat slots unlocked, by the same temporal contract
     * as pageTable().
     * @{
     */
    std::uint64_t ioctlCalls() const { return statIoctls.value(); }
    std::uint64_t pagesPinned() const
    {
        return statPagesPinned.value();
    }
    std::uint64_t pagesUnpinned() const
    {
        return statPagesUnpinned.value();
    }
    /** @} */

    /** The driver's statistics subtree. */
    sim::StatGroup &stats() { return statsGrp; }
    const sim::StatGroup &stats() const { return statsGrp; }

    /**
     * Invariant auditor: sweeps the garbage page, every registered
     * process' host page table, every NIC-resident table, and the
     * pin facility itself.
     */
    void audit(check::AuditReport &report) const;

  private:
    /**
     * @name Shard directory sentinels
     *
     * The per-shard process directory is open-addressed on pid (the
     * LeafDir idiom): kEmptyPid marks a never-used slot, kTombPid a
     * deleted one. Both are above every registerable pid — including
     * kKernelPid (0xfffffffe == kTombPid + 1), which only ever owns
     * the garbage frame and never registers.
     * @{
     */
    static constexpr mem::ProcId kEmptyPid = 0xffffffffu;
    static constexpr mem::ProcId kTombPid = 0xfffffffdu;
    /** @} */

    /** One registered process' driver-side state. */
    struct DirEntry {
        mem::ProcId pid = kEmptyPid;
        std::unique_ptr<HostPageTable> table;
        std::unique_ptr<NicTranslationTable> nicTable;
        mem::AddressSpace *space = nullptr;
    };

    /**
     * Per-shard ioctl statistics: the slots the merge-on-read stats
     * view (statIoctls & co.) sums at serialization time. Guarded by
     * the owning shard's mutex, so the ioctl paths bump them with
     * plain arithmetic — no second stat lock, and the TSA annotation
     * matches the actual discipline (the old split guarded half the
     * stats with mu and half with a separate statMu).
     */
    struct ShardStats {
        ShardStats(sim::HistAccum lat, sim::HistAccum rej)
            : latency(std::move(lat)), rejectLatency(std::move(rej))
        {}

        std::uint64_t ioctls = 0;
        std::uint64_t rejects = 0;
        std::uint64_t pagesPinned = 0;
        std::uint64_t pagesUnpinned = 0;
        sim::HistAccum latency;
        sim::HistAccum rejectLatency;
    };

    /**
     * One driver shard: the mutex, the open-addressed process
     * directory it guards, and the shard's stat block. Processes map
     * to shards by pid (shardFor), so one process' ioctls always
     * serialize with each other but never with another shard's.
     */
    struct Shard {
        Shard(sim::HistAccum lat, sim::HistAccum rej)
            : st(std::move(lat), std::move(rej))
        {}

        sim::Mutex mu;
        std::vector<DirEntry> dir UTLB_GUARDED_BY(mu);
        std::size_t dirLive UTLB_GUARDED_BY(mu){0};
        std::size_t dirUsed UTLB_GUARDED_BY(mu){0}; //!< live + tombs
        ShardStats st UTLB_GUARDED_BY(mu);
    };

    /**
     * Record an ioctl's outcome in the shard's latency stats before
     * returning it. Rejects sample their own histogram so
     * ioctl_latency_us stays a pure success-cost (Table 1)
     * distribution.
     */
    IoctlResult recordLocked(Shard &s, IoctlResult res)
        UTLB_REQUIRES(s.mu)
    {
        if (res.status != mem::PinStatus::Ok) {
            ++s.st.rejects;
            s.st.rejectLatency.sample(sim::ticksToUs(res.cost));
        } else {
            s.st.latency.sample(sim::ticksToUs(res.cost));
        }
        return res;
    }

    Shard &shardFor(mem::ProcId pid)
    {
        return *shards[pid & shardMask];
    }
    const Shard &shardFor(mem::ProcId pid) const
    {
        return *shards[pid & shardMask];
    }

    /** @name Open-addressed directory helpers @{ */
    static std::size_t dirHash(mem::ProcId pid)
    {
        return static_cast<std::size_t>(pid) * 0x9E3779B9u;
    }
    DirEntry *findEntryLocked(Shard &s, mem::ProcId pid)
        UTLB_REQUIRES(s.mu);
    void dirInsertLocked(Shard &s, DirEntry &&e) UTLB_REQUIRES(s.mu);
    static void dirGrow(std::vector<DirEntry> &dir,
                        std::size_t &used, std::size_t live);
    /** Quiescent-only probe (the unlocked accessors). */
    const DirEntry *findEntry(mem::ProcId pid) const;
    /** @} */

    /** @name Locked ioctl bodies (wrappers recordLocked and unlock) @{ */
    IoctlResult pinAndInstallLocked(Shard &s, mem::ProcId pid,
                                    mem::Vpn start, std::size_t npages)
        UTLB_REQUIRES(s.mu);
    IoctlResult unpinAndInvalidateLocked(Shard &s, mem::ProcId pid,
                                         mem::Vpn start,
                                         std::size_t npages)
        UTLB_REQUIRES(s.mu);
    IoctlResult pinAtIndexLocked(Shard &s, mem::ProcId pid,
                                 mem::Vpn vpn, UtlbIndex index)
        UTLB_REQUIRES(s.mu);
    IoctlResult unpinIndexLocked(Shard &s, mem::ProcId pid,
                                 mem::Vpn vpn, UtlbIndex index)
        UTLB_REQUIRES(s.mu);
    /** @} */

    /**
     * Serializes (un)registration and NIC-table creation across
     * shards: those paths allocate from board SRAM and adopt/disown
     * stats subtrees, which the shard locks alone do not cover.
     * Lock order: registryMu before any shard mutex.
     */
    sim::Mutex registryMu;

    mem::PhysMemory *hostMem;
    mem::PinFacility *pins;
    nic::Sram *sram;
    SharedUtlbCache *nicCache;
    const HostCosts *hostCosts;

    /** Set once in the constructor, immutable afterwards. */
    mem::Pfn garbagePfn;

    /** The shard blocks; sized and wired once in the constructor. */
    std::vector<std::unique_ptr<Shard>> shards;
    mem::ProcId shardMask = 0;

    sim::StatGroup statsGrp{"driver"};
    sim::MergedCounter statIoctls{
        &statsGrp, "ioctl_calls",
        "ioctl invocations (all four entry points)"};
    sim::MergedCounter statIoctlRejects{
        &statsGrp, "ioctl_rejects",
        "ioctls that returned a non-Ok status"};
    sim::MergedCounter statPagesPinned{
        &statsGrp, "pages_pinned", "pages pinned through ioctls"};
    sim::MergedCounter statPagesUnpinned{
        &statsGrp, "pages_unpinned",
        "pages unpinned through ioctls"};
    sim::MergedHistogram statIoctlLatency{
        &statsGrp, "ioctl_latency_us",
        "modeled cost per successful ioctl (Table 1 batch curve)",
        200.0, 40};
    sim::MergedHistogram statIoctlRejectLatency{
        &statsGrp, "ioctl_reject_latency_us",
        "modeled cost charged to rejected ioctls (syscall floor)",
        200.0, 40};
};

} // namespace utlb::core

#endif // UTLB_CORE_DRIVER_HPP
