file(REMOVE_RECURSE
  "libutlb_trace.a"
)
