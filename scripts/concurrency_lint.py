#!/usr/bin/env python3
"""Project-specific concurrency-discipline lint for the UTLB tree.

Clang's thread-safety analysis (src/sim/annotations.hpp, the
UTLB_THREAD_SAFETY=ON build) checks the lock-shaped half of the
concurrency discipline. This lint enforces the rules capability
annotations cannot express:

  seqlock-read-section   Between SeqCount::readBegin() and the
                         matching readRetry(), an optimistic reader
                         may only perform relaxed atomic loads
                         (loadRelaxed / atomic_ref relaxed): no
                         stores, no RMWs, no member writes, no
                         stronger memory orders, no unprotected
                         reads of the seqlock-paired fields
                         (valid/pid/vpn/pfn), and no plain-load
                         packed-probe kernels
                         (probePacked<DirectLoads> / simd::matchWays
                         issue non-atomic loads). A function whose
                         body carries a
                         `// utlb-lint: seqlock-read-helper` marker
                         is held to the same purity rules over its
                         whole body: such helpers (e.g. the
                         RelaxedLoads policy in shared_cache.cpp)
                         run inside callers' read sections the
                         scanner cannot see across.

  mt-shard-discipline    Methods named `*MT` are the concurrent hot
                         path: statistics move only through the
                         caller's Shard (`sh.`), never the shared
                         stat counters (statXxx/statsGrp); the use
                         clock is touched only through atomic_ref;
                         recency stamps (`lastUse`) are written only
                         from nextStamp(sh) stamp blocks.

  memory-order           src/ is relaxed/acquire/release only:
                         memory_order_seq_cst is banned (nothing in
                         the protocol needs it, and it hides fence
                         mistakes), `volatile` is banned (it is not
                         a synchronization primitive), and every
                         atomic operation — including wait() and the
                         compare_exchange pair — spells its memory
                         order explicitly (the seq_cst default is a
                         silent pessimization).

  fill-stripe-ownership  A fill-pool drain loop (a function carrying
                         a `// utlb-lint: fill-worker` marker, inside
                         the body or immediately above the
                         definition) may only service tickets whose
                         stripe it owns: every serviceMiss()/
                         insertMT() call in the marked function must
                         be preceded by an ownsStripe() check. The
                         stripe residue class is the pool's whole
                         concurrency argument -- a foreign-stripe
                         ticket would let two fill threads race on
                         one stripe lock's FIFO order.

  scoped-guard           Every lock acquisition is scoped: no naked
                         .lock()/.unlock() outside the guard
                         implementations (sim/spinlock.hpp,
                         sim/mutex.hpp), no bare std::mutex or
                         std::condition_variable in src/ (sim::Mutex
                         / sim::CondVar keep the acquisition and the
                         sleep's lock handoff visible to the
                         thread-safety analysis), and no discarded
                         try_lock().

The analysis is a comment/string-aware token scan, not a full
parse: rules are written so the real tree is clean and every
fixture in tests/lint/ is caught. False positives in new code can
be silenced line-by-line with `// utlb-lint: allow(<rule>)` and a
justification; see docs/checking.md.

Usage:
  concurrency_lint.py [--root DIR] [--compdb FILE | -p BUILDDIR]
  concurrency_lint.py [--force-src] FILE...
  concurrency_lint.py --self-test FIXTURE_DIR
  concurrency_lint.py --force-src --expect-findings FILE...

Exit status: 0 clean (or expectations met), 1 findings (or
expectations missed), 2 usage/environment error.
"""

import argparse
import glob
import json
import os
import re
import sys

SRC_ONLY_RULES = {"memory-order"}

# Guard implementations legitimately call the raw primitives, and the
# annotated wrapper legitimately owns a std::mutex.
GUARD_IMPL_FILES = {
    os.path.join("src", "sim", "spinlock.hpp"),
    os.path.join("src", "sim", "mutex.hpp"),
}

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof",
    "alignof", "decltype", "static_assert", "assert", "new", "delete",
}

ALLOW_RE = re.compile(r"utlb-lint:\s*allow\(([\w\-, ]+)\)")
HELPER_RE = re.compile(r"utlb-lint:\s*seqlock-read-helper\b")
FILLWORKER_RE = re.compile(r"utlb-lint:\s*fill-worker\b")
EXPECT_RE = re.compile(r"utlb-lint-expect:\s*([\w\-]+)")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line
    structure, and collect per-line lint directives from comments."""
    out = []
    allows = {}   # line (1-based) -> set of allowed rules
    expects = []  # rules named by utlb-lint-expect comments
    helpers = []  # lines carrying the seqlock-read-helper marker
    fillworkers = []  # lines carrying the fill-worker marker
    i, n = 0, len(text)
    line = 1
    state = "code"  # code | line_comment | block_comment | dq | sq
    comment_buf = []
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                comment_buf = []
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                comment_buf = []
                i += 2
                continue
            if c == '"':
                state = "dq"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "sq"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state in ("line_comment", "block_comment"):
            ended = False
            if state == "line_comment" and c == "\n":
                ended = True
            elif state == "block_comment" and c == "*" and nxt == "/":
                ended = True
                i += 1  # consume the '/'
            if ended or c == "\n":
                comment = "".join(comment_buf)
                m = ALLOW_RE.search(comment)
                if m:
                    allows.setdefault(line, set()).update(
                        r.strip() for r in m.group(1).split(","))
                expects.extend(EXPECT_RE.findall(comment))
                if HELPER_RE.search(comment):
                    helpers.append(line)
                if FILLWORKER_RE.search(comment):
                    fillworkers.append(line)
                comment_buf = []
            if ended:
                state = "code"
                if c == "\n":
                    out.append("\n")
                i += 1
                if c == "\n":
                    line += 1
                continue
            if c == "\n":
                out.append("\n")
            else:
                comment_buf.append(c)
        elif state in ("dq", "sq"):
            if c == "\\":
                out.append("\\")
                i += 2
                continue
            if (state == "dq" and c == '"') or \
               (state == "sq" and c == "'"):
                state = "code"
                out.append(c)
            elif c == "\n":
                out.append("\n")  # unterminated; keep line count
                state = "code"
            else:
                out.append(" ")  # blank literal contents
        if c == "\n":
            line += 1
        i += 1
    # Flush a trailing line comment with no final newline.
    if state in ("line_comment", "block_comment") and comment_buf:
        comment = "".join(comment_buf)
        m = ALLOW_RE.search(comment)
        if m:
            allows.setdefault(line, set()).update(
                r.strip() for r in m.group(1).split(","))
        expects.extend(EXPECT_RE.findall(comment))
        if HELPER_RE.search(comment):
            helpers.append(line)
        if FILLWORKER_RE.search(comment):
            fillworkers.append(line)
    return "".join(out), allows, expects, helpers, fillworkers


FUNC_NAME_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\($")


def function_of_lines(code):
    """Map each (1-based) line to the name of the enclosing function
    definition, or None. Nested blocks (control flow, lambdas) inherit
    the enclosing function's name."""
    lines_func = {}
    stack = []  # entries: ("func", name) | ("other", None)
    sig = []
    line = 1
    func_depth_name = None  # innermost function name, if any

    def current_func():
        for kind, name in reversed(stack):
            if kind == "func":
                return name
        return None

    i, n = 0, len(code)
    while i < n:
        c = code[i]
        if c == "\n":
            lines_func[line] = current_func()
            line += 1
            sig.append(" ")
        elif c == "{":
            text = "".join(sig).strip()
            sig = []
            kind, name = "other", None
            if current_func() is not None:
                # Control block, lambda, or local scope: inherit.
                kind, name = "inherit", None
            elif text and not text.rstrip().endswith(("=", ",", "(")):
                # Candidate function definition: the first
                # identifier followed by '(' with nothing
                # parenthesized before it is the declarator name.
                m = re.search(r"\b([A-Za-z_]\w*)\s*\(", text)
                if m and "(" not in text[:m.start()] \
                        and m.group(1) not in CONTROL_KEYWORDS:
                    kind, name = "func", m.group(1)
            stack.append((kind, name))
        elif c == "}":
            if stack:
                stack.pop()
            sig = []
        elif c == ";":
            sig = []
        else:
            sig.append(c)
        i += 1
    lines_func[line] = current_func()
    return lines_func


def span_has_memory_order(lines, line_idx, col):
    """True if the call's argument list starting at lines[line_idx]
    (0-based) column `col` (position of the opening paren) names an
    explicit memory order. Scans up to 8 lines for the close paren."""
    depth = 0
    buf = []
    for k in range(line_idx, min(line_idx + 8, len(lines))):
        text = lines[k]
        start = col if k == line_idx else 0
        for j in range(start, len(text)):
            ch = text[j]
            buf.append(ch)
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    return "memory_order_" in "".join(buf)
    return "memory_order_" in "".join(buf)


MEMBER_WRITE_RE = re.compile(
    r"[\w\)\]]+(?:\.|->)\w+\s*=(?![=])")
MEMBER_INCR_RE = re.compile(
    r"(?:\+\+|--)\s*[\w\)\]]+(?:\.|->)\w+"
    r"|[\w\)\]]+(?:\.|->)\w+\s*(?:\+\+|--)")
STOREISH_CALL_RE = re.compile(
    r"\b(?:storeRelaxed|writeBegin|writeEnd)\s*\("
    r"|(?:\.|->)\s*(?:store|exchange|fetch_add|fetch_sub|fetch_or"
    r"|fetch_and|fetch_xor|compare_exchange_\w+|test_and_set)\s*\(")
NONRELAXED_ORDER_RE = re.compile(
    r"memory_order_(?:acquire|release|acq_rel|seq_cst|consume)")
PROTECTED_READ_RE = re.compile(
    r"[\w\)\]]+(?:\.|->)(?:valid|pid|vpn|pfn|pidVpn)\b")
DIRECT_PROBE_RE = re.compile(
    r"\bprobePacked\s*<\s*DirectLoads\b|\bsimd::matchWays\s*\(")
READBEGIN_RE = re.compile(r"=\s*[\w\.\->\[\]]*[\w\]]\s*\.readBegin\s*\(")
READRETRY_RE = re.compile(r"(?:\.|->)readRetry\s*\(")

FILL_SERVICE_RE = re.compile(r"\b(serviceMiss|insertMT)\s*\(")
OWNS_STRIPE_RE = re.compile(r"\bownsStripe\s*\(")

STAT_MEMBER_RE = re.compile(r"\b(?:stat[A-Z]\w*|statsGrp|statsPolicy)\b")
USECLOCK_RE = re.compile(r"\buseClock\b")
LASTUSE_WRITE_RE = re.compile(r"(?:\.|->)lastUse\s*=(?![=])([^;]*)")

ATOMIC_OP_RE = re.compile(
    r"(?:\.|->)\s*(load|store|exchange|fetch_add|fetch_sub|fetch_or"
    r"|fetch_and|fetch_xor|test_and_set|wait"
    r"|compare_exchange_weak|compare_exchange_strong)\s*(\()")
NAKED_LOCK_RE = re.compile(r"(?:\.|->)\s*(lock|unlock)\s*\(\s*\)")
STD_MUTEX_RE = re.compile(
    r"\bstd::(?:recursive_|shared_|timed_|recursive_timed_)?mutex\b")
STD_CONDVAR_RE = re.compile(r"\bstd::condition_variable(?:_any)?\b")
DISCARDED_TRYLOCK_RE = re.compile(
    r"^\s*[\w\.\->\(\)\[\]]*(?:\.|->)try_lock\s*\(\s*\)\s*;\s*$")


def lint_file(path, rel, text, force_src=False):
    code, allows, _, helper_lines, fillworker_lines = \
        strip_comments_and_strings(text)
    lines = code.split("\n")
    func_of = function_of_lines(code)
    # A seqlock-read-helper marker subjects the whole enclosing
    # function to read-section purity (the helper runs inside a
    # caller's read section this scanner cannot track across). The
    # scope is the contiguous run of lines mapped to the marker's
    # function -- by span, not by name, so an unmarked function that
    # happens to share the name (DirectLoads vs RelaxedLoads policy
    # methods) is not swept in. A marker outside any recognized
    # function covers its own line.
    helper_scope = set()
    nlines = len(lines)
    for l in helper_lines:
        f = func_of.get(l)
        if f is None:
            helper_scope.add(l)
            continue
        lo = l
        while lo > 1 and func_of.get(lo - 1) == f:
            lo -= 1
        hi = l
        while hi < nlines and func_of.get(hi + 1) == f:
            hi += 1
        helper_scope.update(range(lo, hi + 1))
    in_src = force_src or rel.replace(os.sep, "/").startswith("src/")
    is_guard_impl = rel in GUARD_IMPL_FILES and not force_src
    findings = []

    def report(lineno, rule, message):
        if rule in allows.get(lineno, set()):
            return
        if rule in SRC_ONLY_RULES and not in_src:
            return
        findings.append(Finding(rel, lineno, rule, message))

    # --- seqlock-read-section ------------------------------------
    in_section = False
    section_func = None
    for idx, text_line in enumerate(lines):
        lineno = idx + 1
        func = func_of.get(lineno)
        if in_section and func != section_func:
            in_section = False
        if not in_section:
            if READBEGIN_RE.search(text_line):
                in_section = True
                section_func = func
                continue
            if lineno not in helper_scope:
                continue
        if in_section and READRETRY_RE.search(text_line):
            in_section = False
            continue
        if DIRECT_PROBE_RE.search(text_line):
            report(lineno, "seqlock-read-section",
                   "plain-load packed probe inside a seqlock read "
                   "section; DirectLoads/simd::matchWays issue "
                   "non-atomic loads -- optimistic readers go "
                   "through RelaxedLoads")
        if STOREISH_CALL_RE.search(text_line):
            report(lineno, "seqlock-read-section",
                   "store/RMW inside an optimistic seqlock read "
                   "section; writers must hold the stripe lock and "
                   "bump the version")
        if NONRELAXED_ORDER_RE.search(text_line):
            report(lineno, "seqlock-read-section",
                   "non-relaxed memory order inside a seqlock read "
                   "section; the version counter provides the "
                   "ordering, data loads stay relaxed")
        if MEMBER_WRITE_RE.search(text_line) \
                or MEMBER_INCR_RE.search(text_line):
            report(lineno, "seqlock-read-section",
                   "member write inside a seqlock read section; an "
                   "optimistic reader may not mutate shared state")
        elif PROTECTED_READ_RE.search(text_line) \
                and "loadRelaxed" not in text_line \
                and "atomic_ref" not in text_line:
            report(lineno, "seqlock-read-section",
                   "unprotected read of a seqlock-paired field; go "
                   "through loadRelaxed()/atomic_ref or the racing "
                   "access is undefined")

    # --- mt-shard-discipline -------------------------------------
    for idx, text_line in enumerate(lines):
        lineno = idx + 1
        func = func_of.get(lineno)
        if not func or not func.endswith("MT"):
            continue
        if STAT_MEMBER_RE.search(text_line):
            report(lineno, "mt-shard-discipline",
                   "shared stat counter touched in a *MT method; "
                   "accumulate into the caller's Shard and fold "
                   "with absorbShard()")
        if USECLOCK_RE.search(text_line) \
                and "atomic_ref" not in text_line:
            report(lineno, "mt-shard-discipline",
                   "direct use-clock access in a *MT method; stamps "
                   "come from nextStamp(sh) blocks carved off the "
                   "clock with atomic_ref")
        m = LASTUSE_WRITE_RE.search(text_line)
        if m and "nextStamp(" not in m.group(1):
            report(lineno, "mt-shard-discipline",
                   "recency stamp written outside the shard stamp "
                   "block; use nextStamp(sh) under the stripe lock")

    # --- fill-stripe-ownership -----------------------------------
    # A `// utlb-lint: fill-worker` marker names a fill-pool drain
    # loop. The marker may sit inside the body or on a line above
    # the definition (the scanner forward-skips to the first line
    # mapped to a function). Within that function's contiguous span,
    # every serviceMiss()/insertMT() call must come after an
    # ownsStripe() check: a fill thread may only touch the cache on
    # behalf of tickets in its own stripe residue class.
    for l in fillworker_lines:
        anchor = l
        f = func_of.get(anchor)
        while f is None and anchor < nlines:
            anchor += 1
            f = func_of.get(anchor)
        if f is None:
            continue  # marker precedes no recognizable function
        lo = anchor
        while lo > 1 and func_of.get(lo - 1) == f:
            lo -= 1
        hi = anchor
        while hi < nlines and func_of.get(hi + 1) == f:
            hi += 1
        checked = False
        for lineno in range(lo, hi + 1):
            text_line = lines[lineno - 1]
            own = OWNS_STRIPE_RE.search(text_line)
            for m in FILL_SERVICE_RE.finditer(text_line):
                if checked or (own and own.start() < m.start()):
                    continue
                report(lineno, "fill-stripe-ownership",
                       "%s() in a fill-worker drain loop without a "
                       "prior ownsStripe() check; a foreign-stripe "
                       "ticket would race two fill threads on one "
                       "stripe lock's FIFO order" % m.group(1))
            if own:
                checked = True

    # --- memory-order (src/ only) --------------------------------
    for idx, text_line in enumerate(lines):
        lineno = idx + 1
        if "memory_order_seq_cst" in text_line:
            report(lineno, "memory-order",
                   "memory_order_seq_cst is banned in src/; the "
                   "protocols here are relaxed/acquire/release by "
                   "design (docs/checking.md)")
        if re.search(r"\bvolatile\b", text_line):
            report(lineno, "memory-order",
                   "volatile is not a synchronization primitive; "
                   "use std::atomic/atomic_ref with an explicit "
                   "order")
        for m in ATOMIC_OP_RE.finditer(text_line):
            if not span_has_memory_order(lines, idx, m.start(2)):
                report(lineno, "memory-order",
                       "atomic %s() without an explicit memory "
                       "order; the seq_cst default is banned, spell "
                       "the order" % m.group(1))

    # --- scoped-guard --------------------------------------------
    for idx, text_line in enumerate(lines):
        lineno = idx + 1
        if not is_guard_impl and NAKED_LOCK_RE.search(text_line):
            report(lineno, "scoped-guard",
                   "naked lock()/unlock(); use SpinGuard/LockGuard "
                   "so every acquisition is scope-bound and visible "
                   "to the thread-safety analysis")
        if in_src and not is_guard_impl \
                and STD_MUTEX_RE.search(text_line):
            report(lineno, "scoped-guard",
                   "bare std::mutex in src/; use sim::Mutex so "
                   "acquisitions are visible to the thread-safety "
                   "analysis")
        if in_src and not is_guard_impl \
                and STD_CONDVAR_RE.search(text_line):
            report(lineno, "scoped-guard",
                   "bare std::condition_variable in src/; use "
                   "sim::CondVar::waitOn so the sleep is tied to a "
                   "UniqueLock the thread-safety analysis can see")
        if DISCARDED_TRYLOCK_RE.match(text_line):
            report(lineno, "scoped-guard",
                   "try_lock() result discarded; the caller cannot "
                   "know whether it holds the lock")

    return findings


def collect_tree_files(root, compdb_path):
    files = set()
    if compdb_path:
        try:
            with open(compdb_path) as f:
                entries = json.load(f)
        except (OSError, ValueError) as e:
            print("concurrency_lint: cannot read %s: %s"
                  % (compdb_path, e), file=sys.stderr)
            sys.exit(2)
        for entry in entries:
            p = entry.get("file", "")
            if not os.path.isabs(p):
                p = os.path.join(entry.get("directory", root), p)
            p = os.path.realpath(p)
            if p.startswith(os.path.realpath(root) + os.sep):
                files.add(p)
    else:
        for pat in ("src/**/*.cpp", "tests/*.cpp", "bench/*.cpp",
                    "examples/*.cpp"):
            files.update(
                os.path.realpath(p)
                for p in glob.glob(os.path.join(root, pat),
                                   recursive=True))
    # Headers never appear in a compilation database; always glob.
    for pat in ("src/**/*.hpp", "bench/*.hpp", "tests/*.hpp"):
        files.update(
            os.path.realpath(p)
            for p in glob.glob(os.path.join(root, pat),
                               recursive=True))
    # The deliberately-bad fixtures and must-not-compile cases are
    # not part of the tree contract.
    skip = (os.path.join("tests", "lint") + os.sep,
            os.path.join("tests", "negative") + os.sep)
    rootreal = os.path.realpath(root)
    out = []
    for p in sorted(files):
        rel = os.path.relpath(p, rootreal)
        if any(rel.startswith(s) for s in skip):
            continue
        out.append((p, rel))
    return out


def run_self_test(fixture_dir):
    fixtures = sorted(glob.glob(os.path.join(fixture_dir, "*.cpp"))
                      + glob.glob(os.path.join(fixture_dir, "*.hpp")))
    if not fixtures:
        print("concurrency_lint: no fixtures in %s" % fixture_dir,
              file=sys.stderr)
        return 2
    failed = False
    for path in fixtures:
        with open(path) as f:
            text = f.read()
        _, _, expects, _, _ = strip_comments_and_strings(text)
        rel = os.path.basename(path)
        if not expects:
            print("FAIL %s: fixture declares no utlb-lint-expect "
                  "rules" % rel)
            failed = True
            continue
        findings = lint_file(path, rel, text, force_src=True)
        got_rules = {f.rule for f in findings}
        missing = [r for r in expects if r not in got_rules]
        if missing:
            print("FAIL %s: expected rule(s) not reported: %s"
                  % (rel, ", ".join(missing)))
            for f in findings:
                print("  got: %s" % f)
            failed = True
        else:
            print("ok   %s: %s (%d finding%s)"
                  % (rel, ", ".join(sorted(set(expects))),
                     len(findings), "s" if len(findings) != 1 else ""))
    return 1 if failed else 0


def main():
    ap = argparse.ArgumentParser(
        description="UTLB concurrency-discipline lint")
    ap.add_argument("files", nargs="*",
                    help="explicit files to lint (default: the tree)")
    ap.add_argument("--root", default=None,
                    help="repository root (default: the script's "
                         "parent directory)")
    ap.add_argument("-p", "--build", default=None,
                    help="build dir containing compile_commands.json")
    ap.add_argument("--compdb", default=None,
                    help="explicit compile_commands.json path")
    ap.add_argument("--force-src", action="store_true",
                    help="apply src/-only rules to every given file")
    ap.add_argument("--self-test", metavar="DIR", default=None,
                    help="verify every fixture in DIR is flagged")
    ap.add_argument("--expect-findings", action="store_true",
                    help="invert: exit 0 iff the given files produce "
                         "at least one finding each")
    args = ap.parse_args()

    if args.self_test:
        sys.exit(run_self_test(args.self_test))

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.realpath(__file__)))

    if args.files:
        targets = [(os.path.realpath(p),
                    os.path.relpath(os.path.realpath(p), root))
                   for p in args.files]
    else:
        compdb = args.compdb
        if args.build and not compdb:
            compdb = os.path.join(args.build, "compile_commands.json")
        if compdb and not os.path.exists(compdb):
            print("concurrency_lint: %s not found (configure with "
                  "CMAKE_EXPORT_COMPILE_COMMANDS=ON); falling back "
                  "to a source-tree walk" % compdb, file=sys.stderr)
            compdb = None
        targets = collect_tree_files(root, compdb)

    all_findings = []
    per_file_findings = {}
    for path, rel in targets:
        try:
            with open(path) as f:
                text = f.read()
        except OSError as e:
            print("concurrency_lint: cannot read %s: %s" % (path, e),
                  file=sys.stderr)
            sys.exit(2)
        found = lint_file(path, rel, text, force_src=args.force_src)
        per_file_findings[rel] = found
        all_findings.extend(found)

    if args.expect_findings:
        ok = True
        for rel, found in per_file_findings.items():
            if found:
                print("ok   %s: %d finding(s)" % (rel, len(found)))
            else:
                print("FAIL %s: expected findings, got none" % rel)
                ok = False
        sys.exit(0 if ok else 1)

    for f in all_findings:
        print(f)
    if all_findings:
        print("\nconcurrency_lint: %d finding(s) in %d file(s)"
              % (len(all_findings),
                 len({f.path for f in all_findings})))
        sys.exit(1)
    print("concurrency_lint: %d file(s) clean" % len(targets))
    sys.exit(0)


if __name__ == "__main__":
    main()
