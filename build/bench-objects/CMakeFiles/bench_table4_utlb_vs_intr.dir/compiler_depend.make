# Empty compiler generated dependencies file for bench_table4_utlb_vs_intr.
# This may be replaced when dependencies are built.
