#include "sim/tenant_fleet.hpp"

#include "sim/log.hpp"

namespace utlb::sim {

TenantFleet::TenantFleet(const FleetConfig &c)
    : cfg(c),
      rng(c.seed),
      zipf(c.tenants * c.buffersPerTenant, c.zipfAlpha,
           c.seed ^ 0x5eed21fULL),
      liveState(c.tenants, 1),
      liveCount(c.tenants)
{
    if (cfg.tenants == 0 || cfg.buffersPerTenant == 0)
        panic("TenantFleet needs at least one tenant and buffer");
    // Scatter the popularity ranks over (tenant, buffer) pairs with
    // a seeded Fisher-Yates shuffle: rank r (hotness order) maps to
    // an arbitrary global buffer id, so skew does not correlate with
    // tenant number.
    std::size_t n = cfg.tenants * cfg.buffersPerTenant;
    rankToBuffer.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        rankToBuffer[i] = static_cast<std::uint32_t>(i);
    Rng shuffle(cfg.seed ^ 0x9e3779b9ULL);
    for (std::size_t i = n - 1; i > 0; --i) {
        std::size_t j = shuffle.below(i + 1);
        std::swap(rankToBuffer[i], rankToBuffer[j]);
    }
}

/**
 * One churn burst: toggle `churnBurst` randomly-chosen tenants. A
 * live pick tears down, a dead pick re-attaches — so a bursty phase
 * naturally mixes teardown storms with recovery. The last live
 * tenant is never torn down (the stream must always be able to make
 * forward progress).
 */
void
TenantFleet::burst()
{
    for (std::size_t k = 0; k < cfg.churnBurst; ++k) {
        std::size_t t = rng.below(cfg.tenants);
        if (liveState[t]) {
            if (liveCount <= 1)
                continue;
            liveState[t] = 0;
            --liveCount;
            pending.push_back({FleetOp::Kind::Detach,
                               static_cast<std::uint32_t>(t), 0});
        } else {
            liveState[t] = 1;
            ++liveCount;
            pending.push_back({FleetOp::Kind::Attach,
                               static_cast<std::uint32_t>(t), 0});
        }
    }
}

FleetOp
TenantFleet::next()
{
    for (;;) {
        if (!pending.empty()) {
            FleetOp op = pending.front();
            pending.pop_front();
            return op;
        }
        if (cfg.churnProbability > 0.0
            && rng.chance(cfg.churnProbability)) {
            burst();
            continue;
        }
        std::uint32_t id = rankToBuffer[zipf.next()];
        std::uint32_t t = id
            / static_cast<std::uint32_t>(cfg.buffersPerTenant);
        std::uint32_t b = id
            % static_cast<std::uint32_t>(cfg.buffersPerTenant);
        if (!liveState[t]) {
            // Demand re-attach: the translate lands right after.
            liveState[t] = 1;
            ++liveCount;
            pending.push_back({FleetOp::Kind::Attach, t, 0});
            pending.push_back({FleetOp::Kind::Translate, t, b});
            continue;
        }
        return {FleetOp::Kind::Translate, t, b};
    }
}

} // namespace utlb::sim
