#include "nic/sram.hpp"

#include <cstring>

#include "sim/log.hpp"

namespace utlb::nic {

using sim::panic;

Sram::Sram(std::size_t capacity)
    : bytes(capacity, 0)
{
}

std::optional<SramAddr>
Sram::alloc(const std::string &name, std::size_t size)
{
    if (size == 0)
        panic("Sram::alloc of zero bytes for region '%s'", name.c_str());
    // Align regions to 8 bytes.
    std::size_t base = (nextFree + 7) & ~std::size_t{7};
    if (base + size > bytes.size())
        return std::nullopt;
    nextFree = base + size;
    regions.push_back(Region{name, static_cast<SramAddr>(base), size});
    ++statAllocs;
    statAllocBytes += size;
    return static_cast<SramAddr>(base);
}

std::optional<SramAddr>
Sram::regionBase(const std::string &name) const
{
    for (const auto &r : regions) {
        if (r.name == name)
            return r.base;
    }
    return std::nullopt;
}

std::size_t
Sram::regionSize(const std::string &name) const
{
    for (const auto &r : regions) {
        if (r.name == name)
            return r.size;
    }
    return 0;
}

void
Sram::checkRange(SramAddr addr, std::size_t len) const
{
    if (addr + len > bytes.size())
        panic("SRAM access [%u, +%zu) beyond capacity %zu",
              addr, len, bytes.size());
}

void
Sram::read(SramAddr addr, std::span<std::uint8_t> out) const
{
    checkRange(addr, out.size());
    ++statReads;
    std::memcpy(out.data(), bytes.data() + addr, out.size());
}

void
Sram::write(SramAddr addr, std::span<const std::uint8_t> in)
{
    checkRange(addr, in.size());
    ++statWrites;
    std::memcpy(bytes.data() + addr, in.data(), in.size());
}

std::uint32_t
Sram::readWord(SramAddr addr) const
{
    checkRange(addr, 4);
    ++statReads;
    std::uint32_t v;
    std::memcpy(&v, bytes.data() + addr, 4);
    return v;
}

void
Sram::writeWord(SramAddr addr, std::uint32_t value)
{
    checkRange(addr, 4);
    ++statWrites;
    std::memcpy(bytes.data() + addr, &value, 4);
}

void
Sram::reset()
{
    std::fill(bytes.begin(), bytes.end(), 0);
    regions.clear();
    nextFree = 0;
}

} // namespace utlb::nic
