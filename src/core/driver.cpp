#include "core/driver.hpp"

#include "check/audit.hpp"
#include "check/check.hpp"
#include "sim/log.hpp"

namespace utlb::core {

using mem::PinStatus;
using mem::ProcId;
using mem::Vpn;
using sim::fatal;
using sim::panic;

namespace {

/** Round up to a power of two (>= 1). */
unsigned
roundPow2(unsigned v)
{
    unsigned p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

/** Initial per-shard directory capacity (power of two). */
constexpr std::size_t kDirInitCap = 16;

} // namespace

UtlbDriver::UtlbDriver(mem::PhysMemory &host_mem,
                       mem::PinFacility &pin_facility,
                       nic::Sram &board_sram, SharedUtlbCache &cache,
                       const HostCosts &costs, unsigned shard_count)
    : hostMem(&host_mem), pins(&pin_facility), sram(&board_sram),
      nicCache(&cache), hostCosts(&costs)
{
    // "The device driver allocates and pins a 'garbage' page" (§4.2).
    auto frame = hostMem->allocFrame(kKernelPid);
    if (!frame)
        fatal("no physical memory for the driver garbage page");
    garbagePfn = *frame;

    unsigned n = roundPow2(shard_count ? shard_count : 1);
    shardMask = n - 1;
    shards.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        auto s = std::make_unique<Shard>(
            statIoctlLatency.makeAccum(),
            statIoctlRejectLatency.makeAccum());
        {
            sim::LockGuard lk(s->mu);
            // Pre-size the directory: registration is rare but the
            // directory is probed on the miss path, and a pre-sized
            // table avoids early rehashes.
            s->dir.resize(kDirInitCap);
            statIoctls.addSource(&s->st.ioctls);
            statIoctlRejects.addSource(&s->st.rejects);
            statPagesPinned.addSource(&s->st.pagesPinned);
            statPagesUnpinned.addSource(&s->st.pagesUnpinned);
            statIoctlLatency.addSource(&s->st.latency);
            statIoctlRejectLatency.addSource(&s->st.rejectLatency);
        }
        shards.push_back(std::move(s));
    }

    if (n > 1) {
        // A single shard lock no longer serializes the shared
        // structures the ioctl bodies touch: the pin facility, the
        // physical allocator (host-table leaf allocation), and the
        // NIC cache's invalidation path all need their own locking.
        pins->enableConcurrent();
        hostMem->enableConcurrent();
        nicCache->enableConcurrent();
    }
}

UtlbDriver::~UtlbDriver()
{
    hostMem->freeFrame(garbagePfn);
}

UtlbDriver::DirEntry *
UtlbDriver::findEntryLocked(Shard &s, ProcId pid)
{
    std::size_t mask = s.dir.size() - 1;
    std::size_t i = dirHash(pid) & mask;
    for (;;) {
        DirEntry &e = s.dir[i];
        if (e.pid == pid)
            return &e;
        if (e.pid == kEmptyPid)
            return nullptr;
        i = (i + 1) & mask;
    }
}

// Quiescent-only probe (class comment): the unlocked accessors read
// the shard directory by the same temporal contract the monolithic
// driver's map reads had. Invisible to the static analysis.
const UtlbDriver::DirEntry *
UtlbDriver::findEntry(ProcId pid) const UTLB_NO_THREAD_SAFETY_ANALYSIS
{
    const Shard &s = shardFor(pid);
    std::size_t mask = s.dir.size() - 1;
    std::size_t i = dirHash(pid) & mask;
    for (;;) {
        const DirEntry &e = s.dir[i];
        if (e.pid == pid)
            return &e;
        if (e.pid == kEmptyPid)
            return nullptr;
        i = (i + 1) & mask;
    }
}

void
UtlbDriver::dirGrow(std::vector<DirEntry> &dir, std::size_t &used,
                    std::size_t live)
{
    std::size_t ncap = dir.size() * 2;
    std::vector<DirEntry> ndir(ncap);
    std::size_t mask = ncap - 1;
    for (DirEntry &e : dir) {
        if (e.pid == kEmptyPid || e.pid == kTombPid)
            continue;
        std::size_t i = dirHash(e.pid) & mask;
        while (ndir[i].pid != kEmptyPid)
            i = (i + 1) & mask;
        ndir[i] = std::move(e);
    }
    dir = std::move(ndir);
    used = live;
}

void
UtlbDriver::dirInsertLocked(Shard &s, DirEntry &&e)
{
    // Rehash at 3/4 load (live + tombstones); tombstones drop out.
    if ((s.dirUsed + 1) * 4 >= s.dir.size() * 3)
        dirGrow(s.dir, s.dirUsed, s.dirLive);
    std::size_t mask = s.dir.size() - 1;
    std::size_t i = dirHash(e.pid) & mask;
    for (;;) {
        DirEntry &slot = s.dir[i];
        if (slot.pid == kEmptyPid) {
            slot = std::move(e);
            ++s.dirUsed;
            ++s.dirLive;
            return;
        }
        if (slot.pid == kTombPid) {
            slot = std::move(e);
            ++s.dirLive;
            return;
        }
        i = (i + 1) & mask;
    }
}

void
UtlbDriver::registerProcess(mem::AddressSpace &space)
{
    sim::LockGuard rg(registryMu);
    ProcId pid = space.pid();
    if (pid >= kTombPid)
        panic("pid %u is reserved (shard-directory sentinel)", pid);
    Shard &s = shardFor(pid);
    sim::LockGuard lk(s.mu);
    if (findEntryLocked(s, pid))
        panic("process %u registered with the driver twice", pid);
    pins->registerSpace(space);
    DirEntry e;
    e.pid = pid;
    e.table = std::make_unique<HostPageTable>(*hostMem, pid, sram);
    e.space = &space;
    statsGrp.adopt(e.table->stats());
    dirInsertLocked(s, std::move(e));
}

void
UtlbDriver::unregisterProcess(ProcId pid)
{
    sim::LockGuard rg(registryMu);
    Shard &s = shardFor(pid);
    sim::LockGuard lk(s.mu);
    nicCache->invalidateProcess(pid);
    if (DirEntry *e = findEntryLocked(s, pid)) {
        statsGrp.disown(e->table->stats());
        e->pid = kTombPid;
        e->table.reset();
        e->nicTable.reset();
        e->space = nullptr;
        --s.dirLive;
    }
    pins->unregisterProcess(pid);
}

bool
UtlbDriver::isRegistered(ProcId pid) const
{
    return findEntry(pid) != nullptr;
}

// Quiescent-only accessor (class comment): hands out a reference that
// outlives any lock scope, so locking here would promise nothing.
HostPageTable &
UtlbDriver::pageTable(ProcId pid)
{
    const DirEntry *e = findEntry(pid);
    if (!e)
        panic("pageTable of unregistered process %u", pid);
    return *e->table;
}

// The lock covers only the directory probe: the table it resolves
// is heap-owned by the entry's unique_ptr, so a concurrent rehash
// moving the entry leaves the table object in place (see header).
HostPageTable *
UtlbDriver::pageTableShared(ProcId pid)
{
    Shard &s = shardFor(pid);
    sim::LockGuard lk(s.mu);
    DirEntry *e = findEntryLocked(s, pid);
    return e ? e->table.get() : nullptr;
}

IoctlResult
UtlbDriver::ioctlPinAndInstall(ProcId pid, Vpn start, std::size_t npages)
{
    return ioctlPinAndInstall(shardOf(pid), pid, start, npages);
}

IoctlResult
UtlbDriver::ioctlPinAndInstall(ShardHandle h, ProcId pid, Vpn start,
                               std::size_t npages)
{
    UTLB_ASSERT(h.sh == &shardFor(pid),
                "shard handle does not serve pid %u", pid);
    Shard &s = *h.sh;
    sim::LockGuard lk(s.mu);
    return recordLocked(s, pinAndInstallLocked(s, pid, start, npages));
}

IoctlResult
UtlbDriver::pinAndInstallLocked(Shard &s, ProcId pid, Vpn start,
                                std::size_t npages)
{
    ++s.st.ioctls;
    IoctlResult res;
    DirEntry *e = findEntryLocked(s, pid);
    if (!e) {
        res.status = PinStatus::UnknownProcess;
        return res;
    }
    if (npages == 0)
        return res;

    PinStatus st = PinStatus::Ok;
    auto frames = pins->pinRange(pid, start, npages, &st);
    if (!frames) {
        res.status = st;
        // A rejected ioctl still costs the syscall entry; charge the
        // one-page pin floor as a conservative model.
        res.cost = hostCosts->pinCost(1);
        return res;
    }

    HostPageTable &table = *e->table;
    for (std::size_t i = 0; i < npages; ++i) {
        if (!table.set(start + i, (*frames)[i])) {
            // Roll back on table-leaf OOM.
            for (std::size_t j = 0; j <= i; ++j) {
                table.clear(start + j);
            }
            for (std::size_t j = 0; j < npages; ++j)
                pins->unpinPage(pid, start + j);
            res.status = PinStatus::OutOfMemory;
            res.cost = hostCosts->pinCost(1);
            return res;
        }
    }

    s.st.pagesPinned += npages;
    res.pagesDone = npages;
    res.cost = hostCosts->pinCost(npages);
    return res;
}

IoctlResult
UtlbDriver::ioctlUnpinAndInvalidate(ProcId pid, Vpn start,
                                    std::size_t npages)
{
    return ioctlUnpinAndInvalidate(shardOf(pid), pid, start, npages);
}

IoctlResult
UtlbDriver::ioctlUnpinAndInvalidate(ShardHandle h, ProcId pid,
                                    Vpn start, std::size_t npages)
{
    UTLB_ASSERT(h.sh == &shardFor(pid),
                "shard handle does not serve pid %u", pid);
    Shard &s = *h.sh;
    sim::LockGuard lk(s.mu);
    return recordLocked(
        s, unpinAndInvalidateLocked(s, pid, start, npages));
}

IoctlResult
UtlbDriver::unpinAndInvalidateLocked(Shard &s, ProcId pid, Vpn start,
                                     std::size_t npages)
{
    ++s.st.ioctls;
    IoctlResult res;
    DirEntry *e = findEntryLocked(s, pid);
    if (!e) {
        res.status = PinStatus::UnknownProcess;
        return res;
    }

    HostPageTable &table = *e->table;
    for (std::size_t i = 0; i < npages; ++i) {
        Vpn vpn = start + i;
        if (pins->unpinPage(pid, vpn) != PinStatus::Ok)
            continue;
        if (!pins->isPinned(pid, vpn)) {
            // Last reference gone: the translation must not survive
            // anywhere the NIC could read it.
            table.clear(vpn);
            nicCache->invalidate(pid, vpn);
        }
        ++res.pagesDone;
    }
    s.st.pagesUnpinned += res.pagesDone;
    res.cost = hostCosts->unpinCost(res.pagesDone ? res.pagesDone : 1);
    return res;
}

NicTranslationTable &
UtlbDriver::createNicTable(ProcId pid, std::size_t entries)
{
    sim::LockGuard rg(registryMu);
    Shard &s = shardFor(pid);
    sim::LockGuard lk(s.mu);
    DirEntry *e = findEntryLocked(s, pid);
    if (!e)
        panic("createNicTable for unregistered process %u", pid);
    if (e->nicTable)
        panic("NIC table for process %u created twice", pid);
    e->nicTable = std::make_unique<NicTranslationTable>(
        *sram, pid, entries, garbagePfn);
    return *e->nicTable;
}

// Quiescent-only accessor, same contract as pageTable().
NicTranslationTable &
UtlbDriver::nicTable(ProcId pid)
{
    const DirEntry *e = findEntry(pid);
    if (!e || !e->nicTable)
        panic("nicTable of process %u does not exist", pid);
    return *e->nicTable;
}

IoctlResult
UtlbDriver::ioctlPinAtIndex(ProcId pid, Vpn vpn, UtlbIndex index)
{
    Shard &s = shardFor(pid);
    sim::LockGuard lk(s.mu);
    return recordLocked(s, pinAtIndexLocked(s, pid, vpn, index));
}

IoctlResult
UtlbDriver::pinAtIndexLocked(Shard &s, ProcId pid, Vpn vpn,
                             UtlbIndex index)
{
    ++s.st.ioctls;
    IoctlResult res;
    DirEntry *e = findEntryLocked(s, pid);
    if (!e) {
        res.status = PinStatus::UnknownProcess;
        return res;
    }

    PinStatus st = PinStatus::Ok;
    auto frame = pins->pinPage(pid, vpn, &st);
    if (!frame) {
        res.status = st;
        res.cost = hostCosts->pinCost(1);
        return res;
    }
    if (!e->nicTable)
        panic("nicTable of process %u does not exist", pid);
    e->nicTable->install(index, *frame);
    ++s.st.pagesPinned;
    res.pagesDone = 1;
    res.cost = hostCosts->pinCost(1);
    return res;
}

IoctlResult
UtlbDriver::ioctlUnpinIndex(ProcId pid, Vpn vpn, UtlbIndex index)
{
    Shard &s = shardFor(pid);
    sim::LockGuard lk(s.mu);
    return recordLocked(s, unpinIndexLocked(s, pid, vpn, index));
}

IoctlResult
UtlbDriver::unpinIndexLocked(Shard &s, ProcId pid, Vpn vpn,
                             UtlbIndex index)
{
    ++s.st.ioctls;
    IoctlResult res;
    DirEntry *e = findEntryLocked(s, pid);
    if (!e) {
        res.status = PinStatus::UnknownProcess;
        return res;
    }
    res.status = pins->unpinPage(pid, vpn);
    if (res.status == PinStatus::Ok) {
        if (!e->nicTable)
            panic("nicTable of process %u does not exist", pid);
        e->nicTable->invalidate(index);
        ++s.st.pagesUnpinned;
        res.pagesDone = 1;
    }
    res.cost = hostCosts->unpinCost(1);
    return res;
}

// Audits run at quiescence only (no worker in an ioctl), so the
// unlocked sweep over the guarded shard directories is safe but
// unprovable here.
void
UtlbDriver::audit(check::AuditReport &report) const
    UTLB_NO_THREAD_SAFETY_ANALYSIS
{
    report.component("driver");
    report.require(hostMem->isAllocated(garbagePfn),
                   "garbage frame %llu is not allocated",
                   static_cast<unsigned long long>(garbagePfn));
    report.require(hostMem->ownerOf(garbagePfn) == kKernelPid,
                   "garbage frame %llu not owned by the kernel",
                   static_cast<unsigned long long>(garbagePfn));
    for (const auto &sp : shards) {
        for (const DirEntry &e : sp->dir) {
            if (e.pid == kEmptyPid || e.pid == kTombPid)
                continue;
            report.require(e.space && e.space->pid() == e.pid,
                           "space registered under pid %u reports "
                           "pid %u",
                           e.pid, e.space ? e.space->pid() : 0);
            report.require(e.table != nullptr,
                           "registered pid %u has no host page table",
                           e.pid);
            report.require(&shardFor(e.pid) == sp.get(),
                           "pid %u filed in the wrong driver shard",
                           e.pid);
            if (e.table)
                e.table->audit(report);
            if (e.nicTable)
                e.nicTable->audit(report);
        }
    }
    pins->audit(report);
}

} // namespace utlb::core
