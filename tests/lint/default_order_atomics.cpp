// Known-bad fixture for scripts/concurrency_lint.py (never compiled).
//
// Atomic operations relying on the seq_cst default. The order must
// be spelled: the default is a silent full fence, and an unstated
// order hides whether the author thought about the protocol at all.
//
// utlb-lint-expect: memory-order

#include <atomic>
#include <cstdint>

std::uint64_t
drain(std::atomic<std::uint64_t> &pending,
      std::atomic<bool> &active)
{
    // BAD: defaulted orders on load/store/fetch_sub.
    std::uint64_t n = pending.load();
    pending.fetch_sub(n);
    active.store(false);
    return n;
}
