/**
 * @file
 * Associative concurrent mode: golden equivalence, multiset
 * equivalence, and seqlock torture.
 *
 * PR 4's concurrency suite (test_concurrency.cpp) pinned the
 * direct-mapped contract; this file covers what the per-set seqlocks
 * add:
 *
 *  1. At assoc ∈ {2, 4} a single concurrent worker must stay
 *     *bit-identical* to the sequential path — results, modeled
 *     costs (including per-way probe depth), stats tree.
 *  2. With many workers on disjoint cache sets, each worker's result
 *     *sequence* (and the aggregate hit/miss/insert counters) must
 *     match a sequential replay of its own workload — only physical
 *     frame numbers may differ, since PhysMemory hands out frames in
 *     interleaving order.
 *  3. Optimistic readers racing writers must never surface a torn
 *     line (a pfn that does not belong to the tag they matched),
 *     must retry at most kSeqlockMaxRetries times per probe, and a
 *     version-guarded LineRef must never serve a reclaimed way.
 *
 * Run under UTLB_SANITIZE=thread to turn the torture tests into race
 * detectors. The BenchGoldenRegression tests re-check the
 * golden_equivalence markers bench_mt publishes for the pin-churn
 * and associative scenarios.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_mt_common.hpp"
#include "check/audit.hpp"
#include "core/driver.hpp"
#include "core/shared_cache.hpp"
#include "core/utlb.hpp"
#include "mem/address_space.hpp"
#include "mem/phys_memory.hpp"
#include "mem/pinning.hpp"
#include "nic/sram.hpp"
#include "nic/timing.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"

namespace {

using namespace utlb::core;
using utlb::check::AuditReport;
using utlb::mem::Pfn;
using utlb::mem::ProcId;
using utlb::mem::Vpn;
using utlb::sim::Rng;

// ---------------------------------------------------------------------
// Golden equivalence: one concurrent worker at assoc > 1
// ---------------------------------------------------------------------

/** The test_concurrency.cpp Harness with a configurable geometry. */
struct AssocHarness {
    utlb::mem::PhysMemory phys;
    utlb::mem::PinFacility pins;
    utlb::nic::Sram sram;
    utlb::nic::NicTimings timings;
    HostCosts costs;
    SharedUtlbCache cache;
    UtlbDriver driver;
    std::unique_ptr<utlb::mem::AddressSpace> space;
    std::unique_ptr<UserUtlb> utlb;
    utlb::sim::StatGroup root{"stack"};

    AssocHarness(const CacheConfig &ccfg, const UtlbConfig &ucfg)
        : phys(4096), sram(1u << 20),
          costs(HostProfile::PentiumIINT),
          cache(ccfg, timings, &sram),
          driver(phys, pins, sram, cache, costs)
    {
        space = std::make_unique<utlb::mem::AddressSpace>(1, phys);
        driver.registerProcess(*space);
        utlb = std::make_unique<UserUtlb>(driver, cache, timings, 1,
                                          ucfg);
        root.adopt(cache.stats());
        root.adopt(driver.stats());
        root.adopt(pins.stats());
        root.adopt(sram.stats());
        root.adopt(utlb->stats());
    }

    std::string
    statsDump()
    {
        utlb->flushShardStats();
        std::ostringstream os;
        root.dumpJson(os);
        return os.str();
    }
};

void
expectSameTranslation(const Translation &a, const Translation &b,
                      const std::string &where)
{
    EXPECT_EQ(a.ok, b.ok) << where;
    EXPECT_EQ(a.pageAddrs, b.pageAddrs) << where;
    EXPECT_EQ(a.hostCost, b.hostCost) << where;
    EXPECT_EQ(a.nicCost, b.nicCost) << where;
    EXPECT_EQ(a.pinCost, b.pinCost) << where;
    EXPECT_EQ(a.unpinCost, b.unpinCost) << where;
    EXPECT_EQ(a.checkMiss, b.checkMiss) << where;
    EXPECT_EQ(a.niMisses, b.niMisses) << where;
    EXPECT_EQ(a.pagesPinned, b.pagesPinned) << where;
    EXPECT_EQ(a.pagesUnpinned, b.pagesUnpinned) << where;
    EXPECT_EQ(a.pinIoctls, b.pinIoctls) << where;
    EXPECT_EQ(a.unpinIoctls, b.unpinIoctls) << where;
    EXPECT_EQ(a.faults, b.faults) << where;
    EXPECT_EQ(a.missPages, b.missPages) << where;
}

/**
 * Replay the same randomized workload through a sequential-mode and
 * a concurrent-mode stack (both single-threaded) at the given
 * associativity; every call and the final stats tree must match
 * exactly. Mirrors test_concurrency.cpp's runGolden, whose workload
 * shape it reuses so both suites sweep the same address patterns.
 */
void
runGoldenAssoc(std::size_t entries, unsigned assoc,
               std::size_t prefetch, std::size_t memlimit,
               bool batched, std::uint64_t seed)
{
    UtlbConfig seqCfg;
    seqCfg.prefetchEntries = prefetch;
    seqCfg.pin.memLimitPages = memlimit;
    seqCfg.pin.seed = seed;
    UtlbConfig mtCfg = seqCfg;
    mtCfg.concurrent = true;

    CacheConfig ccfg{entries, assoc, true};
    AssocHarness seq(ccfg, seqCfg);
    AssocHarness mt(ccfg, mtCfg);
    ASSERT_TRUE(mt.utlb->concurrent());
    ASSERT_TRUE(mt.cache.concurrent());

    Rng rng(seed ^ 0xc0ffeeULL);
    constexpr std::size_t kBufPages = 512;
    for (int call = 0; call < 300; ++call) {
        Vpn startPage;
        std::size_t npages;
        switch (rng.below(4)) {
        case 0:
            startPage = rng.below(8);
            npages = 1;
            break;
        case 1:
            startPage = rng.below(kBufPages);
            npages = 1 + rng.below(8);
            break;
        default:
            startPage = rng.below(kBufPages);
            npages = 1 + rng.below(96);
            break;
        }
        std::uint64_t offset = rng.below(utlb::mem::kPageSize);
        utlb::mem::VirtAddr va =
            startPage * utlb::mem::kPageSize + offset;
        std::size_t nbytes = npages * utlb::mem::kPageSize
            - offset - rng.below(utlb::mem::kPageSize - offset + 1);
        if (nbytes == 0)
            nbytes = 1;

        Translation a = batched ? seq.utlb->translateRange(va, nbytes)
                                : seq.utlb->translate(va, nbytes);
        Translation b = batched ? mt.utlb->translateRange(va, nbytes)
                                : mt.utlb->translate(va, nbytes);
        expectSameTranslation(a, b, "call " + std::to_string(call));
        if (::testing::Test::HasFailure())
            return;
    }
    EXPECT_EQ(seq.statsDump(), mt.statsDump());

    AuditReport report;
    mt.cache.audit(report);
    mt.driver.audit(report);
    mt.utlb->pinManager().audit(report);
    EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(AssocGolden, TwoWayPerPage)
{
    runGoldenAssoc(1024, 2, 1, 0, false, 21);
}

TEST(AssocGolden, TwoWayBatched)
{
    runGoldenAssoc(1024, 2, 1, 0, true, 22);
}

TEST(AssocGolden, TwoWaySmallCacheEvictions)
{
    // 64 entries / 2-way = 32 sets under a 512-page working set: the
    // LRU victim scan in insertMT must pick the same way the
    // sequential path does on every eviction.
    runGoldenAssoc(64, 2, 4, 0, true, 23);
}

TEST(AssocGolden, TwoWayMemLimit)
{
    // The pin budget forces unpins, exercising the concurrent
    // invalidate()'s way scan against the sequential one.
    runGoldenAssoc(256, 2, 4, 64, false, 24);
}

TEST(AssocGolden, FourWayPerPage)
{
    runGoldenAssoc(1024, 4, 1, 0, false, 25);
}

TEST(AssocGolden, FourWayBatched)
{
    runGoldenAssoc(1024, 4, 1, 0, true, 26);
}

TEST(AssocGolden, FourWaySmallCacheEvictions)
{
    runGoldenAssoc(64, 4, 4, 0, true, 27);
}

TEST(AssocGolden, FourWayMemLimitPrefetch)
{
    runGoldenAssoc(256, 4, 8, 64, true, 28);
}

// ---------------------------------------------------------------------
// Multiset equivalence: N workers on disjoint sets vs N sequential
// replays
// ---------------------------------------------------------------------

/** Everything of a Translation except the physical frame numbers,
 *  which depend on thread interleaving (PhysMemory hands frames out
 *  of a shared free list in arrival order). */
struct ResultRecord {
    bool ok;
    std::size_t npages;
    utlb::sim::Tick hostCost, nicCost, pinCost, unpinCost;
    std::uint64_t niMisses, pagesPinned, pagesUnpinned;
    std::vector<unsigned> missPages;

    explicit ResultRecord(const Translation &t)
        : ok(t.ok), npages(t.pageAddrs.size()), hostCost(t.hostCost),
          nicCost(t.nicCost), pinCost(t.pinCost),
          unpinCost(t.unpinCost), niMisses(t.niMisses),
          pagesPinned(t.pagesPinned), pagesUnpinned(t.pagesUnpinned),
          missPages(t.missPages.begin(), t.missPages.end())
    {}

    bool
    operator==(const ResultRecord &o) const
    {
        return ok == o.ok && npages == o.npages
            && hostCost == o.hostCost && nicCost == o.nicCost
            && pinCost == o.pinCost && unpinCost == o.unpinCost
            && niMisses == o.niMisses && pagesPinned == o.pagesPinned
            && pagesUnpinned == o.pagesUnpinned
            && missPages == o.missPages;
    }
};

/** Worker w's call sequence: strided vpns (w, w+T, w+2T, ...) so,
 *  with index offsetting off and T dividing numSets, workers own
 *  interleaved but fully disjoint cache sets. */
std::vector<ResultRecord>
runWorkerOps(UserUtlb &u, unsigned worker, unsigned nworkers,
             std::size_t vpnSlots, int ops, std::size_t memlimit)
{
    std::vector<ResultRecord> out;
    out.reserve(static_cast<std::size_t>(ops));
    Rng rng(0x5eed0 + worker);
    for (int op = 0; op < ops; ++op) {
        std::size_t slot = rng.below(vpnSlots);
        Vpn vpn = worker + slot * nworkers;
        Translation t = u.translate(vpn * utlb::mem::kPageSize,
                                    utlb::mem::kPageSize);
        out.emplace_back(t);
        if (memlimit == 0) {
            EXPECT_TRUE(t.ok) << "worker " << worker << " op " << op;
        }
    }
    return out;
}

/**
 * N concurrent workers over one cache, each confined to its own sets,
 * must each produce the exact result sequence (modulo frame numbers)
 * of a fresh single-worker sequential stack replaying its workload —
 * and the shared cache's aggregate counters must equal the sum of
 * the baselines'.
 */
void
runDisjointMultiset(std::size_t entries, unsigned assoc,
                    unsigned nworkers, std::size_t memlimit)
{
    const std::size_t vpnSlots = 192;
    const int ops = 600;
    // Strided disjointness needs nworkers to divide numSets.
    ASSERT_EQ((entries / assoc) % nworkers, 0u);

    // --- concurrent run ---
    utlb::mem::PhysMemory phys(16384);
    utlb::mem::PinFacility pins;
    utlb::nic::Sram sram(4u << 20);
    utlb::nic::NicTimings timings;
    HostCosts costs(HostProfile::PentiumIINT);
    // Index offsetting off so the strided vpn layout maps onto
    // disjoint sets directly.
    SharedUtlbCache cache(CacheConfig{entries, assoc, false}, timings,
                          &sram);
    UtlbDriver driver(phys, pins, sram, cache, costs);

    std::vector<std::unique_ptr<utlb::mem::AddressSpace>> spaces;
    std::vector<std::unique_ptr<UserUtlb>> views;
    for (unsigned w = 0; w < nworkers; ++w) {
        auto pid = static_cast<ProcId>(w + 1);
        spaces.push_back(
            std::make_unique<utlb::mem::AddressSpace>(pid, phys));
        driver.registerProcess(*spaces.back());
        UtlbConfig ucfg;
        ucfg.concurrent = true;
        ucfg.pin.memLimitPages = memlimit;
        views.push_back(std::make_unique<UserUtlb>(
            driver, cache, timings, pid, ucfg));
    }

    std::vector<std::vector<ResultRecord>> observed(nworkers);
    std::vector<std::thread> workers;
    for (unsigned w = 0; w < nworkers; ++w) {
        workers.emplace_back([&, w] {
            observed[w] = runWorkerOps(*views[w], w, nworkers,
                                       vpnSlots, ops, memlimit);
        });
    }
    for (auto &t : workers)
        t.join();
    for (auto &v : views)
        v->flushShardStats();

    AuditReport report;
    cache.audit(report);
    driver.audit(report);
    ASSERT_TRUE(report.ok()) << report.summary();

    // --- per-worker sequential baselines ---
    std::uint64_t baseHits = 0, baseMisses = 0, baseInserts = 0;
    for (unsigned w = 0; w < nworkers; ++w) {
        utlb::mem::PhysMemory bphys(16384);
        utlb::mem::PinFacility bpins;
        utlb::nic::Sram bsram(4u << 20);
        utlb::nic::NicTimings btimings;
        HostCosts bcosts(HostProfile::PentiumIINT);
        SharedUtlbCache bcache(CacheConfig{entries, assoc, false},
                               btimings, &bsram);
        UtlbDriver bdriver(bphys, bpins, bsram, bcache, bcosts);
        auto pid = static_cast<ProcId>(w + 1);
        utlb::mem::AddressSpace bspace(pid, bphys);
        bdriver.registerProcess(bspace);
        UtlbConfig ucfg;
        ucfg.pin.memLimitPages = memlimit;
        UserUtlb bview(bdriver, bcache, btimings, pid, ucfg);

        std::vector<ResultRecord> expected = runWorkerOps(
            bview, w, nworkers, vpnSlots, ops, memlimit);
        ASSERT_EQ(observed[w].size(), expected.size());
        for (std::size_t i = 0; i < expected.size(); ++i) {
            EXPECT_TRUE(observed[w][i] == expected[i])
                << "worker " << w << " call " << i
                << " diverged from its sequential replay";
            if (::testing::Test::HasFailure())
                return;
        }
        baseHits += bcache.hits();
        baseMisses += bcache.misses();
        baseInserts += bcache.insertions();
    }

    // Aggregate multiset check: disjoint sets mean no cross-worker
    // interference, so the shared cache saw exactly the union of the
    // baselines' traffic.
    EXPECT_EQ(cache.hits(), baseHits);
    EXPECT_EQ(cache.misses(), baseMisses);
    EXPECT_EQ(cache.insertions(), baseInserts);
}

TEST(AssocMultiset, TwoWayTwoWorkers)
{
    runDisjointMultiset(512, 2, 2, 0);
}

TEST(AssocMultiset, TwoWayFourWorkers)
{
    runDisjointMultiset(512, 2, 4, 0);
}

TEST(AssocMultiset, FourWayFourWorkers)
{
    runDisjointMultiset(512, 4, 4, 0);
}

TEST(AssocMultiset, FourWayFourWorkersSmallCache)
{
    // 64 entries / 4-way = 16 sets: every worker keeps its 4 sets
    // evicting, so the MT LRU victim scan runs constantly.
    runDisjointMultiset(64, 4, 4, 0);
}

TEST(AssocMultiset, TwoWayFourWorkersMemLimit)
{
    // Pin churn: each worker unpins and repins under its own budget;
    // unpin-path invalidates stay confined to the worker's sets.
    runDisjointMultiset(512, 2, 4, 96);
}

// ---------------------------------------------------------------------
// Seqlock torture: writers slam hot sets under optimistic readers
// ---------------------------------------------------------------------

/** Each cached frame encodes its tag, so a torn read — a pfn taken
 *  from a different (pid, vpn) than the tag the reader matched — is
 *  detectable at the probe result. */
Pfn
packPfn(ProcId pid, Vpn vpn)
{
    return (static_cast<Pfn>(pid) << 32) | vpn;
}

TEST(SeqlockTorture, HotSetReadersNeverSeeTornLines)
{
    utlb::nic::NicTimings timings;
    // 4 sets x 4 ways, no offsetting: everything lands in a handful
    // of hot sets and every insert evicts.
    SharedUtlbCache cache(CacheConfig{16, 4, false}, timings);
    cache.enableConcurrent();

    constexpr unsigned kWriters = 2;
    constexpr unsigned kReaders = 2;
    constexpr int kWriterOps = 40000;
    constexpr int kReaderOps = 60000;
    constexpr Vpn kVpnSpan = 32;

    std::atomic<std::uint64_t> tornReads{0};
    std::atomic<std::uint64_t> readerHits{0};

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kWriters; ++t) {
        threads.emplace_back([&cache, t] {
            SharedUtlbCache::Shard sh = cache.makeShard();
            Rng rng(0xa0 + t * 17 + 1);
            for (int op = 0; op < kWriterOps; ++op) {
                auto pid = static_cast<ProcId>(1 + rng.below(3));
                Vpn vpn = rng.below(kVpnSpan);
                if (rng.below(8) == 0)
                    cache.invalidate(pid, vpn);
                else
                    cache.insertMT(pid, vpn, packPfn(pid, vpn),
                                   InsertMode::Demand, sh);
            }
            cache.absorbShard(sh);
        });
    }
    for (unsigned t = 0; t < kReaders; ++t) {
        threads.emplace_back([&cache, t, &tornReads, &readerHits] {
            SharedUtlbCache::Shard sh = cache.makeShard();
            Rng rng(0x4ead + t);
            std::uint64_t probes = 0, hits = 0, torn = 0;
            for (int op = 0; op < kReaderOps; ++op) {
                auto pid = static_cast<ProcId>(1 + rng.below(3));
                Vpn vpn = rng.below(kVpnSpan);
                CacheProbe p = cache.lookupMT(pid, vpn, sh);
                ++probes;
                if (p.hit) {
                    ++hits;
                    if (p.pfn != packPfn(pid, vpn))
                        ++torn;
                }
            }
            // Structural retry bound: a probe falls back to the
            // stripe lock after kSeqlockMaxRetries torn snapshots,
            // so the per-worker total cannot exceed probes x bound.
            EXPECT_LE(sh.seqlockRetries(),
                      probes * SharedUtlbCache::kSeqlockMaxRetries);
            readerHits.fetch_add(hits, std::memory_order_relaxed);
            tornReads.fetch_add(torn, std::memory_order_relaxed);
            cache.absorbShard(sh);
        });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(tornReads.load(), 0u)
        << "optimistic readers surfaced pfns from mismatched tags";
    EXPECT_GT(readerHits.load(), 0u);

    // Quiescence: taxonomy balances and every seqlock version is
    // even (no write section left open).
    AuditReport report;
    cache.audit(report);
    EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(SeqlockTorture, StaleRefNeverServesReclaimedWay)
{
    utlb::nic::NicTimings timings;
    // Direct-mapped (the ref-minting path is assoc==1 only): the
    // reader's (pid 1, vpn 0) and the writer's (pid 2, vpn 0) fight
    // over set 0, so refs go stale constantly.
    SharedUtlbCache cache(CacheConfig{8, 1, false}, timings);
    cache.enableConcurrent();

    constexpr int kWriterOps = 30000;
    constexpr int kReaderOps = 30000;

    std::atomic<std::uint64_t> staleServes{0};
    std::atomic<bool> writerDone{false};

    std::thread writer([&cache, &writerDone] {
        SharedUtlbCache::Shard sh = cache.makeShard();
        Rng rng(0xb1ade);
        for (int op = 0; op < kWriterOps; ++op) {
            if (rng.below(4) == 0)
                cache.invalidate(1, 0);
            else
                cache.insertMT(2, 0, packPfn(2, 0),
                               InsertMode::Demand, sh);
        }
        cache.absorbShard(sh);
        writerDone.store(true, std::memory_order_relaxed);
    });

    std::thread reader([&cache, &staleServes] {
        SharedUtlbCache::Shard sh = cache.makeShard();
        std::vector<Pfn> pfns(1);
        std::uint64_t stale = 0;
        for (int op = 0; op < kReaderOps; ++op) {
            // (Re)install our line and mint a version-carrying ref.
            cache.insertMT(1, 0, packPfn(1, 0), InsertMode::Demand,
                           sh);
            SharedUtlbCache::LineRef ref;
            RunHits run =
                cache.lookupRunMT(1, 0, 1, pfns.data(), &ref, sh);
            if (run.hits == 0)
                continue;  // writer got between install and probe
            for (int spin = 0; spin < 4; ++spin) {
                CacheProbe p;
                if (!cache.hitViaRefMT(ref, 1, 0, p, sh))
                    break;  // version guard: ref went stale
                if (p.pfn != packPfn(1, 0))
                    ++stale;
            }
        }
        staleServes.fetch_add(stale, std::memory_order_relaxed);
        cache.absorbShard(sh);
    });

    writer.join();
    reader.join();
    EXPECT_TRUE(writerDone.load());
    EXPECT_EQ(staleServes.load(), 0u)
        << "a version-guarded ref returned a reclaimed way";

    AuditReport report;
    cache.audit(report);
    EXPECT_TRUE(report.ok()) << report.summary();
}

// ---------------------------------------------------------------------
// Bench scenario regression: the golden_equivalence markers hold
// ---------------------------------------------------------------------

TEST(BenchGoldenRegression, PinChurnScenarioHolds)
{
    EXPECT_EQ(bench::mtGoldenDivergence(bench::kMtPinChurn), "");
}

TEST(BenchGoldenRegression, WarmAssoc4ScenarioHolds)
{
    EXPECT_EQ(bench::mtGoldenDivergence(bench::kMtWarmAssoc4), "");
}

} // namespace
