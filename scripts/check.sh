#!/bin/sh
# Full correctness sweep: sanitizer build + tests, a self-checking
# simulator run, clang-tidy, the concurrency-discipline lint, the
# clang thread-safety build, and a format lint of changed files.
# Stages whose tools are missing are skipped with a notice; every
# stage that runs must pass. Usage: scripts/check.sh [build-dir]
set -e
cd "$(dirname "$0")/.."
BUILD="${1:-build-check}"

step() { printf '\n=== %s ===\n' "$*"; }
skip() { printf 'SKIP: %s\n' "$*"; }

# --- Stage 1: build under ASan+UBSan at full check level ------------
step "sanitizer build (address,undefined; UTLB_CHECK_LEVEL=full)"
cmake -B "$BUILD" -G Ninja \
    -DUTLB_SANITIZE=address,undefined \
    -DUTLB_CHECK_LEVEL=full \
    -DUTLB_WERROR=ON > /dev/null
cmake --build "$BUILD"

# --- Stage 2: the whole test suite under the sanitizers -------------
step "ctest under sanitizers"
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

# --- Stage 3: a self-auditing simulator run -------------------------
# Periodic invariant sweeps over the live translation stack; any
# violation aborts (and the sanitizers watch the whole replay).
step "tlbsim --audit-every sweep"
"$BUILD"/src/tlbsim/tlbsim water --entries 1024 --memlimit 512 \
    --audit-every 500 > /dev/null
"$BUILD"/src/tlbsim/tlbsim --synthetic hotcold --entries 256 \
    --memlimit 128 --audit-every 250 > /dev/null
echo "audit sweeps clean"

# --- Stage 4: clang-tidy --------------------------------------------
# Covers everything with compile commands: src, the test suite, and
# the benchmarks. (tests/lint and tests/negative are never built, so
# they have no compile commands and stay out of scope by design.)
step "clang-tidy"
if command -v clang-tidy > /dev/null 2>&1; then
    if command -v run-clang-tidy > /dev/null 2>&1; then
        run-clang-tidy -p "$BUILD" -quiet "(src|tests|bench)/.*\.cpp$"
    else
        find src tests bench -name '*.cpp' \
            -not -path 'tests/lint/*' \
            -not -path 'tests/negative/*' -print0 \
            | xargs -0 clang-tidy -p "$BUILD" --quiet
    fi
else
    skip "clang-tidy not installed"
fi

# --- Stage 5: concurrency-discipline lint ---------------------------
# Seqlock read-section purity, *MT shard discipline, memory-order
# allowlist, scoped guards (docs/checking.md). Fixtures first (the
# lint must still catch every known-bad snippet), then the tree.
step "concurrency lint"
if command -v python3 > /dev/null 2>&1; then
    python3 scripts/concurrency_lint.py --self-test tests/lint
    python3 scripts/concurrency_lint.py \
        --compdb "$BUILD/compile_commands.json"
else
    skip "python3 not installed"
fi

# --- Stage 6: clang thread-safety analysis --------------------------
# A clang build with -Werror=thread-safety-analysis over the whole
# tree, plus the negative-compile suite (annotated cases that MUST
# fail, and a positive control that must pass).
step "clang thread-safety analysis"
CLANGXX=""
for c in clang++ clang++-20 clang++-19 clang++-18 clang++-17 \
         clang++-16 clang++-15 clang++-14; do
    if command -v "$c" > /dev/null 2>&1; then
        CLANGXX="$c"
        break
    fi
done
if [ -n "$CLANGXX" ]; then
    cmake -B "$BUILD-tsa" -G Ninja \
        -DCMAKE_CXX_COMPILER="$CLANGXX" \
        -DUTLB_THREAD_SAFETY=ON > /dev/null
    cmake --build "$BUILD-tsa"
    if CLANG="$CLANGXX" scripts/negative_compile.sh; then
        :
    else
        rc=$?
        if [ "$rc" -eq 77 ]; then
            skip "negative-compile suite skipped itself"
        else
            exit "$rc"
        fi
    fi
else
    skip "no clang++ (the analysis only exists in clang;" \
         "CI's static-analysis job runs it)"
fi

# --- Stage 7: format lint of changed files --------------------------
# Only files touched relative to HEAD (plus untracked sources) are
# checked; the tree is never mass-reformatted.
step "clang-format lint (changed files only)"
if command -v clang-format > /dev/null 2>&1; then
    CHANGED=$( { git diff --name-only HEAD; \
                 git ls-files --others --exclude-standard; } \
               | grep -E '\.(cpp|hpp)$' | sort -u || true)
    if [ -z "$CHANGED" ]; then
        echo "no changed C++ files"
    else
        echo "$CHANGED" | xargs clang-format --dry-run -Werror
    fi
else
    skip "clang-format not installed"
fi

printf '\nAll checks passed.\n'
