/**
 * @file
 * A memory registration cache — the UTLB idea as it survives today.
 *
 * UTLB's demand-driven pinning with a user-level residency check is
 * the direct ancestor of the registration caches in modern RDMA
 * stacks (UCX's rcache, MPI pinning caches): register (pin +
 * translate) a buffer the first time it is used, remember the
 * registration keyed by address range, and reuse it for later
 * transfers without kernel involvement.
 *
 * The modern twist this class models — and the UTLB comparison it
 * enables — is *region granularity*: registrations cover arbitrary
 * byte ranges (merged when they abut or overlap), are looked up by
 * interval, and are evicted whole. UTLB's page-granular bitmap pins
 * and evicts single pages; an rcache trades finer eviction for a
 * cheaper hit check and batched (de)registration.
 *
 * Costs: a hit is one interval-map lookup (modeled ~0.3 us, the
 * published overhead of UCX-class rcache lookups scaled to the
 * paper's era host); misses pay the same driver ioctl batch curve
 * as UTLB; evictions deregister an entire region with one batch
 * unpin.
 */

#ifndef UTLB_CORE_REGISTRATION_CACHE_HPP
#define UTLB_CORE_REGISTRATION_CACHE_HPP

#include <cstdint>
#include <list>
#include <map>
#include <vector>

#include "core/driver.hpp"
#include "mem/page.hpp"
#include "sim/types.hpp"

namespace utlb::core {

/** Registration-cache configuration. */
struct RegCacheConfig {
    /**
     * Maximum total registered bytes (0 = unlimited); the analogue
     * of the UTLB pin budget.
     */
    std::size_t maxBytes = 0;
};

/** Outcome of one acquire(). */
struct RegResult {
    bool ok = true;
    bool hit = false;            //!< fully covered by a registration
    sim::Tick cost = 0;          //!< modeled host time
    std::size_t pagesPinned = 0;
    std::size_t pagesUnpinned = 0;
    std::size_t regionsEvicted = 0;
};

/**
 * Interval-granular registration cache over the UTLB driver.
 *
 * Regions are page-aligned, non-overlapping, and coalesced with
 * neighbours on creation. Replacement is region-LRU; the region
 * containing the current request is never evicted.
 */
class RegistrationCache
{
  public:
    RegistrationCache(UtlbDriver &drv, mem::ProcId pid,
                      const RegCacheConfig &cfg);

    ~RegistrationCache();

    RegistrationCache(const RegistrationCache &) = delete;
    RegistrationCache &operator=(const RegistrationCache &) = delete;

    mem::ProcId pid() const { return procId; }

    /**
     * Ensure [va, va+len) is registered (pinned with translations
     * installed), registering and evicting as needed.
     */
    RegResult acquire(mem::VirtAddr va, std::size_t len);

    /** True if the range is fully covered by registrations. */
    bool covered(mem::VirtAddr va, std::size_t len) const;

    /** Number of live regions. */
    std::size_t regions() const { return lru.size(); }

    /** Total registered bytes. */
    std::size_t registeredBytes() const { return totalBytes; }

    /** @name Lifetime counters @{ */
    std::uint64_t hits() const { return numHits; }
    std::uint64_t misses() const { return numMisses; }
    std::uint64_t merges() const { return numMerges; }
    std::uint64_t evictions() const { return numEvictions; }
    /** @} */

  private:
    struct Region {
        mem::Vpn start;
        mem::Vpn end;  //!< exclusive
        std::list<mem::Vpn>::iterator lruPos;
    };

    /** Modeled cost of one interval-map lookup. */
    static sim::Tick lookupCost() { return sim::nsToTicks(300.0); }

    /** Evict the LRU region not overlapping [keep_lo, keep_hi). */
    bool evictOne(mem::Vpn keep_lo, mem::Vpn keep_hi,
                  RegResult &res);

    /** Deregister (unpin) a region by its map iterator. */
    void dropRegion(std::map<mem::Vpn, Region>::iterator it,
                    RegResult &res);

    UtlbDriver *driver;
    mem::ProcId procId;
    RegCacheConfig config;

    /** Regions keyed by start vpn (non-overlapping, sorted). */
    std::map<mem::Vpn, Region> map;
    /** LRU of region start vpns (front = coldest). */
    std::list<mem::Vpn> lru;
    std::size_t totalBytes = 0;

    std::uint64_t numHits = 0;
    std::uint64_t numMisses = 0;
    std::uint64_t numMerges = 0;
    std::uint64_t numEvictions = 0;
};

} // namespace utlb::core

#endif // UTLB_CORE_REGISTRATION_CACHE_HPP
