/**
 * @file
 * Table 1: UTLB overhead on the host processor — the user-level
 * bitmap check (min/max over bit positions), page pinning, and page
 * unpinning, for 1-32 page batches. Measured by driving the real
 * bit vector and driver ioctls; the cost model is calibrated to the
 * paper's 300 MHz Pentium-II NT measurements, so these rows should
 * reproduce Table 1 exactly.
 *
 * Also prints the §5 headline: the fastest translation path
 * (pinned + NIC cache hit) at 0.9 us total.
 */

#include <iostream>
#include <vector>

#include "core/bitvector.hpp"
#include "core/cost_model.hpp"
#include "core/driver.hpp"
#include "core/shared_cache.hpp"
#include "core/utlb.hpp"
#include "mem/address_space.hpp"
#include "mem/phys_memory.hpp"
#include "mem/pinning.hpp"
#include "nic/sram.hpp"
#include "nic/timing.hpp"
#include "sim/table.hpp"

int
main()
{
    using namespace utlb;
    using sim::TextTable;
    using sim::ticksToUs;

    const std::vector<std::size_t> batches{1, 2, 4, 8, 16, 32};

    mem::PhysMemory phys_mem(4096);
    mem::PinFacility pins;
    nic::Sram sram;
    nic::NicTimings timings;
    core::HostCosts costs;
    core::SharedUtlbCache cache({8192, 1, true}, timings, &sram);
    core::UtlbDriver driver(phys_mem, pins, sram, cache, costs);
    mem::AddressSpace space(1, phys_mem);
    driver.registerProcess(space);

    TextTable t("Table 1: UTLB overhead on the host processor (us)");
    std::vector<std::string> header{"num pages"};
    for (auto n : batches)
        header.push_back(TextTable::num(std::uint64_t{n}));
    t.setHeader(header);

    // check min: the first page of the range is unpinned, so the
    // bitmap scan stops immediately.
    core::PinBitVector empty_bits;
    std::vector<std::string> row{"check min"};
    for (auto n : batches) {
        auto res = empty_bits.checkRange(0, n);
        row.push_back(TextTable::num(ticksToUs(res.cost), 1));
    }
    t.addRow(row);

    // check max: the whole range is pinned, forcing a full scan.
    core::PinBitVector full_bits;
    for (mem::Vpn v = 0; v < 32; ++v)
        full_bits.set(v);
    row = {"check max"};
    for (auto n : batches) {
        auto res = full_bits.checkRange(0, n);
        row.push_back(TextTable::num(ticksToUs(res.cost), 1));
    }
    t.addRow(row);

    // pin / unpin through the real ioctl path.
    row = {"pin"};
    std::vector<std::string> unpin_row{"unpin"};
    mem::Vpn next = 100;
    for (auto n : batches) {
        auto pin = driver.ioctlPinAndInstall(1, next, n);
        row.push_back(TextTable::num(ticksToUs(pin.cost), 0));
        auto unpin = driver.ioctlUnpinAndInvalidate(1, next, n);
        unpin_row.push_back(TextTable::num(ticksToUs(unpin.cost), 0));
        next += 64;
    }
    t.addRow(row);
    t.addRow(unpin_row);
    t.print(std::cout);

    // §5 headline: hot-path translation cost.
    core::UserUtlb utlb(driver, cache, timings, 1, {});
    utlb.translate(mem::addrOf(500), 8);           // warm up
    auto tr = utlb.translate(mem::addrOf(500), 8); // hot path
    std::cout << "\nFastest translation path (pinned + NIC cache "
                 "hit): host "
              << TextTable::num(ticksToUs(tr.hostCost), 2)
              << " us + NIC "
              << TextTable::num(ticksToUs(tr.nicCost), 2)
              << " us = "
              << TextTable::num(ticksToUs(tr.hostCost + tr.nicCost), 2)
              << " us  (paper: 0.4 + 0.5 = 0.9 us)\n";
    return 0;
}
