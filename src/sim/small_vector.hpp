/**
 * @file
 * Small-buffer vector for per-call translation results.
 *
 * Translation objects are built and destroyed once per translate()
 * call, and in the dominant case (single-page lookups, short miss
 * lists) their element counts are tiny. std::vector puts even a
 * one-element pageAddrs on the heap, and the malloc/free pair is a
 * measurable slice of the ~60 ns hit path. SmallVector keeps up to N
 * elements inline in the object and only falls back to the heap
 * beyond that, so the hot single-page path allocates nothing.
 *
 * Deliberately minimal: exactly the std::vector surface the
 * translation paths use (push_back / resize / reserve / size /
 * data / indexing / iteration / equality), restricted to trivially
 * copyable element types so growth and copies are memcpy and the
 * destructor never runs element destructors.
 */

#ifndef UTLB_SIM_SMALL_VECTOR_HPP
#define UTLB_SIM_SMALL_VECTOR_HPP

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <type_traits>

namespace utlb::sim {

template <class T, std::size_t N>
class SmallVector
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "SmallVector supports trivially copyable types only");
    static_assert(N > 0, "inline capacity must be nonzero");

  public:
    using value_type = T;
    using iterator = T *;
    using const_iterator = const T *;

    SmallVector() = default;

    ~SmallVector() { delete[] heapBuf; }

    SmallVector(const SmallVector &other) { assignFrom(other); }

    SmallVector(SmallVector &&other) noexcept { moveFrom(other); }

    SmallVector &operator=(const SmallVector &other)
    {
        if (this != &other) {
            sz = 0;
            assignFrom(other);
        }
        return *this;
    }

    SmallVector &operator=(SmallVector &&other) noexcept
    {
        if (this != &other) {
            delete[] heapBuf;
            heapBuf = nullptr;
            cap = N;
            moveFrom(other);
        }
        return *this;
    }

    std::size_t size() const { return sz; }
    bool empty() const { return sz == 0; }

    T *data() { return heapBuf ? heapBuf : inlineBuf; }
    const T *data() const { return heapBuf ? heapBuf : inlineBuf; }

    T &operator[](std::size_t i) { return data()[i]; }
    const T &operator[](std::size_t i) const { return data()[i]; }

    iterator begin() { return data(); }
    iterator end() { return data() + sz; }
    const_iterator begin() const { return data(); }
    const_iterator end() const { return data() + sz; }

    void clear() { sz = 0; }

    void reserve(std::size_t n)
    {
        if (n > cap)
            grow(n);
    }

    /** Like std::vector::resize: new elements are value-initialized. */
    void resize(std::size_t n)
    {
        reserve(n);
        if (n > sz)
            std::memset(static_cast<void *>(data() + sz), 0,
                        (n - sz) * sizeof(T));
        sz = n;
    }

    // By value on purpose: T is small and trivially copyable, and a
    // value parameter cannot alias storage that grow() frees.
    void push_back(T v)
    {
        if (sz == cap)
            grow(sz + 1);
        data()[sz++] = v;
    }

    bool operator==(const SmallVector &other) const
    {
        return sz == other.sz
            && std::equal(begin(), end(), other.begin());
    }

  private:
    void grow(std::size_t need)
    {
        std::size_t newCap = std::max(need, cap * 2);
        T *buf = new T[newCap];
        std::memcpy(static_cast<void *>(buf), data(), sz * sizeof(T));
        delete[] heapBuf;
        heapBuf = buf;
        cap = newCap;
    }

    void assignFrom(const SmallVector &other)
    {
        reserve(other.sz);
        std::memcpy(static_cast<void *>(data()), other.data(),
                    other.sz * sizeof(T));
        sz = other.sz;
    }

    /** Steal the heap buffer, or memcpy the inline one. Leaves
     *  @p other empty either way. */
    void moveFrom(SmallVector &other) noexcept
    {
        if (other.heapBuf) {
            heapBuf = other.heapBuf;
            cap = other.cap;
            other.heapBuf = nullptr;
            other.cap = N;
        } else {
            std::memcpy(static_cast<void *>(inlineBuf),
                        other.inlineBuf, other.sz * sizeof(T));
        }
        sz = other.sz;
        other.sz = 0;
    }

    T inlineBuf[N];
    T *heapBuf = nullptr;
    std::size_t sz = 0;
    std::size_t cap = N;
};

} // namespace utlb::sim

#endif // UTLB_SIM_SMALL_VECTOR_HPP
