/**
 * @file
 * A miniature home-based shared-virtual-memory protocol on VMMC —
 * the application domain the paper's traces come from (§6: SPLASH-2
 * under a home-based release-consistency SVM protocol).
 *
 * One home node owns the master copy of a shared array; two worker
 * processes on another node repeatedly:
 *
 *   1. *fault in* the pages of their assigned chunk with a VMMC
 *      remote fetch from the home's exported region,
 *   2. compute on the local copy (increment every byte),
 *   3. *write back* the chunk with a remote store into the home
 *      region at release time.
 *
 * Every fetch and store goes through the UTLB on both sides: worker
 * buffers are pinned on demand the first time a chunk is used and
 * stay pinned, so later iterations run the no-syscall fast path.
 * The example prints per-iteration times (watch the first iteration
 * pay the pinning bill), UTLB counters, and verifies the final
 * array contents.
 *
 * Run: ./build/examples/svm_worksharing
 */

#include <iostream>
#include <vector>

#include "sim/table.hpp"
#include "vmmc/system.hpp"

namespace {

using namespace utlb;
using mem::addrOf;
using mem::kPageSize;
using sim::TextTable;
using sim::Tick;
using sim::ticksToUs;

constexpr std::size_t kSharedPages = 64;   //!< shared array size
constexpr std::size_t kChunkPages = 8;     //!< pages per fault batch
constexpr int kIterations = 4;

} // namespace

int
main()
{
    vmmc::ClusterConfig cfg;
    cfg.nodes = 2;
    cfg.node.memoryFrames = 8192;
    vmmc::Cluster cluster(cfg);
    auto &home_node = cluster.node(0);
    auto &worker_node = cluster.node(1);

    constexpr mem::ProcId kHome = 10;
    constexpr mem::ProcId kWorkerA = 20, kWorkerB = 21;
    home_node.createProcess(kHome);
    worker_node.createProcess(kWorkerA);
    worker_node.createProcess(kWorkerB);

    // The home's master copy, initialized and exported.
    mem::VirtAddr home_va = addrOf(1000);
    std::vector<std::uint8_t> init(kSharedPages * kPageSize, 0);
    home_node.space(kHome).writeBytes(home_va, init);
    auto exp = home_node.exportBuffer(kHome, home_va,
                                      kSharedPages * kPageSize);
    if (!exp) {
        std::cerr << "export failed\n";
        return 1;
    }

    auto slot_a = worker_node.importBuffer(kWorkerA, 0, *exp);
    auto slot_b = worker_node.importBuffer(kWorkerB, 0, *exp);

    // Each worker owns half of the shared array.
    struct Worker {
        mem::ProcId pid;
        vmmc::ImportSlot slot;
        std::size_t firstPage;
        std::size_t pages;
        mem::VirtAddr cacheVa;  //!< local SVM page cache
    };
    std::vector<Worker> workers{
        {kWorkerA, slot_a, 0, kSharedPages / 2, addrOf(5000)},
        {kWorkerB, slot_b, kSharedPages / 2, kSharedPages / 2,
         addrOf(9000)},
    };

    TextTable t("Mini home-based SVM: per-iteration time (us)");
    t.setHeader({"iteration", "fault-in", "compute+writeback",
                 "worker pins so far"});

    for (int iter = 0; iter < kIterations; ++iter) {
        // Fault-in phase: each worker pulls its chunks from home.
        Tick t0 = cluster.clock().now();
        for (const auto &w : workers) {
            for (std::size_t c = 0; c < w.pages; c += kChunkPages) {
                std::uint64_t off =
                    (w.firstPage + c) * kPageSize;
                worker_node.fetch(w.pid, w.cacheVa + c * kPageSize,
                                  kChunkPages * kPageSize, w.slot,
                                  off);
                cluster.run();
            }
        }
        Tick fault_time = cluster.clock().now() - t0;

        // Compute: bump every byte of the local copies, then write
        // back at "release".
        Tick t1 = cluster.clock().now();
        for (const auto &w : workers) {
            std::vector<std::uint8_t> buf(w.pages * kPageSize);
            worker_node.space(w.pid).readBytes(w.cacheVa, buf);
            for (auto &b : buf)
                ++b;
            worker_node.space(w.pid).writeBytes(w.cacheVa, buf);
            for (std::size_t c = 0; c < w.pages; c += kChunkPages) {
                worker_node.send(w.pid, w.cacheVa + c * kPageSize,
                                 kChunkPages * kPageSize, w.slot,
                                 (w.firstPage + c) * kPageSize);
                cluster.run();
            }
        }
        Tick write_time = cluster.clock().now() - t1;

        std::size_t pins =
            worker_node.utlb(kWorkerA).pinManager().pinnedPages()
            + worker_node.utlb(kWorkerB).pinManager().pinnedPages();
        t.addRow({TextTable::num(std::uint64_t(iter)),
                  TextTable::num(ticksToUs(fault_time), 0),
                  TextTable::num(ticksToUs(write_time), 0),
                  TextTable::num(std::uint64_t{pins})});
    }
    t.print(std::cout);

    // Verify: every byte of the master copy was incremented
    // kIterations times.
    std::vector<std::uint8_t> final_copy(kSharedPages * kPageSize);
    home_node.space(kHome).readBytes(home_va, final_copy);
    std::size_t wrong = 0;
    for (auto b : final_copy)
        wrong += (b != kIterations);
    std::cout << "\nverification: "
              << (wrong == 0 ? "all bytes correct"
                             : std::to_string(wrong) + " wrong bytes")
              << " after " << kIterations << " iterations\n";

    auto &cache = worker_node.nicCache();
    std::cout << "worker-node NIC cache: " << cache.hits()
              << " hits / " << cache.misses()
              << " misses; home-node cache: "
              << home_node.nicCache().hits() << " / "
              << home_node.nicCache().misses() << "\n"
              << "Note the pin count stops growing after iteration "
                 "0: the steady state runs entirely on the UTLB "
                 "fast path.\n";
    return wrong == 0 ? 0 : 1;
}
