// Known-bad fixture for scripts/concurrency_lint.py (never compiled).
//
// Two ways the packed-probe refactor can leak plain loads into the
// optimistic path. First, a probe helper marked as running inside
// callers' seqlock read sections (utlb-lint: seqlock-read-helper)
// reads the packed cold fields directly and refreshes a recency
// stamp -- data races for a helper the seqlock no longer protects
// with a version check at each access. Second, a reader calls the
// plain-load probe flavor (probePacked<DirectLoads>, whose SIMD
// kernels issue non-atomic loads) between readBegin() and
// readRetry() instead of the RelaxedLoads flavor.
//
// utlb-lint-expect: seqlock-read-section

#include <cstdint>

struct Cold {
    unsigned pid;
    std::uint64_t vpn;
    std::uint64_t pfn;
    std::uint64_t lastUse;
};

struct SeqCount {
    std::uint32_t readBegin() const;
    bool readRetry(std::uint32_t) const;
};

struct DirectLoads {};
struct RelaxedLoads {};

template <class Loads>
unsigned probePacked(std::size_t set, unsigned pid, std::uint64_t vpn,
                     std::uint64_t key, unsigned &way,
                     std::uint64_t &pfn);

std::uint64_t loadRelaxed(const std::uint64_t &);

bool
helperReadsPlain(Cold &c, unsigned pid, std::uint64_t vpn,
                 std::uint64_t &pfn, std::uint64_t stamp)
{
    // utlb-lint: seqlock-read-helper
    // BAD: plain reads of seqlock-paired fields in a helper that
    // runs inside callers' read sections.
    if (c.pid != pid || c.vpn != vpn)
        return false;
    pfn = c.pfn;
    // BAD: a member write -- an optimistic reader mutating state.
    c.lastUse = stamp;
    return true;
}

std::uint64_t
probeWithPlainLoads(SeqCount &seq, std::size_t set, unsigned pid,
                    std::uint64_t vpn, std::uint64_t key)
{
    for (;;) {
        std::uint32_t v = seq.readBegin();
        unsigned way = 0;
        std::uint64_t pfn = 0;
        // BAD: the plain-load probe flavor inside the read section;
        // its SIMD kernels issue non-atomic loads.
        probePacked<DirectLoads>(set, pid, vpn, key, way, pfn);
        if (!seq.readRetry(v))
            return pfn;
    }
}
