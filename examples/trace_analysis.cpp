/**
 * @file
 * Trace analysis CLI: the paper's §6 methodology as a tool.
 *
 * Generates (or loads) a communication trace, replays it through
 * both address-translation mechanisms across a cache-size sweep,
 * and prints the full comparison. Traces can be exported for
 * inspection and re-analysis.
 *
 * Usage:
 *     trace_analysis [workload] [--entries N] [--assoc N]
 *                    [--no-offset] [--prefetch N] [--memlimit PAGES]
 *                    [--policy lru|mru|lfu|mfu|fifo|random]
 *                    [--prepin N] [--save FILE] [--load FILE]
 *
 * Examples:
 *     trace_analysis radix --entries 4096 --prefetch 8
 *     trace_analysis fft --memlimit 1024 --policy mru
 *     trace_analysis water --save water.trace
 *     trace_analysis --load water.trace --entries 2048
 */

#include <cstring>
#include <iostream>
#include <string>

#include "sim/log.hpp"
#include "sim/table.hpp"
#include "tlbsim/simulator.hpp"
#include "trace/trace_io.hpp"
#include "trace/workloads.hpp"

namespace {

using namespace utlb;

void
usage()
{
    std::cout <<
        "usage: trace_analysis [workload] [options]\n"
        "  workloads: fft lu barnes radix raytrace volrend water\n"
        "  --entries N     cache entries (default: sweep 1K..16K)\n"
        "  --assoc N       associativity 1/2/4 (default 1)\n"
        "  --no-offset     disable process index offsetting\n"
        "  --prefetch N    entries fetched per miss (default 1)\n"
        "  --memlimit P    per-process pin budget in pages\n"
        "  --policy NAME   lru|mru|lfu|mfu|fifo|random\n"
        "  --prepin N      sequential pre-pin batch (default 1)\n"
        "  --save FILE     write the generated trace and exit\n"
        "  --load FILE     analyze a saved trace\n"
        "  --synthetic K   micro-workload instead: uniform|stream|"
        "hotcold\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "radix";
    std::string synthetic;
    std::string save_path, load_path;
    tlbsim::SimConfig cfg;
    std::size_t fixed_entries = 0;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage();
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--entries") {
            fixed_entries = std::stoul(next());
        } else if (arg == "--assoc") {
            cfg.cache.assoc = static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--no-offset") {
            cfg.cache.indexOffsetting = false;
        } else if (arg == "--prefetch") {
            cfg.prefetchEntries = std::stoul(next());
        } else if (arg == "--memlimit") {
            cfg.memLimitPages = std::stoul(next());
        } else if (arg == "--policy") {
            cfg.policy = core::policyFromName(next());
        } else if (arg == "--prepin") {
            cfg.prepinPages = std::stoul(next());
        } else if (arg == "--save") {
            save_path = next();
        } else if (arg == "--load") {
            load_path = next();
        } else if (arg == "--synthetic") {
            synthetic = next();
        } else if (!arg.empty() && arg[0] != '-') {
            workload = arg;
        } else {
            usage();
            return 1;
        }
    }

    trace::Trace tr;
    if (!load_path.empty()) {
        auto loaded = trace::loadTrace(load_path);
        if (!loaded)
            sim::fatal("cannot load trace from %s", load_path.c_str());
        tr = std::move(*loaded);
        std::cout << "loaded " << tr.size() << " records from "
                  << load_path << "\n\n";
    } else if (!synthetic.empty()) {
        tr = trace::generateSynthetic(synthetic,
                                      trace::SyntheticSpec{});
    } else {
        tr = trace::generateTrace(workload);
    }

    if (!save_path.empty()) {
        if (!trace::saveTrace(tr, save_path))
            sim::fatal("cannot write %s", save_path.c_str());
        std::cout << "wrote " << tr.size() << " records to "
                  << save_path << "\n";
        return 0;
    }

    auto shape = trace::measure(tr);
    std::cout << "trace: " << shape.lookups << " lookups, "
              << shape.distinctPages << " distinct pages, "
              << shape.processes << " processes, "
              << sim::TextTable::num(shape.pagesPerLookup, 2)
              << " pages/lookup\n\n";

    std::vector<std::size_t> sweep{1024, 2048, 4096, 8192, 16384};
    if (fixed_entries)
        sweep = {fixed_entries};

    sim::TextTable t("UTLB vs interrupt-based translation");
    t.setHeader({"entries", "mech", "checkMiss/lk", "niMiss/lk",
                 "unpins/lk", "missRate", "avg cost (us)",
                 "compulsory", "capacity", "conflict"});
    for (std::size_t entries : sweep) {
        auto c = cfg;
        c.cache.entries = entries;
        auto u = tlbsim::simulateUtlb(tr, c);
        auto i = tlbsim::simulateIntr(tr, c);
        auto row = [&](const char *name,
                       const tlbsim::SimResult &r, bool check) {
            t.addRow({std::to_string(entries), name,
                      check ? sim::TextTable::num(
                          r.checkMissPerLookup(), 2)
                            : std::string("-"),
                      sim::TextTable::num(r.niMissPerLookup(), 2),
                      sim::TextTable::num(r.unpinsPerLookup(), 2),
                      sim::TextTable::num(r.probeMissRate(), 2),
                      sim::TextTable::num(r.avgLookupCostUs(), 2),
                      sim::TextTable::num(r.compulsoryMisses),
                      sim::TextTable::num(r.capacityMisses),
                      sim::TextTable::num(r.conflictMisses)});
        };
        row("UTLB", u, true);
        row("Intr", i, false);
        t.addRule();
    }
    t.print(std::cout);
    return 0;
}
