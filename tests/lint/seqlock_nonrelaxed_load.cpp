// Known-bad fixture for scripts/concurrency_lint.py (never compiled).
//
// An acquire load inside a seqlock read section: the version counter
// already provides the ordering, so the stronger order is at best a
// pointless fence and at worst papers over a protocol misread.
//
// utlb-lint-expect: seqlock-read-section

#include <atomic>
#include <cstdint>

struct SeqCount {
    std::uint32_t readBegin() const;
    bool readRetry(std::uint32_t) const;
};

std::uint64_t
snapshot(SeqCount &seq, std::atomic<std::uint64_t> &slot)
{
    for (;;) {
        std::uint32_t v = seq.readBegin();
        // BAD: non-relaxed order inside the read section.
        std::uint64_t pfn = slot.load(std::memory_order_acquire);
        if (!seq.readRetry(v))
            return pfn;
    }
}
