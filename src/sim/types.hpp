/**
 * @file
 * Fundamental simulation types: ticks and time-unit conversions.
 *
 * All simulated time in this project is kept as an integer number of
 * picoseconds. The paper's cost model is expressed in microseconds
 * with one decimal of precision (e.g. a 0.8 us NIC cache hit), so an
 * integer picosecond clock represents every constant exactly and keeps
 * the simulation deterministic across platforms.
 */

#ifndef UTLB_SIM_TYPES_HPP
#define UTLB_SIM_TYPES_HPP

#include <cstdint>

namespace utlb::sim {

/** Simulated time, in picoseconds. */
using Tick = std::uint64_t;

/** A signed tick delta, for cost arithmetic that may go negative. */
using TickDelta = std::int64_t;

/** Sentinel for "no scheduled time". */
inline constexpr Tick kMaxTick = ~Tick{0};

/** One nanosecond in ticks. */
inline constexpr Tick kTicksPerNs = 1000;

/** One microsecond in ticks. */
inline constexpr Tick kTicksPerUs = 1000 * kTicksPerNs;

/** One millisecond in ticks. */
inline constexpr Tick kTicksPerMs = 1000 * kTicksPerUs;

/** One second in ticks. */
inline constexpr Tick kTicksPerSec = 1000 * kTicksPerMs;

/** Convert a floating-point microsecond quantity to ticks (rounded). */
constexpr Tick
usToTicks(double us)
{
    return static_cast<Tick>(us * static_cast<double>(kTicksPerUs) + 0.5);
}

/** Convert nanoseconds to ticks. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(kTicksPerNs) + 0.5);
}

/** Convert ticks to microseconds as a double (for reporting only). */
constexpr double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerUs);
}

/** Convert ticks to nanoseconds as a double (for reporting only). */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerNs);
}

} // namespace utlb::sim

#endif // UTLB_SIM_TYPES_HPP
