# Empty compiler generated dependencies file for utlb_vmmc.
# This may be replaced when dependencies are built.
