# Empty compiler generated dependencies file for svm_worksharing.
# This may be replaced when dependencies are built.
