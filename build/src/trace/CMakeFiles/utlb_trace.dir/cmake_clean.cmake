file(REMOVE_RECURSE
  "CMakeFiles/utlb_trace.dir/trace_io.cpp.o"
  "CMakeFiles/utlb_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/utlb_trace.dir/workloads.cpp.o"
  "CMakeFiles/utlb_trace.dir/workloads.cpp.o.d"
  "libutlb_trace.a"
  "libutlb_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utlb_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
