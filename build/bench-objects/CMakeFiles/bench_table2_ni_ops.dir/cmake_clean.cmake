file(REMOVE_RECURSE
  "../bench/bench_table2_ni_ops"
  "../bench/bench_table2_ni_ops.pdb"
  "CMakeFiles/bench_table2_ni_ops.dir/bench_table2_ni_ops.cpp.o"
  "CMakeFiles/bench_table2_ni_ops.dir/bench_table2_ni_ops.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_ni_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
