
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/address_space.cpp" "src/mem/CMakeFiles/utlb_mem.dir/address_space.cpp.o" "gcc" "src/mem/CMakeFiles/utlb_mem.dir/address_space.cpp.o.d"
  "/root/repo/src/mem/phys_memory.cpp" "src/mem/CMakeFiles/utlb_mem.dir/phys_memory.cpp.o" "gcc" "src/mem/CMakeFiles/utlb_mem.dir/phys_memory.cpp.o.d"
  "/root/repo/src/mem/pinning.cpp" "src/mem/CMakeFiles/utlb_mem.dir/pinning.cpp.o" "gcc" "src/mem/CMakeFiles/utlb_mem.dir/pinning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/utlb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
