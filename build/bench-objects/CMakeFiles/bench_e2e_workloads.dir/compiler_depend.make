# Empty compiler generated dependencies file for bench_e2e_workloads.
# This may be replaced when dependencies are built.
