// Known-bad fixture for scripts/concurrency_lint.py (never compiled).
//
// A *MT method stamps recency straight from the shared use clock:
// `++useClock` races with every other worker, and writing lastUse
// without a nextStamp(sh) block defeats the per-shard stamp batching
// (and the stripe-lock discipline around it).
//
// utlb-lint-expect: mt-shard-discipline

#include <cstdint>

struct Shard {
    std::uint64_t stampNext = 0;
    std::uint64_t stampEnd = 0;
};

struct Line {
    std::uint64_t lastUse = 0;
};

class FakeCache
{
  public:
    void touchMT(Line &line, Shard &sh);

  private:
    std::uint64_t useClock = 0;
};

void
FakeCache::touchMT(Line &line, Shard &sh)
{
    (void)sh;
    // BAD: unsynchronized clock bump + raw recency write.
    line.lastUse = ++useClock;
}
