#include "nic/dma.hpp"

#include <vector>

namespace utlb::nic {

using sim::Tick;

Tick
DmaEngine::hostToNic(mem::PhysAddr src, SramAddr dst, std::size_t len)
{
    std::vector<std::uint8_t> buf(len);
    hostMem->read(src, buf);
    sram->write(dst, buf);
    statBytesToNic += len;
    ++statTransfers;
    Tick cost = timings->payloadDmaCost(len);
    statTransferLatency.sample(sim::ticksToUs(cost));
    return cost;
}

Tick
DmaEngine::nicToHost(SramAddr src, mem::PhysAddr dst, std::size_t len)
{
    std::vector<std::uint8_t> buf(len);
    sram->read(src, buf);
    hostMem->write(dst, buf);
    statBytesToHost += len;
    ++statTransfers;
    Tick cost = timings->payloadDmaCost(len);
    statTransferLatency.sample(sim::ticksToUs(cost));
    return cost;
}

Tick
DmaEngine::hostToHost(mem::PhysAddr src, mem::PhysAddr dst,
                      std::size_t len)
{
    std::vector<std::uint8_t> buf(len);
    hostMem->read(src, buf);
    hostMem->write(dst, buf);
    statBytesToNic += len;
    statBytesToHost += len;
    ++statTransfers;
    Tick cost = timings->payloadDmaCost(len);
    statTransferLatency.sample(sim::ticksToUs(cost));
    return cost;
}

} // namespace utlb::nic
