#include "nic/sram.hpp"

#include <cstring>

#include "sim/log.hpp"

namespace utlb::nic {

using sim::panic;

Sram::Sram(std::size_t capacity)
    : bytes(capacity, 0)
{
}

std::optional<SramAddr>
Sram::alloc(const std::string &name, std::size_t size)
{
    if (size == 0)
        panic("Sram::alloc of zero bytes for region '%s'", name.c_str());
    // First-fit from the freed-region holes: tenant churn frees and
    // reclaims same-sized per-process regions, so the first hole
    // usually fits exactly. Hole bases are 8-aligned by
    // construction (every region base is), so no re-align needed.
    for (std::size_t i = 0; i < holes.size(); ++i) {
        Hole &h = holes[i];
        if (h.size < size)
            continue;
        SramAddr base = h.base;
        std::size_t leftover = h.size - size;
        holeBytes -= size;
        if (leftover >= 8) {
            h.base = static_cast<SramAddr>((base + size + 7)
                                           & ~std::size_t{7});
            std::size_t pad = (h.base - base) - size;
            h.size = leftover - pad;
            holeBytes -= pad;
        } else {
            holeBytes -= leftover;
            holes.erase(holes.begin()
                        + static_cast<std::ptrdiff_t>(i));
        }
        regions.push_back(Region{name, base, size});
        ++statAllocs;
        statAllocBytes += size;
        return base;
    }
    // Align regions to 8 bytes.
    std::size_t base = (nextFree + 7) & ~std::size_t{7};
    if (base + size > bytes.size())
        return std::nullopt;
    nextFree = base + size;
    regions.push_back(Region{name, static_cast<SramAddr>(base), size});
    ++statAllocs;
    statAllocBytes += size;
    return static_cast<SramAddr>(base);
}

bool
Sram::free(const std::string &name)
{
    // Per-pid regions churn newest-first, so search from the back.
    for (std::size_t i = regions.size(); i-- > 0;) {
        if (regions[i].name != name)
            continue;
        Region r = regions[i];
        regions.erase(regions.begin()
                      + static_cast<std::ptrdiff_t>(i));
        // Scrub: a stale directory must not be readable through a
        // recycled region.
        std::fill(bytes.begin() + r.base,
                  bytes.begin() + r.base
                      + static_cast<std::ptrdiff_t>(r.size),
                  std::uint8_t{0});
        holes.push_back(Hole{r.base, r.size});
        holeBytes += r.size;
        ++statFrees;
        statFreedBytes += r.size;
        return true;
    }
    return false;
}

std::optional<SramAddr>
Sram::regionBase(const std::string &name) const
{
    for (const auto &r : regions) {
        if (r.name == name)
            return r.base;
    }
    return std::nullopt;
}

std::size_t
Sram::regionSize(const std::string &name) const
{
    for (const auto &r : regions) {
        if (r.name == name)
            return r.size;
    }
    return 0;
}

void
Sram::checkRange(SramAddr addr, std::size_t len) const
{
    if (addr + len > bytes.size())
        panic("SRAM access [%u, +%zu) beyond capacity %zu",
              addr, len, bytes.size());
}

void
Sram::read(SramAddr addr, std::span<std::uint8_t> out) const
{
    checkRange(addr, out.size());
    ++statReads;
    std::memcpy(out.data(), bytes.data() + addr, out.size());
}

void
Sram::write(SramAddr addr, std::span<const std::uint8_t> in)
{
    checkRange(addr, in.size());
    ++statWrites;
    std::memcpy(bytes.data() + addr, in.data(), in.size());
}

std::uint32_t
Sram::readWord(SramAddr addr) const
{
    checkRange(addr, 4);
    ++statReads;
    std::uint32_t v;
    std::memcpy(&v, bytes.data() + addr, 4);
    return v;
}

void
Sram::writeWord(SramAddr addr, std::uint32_t value)
{
    checkRange(addr, 4);
    ++statWrites;
    std::memcpy(bytes.data() + addr, &value, 4);
}

void
Sram::reset()
{
    std::fill(bytes.begin(), bytes.end(), 0);
    regions.clear();
    holes.clear();
    holeBytes = 0;
    nextFree = 0;
}

} // namespace utlb::nic
