file(REMOVE_RECURSE
  "../examples/custom_policy"
  "../examples/custom_policy.pdb"
  "CMakeFiles/custom_policy.dir/custom_policy.cpp.o"
  "CMakeFiles/custom_policy.dir/custom_policy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
