/**
 * @file
 * Ablation: the shared translation cache under multiprogramming.
 *
 * The paper notes (§2) that prior translation-cache work did not
 * "deal with the issues of a shared translation cache in a
 * multiprogramming environment"; its own answer is the
 * process-offset index hash. This ablation co-schedules two
 * *different* programs on one node — water (small, hot footprint)
 * next to fft (large, streaming footprint) — and reports each
 * process group's miss rate and cache occupancy with and without
 * offsetting, quantifying both interference and fairness.
 */

#include "bench_common.hpp"

#include <memory>
#include <unordered_map>

#include "core/cost_model.hpp"
#include "core/driver.hpp"
#include "core/utlb.hpp"
#include "mem/address_space.hpp"
#include "mem/phys_memory.hpp"
#include "mem/pinning.hpp"
#include "nic/sram.hpp"

namespace {

using namespace utlb;
using mem::ProcId;

/** Merge two node traces into one, remapping the second's pids. */
trace::Trace
merge(const trace::Trace &a, const trace::Trace &b,
      ProcId b_pid_offset)
{
    trace::Trace out;
    out.reserve(a.size() + b.size());
    std::size_t ia = 0, ib = 0;
    // Proportional interleave.
    while (ia < a.size() || ib < b.size()) {
        double ra = ia < a.size()
            ? static_cast<double>(ia) / static_cast<double>(a.size())
            : 2.0;
        double rb = ib < b.size()
            ? static_cast<double>(ib) / static_cast<double>(b.size())
            : 2.0;
        trace::TraceRecord rec;
        if (ra <= rb) {
            rec = a[ia++];
        } else {
            rec = b[ib++];
            rec.pid += b_pid_offset;
        }
        rec.seq = out.size();
        out.push_back(rec);
    }
    return out;
}

/** Per-process-group miss statistics from a manual replay. */
struct GroupStats {
    std::uint64_t probes = 0;
    std::uint64_t misses = 0;
    std::size_t occupancy = 0;
};

/** Replay through real UTLB stacks, split stats by pid group. */
std::pair<GroupStats, GroupStats>
replay(const trace::Trace &tr, bool offsetting, ProcId split_pid)
{
    auto shape = trace::measure(tr);
    mem::PhysMemory phys_mem(shape.distinctPages * 2 + 1024);
    mem::PinFacility pins;
    nic::Sram sram(4u << 20);
    nic::NicTimings timings;
    core::HostCosts costs;
    core::SharedUtlbCache cache({4096, 1, offsetting}, timings,
                                &sram);
    core::UtlbDriver driver(phys_mem, pins, sram, cache, costs);

    struct Proc {
        std::unique_ptr<mem::AddressSpace> space;
        std::unique_ptr<core::UserUtlb> utlb;
    };
    std::unordered_map<ProcId, Proc> procs;

    GroupStats small_app, big_app;
    for (const auto &rec : tr) {
        auto it = procs.find(rec.pid);
        if (it == procs.end()) {
            Proc p;
            p.space = std::make_unique<mem::AddressSpace>(rec.pid,
                                                          phys_mem);
            driver.registerProcess(*p.space);
            p.utlb = std::make_unique<core::UserUtlb>(
                driver, cache, timings, rec.pid, core::UtlbConfig{});
            it = procs.emplace(rec.pid, std::move(p)).first;
        }
        auto &group = rec.pid < split_pid ? small_app : big_app;
        auto tr_res = it->second.utlb->translate(rec.va, rec.nbytes);
        group.probes += tr_res.pageAddrs.size();
        group.misses += tr_res.niMisses;
    }
    for (const auto &[pid, p] : procs) {
        auto &group = pid < split_pid ? small_app : big_app;
        group.occupancy += cache.occupancyOf(pid);
    }
    return {small_app, big_app};
}

std::string
missRate(const GroupStats &g)
{
    return bench::rate(g.probes
                           ? static_cast<double>(g.misses)
                               / static_cast<double>(g.probes)
                           : 0.0);
}

} // namespace

int
main()
{
    auto water = trace::generateTrace("water");
    auto fft = trace::generateTrace("fft");
    auto combined = merge(water, fft, /*pid offset*/ 16);

    // Solo baselines.
    auto [water_solo, unused1] = replay(water, true, 16);
    auto [unused2, fft_solo] = replay(fft, true, 0);
    (void)unused1;
    (void)unused2;

    utlb::sim::TextTable t(
        "Shared UTLB-Cache under multiprogramming: water (hot, small)"
        " co-scheduled with fft (streaming, large); 4K entries");
    t.setHeader({"Config", "water missRate", "fft missRate",
                 "water occupancy", "fft occupancy"});
    t.addRow({"solo (offset)", missRate(water_solo),
              missRate(fft_solo), "-", "-"});

    auto [w_off, f_off] = replay(combined, true, 16);
    t.addRow({"co-run, offset", missRate(w_off), missRate(f_off),
              utlb::sim::TextTable::num(std::uint64_t{w_off.occupancy}),
              utlb::sim::TextTable::num(
                  std::uint64_t{f_off.occupancy})});

    auto [w_no, f_no] = replay(combined, false, 16);
    t.addRow({"co-run, no offset", missRate(w_no), missRate(f_no),
              utlb::sim::TextTable::num(std::uint64_t{w_no.occupancy}),
              utlb::sim::TextTable::num(
                  std::uint64_t{f_no.occupancy})});
    t.print(std::cout);

    std::cout << "\nShape checks: with offsetting, co-running the "
                 "streaming fft next to water costs water a modest "
                 "miss-rate increase\nand it keeps a proportionate "
                 "share of the cache; without it, the ten processes' "
                 "overlapping page numbers\ncollide, water's hit "
                 "rate collapses, and most of the cache sits unused "
                 "— the paper's multiprogramming\nargument for the "
                 "process-dependent index hash (§3.2, §6.3).\n";
    return 0;
}
