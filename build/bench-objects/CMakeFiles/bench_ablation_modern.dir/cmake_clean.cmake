file(REMOVE_RECURSE
  "../bench/bench_ablation_modern"
  "../bench/bench_ablation_modern.pdb"
  "CMakeFiles/bench_ablation_modern.dir/bench_ablation_modern.cpp.o"
  "CMakeFiles/bench_ablation_modern.dir/bench_ablation_modern.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_modern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
