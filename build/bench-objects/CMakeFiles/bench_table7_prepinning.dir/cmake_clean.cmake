file(REMOVE_RECURSE
  "../bench/bench_table7_prepinning"
  "../bench/bench_table7_prepinning.pdb"
  "CMakeFiles/bench_table7_prepinning.dir/bench_table7_prepinning.cpp.o"
  "CMakeFiles/bench_table7_prepinning.dir/bench_table7_prepinning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_prepinning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
