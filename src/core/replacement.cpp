#include "core/replacement.hpp"

#include <algorithm>
#include <array>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/log.hpp"

namespace utlb::core {

using mem::Vpn;
using sim::fatal;
using sim::panic;

PolicyKind
policyFromName(const std::string &name)
{
    if (name == "lru")
        return PolicyKind::Lru;
    if (name == "mru")
        return PolicyKind::Mru;
    if (name == "lfu")
        return PolicyKind::Lfu;
    if (name == "mfu")
        return PolicyKind::Mfu;
    if (name == "fifo")
        return PolicyKind::Fifo;
    if (name == "random")
        return PolicyKind::Random;
    fatal("unknown replacement policy '%s'", name.c_str());
}

const char *
toString(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Lru:    return "LRU";
      case PolicyKind::Mru:    return "MRU";
      case PolicyKind::Lfu:    return "LFU";
      case PolicyKind::Mfu:    return "MFU";
      case PolicyKind::Fifo:   return "FIFO";
      case PolicyKind::Random: return "RANDOM";
    }
    return "?";
}

namespace {

/**
 * Recency-ordered policy core shared by LRU, MRU, and FIFO.
 *
 * The recency list is an intrusive doubly-linked list threaded
 * through a flat array of per-vpn nodes, indexed directly by vpn:
 * no hashing on the access path, and a chain of consecutively
 * ordered vpns (the common case after a sequential buffer touch)
 * can be re-spliced to the tail as one segment. Node storage is
 * paged in fixed chunks — dense chunk pointers for the low vpn
 * range, a sparse map beyond it — so huge or scattered address
 * spaces don't inflate memory.
 */
class RecencyPolicy : public ReplacementPolicy
{
  public:
    explicit RecencyPolicy(PolicyKind k) : policyKind(k) {}

    void
    onInsert(Vpn vpn) override
    {
        Node &n = nodeFor(vpn);
        if (n.tracked)
            panic("policy onInsert of tracked page");
        n.tracked = true;
        linkTail(vpn, n);
        ++numTracked;
    }

    void
    onAccess(Vpn vpn) override
    {
        if (policyKind == PolicyKind::Fifo)
            return;  // FIFO ignores accesses
        Node *n = nodeIf(vpn);
        if (!n || !n->tracked)
            return;
        if (tail == vpn)
            return;  // already most recent
        unlink(*n);
        linkTail(vpn, *n);
    }

    void
    onAccessRange(Vpn start, std::size_t npages) override
    {
        if (policyKind == PolicyKind::Fifo || npages == 0)
            return;
        if (npages > 1 && isChain(start, npages)) {
            spliceChainToTail(start, start + npages - 1);
            return;
        }
        for (std::size_t i = 0; i < npages; ++i)
            onAccess(start + i);
    }

    void
    onRemove(Vpn vpn) override
    {
        Node *n = nodeIf(vpn);
        if (!n || !n->tracked)
            return;
        unlink(*n);
        n->tracked = false;
        n->prev = n->next = kNil;
        --numTracked;
    }

    std::optional<Vpn>
    victim(const Evictable &ok) const override
    {
        if (policyKind == PolicyKind::Mru) {
            for (Vpn vpn = tail; vpn != kNil; vpn = nodeIf(vpn)->prev) {
                if (!ok || ok(vpn))
                    return vpn;
            }
        } else {
            for (Vpn vpn = head; vpn != kNil; vpn = nodeIf(vpn)->next) {
                if (!ok || ok(vpn))
                    return vpn;
            }
        }
        return std::nullopt;
    }

    std::size_t size() const override { return numTracked; }

    bool
    contains(Vpn vpn) const override
    {
        const Node *n = nodeIf(vpn);
        return n && n->tracked;
    }

    PolicyKind kind() const override { return policyKind; }

  private:
    static constexpr Vpn kNil = ~Vpn{0};
    static constexpr std::size_t kChunkPages = 4096;
    //! vpns below kDenseChunks * kChunkPages get dense chunk slots.
    static constexpr std::size_t kDenseChunks = 4096;

    struct Node {
        Vpn prev = kNil;
        Vpn next = kNil;
        bool tracked = false;
    };

    using Chunk = std::array<Node, kChunkPages>;

    const Node *
    nodeIf(Vpn vpn) const
    {
        std::size_t c = vpn / kChunkPages;
        if (c < kDenseChunks) {
            if (c >= dense.size() || !dense[c])
                return nullptr;
            return &(*dense[c])[vpn % kChunkPages];
        }
        auto it = sparse.find(c);
        if (it == sparse.end())
            return nullptr;
        return &(*it->second)[vpn % kChunkPages];
    }

    Node *
    nodeIf(Vpn vpn)
    {
        return const_cast<Node *>(
            static_cast<const RecencyPolicy *>(this)->nodeIf(vpn));
    }

    Node &
    nodeFor(Vpn vpn)
    {
        std::size_t c = vpn / kChunkPages;
        if (c < kDenseChunks) {
            if (c >= dense.size())
                dense.resize(c + 1);
            if (!dense[c])
                dense[c] = std::make_unique<Chunk>();
            return (*dense[c])[vpn % kChunkPages];
        }
        auto &chunk = sparse[c];
        if (!chunk)
            chunk = std::make_unique<Chunk>();
        return (*chunk)[vpn % kChunkPages];
    }

    void
    unlink(Node &n)
    {
        if (n.prev != kNil)
            nodeIf(n.prev)->next = n.next;
        else
            head = n.next;
        if (n.next != kNil)
            nodeIf(n.next)->prev = n.prev;
        else
            tail = n.prev;
    }

    void
    linkTail(Vpn vpn, Node &n)
    {
        n.prev = tail;
        n.next = kNil;
        if (tail != kNil)
            nodeIf(tail)->next = vpn;
        else
            head = vpn;
        tail = vpn;
    }

    /**
     * True if [start, start + npages) are all tracked and already
     * linked consecutively (node[v].next == v + 1 for every v but the
     * last). List links only reference tracked nodes, so checking the
     * first node's tracked flag covers the whole run.
     */
    bool
    isChain(Vpn start, std::size_t npages) const
    {
        const Node *n = nodeIf(start);
        if (!n || !n->tracked)
            return false;
        for (Vpn v = start; v + 1 < start + npages; ++v) {
            if (n->next != v + 1)
                return false;
            n = nodeIf(v + 1);
        }
        return true;
    }

    /**
     * Move the already-chained segment [first, last] to the list
     * tail in O(1). Equivalent to touching first..last in order:
     * both produce [everything else in prior order] ++ [first..last].
     */
    void
    spliceChainToTail(Vpn first, Vpn last)
    {
        if (tail == last)
            return;  // segment already ends the list
        Node *f = nodeIf(first);
        Node *l = nodeIf(last);
        if (f->prev != kNil)
            nodeIf(f->prev)->next = l->next;
        else
            head = l->next;
        nodeIf(l->next)->prev = f->prev;  // l->next != kNil since tail != last
        f->prev = tail;
        l->next = kNil;
        if (tail != kNil)
            nodeIf(tail)->next = first;
        else
            head = first;
        tail = last;
    }

    PolicyKind policyKind;
    Vpn head = kNil;    //!< least recent
    Vpn tail = kNil;    //!< most recent
    std::size_t numTracked = 0;
    std::vector<std::unique_ptr<Chunk>> dense;
    std::unordered_map<std::size_t, std::unique_ptr<Chunk>> sparse;
};

/** Frequency-ordered policy core shared by LFU and MFU. */
class FrequencyPolicy : public ReplacementPolicy
{
  public:
    explicit FrequencyPolicy(PolicyKind k) : policyKind(k) {}

    void
    onInsert(Vpn vpn) override
    {
        if (pages.count(vpn))
            panic("policy onInsert of tracked page");
        pages.emplace(vpn, Info{1, nextStamp++});
    }

    void
    onAccess(Vpn vpn) override
    {
        auto it = pages.find(vpn);
        if (it == pages.end())
            return;
        ++it->second.freq;
        it->second.stamp = nextStamp++;
    }

    void onRemove(Vpn vpn) override { pages.erase(vpn); }

    std::optional<Vpn>
    victim(const Evictable &ok) const override
    {
        // Ties in frequency break toward the least recently used so
        // LFU degrades to LRU on uniform access, which is the
        // conventional definition.
        bool found = false;
        Vpn best = 0;
        Info best_info{};
        for (const auto &[vpn, info] : pages) {
            if (ok && !ok(vpn))
                continue;
            bool better;
            if (!found) {
                better = true;
            } else if (policyKind == PolicyKind::Lfu) {
                better = info.freq < best_info.freq
                    || (info.freq == best_info.freq
                        && info.stamp < best_info.stamp);
            } else {
                better = info.freq > best_info.freq
                    || (info.freq == best_info.freq
                        && info.stamp < best_info.stamp);
            }
            if (better) {
                found = true;
                best = vpn;
                best_info = info;
            }
        }
        if (!found)
            return std::nullopt;
        return best;
    }

    std::size_t size() const override { return pages.size(); }

    bool contains(Vpn vpn) const override { return pages.count(vpn) > 0; }

    PolicyKind kind() const override { return policyKind; }

  private:
    struct Info {
        std::uint64_t freq;
        std::uint64_t stamp;
    };

    PolicyKind policyKind;
    std::unordered_map<Vpn, Info> pages;
    std::uint64_t nextStamp = 0;
};

/** Uniform random victim selection with a seeded generator. */
class RandomPolicy : public ReplacementPolicy
{
  public:
    explicit RandomPolicy(std::uint64_t seed) : rng(seed) {}

    void
    onInsert(Vpn vpn) override
    {
        if (slot.count(vpn))
            panic("policy onInsert of tracked page");
        slot.emplace(vpn, pages.size());
        pages.push_back(vpn);
    }

    void onAccess(Vpn) override {}

    void onAccessRange(Vpn, std::size_t) override {}

    void
    onRemove(Vpn vpn) override
    {
        auto it = slot.find(vpn);
        if (it == slot.end())
            return;
        std::size_t i = it->second;
        slot.erase(it);
        Vpn last = pages.back();
        pages.pop_back();
        if (i < pages.size()) {
            pages[i] = last;
            slot[last] = i;
        }
    }

    std::optional<Vpn>
    victim(const Evictable &ok) const override
    {
        if (pages.empty())
            return std::nullopt;
        // Random probing; falls back to a linear scan from a random
        // start so a mostly-locked set still terminates.
        std::size_t start = rng.below(pages.size());
        for (std::size_t i = 0; i < pages.size(); ++i) {
            Vpn vpn = pages[(start + i) % pages.size()];
            if (!ok || ok(vpn))
                return vpn;
        }
        return std::nullopt;
    }

    std::size_t size() const override { return pages.size(); }

    bool contains(Vpn vpn) const override { return slot.count(vpn) > 0; }

    PolicyKind kind() const override { return PolicyKind::Random; }

  private:
    mutable sim::Rng rng;
    std::vector<Vpn> pages;
    std::unordered_map<Vpn, std::size_t> slot;
};

} // namespace

std::unique_ptr<ReplacementPolicy>
ReplacementPolicy::create(PolicyKind kind, std::uint64_t seed)
{
    switch (kind) {
      case PolicyKind::Lru:
      case PolicyKind::Mru:
      case PolicyKind::Fifo:
        return std::make_unique<RecencyPolicy>(kind);
      case PolicyKind::Lfu:
      case PolicyKind::Mfu:
        return std::make_unique<FrequencyPolicy>(kind);
      case PolicyKind::Random:
        return std::make_unique<RandomPolicy>(seed);
    }
    panic("unreachable policy kind");
}

} // namespace utlb::core
