/**
 * @file
 * Unit tests for the simulation kernel: event queue, RNG,
 * calibration curves, statistics, and the table formatter.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "sim/calibration.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "sim/table.hpp"
#include "sim/types.hpp"

namespace {

using namespace utlb::sim;

TEST(Types, TickConversionsRoundTrip)
{
    EXPECT_EQ(usToTicks(1.0), kTicksPerUs);
    EXPECT_EQ(usToTicks(0.5), kTicksPerUs / 2);
    EXPECT_EQ(nsToTicks(1.0), kTicksPerNs);
    EXPECT_DOUBLE_EQ(ticksToUs(usToTicks(27.0)), 27.0);
    EXPECT_DOUBLE_EQ(ticksToUs(kTicksPerMs), 1000.0);
}

TEST(Types, PaperConstantsAreExact)
{
    // The cost model relies on representing 0.1 us exactly.
    EXPECT_EQ(usToTicks(0.8), 800000u);
    EXPECT_EQ(usToTicks(0.9) - usToTicks(0.4), usToTicks(0.5));
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
    EXPECT_EQ(eq.fired(), 3u);
}

TEST(EventQueue, EqualTimesFireInInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CallbacksMayScheduleMoreEvents)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 5)
            eq.after(10, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, RunUntilStopsAtHorizonAndAdvancesClock)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    EXPECT_EQ(eq.runUntil(50), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 50u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ClearDropsPendingEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.clear();
    eq.run();
    EXPECT_EQ(fired, 0);
}

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(13), 13u);
}

TEST(Rng, RangeIsInclusive)
{
    Rng r(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = r.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 5);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(99);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(CalCurve, ExactAtMeasuredPoints)
{
    CalCurve c{{1, 27.0}, {2, 30.0}, {4, 36.0}, {8, 47.0},
               {16, 70.0}, {32, 115.0}};
    EXPECT_DOUBLE_EQ(c.at(1), 27.0);
    EXPECT_DOUBLE_EQ(c.at(2), 30.0);
    EXPECT_DOUBLE_EQ(c.at(4), 36.0);
    EXPECT_DOUBLE_EQ(c.at(8), 47.0);
    EXPECT_DOUBLE_EQ(c.at(16), 70.0);
    EXPECT_DOUBLE_EQ(c.at(32), 115.0);
}

TEST(CalCurve, InterpolatesBetweenPoints)
{
    CalCurve c{{1, 10.0}, {3, 20.0}};
    EXPECT_DOUBLE_EQ(c.at(2), 15.0);
}

TEST(CalCurve, ExtrapolatesWithFinalSlope)
{
    CalCurve c{{1, 10.0}, {2, 12.0}, {4, 16.0}};
    // Final segment slope: (16-12)/2 = 2 per entry.
    EXPECT_DOUBLE_EQ(c.at(6), 20.0);
}

TEST(CalCurve, ClampsBelowFirstPoint)
{
    CalCurve c{{4, 8.0}, {8, 16.0}};
    EXPECT_DOUBLE_EQ(c.at(1), 8.0);
}

TEST(CalCurve, MonotoneInputStaysMonotone)
{
    CalCurve c{{1, 1.5}, {2, 1.6}, {4, 1.6}, {8, 1.9}, {16, 2.1},
               {32, 2.5}};
    double prev = 0.0;
    for (std::size_t n = 1; n <= 64; ++n) {
        double v = c.at(n);
        EXPECT_GE(v, prev);
        prev = v;
    }
}

TEST(Stats, CounterAccumulates)
{
    StatGroup g("test");
    Counter c(&g, "c", "a counter");
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, AverageComputesMean)
{
    StatGroup g("test");
    Average a(&g, "a", "an average");
    a.sample(1.0);
    a.sample(2.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_EQ(a.samples(), 3u);
    EXPECT_DOUBLE_EQ(a.total(), 9.0);
}

TEST(Stats, AverageOfNothingIsZero)
{
    StatGroup g("test");
    Average a(&g, "a", "empty");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Stats, HistogramBucketsAndOverflow)
{
    StatGroup g("test");
    Histogram h(&g, "h", "hist", 10.0, 5);
    h.sample(0.5);   // bucket 0
    h.sample(3.0);   // bucket 1
    h.sample(9.99);  // bucket 4
    h.sample(10.0);  // overflow
    h.sample(-1.0);  // overflow (negative)
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(4), 1u);
    EXPECT_EQ(h.overflowCount(), 2u);
    EXPECT_EQ(h.samples(), 5u);
}

TEST(Stats, GroupDumpContainsAllStats)
{
    StatGroup g("parent");
    StatGroup child("child", &g);
    Counter c1(&g, "alpha", "first");
    Counter c2(&child, "beta", "second");
    ++c1;
    ++c2;
    std::ostringstream oss;
    g.dump(oss);
    auto text = oss.str();
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("beta"), std::string::npos);
    EXPECT_NE(text.find("child"), std::string::npos);
}

TEST(Stats, FindLocatesByName)
{
    StatGroup g("g");
    Counter c(&g, "needle", "x");
    EXPECT_EQ(g.find("needle"), &c);
    EXPECT_EQ(g.find("missing"), nullptr);
}

TEST(Stats, ResetAllRecurses)
{
    StatGroup g("g");
    StatGroup child("c", &g);
    Counter c1(&g, "a", "x");
    Counter c2(&child, "b", "y");
    c1 += 3;
    c2 += 4;
    g.resetAll();
    EXPECT_EQ(c1.value(), 0u);
    EXPECT_EQ(c2.value(), 0u);
}

TEST(TextTable, AlignsColumnsAndFormatsNumbers)
{
    TextTable t("Title");
    t.setHeader({"name", "value"});
    t.addRow({"x", TextTable::num(1.5, 1)});
    t.addRow({"longer-name", TextTable::num(std::uint64_t{42})});
    auto s = t.str();
    EXPECT_NE(s.find("Title"), std::string::npos);
    EXPECT_NE(s.find("1.5"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_NE(s.find("longer-name"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, NumFormatsDecimals)
{
    EXPECT_EQ(TextTable::num(0.25, 2), "0.25");
    EXPECT_EQ(TextTable::num(3.14159, 1), "3.1");
    EXPECT_EQ(TextTable::num(std::uint64_t{8192}), "8192");
}

} // namespace

namespace {

TEST(Stats, HistogramTracksExtremesAndMean)
{
    StatGroup g("g");
    Histogram h(&g, "h", "x", 100.0, 10);
    h.sample(5.0);
    h.sample(95.0);
    h.sample(50.0);
    EXPECT_DOUBLE_EQ(h.minSeen(), 5.0);
    EXPECT_DOUBLE_EQ(h.maxSeen(), 95.0);
    EXPECT_DOUBLE_EQ(h.mean(), 50.0);
    h.reset();
    h.sample(7.0);
    EXPECT_DOUBLE_EQ(h.minSeen(), 7.0);
    EXPECT_DOUBLE_EQ(h.maxSeen(), 7.0);
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng r(5);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
    Rng r2(6);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r2.chance(0.0));
        EXPECT_TRUE(r2.chance(1.0));
    }
}

TEST(TextTable, RuleSeparatesRows)
{
    TextTable t;
    t.setHeader({"a"});
    t.addRow({"1"});
    t.addRule();
    t.addRow({"2"});
    auto s = t.str();
    // A dashed line appears between the two data rows.
    auto one = s.find("1\n");
    auto two = s.find("2\n");
    auto dash = s.find("--", one);
    ASSERT_NE(one, std::string::npos);
    ASSERT_NE(two, std::string::npos);
    EXPECT_LT(one, dash);
    EXPECT_LT(dash, two);
}

} // namespace
