#include "mem/phys_memory.hpp"

#include <algorithm>
#include <cstring>

#include "sim/log.hpp"

namespace utlb::mem {

using sim::panic;

PhysMemory::PhysMemory(std::size_t frames)
    : bytes(new std::uint8_t[frames * kPageSize]),
      owners(frames, kNoOwner)
{
    freeList.reserve(frames);
    // Descending so pop_back yields the lowest free frame first.
    for (std::size_t i = frames; i-- > 0;)
        freeList.push_back(static_cast<Pfn>(i));
}

std::optional<Pfn>
PhysMemory::allocFrame(ProcId owner)
{
    auto lk = guard();
    if (freeList.empty())
        return std::nullopt;
    Pfn pfn = freeList.back();
    freeList.pop_back();
    owners[pfn] = owner;
    ++numAllocated;
    ++numAllocs;
    // Fresh frames read as zero, like DRAM handed out by an OS; the
    // backing store itself is never bulk-initialized.
    std::memset(bytes.get() + frameAddr(pfn), 0, kPageSize);
    return pfn;
}

void
PhysMemory::freeFrame(Pfn pfn)
{
    auto lk = guard();
    if (pfn >= owners.size() || owners[pfn] == kNoOwner)
        panic("freeFrame of unallocated frame %llu",
              static_cast<unsigned long long>(pfn));
    owners[pfn] = kNoOwner;
    freeList.push_back(pfn);
    --numAllocated;
    ++numFrees;
}

ProcId
PhysMemory::ownerOf(Pfn pfn) const
{
    auto lk = guard();
    return pfn < owners.size() ? owners[pfn] : kNoOwner;
}

bool
PhysMemory::isAllocated(Pfn pfn) const
{
    auto lk = guard();
    return pfn < owners.size() && owners[pfn] != kNoOwner;
}

void
PhysMemory::checkRange(PhysAddr pa, std::size_t len) const
{
    if (pa + len > capacityBytes() || pa + len < pa)
        panic("physical access [%llu, +%zu) out of range",
              static_cast<unsigned long long>(pa), len);
}

void
PhysMemory::read(PhysAddr pa, std::span<std::uint8_t> out) const
{
    checkRange(pa, out.size());
    std::memcpy(out.data(), bytes.get() + pa, out.size());
}

void
PhysMemory::write(PhysAddr pa, std::span<const std::uint8_t> in)
{
    checkRange(pa, in.size());
    std::memcpy(bytes.get() + pa, in.data(), in.size());
}

void
PhysMemory::zeroFrame(Pfn pfn)
{
    checkRange(frameAddr(pfn), kPageSize);
    std::memset(bytes.get() + frameAddr(pfn), 0, kPageSize);
}

} // namespace utlb::mem
