file(REMOVE_RECURSE
  "../bench/bench_table1_host_ops"
  "../bench/bench_table1_host_ops.pdb"
  "CMakeFiles/bench_table1_host_ops.dir/bench_table1_host_ops.cpp.o"
  "CMakeFiles/bench_table1_host_ops.dir/bench_table1_host_ops.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_host_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
