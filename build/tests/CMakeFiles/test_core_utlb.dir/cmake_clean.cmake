file(REMOVE_RECURSE
  "CMakeFiles/test_core_utlb.dir/test_core_utlb.cpp.o"
  "CMakeFiles/test_core_utlb.dir/test_core_utlb.cpp.o.d"
  "test_core_utlb"
  "test_core_utlb.pdb"
  "test_core_utlb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_utlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
