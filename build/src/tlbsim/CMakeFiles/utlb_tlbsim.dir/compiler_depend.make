# Empty compiler generated dependencies file for utlb_tlbsim.
# This may be replaced when dependencies are built.
