#include "core/pin_manager.hpp"

#include <algorithm>

#include "check/audit.hpp"
#include "check/check.hpp"
#include "core/driver.hpp"
#include "core/pin_budget.hpp"
#include "sim/log.hpp"

namespace utlb::core {

using mem::PinStatus;
using mem::Vpn;
using sim::warn;

PinManager::PinManager(UtlbDriver &drv, mem::ProcId pid,
                       const PinManagerConfig &config)
    : driver(&drv), procId(pid), homeShard(drv.shardOf(pid)),
      cfg(config),
      repl(ReplacementPolicy::create(cfg.policy, cfg.seed))
{
    if (cfg.budget)
        cfg.budget->attach(procId, cfg.quotaCapPages, cfg.quotaWeight);
}

PinManager::~PinManager()
{
    if (cfg.budget)
        cfg.budget->detach(procId);
}

void
PinManager::enableConcurrent()
{
    if (!mu)
        mu = std::make_unique<sim::Mutex>();
}

sim::OptionalLockGuard
PinManager::guard() const
{
    // Locks iff concurrent mode armed the mutex; the returned prvalue
    // is constructed in place (guaranteed elision), so exactly one
    // unlock happens when the caller's scope ends.
    return sim::OptionalLockGuard(mu.get());
}

void
PinManager::lockRange(Vpn start, std::size_t npages)
{
    auto g = guard();
    lockRangeImpl(start, npages);
}

void
PinManager::unlockRange(Vpn start, std::size_t npages)
{
    auto g = guard();
    unlockRangeImpl(start, npages);
}

bool
PinManager::isLocked(Vpn vpn) const
{
    auto g = guard();
    return isLockedImpl(vpn);
}

bool
PinManager::isPinned(Vpn vpn) const
{
    auto g = guard();
    return bits.test(vpn);
}

std::size_t
PinManager::pinnedPages() const
{
    auto g = guard();
    return bits.count();
}

void
PinManager::lockRangeImpl(Vpn start, std::size_t npages)
{
    for (std::size_t i = 0; i < npages; ++i)
        ++locks[start + i];
}

void
PinManager::unlockRangeImpl(Vpn start, std::size_t npages)
{
    for (std::size_t i = 0; i < npages; ++i) {
        auto it = locks.find(start + i);
        if (it == locks.end())
            continue;
        if (--it->second == 0)
            locks.erase(it);
    }
}

bool
PinManager::isLockedImpl(Vpn vpn) const
{
    return locks.count(vpn) > 0;
}

bool
PinManager::evictOne(EnsureResult &res)
{
    ++statPolicyVictims;
    auto victim = repl->victim(
        [this](Vpn vpn) { return !isLockedImpl(vpn); });
    if (!victim) {
        ++statPolicyVictimFails;
        return false;
    }
    // The policy only tracks pages this manager pinned; a victim the
    // bit vector does not know about means the two structures have
    // diverged.
    UTLB_ASSERT(bits.test(*victim),
                "eviction victim %llu is not marked pinned",
                static_cast<unsigned long long>(*victim));

    // Unpin one page at a time (§6.5).
    IoctlResult io =
        driver->ioctlUnpinAndInvalidate(homeShard, procId, *victim, 1);
    res.cost += io.cost;
    res.unpinCost += io.cost;
    ++res.unpinIoctls;
    if (io.status != PinStatus::Ok || io.pagesDone != 1) {
        warn("eviction unpin of page %llu failed (%s)",
             static_cast<unsigned long long>(*victim),
             toString(io.status));
        return false;
    }
    bits.clear(*victim);
    repl->onRemove(*victim);
    res.pagesUnpinned += 1;
    ++statEvictions;
    return true;
}

bool
PinManager::pinRun(Vpn start, std::size_t npages, EnsureResult &res)
{
    // Make room under the effective budget first: the library's own
    // limit, tightened by the fleet quota when one is configured.
    // (A WeightedShare limit moves with churn, so it is re-read on
    // every slow path, not cached.)
    std::size_t limit = cfg.memLimitPages;
    bool quotaBound = false;
    if (cfg.budget) {
        std::size_t q = cfg.budget->limitFor(procId);
        if (q != 0 && (limit == 0 || q < limit)) {
            limit = q;
            quotaBound = true;
        }
    }
    if (limit != 0) {
        while (bits.count() + npages > limit) {
            if (!evictOne(res))
                return false;
            if (quotaBound)
                ++statQuotaThrottles;
        }
    }

    while (true) {
        IoctlResult io = driver->ioctlPinAndInstall(homeShard, procId,
                                                    start, npages);
        res.cost += io.cost;
        res.pinCost += io.cost;
        ++res.pinIoctls;
        if (io.status == PinStatus::Ok) {
            for (std::size_t i = 0; i < npages; ++i) {
                bits.set(start + i);
                repl->onInsert(start + i);
            }
            res.pagesPinned += npages;
            statPagesPinned += npages;
            return true;
        }
        if (io.status == PinStatus::LimitExceeded
            || io.status == PinStatus::OutOfMemory) {
            // The kernel's limit may be tighter than the library's
            // notion; evict and retry.
            if (!evictOne(res))
                return false;
            continue;
        }
        return false;
    }
}

EnsureResult
PinManager::ensurePinned(Vpn start, std::size_t npages)
{
    auto g = guard();
    EnsureResult res;
    ++statChecks;

    CheckResult check = bits.checkRange(start, npages);
    res.cost += check.cost;

    if (check.allPinned) {
        for (std::size_t i = 0; i < npages; ++i) {
            repl->onAccess(start + i);
            ++statPolicyAccesses;
        }
        statEnsureLatency.sample(sim::ticksToUs(res.cost));
        return res;
    }

    return ensureSlow(start, npages, check.firstUnpinned,
                      std::move(res));
}

EnsureResult
PinManager::ensurePinnedRange(Vpn start, std::size_t npages)
{
    auto g = guard();
    EnsureResult res;
    ++statChecks;

    CheckResult check = bits.checkRange(start, npages);
    res.cost += check.cost;

    if (check.allPinned) {
        repl->onAccessRange(start, npages);
        statPolicyAccesses += npages;
        statEnsureLatency.sample(sim::ticksToUs(res.cost));
        return res;
    }

    return ensureSlow(start, npages, check.firstUnpinned,
                      std::move(res));
}

EnsureResult
PinManager::ensureSlow(Vpn start, std::size_t npages, Vpn firstUnpinned,
                       EnsureResult res)
{
    res.checkMiss = true;
    ++statCheckMisses;
    UTLB_ASSERT(firstUnpinned >= start && firstUnpinned < start + npages,
                "checkRange reported first unpinned page %llu outside "
                "[%llu, +%zu)",
                static_cast<unsigned long long>(firstUnpinned),
                static_cast<unsigned long long>(start), npages);

    // The request's own pages must never be chosen as eviction
    // victims while we pin the rest of it (§3.1's rule generalized:
    // a page that this very lookup needs is "outstanding").
    lockRangeImpl(start, npages);

    // Pin each maximal run of unpinned pages within the request,
    // locating run boundaries a bitmap word at a time.
    std::size_t i = static_cast<std::size_t>(firstUnpinned - start);
    while (i < npages) {
        if (bits.test(start + i)) {
            // Skip (and touch) the whole pinned stretch.
            std::size_t len = npages - i;
            if (auto clear = bits.firstClearInRange(start + i,
                                                    npages - i)) {
                len = static_cast<std::size_t>(*clear - (start + i));
            }
            repl->onAccessRange(start + i, len);
            statPolicyAccesses += len;
            i += len;
            continue;
        }
        // Extent of this unpinned run, optionally extended past the
        // request by sequential pre-pinning (§6.5): "the user library
        // tries to pin a number of contiguous pages starting with
        // that page".
        std::size_t horizon = std::max(npages - i, cfg.prepinPages);
        std::size_t run = horizon;
        if (horizon > 1) {
            if (auto set = bits.firstSetInRange(start + i + 1,
                                                horizon - 1)) {
                run = static_cast<std::size_t>(*set - (start + i));
            }
        }

        if (!pinRun(start + i, run, res)) {
            res.ok = false;
            unlockRangeImpl(start, npages);
            statEnsureLatency.sample(sim::ticksToUs(res.cost));
            return res;
        }
        i += run;
    }
    unlockRangeImpl(start, npages);

    // Touch all requested pages for recency/frequency accounting.
    repl->onAccessRange(start, npages);
    statPolicyAccesses += npages;
    statEnsureLatency.sample(sim::ticksToUs(res.cost));
    return res;
}

bool
PinManager::releasePage(Vpn vpn)
{
    auto g = guard();
    if (!bits.test(vpn))
        return false;
    IoctlResult io =
        driver->ioctlUnpinAndInvalidate(homeShard, procId, vpn, 1);
    if (io.status != PinStatus::Ok || io.pagesDone != 1)
        return false;
    bits.clear(vpn);
    repl->onRemove(vpn);
    return true;
}

void
PinManager::audit(check::AuditReport &report) const
{
    bits.audit(report);

    report.component("pin-manager", procId);
    if (cfg.memLimitPages != 0) {
        report.require(bits.count() <= cfg.memLimitPages,
                       "%zu pinned pages exceed the %zu-page budget",
                       bits.count(), cfg.memLimitPages);
    }

    const mem::PinFacility &pins = driver->pinFacility();
    bits.forEachSet([&](mem::Vpn vpn) {
        report.require(pins.isPinned(procId, vpn),
                       "page %llu marked pinned in the bit vector but "
                       "not pinned in the kernel",
                       static_cast<unsigned long long>(vpn));
    });
    // Other users of the facility (per-process tables, exports) may
    // hold extra pins, but never fewer than the bit vector claims.
    report.require(pins.pinnedPages(procId) >= bits.count(),
                   "kernel holds %zu pinned pages but the bit vector "
                   "claims %zu",
                   pins.pinnedPages(procId), bits.count());

    for (const auto &[vpn, refcount] : locks) {
        report.require(refcount > 0,
                       "outstanding-send lock on page %llu has a zero "
                       "count",
                       static_cast<unsigned long long>(vpn));
        // §3.1: pages named in outstanding sends stay pinned until
        // the send completes — in-flight DMA must never target an
        // unpinned frame.
        report.require(bits.test(vpn) && pins.isPinned(procId, vpn),
                       "page %llu is locked for in-flight DMA but is "
                       "not pinned",
                       static_cast<unsigned long long>(vpn));
    }
}

} // namespace utlb::core
