/**
 * @file
 * Trace serialization.
 *
 * A simple line-oriented text format so traces can be saved,
 * inspected, diffed, and replayed by the trace_analysis example:
 *
 *     # utlb-trace v1
 *     <seq> <pid> <S|F> <va-hex> <nbytes>
 */

#ifndef UTLB_TRACE_TRACE_IO_HPP
#define UTLB_TRACE_TRACE_IO_HPP

#include <iosfwd>
#include <optional>
#include <string>

#include "trace/record.hpp"

namespace utlb::trace {

/** Serialize @p trace to @p os. */
void writeTrace(const Trace &trace, std::ostream &os);

/**
 * Parse a trace from @p is.
 * @return nullopt on malformed input.
 */
std::optional<Trace> readTrace(std::istream &is);

/** Write a trace to a file. @return false on I/O failure. */
bool saveTrace(const Trace &trace, const std::string &path);

/** Read a trace from a file. */
std::optional<Trace> loadTrace(const std::string &path);

} // namespace utlb::trace

#endif // UTLB_TRACE_TRACE_IO_HPP
