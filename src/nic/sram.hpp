/**
 * @file
 * Network-interface SRAM.
 *
 * The Myrinet PCI interface in the paper has 1 MB of SRAM holding the
 * firmware, per-process command posts, the Shared UTLB-Cache, and the
 * top-level UTLB page directories. This class models that store as a
 * byte array with a simple named-region bump allocator, so components
 * that claim SRAM contend for the same 1 MB budget the real board had.
 */

#ifndef UTLB_NIC_SRAM_HPP
#define UTLB_NIC_SRAM_HPP

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sim/stats.hpp"

namespace utlb::nic {

/** Offset of a region within NIC SRAM. */
using SramAddr = std::uint32_t;

/** Default SRAM capacity: 1 MB (LANai 4.2 board, §4.2). */
inline constexpr std::size_t kDefaultSramBytes = 1u << 20;

/**
 * NIC static RAM with named-region allocation.
 *
 * Regions are never freed individually (firmware data structures are
 * set up once at initialization, as on the real board); reset() wipes
 * everything.
 */
class Sram
{
  public:
    explicit Sram(std::size_t capacity = kDefaultSramBytes);

    std::size_t capacity() const { return bytes.size(); }
    std::size_t used() const { return nextFree; }
    std::size_t available() const { return bytes.size() - nextFree; }

    /**
     * Allocate @p size bytes for region @p name.
     * @return the region base, or nullopt if SRAM is exhausted.
     */
    std::optional<SramAddr> alloc(const std::string &name,
                                  std::size_t size);

    /** Base of a named region, or nullopt. */
    std::optional<SramAddr> regionBase(const std::string &name) const;

    /** Size of a named region, or 0. */
    std::size_t regionSize(const std::string &name) const;

    /** Read bytes from SRAM. */
    void read(SramAddr addr, std::span<std::uint8_t> out) const;

    /** Write bytes to SRAM. */
    void write(SramAddr addr, std::span<const std::uint8_t> in);

    /** Read one 32-bit word (little-endian). */
    std::uint32_t readWord(SramAddr addr) const;

    /** Write one 32-bit word (little-endian). */
    void writeWord(SramAddr addr, std::uint32_t value);

    /** Wipe all contents and regions. */
    void reset();

    /** This store's statistics subtree. */
    sim::StatGroup &stats() { return statsGrp; }
    const sim::StatGroup &stats() const { return statsGrp; }

  private:
    struct Region {
        std::string name;
        SramAddr base;
        std::size_t size;
    };

    void checkRange(SramAddr addr, std::size_t len) const;

    std::vector<std::uint8_t> bytes;
    std::vector<Region> regions;
    std::size_t nextFree = 0;

    sim::StatGroup statsGrp{"sram"};
    sim::Counter statAllocs{&statsGrp, "region_allocs",
                            "named regions claimed"};
    sim::Counter statAllocBytes{&statsGrp, "alloc_bytes",
                                "bytes claimed by regions"};
    mutable sim::Counter statReads{&statsGrp, "reads",
                                   "read accesses (byte spans and "
                                   "words)"};
    sim::Counter statWrites{&statsGrp, "writes",
                            "write accesses (byte spans and words)"};
};

} // namespace utlb::nic

#endif // UTLB_NIC_SRAM_HPP
