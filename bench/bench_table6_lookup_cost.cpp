/**
 * @file
 * Table 6: average translation lookup cost (us) for Barnes and FFT
 * at 1K/4K/16K cache entries, UTLB vs the interrupt-based approach
 * (infinite host memory, no prefetch, with index offsetting),
 * computed with the §6.2 cost equations over the measured miss
 * rates.
 */

#include "bench_common.hpp"

int
main()
{
    using namespace bench;
    using utlb::tlbsim::SimConfig;
    using utlb::tlbsim::simulateIntr;
    using utlb::tlbsim::simulateUtlb;

    TraceSet traces;
    const std::vector<std::string> apps{"barnes", "fft"};
    const std::vector<std::size_t> sizes{1024, 4096, 16384};

    // Paper values for side-by-side shape comparison.
    const std::map<std::pair<std::string, std::size_t>,
                   std::pair<double, double>>
        paper{
            {{"barnes", 1024}, {2.6, 4.9}},
            {{"barnes", 4096}, {2.5, 2.5}},
            {{"barnes", 16384}, {2.5, 1.9}},
            {{"fft", 1024}, {9.0, 21.7}},
            {{"fft", 4096}, {8.9, 20.9}},
            {{"fft", 16384}, {8.7, 14.8}},
        };

    utlb::sim::TextTable t(
        "Table 6: average lookup cost in us, UTLB vs Intr (infinite "
        "memory, no prefetch, offsetting) [paper values in brackets]");
    t.setHeader({"Cache", "barnes.UTLB", "barnes.Intr", "fft.UTLB",
                 "fft.Intr"});
    JsonReporter json("table6_lookup_cost");

    for (std::size_t entries : sizes) {
        SimConfig cfg;
        cfg.cache = {entries, 1, true};
        std::vector<std::string> row{sizeLabel(entries)};
        for (const auto &app : apps) {
            auto u = simulateUtlb(traces.get(app), cfg);
            auto i = simulateIntr(traces.get(app), cfg);
            auto p = paper.at({app, entries});
            json.add({{"app", app}, {"cache", sizeLabel(entries)}},
                     {{"utlb_us", u.avgLookupCostUs()},
                      {"intr_us", i.avgLookupCostUs()},
                      {"paper_utlb_us", p.first},
                      {"paper_intr_us", p.second}});
            row.push_back(rate(u.avgLookupCostUs()) + " ["
                          + utlb::sim::TextTable::num(p.first, 1)
                          + "]");
            row.push_back(rate(i.avgLookupCostUs()) + " ["
                          + utlb::sim::TextTable::num(p.second, 1)
                          + "]");
        }
        t.addRow(row);
    }
    t.print(std::cout);

    std::cout << "\nPaper shape checks: UTLB beats Intr at small "
                 "caches; Intr catches up (Barnes) as its miss rate "
                 "falls with cache size;\nFFT stays expensive for "
                 "both because page pinning dominates (§6.2).\n";
    return 0;
}
