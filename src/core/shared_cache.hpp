/**
 * @file
 * The Shared UTLB-Cache (§3.2, Figure 3).
 *
 * A process-tagged translation cache in NIC SRAM shared by all
 * processes using the board. Entries map (process, virtual page) to
 * a physical frame. The cache is direct-mapped or set-associative;
 * a process-dependent index offset ("a simple scheme to reduce the
 * conflict misses is to offset a translation table index by a
 * process-dependent constant", §3.2) hashes different processes'
 * pages to different sets.
 *
 * Cost model: a hit is the constant 0.8 us of Table 2. Because the
 * LANai firmware "can only check one cache entry at a time" (§6.3),
 * each additional way probed adds perWayProbeCost; this is what makes
 * set-associativity lose on lookup cost even when it wins on miss
 * rate (Table 8 discussion).
 *
 * Tag-width note: the paper stores an 8-bit address tag and a 4-bit
 * process tag per line and relies on the garbage page to absorb any
 * false hits. We store full tags, so a hit is always correct;
 * EXPERIMENTS.md discusses the (negligible) behavioural difference.
 */

#ifndef UTLB_CORE_SHARED_CACHE_HPP
#define UTLB_CORE_SHARED_CACHE_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "check/test_tamper.hpp"
#include "mem/page.hpp"
#include "nic/sram.hpp"
#include "nic/timing.hpp"
#include "sim/types.hpp"

namespace utlb::check {
class AuditReport;
} // namespace utlb::check

namespace utlb::core {

/** Static configuration of a Shared UTLB-Cache. */
struct CacheConfig {
    std::size_t entries = 8192;   //!< total entries (8 K = 32 KB, §4.2)
    unsigned assoc = 1;           //!< 1 (direct), 2, or 4 in the paper
    bool indexOffsetting = true;  //!< process-dependent index offset
};

/** An entry pushed out of the cache by an insertion. */
struct EvictedEntry {
    mem::ProcId pid;
    mem::Vpn vpn;
    mem::Pfn pfn;
};

/** Outcome of a cache probe, including the modeled firmware time. */
struct CacheProbe {
    bool hit = false;
    mem::Pfn pfn = mem::kInvalidPfn;
    sim::Tick cost = 0;
};

/**
 * The NIC-resident shared translation cache.
 *
 * Within a set, replacement is LRU (the firmware keeps a per-line
 * use stamp). The cache does not know about pinning; callers keep
 * it coherent by invalidating entries when pages are unpinned.
 */
class SharedUtlbCache
{
  public:
    /**
     * Build a cache. If @p board_sram is non-null the cache claims
     * its line storage (4 bytes per entry, as in the paper's 32 KB
     * for 8 K entries) from board SRAM and dies fatally if it does
     * not fit.
     */
    SharedUtlbCache(const CacheConfig &cfg, const nic::NicTimings &t,
                    nic::Sram *board_sram = nullptr);

    std::size_t entries() const { return config.entries; }
    unsigned assoc() const { return config.assoc; }
    std::size_t sets() const { return numSets; }
    const CacheConfig &cfg() const { return config; }

    /** Probe for (pid, vpn); updates LRU and hit/miss counters. */
    CacheProbe lookup(mem::ProcId pid, mem::Vpn vpn);

    /** Probe without updating state or counters. */
    std::optional<mem::Pfn> peek(mem::ProcId pid, mem::Vpn vpn) const;

    /**
     * Install a translation, evicting the set's LRU entry if the
     * set is full.
     * @return the displaced entry, if any.
     */
    std::optional<EvictedEntry>
    insert(mem::ProcId pid, mem::Vpn vpn, mem::Pfn pfn);

    /** Drop one translation. @return true if it was present. */
    bool invalidate(mem::ProcId pid, mem::Vpn vpn);

    /**
     * Forcibly evict the least recently used entry belonging to
     * @p pid (used by the interrupt-based baseline when a pin limit
     * forces it to shed a cached page).
     * @return the evicted entry, or nullopt if the process caches
     *         nothing.
     */
    std::optional<EvictedEntry> evictLruOfProcess(mem::ProcId pid);

    /** Drop all translations of a process. @return count dropped. */
    std::size_t invalidateProcess(mem::ProcId pid);

    /** Drop everything. */
    void clear();

    /** Number of currently valid entries. */
    std::size_t validEntries() const;

    /** Number of valid entries belonging to @p pid (occupancy). */
    std::size_t occupancyOf(mem::ProcId pid) const;

    /** The set index (pid, vpn) maps to; exposed for tests. */
    std::size_t setIndex(mem::ProcId pid, mem::Vpn vpn) const;

    /** @name Lifetime counters @{ */
    std::uint64_t hits() const { return numHits; }
    std::uint64_t misses() const { return numMisses; }
    std::uint64_t insertions() const { return numInserts; }
    std::uint64_t evictions() const { return numEvictions; }
    std::uint64_t invalidations() const { return numInvalidations; }
    /** @} */

    /** Reset counters (state untouched). */
    void resetStats();

    /**
     * Invariant auditor: every valid line indexes to the set it
     * lives in, no (pid, vpn) pair occupies two ways, and no LRU
     * stamp runs ahead of the use clock.
     */
    void audit(check::AuditReport &report) const;

  private:
    friend struct check::TestTamper;

    struct Line {
        bool valid = false;
        mem::ProcId pid = 0;
        mem::Vpn vpn = 0;
        mem::Pfn pfn = mem::kInvalidPfn;
        std::uint64_t lastUse = 0;
    };

    Line *findLine(mem::ProcId pid, mem::Vpn vpn, unsigned *probes);
    const Line *findLine(mem::ProcId pid, mem::Vpn vpn) const;

    CacheConfig config;
    const nic::NicTimings *timings;
    std::size_t numSets;
    std::vector<Line> lines;  //!< numSets * assoc, set-major
    std::uint64_t useClock = 0;

    std::uint64_t numHits = 0;
    std::uint64_t numMisses = 0;
    std::uint64_t numInserts = 0;
    std::uint64_t numEvictions = 0;
    std::uint64_t numInvalidations = 0;
};

} // namespace utlb::core

#endif // UTLB_CORE_SHARED_CACHE_HPP
