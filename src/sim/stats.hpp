/**
 * @file
 * Lightweight statistics package.
 *
 * Modeled loosely on gem5's stats: named scalar counters, averages,
 * and histograms that register themselves with a StatGroup and can be
 * dumped as text. Every simulator component that reports numbers in
 * the paper's tables exposes them through these types so the bench
 * harnesses can read them uniformly.
 */

#ifndef UTLB_SIM_STATS_HPP
#define UTLB_SIM_STATS_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace utlb::sim {

class JsonWriter;
class StatGroup;

/** Base class for all named statistics. */
class StatBase
{
  public:
    StatBase(StatGroup *parent, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return statName; }
    const std::string &desc() const { return statDesc; }

    /** Render "name value # desc" lines into @p os. */
    virtual void print(std::ostream &os) const = 0;

    /**
     * Render this stat as one keyed JSON object field of the form
     * "name": {"type": ..., "desc": ..., <type-specific values>}.
     */
    virtual void writeJson(JsonWriter &w) const = 0;

    /** Reset to the initial state. */
    virtual void reset() = 0;

  private:
    std::string statName;
    std::string statDesc;
};

/** A monotonically adjustable scalar counter. */
class Counter : public StatBase
{
  public:
    Counter(StatGroup *parent, std::string name, std::string desc)
        : StatBase(parent, std::move(name), std::move(desc))
    {}

    Counter &operator++() { ++val; return *this; }
    Counter &operator+=(std::uint64_t n) { val += n; return *this; }

    /**
     * Atomically add @p n with relaxed ordering. For counters that
     * sit off the hot path but can be bumped by concurrent threads
     * (e.g. coherence invalidations under per-set locks); hot-path
     * counters should accumulate into per-thread buffers and be
     * folded in with absorb() instead.
     */
    void addRelaxed(std::uint64_t n);

    /** Fold a per-thread delta in and zero it. */
    void absorb(std::uint64_t &delta)
    {
        val += delta;
        delta = 0;
    }

    std::uint64_t value() const { return val; }
    void set(std::uint64_t v) { val = v; }

    void print(std::ostream &os) const override;
    void writeJson(JsonWriter &w) const override;
    void reset() override { val = 0; }

  private:
    std::uint64_t val = 0;
};

/** An accumulating mean (sum / count). */
class Average : public StatBase
{
  public:
    Average(StatGroup *parent, std::string name, std::string desc)
        : StatBase(parent, std::move(name), std::move(desc))
    {}

    void sample(double v) { sum += v; ++count; }

    double mean() const { return count ? sum / count : 0.0; }
    std::uint64_t samples() const { return count; }
    double total() const { return sum; }

    void print(std::ostream &os) const override;
    void writeJson(JsonWriter &w) const override;
    void reset() override { sum = 0.0; count = 0; }

  private:
    double sum = 0.0;
    std::uint64_t count = 0;
};

/**
 * Shared accumulation core of Histogram and LocalHistogram: the
 * bucket geometry plus running counts/sum/extrema. One struct, one
 * sample() implementation — a thread-local buffer is thereby
 * guaranteed to accumulate with exactly the arithmetic the global
 * histogram uses, which the bit-exact absorb() contract depends on.
 */
struct HistAccum {
    HistAccum(double max, std::size_t buckets);

    void sample(double v);

    /**
     * Record @p n samples of the same value @p v. State-identical to
     * calling sample(v) @p n times — including the floating-point
     * accumulation order of the running sum — so batched hot paths
     * can fold equal-valued samples without perturbing the stats.
     */
    void sampleN(double v, std::uint64_t n);

    /**
     * Fold @p other in and reset it. When this accumulator holds no
     * samples the merge is bit-exact: counts add in integers, and an
     * empty running sum / min / max absorbs the other's values
     * unchanged (0.0 + x == x, min(+inf, x) == x). A stats snapshot
     * after merging therefore matches the sequential execution as
     * long as every sample of the stat went through a single buffer.
     */
    void absorb(HistAccum &other);

    void reset();

    double maxValBound;
    double bucketWidth;
    std::vector<std::uint64_t> counts;
    std::uint64_t overflow = 0;
    std::uint64_t total = 0;
    double sum = 0.0;
    double minVal = 0.0;
    double maxVal = 0.0;

    /**
     * Memoized bucket of the last in-range value sampled: hot paths
     * sample the same modeled cost over and over, and the divide is
     * most of sample()'s cost. Pure cache — identical bucket either
     * way — so the bit-exact absorb()/sampleN() contracts are
     * unaffected.
     */
    double lastVal = -1.0;   // negatives always go to overflow
    std::size_t lastIdx = 0;

    std::size_t bucketOf(double v)
    {
        if (v == lastVal)
            return lastIdx;
        auto idx = static_cast<std::size_t>(v / bucketWidth);
        if (idx >= counts.size())
            idx = counts.size() - 1;
        lastVal = v;
        lastIdx = idx;
        return idx;
    }
};

/**
 * A fixed-bucket histogram over [0, max) with uniform bucket width,
 * plus an overflow bucket.
 */
class Histogram : public StatBase
{
  public:
    Histogram(StatGroup *parent, std::string name, std::string desc,
              double max, std::size_t buckets);

    void sample(double v) { acc.sample(v); }

    /** See HistAccum::sampleN. */
    void sampleN(double v, std::uint64_t n) { acc.sampleN(v, n); }

    /** Fold a thread-local buffer in and reset it (see HistAccum). */
    void absorb(HistAccum &local) { acc.absorb(local); }

    /** A zeroed thread-local buffer with this histogram's geometry. */
    HistAccum makeLocal() const
    {
        return HistAccum(acc.maxValBound, acc.counts.size());
    }

    std::uint64_t bucketCount(std::size_t i) const
    {
        return acc.counts.at(i);
    }
    std::uint64_t overflowCount() const { return acc.overflow; }
    std::uint64_t samples() const { return acc.total; }
    double mean() const { return acc.total ? acc.sum / acc.total : 0.0; }
    double minSeen() const { return acc.minVal; }
    double maxSeen() const { return acc.maxVal; }

    double bucketWidthOf() const { return acc.bucketWidth; }
    std::size_t buckets() const { return acc.counts.size(); }

    void print(std::ostream &os) const override;
    void writeJson(JsonWriter &w) const override;
    void reset() override { acc.reset(); }

  private:
    HistAccum acc;
};

/**
 * A counter whose value is the sum of externally owned shard slots,
 * computed at read time. Sharded components (the driver's per-shard
 * stat blocks) register one slot per shard; reads and serialization
 * then see a current total without any cross-shard flush step.
 * Serializes exactly like Counter ("type": "counter"), so a stats
 * dump is indistinguishable from the monolithic layout.
 *
 * Thread contract: addSource() only during construction; value(),
 * writeJson(), and reset() only at quiescence (no writer holds a
 * shard lock), same as every other unlocked stats read in the tree.
 */
class MergedCounter : public StatBase
{
  public:
    MergedCounter(StatGroup *parent, std::string name, std::string desc)
        : StatBase(parent, std::move(name), std::move(desc))
    {}

    /** Register a shard's slot. The slot must outlive this stat. */
    void addSource(std::uint64_t *slot) { slots.push_back(slot); }

    std::uint64_t value() const
    {
        std::uint64_t sum = 0;
        for (const std::uint64_t *s : slots)
            sum += *s;
        return sum;
    }

    void print(std::ostream &os) const override;
    void writeJson(JsonWriter &w) const override;
    void reset() override
    {
        for (std::uint64_t *s : slots)
            *s = 0;
    }

  private:
    std::vector<std::uint64_t *> slots;
};

/**
 * A histogram whose samples live in externally owned per-shard
 * HistAccum buffers, merged at read time (copy each source, fold the
 * copies into an empty accumulator — sources are never disturbed).
 * Serializes exactly like Histogram ("type": "histogram").
 *
 * Exactness: counts, buckets, and overflow merge in integers and are
 * order-independent; when every sample of the stat went through a
 * single source the merge is bit-exact (HistAccum::absorb into an
 * empty accumulator), so a one-shard configuration reproduces the
 * monolithic histogram bit for bit. With samples spread over several
 * sources only the floating-point sum (hence the mean) can differ
 * from the sequential interleave in the last ulps.
 *
 * Same quiescent read contract as MergedCounter.
 */
class MergedHistogram : public StatBase
{
  public:
    MergedHistogram(StatGroup *parent, std::string name,
                    std::string desc, double max, std::size_t buckets)
        : StatBase(parent, std::move(name), std::move(desc)),
          shape(max, buckets)
    {}

    /** Register a shard's accumulator (must share the geometry). */
    void addSource(HistAccum *acc) { slots.push_back(acc); }

    /** A zeroed accumulator with this histogram's geometry. */
    HistAccum makeAccum() const
    {
        return HistAccum(shape.maxValBound, shape.counts.size());
    }

    /** The merged view (sources untouched). */
    HistAccum merged() const;

    std::uint64_t samples() const { return merged().total; }
    double mean() const
    {
        HistAccum m = merged();
        return m.total ? m.sum / m.total : 0.0;
    }

    void print(std::ostream &os) const override;
    void writeJson(JsonWriter &w) const override;
    void reset() override
    {
        for (HistAccum *s : slots)
            s->reset();
    }

  private:
    HistAccum shape;  //!< geometry only; never sampled
    std::vector<HistAccum *> slots;
};

/**
 * A group of statistics, optionally nested. Components own a
 * StatGroup and declare their stats as members referencing it.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return groupName; }

    /**
     * Attach an independently constructed group as a child of this
     * one. Components own their StatGroup without knowing the tree
     * they will end up in; the simulation harness adopts them into
     * its root after construction. The child must outlive this
     * group and must not be adopted twice.
     */
    void adopt(StatGroup &child) { addChild(&child); }

    /**
     * Detach a previously adopted child before it is destroyed
     * (e.g. when a process unregisters mid-run). No-op if @p child
     * is not a child of this group.
     */
    void disown(StatGroup &child) { removeChild(&child); }

    /** Dump this group's stats (and children's) to @p os. */
    void dump(std::ostream &os) const;

    /**
     * Serialize the whole subtree as one JSON object:
     * {"name": ..., "stats": {<stat name>: {...}, ...},
     *  "groups": [<child subtrees>]}. The keyed overload emits the
     * same object as a field of an enclosing object.
     */
    void writeJson(JsonWriter &w) const;
    void writeJson(JsonWriter &w, std::string_view key) const;

    /** Convenience: writeJson() into @p os as a full document. */
    void dumpJson(std::ostream &os) const;

    /** Reset all stats in this group and children. */
    void resetAll();

    /** Locate a stat by name within this group only, or nullptr. */
    const StatBase *find(const std::string &name) const;

  private:
    friend class StatBase;

    void writeBody(JsonWriter &w) const;

    void addStat(StatBase *stat) { stats.push_back(stat); }
    void addChild(StatGroup *child) { children.push_back(child); }
    void removeChild(StatGroup *child);

    std::string groupName;
    std::vector<StatBase *> stats;
    std::vector<StatGroup *> children;
};

} // namespace utlb::sim

#endif // UTLB_SIM_STATS_HPP
