#include "mem/address_space.hpp"

#include <algorithm>

#include "sim/log.hpp"

namespace utlb::mem {

using sim::fatal;

AddressSpace::~AddressSpace()
{
    unmapAll();
}

std::optional<Pfn>
AddressSpace::touch(Vpn vpn)
{
    auto it = table.find(vpn);
    if (it != table.end())
        return it->second;
    auto pfn = physMem->allocFrame(procId);
    if (!pfn)
        return std::nullopt;
    physMem->zeroFrame(*pfn);
    table.emplace(vpn, *pfn);
    return pfn;
}

std::optional<Pfn>
AddressSpace::lookup(Vpn vpn) const
{
    auto it = table.find(vpn);
    if (it == table.end())
        return std::nullopt;
    return it->second;
}

std::optional<PhysAddr>
AddressSpace::translate(VirtAddr va)
{
    auto pfn = touch(pageOf(va));
    if (!pfn)
        return std::nullopt;
    return frameAddr(*pfn) + offsetOf(va);
}

void
AddressSpace::unmap(Vpn vpn)
{
    auto it = table.find(vpn);
    if (it == table.end())
        return;
    physMem->freeFrame(it->second);
    table.erase(it);
}

void
AddressSpace::unmapAll()
{
    for (const auto &[vpn, pfn] : table)
        physMem->freeFrame(pfn);
    table.clear();
}

void
AddressSpace::readBytes(VirtAddr va, std::span<std::uint8_t> out)
{
    std::size_t done = 0;
    while (done < out.size()) {
        std::size_t in_page = std::min(out.size() - done,
                                       kPageSize - offsetOf(va + done));
        auto pa = translate(va + done);
        if (!pa)
            fatal("readBytes: out of physical memory");
        physMem->read(*pa, out.subspan(done, in_page));
        done += in_page;
    }
}

void
AddressSpace::writeBytes(VirtAddr va, std::span<const std::uint8_t> in)
{
    std::size_t done = 0;
    while (done < in.size()) {
        std::size_t in_page = std::min(in.size() - done,
                                       kPageSize - offsetOf(va + done));
        auto pa = translate(va + done);
        if (!pa)
            fatal("writeBytes: out of physical memory");
        physMem->write(*pa, in.subspan(done, in_page));
        done += in_page;
    }
}

} // namespace utlb::mem
