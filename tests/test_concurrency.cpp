/**
 * @file
 * Concurrency suite: golden equivalence and race hammering.
 *
 * Concurrent mode (UtlbConfig::concurrent) promises two things:
 *
 *  1. With a single worker it is *bit-identical* to the sequential
 *     path — same results, same modeled costs, same serialized stats
 *     tree. Threading may only change wall-clock. The golden tests
 *     here replay randomized workloads through a sequential and a
 *     concurrent-mode stack and compare everything, in the style of
 *     test_batched_range.cpp.
 *
 *  2. With many workers it is *safe*: overlapping pins, unpins,
 *     send-locks, probes, and miss-fill installs from concurrent
 *     threads leave every structure coherent. The hammer tests run
 *     real threads over shared PinManagers, the shared cache, and
 *     full multi-process stacks, then re-derive the invariants with
 *     the auditors. Run them under UTLB_SANITIZE=thread to turn the
 *     suite into a race detector.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "check/audit.hpp"
#include "core/driver.hpp"
#include "core/pin_manager.hpp"
#include "core/shared_cache.hpp"
#include "core/utlb.hpp"
#include "mem/address_space.hpp"
#include "mem/phys_memory.hpp"
#include "mem/pinning.hpp"
#include "nic/sram.hpp"
#include "nic/timing.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"

namespace {

using namespace utlb::core;
using utlb::check::AuditReport;
using utlb::mem::Vpn;
using utlb::sim::Rng;

// ---------------------------------------------------------------------
// Golden equivalence: concurrent mode at one worker vs sequential
// ---------------------------------------------------------------------

/** A full single-NIC stack with the simulator's stats tree shape. */
struct Harness {
    utlb::mem::PhysMemory phys;
    utlb::mem::PinFacility pins;
    utlb::nic::Sram sram;
    utlb::nic::NicTimings timings;
    HostCosts costs;
    SharedUtlbCache cache;
    UtlbDriver driver;
    std::unique_ptr<utlb::mem::AddressSpace> space;
    std::unique_ptr<UserUtlb> utlb;
    utlb::sim::StatGroup root{"stack"};

    Harness(std::size_t entries, const UtlbConfig &ucfg)
        : phys(4096), sram(1u << 20),
          costs(HostProfile::PentiumIINT),
          cache(CacheConfig{entries, 1, true}, timings, &sram),
          driver(phys, pins, sram, cache, costs)
    {
        space = std::make_unique<utlb::mem::AddressSpace>(1, phys);
        driver.registerProcess(*space);
        utlb = std::make_unique<UserUtlb>(driver, cache, timings, 1,
                                          ucfg);
        root.adopt(cache.stats());
        root.adopt(driver.stats());
        root.adopt(pins.stats());
        root.adopt(sram.stats());
        root.adopt(utlb->stats());
    }

    std::string
    statsDump()
    {
        // In concurrent mode, buffered shard deltas must be folded
        // in before the tree is serialized.
        utlb->flushShardStats();
        std::ostringstream os;
        root.dumpJson(os);
        return os.str();
    }
};

void
expectSameTranslation(const Translation &a, const Translation &b,
                      const std::string &where)
{
    EXPECT_EQ(a.ok, b.ok) << where;
    EXPECT_EQ(a.pageAddrs, b.pageAddrs) << where;
    EXPECT_EQ(a.hostCost, b.hostCost) << where;
    EXPECT_EQ(a.nicCost, b.nicCost) << where;
    EXPECT_EQ(a.pinCost, b.pinCost) << where;
    EXPECT_EQ(a.unpinCost, b.unpinCost) << where;
    EXPECT_EQ(a.checkMiss, b.checkMiss) << where;
    EXPECT_EQ(a.niMisses, b.niMisses) << where;
    EXPECT_EQ(a.pagesPinned, b.pagesPinned) << where;
    EXPECT_EQ(a.pagesUnpinned, b.pagesUnpinned) << where;
    EXPECT_EQ(a.pinIoctls, b.pinIoctls) << where;
    EXPECT_EQ(a.unpinIoctls, b.unpinIoctls) << where;
    EXPECT_EQ(a.faults, b.faults) << where;
    EXPECT_EQ(a.missPages, b.missPages) << where;
}

/**
 * Replay the same randomized workload through a sequential-mode and
 * a concurrent-mode stack (both single-threaded); every call and the
 * final stats tree must match exactly. @p batched selects
 * translateRange() (the lookupRun/hitViaRef MT twins) vs
 * translate() (the lookup/insert MT twins).
 */
void
runGolden(std::size_t entries, std::size_t prefetch,
          std::size_t memlimit, bool batched, std::uint64_t seed)
{
    UtlbConfig seqCfg;
    seqCfg.prefetchEntries = prefetch;
    seqCfg.pin.memLimitPages = memlimit;
    seqCfg.pin.seed = seed;
    UtlbConfig mtCfg = seqCfg;
    mtCfg.concurrent = true;

    Harness seq(entries, seqCfg);
    Harness mt(entries, mtCfg);
    ASSERT_TRUE(mt.utlb->concurrent());
    ASSERT_TRUE(mt.cache.concurrent());

    Rng rng(seed ^ 0xc0ffeeULL);
    constexpr std::size_t kBufPages = 512;
    for (int call = 0; call < 300; ++call) {
        Vpn startPage;
        std::size_t npages;
        switch (rng.below(4)) {
        case 0:
            startPage = rng.below(8);
            npages = 1;
            break;
        case 1:
            startPage = rng.below(kBufPages);
            npages = 1 + rng.below(8);
            break;
        default:
            startPage = rng.below(kBufPages);
            npages = 1 + rng.below(96);
            break;
        }
        std::uint64_t offset = rng.below(utlb::mem::kPageSize);
        utlb::mem::VirtAddr va =
            startPage * utlb::mem::kPageSize + offset;
        std::size_t nbytes = npages * utlb::mem::kPageSize
            - offset - rng.below(utlb::mem::kPageSize - offset + 1);
        if (nbytes == 0)
            nbytes = 1;

        Translation a = batched ? seq.utlb->translateRange(va, nbytes)
                                : seq.utlb->translate(va, nbytes);
        Translation b = batched ? mt.utlb->translateRange(va, nbytes)
                                : mt.utlb->translate(va, nbytes);
        expectSameTranslation(a, b, "call " + std::to_string(call));
        if (::testing::Test::HasFailure())
            return;
    }
    EXPECT_EQ(seq.statsDump(), mt.statsDump());

    // Both stacks must also still satisfy every invariant.
    AuditReport report;
    mt.cache.audit(report);
    mt.driver.audit(report);
    mt.utlb->pinManager().audit(report);
    EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(ConcurrentGolden, PerPageNoLimit)
{
    runGolden(1024, 1, 0, false, 11);
}

TEST(ConcurrentGolden, PerPagePrefetchWide)
{
    runGolden(256, 8, 0, false, 12);
}

TEST(ConcurrentGolden, PerPageMemLimit)
{
    // The pin budget forces unpins, exercising the concurrent-mode
    // invalidate() (stripe-locked coherence drop) against the
    // sequential one.
    runGolden(1024, 4, 64, false, 13);
}

TEST(ConcurrentGolden, BatchedNoLimit)
{
    runGolden(1024, 1, 0, true, 14);
}

TEST(ConcurrentGolden, BatchedPrefetchWide)
{
    runGolden(256, 8, 0, true, 15);
}

TEST(ConcurrentGolden, BatchedMemLimit)
{
    runGolden(1024, 4, 64, true, 16);
}

TEST(ConcurrentGolden, BatchedSmallCacheEvictions)
{
    // A 64-entry cache under a 512-page working set keeps the
    // insertMT eviction path busy.
    runGolden(64, 4, 0, true, 17);
}

// ---------------------------------------------------------------------
// PinManager: concurrent pin/unpin/lock hammering over one manager
// ---------------------------------------------------------------------

/** Stack pieces for driving PinManagers without a UserUtlb. */
struct PinStack {
    utlb::mem::PhysMemory phys;
    utlb::mem::PinFacility pins;
    utlb::nic::Sram sram;
    utlb::nic::NicTimings timings;
    HostCosts costs;
    SharedUtlbCache cache;
    UtlbDriver driver;
    std::unique_ptr<utlb::mem::AddressSpace> space;

    explicit PinStack(std::size_t frames = 8192)
        : phys(frames), sram(1u << 20),
          costs(HostProfile::PentiumIINT),
          cache(CacheConfig{1024, 1, true}, timings, &sram),
          driver(phys, pins, sram, cache, costs)
    {
        cache.enableConcurrent();
        space = std::make_unique<utlb::mem::AddressSpace>(1, phys);
        driver.registerProcess(*space);
    }
};

TEST(ConcurrentPinManager, OverlappingEnsureReleaseAndLocks)
{
    PinStack stack;
    PinManagerConfig cfg;
    cfg.memLimitPages = 256;  // forces evictions under contention
    PinManager mgr(stack.driver, 1, cfg);
    mgr.enableConcurrent();

    constexpr unsigned kThreads = 4;
    constexpr int kOpsPerThread = 400;
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&mgr, t] {
            // Overlapping 128-page windows: thread t works
            // [t*64, t*64 + 128), so each window is shared with its
            // neighbours and pages are pinned, released, and
            // send-locked by competing threads.
            Rng rng(0xabc0 + t);
            const Vpn base = t * 64;
            for (int op = 0; op < kOpsPerThread; ++op) {
                Vpn start = base + rng.below(96);
                std::size_t n = 1 + rng.below(32);
                switch (rng.below(4)) {
                case 0: {
                    EnsureResult r = mgr.ensurePinned(start, n);
                    // Under a shared budget a request can fail when
                    // competitors hold everything locked; it must
                    // never misreport success.
                    if (r.ok) {
                        EXPECT_GE(r.cost, r.pinCost + r.unpinCost);
                    }
                    break;
                }
                case 1:
                    mgr.releasePage(start);
                    break;
                case 2:
                    mgr.lockRange(start, n);
                    mgr.isLocked(start + n / 2);
                    mgr.unlockRange(start, n);
                    break;
                default:
                    mgr.isPinned(start);
                    mgr.pinnedPages();
                    break;
                }
            }
        });
    }
    for (auto &w : workers)
        w.join();

    // Quiescent: the bit vector, policy, kernel facility, and
    // outstanding-lock table must all agree.
    AuditReport report;
    mgr.audit(report);
    stack.driver.audit(report);
    EXPECT_TRUE(report.ok()) << report.summary();
    // All send-locks were released.
    EXPECT_FALSE(mgr.isLocked(0));
    if (cfg.memLimitPages != 0) {
        EXPECT_LE(mgr.pinnedPages(), cfg.memLimitPages);
    }
}

TEST(ConcurrentPinManager, PinPathVsCacheLookups)
{
    // One thread drives the pin/unpin slow path (whose unpins issue
    // stripe-locked cache invalidates) while others hammer lookups
    // and installs on the same cache sets: the §4 coherence rule —
    // an unpinned page's translation must not survive anywhere —
    // races directly against probes here.
    PinStack stack;
    PinManagerConfig cfg;
    cfg.memLimitPages = 64;
    PinManager mgr(stack.driver, 1, cfg);
    mgr.enableConcurrent();

    std::atomic<bool> stop{false};
    std::atomic<unsigned> ready{0};
    std::atomic<std::uint64_t> probes{0};

    std::vector<std::thread> lookers;
    for (unsigned t = 0; t < 3; ++t) {
        lookers.emplace_back([&stack, &stop, &ready, &probes, t] {
            SharedUtlbCache::Shard sh = stack.cache.makeShard();
            Rng rng(0x10c + t);
            std::uint64_t n = 0;
            do {
                Vpn vpn = rng.below(256);
                CacheProbe p = stack.cache.lookupMT(1, vpn, sh);
                if (!p.hit && rng.below(4) == 0) {
                    stack.cache.insertMT(1, vpn, 0x1000 + vpn,
                                         InsertMode::Demand, sh);
                }
                if (++n == 1)
                    ready.fetch_add(1, std::memory_order_release);
            } while (!stop.load(std::memory_order_relaxed));
            probes.fetch_add(n, std::memory_order_relaxed);
            stack.cache.absorbShard(sh);
        });
    }

    // On a loaded (or single-core) host the pin rounds below could
    // otherwise finish before the lookers ever get scheduled.
    while (ready.load(std::memory_order_acquire) < 3)
        std::this_thread::yield();

    for (int round = 0; round < 200; ++round) {
        Vpn start = static_cast<Vpn>((round * 7) % 192);
        mgr.ensurePinned(start, 1 + (round % 16));
    }
    stop.store(true, std::memory_order_relaxed);
    for (auto &w : lookers)
        w.join();

    EXPECT_GT(probes.load(), 0u);
    AuditReport report;
    stack.cache.audit(report);
    mgr.audit(report);
    stack.driver.audit(report);
    EXPECT_TRUE(report.ok()) << report.summary();
}

// ---------------------------------------------------------------------
// SharedUtlbCache: cross-thread probe/install/invalidate stress
// ---------------------------------------------------------------------

TEST(ConcurrentCache, SharedSetsStressAuditsClean)
{
    utlb::nic::NicTimings timings;
    SharedUtlbCache cache(CacheConfig{512, 1, true}, timings);
    cache.enableConcurrent();

    constexpr unsigned kThreads = 4;
    constexpr int kOps = 20000;
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&cache, t] {
            SharedUtlbCache::Shard sh = cache.makeShard();
            Rng rng(0x5ca1ab1e + t);
            std::vector<utlb::mem::Pfn> pfns(64);
            for (int op = 0; op < kOps; ++op) {
                // Two pids over one vpn window: with index
                // offsetting their sets interleave, so every stripe
                // sees cross-pid contention.
                utlb::mem::ProcId pid = 1 + rng.below(2);
                Vpn vpn = rng.below(1024);
                switch (rng.below(4)) {
                case 0:
                    cache.lookupMT(pid, vpn, sh);
                    break;
                case 1:
                    cache.insertMT(pid, vpn, 0x2000 + vpn,
                                   rng.below(4) == 0
                                       ? InsertMode::Prefetch
                                       : InsertMode::Demand,
                                   sh);
                    break;
                case 2:
                    cache.lookupRunMT(pid, vpn, 1 + rng.below(64),
                                      pfns.data(), nullptr, sh);
                    break;
                default:
                    cache.invalidate(pid, vpn);
                    break;
                }
            }
            cache.absorbShard(sh);
        });
    }
    for (auto &w : workers)
        w.join();

    // With every shard folded in, the audit's removal-taxonomy
    // conservation must balance exactly: each insertMT outcome was
    // classified under its stripe lock.
    AuditReport report;
    cache.audit(report);
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_GT(cache.hits() + cache.misses(), 0u);
    EXPECT_GT(cache.insertions(), 0u);
}

TEST(ConcurrentCache, StampBlocksStayMonotonicPerWorker)
{
    // A worker's LRU stamps must be strictly increasing even across
    // stamp-block refills, or LRU decisions within one thread would
    // reorder. Driven via insertMT into distinct sets, then audited
    // (the audit checks every stamp against the use clock).
    utlb::nic::NicTimings timings;
    SharedUtlbCache cache(CacheConfig{4096, 1, true}, timings);
    cache.enableConcurrent();
    SharedUtlbCache::Shard sh = cache.makeShard();
    // More inserts than one 1024-stamp block to force refills.
    for (Vpn v = 0; v < 3000; ++v)
        cache.insertMT(1, v, 0x3000 + v, InsertMode::Demand, sh);
    cache.absorbShard(sh);
    AuditReport report;
    cache.audit(report);
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_EQ(cache.insertions(), 3000u);
}

// ---------------------------------------------------------------------
// Full stack: N processes translating in parallel
// ---------------------------------------------------------------------

TEST(ConcurrentStack, ParallelProcessesTranslateCoherently)
{
    constexpr unsigned kWorkers = 4;
    constexpr std::size_t kPagesPerWorker = 256;

    utlb::mem::PhysMemory phys(16384);
    utlb::mem::PinFacility pins;
    utlb::nic::Sram sram(4u << 20);
    utlb::nic::NicTimings timings;
    HostCosts costs(HostProfile::PentiumIINT);
    SharedUtlbCache cache(CacheConfig{8192, 1, true}, timings, &sram);
    UtlbDriver driver(phys, pins, sram, cache, costs);

    // Registration happens before any worker starts (quiescence rule).
    std::vector<std::unique_ptr<utlb::mem::AddressSpace>> spaces;
    std::vector<std::unique_ptr<UserUtlb>> views;
    for (unsigned t = 0; t < kWorkers; ++t) {
        auto pid = static_cast<utlb::mem::ProcId>(t + 1);
        spaces.push_back(
            std::make_unique<utlb::mem::AddressSpace>(pid, phys));
        driver.registerProcess(*spaces.back());
        UtlbConfig ucfg;
        ucfg.concurrent = true;
        ucfg.prefetchEntries = 8;
        ucfg.pin.memLimitPages = 128;  // forces unpin/invalidate races
        views.push_back(std::make_unique<UserUtlb>(
            driver, cache, timings, pid, ucfg));
    }

    std::vector<std::thread> workers;
    std::vector<std::size_t> pagesDone(kWorkers, 0);
    for (unsigned t = 0; t < kWorkers; ++t) {
        workers.emplace_back([&views, &pagesDone, t] {
            UserUtlb &u = *views[t];
            Rng rng(0xdead + t);
            std::size_t done = 0;
            for (int call = 0; call < 200; ++call) {
                Vpn start = rng.below(kPagesPerWorker);
                std::size_t n = 1 + rng.below(32);
                Translation tr = u.translateRange(
                    start * utlb::mem::kPageSize,
                    n * utlb::mem::kPageSize);
                ASSERT_TRUE(tr.ok) << "worker " << t;
                ASSERT_EQ(tr.pageAddrs.size(), n);
                done += n;
            }
            pagesDone[t] = done;
        });
    }
    for (auto &w : workers)
        w.join();

    for (unsigned t = 0; t < kWorkers; ++t) {
        EXPECT_GT(pagesDone[t], 0u) << "worker " << t;
        views[t]->flushShardStats();
    }

    AuditReport report;
    cache.audit(report);
    driver.audit(report);
    for (auto &v : views)
        v->pinManager().audit(report);
    EXPECT_TRUE(report.ok()) << report.summary();

    // Spot-check coherence after quiescing: every page a worker
    // still holds pinned translates to the same frame the kernel
    // facility recorded.
    for (unsigned t = 0; t < kWorkers; ++t) {
        auto pid = static_cast<utlb::mem::ProcId>(t + 1);
        const PinManager &mgr = views[t]->pinManager();
        for (Vpn v = 0; v < 8; ++v) {
            if (!mgr.isPinned(v))
                continue;
            EXPECT_TRUE(pins.isPinned(pid, v));
        }
    }
}

} // namespace
