#include "core/translation_table.hpp"

#include <cstring>
#include <span>

#include "check/audit.hpp"
#include "check/check.hpp"
#include "sim/log.hpp"

namespace utlb::core {

using mem::Pfn;
using mem::Vpn;
using sim::fatal;
using sim::panic;

// ---------------------------------------------------------------------
// NicTranslationTable
// ---------------------------------------------------------------------

NicTranslationTable::NicTranslationTable(nic::Sram &board_sram,
                                         mem::ProcId pid,
                                         std::size_t entries,
                                         mem::Pfn garbage_frame)
    : sram(&board_sram), procId(pid), numEntries(entries),
      garbagePfn(garbage_frame)
{
    if (entries == 0)
        fatal("per-process UTLB table requires at least one entry");
    auto addr = sram->alloc("utlb-table." + std::to_string(pid),
                            entries * 4);
    if (!addr)
        fatal("NIC SRAM exhausted allocating %zu-entry table for "
              "pid %u", entries, pid);
    base = *addr;
    for (std::size_t i = 0; i < entries; ++i)
        sram->writeWord(base + static_cast<nic::SramAddr>(i * 4),
                        static_cast<std::uint32_t>(garbage_frame));
}

NicTranslationTable::~NicTranslationTable()
{
    // Return the region so a churning fleet can recycle the board:
    // the driver serializes this (unregister path) against creates.
    sram->free("utlb-table." + std::to_string(procId));
}

void
NicTranslationTable::install(UtlbIndex index, Pfn pfn)
{
    if (index >= numEntries)
        panic("install at out-of-range UTLB index %u", index);
    if (!isValid(index) && pfn != garbagePfn)
        ++numValid;
    else if (isValid(index) && pfn == garbagePfn)
        --numValid;
    sram->writeWord(base + index * 4, static_cast<std::uint32_t>(pfn));
}

void
NicTranslationTable::invalidate(UtlbIndex index)
{
    install(index, garbagePfn);
}

Pfn
NicTranslationTable::entry(UtlbIndex index) const
{
    // User-submitted indices are deliberately not validated: the
    // garbage-page initialization makes any slot safe to use, and an
    // out-of-range index simply behaves like a garbage slot.
    if (index >= numEntries)
        return garbagePfn;
    return sram->readWord(base + index * 4);
}

bool
NicTranslationTable::isValid(UtlbIndex index) const
{
    return index < numEntries && entry(index) != garbagePfn;
}

void
NicTranslationTable::audit(check::AuditReport &report) const
{
    report.component("nic-table", procId);
    report.require(base + numEntries * 4 <= sram->capacity(),
                   "table region [%u, +%zu slots) exceeds SRAM "
                   "capacity %zu",
                   base, numEntries, sram->capacity());
    report.require(numValid <= numEntries,
                   "valid count %zu exceeds table size %zu",
                   numValid, numEntries);

    std::size_t live = 0;
    for (std::size_t i = 0; i < numEntries; ++i) {
        if (sram->readWord(base + static_cast<nic::SramAddr>(i * 4))
            != garbagePfn) {
            ++live;
        }
    }
    report.require(live == numValid,
                   "cached valid count %zu != SRAM recount %zu",
                   numValid, live);
}

// ---------------------------------------------------------------------
// HostPageTable
// ---------------------------------------------------------------------

namespace {

constexpr std::uint64_t kValidBit = std::uint64_t{1} << 63;

} // namespace

// ---- LeafDir --------------------------------------------------------

HostPageTable::DirEntry *
HostPageTable::LeafDir::find(std::uint64_t key)
{
    return const_cast<DirEntry *>(
        static_cast<const LeafDir *>(this)->find(key));
}

const HostPageTable::DirEntry *
HostPageTable::LeafDir::find(std::uint64_t key) const
{
    if (slots.empty())
        return nullptr;
    std::size_t i = probeStart(key);
    for (;;) {
        const Slot &s = slots[i];
        if (s.key == key)
            return &s.de;
        if (s.key == kEmptyKey)
            return nullptr;
        i = (i + 1) & (slots.size() - 1);
    }
}

HostPageTable::DirEntry &
HostPageTable::LeafDir::insertNoGrow(std::uint64_t key)
{
    std::size_t i = probeStart(key);
    std::size_t tomb = ~std::size_t{0};
    for (;;) {
        Slot &s = slots[i];
        if (s.key == kEmptyKey) {
            if (tomb != ~std::size_t{0}) {
                i = tomb;
                --tombs;
            }
            slots[i].key = key;
            slots[i].de = DirEntry{};
            ++live;
            return slots[i].de;
        }
        if (s.key == kTombKey && tomb == ~std::size_t{0})
            tomb = i;
        i = (i + 1) & (slots.size() - 1);
    }
}

HostPageTable::DirEntry &
HostPageTable::LeafDir::findOrCreate(std::uint64_t key, bool &inserted)
{
    if (DirEntry *de = find(key)) {
        inserted = false;
        return *de;
    }
    // Keep the load factor (live + tombstones) under 3/4; a
    // tombstone-heavy table rehashes in place at the same capacity.
    if ((live + tombs + 1) * 4 >= slots.size() * 3)
        grow();
    inserted = true;
    return insertNoGrow(key);
}

void
HostPageTable::LeafDir::erase(std::uint64_t key)
{
    if (slots.empty())
        return;
    std::size_t i = probeStart(key);
    for (;;) {
        Slot &s = slots[i];
        if (s.key == key) {
            s.key = kTombKey;
            s.de = DirEntry{};
            --live;
            ++tombs;
            return;
        }
        if (s.key == kEmptyKey)
            return;
        i = (i + 1) & (slots.size() - 1);
    }
}

void
HostPageTable::LeafDir::grow()
{
    std::size_t new_cap;
    if (slots.empty())
        new_cap = 16;
    else if (live * 2 >= slots.size())
        new_cap = slots.size() * 2;
    else
        new_cap = slots.size();  // tombstone cleanup only
    std::vector<Slot> old = std::move(slots);
    slots.assign(new_cap, Slot{});
    live = 0;
    tombs = 0;
    for (Slot &s : old) {
        if (s.key <= kMaxKey)
            insertNoGrow(s.key) = std::move(s.de);
    }
}

// ---- HostPageTable --------------------------------------------------

HostPageTable::HostPageTable(mem::PhysMemory &host_mem, mem::ProcId pid,
                             nic::Sram *board_sram,
                             std::size_t dir_slots)
    : hostMem(&host_mem), procId(pid),
      statsGrp("host_table" + std::to_string(pid))
{
    if (board_sram) {
        // The top-level directory lives in NIC SRAM (§3.3) so that a
        // cache miss costs one SRAM reference plus one DMA.
        auto addr = board_sram->alloc(
            "utlb-dir." + std::to_string(pid), dir_slots * 4);
        if (!addr)
            fatal("NIC SRAM exhausted allocating UTLB directory for "
                  "pid %u", pid);
        boardSram = board_sram;
    }
}

HostPageTable::~HostPageTable()
{
    dir.forEach([this](std::uint64_t, DirEntry &de) {
        if (!de.swapped && de.leafFrame != mem::kInvalidPfn)
            hostMem->freeFrame(de.leafFrame);
    });
    if (boardSram)
        boardSram->free("utlb-dir." + std::to_string(procId));
}

HostPageTable::DirEntry *
HostPageTable::residentLeaf(Vpn vpn)
{
    DirEntry *de = dir.find(dirIndexOf(vpn));
    if (!de || de->swapped)
        return nullptr;
    return de;
}

const HostPageTable::DirEntry *
HostPageTable::residentLeaf(Vpn vpn) const
{
    const DirEntry *de = dir.find(dirIndexOf(vpn));
    if (!de || de->swapped)
        return nullptr;
    return de;
}

std::uint64_t
HostPageTable::entryAddr(const DirEntry &de, Vpn vpn) const
{
    return mem::frameAddr(de.leafFrame)
        + (vpn % kLeafEntries) * sizeof(std::uint64_t);
}

bool
HostPageTable::set(Vpn vpn, Pfn pfn)
{
    bool inserted = false;
    DirEntry &de = dir.findOrCreate(dirIndexOf(vpn), inserted);
    if (inserted) {
        auto frame = hostMem->allocFrame(kKernelPid);
        if (!frame) {
            dir.erase(dirIndexOf(vpn));
            return false;
        }
        hostMem->zeroFrame(*frame);
        de.leafFrame = *frame;
    } else if (de.swapped) {
        if (!swapInLeaf(vpn))
            return false;
    }

    std::uint64_t word = kValidBit | pfn;
    std::uint8_t buf[8];
    std::memcpy(buf, &word, 8);

    // Track the valid count by reading the previous word.
    std::uint8_t prev[8];
    hostMem->read(entryAddr(de, vpn), prev);
    std::uint64_t prev_word;
    std::memcpy(&prev_word, prev, 8);
    if (!(prev_word & kValidBit))
        ++numValid;

    hostMem->write(entryAddr(de, vpn), buf);
    ++statInstalls;
    return true;
}

bool
HostPageTable::clear(Vpn vpn)
{
    DirEntry *de = residentLeaf(vpn);
    if (!de)
        return false;
    std::uint8_t buf[8];
    hostMem->read(entryAddr(*de, vpn), buf);
    std::uint64_t word;
    std::memcpy(&word, buf, 8);
    if (!(word & kValidBit))
        return false;
    word = 0;
    std::memcpy(buf, &word, 8);
    hostMem->write(entryAddr(*de, vpn), buf);
    --numValid;
    ++statClears;
    return true;
}

std::optional<Pfn>
HostPageTable::get(Vpn vpn) const
{
    const DirEntry *de = residentLeaf(vpn);
    if (!de)
        return std::nullopt;
    std::uint8_t buf[8];
    hostMem->read(entryAddr(*de, vpn), buf);
    std::uint64_t word;
    std::memcpy(&word, buf, 8);
    if (!(word & kValidBit))
        return std::nullopt;
    return word & ~kValidBit;
}

std::vector<std::optional<Pfn>>
HostPageTable::readRun(Vpn vpn, std::size_t n) const
{
    std::vector<std::optional<Pfn>> out;
    readRun(vpn, n, out);
    return out;
}

void
HostPageTable::readRun(Vpn vpn, std::size_t n,
                       std::vector<std::optional<Pfn>> &out) const
{
    out.clear();
    const DirEntry *de = residentLeaf(vpn);
    if (!de)
        return;

    // The fill thread and a sync-path caller can read the same
    // process' table concurrently (serviceMiss holds no lock here);
    // the bump must not tear.
    statRunReads.addRelaxed(1);
    std::size_t in_leaf = kLeafEntries
        - static_cast<std::size_t>(vpn % kLeafEntries);
    std::size_t count = std::min(n, in_leaf);
    out.reserve(count);

    // The run never crosses the leaf boundary, so it is one
    // physically contiguous block — read it in a single transfer,
    // like the DMA it models.
    std::uint8_t buf[mem::kPageSize];
    hostMem->read(entryAddr(*de, vpn), std::span(buf, count * 8));
    for (std::size_t i = 0; i < count; ++i) {
        std::uint64_t word;
        std::memcpy(&word, buf + i * 8, 8);
        if (word & kValidBit)
            out.emplace_back(word & ~kValidBit);
        else
            out.emplace_back(std::nullopt);
    }
}

bool
HostPageTable::swapOutLeaf(Vpn vpn)
{
    DirEntry *de = residentLeaf(vpn);
    if (!de)
        return false;
    de->diskBlock.resize(mem::kPageSize);
    hostMem->read(mem::frameAddr(de->leafFrame), de->diskBlock);
    hostMem->freeFrame(de->leafFrame);
    de->leafFrame = mem::kInvalidPfn;
    de->swapped = true;
    ++statSwapOuts;
    return true;
}

bool
HostPageTable::swapInLeaf(Vpn vpn)
{
    DirEntry *found = dir.find(dirIndexOf(vpn));
    if (!found || !found->swapped)
        return false;
    DirEntry &de = *found;
    auto frame = hostMem->allocFrame(kKernelPid);
    if (!frame)
        return false;
    de.leafFrame = *frame;
    hostMem->write(mem::frameAddr(de.leafFrame), de.diskBlock);
    de.diskBlock.clear();
    de.diskBlock.shrink_to_fit();
    de.swapped = false;
    ++statSwapIns;
    return true;
}

bool
HostPageTable::leafSwappedOut(Vpn vpn) const
{
    const DirEntry *de = dir.find(dirIndexOf(vpn));
    return de && de->swapped;
}

void
HostPageTable::audit(check::AuditReport &report) const
{
    report.component("host-page-table", procId);

    std::size_t live = 0;
    dir.forEach([&](std::uint64_t idx, const DirEntry &de) {
        if (de.swapped) {
            report.require(de.leafFrame == mem::kInvalidPfn,
                           "swapped leaf %llu still names frame %llu",
                           static_cast<unsigned long long>(idx),
                           static_cast<unsigned long long>(de.leafFrame));
            report.require(de.diskBlock.size() == mem::kPageSize,
                           "swapped leaf %llu disk block is %zu bytes, "
                           "expected %zu",
                           static_cast<unsigned long long>(idx),
                           de.diskBlock.size(), mem::kPageSize);
            // Count valid entries inside the swapped image too: swap
            // must preserve the table contents bit-for-bit.
            for (std::size_t off = 0; off + 8 <= de.diskBlock.size();
                 off += 8) {
                std::uint64_t word;
                std::memcpy(&word, de.diskBlock.data() + off, 8);
                if (word & kValidBit)
                    ++live;
            }
            return;
        }
        if (de.leafFrame == mem::kInvalidPfn) {
            report.addf("resident leaf %llu has no frame",
                        static_cast<unsigned long long>(idx));
            return;
        }
        report.require(hostMem->isAllocated(de.leafFrame),
                       "leaf %llu frame %llu is not allocated",
                       static_cast<unsigned long long>(idx),
                       static_cast<unsigned long long>(de.leafFrame));
        report.require(hostMem->ownerOf(de.leafFrame) == kKernelPid,
                       "leaf %llu frame %llu not owned by the kernel",
                       static_cast<unsigned long long>(idx),
                       static_cast<unsigned long long>(de.leafFrame));
        report.require(de.diskBlock.empty(),
                       "resident leaf %llu still holds a disk block",
                       static_cast<unsigned long long>(idx));
        for (std::size_t e = 0; e < kLeafEntries; ++e) {
            std::uint8_t buf[8];
            hostMem->read(mem::frameAddr(de.leafFrame) + e * 8, buf);
            std::uint64_t word;
            std::memcpy(&word, buf, 8);
            if (word & kValidBit)
                ++live;
        }
    });
    report.require(live == numValid,
                   "cached valid count %zu != leaf recount %zu",
                   numValid, live);
}

} // namespace utlb::core
