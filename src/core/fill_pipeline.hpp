/**
 * @file
 * Asynchronous miss service: outstanding-DMA continuations.
 *
 * The paper's UTLB firmware keeps accepting messages while
 * translation-miss DMAs are outstanding; our serialized miss path
 * instead stalled the missing worker inside the driver mutex, so one
 * slow miss DMA held up every concurrent translation. FillPipeline
 * models the decoupled design:
 *
 *  - workers post miss requests (FillTicket) into a bounded MPSC
 *    FillQueue and keep translating — later hits in the window are
 *    served while the fill is in flight;
 *  - a pool of fill threads drains the queues. Each fill thread owns
 *    a disjoint residue class of cache stripes (stripe index mod the
 *    pool size): a miss for stripe s is always posted to — and only
 *    ever serviced by — thread s % N, so two fill threads can never
 *    contend on the same stripe lock, and per-stripe FIFO order is
 *    preserved no matter how large the pool is. Each thread drains
 *    its queue in batches, sorts the batch by cache stripe (installs
 *    take each stripe lock in runs instead of ping-ponging), services
 *    every miss through the same serviceMiss() routine as the
 *    synchronous path — same host-table DMA, same fault-repair ioctl
 *    through the driver, same insertMT under the seqlock/stripe-lock
 *    write protocol — and publishes the result on the ticket;
 *  - completion wakes only threads blocked in waitDone(); workers
 *    that never wait are never touched.
 *
 * Producers never block: a full (or stopped) queue fails the post
 * and the worker services that miss synchronously, so the pipeline
 * can only ever degrade to the old serialized behaviour.
 *
 * Ownership rules (docs/performance.md): each fill thread owns its
 * own cache Shard, scratch buffers, queue-consumer side, and stat
 * delta block; a ticket belongs to its stripe's fill thread from the
 * moment tryPush() accepts it until done is observed true, then
 * returns to the posting worker. Per-thread stat deltas are absorbed
 * into the shared counters/histograms at stop(); stats are read at
 * quiescence after stop(). A pool of one behaves exactly like the
 * historical single fill thread (every stripe is residue 0).
 */

#ifndef UTLB_CORE_FILL_PIPELINE_HPP
#define UTLB_CORE_FILL_PIPELINE_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "core/utlb.hpp"
#include "sim/annotations.hpp"
#include "sim/fill_queue.hpp"
#include "sim/mutex.hpp"
#include "sim/stats.hpp"

namespace utlb::core {

/**
 * One outstanding miss-fill request. Owned by the posting worker;
 * lent to the fill thread between a successful post and the
 * done-flag release. pid/vpn/width are written by the worker before
 * the post and read-only afterwards; result is written by the fill
 * thread before it releases done.
 */
struct FillTicket {
    mem::ProcId pid = 0;
    mem::Vpn vpn = 0;
    std::size_t width = 1;

    /** Wall clock at post time (fill-latency histogram). */
    std::chrono::steady_clock::time_point postedAt;

    /** Filled by the fill thread; valid once done is true. */
    MissOutcome result;

    /** Release-published completion flag; see FillPipeline::waitDone. */
    std::atomic<bool> done{false};
};

/**
 * The fill-thread pool plus its per-thread queues. One instance per
 * NIC (per SharedUtlbCache); every concurrent UserUtlb view of that
 * NIC may attach to it. The constructor starts the threads; stop()
 * (or the destructor) drains every queue, joins, and folds each fill
 * thread's cache shard and stat deltas into the shared tree — after
 * stop() the pipeline's statistics are quiescent and exact.
 */
class FillPipeline
{
  public:
    /** Tickets a fill thread drains per queue pop. */
    static constexpr std::size_t kBatchMax = 16;

    /**
     * @param queue_capacity ring capacity of each per-thread queue.
     * @param pool_size number of fill threads (>= 1). Stripe s is
     *        owned by thread s % pool_size.
     */
    FillPipeline(UtlbDriver &drv, SharedUtlbCache &cache,
                 const nic::NicTimings &timings,
                 std::size_t queue_capacity = 64,
                 std::size_t pool_size = 1);

    ~FillPipeline();

    FillPipeline(const FillPipeline &) = delete;
    FillPipeline &operator=(const FillPipeline &) = delete;

    /** Number of fill threads in the pool. */
    std::size_t poolSize() const { return workers.size(); }

    /**
     * Post a miss-fill request; it is routed to the fill thread that
     * owns the target's cache stripe. Never blocks: false means that
     * thread's queue is full or stopped and the caller must service
     * the miss synchronously. On true, @p t belongs to the fill
     * thread until waitDone() returns.
     */
    [[nodiscard]] bool post(FillTicket &t, mem::ProcId pid,
                            mem::Vpn vpn, std::size_t width);

    /**
     * Block until @p t completes. Fast path is one acquire load;
     * the slow path sleeps on the completion condvar (woken per
     * serviced ticket, so only stalled translations are woken —
     * workers serving hits never block here).
     */
    void waitDone(const FillTicket &t);

    /**
     * Stop accepting fills, drain every accepted ticket, join every
     * fill thread, and absorb each thread's cache shard and stat
     * deltas (in thread-index order, so the fold is deterministic).
     * Idempotent. Tickets accepted before the stop still complete
     * (no lost fills); no install happens after stop() returns.
     */
    void stop();

    /** True until stop() has begun. */
    bool accepting() const
    {
        return !workers.front()->queue.isStopped();
    }

    /** @name Quiescent accessors (call after stop(), or for tests) @{ */
    std::uint64_t fillsCompleted() const { return statFills.value(); }

    /** Modeled DMA ticks serviced off the workers' critical path. */
    sim::Tick overlappedTicks() const
    {
        return static_cast<sim::Tick>(statOverlappedTicks.value());
    }
    /** @} */

    /** The pipeline's statistics subtree ("fill_pipeline"). */
    sim::StatGroup &stats() { return statsGrp; }
    const sim::StatGroup &stats() const { return statsGrp; }

  private:
    /**
     * One fill thread's private world: its queue (consumer side),
     * cache stat shard, scratch buffers, and stat delta block. No
     * locks — the owning thread is the only toucher between the
     * constructor's thread launch and stop()'s join.
     */
    struct Worker {
        Worker(SharedUtlbCache &c, std::size_t queue_capacity,
               std::size_t idx, sim::HistAccum bs, sim::HistAccum qd,
               sim::HistAccum fl)
            : index(idx), queue(queue_capacity), shard(c.makeShard()),
              dBatchSize(std::move(bs)), dQueueDepth(std::move(qd)),
              dFillLatency(std::move(fl))
        {
            batch.reserve(kBatchMax);
        }

        const std::size_t index;  //!< owns stripes s: s % N == index
        sim::FillQueue<FillTicket *> queue;

        SharedUtlbCache::Shard shard;
        std::vector<std::optional<mem::Pfn>> runBuf;
        std::vector<std::optional<mem::Pfn>> repairBuf;
        std::vector<FillTicket *> batch;

        /** @name Stat deltas, absorbed at stop() @{ */
        std::uint64_t dFills = 0;
        std::uint64_t dFaultFills = 0;
        std::uint64_t dOverlappedTicks = 0;
        sim::HistAccum dBatchSize;
        sim::HistAccum dQueueDepth;
        sim::HistAccum dFillLatency;
        /** @} */

        std::thread thread;
    };

    /**
     * True iff @p w is the pool member that owns the cache stripe of
     * (pid, vpn). The drain loop asserts this before every
     * serviceMiss: stripe ownership is what makes N fill threads
     * install concurrently without ever sharing a stripe lock.
     */
    bool ownsStripe(const Worker &w, mem::ProcId pid,
                    mem::Vpn vpn) const
    {
        return cache->stripeIndex(pid, vpn) % workers.size() ==
               w.index;
    }

    /** The pool member that owns (pid, vpn)'s stripe. */
    Worker &workerFor(mem::ProcId pid, mem::Vpn vpn)
    {
        return *workers[cache->stripeIndex(pid, vpn) %
                        workers.size()];
    }

    void run(Worker &w);

    UtlbDriver *driver;
    SharedUtlbCache *cache;
    const nic::NicTimings *timings;

    /** Pairs the done flags with sleeping waiters (no lost wakeup). */
    sim::Mutex doneMu;
    sim::CondVar doneCv;

    /** Fixed after construction (threads index it unlocked). */
    std::vector<std::unique_ptr<Worker>> workers;

    bool joined = false;

    sim::StatGroup statsGrp{"fill_pipeline"};
    sim::Counter statPosted{&statsGrp, "fills_posted",
                            "miss requests accepted by the queues"};
    sim::Counter statFills{&statsGrp, "fills_completed",
                           "miss requests serviced by the fill "
                           "threads"};
    sim::Counter statFaultFills{&statsGrp, "fault_fills",
                                "serviced fills that took the "
                                "host-interrupt fault path"};
    sim::Counter statOverlappedTicks{&statsGrp, "overlapped_ticks",
                                     "modeled miss-service ticks "
                                     "run on the fill threads, "
                                     "overlapping worker progress"};
    sim::Histogram statBatchSize{&statsGrp, "batch_size",
                                 "tickets drained per queue pop",
                                 static_cast<double>(kBatchMax) + 1.0,
                                 kBatchMax + 1};
    sim::Histogram statQueueDepth{&statsGrp, "queue_depth",
                                  "queue occupancy after each batch "
                                  "pop", 64.0, 16};
    sim::Histogram statFillLatency{&statsGrp, "fill_latency_us",
                                   "wall-clock post-to-completion "
                                   "latency per fill", 1000.0, 40};
};

} // namespace utlb::core

#endif // UTLB_CORE_FILL_PIPELINE_HPP
