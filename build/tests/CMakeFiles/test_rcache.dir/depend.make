# Empty dependencies file for test_rcache.
# This may be replaced when dependencies are built.
