// Negative-compile case: MUST be rejected by clang's thread-safety
// analysis (-Werror=thread-safety-analysis) and MUST compile clean
// without it. Driven by scripts/negative_compile.sh; never linked.
//
// The defect: a naked lock() with an early return that leaks the
// capability — exactly the bug class the scoped-guard discipline
// (sim::LockGuard / sim::SpinGuard) makes unrepresentable.

#include "sim/annotations.hpp"
#include "sim/mutex.hpp"

utlb::sim::Mutex gMu;
int gCounter UTLB_GUARDED_BY(gMu) = 0;

int
bumpUnlessNegative(int v)
{
    gMu.lock();
    if (v < 0)
        return -1; // BAD: gMu is still held on this path.
    gCounter += v;
    gMu.unlock();
    return gCounter; // BAD: read after release, also flagged.
}

int
main()
{
    return bumpUnlessNegative(1);
}
