#include "sim/event_queue.hpp"

#include <utility>

#include "sim/log.hpp"

namespace utlb::sim {

void
EventQueue::schedule(Tick when, EventFn fn)
{
    if (when < curTick) {
        panic("event scheduled in the past (when=%llu now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(curTick));
    }
    heap.push(Entry{when, nextSeq++, std::move(fn)});
}

Tick
EventQueue::run()
{
    while (step()) {
        // run to empty
    }
    return curTick;
}

std::uint64_t
EventQueue::runUntil(Tick horizon)
{
    std::uint64_t count = 0;
    while (!heap.empty() && heap.top().when <= horizon) {
        step();
        ++count;
    }
    if (curTick < horizon)
        curTick = horizon;
    return count;
}

bool
EventQueue::step()
{
    if (heap.empty())
        return false;
    // Copy out before pop: the callback may schedule new events.
    Entry e = heap.top();
    heap.pop();
    curTick = e.when;
    ++numFired;
    e.fn();
    return true;
}

void
EventQueue::clear()
{
    while (!heap.empty())
        heap.pop();
}

} // namespace utlb::sim
