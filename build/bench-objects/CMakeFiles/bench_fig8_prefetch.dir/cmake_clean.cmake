file(REMOVE_RECURSE
  "../bench/bench_fig8_prefetch"
  "../bench/bench_fig8_prefetch.pdb"
  "CMakeFiles/bench_fig8_prefetch.dir/bench_fig8_prefetch.cpp.o"
  "CMakeFiles/bench_fig8_prefetch.dir/bench_fig8_prefetch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
