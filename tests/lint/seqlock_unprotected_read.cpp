// Known-bad fixture for scripts/concurrency_lint.py (never compiled).
//
// Plain (non-atomic) reads of the seqlock-paired fields inside the
// read section. The fields race with locked writers by design; every
// read must go through loadRelaxed()/atomic_ref or the program has
// undefined behavior even though readRetry() would catch the tear.
//
// utlb-lint-expect: seqlock-read-section

#include <cstdint>

struct Line {
    bool valid;
    unsigned pid;
    std::uint64_t vpn;
    std::uint64_t pfn;
};

struct PackedLine {
    std::uint64_t pidVpn; // packed cold key: pid<<52 | vpn
    std::uint64_t pfn;
};

struct SeqCount {
    std::uint32_t readBegin() const;
    bool readRetry(std::uint32_t) const;
};

std::uint64_t
rawProbe(SeqCount &seq, const Line &line, unsigned pid,
         std::uint64_t vpn)
{
    for (;;) {
        std::uint32_t v = seq.readBegin();
        std::uint64_t out = 0;
        // BAD: naked field reads, racing with locked writers.
        if (line.valid && line.pid == pid && line.vpn == vpn)
            out = line.pfn;
        if (!seq.readRetry(v))
            return out;
    }
}

std::uint64_t
rawPackedProbe(SeqCount &seq, const PackedLine &line, std::uint64_t key)
{
    for (;;) {
        std::uint32_t v = seq.readBegin();
        std::uint64_t out = 0;
        // BAD: naked read of the packed cold key.
        if (line.pidVpn == key)
            out = line.pfn;
        if (!seq.readRetry(v))
            return out;
    }
}
