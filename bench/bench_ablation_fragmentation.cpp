/**
 * @file
 * Ablation: translation-table fragmentation in the per-process
 * design (§3.3).
 *
 * "The Hierarchical-UTLB eliminates the need to handle UTLB
 * fragmentation: after complex data accesses, a user buffer's
 * translations may be scattered in the translation table."
 *
 * We quantify the claim: replay each workload's trace through a
 * per-process UTLB and measure, for a representative contiguous
 * buffer of each process, how many discontiguous index runs its
 * translations occupy as churn accumulates. The Hierarchical-UTLB
 * column is definitionally 1 run — its "index" is the virtual page
 * number itself.
 */

#include "bench_common.hpp"

#include <map>
#include <memory>

#include "core/per_process_utlb.hpp"
#include "mem/address_space.hpp"
#include "mem/phys_memory.hpp"
#include "mem/pinning.hpp"

namespace {

using namespace utlb;
using mem::ProcId;

struct FragResult {
    double meanRuns = 0.0;    //!< avg index runs per probe buffer
    std::size_t worstRuns = 0;
};

FragResult
measureFragmentation(const trace::Trace &tr,
                     std::size_t entries_per_proc)
{
    auto shape = trace::measure(tr);
    mem::PhysMemory phys_mem(shape.distinctPages * 2 + 1024);
    mem::PinFacility pins;
    nic::Sram sram(4u << 20);
    nic::NicTimings timings;
    core::HostCosts costs;
    core::SharedUtlbCache cache({64, 1, true}, timings);
    core::UtlbDriver driver(phys_mem, pins, sram, cache, costs);

    std::map<ProcId, std::unique_ptr<mem::AddressSpace>> spaces;
    std::map<ProcId, std::unique_ptr<core::PerProcessUtlb>> utlbs;

    for (const auto &rec : tr) {
        if (!utlbs.count(rec.pid)) {
            auto space = std::make_unique<mem::AddressSpace>(
                rec.pid, phys_mem);
            driver.registerProcess(*space);
            spaces.emplace(rec.pid, std::move(space));
            core::PerProcessConfig cfg;
            cfg.tableEntries = entries_per_proc;
            utlbs.emplace(rec.pid,
                          std::make_unique<core::PerProcessUtlb>(
                              driver, rec.pid, cfg));
        }
        utlbs.at(rec.pid)->lookup(rec.va, rec.nbytes);
    }

    // Probe: a 16-page contiguous buffer at each process' base.
    FragResult res;
    std::size_t samples = 0;
    for (auto &[pid, pp] : utlbs) {
        mem::VirtAddr base =
            mem::addrOf((static_cast<mem::Vpn>(pid) + 1) << 20);
        auto lk = pp->lookup(base, 16 * mem::kPageSize);
        if (!lk.ok)
            continue;
        std::size_t runs =
            pp->bufferIndexRuns(base, 16 * mem::kPageSize);
        res.meanRuns += static_cast<double>(runs);
        res.worstRuns = std::max(res.worstRuns, runs);
        ++samples;
    }
    if (samples)
        res.meanRuns /= static_cast<double>(samples);
    return res;
}

} // namespace

int
main()
{
    using namespace bench;

    utlb::sim::TextTable t(
        "Per-process UTLB index fragmentation after a full workload "
        "(16-page contiguous buffer; Hierarchical-UTLB = 1 run by "
        "construction)");
    t.setHeader({"workload", "table entries/proc", "mean runs",
                 "worst runs"});

    for (const auto &name : workloadNames()) {
        auto tr = utlb::trace::generateTrace(name);
        for (std::size_t entries : {512u, 2048u}) {
            auto res = measureFragmentation(tr, entries);
            t.addRow({name,
                      utlb::sim::TextTable::num(std::uint64_t{entries}),
                      utlb::sim::TextTable::num(res.meanRuns, 1),
                      utlb::sim::TextTable::num(
                          std::uint64_t{res.worstRuns})});
        }
    }
    t.print(std::cout);

    std::cout << "\nShape checks: small tables churn hard and leave "
                 "a contiguous buffer's translations scattered over "
                 "many index\nruns — the fragmentation §3.3 cites as "
                 "a reason to index the table by virtual page number "
                 "instead.\n";
    return 0;
}
