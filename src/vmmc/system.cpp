#include "vmmc/system.hpp"

namespace utlb::vmmc {

Cluster::Cluster(const ClusterConfig &cfg)
    : net(events, nicTimings,
          net::NetworkConfig{cfg.nodes, cfg.lossProbability, true,
                             cfg.seed})
{
    nodeList.reserve(cfg.nodes);
    for (std::size_t i = 0; i < cfg.nodes; ++i) {
        nodeList.push_back(std::make_unique<VmmcNode>(
            static_cast<net::NodeId>(i), net, events, nicTimings,
            cfg.node));
    }
}

} // namespace utlb::vmmc
