/**
 * @file
 * Calibrated cost curves.
 *
 * Several of the paper's cost inputs are published as measurements at
 * a handful of operand sizes (Tables 1 and 2: costs at 1, 2, 4, 8,
 * 16, 32 pages/entries). CalCurve reproduces such a measurement
 * exactly at the published points, interpolates linearly between
 * them, and extrapolates linearly beyond the last point using the
 * final segment's slope. This keeps every microbenchmark anchored to
 * the paper while still defining costs for arbitrary batch sizes.
 */

#ifndef UTLB_SIM_CALIBRATION_HPP
#define UTLB_SIM_CALIBRATION_HPP

#include <initializer_list>
#include <vector>

#include "sim/log.hpp"
#include "sim/types.hpp"

namespace utlb::sim {

/** A piecewise-linear curve through measured (size, microsecond)
 *  points. */
class CalCurve
{
  public:
    struct Point {
        std::size_t n;
        double us;
    };

    /** Points must be in strictly increasing n order. */
    CalCurve(std::initializer_list<Point> pts) : points(pts)
    {
        if (points.empty())
            panic("CalCurve requires at least one point");
        for (std::size_t i = 1; i < points.size(); ++i) {
            if (points[i].n <= points[i - 1].n)
                panic("CalCurve points must increase in n");
        }
    }

    /** Curve value at @p n, in microseconds. */
    double
    at(std::size_t n) const
    {
        if (n <= points.front().n)
            return points.front().us;
        for (std::size_t i = 1; i < points.size(); ++i) {
            if (n <= points[i].n) {
                const Point &lo = points[i - 1];
                const Point &hi = points[i];
                double t = static_cast<double>(n - lo.n)
                    / static_cast<double>(hi.n - lo.n);
                return lo.us + t * (hi.us - lo.us);
            }
        }
        if (points.size() == 1)
            return points.front().us;
        const Point &lo = points[points.size() - 2];
        const Point &hi = points.back();
        double slope = (hi.us - lo.us)
            / static_cast<double>(hi.n - lo.n);
        return hi.us + slope * static_cast<double>(n - hi.n);
    }

    /** Curve value at @p n, converted to ticks. */
    Tick
    ticksAt(std::size_t n) const
    {
        return usToTicks(at(n));
    }

  private:
    std::vector<Point> points;
};

} // namespace utlb::sim

#endif // UTLB_SIM_CALIBRATION_HPP
