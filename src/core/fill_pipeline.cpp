#include "core/fill_pipeline.hpp"

#include <algorithm>

#include "check/check.hpp"
#include "sim/log.hpp"

namespace utlb::core {

FillPipeline::FillPipeline(UtlbDriver &drv, SharedUtlbCache &c,
                           const nic::NicTimings &t,
                           std::size_t queue_capacity,
                           std::size_t pool_size)
    : driver(&drv), cache(&c), timings(&t)
{
    if (pool_size == 0)
        sim::fatal("FillPipeline pool_size must be >= 1");
    // Arm the cache's striped locking (idempotent; construction-time,
    // so quiescent): fill threads install through insertMT and must
    // never run against an unarmed cache.
    cache->enableConcurrent();
    workers.reserve(pool_size);
    for (std::size_t i = 0; i < pool_size; ++i)
        workers.push_back(std::make_unique<Worker>(
            c, queue_capacity, i, statBatchSize.makeLocal(),
            statQueueDepth.makeLocal(), statFillLatency.makeLocal()));
    // Launch only after the pool vector is final: every fill thread
    // reads workers.size() (the stripe->thread modulus) unlocked.
    for (auto &w : workers)
        w->thread = std::thread([this, wp = w.get()] { run(*wp); });
}

FillPipeline::~FillPipeline()
{
    stop();
}

bool
FillPipeline::post(FillTicket &t, mem::ProcId pid, mem::Vpn vpn,
                   std::size_t width)
{
    if (width == 0)
        sim::fatal("FillPipeline::post width must be >= 1");
    t.pid = pid;
    t.vpn = vpn;
    t.width = width;
    // Relaxed is enough: the push's queue mutex orders these writes
    // before the fill thread's reads.
    t.done.store(false, std::memory_order_relaxed);
    t.postedAt = std::chrono::steady_clock::now();
    if (!workerFor(pid, vpn).queue.tryPush(&t))
        return false;
    statPosted.addRelaxed(1);
    return true;
}

void
FillPipeline::waitDone(const FillTicket &t)
{
    // Fast path: the fill already completed; the acquire pairs with
    // the fill thread's release store and makes result visible.
    if (t.done.load(std::memory_order_acquire))
        return;
    sim::UniqueLock lk(doneMu);
    while (!t.done.load(std::memory_order_acquire))
        doneCv.waitOn(lk);
}

void
FillPipeline::stop()
{
    // Stop every queue before joining any thread: producers see the
    // whole pipeline reject at once, and no drain can re-enqueue.
    for (auto &w : workers)
        w->queue.stop();
    if (joined)
        return;
    joined = true;
    for (auto &w : workers) {
        if (w->thread.joinable())
            w->thread.join();
    }
    // All fill threads have exited: their shards and delta blocks
    // are quiescent. Fold in thread-index order so the merged stats
    // are deterministic for a given set of per-thread totals; with a
    // pool of one the fold is the historical single-shard absorb and
    // every stat is bit-identical to the sequential run.
    for (auto &w : workers) {
        cache->absorbShard(w->shard);
        statFills.absorb(w->dFills);
        statFaultFills.absorb(w->dFaultFills);
        statOverlappedTicks.absorb(w->dOverlappedTicks);
        statBatchSize.absorb(w->dBatchSize);
        statQueueDepth.absorb(w->dQueueDepth);
        statFillLatency.absorb(w->dFillLatency);
    }
}

// utlb-lint: fill-worker
void
FillPipeline::run(Worker &w)
{
    for (;;) {
        w.batch.clear();
        std::size_t n = w.queue.popBatch(w.batch, kBatchMax);
        if (n == 0)
            return; // stopped and drained
        w.dBatchSize.sample(static_cast<double>(n));
        w.dQueueDepth.sample(static_cast<double>(w.queue.depth()));

        // Service the batch stripe-major: installs then take each
        // stripe spinlock in runs. stable_sort keeps same-stripe
        // fills in post order (FIFO fairness within a stripe).
        std::stable_sort(
            w.batch.begin(), w.batch.end(),
            [this](const FillTicket *a, const FillTicket *b) {
                return cache->stripeIndex(a->pid, a->vpn) <
                       cache->stripeIndex(b->pid, b->vpn);
            });

        for (FillTicket *t : w.batch) {
            // Stripe ownership is the pool's whole concurrency
            // argument: a foreign-stripe ticket here would mean two
            // fill threads can race on one stripe lock's FIFO order.
            UTLB_ASSERT(ownsStripe(w, t->pid, t->vpn),
                        "fill thread %zu drained a ticket for a "
                        "stripe it does not own (pid %u vpn %llu)",
                        w.index, t->pid,
                        static_cast<unsigned long long>(t->vpn));
            t->result = serviceMiss(*driver, *cache, *timings, t->pid,
                                    t->vpn, t->width, w.runBuf,
                                    w.repairBuf, &w.shard, nullptr);
            ++w.dFills;
            if (t->result.fault)
                ++w.dFaultFills;
            w.dOverlappedTicks +=
                static_cast<std::uint64_t>(t->result.cost);
            w.dFillLatency.sample(
                std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - t->postedAt)
                    .count());
            // Publish completion. The store sits inside the mutex so
            // a waiter cannot check done and sleep between our store
            // and notify (the classic lost wakeup); the release pairs
            // with waitDone's acquire to hand over result.
            {
                sim::LockGuard lk(doneMu);
                t->done.store(true, std::memory_order_release);
            }
            doneCv.notifyAll();
        }
    }
}

} // namespace utlb::core
