#include "sim/simd.hpp"

#include <cstdlib>
#include <cstring>

#if defined(UTLB_SIMD_ENABLED) \
    && (defined(__x86_64__) || defined(__i386__))
#define UTLB_SIMD_X86 1
#include <emmintrin.h>
#include <immintrin.h>
#else
#define UTLB_SIMD_X86 0
#endif

namespace utlb::simd {

namespace {

/** Drop mask bits past way n-1 (overread lanes, n < 32 always). */
unsigned
clampMask(unsigned mask, unsigned n)
{
    return n < 32 ? mask & ((1u << n) - 1u) : mask;
}

Path
hostBest()
{
#if UTLB_SIMD_X86
    if (__builtin_cpu_supports("avx2"))
        return Path::Avx2;
    if (__builtin_cpu_supports("sse2"))
        return Path::Sse2;
#endif
    return Path::Scalar;
}

/** Startup resolution: host capability, clamped by UTLB_SIMD_FORCE. */
Path
resolve()
{
    Path best = hostBest();
    const char *e = std::getenv("UTLB_SIMD_FORCE");
    if (!e)
        return best;
    Path want = best;
    if (std::strcmp(e, "scalar") == 0)
        want = Path::Scalar;
    else if (std::strcmp(e, "sse2") == 0)
        want = Path::Sse2;
    else if (std::strcmp(e, "avx2") == 0)
        want = Path::Avx2;
    return want < best ? want : best;
}

} // namespace

namespace detail {

std::atomic<Path> g_path{resolve()};

#if UTLB_SIMD_X86

unsigned
matchSse2(const std::uint64_t *tags, unsigned n, std::uint64_t key)
{
    // SSE2 has no 64-bit compare: compare 32-bit lanes, then AND each
    // lane with its partner so a 64-bit lane is all-ones iff both
    // halves matched; movemask_pd picks each 64-bit lane's sign bit.
    __m128i k =
        _mm_set1_epi64x(static_cast<long long>(key));
    unsigned mask = 0;
    for (unsigned w = 0; w < n; w += 2) {
        __m128i t = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(tags + w));
        __m128i eq32 = _mm_cmpeq_epi32(t, k);
        __m128i swap =
            _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1));
        __m128i eq64 = _mm_and_si128(eq32, swap);
        mask |= static_cast<unsigned>(
                    _mm_movemask_pd(_mm_castsi128_pd(eq64)))
            << w;
    }
    return clampMask(mask, n);
}

__attribute__((target("avx2"))) unsigned
matchAvx2(const std::uint64_t *tags, unsigned n, std::uint64_t key)
{
    __m256i k =
        _mm256_set1_epi64x(static_cast<long long>(key));
    unsigned mask = 0;
    for (unsigned w = 0; w < n; w += 4) {
        __m256i t = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(tags + w));
        __m256i eq = _mm256_cmpeq_epi64(t, k);
        mask |= static_cast<unsigned>(
                    _mm256_movemask_pd(_mm256_castsi256_pd(eq)))
            << w;
    }
    return clampMask(mask, n);
}

#else // !UTLB_SIMD_X86

// Scalar-only build (UTLB_SIMD=OFF or non-x86): the dispatch enum
// still exists, but these paths are never selected (bestSupported()
// returns Scalar). Defined so the link never depends on the gate.
unsigned
matchSse2(const std::uint64_t *tags, unsigned n, std::uint64_t key)
{
    return matchScalar(tags, n, key);
}

unsigned
matchAvx2(const std::uint64_t *tags, unsigned n, std::uint64_t key)
{
    return matchScalar(tags, n, key);
}

#endif // UTLB_SIMD_X86

} // namespace detail

const char *
pathName(Path p)
{
    switch (p) {
    case Path::Avx2:
        return "avx2";
    case Path::Sse2:
        return "sse2";
    case Path::Scalar:
        break;
    }
    return "scalar";
}

Path
bestSupported()
{
    return hostBest();
}

Path
activePath()
{
    return detail::g_path.load(std::memory_order_relaxed);
}

const char *
activePathName()
{
    return pathName(activePath());
}

Path
forcePath(Path p)
{
    Path best = hostBest();
    Path sel = p < best ? p : best;
    detail::g_path.store(sel, std::memory_order_relaxed);
    return sel;
}

} // namespace utlb::simd
