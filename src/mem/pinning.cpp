#include "mem/pinning.hpp"

#include "check/audit.hpp"
#include "sim/log.hpp"

namespace utlb::mem {

using sim::panic;

const char *
toString(PinStatus s)
{
    switch (s) {
      case PinStatus::Ok:             return "Ok";
      case PinStatus::LimitExceeded:  return "LimitExceeded";
      case PinStatus::OutOfMemory:    return "OutOfMemory";
      case PinStatus::UnknownProcess: return "UnknownProcess";
      case PinStatus::NotPinned:      return "NotPinned";
    }
    return "?";
}

void
PinFacility::registerSpace(AddressSpace &space)
{
    auto lk = guard();
    auto [it, inserted] = procs.try_emplace(space.pid());
    if (!inserted && it->second.space != &space)
        panic("process %u registered twice with different spaces",
              space.pid());
    it->second.space = &space;
}

void
PinFacility::unregisterProcess(ProcId pid)
{
    auto lk = guard();
    procs.erase(pid);
}

void
PinFacility::setPinLimit(ProcId pid, std::size_t pages)
{
    auto lk = guard();
    auto *p = findProc(pid);
    if (!p)
        panic("setPinLimit for unknown process %u", pid);
    p->limit = pages;
}

std::size_t
PinFacility::pinLimit(ProcId pid) const
{
    auto lk = guard();
    const auto *p = findProc(pid);
    return p ? p->limit : 0;
}

PinFacility::ProcState *
PinFacility::findProc(ProcId pid)
{
    auto it = procs.find(pid);
    return it == procs.end() ? nullptr : &it->second;
}

const PinFacility::ProcState *
PinFacility::findProc(ProcId pid) const
{
    auto it = procs.find(pid);
    return it == procs.end() ? nullptr : &it->second;
}

std::optional<Pfn>
PinFacility::pinPage(ProcId pid, Vpn vpn, PinStatus *st)
{
    auto lk = guard();
    return pinPageImpl(pid, vpn, st);
}

std::optional<Pfn>
PinFacility::pinPageImpl(ProcId pid, Vpn vpn, PinStatus *st)
{
    ++statPinOps;
    auto set_st = [&](PinStatus s) { if (st) *st = s; };

    auto *p = findProc(pid);
    if (!p) {
        ++statFailedPins;
        set_st(PinStatus::UnknownProcess);
        return std::nullopt;
    }

    auto it = p->refs.find(vpn);
    if (it != p->refs.end()) {
        ++it->second;
        set_st(PinStatus::Ok);
        return p->space->lookup(vpn);
    }

    if (p->limit != 0 && p->refs.size() >= p->limit) {
        ++statFailedPins;
        set_st(PinStatus::LimitExceeded);
        return std::nullopt;
    }

    auto pfn = p->space->touch(vpn);
    if (!pfn) {
        ++statFailedPins;
        set_st(PinStatus::OutOfMemory);
        return std::nullopt;
    }

    p->refs.emplace(vpn, 1);
    ++statPagesPinned;
    set_st(PinStatus::Ok);
    return pfn;
}

std::optional<std::vector<Pfn>>
PinFacility::pinRange(ProcId pid, Vpn start, std::size_t npages,
                      PinStatus *st)
{
    auto lk = guard();
    auto *p = findProc(pid);
    std::vector<Pfn> frames;
    std::vector<bool> freshly_mapped;
    frames.reserve(npages);
    freshly_mapped.reserve(npages);
    for (std::size_t i = 0; i < npages; ++i) {
        bool was_mapped =
            p && p->space->lookup(start + i).has_value();
        PinStatus s = PinStatus::Ok;
        auto pfn = pinPageImpl(pid, start + i, &s);
        if (!pfn) {
            // Roll back: all-or-nothing semantics. Pages this call
            // demand-mapped purely to pin them are unmapped again so
            // a failed pin does not strand physical frames.
            for (std::size_t j = i; j-- > 0;) {
                unpinPageImpl(pid, start + j);
                if (freshly_mapped[j] && !isPinnedImpl(pid, start + j))
                    p->space->unmap(start + j);
            }
            if (st)
                *st = s;
            return std::nullopt;
        }
        frames.push_back(*pfn);
        freshly_mapped.push_back(!was_mapped);
    }
    if (st)
        *st = PinStatus::Ok;
    return frames;
}

PinStatus
PinFacility::unpinPage(ProcId pid, Vpn vpn)
{
    auto lk = guard();
    return unpinPageImpl(pid, vpn);
}

PinStatus
PinFacility::unpinPageImpl(ProcId pid, Vpn vpn)
{
    ++statUnpinOps;
    auto *p = findProc(pid);
    if (!p)
        return PinStatus::UnknownProcess;
    auto it = p->refs.find(vpn);
    if (it == p->refs.end())
        return PinStatus::NotPinned;
    if (--it->second == 0) {
        p->refs.erase(it);
        ++statPagesUnpinned;
    }
    return PinStatus::Ok;
}

bool
PinFacility::isPinned(ProcId pid, Vpn vpn) const
{
    auto lk = guard();
    return isPinnedImpl(pid, vpn);
}

bool
PinFacility::isPinnedImpl(ProcId pid, Vpn vpn) const
{
    const auto *p = findProc(pid);
    return p && p->refs.count(vpn) > 0;
}

std::uint32_t
PinFacility::pinRefs(ProcId pid, Vpn vpn) const
{
    auto lk = guard();
    const auto *p = findProc(pid);
    if (!p)
        return 0;
    auto it = p->refs.find(vpn);
    return it == p->refs.end() ? 0 : it->second;
}

std::size_t
PinFacility::pinnedPages(ProcId pid) const
{
    auto lk = guard();
    const auto *p = findProc(pid);
    return p ? p->refs.size() : 0;
}

std::optional<Pfn>
PinFacility::pinnedFrame(ProcId pid, Vpn vpn) const
{
    auto lk = guard();
    const auto *p = findProc(pid);
    if (!p || !p->refs.count(vpn))
        return std::nullopt;
    return p->space->lookup(vpn);
}

void
PinFacility::audit(check::AuditReport &report) const
{
    for (const auto &[pid, p] : procs) {
        report.component("pin-facility", pid);
        report.require(p.space != nullptr,
                       "registered process has no address space");
        // No refs.size() <= limit check here: setPinLimit() allows
        // lowering the limit below the current count, so that state
        // is legal. Budget overflow is PinManager::audit's job (its
        // budget is fixed at construction).
        for (const auto &[vpn, refcount] : p.refs) {
            report.require(refcount > 0,
                           "page %llu carries a zero pin refcount",
                           static_cast<unsigned long long>(vpn));
            if (!p.space)
                continue;
            auto pfn = p.space->lookup(vpn);
            report.require(pfn.has_value(),
                           "pinned page %llu has no mapping",
                           static_cast<unsigned long long>(vpn));
        }
    }
}

} // namespace utlb::mem
