/**
 * @file
 * Tests for the observability layer and the translation-accounting
 * fixes that came with it:
 *
 *  - the streaming JsonWriter (escaping, nesting, raw embedding);
 *  - the stats tree's JSON serialization and the "utlb-stats-v1"
 *    per-run document simulateUtlb()/simulateIntr() emit (including
 *    the wall_ns result and batched_range config fields, and the
 *    --batch replay's modeled-result equivalence);
 *  - the bench harnesses' "utlb-bench-v1" document (wall_ns +
 *    host_info);
 *  - the Chrome trace-event stream of the NIC miss path;
 *  - regressions for three accounting bugs: prefetch refreshes
 *    polluting LRU order, NicLookup::fetched counting raw DMA run
 *    width instead of installed entries, and the removal taxonomy
 *    lumping sheds/invalidations in with capacity evictions.
 *
 * The schema checks parse the emitted JSON with a small
 * recursive-descent parser defined here, so a malformed document
 * fails loudly rather than by substring accident.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"

#include "check/audit.hpp"
#include "core/cost_model.hpp"
#include "core/driver.hpp"
#include "core/shared_cache.hpp"
#include "core/utlb.hpp"
#include "mem/address_space.hpp"
#include "mem/phys_memory.hpp"
#include "mem/pinning.hpp"
#include "nic/sram.hpp"
#include "nic/timing.hpp"
#include "sim/json.hpp"
#include "sim/stats.hpp"
#include "sim/tracer.hpp"
#include "tlbsim/simulator.hpp"
#include "trace/workloads.hpp"

namespace {

using namespace utlb;
using core::CacheConfig;
using core::HostCosts;
using core::InsertMode;
using core::SharedUtlbCache;
using core::UserUtlb;
using core::UtlbConfig;
using core::UtlbDriver;
using mem::AddressSpace;
using mem::PhysMemory;
using mem::PinFacility;
using mem::ProcId;
using mem::Vpn;
using nic::NicTimings;
using nic::Sram;

// ---------------------------------------------------------------------
// A minimal JSON parser for the schema tests
// ---------------------------------------------------------------------

/** Parsed JSON value (doubles for all numbers). */
struct JValue {
    enum Kind { Null, Bool, Num, Str, Arr, Obj };
    Kind kind = Null;
    bool boolean = false;
    double num = 0.0;
    std::string str;
    std::vector<JValue> arr;
    std::map<std::string, JValue> obj;

    bool has(const std::string &key) const { return obj.count(key) > 0; }

    const JValue &
    at(const std::string &key) const
    {
        auto it = obj.find(key);
        if (it == obj.end()) {
            ADD_FAILURE() << "missing JSON key: " << key;
            static const JValue none;
            return none;
        }
        return it->second;
    }
};

/** Recursive-descent JSON parser; parse errors fail the test. */
class JParser
{
  public:
    static JValue
    parse(const std::string &text)
    {
        JParser p(text);
        JValue v = p.value();
        p.ws();
        EXPECT_EQ(p.pos, text.size()) << "trailing JSON garbage";
        return v;
    }

  private:
    explicit JParser(const std::string &t) : text(t) {}

    void
    ws()
    {
        while (pos < text.size()
               && (text[pos] == ' ' || text[pos] == '\n'
                   || text[pos] == '\t' || text[pos] == '\r'))
            ++pos;
    }

    char
    peek()
    {
        ws();
        if (pos >= text.size()) {
            ADD_FAILURE() << "unexpected end of JSON";
            return '\0';
        }
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() == c)
            ++pos;
        else
            ADD_FAILURE() << "expected '" << c << "' at byte " << pos;
    }

    bool
    eat(const char *lit)
    {
        std::size_t n = std::string(lit).size();
        if (text.compare(pos, n, lit) == 0) {
            pos += n;
            return true;
        }
        return false;
    }

    JValue
    value()
    {
        JValue v;
        switch (peek()) {
          case '{': {
            v.kind = JValue::Obj;
            expect('{');
            if (peek() != '}') {
                do {
                    JValue key = value();
                    expect(':');
                    v.obj.emplace(key.str, value());
                } while (peek() == ',' && (++pos, true));
            }
            expect('}');
            return v;
          }
          case '[': {
            v.kind = JValue::Arr;
            expect('[');
            if (peek() != ']') {
                do {
                    v.arr.push_back(value());
                } while (peek() == ',' && (++pos, true));
            }
            expect(']');
            return v;
          }
          case '"': {
            v.kind = JValue::Str;
            ++pos;
            while (pos < text.size() && text[pos] != '"') {
                if (text[pos] == '\\' && pos + 1 < text.size()) {
                    ++pos;
                    switch (text[pos]) {
                      case 'n': v.str.push_back('\n'); break;
                      case 't': v.str.push_back('\t'); break;
                      case 'r': v.str.push_back('\r'); break;
                      case 'b': v.str.push_back('\b'); break;
                      case 'f': v.str.push_back('\f'); break;
                      case 'u':
                        // Tests only emit \u00XX control escapes.
                        v.str.push_back(static_cast<char>(std::stoi(
                            text.substr(pos + 1, 4), nullptr, 16)));
                        pos += 4;
                        break;
                      default: v.str.push_back(text[pos]);
                    }
                } else {
                    v.str.push_back(text[pos]);
                }
                ++pos;
            }
            expect('"');
            return v;
          }
          default: {
            ws();
            if (eat("true")) {
                v.kind = JValue::Bool;
                v.boolean = true;
                return v;
            }
            if (eat("false")) {
                v.kind = JValue::Bool;
                return v;
            }
            if (eat("null"))
                return v;
            v.kind = JValue::Num;
            std::size_t used = 0;
            v.num = std::stod(text.substr(pos), &used);
            EXPECT_GT(used, 0u) << "bad JSON number at byte " << pos;
            pos += used;
            return v;
          }
        }
    }

    const std::string &text;
    std::size_t pos = 0;
};

/** Find the direct child group named @p name, failing if absent. */
const JValue &
childGroup(const JValue &group, const std::string &name)
{
    for (const JValue &g : group.at("groups").arr) {
        if (g.at("name").str == name)
            return g;
    }
    ADD_FAILURE() << "no child stats group named " << name;
    static const JValue none;
    return none;
}

// ---------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------

TEST(JsonWriter, EscapesAndNestsRoundTrip)
{
    std::ostringstream os;
    sim::JsonWriter w(os);
    w.beginObject();
    w.field("plain", "value");
    w.field("tricky", "a\"b\\c\nd\te\x01f");
    w.field("int", std::uint64_t{42});
    w.field("neg", -1.5);
    w.field("flag", true);
    w.beginArray("list");
    w.value(std::uint64_t{1});
    w.beginObject();
    w.field("inner", "x");
    w.endObject();
    w.endArray();
    w.endObject();
    ASSERT_TRUE(w.done());

    JValue v = JParser::parse(os.str());
    EXPECT_EQ(v.at("plain").str, "value");
    EXPECT_EQ(v.at("tricky").str, "a\"b\\c\nd\te\x01f");
    EXPECT_EQ(v.at("int").num, 42.0);
    EXPECT_EQ(v.at("neg").num, -1.5);
    EXPECT_TRUE(v.at("flag").boolean);
    ASSERT_EQ(v.at("list").arr.size(), 2u);
    EXPECT_EQ(v.at("list").arr[1].at("inner").str, "x");
}

TEST(JsonWriter, RawEmbeddingPreservesDocument)
{
    std::ostringstream os;
    sim::JsonWriter w(os);
    w.beginObject();
    w.rawField("embedded", "{\"k\": 7}");
    w.beginArray("runs");
    w.rawValue("{\"mech\": \"utlb\"}");
    w.endArray();
    w.endObject();
    ASSERT_TRUE(w.done());

    JValue v = JParser::parse(os.str());
    EXPECT_EQ(v.at("embedded").at("k").num, 7.0);
    EXPECT_EQ(v.at("runs").arr.at(0).at("mech").str, "utlb");
}

TEST(JsonWriter, NonFiniteDoublesBecomeZero)
{
    std::ostringstream os;
    sim::JsonWriter w(os);
    w.beginObject();
    w.field("inf", std::numeric_limits<double>::infinity());
    w.field("nan", std::numeric_limits<double>::quiet_NaN());
    w.endObject();
    JValue v = JParser::parse(os.str());
    EXPECT_EQ(v.at("inf").num, 0.0);
    EXPECT_EQ(v.at("nan").num, 0.0);
}

// ---------------------------------------------------------------------
// Stats tree serialization
// ---------------------------------------------------------------------

TEST(StatsJson, GroupTreeSerializes)
{
    sim::StatGroup root("root");
    sim::Counter c(&root, "events", "things that happened");
    sim::Histogram h(&root, "lat", "latency", 10.0, 5);
    sim::StatGroup child("leaf", &root);
    sim::Counter cc(&child, "drops", "discarded");

    c += 3;
    h.sample(1.0);
    h.sample(9.5);
    h.sample(99.0);  // overflow
    ++cc;

    std::ostringstream os;
    root.dumpJson(os);
    JValue v = JParser::parse(os.str());

    EXPECT_EQ(v.at("name").str, "root");
    const JValue &ev = v.at("stats").at("events");
    EXPECT_EQ(ev.at("type").str, "counter");
    EXPECT_EQ(ev.at("value").num, 3.0);
    const JValue &lat = v.at("stats").at("lat");
    EXPECT_EQ(lat.at("type").str, "histogram");
    EXPECT_EQ(lat.at("samples").num, 3.0);
    EXPECT_EQ(lat.at("overflow").num, 1.0);
    ASSERT_EQ(lat.at("buckets").arr.size(), 5u);
    EXPECT_EQ(lat.at("buckets").arr[0].num, 1.0);
    const JValue &leaf = childGroup(v, "leaf");
    EXPECT_EQ(leaf.at("stats").at("drops").at("value").num, 1.0);
}

/** Small deterministic trace shared by the run-level schema tests. */
trace::Trace
smallTrace()
{
    trace::SyntheticSpec spec;
    spec.processes = 2;
    spec.pages = 64;
    spec.lookups = 256;
    return trace::generateSynthetic("uniform", spec, 7);
}

TEST(StatsJson, UtlbRunDocumentMatchesSchema)
{
    tlbsim::SimConfig cfg;
    cfg.cache = {256, 1, true};
    tlbsim::SimResult res = tlbsim::simulateUtlb(smallTrace(), cfg);

    ASSERT_FALSE(res.statsJson.empty());
    JValue v = JParser::parse(res.statsJson);
    EXPECT_EQ(v.at("schema").str, "utlb-stats-v1");
    EXPECT_EQ(v.at("mechanism").str, "utlb");

    const JValue &c = v.at("config");
    EXPECT_EQ(c.at("cache_entries").num, 256.0);
    EXPECT_EQ(c.at("policy").str, "LRU");

    const JValue &r = v.at("results");
    EXPECT_EQ(r.at("lookups").num,
              static_cast<double>(res.lookups));
    EXPECT_EQ(r.at("probes").num, static_cast<double>(res.probes));
    EXPECT_TRUE(r.has("probe_miss_rate"));
    EXPECT_TRUE(r.has("avg_lookup_cost_us"));
    EXPECT_FALSE(c.at("batched_range").boolean);
    EXPECT_GT(r.at("wall_ns").num, 0.0);
    // The writer prints ~12 significant digits; allow that rounding.
    EXPECT_NEAR(r.at("wall_ns").num, res.wallNs,
                res.wallNs * 1e-9 + 1.0);

    // Component tree: the shared cache's counters must agree with
    // the headline results, and each process subtree must carry its
    // pin manager and a populated translation latency histogram.
    const JValue &comp = v.at("components");
    EXPECT_EQ(comp.at("name").str, "utlb");
    const JValue &cache = childGroup(comp, "shared_cache");
    double hits = cache.at("stats").at("hits").at("value").num;
    double misses = cache.at("stats").at("misses").at("value").num;
    EXPECT_EQ(hits + misses, static_cast<double>(res.probes));
    EXPECT_EQ(misses, static_cast<double>(res.niMissProbes));

    // The driver mounts each registered process' host page table.
    const JValue &table =
        childGroup(childGroup(comp, "driver"), "host_table0");
    EXPECT_GT(table.at("stats").at("installs").at("value").num, 0.0);

    const JValue &proc = childGroup(comp, "proc0");
    const JValue &lat = proc.at("stats").at("translate_latency_us");
    EXPECT_GT(lat.at("samples").num, 0.0);
    const JValue &pin = childGroup(proc, "pin_manager");
    EXPECT_GT(pin.at("stats").at("checks").at("value").num, 0.0);
}

TEST(StatsJson, IntrRunDocumentMatchesSchema)
{
    tlbsim::SimConfig cfg;
    cfg.cache = {256, 1, true};
    tlbsim::SimResult res = tlbsim::simulateIntr(smallTrace(), cfg);

    JValue v = JParser::parse(res.statsJson);
    EXPECT_EQ(v.at("mechanism").str, "intr");
    const JValue &comp = v.at("components");
    const JValue &intr = childGroup(comp, "interrupt_tlb");
    EXPECT_EQ(intr.at("stats").at("interrupts").at("value").num,
              static_cast<double>(res.interrupts));
}

TEST(StatsJson, EmptyTraceStillProducesDocument)
{
    tlbsim::SimConfig cfg;
    trace::Trace empty;
    tlbsim::SimResult res = tlbsim::simulateUtlb(empty, cfg);
    JValue v = JParser::parse(res.statsJson);
    EXPECT_EQ(v.at("schema").str, "utlb-stats-v1");
    EXPECT_EQ(v.at("results").at("lookups").num, 0.0);
}

TEST(StatsJson, BatchedReplayMatchesPerPageReplay)
{
    // --batch drives the replay through translateRange(); every
    // modeled number in the document must be unchanged.
    tlbsim::SimConfig cfg;
    cfg.cache = {256, 1, true};
    cfg.prefetchEntries = 4;
    cfg.memLimitPages = 48;
    trace::Trace tr = smallTrace();
    tlbsim::SimResult perpage = tlbsim::simulateUtlb(tr, cfg);
    cfg.batchedRange = true;
    tlbsim::SimResult batched = tlbsim::simulateUtlb(tr, cfg);

    EXPECT_EQ(perpage.lookups, batched.lookups);
    EXPECT_EQ(perpage.probes, batched.probes);
    EXPECT_EQ(perpage.checkMissLookups, batched.checkMissLookups);
    EXPECT_EQ(perpage.niMissLookups, batched.niMissLookups);
    EXPECT_EQ(perpage.niMissProbes, batched.niMissProbes);
    EXPECT_EQ(perpage.pagesPinned, batched.pagesPinned);
    EXPECT_EQ(perpage.pagesUnpinned, batched.pagesUnpinned);
    EXPECT_EQ(perpage.pinIoctls, batched.pinIoctls);
    EXPECT_EQ(perpage.hostTime, batched.hostTime);
    EXPECT_EQ(perpage.pinTime, batched.pinTime);
    EXPECT_EQ(perpage.unpinTime, batched.unpinTime);
    EXPECT_EQ(perpage.nicTime, batched.nicTime);
    EXPECT_EQ(perpage.compulsoryMisses, batched.compulsoryMisses);
    EXPECT_EQ(perpage.capacityMisses, batched.capacityMisses);
    EXPECT_EQ(perpage.conflictMisses, batched.conflictMisses);
}

// ---------------------------------------------------------------------
// Bench JSON ("utlb-bench-v1") schema
// ---------------------------------------------------------------------

TEST(BenchJson, ReporterDocumentMatchesSchema)
{
    std::string dir = ::testing::TempDir();
    ASSERT_EQ(setenv("UTLB_BENCH_JSON_DIR", dir.c_str(), 1), 0);
    {
        bench::JsonReporter rep("schema_test");
        rep.add({{"scenario", "s1"}, {"mode", "batched"}},
                {{"pages_per_sec", 123.0}, {"wall_ns", 456.0}});
        rep.write();
    }
    unsetenv("UTLB_BENCH_JSON_DIR");

    std::ifstream ifs(dir + "/BENCH_schema_test.json");
    ASSERT_TRUE(ifs.good());
    std::ostringstream buf;
    buf << ifs.rdbuf();
    JValue v = JParser::parse(buf.str());

    EXPECT_EQ(v.at("schema").str, "utlb-bench-v1");
    EXPECT_EQ(v.at("bench").str, "schema_test");
    EXPECT_GT(v.at("wall_ns").num, 0.0);
    const JValue &host = v.at("host_info");
    EXPECT_GT(host.at("cores").num, 0.0);
    const std::string &bt = host.at("build_type").str;
    EXPECT_TRUE(bt == "optimized" || bt == "debug") << bt;
    ASSERT_EQ(v.at("points").arr.size(), 1u);
    const JValue &p = v.at("points").arr[0];
    EXPECT_EQ(p.at("labels").at("scenario").str, "s1");
    EXPECT_EQ(p.at("labels").at("mode").str, "batched");
    EXPECT_EQ(p.at("metrics").at("pages_per_sec").num, 123.0);
    EXPECT_EQ(p.at("metrics").at("wall_ns").num, 456.0);
}

// ---------------------------------------------------------------------
// Miss-path tracing
// ---------------------------------------------------------------------

TEST(Tracing, MissPathEmitsProbeFetchInstallSpans)
{
    sim::Tracer tracer;
    tlbsim::SimConfig cfg;
    cfg.cache = {256, 1, true};
    cfg.tracer = &tracer;
    tlbsim::simulateUtlb(smallTrace(), cfg);
    ASSERT_GT(tracer.events(), 0u);

    std::ostringstream os;
    tracer.writeJson(os);
    JValue v = JParser::parse(os.str());
    const auto &events = v.at("traceEvents").arr;
    ASSERT_FALSE(events.empty());

    std::map<std::string, std::size_t> byName;
    double last_end = 0.0;
    for (const JValue &e : events) {
        ++byName[e.at("name").str];
        EXPECT_TRUE(e.has("ph"));
        EXPECT_TRUE(e.has("ts"));
        EXPECT_TRUE(e.has("pid"));
        if (e.at("ph").str == "X") {
            // The clock cursor advances monotonically (allow for
            // double rounding in the tick -> us conversion).
            EXPECT_GE(e.at("ts").num, last_end - 1e-6);
            last_end = e.at("ts").num + e.at("dur").num;
        }
    }
    EXPECT_GT(byName["cache.probe"], 0u);
    EXPECT_GT(byName["table.dma_read"], 0u);
    EXPECT_GT(byName["cache.install"], 0u);
}

TEST(Tracing, BufferBoundDropsInsteadOfGrowing)
{
    sim::Tracer tracer(4);
    for (int i = 0; i < 10; ++i)
        tracer.complete("ev", "cat", 0, 1000, {});
    EXPECT_EQ(tracer.events(), 4u);
    EXPECT_EQ(tracer.dropped(), 6u);
}

// ---------------------------------------------------------------------
// Regression: prefetch refresh must not touch LRU recency
// ---------------------------------------------------------------------

/** Find @p n distinct vpns that map to one set for @p pid. */
std::vector<Vpn>
conflictingVpns(const SharedUtlbCache &cache, ProcId pid, std::size_t n)
{
    std::vector<Vpn> out;
    std::size_t want = cache.setIndex(pid, 1);
    for (Vpn v = 1; out.size() < n && v < 100000; ++v) {
        if (cache.setIndex(pid, v) == want)
            out.push_back(v);
    }
    EXPECT_EQ(out.size(), n);
    return out;
}

TEST(PrefetchRefreshRegression, RefreshDoesNotPromoteResidentLine)
{
    NicTimings timings;
    SharedUtlbCache cache(CacheConfig{8, 2, true}, timings);
    auto vpns = conflictingVpns(cache, 1, 3);
    Vpn a = vpns[0], b = vpns[1], c = vpns[2];

    cache.insert(1, a, 100, InsertMode::Demand);
    cache.insert(1, b, 200, InsertMode::Demand);
    ASSERT_TRUE(cache.lookup(1, a).hit);  // a is now MRU, b is LRU

    // A speculative refresh of b (already resident) rides along with
    // some other miss. The NIC never referenced b, so its recency
    // must not change: b stays LRU.
    cache.insert(1, b, 200, InsertMode::Prefetch);
    EXPECT_EQ(cache.refreshes(), 1u);

    auto evicted = cache.insert(1, c, 300, InsertMode::Demand);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->vpn, b) << "prefetch refresh polluted LRU "
                                  "order: the referenced line was "
                                  "evicted instead of the stale one";
    EXPECT_TRUE(cache.peek(1, a).has_value());
    EXPECT_FALSE(cache.peek(1, b).has_value());
}

TEST(PrefetchRefreshRegression, DemandRefreshStillPromotes)
{
    NicTimings timings;
    SharedUtlbCache cache(CacheConfig{8, 2, true}, timings);
    auto vpns = conflictingVpns(cache, 1, 3);
    Vpn a = vpns[0], b = vpns[1], c = vpns[2];

    cache.insert(1, a, 100, InsertMode::Demand);
    cache.insert(1, b, 200, InsertMode::Demand);
    ASSERT_TRUE(cache.lookup(1, a).hit);

    // A demand re-install of b IS a reference; b becomes MRU and the
    // next conflict evicts a.
    cache.insert(1, b, 201, InsertMode::Demand);
    auto evicted = cache.insert(1, c, 300, InsertMode::Demand);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->vpn, a);
    EXPECT_EQ(cache.peek(1, b), 201u);  // refresh updated the pfn
}

// ---------------------------------------------------------------------
// Regression: NicLookup::fetched counts installs, not run width
// ---------------------------------------------------------------------

/** A one-process UTLB stack (mirrors test_core_utlb's fixture). */
class ObsUtlbStack : public ::testing::Test
{
  protected:
    ObsUtlbStack()
        : physMem(8192), sram(1 << 20),
          cache(CacheConfig{256, 1, true}, timings, &sram),
          driver(physMem, pins, sram, cache, costs),
          space(1, physMem)
    {
        driver.registerProcess(space);
    }

    UserUtlb
    makeUtlb(const UtlbConfig &cfg = {})
    {
        return UserUtlb(driver, cache, timings, 1, cfg);
    }

    HostCosts costs;
    NicTimings timings;
    PhysMemory physMem;
    PinFacility pins;
    Sram sram;
    SharedUtlbCache cache;
    UtlbDriver driver;
    AddressSpace space;
};

TEST_F(ObsUtlbStack, FetchedCountsInstalledEntriesOnly)
{
    UtlbConfig cfg;
    cfg.prefetchEntries = 8;
    UserUtlb utlb = makeUtlb(cfg);

    // Pin exactly one page: the 8-wide DMA run has 7 invalid slots.
    ASSERT_EQ(driver.ioctlPinAndInstall(1, 10, 1).status,
              mem::PinStatus::Ok);
    auto nl = utlb.nicTranslate(10);
    EXPECT_TRUE(nl.miss);
    EXPECT_FALSE(nl.fault);
    EXPECT_EQ(nl.fetched, 1u)
        << "fetched must report installed entries, not the raw run "
           "width";
    // Only the demand entry landed in the cache.
    EXPECT_TRUE(cache.peek(1, 10).has_value());
    EXPECT_FALSE(cache.peek(1, 11).has_value());
}

TEST_F(ObsUtlbStack, FaultRepairFetchesSingleEntryAndCharges1Wide)
{
    UtlbConfig cfg;
    cfg.prefetchEntries = 8;
    UserUtlb utlb = makeUtlb(cfg);

    // Nothing pinned: the NIC faults, the host pins one page, and
    // the re-fetch must be the single repaired entry — not another
    // full prefetch-width DMA of slots known to be absent.
    auto nl = utlb.nicTranslate(20);
    EXPECT_TRUE(nl.miss);
    EXPECT_TRUE(nl.fault);
    EXPECT_EQ(nl.fetched, 1u);

    // Exact cost: miss probe + interrupt + 1-page pin ioctl +
    // 1-entry miss handling.
    SharedUtlbCache scratch(CacheConfig{256, 1, true}, timings);
    sim::Tick probe = scratch.lookup(1, 20).cost;
    EXPECT_EQ(nl.cost, probe + timings.interruptCost
                           + costs.pinCost(1)
                           + timings.missHandleCost(1));
}

// ---------------------------------------------------------------------
// Regression: removal taxonomy (evictions vs sheds vs invalidations)
// ---------------------------------------------------------------------

TEST(RemovalTaxonomyRegression, CountersSeparateCauses)
{
    NicTimings timings;
    SharedUtlbCache cache(CacheConfig{4, 1, true}, timings);
    auto vpns = conflictingVpns(cache, 1, 2);

    // Capacity eviction: a conflicting demand insert displaces LRU.
    cache.insert(1, vpns[0], 100);
    cache.insert(1, vpns[1], 200);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.sheds(), 0u);
    EXPECT_EQ(cache.invalidations(), 0u);

    // Coherence invalidation must not masquerade as an eviction.
    EXPECT_TRUE(cache.invalidate(1, vpns[1]));
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.invalidations(), 1u);

    // Pin-budget shedding is its own category.
    cache.insert(1, 7, 300);
    ASSERT_TRUE(cache.evictLruOfProcess(1).has_value());
    EXPECT_EQ(cache.sheds(), 1u);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.invalidations(), 1u);

    // Whole-cache clears are a fourth bucket, visible via the stats
    // tree. Pick two vpns in different sets so neither insert evicts.
    Vpn y = 9;
    while (cache.setIndex(1, y) == cache.setIndex(1, 8))
        ++y;
    cache.insert(1, 8, 400);
    cache.insert(1, y, 500);
    cache.clear();
    const auto *drops = dynamic_cast<const sim::Counter *>(
        cache.stats().find("clear_drops"));
    ASSERT_NE(drops, nullptr);
    EXPECT_EQ(drops->value(), 2u);
    EXPECT_EQ(cache.evictions(), 1u);

    // And the conservation audit still balances.
    check::AuditReport report;
    cache.audit(report);
    EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(RemovalTaxonomyRegression, ProcessInvalidationCountsPerLine)
{
    NicTimings timings;
    SharedUtlbCache cache(CacheConfig{16, 1, true}, timings);
    for (Vpn v = 0; v < 5; ++v)
        cache.insert(2, v, 100 + v);
    EXPECT_EQ(cache.invalidateProcess(2), 5u);
    EXPECT_EQ(cache.invalidations(), 5u);
    EXPECT_EQ(cache.evictions(), 0u);
    EXPECT_EQ(cache.validEntries(), 0u);
}

} // namespace
