/**
 * @file
 * The OS page pinning/unpinning facility.
 *
 * The paper's only OS requirement is "a device driver that accesses
 * the OS page-pinning and unpinning facility" (§1). This class is
 * that facility: it refcounts pins per (process, virtual page),
 * enforces an optional per-process pin limit (the 4 MB / 16 MB
 * constraints of §6.2 and §6.5), and guarantees a pinned page's frame
 * stays resident (we model that by simply never reclaiming mapped
 * frames; the invariant tests check pinned mappings are stable).
 */

#ifndef UTLB_MEM_PINNING_HPP
#define UTLB_MEM_PINNING_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "check/test_tamper.hpp"
#include "mem/address_space.hpp"
#include "mem/page.hpp"
#include "sim/mutex.hpp"
#include "sim/stats.hpp"

namespace utlb::check {
class AuditReport;
} // namespace utlb::check

namespace utlb::mem {

/** Result status of a pin request. */
enum class PinStatus {
    Ok,             //!< pinned, translation available
    LimitExceeded,  //!< per-process pin limit would be exceeded
    OutOfMemory,    //!< host physical memory exhausted
    UnknownProcess, //!< process not registered
    NotPinned,      //!< unpin of a page that is not pinned
};

/** Human-readable name of a PinStatus. */
const char *toString(PinStatus s);

/**
 * Kernel pin/unpin service with per-process accounting.
 *
 * Pins are refcounted: a page pinned twice must be unpinned twice
 * before its frame may be evicted/reused. The per-process limit
 * counts distinct pinned pages, not refcounts, matching how a real
 * OS accounts locked memory.
 */
class PinFacility
{
  public:
    PinFacility() = default;

    PinFacility(const PinFacility &) = delete;
    PinFacility &operator=(const PinFacility &) = delete;

    /**
     * Arm internal locking (idempotent). Until called, the facility
     * is single-threaded and entry points pay no lock — exactly the
     * historical behaviour. The sharded driver arms it when more
     * than one driver shard can reach the facility concurrently
     * (PinManager's opt-in mutex uses the same pattern). Locking is
     * uncontended mutual exclusion only: it never changes results,
     * modeled costs, or stat totals.
     */
    void enableConcurrent()
    {
        if (!mu)
            mu = std::make_unique<sim::Mutex>();
    }

    /** Register a process' address space. */
    void registerSpace(AddressSpace &space);

    /** Remove a process; implicitly unpins everything it had. */
    void unregisterProcess(ProcId pid);

    /**
     * Set the per-process pin limit in pages (0 = unlimited).
     * Lowering the limit below the current pin count is allowed; it
     * only affects future pins.
     */
    void setPinLimit(ProcId pid, std::size_t pages);

    /** Current limit (0 = unlimited). */
    std::size_t pinLimit(ProcId pid) const;

    /**
     * Pin a single page, demand-mapping it first.
     * @return the frame on success.
     */
    std::optional<Pfn> pinPage(ProcId pid, Vpn vpn, PinStatus *st = nullptr);

    /**
     * Pin a contiguous run of pages all-or-nothing.
     *
     * On failure no page of the run remains pinned by this call.
     * @return the frames on success, nullopt otherwise.
     */
    std::optional<std::vector<Pfn>>
    pinRange(ProcId pid, Vpn start, std::size_t npages,
             PinStatus *st = nullptr);

    /** Drop one pin reference. */
    PinStatus unpinPage(ProcId pid, Vpn vpn);

    /** True if the page has at least one pin reference. */
    bool isPinned(ProcId pid, Vpn vpn) const;

    /** Pin refcount of a page (0 if not pinned). */
    std::uint32_t pinRefs(ProcId pid, Vpn vpn) const;

    /** Number of distinct pinned pages of a process. */
    std::size_t pinnedPages(ProcId pid) const;

    /** Translation of a pinned page; nullopt if not pinned. */
    std::optional<Pfn> pinnedFrame(ProcId pid, Vpn vpn) const;

    /** @name Lifetime counters @{ */
    std::uint64_t totalPinOps() const { return statPinOps.value(); }
    std::uint64_t totalUnpinOps() const { return statUnpinOps.value(); }
    std::uint64_t totalPagesPinned() const
    {
        return statPagesPinned.value();
    }
    std::uint64_t totalPagesUnpinned() const
    {
        return statPagesUnpinned.value();
    }
    std::uint64_t totalFailedPins() const
    {
        return statFailedPins.value();
    }
    /** @} */

    /** This facility's statistics subtree. */
    sim::StatGroup &stats() { return statsGrp; }
    const sim::StatGroup &stats() const { return statsGrp; }

    /**
     * Invariant auditor: every pin reference is positive, no process
     * exceeds its pin limit, and every pinned page has a stable
     * mapping to an allocated frame (the facility's core guarantee).
     */
    void audit(check::AuditReport &report) const;

  private:
    friend struct check::TestTamper;

    struct ProcState {
        AddressSpace *space = nullptr;
        std::size_t limit = 0;  //!< pages; 0 = unlimited
        std::unordered_map<Vpn, std::uint32_t> refs;
    };

    ProcState *findProc(ProcId pid);
    const ProcState *findProc(ProcId pid) const;

    /** @name Lock-free bodies (the public entry points guard) @{ */
    std::optional<Pfn> pinPageImpl(ProcId pid, Vpn vpn, PinStatus *st);
    PinStatus unpinPageImpl(ProcId pid, Vpn vpn);
    bool isPinnedImpl(ProcId pid, Vpn vpn) const;
    /** @} */

    /**
     * The opt-in lock (see enableConcurrent): every public entry
     * point takes guard(); the *Impl internals never re-acquire.
     */
    sim::OptionalLockGuard guard() const
    {
        return sim::OptionalLockGuard(mu.get());
    }

    mutable std::unique_ptr<sim::Mutex> mu;

    std::unordered_map<ProcId, ProcState> procs;

    sim::StatGroup statsGrp{"pin_facility"};
    sim::Counter statPinOps{&statsGrp, "pin_ops",
                            "pin requests (single pages and range "
                            "members)"};
    sim::Counter statUnpinOps{&statsGrp, "unpin_ops",
                              "unpin requests"};
    sim::Counter statPagesPinned{&statsGrp, "pages_pinned",
                                 "pages whose refcount went 0 -> 1"};
    sim::Counter statPagesUnpinned{&statsGrp, "pages_unpinned",
                                   "pages whose refcount went 1 -> 0"};
    sim::Counter statFailedPins{&statsGrp, "failed_pins",
                                "pin requests rejected (limit, OOM, "
                                "unknown process)"};
};

} // namespace utlb::mem

#endif // UTLB_MEM_PINNING_HPP
