/**
 * @file
 * Discrete-event simulation queue.
 *
 * The NIC model, network links, and the VMMC firmware loop are all
 * driven from one EventQueue. Events with equal timestamps fire in
 * insertion order (a stable priority queue), which keeps firmware
 * command processing deterministic when several processes post
 * commands in the same tick.
 */

#ifndef UTLB_SIM_EVENT_QUEUE_HPP
#define UTLB_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "check/test_tamper.hpp"
#include "sim/types.hpp"

namespace utlb::check {
class AuditReport;
} // namespace utlb::check

namespace utlb::sim {

/** Callback type invoked when an event fires. */
using EventFn = std::function<void()>;

/**
 * A stable discrete-event queue with an integral tick clock.
 *
 * Usage: schedule() callbacks at absolute times or after() delays,
 * then run() until the queue drains (or runUntil() a horizon). The
 * current simulated time is now().
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return curTick; }

    /** Number of events not yet fired. */
    std::size_t pending() const { return heap.size(); }

    /** Total number of events ever fired. */
    std::uint64_t fired() const { return numFired; }

    /**
     * Schedule @p fn at absolute time @p when.
     *
     * @pre when >= now(); scheduling in the past is a logic error.
     */
    void schedule(Tick when, EventFn fn);

    /** Schedule @p fn @p delay ticks after the current time. */
    void after(Tick delay, EventFn fn) { schedule(curTick + delay, fn); }

    /**
     * Run events until the queue is empty.
     * @return the time of the last fired event.
     */
    Tick run();

    /**
     * Run events with timestamps <= @p horizon.
     *
     * Advances now() to @p horizon even if the queue drains early, so
     * repeated calls form a monotonic timeline.
     * @return the number of events fired.
     */
    std::uint64_t runUntil(Tick horizon);

    /** Fire exactly one event, if any. @return true if one fired. */
    bool step();

    /** Drop all pending events (does not rewind the clock). */
    void clear();

    /**
     * Invariant auditor: time monotonicity — no pending event may be
     * older than the current tick, and the sequence/fired counters
     * must be mutually consistent.
     */
    void audit(check::AuditReport &report) const;

  private:
    friend struct check::TestTamper;

    struct Entry {
        Tick when;
        std::uint64_t seq;
        EventFn fn;
    };

    struct Later {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap;
    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t numFired = 0;
};

} // namespace utlb::sim

#endif // UTLB_SIM_EVENT_QUEUE_HPP
