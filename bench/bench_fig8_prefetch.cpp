/**
 * @file
 * Figure 8: the effect of prefetching translation entries in the
 * Shared UTLB-Cache — RADIX with infinite host memory and a
 * direct-mapped cache. Left series: overall cache miss rate vs
 * entries fetched per miss; right series: average cache lookup cost
 * vs entries fetched per miss, for 1K-16K entry caches.
 */

#include "bench_common.hpp"

int
main()
{
    using namespace bench;
    using utlb::sim::TextTable;
    using utlb::tlbsim::SimConfig;
    using utlb::tlbsim::simulateUtlb;

    TraceSet traces;
    const auto &trace = traces.get("radix");
    const std::vector<std::size_t> prefetch{1, 4, 8, 12, 16,
                                            20, 24, 28, 32};

    TextTable miss_t(
        "Figure 8 (left): RADIX cache miss rate vs prefetch size "
        "(direct-mapped, infinite memory)");
    TextTable cost_t(
        "Figure 8 (right): RADIX average cache lookup cost (us per "
        "probe) vs prefetch size");
    std::vector<std::string> header{"Entries/miss"};
    for (std::size_t e : kCacheSizes)
        header.push_back(sizeLabel(e) + " entries");
    miss_t.setHeader(header);
    cost_t.setHeader(header);
    JsonReporter json("fig8_prefetch");

    for (std::size_t pf : prefetch) {
        std::vector<std::string> miss_row{
            TextTable::num(std::uint64_t{pf})};
        std::vector<std::string> cost_row = miss_row;
        for (std::size_t entries : kCacheSizes) {
            SimConfig cfg;
            cfg.cache = {entries, 1, true};
            cfg.prefetchEntries = pf;
            auto res = simulateUtlb(trace, cfg);
            json.add({{"series", "no_prepin"},
                      {"cache", sizeLabel(entries)},
                      {"prefetch", std::to_string(pf)}},
                     {{"miss_rate", res.probeMissRate()},
                      {"avg_probe_cost_us", res.avgProbeCostUs()}});
            miss_row.push_back(rate(res.probeMissRate()));
            cost_row.push_back(rate(res.avgProbeCostUs()));
        }
        miss_t.addRow(miss_row);
        cost_t.addRow(cost_row);
    }
    miss_t.print(std::cout);
    std::cout << '\n';
    cost_t.print(std::cout);

    // §6.4's caveat: "in order for prefetching to work well,
    // translations for contiguous application pages must be
    // available during a miss." On a first touch the forward
    // neighbours are not pinned yet, so prefetch cannot help
    // compulsory misses — unless sequential pre-pinning (§6.5)
    // installs their translations ahead of the NIC's demand. This
    // second sweep couples the two mechanisms.
    TextTable pp_miss(
        "Figure 8 (coupled with 16-page pre-pinning): RADIX miss "
        "rate when contiguous translations are made available");
    TextTable pp_cost(
        "Figure 8 (coupled with 16-page pre-pinning): RADIX average "
        "cache lookup cost (us per probe)");
    pp_miss.setHeader(header);
    pp_cost.setHeader(header);
    for (std::size_t pf : prefetch) {
        std::vector<std::string> miss_row{
            TextTable::num(std::uint64_t{pf})};
        std::vector<std::string> cost_row = miss_row;
        for (std::size_t entries : kCacheSizes) {
            SimConfig cfg;
            cfg.cache = {entries, 1, true};
            cfg.prefetchEntries = pf;
            cfg.prepinPages = 16;
            auto res = simulateUtlb(trace, cfg);
            json.add({{"series", "prepin16"},
                      {"cache", sizeLabel(entries)},
                      {"prefetch", std::to_string(pf)}},
                     {{"miss_rate", res.probeMissRate()},
                      {"avg_probe_cost_us", res.avgProbeCostUs()}});
            miss_row.push_back(rate(res.probeMissRate()));
            cost_row.push_back(rate(res.avgProbeCostUs()));
        }
        pp_miss.addRow(miss_row);
        pp_cost.addRow(cost_row);
    }
    std::cout << '\n';
    pp_miss.print(std::cout);
    std::cout << '\n';
    pp_cost.print(std::cout);

    std::cout << "\nPaper shape checks: miss rate falls as "
                 "prefetching becomes more aggressive. The large "
                 "drop — and the falling average lookup cost —\n"
                 "appear when contiguous translations are available "
                 "at miss time (§6.4's stated requirement), which "
                 "sequential pre-pinning provides;\nwithout it, "
                 "prefetch can only accelerate revisit misses, since "
                 "a first-touch page's forward neighbours are not "
                 "pinned yet.\n";
    return 0;
}
