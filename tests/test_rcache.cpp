/**
 * @file
 * Tests for the registration cache (the RDMA-era descendant of the
 * UTLB idea): interval coverage, coalescing, region-LRU eviction,
 * budget conservation, and randomized consistency against the
 * kernel pin facility.
 */

#include <gtest/gtest.h>

#include "core/registration_cache.hpp"
#include "mem/address_space.hpp"
#include "mem/phys_memory.hpp"
#include "mem/pinning.hpp"
#include "nic/sram.hpp"
#include "nic/timing.hpp"
#include "sim/random.hpp"

namespace {

using namespace utlb::core;
using utlb::mem::addrOf;
using utlb::mem::AddressSpace;
using utlb::mem::kPageSize;
using utlb::mem::PhysMemory;
using utlb::mem::PinFacility;
using utlb::mem::Vpn;
using utlb::nic::NicTimings;
using utlb::nic::Sram;

class RcacheStack : public ::testing::Test
{
  protected:
    RcacheStack()
        : physMem(8192), sram(1 << 20),
          cache(CacheConfig{256, 1, true}, timings, &sram),
          driver(physMem, pins, sram, cache, costs),
          space(1, physMem)
    {
        driver.registerProcess(space);
    }

    RegistrationCache
    makeCache(std::size_t max_bytes = 0)
    {
        RegCacheConfig cfg;
        cfg.maxBytes = max_bytes;
        return RegistrationCache(driver, 1, cfg);
    }

    HostCosts costs;
    NicTimings timings;
    PhysMemory physMem;
    PinFacility pins;
    Sram sram;
    SharedUtlbCache cache;
    UtlbDriver driver;
    AddressSpace space;
};

TEST_F(RcacheStack, FirstAcquireRegistersSecondHits)
{
    auto rc = makeCache();
    auto r1 = rc.acquire(addrOf(10), 4 * kPageSize);
    EXPECT_TRUE(r1.ok);
    EXPECT_FALSE(r1.hit);
    EXPECT_EQ(r1.pagesPinned, 4u);
    EXPECT_EQ(rc.regions(), 1u);
    EXPECT_EQ(rc.registeredBytes(), 4u * kPageSize);

    auto r2 = rc.acquire(addrOf(10), 4 * kPageSize);
    EXPECT_TRUE(r2.hit);
    EXPECT_EQ(r2.pagesPinned, 0u);
    // Hit cost is far below a pin ioctl.
    EXPECT_LT(r2.cost, utlb::sim::usToTicks(1.0));
}

TEST_F(RcacheStack, SubRangeOfRegistrationHits)
{
    auto rc = makeCache();
    rc.acquire(addrOf(10), 8 * kPageSize);
    auto r = rc.acquire(addrOf(12) + 100, 2 * kPageSize);
    EXPECT_TRUE(r.hit);
}

TEST_F(RcacheStack, OverlappingAcquiresCoalesce)
{
    auto rc = makeCache();
    rc.acquire(addrOf(10), 4 * kPageSize);  // [10,14)
    auto r = rc.acquire(addrOf(12), 4 * kPageSize);  // [12,16)
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.pagesPinned, 2u);  // only 14,15 are new
    EXPECT_EQ(rc.regions(), 1u);   // merged
    EXPECT_TRUE(rc.covered(addrOf(10), 6 * kPageSize));
    EXPECT_EQ(rc.registeredBytes(), 6u * kPageSize);
}

TEST_F(RcacheStack, AbuttingRegionsMerge)
{
    auto rc = makeCache();
    rc.acquire(addrOf(10), 2 * kPageSize);  // [10,12)
    rc.acquire(addrOf(12), 2 * kPageSize);  // [12,14) abuts
    EXPECT_EQ(rc.regions(), 1u);
    EXPECT_TRUE(rc.covered(addrOf(10), 4 * kPageSize));
}

TEST_F(RcacheStack, BridgingAcquireAbsorbsBothNeighbours)
{
    auto rc = makeCache();
    rc.acquire(addrOf(10), 2 * kPageSize);  // [10,12)
    rc.acquire(addrOf(20), 2 * kPageSize);  // [20,22)
    auto r = rc.acquire(addrOf(11), 10 * kPageSize);  // [11,21)
    EXPECT_EQ(rc.regions(), 1u);
    EXPECT_EQ(r.pagesPinned, 8u);  // 12..19
    EXPECT_TRUE(rc.covered(addrOf(10), 12 * kPageSize));
    EXPECT_EQ(rc.registeredBytes(), 12u * kPageSize);
}

TEST_F(RcacheStack, BudgetEvictsWholeColdRegions)
{
    auto rc = makeCache(8 * kPageSize);
    rc.acquire(addrOf(10), 4 * kPageSize);   // region A
    rc.acquire(addrOf(100), 4 * kPageSize);  // region B (A is LRU)
    auto r = rc.acquire(addrOf(200), 4 * kPageSize);  // evicts A
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.regionsEvicted, 1u);
    EXPECT_EQ(r.pagesUnpinned, 4u);
    EXPECT_FALSE(rc.covered(addrOf(10), kPageSize));
    EXPECT_TRUE(rc.covered(addrOf(100), 4 * kPageSize));
    EXPECT_LE(rc.registeredBytes(), 8u * kPageSize);
    // The kernel agrees: region A's pages are unpinned.
    EXPECT_FALSE(pins.isPinned(1, 10));
    EXPECT_TRUE(pins.isPinned(1, 100));
}

TEST_F(RcacheStack, HitRefreshesLru)
{
    auto rc = makeCache(8 * kPageSize);
    rc.acquire(addrOf(10), 4 * kPageSize);   // A
    rc.acquire(addrOf(100), 4 * kPageSize);  // B
    rc.acquire(addrOf(10), kPageSize);       // touch A: B is LRU
    rc.acquire(addrOf(200), 4 * kPageSize);  // evicts B
    EXPECT_TRUE(rc.covered(addrOf(10), 4 * kPageSize));
    EXPECT_FALSE(rc.covered(addrOf(100), kPageSize));
}

TEST_F(RcacheStack, RequestLargerThanBudgetFails)
{
    auto rc = makeCache(4 * kPageSize);
    auto r = rc.acquire(addrOf(10), 8 * kPageSize);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(rc.registeredBytes(), 0u);
    EXPECT_EQ(pins.pinnedPages(1), 0u);
}

TEST_F(RcacheStack, DestructorDeregistersEverything)
{
    {
        auto rc = makeCache();
        rc.acquire(addrOf(10), 4 * kPageSize);
        rc.acquire(addrOf(100), 4 * kPageSize);
        EXPECT_EQ(pins.pinnedPages(1), 8u);
    }
    EXPECT_EQ(pins.pinnedPages(1), 0u);
}

TEST_F(RcacheStack, RandomizedConsistencyWithKernelPins)
{
    auto rc = makeCache(64 * kPageSize);
    utlb::sim::Rng rng(21);
    for (int step = 0; step < 3000; ++step) {
        Vpn vpn = rng.below(256);
        std::size_t pages = 1 + rng.below(8);
        auto r = rc.acquire(addrOf(vpn), pages * kPageSize);
        ASSERT_TRUE(r.ok);
        // Everything the cache claims covered is really pinned.
        for (std::size_t i = 0; i < pages; ++i)
            ASSERT_TRUE(pins.isPinned(1, vpn + i));
        ASSERT_LE(rc.registeredBytes(), 64u * kPageSize);
        // Kernel pin count equals registered pages exactly (each
        // page pinned once by the cache).
        ASSERT_EQ(pins.pinnedPages(1) * kPageSize,
                  rc.registeredBytes());
    }
}

TEST_F(RcacheStack, RegionGranularityTradeoffIsVisible)
{
    // The rcache's defining behaviour vs the UTLB bitmap: evicting
    // makes a *whole region* cold, so a later touch of any page of
    // it re-registers the full extent.
    auto rc = makeCache(8 * kPageSize);
    rc.acquire(addrOf(0), 8 * kPageSize);    // one big region
    auto r = rc.acquire(addrOf(100), kPageSize);  // forces eviction
    EXPECT_EQ(r.pagesUnpinned, 8u);  // all 8 pages went at once
    auto r2 = rc.acquire(addrOf(0), kPageSize);
    EXPECT_FALSE(r2.hit);
    EXPECT_EQ(r2.pagesPinned, 1u);
}

} // namespace
