/**
 * @file
 * Plain-text table formatter.
 *
 * The bench harnesses print each of the paper's tables in a uniform,
 * aligned text layout. TextTable collects cells as strings and right-
 * pads columns on render; it deliberately has no numeric formatting
 * policy of its own — callers format values (so each bench controls
 * its precision exactly as the paper prints it).
 */

#ifndef UTLB_SIM_TABLE_HPP
#define UTLB_SIM_TABLE_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace utlb::sim {

/** A simple aligned text table with an optional title and header. */
class TextTable
{
  public:
    explicit TextTable(std::string title = {}) : tableTitle(std::move(title))
    {}

    /** Set the header row (printed with a separator rule below it). */
    void setHeader(std::vector<std::string> cells);

    /** Append a data row. Rows may have differing lengths. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal rule between data rows. */
    void addRule();

    /** Number of data rows added so far. */
    std::size_t rows() const { return body.size(); }

    /** Render the table to @p os. */
    void print(std::ostream &os) const;

    /** Render the table to a string. */
    std::string str() const;

    /** Format a double with @p decimals digits after the point. */
    static std::string num(double v, int decimals = 2);

    /** Format an integer. */
    static std::string num(std::uint64_t v);

  private:
    struct Row {
        std::vector<std::string> cells;
        bool rule = false;
    };

    std::string tableTitle;
    std::vector<std::string> header;
    std::vector<Row> body;
};

} // namespace utlb::sim

#endif // UTLB_SIM_TABLE_HPP
