#include "check/check.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace utlb::check {

namespace {

std::function<std::uint64_t()> &
timeSource()
{
    static std::function<std::uint64_t()> src;
    return src;
}

std::function<void(const Failure &)> &
failureHandler()
{
    static std::function<void(const Failure &)> handler;
    return handler;
}

thread_local const char *curComponent = nullptr;
thread_local std::uint64_t curPid = kNoPid;

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);
    if (len <= 0)
        return {};
    std::vector<char> buf(static_cast<std::size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<std::size_t>(len));
}

void
printFailure(const Failure &f)
{
    std::fprintf(stderr, "UTLB check failed: %s\n", f.expr);
    if (!f.message.empty())
        std::fprintf(stderr, "  detail:    %s\n", f.message.c_str());
    std::fprintf(stderr, "  location:  %s:%d\n", f.file, f.line);
    std::fprintf(stderr, "  component: %s\n",
                 f.component.empty() ? "(none)" : f.component.c_str());
    if (f.pid != kNoPid)
        std::fprintf(stderr, "  process:   %llu\n",
                     static_cast<unsigned long long>(f.pid));
    if (f.hasTime)
        std::fprintf(stderr, "  sim time:  %llu ticks\n",
                     static_cast<unsigned long long>(f.time));
    std::fflush(stderr);
}

} // namespace

void
setTimeSource(std::function<std::uint64_t()> source)
{
    timeSource() = std::move(source);
}

void
setFailureHandler(std::function<void(const Failure &)> handler)
{
    failureHandler() = std::move(handler);
}

ScopedContext::ScopedContext(const char *component, std::uint64_t pid)
    : prevComponent(curComponent), prevPid(curPid)
{
    curComponent = component;
    curPid = pid;
}

ScopedContext::~ScopedContext()
{
    curComponent = prevComponent;
    curPid = prevPid;
}

namespace {

[[noreturn]] void
failWithMessage(const char *expr, const char *file, int line,
                std::string message)
{
    Failure f;
    f.expr = expr;
    f.file = file;
    f.line = line;
    f.message = std::move(message);
    f.component = curComponent ? curComponent : "";
    f.pid = curPid;
    f.hasTime = static_cast<bool>(timeSource());
    f.time = f.hasTime ? timeSource()() : 0;

    if (failureHandler()) {
        failureHandler()(f);
        // A handler that returns (instead of throwing/exiting) must
        // not let execution continue past a failed precondition.
    } else {
        printFailure(f);
    }
    std::abort();
}

} // namespace

void
failCheck(const char *expr, const char *file, int line,
          const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string message = vformat(fmt, ap);
    va_end(ap);
    failWithMessage(expr, file, line, std::move(message));
}

void
failCheck(const char *expr, const char *file, int line)
{
    failWithMessage(expr, file, line, {});
}

} // namespace utlb::check
