#include "core/bitvector.hpp"

#include <bit>

#include "check/audit.hpp"
#include "core/cost_model.hpp"

namespace utlb::core {

namespace {

/** Shared cost curves (Table 1 "check" rows). */
const HostCosts &
costs()
{
    static const HostCosts c;
    return c;
}

} // namespace

void
PinBitVector::ensure(std::uint64_t word_index)
{
    if (word_index >= words.size())
        words.resize(word_index + 1, 0);
}

void
PinBitVector::set(mem::Vpn vpn)
{
    std::uint64_t w = vpn / 64;
    std::uint64_t bit = std::uint64_t{1} << (vpn % 64);
    ensure(w);
    if (!(words[w] & bit)) {
        words[w] |= bit;
        ++numSet;
    }
}

void
PinBitVector::clear(mem::Vpn vpn)
{
    std::uint64_t w = vpn / 64;
    if (!wordPresent(w))
        return;
    std::uint64_t bit = std::uint64_t{1} << (vpn % 64);
    if (words[w] & bit) {
        words[w] &= ~bit;
        --numSet;
    }
}

bool
PinBitVector::test(mem::Vpn vpn) const
{
    std::uint64_t w = vpn / 64;
    if (!wordPresent(w))
        return false;
    return (words[w] >> (vpn % 64)) & 1;
}

CheckResult
PinBitVector::checkRange(mem::Vpn start, std::size_t npages) const
{
    CheckResult res{};
    res.allPinned = true;

    std::uint64_t last_word = ~std::uint64_t{0};
    std::size_t scanned_pages = 0;
    for (std::size_t i = 0; i < npages; ++i) {
        mem::Vpn vpn = start + i;
        std::uint64_t w = vpn / 64;
        if (w != last_word) {
            ++res.wordsScanned;
            last_word = w;
        }
        ++scanned_pages;
        if (!test(vpn)) {
            res.allPinned = false;
            res.firstUnpinned = vpn;
            break;
        }
    }

    // Cost model (Table 1 "check" rows): the scan stops at the first
    // zero bit. Finding it at the very first page is the measured
    // minimum (0.2 us); scanning the whole range costs the measured
    // maximum for that range length.
    if (!res.allPinned && scanned_pages <= 1)
        res.cost = costs().checkCostMin(npages ? npages : 1);
    else
        res.cost = costs().checkCostMax(scanned_pages ? scanned_pages : 1);
    return res;
}

void
PinBitVector::forEachSet(const std::function<void(mem::Vpn)> &fn) const
{
    for (std::size_t w = 0; w < words.size(); ++w) {
        std::uint64_t word = words[w];
        while (word != 0) {
            unsigned bit = static_cast<unsigned>(std::countr_zero(word));
            fn(static_cast<mem::Vpn>(w * 64 + bit));
            word &= word - 1;
        }
    }
}

void
PinBitVector::audit(check::AuditReport &report) const
{
    report.component("bitvector");
    std::size_t popcount = 0;
    for (std::uint64_t word : words)
        popcount += static_cast<std::size_t>(std::popcount(word));
    report.require(popcount == numSet,
                   "cached set-bit count %zu != recounted %zu",
                   numSet, popcount);
}

} // namespace utlb::core
