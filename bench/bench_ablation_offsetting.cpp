/**
 * @file
 * Ablation: index offsetting x associativity (extends Table 8's
 * discussion in §6.3).
 *
 * The paper reports that (a) offsetting makes direct-mapped
 * competitive with set-associative caches, (b) offsetting "may
 * interfere with set-associativity", and (c) once per-probe cost is
 * considered, set-associativity loses because the firmware checks
 * one way at a time. This ablation crosses both axes and also
 * reports the cost-weighted outcome, for a single representative
 * cache size.
 */

#include "bench_common.hpp"

int
main()
{
    using namespace bench;
    using utlb::tlbsim::SimConfig;
    using utlb::tlbsim::simulateUtlb;

    TraceSet traces;
    auto names = workloadNames();
    constexpr std::size_t kEntries = 4096;

    utlb::sim::TextTable t(
        "Ablation: offsetting x associativity at 4K entries "
        "(miss rate | avg NIC cost per probe, us)");
    std::vector<std::string> header{"Assoc", "Offset"};
    for (const auto &n : names)
        header.push_back(n);
    t.setHeader(header);

    for (unsigned assoc : {1u, 2u, 4u}) {
        for (bool offset : {true, false}) {
            std::vector<std::string> row{
                std::to_string(assoc) + "-way",
                offset ? "yes" : "no"};
            for (const auto &n : names) {
                SimConfig cfg;
                cfg.cache = {kEntries, assoc, offset};
                auto res = simulateUtlb(traces.get(n), cfg);
                row.push_back(rate(res.probeMissRate()) + " | "
                              + rate(res.avgProbeCostUs()));
            }
            t.addRow(row);
        }
        t.addRule();
    }
    t.print(std::cout);

    std::cout << "\nShape checks: direct+offset is within noise of "
                 "2/4-way on miss rate but strictly cheaper per "
                 "probe\n(sequential way probing); dropping the "
                 "offset is catastrophic at any associativity "
                 "because the five\nprocesses' identical page "
                 "numbers collide.\n";
    return 0;
}
