#include "core/utlb.hpp"

#include "core/fill_pipeline.hpp"
#include "sim/log.hpp"

namespace utlb::core {

using mem::Vpn;

MissOutcome
serviceMiss(UtlbDriver &driver, SharedUtlbCache &cache,
            const nic::NicTimings &timings, mem::ProcId pid, Vpn vpn,
            std::size_t width,
            std::vector<std::optional<mem::Pfn>> &runBuf,
            std::vector<std::optional<mem::Pfn>> &repairBuf,
            SharedUtlbCache::Shard *shard, sim::Tracer *tracer)
{
    MissOutcome mo;
    // Locked resolve: fleet churn registers/unregisters other
    // tenants on this shard while this miss is in flight.
    HostPageTable *tablePtr = driver.pageTableShared(pid);
    if (!tablePtr)
        sim::panic("serviceMiss for unregistered process %u", pid);
    HostPageTable &table = *tablePtr;
    table.readRun(vpn, width, runBuf);
    auto &run = runBuf;

    if (run.empty() || !run[0]) {
        // The page is not pinned: only reachable when the host-side
        // prepare() was bypassed. Fall back to interrupting the host
        // (§3.1), pinning on the NIC's behalf.
        mo.fault = true;
        sim::Tick faultCost = timings.interruptCost;
        IoctlResult io = driver.ioctlPinAndInstall(pid, vpn, 1);
        faultCost += io.cost;
        mo.cost += faultCost;
        if (tracer)
            tracer->complete("pin.ioctl", "nic", pid, faultCost,
                             {{"vpn", vpn},
                              {"ok", io.status == mem::PinStatus::Ok
                                         ? 1u
                                         : 0u}});
        if (io.status != mem::PinStatus::Ok) {
            mo.pfn = driver.garbageFrame();
            return mo;
        }
        // The host pinned exactly one page for us; fetch that single
        // repaired entry rather than re-charging a full prefetch-width
        // DMA for neighbours the wide read already answered.
        table.readRun(vpn, 1, repairBuf);
        if (run.empty()) {
            run.swap(repairBuf);
        } else {
            // The wide DMA returned valid neighbours around the
            // invalid first entry. Splice the repaired entry into the
            // run instead of replacing the whole run with it: the
            // neighbours were already transferred, so they install —
            // and count into fetched / prefetch_installs — exactly
            // once.
            run[0] = repairBuf.empty()
                ? std::nullopt
                : repairBuf[0];
            mo.cost += timings.entryFetchCost(1);
        }
    }

    // Install the missing entry plus any valid prefetched neighbours
    // ("in order for prefetching to work well, translations for
    // contiguous application pages must be available", §6.4). Only
    // run[0] answers a real reference; neighbours are speculative and
    // must not perturb LRU order when they merely refresh a resident
    // line.
    std::size_t installed = 0;
    for (std::size_t i = 0; i < run.size(); ++i) {
        if (!run[i])
            continue;
        InsertMode mode =
            i == 0 ? InsertMode::Demand : InsertMode::Prefetch;
        if (shard)
            cache.insertMT(pid, vpn + i, *run[i], mode, *shard);
        else
            cache.insert(pid, vpn + i, *run[i], mode);
        if (i != 0)
            ++mo.prefetchInstalls;
        ++installed;
    }
    mo.fetched = installed;
    // An empty run means the table gave us nothing to DMA: charge the
    // single directory reference that discovered that, not a
    // full-width fetch of entries that were never transferred.
    sim::Tick fetchCost = run.empty()
        ? timings.directoryRefCost
        : timings.missHandleCost(run.size());
    mo.cost += fetchCost;
    if (tracer) {
        tracer->complete("table.dma_read", "nic", pid, fetchCost,
                         {{"vpn", vpn}, {"width", run.size()}});
        tracer->instant("cache.install", "nic", pid,
                        {{"vpn", vpn}, {"installed", installed}});
    }
    if (installed == 0 || !run[0]) {
        mo.pfn = driver.garbageFrame();
        return mo;
    }
    mo.pfn = *run[0];
    mo.ok = true;
    return mo;
}

UserUtlb::UserUtlb(UtlbDriver &drv, SharedUtlbCache &cache,
                   const nic::NicTimings &t, mem::ProcId pid,
                   const UtlbConfig &config)
    : driver(&drv), nicCache(&cache), timings(&t), procId(pid),
      cfg(config), pinMgr(drv, pid, config.pin),
      statsGrp("proc" + std::to_string(pid))
{
    if (cfg.prefetchEntries == 0)
        sim::fatal("prefetchEntries must be >= 1");
    statsGrp.adopt(pinMgr.stats());
    if (cfg.concurrent) {
        nicCache->enableConcurrent();
        pinMgr.enableConcurrent();
        shard.emplace(nicCache->makeShard());
    }
}

UserUtlb::~UserUtlb()
{
    flushShardStats();
}

void
UserUtlb::flushShardStats()
{
    if (shard)
        nicCache->absorbShard(*shard);
}

EnsureResult
UserUtlb::prepare(mem::VirtAddr va, std::size_t nbytes)
{
    Vpn start = mem::pageOf(va);
    std::size_t npages = mem::pagesSpanned(va, nbytes);
    if (npages == 0)
        return EnsureResult{};
    return pinMgr.ensurePinned(start, npages);
}

NicLookup
UserUtlb::nicTranslate(Vpn vpn)
{
    NicLookup out = nicTranslateImpl(vpn);
    statTranslateLatency.sample(sim::ticksToUs(out.cost));
    return out;
}

NicLookup
UserUtlb::nicTranslateImpl(Vpn vpn)
{
    NicLookup out;
    CacheProbe probe = shard ? nicCache->lookupMT(procId, vpn, *shard)
                             : nicCache->lookup(procId, vpn);
    out.cost += probe.cost;
    if (tracer)
        tracer->complete("cache.probe", "nic", procId, probe.cost,
                         {{"vpn", vpn}, {"hit", probe.hit ? 1u : 0u}});
    if (probe.hit) {
        out.pfn = probe.pfn;
        return out;
    }

    out.miss = true;
    ++statMisses;
    MissOutcome mo = serviceMiss(*driver, *nicCache, *timings, procId,
                                 vpn, cfg.prefetchEntries, runBuf,
                                 repairBuf, shard ? &*shard : nullptr,
                                 tracer);
    if (mo.fault) {
        out.fault = true;
        ++statFaults;
    }
    statPrefetchInstalls += mo.prefetchInstalls;
    out.fetched = mo.fetched;
    out.cost += mo.cost;
    out.pfn = mo.pfn;
    return out;
}

void
UserUtlb::attachFillPipeline(FillPipeline *fp)
{
    if (fp && !shard)
        sim::fatal("attachFillPipeline requires concurrent mode "
                   "(UtlbConfig::concurrent)");
    fillPipe = fp;
    if (fp) {
        if (!tickets)
            tickets =
                std::make_unique<FillTicket[]>(kMaxOutstandingFills);
        asyncPending.reserve(kMaxOutstandingFills);
        asyncWaiters.reserve(kMaxOutstandingFills);
        // Fresh modeled DMA engines per attachment: a re-attached
        // view starts with every engine idle and its clock at zero.
        asyncClock = 0;
        engineReadyAt.assign(kMaxOutstandingFills, 0);
    }
}

void
UserUtlb::syncServicePage(Vpn vpn, sim::Tick probeCost, mem::Pfn &slot,
                          Translation &tr)
{
    MissOutcome mo = serviceMiss(*driver, *nicCache, *timings, procId,
                                 vpn, cfg.prefetchEntries, runBuf,
                                 repairBuf, shard ? &*shard : nullptr,
                                 nullptr);
    if (mo.fault) {
        ++statFaults;
        ++tr.faults;
    }
    statPrefetchInstalls += mo.prefetchInstalls;
    tr.nicCost += mo.cost;
    statTranslateLatency.sample(sim::ticksToUs(probeCost + mo.cost));
    slot = mo.pfn;
}

namespace {

/** Copy an EnsureResult's accounting into a Translation. */
void
fillHostHalf(Translation &tr, const EnsureResult &host)
{
    tr.hostCost = host.cost;
    tr.pinCost = host.pinCost;
    tr.unpinCost = host.unpinCost;
    tr.pinIoctls = host.pinIoctls;
    tr.unpinIoctls = host.unpinIoctls;
    tr.checkMiss = host.checkMiss;
    tr.pagesPinned = host.pagesPinned;
    tr.pagesUnpinned = host.pagesUnpinned;
    tr.ok = host.ok;
}

} // namespace

Translation
UserUtlb::translate(mem::VirtAddr va, std::size_t nbytes)
{
    Translation tr;
    std::size_t npages = mem::pagesSpanned(va, nbytes);
    if (npages == 0)
        return tr;

    EnsureResult host = prepare(va, nbytes);
    fillHostHalf(tr, host);
    if (!host.ok)
        return tr;

    Vpn start = mem::pageOf(va);
    tr.pageAddrs.reserve(npages);
    for (std::size_t i = 0; i < npages; ++i) {
        NicLookup nl = nicTranslate(start + i);
        tr.nicCost += nl.cost;
        if (nl.miss) {
            ++tr.niMisses;
            tr.missPages.push_back(static_cast<std::uint32_t>(i));
        }
        if (nl.fault)
            ++tr.faults;
        tr.pageAddrs.push_back(mem::frameAddr(nl.pfn));
    }
    return tr;
}

Translation
UserUtlb::translateRange(mem::VirtAddr va, std::size_t nbytes)
{
    Translation tr;
    std::size_t npages = mem::pagesSpanned(va, nbytes);
    if (npages == 0)
        return tr;

    Vpn start = mem::pageOf(va);
    EnsureResult host = pinMgr.ensurePinnedRange(start, npages);
    fillHostHalf(tr, host);
    if (!host.ok)
        return tr;

    // The batched walk needs every hit to cost the same single probe
    // (direct-mapped) and emits no per-page trace events; otherwise
    // run the exact page-at-a-time loop.
    if (tracer != nullptr || nicCache->assoc() != 1) {
        tr.pageAddrs.reserve(npages);
        for (std::size_t i = 0; i < npages; ++i) {
            NicLookup nl = nicTranslate(start + i);
            tr.nicCost += nl.cost;
            if (nl.miss) {
                ++tr.niMisses;
                tr.missPages.push_back(static_cast<std::uint32_t>(i));
            }
            if (nl.fault)
                ++tr.faults;
            tr.pageAddrs.push_back(mem::frameAddr(nl.pfn));
        }
        return tr;
    }

    tr.pageAddrs.resize(npages);
    // Pfn and PhysAddr are the same 64-bit type: collect pfns in
    // place, then convert to frame addresses in one pass at the end.
    mem::Pfn *slots = tr.pageAddrs.data();

    if (fillPipe && shard) {
        nicRangeAsync(start, npages, slots, tr);
        for (std::size_t p = 0; p < npages; ++p)
            slots[p] = mem::frameAddr(slots[p]);
        return tr;
    }

    std::size_t i = 0;
    CacheProbe fast;
    bool l0Hit = shard
        ? nicCache->hitViaRefMT(l0, procId, start, fast, *shard)
        : nicCache->hitViaRef(l0, procId, start, fast);
    if (l0Hit) {
        // Same first page as a recent call: the L0 handle revalidated,
        // recorded the hit, and spared us the cache probe.
        statTranslateLatency.sample(sim::ticksToUs(fast.cost));
        tr.nicCost += fast.cost;
        slots[0] = fast.pfn;
        i = 1;
    }

    while (i < npages) {
        SharedUtlbCache::LineRef *ref = i == 0 ? &l0 : nullptr;
        RunHits run = shard
            ? nicCache->lookupRunMT(procId, start + i, npages - i,
                                    slots + i, ref, *shard)
            : nicCache->lookupRun(procId, start + i, npages - i,
                                  slots + i, ref);
        if (run.hits > 0) {
            // Every hit in the run has the same modeled latency;
            // sampleN folds them without perturbing the histogram.
            statTranslateLatency.sampleN(sim::ticksToUs(run.perHitCost),
                                         run.hits);
            tr.nicCost += run.cost;
            i += run.hits;
            continue;
        }
        // First page of the window misses: take the one-page miss
        // path (its prefetch-width DMA install refills the cache, so
        // a stretch of contiguous misses costs one wide fetch per
        // prefetchEntries pages, not one per page).
        NicLookup nl = nicTranslate(start + i);
        tr.nicCost += nl.cost;
        ++tr.niMisses;
        tr.missPages.push_back(static_cast<std::uint32_t>(i));
        if (nl.fault)
            ++tr.faults;
        slots[i] = nl.pfn;
        ++i;
    }

    for (std::size_t p = 0; p < npages; ++p)
        slots[p] = mem::frameAddr(slots[p]);
    return tr;
}

void
UserUtlb::nicRangeAsync(Vpn start, std::size_t npages, mem::Pfn *slots,
                        Translation &tr)
{
    asyncPending.clear();
    asyncWaiters.clear();

    // Modeled overlap accounting. tNow is the worker's modeled clock
    // (ticks of NIC service it has consumed); a posted fill starts
    // its DMA at post time on its slot's modeled fill engine and runs
    // concurrently with the worker's subsequent hit service. Without
    // carry the clock is per window and each fill's residual stall —
    // completion time minus the worker's clock — is charged at
    // collection; with carry (cfg.asyncCarryFills) the clock persists
    // across windows, nothing is charged at the window edge, and a
    // fill still in flight then costs only whichever later post needs
    // its engine before engineReadyAt.
    const bool carry = cfg.asyncCarryFills;
    sim::Tick tNow = carry ? asyncClock : 0;

    // Engines already claimed by this window's pending fills (carry
    // mode allocates the free engine that is ready soonest).
    std::uint32_t engineUsed = 0;

    std::size_t i = 0;
    CacheProbe fast;
    if (nicCache->hitViaRefMT(l0, procId, start, fast, *shard)) {
        statTranslateLatency.sample(sim::ticksToUs(fast.cost));
        tr.nicCost += fast.cost;
        tNow += fast.cost;
        slots[0] = fast.pfn;
        i = 1;
    }

    while (i < npages) {
        SharedUtlbCache::LineRef *ref = i == 0 ? &l0 : nullptr;
        RunHits run = nicCache->lookupRunMT(procId, start + i,
                                            npages - i, slots + i, ref,
                                            *shard);
        if (run.hits > 0) {
            statTranslateLatency.sampleN(sim::ticksToUs(run.perHitCost),
                                         run.hits);
            tr.nicCost += run.cost;
            tNow += run.cost;
            i += run.hits;
            continue;
        }
        // First page of the window misses. Probe it individually
        // (recording hit-or-miss in the shard, like the synchronous
        // walk's nicTranslate would); a fill that landed since the
        // run probe turns it into a plain hit.
        Vpn vpn = start + i;
        CacheProbe probe = nicCache->lookupMT(procId, vpn, *shard);
        tr.nicCost += probe.cost;
        tNow += probe.cost;
        if (probe.hit) {
            statTranslateLatency.sample(sim::ticksToUs(probe.cost));
            slots[i] = probe.pfn;
            ++i;
            continue;
        }
        ++statMisses;
        ++tr.niMisses;
        tr.missPages.push_back(static_cast<std::uint32_t>(i));

        // A real miss. If an in-flight fill's prefetch width already
        // covers this page, don't duplicate the DMA — re-probe after
        // that fill completes.
        bool covered = false;
        for (const PendingFill &p : asyncPending) {
            if (vpn >= p.ticket->vpn &&
                vpn < p.ticket->vpn + p.ticket->width) {
                covered = true;
                break;
            }
        }
        if (covered) {
            ++statAsyncCoalesced;
            asyncWaiters.push_back(static_cast<std::uint32_t>(i));
            ++i;
            continue;
        }

        // Post a fill and keep walking: later pages of the buffer are
        // served (hits and all) while the fill thread DMAs this one.
        if (asyncPending.size() < kMaxOutstandingFills) {
            // Carry mode: take the free modeled engine that is ready
            // soonest (lowest index breaks ties), so a window never
            // stalls on a busy engine while an idle one exists.
            // Without carry every engine is idle at window start and
            // the next unused slot is equivalent.
            std::size_t slot = asyncPending.size();
            if (carry) {
                bool found = false;
                for (std::size_t e = 0; e < kMaxOutstandingFills;
                     ++e) {
                    if (engineUsed & (1u << e))
                        continue;
                    if (!found ||
                        engineReadyAt[e] < engineReadyAt[slot]) {
                        slot = e;
                        found = true;
                    }
                }
            }
            FillTicket &t = tickets[slot];
            if (fillPipe->post(t, procId, vpn, cfg.prefetchEntries)) {
                ++statAsyncFills;
                engineUsed |= 1u << slot;
                if (carry && engineReadyAt[slot] > tNow) {
                    // The engine is still finishing a previous
                    // window's DMA: the carried residual is charged
                    // here, to the post that actually had to wait.
                    sim::Tick stall = engineReadyAt[slot] - tNow;
                    tr.nicCost += stall;
                    tNow += stall;
                }
                asyncPending.push_back(
                    {static_cast<std::uint32_t>(i),
                     static_cast<std::uint32_t>(slot), probe.cost,
                     tNow, &t});
                ++i;
                continue;
            }
        }
        // Outstanding window exhausted or queue full/stopped: the
        // bounded-DMA model says service this one in place, fully on
        // the worker's clock.
        ++statAsyncFallbacks;
        sim::Tick before = tr.nicCost;
        syncServicePage(vpn, probe.cost, slots[i], tr);
        tNow += tr.nicCost - before;
        ++i;
    }

    // Collect the outstanding fills (post order). Each outstanding
    // slot is its own modeled DMA engine — the bounded-window model
    // of the paper's firmware posting a translation-miss DMA per miss
    // and letting them complete out of order — so fill k completes at
    // postTick + cost, independent of its siblings.
    //
    // Without carry, waiting on the first fill advances the worker's
    // clock past most of the others' completion times: their DMA ran
    // hidden behind the stall and costs the window nothing; only time
    // not yet covered by tNow is charged. With carry the wall-clock
    // wait still happens (the pfn must be correct before we return)
    // but no modeled time is charged at the edge at all: the engine
    // just stays busy until postTick + cost, and a later window's
    // post pays the residual if it needs the engine early.
    for (const PendingFill &p : asyncPending) {
        fillPipe->waitDone(*p.ticket);
        const MissOutcome &mo = p.ticket->result;
        if (mo.fault) {
            ++statFaults;
            ++tr.faults;
        }
        statPrefetchInstalls += mo.prefetchInstalls;
        sim::Tick done = p.postTick + mo.cost;
        if (carry) {
            sim::Tick hidden =
                tNow > p.postTick ? tNow - p.postTick : 0;
            statAsyncHiddenTicks += static_cast<std::uint64_t>(
                hidden < mo.cost ? hidden : mo.cost);
            engineReadyAt[p.slot] = done;
            if (done > tNow)
                ++statAsyncCarried;
            statTranslateLatency.sample(sim::ticksToUs(p.probeCost));
        } else {
            sim::Tick stall = done > tNow ? done - tNow : 0;
            statAsyncHiddenTicks += static_cast<std::uint64_t>(
                mo.cost - (stall < mo.cost ? stall : mo.cost));
            tr.nicCost += stall;
            tNow += stall;
            statTranslateLatency.sample(
                sim::ticksToUs(p.probeCost + stall));
        }
        slots[p.page] = mo.pfn;
    }
    asyncPending.clear();

    // Pages that waited on a neighbour's fill re-probe now that the
    // covering fill has completed. The scan probe already paid the
    // full cache reference and computed the set index; the
    // post-completion recheck re-reads that set only, so it is
    // modeled as one way probe, not a second full lookup.
    for (std::uint32_t page : asyncWaiters) {
        Vpn vpn = start + page;
        CacheProbe probe = nicCache->lookupMT(procId, vpn, *shard);
        sim::Tick recheck = timings->perWayProbeCost;
        tr.nicCost += recheck;
        tNow += recheck;
        if (probe.hit) {
            statTranslateLatency.sample(sim::ticksToUs(recheck));
            slots[page] = probe.pfn;
            continue;
        }
        // The covering fill's run had an invalid entry for this page
        // (or the entry was evicted already): service it here.
        sim::Tick before = tr.nicCost;
        syncServicePage(vpn, recheck, slots[page], tr);
        tNow += tr.nicCost - before;
    }
    asyncWaiters.clear();

    // Persist the view's modeled clock so the next window's posts
    // compare against the engines' busy-until times on one timeline.
    if (carry)
        asyncClock = tNow;
}

} // namespace utlb::core
