/**
 * @file
 * End-to-end workload replay: the Table 3 communication traces
 * driven through the *running* VMMC cluster (real command posts,
 * firmware, DMA, wire, deposit) rather than the trace-driven
 * analyzer. Reports simulated communication time per workload under
 * UTLB and under the interrupt baseline — the system-level analogue
 * of Table 6.
 *
 * Each node-trace record becomes a remote store from the issuing
 * process into a large exported region on the peer node. The trace
 * is truncated to a prefix to keep the event count manageable; the
 * prefix preserves the cold-start pinning behaviour, which is where
 * the mechanisms differ most.
 */

#include <algorithm>
#include <iostream>
#include <unordered_map>

#include "bench_common.hpp"
#include "vmmc/system.hpp"

namespace {

using namespace utlb;
using mem::addrOf;
using mem::kPageSize;
using sim::Tick;
using sim::ticksToUs;

constexpr std::size_t kPrefixRecords = 1500;

/** Replay a trace prefix; return busy microseconds per operation. */
double
replay(const trace::Trace &tr, vmmc::XlateMode mode)
{
    vmmc::ClusterConfig cfg;
    cfg.nodes = 2;
    cfg.node.cache = {1024, 1, true};
    cfg.node.mode = mode;
    cfg.node.memoryFrames = 65536;
    cfg.node.commandSlots = 8;
    vmmc::Cluster cluster(cfg);
    auto &local = cluster.node(0);
    auto &remote = cluster.node(1);

    // One receive region per local process, all on the remote node.
    constexpr std::size_t kRegionPages = 512;
    remote.createProcess(100);
    std::unordered_map<mem::ProcId, vmmc::ImportSlot> slots;

    std::size_t count = std::min(kPrefixRecords, tr.size());
    Tick busy = 0;
    std::size_t ops = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const auto &rec = tr[i];
        auto it = slots.find(rec.pid);
        if (it == slots.end()) {
            local.createProcess(rec.pid);
            auto exp = remote.exportBuffer(
                100, addrOf(10000 + rec.pid * 2 * kRegionPages),
                kRegionPages * kPageSize);
            auto slot = local.importBuffer(rec.pid, 1, *exp);
            it = slots.emplace(rec.pid, slot).first;
        }
        std::uint64_t offset =
            (mem::pageOf(rec.va) % (kRegionPages - 8)) * kPageSize;
        Tick t0 = cluster.clock().now();
        if (!local.send(rec.pid, rec.va, rec.nbytes, it->second,
                        offset)) {
            continue;
        }
        cluster.run();
        busy += remote.lastDepositTime() - t0;
        ++ops;
    }
    return ops ? ticksToUs(busy) / static_cast<double>(ops) : 0.0;
}

} // namespace

int
main()
{
    using namespace bench;

    utlb::sim::TextTable t(
        "End-to-end workload replay (first 1500 ops, 1K-entry cache):"
        " average us per operation");
    t.setHeader({"workload", "UTLB", "Intr", "Intr/UTLB"});

    for (const auto &name : workloadNames()) {
        auto tr = utlb::trace::generateTrace(name);
        double u = replay(tr, vmmc::XlateMode::Utlb);
        double i = replay(tr, vmmc::XlateMode::Interrupt);
        t.addRow({name, utlb::sim::TextTable::num(u, 1),
                  utlb::sim::TextTable::num(i, 1),
                  utlb::sim::TextTable::num(u > 0 ? i / u : 0.0, 2)});
    }
    t.print(std::cout);

    std::cout << "\nShape checks: transfer time is dominated by DMA "
                 "and wire costs (pages are 4 KB), so the per-op "
                 "ratios are\nmodest — but the ordering matches "
                 "Table 6: the interrupt baseline never wins, and it "
                 "loses most on the\nworkloads with the highest "
                 "miss rates.\n";
    return 0;
}
