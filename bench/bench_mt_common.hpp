/**
 * @file
 * Shared machinery for the multi-threaded wall-clock harnesses
 * (bench_hotpath's mt_warm cell and bench_mt's thread sweep).
 *
 * An MtStack is one NIC shared by N worker processes, each driven by
 * its own thread through a concurrent-mode UserUtlb. Two workload
 * shapes:
 *
 *   disjoint  every worker sweeps its own vpn range. With index
 *             offsetting off, disjoint ranges land in disjoint cache
 *             sets, so workers share no lock stripe and no cache
 *             line on the hot path — the shard-local scaling case;
 *   shared    every worker sweeps the same vpn range under its own
 *             pid. Same sets, different tags: a direct-mapped set
 *             ping-pongs between processes, keeping the stripe
 *             locks, miss DMAs, and insertMT evictions contended —
 *             the worst-case coherence cell.
 *
 * Timing protocol: workers warm their buffers, park on a start flag,
 * then translate windows until the main thread calls time. Pages and
 * modeled ticks are counted exactly; the wall clock spans go->stop,
 * so aggregate pages/sec divides total work by shared elapsed time.
 */

#ifndef UTLB_BENCH_MT_COMMON_HPP
#define UTLB_BENCH_MT_COMMON_HPP

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/driver.hpp"
#include "core/fill_pipeline.hpp"
#include "core/utlb.hpp"
#include "mem/address_space.hpp"
#include "mem/phys_memory.hpp"
#include "mem/pinning.hpp"
#include "nic/sram.hpp"
#include "nic/timing.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "sim/zipf.hpp"

namespace bench {

namespace mem = utlb::mem;
namespace core = utlb::core;

/** Shape of one multi-threaded scenario. */
struct MtScenario {
    const char *name;
    std::size_t perWorkerPages;  //!< pages each worker sweeps
    std::size_t windowPages;     //!< pages per translateRange call
    std::size_t entries;         //!< total NIC cache entries
    std::size_t prefetch;        //!< entries fetched per miss
    bool sharedRange;            //!< all workers sweep the same vpns
    unsigned assoc = 1;          //!< cache ways (1 = direct-mapped)
    std::size_t memLimitPages = 0;  //!< per-process pin cap (0 = off)
    bool asyncFill = false;      //!< attach the fill pipeline
    double zipfAlpha = 0.0;      //!< >0: Zipf(alpha) window choice
    unsigned driverShards = 1;   //!< UtlbDriver shard count
    std::size_t fillThreads = 1; //!< fill-pipeline pool size
};

/** Warm, all-hits scaling cell (the acceptance scenario). */
inline constexpr MtScenario kMtWarm{"mt_warm", 1024, 64, 8192, 1,
                                    false};

/** Contended miss + prefetch-refill cell. */
inline constexpr MtScenario kMtMissPrefetch{"mt_miss_prefetch", 4096,
                                            64, 1024, 32, true};

/**
 * Pin-churn cell: each worker sweeps twice as many pages as its pin
 * limit admits, so every window unpins LRU pages (shed + NIC-cache
 * coherence drop) and repins the incoming ones — the contended
 * PinManager-mutex / invalidate-path scenario.
 */
inline constexpr MtScenario kMtPinChurn{"mt_pin_churn", 512, 64, 8192,
                                        8, false, 1, 256};

/**
 * Warm 4-way associative cell: the disjoint all-hits sweep through
 * the seqlock way-search path (translateRange goes page-at-a-time
 * through lookupMT when assoc > 1).
 */
inline constexpr MtScenario kMtWarmAssoc4{"mt_warm_assoc4", 512, 64,
                                          8192, 1, false, 4};

/**
 * Miss-overlap cell: each worker streams 8x the cache's capacity, so
 * every window is a stretch of capacity misses. With asyncFill the
 * misses post to the fill pipeline and the worker keeps serving the
 * window's hits while the fill thread DMAs — the outstanding-DMA
 * overlap the tentpole models. Run with asyncFill both on and off to
 * measure the overlap win.
 */
inline constexpr MtScenario kMtMissOverlap{"mt_miss_overlap", 8192, 64,
                                           1024, 8, false, 1, 0, true};

/**
 * Miss-heavy Zipf mix: workers pick windows Zipf(1.1)-distributed
 * over a working set larger than the cache, mixing hot always-hit
 * windows with a long cold-miss tail — hits keep flowing while the
 * tail's fills are in flight.
 */
inline constexpr MtScenario kMtZipfMix{"mt_zipf_mix", 4096, 64, 1024,
                                       8, false, 1, 0, true, 1.1};

/**
 * Driver-shard cell: the pin-churn shape (every window sheds and
 * repins through driver ioctls) with one driver shard per worker, so
 * four processes' pin/unpin traffic lands on four independent shard
 * mutexes instead of one. Timed against the same shape at shards=1;
 * the sharded/monolithic pages-per-sec ratio is the lock-splitting
 * win. Meaningful only when the host can actually run the workers in
 * parallel — the harness skips the ratio gate below 4 cores.
 */
inline constexpr MtScenario kMtMissShard{"mt_miss_shard", 512, 64,
                                         8192, 8,  false, 1, 256,
                                         false, 0.0, 4};

/** One NIC, N worker processes, each with a concurrent UserUtlb. */
struct MtStack {
    mem::PhysMemory phys;
    mem::PinFacility pins;
    utlb::nic::Sram sram;
    utlb::nic::NicTimings timings;
    core::HostCosts costs;
    core::SharedUtlbCache cache;
    core::UtlbDriver driver;
    std::vector<std::unique_ptr<mem::AddressSpace>> spaces;
    std::vector<std::unique_ptr<core::UserUtlb>> views;

    /**
     * The NIC's fill thread (asyncFill scenarios only). Declared
     * after views so it is destroyed — thread stopped and joined —
     * first.
     */
    std::unique_ptr<core::FillPipeline> fill;

    MtStack(const MtScenario &sc, unsigned nworkers, bool concurrent,
            bool async = false)
        : phys(sc.perWorkerPages * nworkers + 2048),
          sram(4u << 20),
          costs(core::HostProfile::PentiumIINT),
          // Index offsetting off: worker vpn ranges map to cache
          // sets verbatim, so the disjoint/shared scenario shapes
          // control set overlap directly.
          cache(core::CacheConfig{sc.entries, sc.assoc, false},
                timings, &sram),
          driver(phys, pins, sram, cache, costs, sc.driverShards)
    {
        for (unsigned w = 0; w < nworkers; ++w) {
            auto pid = static_cast<mem::ProcId>(w + 1);
            spaces.push_back(
                std::make_unique<mem::AddressSpace>(pid, phys));
            driver.registerProcess(*spaces.back());
            core::UtlbConfig ucfg;
            ucfg.prefetchEntries = sc.prefetch;
            ucfg.concurrent = concurrent;
            ucfg.pin.memLimitPages = sc.memLimitPages;
            views.push_back(std::make_unique<core::UserUtlb>(
                driver, cache, timings, pid, ucfg));
        }
        if (async) {
            if (!concurrent)
                utlb::sim::fatal(
                    "%s: asyncFill requires concurrent mode", sc.name);
            fill = std::make_unique<core::FillPipeline>(
                driver, cache, timings, 64, sc.fillThreads);
            for (auto &v : views)
                v->attachFillPipeline(fill.get());
        }
    }

    /**
     * Quiesce the fill pipeline (joins the fill thread and folds its
     * stat shard); detaches it from every view so later windows run
     * synchronously. No-op without asyncFill.
     */
    void
    stopFill()
    {
        if (!fill)
            return;
        fill->stop();
        for (auto &v : views)
            v->attachFillPipeline(nullptr);
    }

    /** The vpn a worker's buffer starts at. */
    mem::Vpn
    baseOf(const MtScenario &sc, unsigned worker) const
    {
        return sc.sharedRange ? 0 : worker * sc.perWorkerPages;
    }
};

/** Aggregate outcome of one (scenario, threads) cell. */
struct MtCell {
    double wallNs = 0;
    std::uint64_t pages = 0;
    utlb::sim::Tick modeled = 0;

    double pagesPerSec() const
    {
        return wallNs > 0
            ? static_cast<double>(pages) * 1e9 / wallNs
            : 0.0;
    }
    double nsPerPage() const
    {
        return pages > 0 ? wallNs / static_cast<double>(pages) : 0.0;
    }
    double modeledUsPerPage() const
    {
        return pages > 0
            ? utlb::sim::ticksToUs(modeled)
                / static_cast<double>(pages)
            : 0.0;
    }
};

/** Serialize a 1-worker stack's full stats tree. */
inline std::string
mtStatsDump(MtStack &stack)
{
    stack.views[0]->flushShardStats();
    utlb::sim::StatGroup root{"stack"};
    root.adopt(stack.cache.stats());
    root.adopt(stack.driver.stats());
    root.adopt(stack.pins.stats());
    root.adopt(stack.sram.stats());
    root.adopt(stack.views[0]->stats());
    std::ostringstream os;
    root.dumpJson(os);
    return os.str();
}

/**
 * Zipf(alpha) window picker — now the shared sim::ZipfPicker
 * (src/sim/zipf.hpp), kept under its old name here so the bench
 * cells' (n, alpha, seed) call sites read unchanged. Same seed
 * contract: paired runs replay identical window sequences.
 */
using ZipfPicker = utlb::sim::ZipfPicker;

/**
 * Threads=1 golden equivalence: a concurrent-mode stack driven by
 * one thread must be indistinguishable — results, modeled costs,
 * stats tree — from the sequential path over the same workload.
 * Returns a description of the first divergence, or "" if the
 * scenario holds. Shared between bench_mt (which fatals on a
 * non-empty result before timing anything) and the regression tests.
 */
inline std::string
mtGoldenDivergence(const MtScenario &sc)
{
    MtStack seq(sc, 1, false);
    MtStack mt(sc, 1, true);
    std::size_t nbytes = sc.windowPages * mem::kPageSize;
    std::size_t nwindows = sc.perWorkerPages / sc.windowPages;
    // Two full passes: cold misses + pins, then steady state (with a
    // pin limit, the second pass keeps shedding and repinning).
    for (std::size_t w = 0; w < 2 * nwindows; ++w) {
        mem::VirtAddr va =
            ((w % nwindows) * sc.windowPages) * mem::kPageSize;
        core::Translation a = seq.views[0]->translateRange(va, nbytes);
        core::Translation b = mt.views[0]->translateRange(va, nbytes);
        if (a.hostCost != b.hostCost || a.nicCost != b.nicCost
            || a.niMisses != b.niMisses
            || a.pageAddrs != b.pageAddrs
            || a.missPages != b.missPages)
            return std::string(sc.name)
                + ": concurrent mode diverged from sequential at "
                  "window "
                + std::to_string(w);
    }
    if (mtStatsDump(seq) != mtStatsDump(mt))
        return std::string(sc.name)
            + ": concurrent-mode stats tree diverged from sequential";
    return "";
}

/**
 * Async-fill consistency: the fill pipeline must change *when* a miss
 * is serviced, never *what* a translation returns. Replays the same
 * (possibly Zipf-shuffled) window sequence through a synchronous and
 * an async-fill concurrent stack and compares every call's results.
 * Stats and modeled-cost interleavings legitimately differ (the fill
 * thread owns its own shard and batches fills; a window's misses may
 * resolve each other), so — unlike mtGoldenDivergence — only ok and
 * the translated addresses are compared. Returns a description of the
 * first divergence, or "".
 */
inline std::string
mtAsyncConsistency(const MtScenario &sc)
{
    MtStack sync(sc, 1, true, false);
    MtStack async(sc, 1, true, true);
    std::size_t nbytes = sc.windowPages * mem::kPageSize;
    std::size_t nwindows = sc.perWorkerPages / sc.windowPages;

    std::vector<std::size_t> order;
    order.reserve(2 * nwindows);
    for (std::size_t w = 0; w < 2 * nwindows; ++w)
        order.push_back(w % nwindows);
    if (sc.zipfAlpha > 0) {
        // Keep the first full pass linear (pins every page), then
        // replay the Zipf mix both stacks will see.
        ZipfPicker zipf(nwindows, sc.zipfAlpha, 0x5eedull);
        for (std::size_t w = nwindows; w < 2 * nwindows; ++w)
            order[w] = zipf.next();
    }

    for (std::size_t w = 0; w < order.size(); ++w) {
        mem::VirtAddr va =
            (order[w] * sc.windowPages) * mem::kPageSize;
        core::Translation a = sync.views[0]->translateRange(va, nbytes);
        core::Translation b =
            async.views[0]->translateRange(va, nbytes);
        if (a.ok != b.ok || a.pageAddrs != b.pageAddrs)
            return std::string(sc.name)
                + ": async fill changed translation results at window "
                + std::to_string(w);
    }
    async.stopFill();
    return "";
}

/**
 * Run @p nworkers threads over @p stack for ~@p budget_ms of wall
 * time. Each worker warms its buffer first (pins + cache fill),
 * so the timed region measures the steady state.
 */
inline MtCell
runMtCell(const MtScenario &sc, MtStack &stack, unsigned nworkers,
          double budget_ms)
{
    std::atomic<unsigned> ready{0};
    std::atomic<bool> go{false};
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> totalPages{0};
    std::atomic<std::uint64_t> totalModeled{0};

    std::vector<std::thread> workers;
    for (unsigned w = 0; w < nworkers; ++w) {
        workers.emplace_back([&, w] {
            core::UserUtlb &u = *stack.views[w];
            const mem::Vpn base = stack.baseOf(sc, w);
            const std::size_t nbytes =
                sc.windowPages * mem::kPageSize;
            const std::size_t nwindows =
                sc.perWorkerPages / sc.windowPages;

            for (std::size_t p = 0; p < sc.perWorkerPages;
                 p += sc.windowPages) {
                core::Translation t = u.translateRange(
                    (base + p) * mem::kPageSize, nbytes);
                if (!t.ok)
                    utlb::sim::fatal("%s: warm-up pin failed",
                                     sc.name);
            }

            ready.fetch_add(1, std::memory_order_release);
            while (!go.load(std::memory_order_acquire)) {
            }

            std::uint64_t pages = 0;
            utlb::sim::Tick modeled = 0;
            std::size_t window = 0;
            // Zipf scenarios mix hot and cold windows; per-worker
            // seeds keep the sequence deterministic per (worker, run).
            ZipfPicker zipf(nwindows, sc.zipfAlpha > 0 ? sc.zipfAlpha
                                                       : 1.0,
                            0x5eedull + w);
            while (!stop.load(std::memory_order_relaxed)) {
                if (sc.zipfAlpha > 0)
                    window = zipf.next();
                mem::VirtAddr va =
                    (base + window * sc.windowPages)
                    * mem::kPageSize;
                core::Translation t = u.translateRange(va, nbytes);
                modeled += t.hostCost + t.nicCost;
                pages += t.pageAddrs.size();
                if (sc.zipfAlpha <= 0 && ++window == nwindows)
                    window = 0;
            }
            totalPages.fetch_add(pages, std::memory_order_relaxed);
            totalModeled.fetch_add(
                static_cast<std::uint64_t>(modeled),
                std::memory_order_relaxed);
        });
    }

    while (ready.load(std::memory_order_acquire) < nworkers) {
    }
    auto t0 = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(budget_ms));
    stop.store(true, std::memory_order_relaxed);
    for (auto &w : workers)
        w.join();
    double wall = std::chrono::duration<double, std::nano>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

    MtCell cell;
    cell.wallNs = wall;
    cell.pages = totalPages.load();
    cell.modeled =
        static_cast<utlb::sim::Tick>(totalModeled.load());
    return cell;
}

} // namespace bench

#endif // UTLB_BENCH_MT_COMMON_HPP
