/**
 * @file
 * Table 8: overall miss rates in the Shared UTLB-Cache vs cache
 * size and associativity (direct / 2-way / 4-way, all with index
 * offsetting) plus a direct-mapped cache without offsetting
 * ("direct-nohash"), for all seven workloads with infinite host
 * memory and no prefetch.
 */

#include "bench_common.hpp"

int
main()
{
    using namespace bench;
    using utlb::tlbsim::SimConfig;
    using utlb::tlbsim::simulateUtlb;

    TraceSet traces;
    auto names = workloadNames();

    struct Variant {
        const char *label;
        unsigned assoc;
        bool offset;
    };
    const std::vector<Variant> variants{
        {"direct", 1, true},
        {"2-way", 2, true},
        {"4-way", 4, true},
        {"direct-nohash", 1, false},
    };

    utlb::sim::TextTable t(
        "Table 8: overall Shared UTLB-Cache miss rates (misses per "
        "probe; infinite memory, no prefetch)");
    std::vector<std::string> header{"Cache", "Assoc"};
    for (const auto &n : names)
        header.push_back(n);
    t.setHeader(header);

    for (std::size_t entries : kCacheSizes) {
        bool first = true;
        for (const auto &v : variants) {
            SimConfig cfg;
            cfg.cache = {entries, v.assoc, v.offset};
            std::vector<std::string> row{
                first ? sizeLabel(entries) : "", v.label};
            first = false;
            for (const auto &n : names) {
                auto res = simulateUtlb(traces.get(n), cfg);
                row.push_back(rate(res.probeMissRate()));
            }
            t.addRow(row);
        }
        t.addRule();
    }
    t.print(std::cout);

    std::cout << "\nPaper shape checks: direct-mapped with offsetting "
                 "is competitive with (often better than) 2-way and "
                 "4-way;\ndropping the offset (direct-nohash) "
                 "inflates miss rates through cross-process "
                 "conflicts.\n";
    return 0;
}
