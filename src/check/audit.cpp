#include "check/audit.hpp"

#include <cstdarg>
#include <cstdio>

namespace utlb::check {

namespace {

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);
    if (len <= 0)
        return {};
    std::string out(static_cast<std::size_t>(len), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap);
    return out;
}

} // namespace

std::size_t
AuditReport::countFor(const std::string &component) const
{
    std::size_t n = 0;
    for (const AuditIssue &issue : issues) {
        if (issue.component == component)
            ++n;
    }
    return n;
}

void
AuditReport::component(std::string name, std::uint64_t pid)
{
    curComponent = std::move(name);
    curPid = pid;
    ++numAuditors;
}

void
AuditReport::addf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    issues.push_back(AuditIssue{curComponent, vformat(fmt, ap), curPid});
    va_end(ap);
}

void
AuditReport::require(bool ok, const char *fmt, ...)
{
    if (ok)
        return;
    va_list ap;
    va_start(ap, fmt);
    issues.push_back(AuditIssue{curComponent, vformat(fmt, ap), curPid});
    va_end(ap);
}

std::string
AuditReport::summary() const
{
    std::string out;
    for (const AuditIssue &issue : issues) {
        out += issue.component;
        if (issue.pid != kNoAuditPid) {
            out += "[pid ";
            out += std::to_string(issue.pid);
            out += "]";
        }
        out += ": ";
        out += issue.detail;
        out += "\n";
    }
    return out;
}

} // namespace utlb::check
