/**
 * @file
 * Tenant attach/teardown churn under load: the regression suite for
 * the fleet-churn resource lifecycles. A storm of short-lived
 * tenants registers, translates, and tears down through the driver
 * while stable tenants keep translating concurrently. Asserts the
 * lifecycles the fleet bench depends on:
 *
 *  - NIC SRAM is fully recycled: every departed tenant's directory
 *    region is freed and reused (the SRAM allocator is sized so a
 *    leak of a handful of regions aborts the test);
 *  - the driver's stat tree drops departed tenants' host_table
 *    groups (no stat-tree leak);
 *  - the pin facility conserves: departed tenants hold no pins, and
 *    the post-storm audits (cache, pins, live pin managers) are
 *    clean.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "check/audit.hpp"
#include "core/driver.hpp"
#include "core/shared_cache.hpp"
#include "core/utlb.hpp"
#include "mem/address_space.hpp"
#include "mem/phys_memory.hpp"
#include "mem/pinning.hpp"
#include "nic/sram.hpp"
#include "nic/timing.hpp"

namespace {

using namespace utlb::core;
using utlb::check::AuditReport;
using utlb::mem::AddressSpace;
using utlb::mem::kPageSize;
using utlb::mem::PhysMemory;
using utlb::mem::PinFacility;
using utlb::mem::ProcId;
using utlb::mem::VirtAddr;
using utlb::nic::NicTimings;
using utlb::nic::Sram;

/**
 * Concurrent fleet stack with a deliberately tight SRAM: the cache
 * claims 4 KB and each registered tenant's directory claims 4 KB, so
 * 32 KB holds the cache, two stable tenants, and a few in-flight
 * churn tenants — but not a leak. Before Sram::free existed, ~5
 * churn cycles exhausted this and the register fataled.
 */
class ChurnStack : public ::testing::Test
{
  protected:
    static constexpr unsigned kStableTenants = 2;

    ChurnStack()
        : physMem(8192), sram(32u << 10),
          cache(CacheConfig{1024, 1, true}, timings, &sram),
          driver(physMem, pins, sram, cache, costs, 4)
    {
        for (unsigned i = 0; i < kStableTenants; ++i) {
            auto pid = static_cast<ProcId>(i + 1);
            spaces.push_back(
                std::make_unique<AddressSpace>(pid, physMem));
            driver.registerProcess(*spaces.back());
            UtlbConfig ucfg;
            ucfg.prefetchEntries = 8;
            ucfg.concurrent = true;
            views.push_back(std::make_unique<UserUtlb>(
                driver, cache, timings, pid, ucfg));
        }
    }

    /** One short-lived tenant: register, translate, tear down. */
    void
    churnCycle(ProcId pid)
    {
        AddressSpace space(pid, physMem);
        driver.registerProcess(space);
        {
            UtlbConfig ucfg;
            ucfg.prefetchEntries = 8;
            ucfg.concurrent = true;
            UserUtlb view(driver, cache, timings, pid, ucfg);
            for (int w = 0; w < 4; ++w) {
                auto t = view.translateRange(
                    static_cast<VirtAddr>(w) * 4 * kPageSize,
                    4 * kPageSize);
                ASSERT_TRUE(t.ok);
            }
        }
        driver.unregisterProcess(pid);
        ASSERT_EQ(pins.pinnedPages(pid), 0u)
            << "departed tenant still holds pins";
    }

    std::size_t
    statTreeTables()
    {
        std::ostringstream os;
        driver.stats().dumpJson(os);
        const std::string dump = os.str();
        std::size_t n = 0;
        for (std::size_t pos = dump.find("\"host_table");
             pos != std::string::npos;
             pos = dump.find("\"host_table", pos + 1))
            ++n;
        return n;
    }

    HostCosts costs;
    NicTimings timings;
    PhysMemory physMem;
    PinFacility pins;
    Sram sram;
    SharedUtlbCache cache;
    UtlbDriver driver;
    std::vector<std::unique_ptr<AddressSpace>> spaces;
    std::vector<std::unique_ptr<UserUtlb>> views;
};

TEST_F(ChurnStack, SequentialChurnRecyclesSramExactly)
{
    const std::size_t baseline = sram.used();
    for (int i = 0; i < 200; ++i) {
        churnCycle(static_cast<ProcId>(100 + i));
        ASSERT_EQ(sram.used(), baseline)
            << "SRAM leak after churn cycle " << i;
    }
    EXPECT_EQ(statTreeTables(), kStableTenants);
    // The allocator's observability: 200 frees of 4 KB regions.
    std::ostringstream os;
    sram.stats().dumpJson(os);
    EXPECT_NE(os.str().find("region_frees"), std::string::npos);
    EXPECT_NE(os.str().find("freed_bytes"), std::string::npos);
}

TEST_F(ChurnStack, TeardownStormUnderConcurrentLoad)
{
    const std::size_t baseline = sram.used();
    std::atomic<bool> stop{false};

    // Stable tenants hammer the shared cache and their pin managers
    // while the storm churns; their lines are invalidated under them
    // whenever a churn tenant collides in the cache.
    std::vector<std::thread> stable;
    for (unsigned i = 0; i < kStableTenants; ++i) {
        stable.emplace_back([this, i, &stop] {
            UserUtlb &view = *views[i];
            while (!stop.load(std::memory_order_acquire)) {
                for (int w = 0; w < 8; ++w) {
                    auto t = view.translateRange(
                        static_cast<VirtAddr>(w) * 8 * kPageSize,
                        8 * kPageSize);
                    if (!t.ok)
                        return; // surfaces as a failed audit below
                }
            }
        });
    }

    constexpr int kCycles = 1000;
    std::thread storm([this] {
        for (int i = 0; i < kCycles; ++i)
            churnCycle(static_cast<ProcId>(1000 + i));
    });
    storm.join();
    stop.store(true, std::memory_order_release);
    for (auto &t : stable)
        t.join();

    // Quiesce and check every conservation property.
    for (auto &v : views)
        v->flushShardStats();
    EXPECT_EQ(sram.used(), baseline) << "SRAM leaked across "
                                     << kCycles << " churn cycles";
    EXPECT_EQ(statTreeTables(), kStableTenants)
        << "driver stat tree leaked host_table groups";

    AuditReport report;
    cache.audit(report);
    pins.audit(report);
    for (auto &v : views)
        v->pinManager().audit(report);
    EXPECT_TRUE(report.ok()) << report.summary();

    // Spot-check departed tenants left nothing pinned.
    for (int i = 0; i < kCycles; i += 97)
        EXPECT_EQ(pins.pinnedPages(static_cast<ProcId>(1000 + i)),
                  0u);
}

TEST_F(ChurnStack, ReRegisterAfterTeardownKeepsWorking)
{
    // The tombstone path: a pid that detaches and re-attaches gets a
    // fresh table, fresh SRAM directory, and a clean stat subtree.
    for (int round = 0; round < 3; ++round) {
        AddressSpace space(777, physMem);
        driver.registerProcess(space);
        {
            UtlbConfig ucfg;
            ucfg.concurrent = true;
            UserUtlb view(driver, cache, timings, 777, ucfg);
            auto t = view.translateRange(0, 4 * kPageSize);
            ASSERT_TRUE(t.ok);
        }
        driver.unregisterProcess(777);
    }
    EXPECT_EQ(statTreeTables(), kStableTenants);
}

} // namespace
