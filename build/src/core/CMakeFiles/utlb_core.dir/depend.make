# Empty dependencies file for utlb_core.
# This may be replaced when dependencies are built.
