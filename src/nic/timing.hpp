/**
 * @file
 * NIC timing model calibrated to the paper's Myrinet measurements.
 *
 * The paper's hardware (LANai 4.2 at 33 MHz, PCI I/O bus, 160 MB/s
 * links) is not available, so NIC-side costs are reproduced from the
 * paper's own microbenchmarks:
 *
 *  - Table 2 gives the DMA cost of fetching 1..32 UTLB translation
 *    entries over the I/O bus and the total miss-handling cost.
 *  - §5 gives the constant 0.8 us Shared UTLB-Cache hit cost and the
 *    0.5 us accuracy of the LANai real-time clock.
 *
 * Entry-fetch DMA cost is a calibrated curve: exact at the measured
 * points {1,2,4,8,16,32}, log-linear interpolated between them, and
 * linearly extrapolated past 32. Payload DMA uses a conventional
 * setup + bytes/bandwidth model.
 */

#ifndef UTLB_NIC_TIMING_HPP
#define UTLB_NIC_TIMING_HPP

#include <cstddef>

#include "sim/types.hpp"

namespace utlb::nic {

/**
 * All NIC-side timing constants in one place.
 *
 * Every field can be overridden to model other boards; defaults are
 * the paper's measurements.
 */
struct NicTimings {
    /** LANai clock period: 33 MHz (§4.2). */
    sim::Tick cyclePeriod = sim::nsToTicks(30.3);

    /** One firmware SRAM data reference (used per cache-way probe). */
    sim::Tick sramAccess = sim::nsToTicks(60.0);

    /**
     * Shared UTLB-Cache hit cost, constant per Table 2's caption
     * ("The hit cost is a constant 0.8 us").
     */
    sim::Tick cacheHitCost = sim::usToTicks(0.8);

    /**
     * Extra probe cost per additional way checked beyond the first.
     * The firmware checks one entry at a time (§6.3), which is why
     * set-associative lookups cost more than direct-mapped ones.
     */
    sim::Tick perWayProbeCost = sim::usToTicks(0.2);

    /**
     * SRAM reference to the top-level UTLB page directory during
     * miss handling (§3.3: "one memory reference in the SRAM").
     */
    sim::Tick directoryRefCost = sim::usToTicks(0.3);

    /** Payload DMA setup cost (descriptor + doorbell). */
    sim::Tick dmaSetup = sim::usToTicks(1.0);

    /** Payload DMA bandwidth over PCI, bytes/sec (~133 MB/s). */
    double dmaBytesPerSec = 133.0e6;

    /** Network link bandwidth (160 MB/s per link, §4.2). */
    double linkBytesPerSec = 160.0e6;

    /** Per-hop switch latency. */
    sim::Tick switchLatency = sim::nsToTicks(300.0);

    /** Cost of raising a host interrupt from the NIC (§6.2: 10 us). */
    sim::Tick interruptCost = sim::usToTicks(10.0);

    /**
     * DMA cost of fetching @p entries translation entries from a
     * host-memory UTLB page table (Table 2, "DMA cost" row).
     */
    sim::Tick entryFetchCost(std::size_t entries) const;

    /**
     * Total miss-handling cost for a Shared UTLB-Cache miss that
     * fetches @p entries entries (Table 2, "total miss cost" row):
     * directory reference + entry DMA + cache install.
     */
    sim::Tick missHandleCost(std::size_t entries) const;

    /** Payload DMA cost for @p bytes of user data. */
    sim::Tick payloadDmaCost(std::size_t bytes) const;

    /** Wire time for @p bytes on one link. */
    sim::Tick linkTransferCost(std::size_t bytes) const;
};

} // namespace utlb::nic

#endif // UTLB_NIC_TIMING_HPP
