#include "core/shared_cache.hpp"

#include <algorithm>
#include <atomic>

#include "check/audit.hpp"
#include "check/check.hpp"
#include "sim/log.hpp"

namespace utlb::core {

using mem::Pfn;
using mem::ProcId;
using mem::Vpn;
using sim::fatal;
using sim::Tick;

namespace {

/**
 * Process-dependent index offset (§3.2): a multiplicative hash of
 * the pid spreads different processes' identical page numbers over
 * different sets. Knuth's multiplicative constant.
 */
std::uint64_t
processOffset(ProcId pid)
{
    return static_cast<std::uint64_t>(pid) * 2654435761ull;
}

/**
 * Relaxed atomic access to the seqlock-protected line fields (valid,
 * pid, vpn, pfn). Optimistic readers and the stripe-locked writers
 * both go through these, so every racing access is atomic — the
 * seqlock version only has to make torn snapshots *detectable*, and
 * ThreadSanitizer sees no data race. lastUse is deliberately not
 * covered: recency stamps are only ever touched under the stripe
 * lock (or at quiescence) and never read optimistically.
 */
template <class T>
T
loadRelaxed(T &field)
{
    return std::atomic_ref<T>(field).load(std::memory_order_relaxed);
}

template <class T>
void
storeRelaxed(T &field, T value)
{
    std::atomic_ref<T>(field).store(value, std::memory_order_relaxed);
}

} // namespace

SharedUtlbCache::SharedUtlbCache(const CacheConfig &cfg,
                                 const nic::NicTimings &t,
                                 nic::Sram *board_sram)
    : config(cfg), timings(&t)
{
    if (config.entries == 0 || config.assoc == 0)
        fatal("cache requires entries > 0 and assoc > 0");
    if (config.entries % config.assoc != 0)
        fatal("cache entries (%zu) not divisible by assoc (%u)",
              config.entries, config.assoc);
    numSets = config.entries / config.assoc;
    lines.resize(config.entries);

    if (board_sram) {
        // 4 bytes per line, matching "32 KB (or 8 K entries)" (§4.2).
        auto base = board_sram->alloc("utlb-cache", config.entries * 4);
        if (!base)
            fatal("NIC SRAM cannot hold a %zu-entry UTLB cache",
                  config.entries);
    }
}

std::size_t
SharedUtlbCache::setIndex(ProcId pid, Vpn vpn) const
{
    std::uint64_t key = vpn;
    if (config.indexOffsetting)
        key += processOffset(pid);
    return static_cast<std::size_t>(key % numSets);
}

SharedUtlbCache::Line *
SharedUtlbCache::findLine(ProcId pid, Vpn vpn, unsigned *probes)
{
    std::size_t set = setIndex(pid, vpn);
    Line *base = &lines[set * config.assoc];
    for (unsigned w = 0; w < config.assoc; ++w) {
        if (probes)
            *probes = w + 1;
        Line &line = base[w];
        if (line.valid && line.pid == pid && line.vpn == vpn)
            return &line;
    }
    if (probes)
        *probes = config.assoc;
    return nullptr;
}

const SharedUtlbCache::Line *
SharedUtlbCache::findLine(ProcId pid, Vpn vpn) const
{
    return const_cast<SharedUtlbCache *>(this)->findLine(pid, vpn,
                                                         nullptr);
}

CacheProbe
SharedUtlbCache::lookup(ProcId pid, Vpn vpn)
{
    CacheProbe probe;
    unsigned probes = 0;
    Line *line = findLine(pid, vpn, &probes);
    // The firmware probes ways sequentially (§6.3); the first probe
    // is the published constant hit cost, each further way adds
    // perWayProbeCost.
    probe.cost = timings->cacheHitCost
        + Tick{probes > 0 ? probes - 1 : 0} * timings->perWayProbeCost;
    statProbeLatency.sample(sim::ticksToUs(probe.cost));
    if (line) {
        probe.hit = true;
        probe.pfn = line->pfn;
        line->lastUse = ++useClock;
        ++statHits;
    } else {
        ++statMisses;
    }
    return probe;
}

RunHits
SharedUtlbCache::lookupRun(ProcId pid, Vpn start, std::size_t n,
                           Pfn *pfns, LineRef *first_hit)
{
    // A cost-model restriction, not a structural one: RunHits models
    // one shared perHitCost, which only holds when every hit is a
    // single-way probe. Associative callers take the page-at-a-time
    // path, whose per-page probe counts price each way probed.
    UTLB_ASSERT(config.assoc == 1,
                "lookupRun requires a direct-mapped cache (RunHits "
                "carries a single shared per-hit probe cost)");
    RunHits out;
    out.perHitCost = timings->cacheHitCost;

    // Consecutive vpns map to consecutive sets (the index is a sum
    // modulo numSets), so the run walks the line array with an
    // increment instead of re-hashing every page.
    std::size_t set = setIndex(pid, start);
    std::size_t i = 0;
    for (; i < n; ++i) {
        Line &line = lines[set];
        if (!(line.valid && line.pid == pid && line.vpn == start + i))
            break;  // first miss: record nothing, caller re-probes
        line.lastUse = ++useClock;
        pfns[i] = line.pfn;
        if (i == 0 && first_hit)
            first_hit->line = &line;
        if (++set == numSets)
            set = 0;
    }

    out.hits = i;
    if (i > 0) {
        out.cost = static_cast<Tick>(i) * out.perHitCost;
        statHits += i;
        statProbeLatency.sampleN(sim::ticksToUs(out.perHitCost), i);
    }
    return out;
}

bool
SharedUtlbCache::hitViaRef(LineRef &ref, ProcId pid, Vpn vpn,
                           CacheProbe &out)
{
    Line *line = ref.line;
    if (!line || !line->valid || line->pid != pid || line->vpn != vpn)
        return false;
    // A ref pins the exact way that served the original hit (for
    // refs minted by lookupRun, always way 0 of a direct-mapped
    // set), so the modeled firmware re-probe charges that way's
    // probe depth.
    auto way = static_cast<unsigned>(
        static_cast<std::size_t>(line - lines.data()) % config.assoc);
    out.hit = true;
    out.pfn = line->pfn;
    out.cost = timings->cacheHitCost
        + Tick{way} * timings->perWayProbeCost;
    line->lastUse = ++useClock;
    ++statHits;
    statProbeLatency.sample(sim::ticksToUs(out.cost));
    return true;
}

void
SharedUtlbCache::enableConcurrent()
{
    if (concurrent())
        return;
    // Any associativity: probes validate a set's ways against its
    // seqlock version, writers bump that version under the set's
    // stripe lock. The paper's sweep runs 1-, 2-, and 4-way (§3.2).
    seqs = std::make_unique<sim::SeqCount[]>(numSets);
    stripes = std::make_unique<sim::Spinlock[]>(
        (numSets + kSetsPerStripe - 1) / kSetsPerStripe);
    numStripes = (numSets + kSetsPerStripe - 1) / kSetsPerStripe;
}

SharedUtlbCache::Shard
SharedUtlbCache::makeShard() const
{
    return Shard(statProbeLatency.makeLocal());
}

void
SharedUtlbCache::absorbShard(Shard &sh)
{
    sim::LockGuard g(absorbMu);
    statHits.absorb(sh.hits);
    statMisses.absorb(sh.misses);
    statInserts.absorb(sh.inserts);
    statRefreshes.absorb(sh.refreshes);
    statEvictions.absorb(sh.evictions);
    statProbeLatency.absorb(sh.probeLatency);
}

std::uint64_t
SharedUtlbCache::nextStamp(Shard &sh)
{
    if (sh.stampNext == sh.stampEnd) {
        // One shared-clock RMW buys kStampBlock local stamps. The
        // base is the pre-add clock, so a lone worker draws exactly
        // the 1, 2, 3, ... sequence of the sequential ++useClock.
        std::uint64_t base =
            std::atomic_ref<std::uint64_t>(useClock).fetch_add(
                kStampBlock, std::memory_order_relaxed);
        sh.stampNext = base + 1;
        sh.stampEnd = base + kStampBlock + 1;
    }
    return sh.stampNext++;
}

unsigned
SharedUtlbCache::probeSetMT(std::size_t set, ProcId pid, Vpn vpn,
                            unsigned &way, Pfn &pfn, Shard &sh)
{
    Line *base = &lines[set * config.assoc];
    sim::SeqCount &seq = seqs[set];
    for (unsigned attempt = 0; attempt < kSeqlockMaxRetries;
         ++attempt) {
        std::uint32_t v = seq.readBegin();
        unsigned probes = config.assoc;
        way = config.assoc;
        for (unsigned w = 0; w < config.assoc; ++w) {
            Line &line = base[w];
            if (loadRelaxed(line.valid)
                && loadRelaxed(line.pid) == pid
                && loadRelaxed(line.vpn) == vpn) {
                way = w;
                probes = w + 1;
                pfn = loadRelaxed(line.pfn);
                break;
            }
        }
        if (!seq.readRetry(v))
            return probes;
        ++sh.seqRetries;
    }
    // Writers are hammering this set; take their lock instead of
    // spinning forever (the readers' progress guarantee). Under it
    // the scan cannot race anything.
    sim::SpinGuard g(stripeOf(set));
    return scanWaysLocked(set, pid, vpn, way, pfn);
}

unsigned
SharedUtlbCache::scanWaysLocked(std::size_t set, ProcId pid, Vpn vpn,
                                unsigned &way, Pfn &pfn)
{
    Line *base = &lines[set * config.assoc];
    unsigned probes = config.assoc;
    way = config.assoc;
    for (unsigned w = 0; w < config.assoc; ++w) {
        Line &line = base[w];
        if (line.valid && line.pid == pid && line.vpn == vpn) {
            way = w;
            probes = w + 1;
            pfn = line.pfn;
            break;
        }
    }
    return probes;
}

void
SharedUtlbCache::stampWayMT(std::size_t set, unsigned way, ProcId pid,
                            Vpn vpn, Shard &sh)
{
    sim::SpinGuard g(stripeOf(set));
    stampLineLocked(set, way, pid, vpn, sh);
}

void
SharedUtlbCache::stampLineLocked(std::size_t set, unsigned way,
                                 ProcId pid, Vpn vpn, Shard &sh)
{
    Line &line = lines[set * config.assoc + way];
    // If a writer reclaimed the way since the optimistic read, the
    // (already-consistent) hit simply leaves no recency mark — a
    // stamp here would resurrect a dead or foreign line.
    if (line.valid && line.pid == pid && line.vpn == vpn)
        line.lastUse = nextStamp(sh);
}

CacheProbe
SharedUtlbCache::lookupMT(ProcId pid, Vpn vpn, Shard &sh)
{
    CacheProbe probe;
    std::size_t set = setIndex(pid, vpn);
    unsigned way = config.assoc;
    Pfn pfn = mem::kInvalidPfn;
    unsigned probes = probeSetMT(set, pid, vpn, way, pfn, sh);
    // Same firmware model as lookup(): the first way probed is the
    // published constant hit cost, each further way adds
    // perWayProbeCost (§6.3).
    probe.cost = timings->cacheHitCost
        + Tick{probes > 0 ? probes - 1 : 0} * timings->perWayProbeCost;
    sh.probeLatency.sample(sim::ticksToUs(probe.cost));
    if (way == config.assoc) {
        ++sh.misses;
        return probe;
    }
    probe.hit = true;
    probe.pfn = pfn;
    stampWayMT(set, way, pid, vpn, sh);
    ++sh.hits;
    return probe;
}

RunHits
SharedUtlbCache::lookupRunMT(ProcId pid, Vpn start, std::size_t n,
                             Pfn *pfns, LineRef *first_hit, Shard &sh)
{
    // Same cost-model restriction as lookupRun (one shared
    // perHitCost); associative MT callers go page-at-a-time through
    // lookupMT, which prices every way probed.
    UTLB_ASSERT(config.assoc == 1,
                "lookupRunMT requires a direct-mapped cache (RunHits "
                "carries a single shared per-hit probe cost)");
    RunHits out;
    out.perHitCost = timings->cacheHitCost;

    // Same consecutive-set walk as lookupRun. Each stripe's window
    // is read optimistically (per-set seqlock validation, no lock
    // held), then the stripe lock is taken once to stamp the
    // window's hits — so readers only serialize against writers for
    // the stamping stores, never the probes.
    std::size_t set = setIndex(pid, start);
    std::size_t i = 0;
    bool missed = false;
    while (i < n && !missed) {
        std::size_t stripe_end = std::min(
            ((set >> kSetsPerStripeLog2) + 1) << kSetsPerStripeLog2,
            numSets);
        const std::size_t windowSet = set;
        const std::size_t windowI = i;
        for (; i < n && set < stripe_end; ++set, ++i) {
            unsigned way = 1;
            Pfn pfn = mem::kInvalidPfn;
            probeSetMT(set, pid, start + i, way, pfn, sh);
            if (way == config.assoc) {
                missed = true;  // record nothing, caller re-probes
                break;
            }
            pfns[i] = pfn;
        }
        std::size_t hitsHere = i - windowI;
        if (hitsHere > 0) {
            sim::SpinGuard g(stripeOf(windowSet));
            for (std::size_t k = 0; k < hitsHere; ++k) {
                Line &line = lines[windowSet + k];
                // Re-validate: a concurrent writer may have
                // reclaimed the way since the optimistic read, and
                // a skipped stamp is the only correct outcome then.
                if (line.valid && line.pid == pid
                    && line.vpn == start + windowI + k)
                    line.lastUse = nextStamp(sh);
            }
            if (windowI == 0 && first_hit) {
                // Mint the ref under the stripe lock: the version
                // recorded here is even and stays authoritative for
                // hitViaRefMT until the next tag write in the set.
                first_hit->line = &lines[windowSet];
                first_hit->version = seqs[windowSet].value();
            }
        }
        if (set == numSets)
            set = 0;
    }

    out.hits = i;
    if (i > 0) {
        out.cost = static_cast<Tick>(i) * out.perHitCost;
        sh.hits += i;
        sh.probeLatency.sampleN(sim::ticksToUs(out.perHitCost), i);
    }
    return out;
}

bool
SharedUtlbCache::hitViaRefMT(LineRef &ref, ProcId pid, Vpn vpn,
                             CacheProbe &out, Shard &sh)
{
    Line *line = ref.line;
    if (!line)
        return false;
    std::size_t idx = static_cast<std::size_t>(line - lines.data());
    std::size_t set = idx / config.assoc;
    auto way = static_cast<unsigned>(idx % config.assoc);
    sim::SpinGuard g(stripeOf(set));
    // Version guard: the set must not have seen a single tag write
    // since the ref was minted, or the way may have been reclaimed
    // for another translation — any churn demotes the ref to a
    // clean miss and the caller re-probes.
    if (seqs[set].value() != ref.version)
        return false;
    if (!line->valid || line->pid != pid || line->vpn != vpn)
        return false;
    out.hit = true;
    out.pfn = line->pfn;
    // The ref pins the exact way that served the original hit, so
    // the modeled re-probe charges that way's probe depth (way 0 —
    // the only minted way today — is the constant hit cost).
    out.cost = timings->cacheHitCost
        + Tick{way} * timings->perWayProbeCost;
    line->lastUse = nextStamp(sh);
    ++sh.hits;
    sh.probeLatency.sample(sim::ticksToUs(out.cost));
    return true;
}

std::optional<EvictedEntry>
SharedUtlbCache::insertMT(ProcId pid, Vpn vpn, Pfn pfn,
                          InsertMode mode, Shard &sh)
{
    ++sh.inserts;
    std::size_t set = setIndex(pid, vpn);
    Line *base = &lines[set * config.assoc];
    sim::SeqCount &seq = seqs[set];
    sim::SpinGuard g(stripeOf(set));

    // Re-insert over an existing entry (refresh); prefetch refreshes
    // leave recency alone (§6.4), exactly as insert(). Only the pfn
    // store needs the version bump — the tags are unchanged.
    for (unsigned w = 0; w < config.assoc; ++w) {
        Line &line = base[w];
        if (line.valid && line.pid == pid && line.vpn == vpn) {
            seq.writeBegin();
            storeRelaxed(line.pfn, pfn);
            seq.writeEnd();
            if (mode == InsertMode::Demand)
                line.lastUse = nextStamp(sh);
            ++sh.refreshes;
            return std::nullopt;
        }
    }

    // Fill an invalid way if one exists.
    for (unsigned w = 0; w < config.assoc; ++w) {
        Line &line = base[w];
        if (!line.valid) {
            seq.writeBegin();
            storeRelaxed(line.pid, pid);
            storeRelaxed(line.vpn, vpn);
            storeRelaxed(line.pfn, pfn);
            storeRelaxed(line.valid, true);
            seq.writeEnd();
            line.lastUse = nextStamp(sh);
            return std::nullopt;
        }
    }

    // Evict the LRU way; stamps are stable under the stripe lock,
    // so the victim scan matches insert()'s decision bit-for-bit
    // with a single worker.
    Line *victim = base;
    for (unsigned w = 1; w < config.assoc; ++w) {
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    EvictedEntry out{victim->pid, victim->vpn, victim->pfn};
    seq.writeBegin();
    storeRelaxed(victim->pid, pid);
    storeRelaxed(victim->vpn, vpn);
    storeRelaxed(victim->pfn, pfn);
    storeRelaxed(victim->valid, true);
    seq.writeEnd();
    victim->lastUse = nextStamp(sh);
    ++sh.evictions;
    return out;
}

std::optional<Pfn>
SharedUtlbCache::peek(ProcId pid, Vpn vpn) const
{
    const Line *line = findLine(pid, vpn);
    if (!line)
        return std::nullopt;
    return line->pfn;
}

void
SharedUtlbCache::killLine(Line &line)
{
    // A dead line must not retain a recency stamp: the next insert
    // reuses the way with a fresh stamp, and the audit relies on
    // invalid lines being fully scrubbed.
    line.valid = false;
    line.lastUse = 0;
}

std::optional<EvictedEntry>
SharedUtlbCache::insert(ProcId pid, Vpn vpn, Pfn pfn, InsertMode mode)
{
    ++statInserts;
    std::size_t set = setIndex(pid, vpn);
    Line *base = &lines[set * config.assoc];

    // Re-insert over an existing entry (refresh). A prefetch refresh
    // updates the translation but not the recency: the NIC never
    // referenced this page, so promoting it would pollute the LRU
    // order of the set (§6.4).
    for (unsigned w = 0; w < config.assoc; ++w) {
        Line &line = base[w];
        if (line.valid && line.pid == pid && line.vpn == vpn) {
            line.pfn = pfn;
            if (mode == InsertMode::Demand)
                line.lastUse = ++useClock;
            ++statRefreshes;
            return std::nullopt;
        }
    }

    // Fill an invalid way if one exists.
    for (unsigned w = 0; w < config.assoc; ++w) {
        Line &line = base[w];
        if (!line.valid) {
            line = Line{true, pid, vpn, pfn, ++useClock};
            return std::nullopt;
        }
    }

    // Evict the LRU way.
    Line *victim = base;
    for (unsigned w = 1; w < config.assoc; ++w) {
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    EvictedEntry out{victim->pid, victim->vpn, victim->pfn};
    *victim = Line{true, pid, vpn, pfn, ++useClock};
    ++statEvictions;
    return out;
}

bool
SharedUtlbCache::invalidate(ProcId pid, Vpn vpn)
{
    if (concurrent()) {
        // Unpin-path coherence drops race with other workers'
        // optimistic probes, so scan the ways under the stripe lock
        // and retire the match inside a seqlock write section; the
        // counter bump is a relaxed RMW since it can race
        // absorbShard() readers of sibling counters on the same
        // cache line.
        std::size_t set = setIndex(pid, vpn);
        bool dropped = false;
        {
            sim::SpinGuard g(stripeOf(set));
            Line *base = &lines[set * config.assoc];
            for (unsigned w = 0; w < config.assoc; ++w) {
                Line &line = base[w];
                if (line.valid && line.pid == pid
                    && line.vpn == vpn) {
                    seqs[set].writeBegin();
                    storeRelaxed(line.valid, false);
                    seqs[set].writeEnd();
                    line.lastUse = 0;
                    dropped = true;
                    break;
                }
            }
        }
        if (dropped)
            statInvalidations.addRelaxed(1);
        return dropped;
    }
    Line *line = findLine(pid, vpn, nullptr);
    if (!line)
        return false;
    killLine(*line);
    ++statInvalidations;
    return true;
}

std::optional<EvictedEntry>
SharedUtlbCache::evictLruOfProcess(ProcId pid)
{
    Line *victim = nullptr;
    for (Line &line : lines) {
        if (!line.valid || line.pid != pid)
            continue;
        if (!victim || line.lastUse < victim->lastUse)
            victim = &line;
    }
    if (!victim)
        return std::nullopt;
    EvictedEntry out{victim->pid, victim->vpn, victim->pfn};
    killLine(*victim);
    ++statSheds;
    return out;
}

std::size_t
SharedUtlbCache::invalidateProcess(ProcId pid)
{
    std::size_t count = 0;
    for (Line &line : lines) {
        if (line.valid && line.pid == pid) {
            killLine(line);
            ++count;
        }
    }
    statInvalidations += count;
    return count;
}

void
SharedUtlbCache::clear()
{
    for (Line &line : lines) {
        if (line.valid) {
            killLine(line);
            ++statClearDrops;
        }
    }
}

std::size_t
SharedUtlbCache::validEntries() const
{
    return static_cast<std::size_t>(
        std::count_if(lines.begin(), lines.end(),
                      [](const Line &l) { return l.valid; }));
}

std::size_t
SharedUtlbCache::occupancyOf(ProcId pid) const
{
    return static_cast<std::size_t>(std::count_if(
        lines.begin(), lines.end(), [pid](const Line &l) {
            return l.valid && l.pid == pid;
        }));
}

void
SharedUtlbCache::audit(check::AuditReport &report) const
{
    report.component("shared-cache");
    for (std::size_t set = 0; set < numSets; ++set) {
        const Line *base = &lines[set * config.assoc];
        for (unsigned w = 0; w < config.assoc; ++w) {
            const Line &line = base[w];
            if (!line.valid) {
                // Dead lines must be fully scrubbed: a stale stamp
                // would silently distort LRU if ever trusted, and
                // signals a removal path that bypassed killLine().
                report.require(line.lastUse == 0,
                               "dead line in way %u of set %zu "
                               "retains recency stamp %llu",
                               w, set,
                               static_cast<unsigned long long>(
                                   line.lastUse));
                continue;
            }
            // Tag/process-offset integrity: a line must live in the
            // set its (pid, vpn) hashes to, or lookups will silently
            // miss it (cross-process aliasing shows up the same way).
            std::size_t home = setIndex(line.pid, line.vpn);
            report.require(home == set,
                           "line (pid %u, vpn %llu) stored in set %zu "
                           "but indexes to set %zu",
                           line.pid,
                           static_cast<unsigned long long>(line.vpn),
                           set, home);
            report.require(line.lastUse <= useClock,
                           "line (pid %u, vpn %llu) LRU stamp %llu is "
                           "ahead of the use clock %llu",
                           line.pid,
                           static_cast<unsigned long long>(line.vpn),
                           static_cast<unsigned long long>(line.lastUse),
                           static_cast<unsigned long long>(useClock));
            for (unsigned w2 = w + 1; w2 < config.assoc; ++w2) {
                const Line &dup = base[w2];
                report.require(!dup.valid || dup.pid != line.pid
                                   || dup.vpn != line.vpn,
                               "duplicate (pid %u, vpn %llu) in ways "
                               "%u and %u of set %zu",
                               line.pid,
                               static_cast<unsigned long long>(line.vpn),
                               w, w2, set);
            }
        }
    }

    // Removal-taxonomy conservation: every line present was installed
    // by an insert that created it (insertions minus refreshes; a
    // capacity eviction both removes and creates in one call), and
    // every line gone left through exactly one of the three removal
    // paths or a clear. Double-counting a shed as an eviction — the
    // bug this split fixes — breaks the balance immediately.
    auto created = static_cast<std::int64_t>(insertions())
        - static_cast<std::int64_t>(refreshes());
    auto removed = static_cast<std::int64_t>(evictions())
        + static_cast<std::int64_t>(sheds())
        + static_cast<std::int64_t>(invalidations())
        + static_cast<std::int64_t>(statClearDrops.value());
    auto expected = static_cast<std::int64_t>(statsBaseValid)
        + created - removed;
    report.require(static_cast<std::int64_t>(validEntries()) == expected,
                   "occupancy %zu disagrees with counter taxonomy "
                   "(base %zu + created %lld - removed %lld)",
                   validEntries(), statsBaseValid,
                   static_cast<long long>(created),
                   static_cast<long long>(removed));

    // Seqlock quiescence: the audit runs with no writer in flight, so
    // every set's version counter must be even — an odd counter means
    // a write section was entered and never closed, which would spin
    // all future optimistic readers of that set into the lock-based
    // fallback forever.
    if (numStripes != 0) {
        for (std::size_t set = 0; set < numSets; ++set) {
            std::uint32_t v = seqs[set].value();
            report.require((v & 1u) == 0,
                           "set %zu seqlock version %u is odd at "
                           "quiescence (unclosed write section)",
                           set, v);
        }
    }
}

void
SharedUtlbCache::resetStats()
{
    statsGrp.resetAll();
    statsBaseValid = validEntries();
}

} // namespace utlb::core
