/**
 * @file
 * Asynchronous miss service: outstanding-DMA continuations.
 *
 * The paper's UTLB firmware keeps accepting messages while
 * translation-miss DMAs are outstanding; our serialized miss path
 * instead stalled the missing worker inside the driver mutex, so one
 * slow miss DMA held up every concurrent translation. FillPipeline
 * models the decoupled design:
 *
 *  - workers post miss requests (FillTicket) into a bounded MPSC
 *    FillQueue and keep translating — later hits in the window are
 *    served while the fill is in flight;
 *  - one dedicated fill thread drains the queue in batches, sorts
 *    each batch by cache stripe (so installs take each stripe lock
 *    in runs instead of ping-ponging), services every miss through
 *    the same serviceMiss() routine as the synchronous path — same
 *    host-table DMA, same fault-repair ioctl through the driver
 *    mutex, same insertMT under the seqlock/stripe-lock write
 *    protocol — and publishes the result on the ticket;
 *  - completion wakes only threads blocked in waitDone(); workers
 *    that never wait are never touched.
 *
 * Producers never block: a full (or stopped) queue fails the post
 * and the worker services that miss synchronously, so the pipeline
 * can only ever degrade to the old serialized behaviour.
 *
 * Ownership rules (docs/performance.md): the fill thread owns its
 * own cache Shard, scratch buffers, and every pipeline statistic;
 * a ticket belongs to the fill thread from the moment tryPush()
 * accepts it until done is observed true, then returns to the
 * posting worker. Stats are read at quiescence after stop().
 */

#ifndef UTLB_CORE_FILL_PIPELINE_HPP
#define UTLB_CORE_FILL_PIPELINE_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "core/utlb.hpp"
#include "sim/annotations.hpp"
#include "sim/fill_queue.hpp"
#include "sim/mutex.hpp"
#include "sim/stats.hpp"

namespace utlb::core {

/**
 * One outstanding miss-fill request. Owned by the posting worker;
 * lent to the fill thread between a successful post and the
 * done-flag release. pid/vpn/width are written by the worker before
 * the post and read-only afterwards; result is written by the fill
 * thread before it releases done.
 */
struct FillTicket {
    mem::ProcId pid = 0;
    mem::Vpn vpn = 0;
    std::size_t width = 1;

    /** Wall clock at post time (fill-latency histogram). */
    std::chrono::steady_clock::time_point postedAt;

    /** Filled by the fill thread; valid once done is true. */
    MissOutcome result;

    /** Release-published completion flag; see FillPipeline::waitDone. */
    std::atomic<bool> done{false};
};

/**
 * The dedicated fill thread plus its queue. One instance per NIC
 * (per SharedUtlbCache); every concurrent UserUtlb view of that NIC
 * may attach to it. The constructor starts the thread; stop() (or
 * the destructor) drains the queue, joins, and folds the fill
 * thread's stat shard into the cache — after stop() the pipeline's
 * statistics are quiescent and exact.
 */
class FillPipeline
{
  public:
    /** Tickets the fill thread drains per queue pop. */
    static constexpr std::size_t kBatchMax = 16;

    FillPipeline(UtlbDriver &drv, SharedUtlbCache &cache,
                 const nic::NicTimings &timings,
                 std::size_t queue_capacity = 64);

    ~FillPipeline();

    FillPipeline(const FillPipeline &) = delete;
    FillPipeline &operator=(const FillPipeline &) = delete;

    /**
     * Post a miss-fill request. Never blocks: false means the queue
     * is full or stopped and the caller must service the miss
     * synchronously. On true, @p t belongs to the fill thread until
     * waitDone() returns.
     */
    [[nodiscard]] bool post(FillTicket &t, mem::ProcId pid,
                            mem::Vpn vpn, std::size_t width);

    /**
     * Block until @p t completes. Fast path is one acquire load;
     * the slow path sleeps on the completion condvar (woken per
     * serviced ticket, so only stalled translations are woken —
     * workers serving hits never block here).
     */
    void waitDone(const FillTicket &t);

    /**
     * Stop accepting fills, drain every accepted ticket, join the
     * fill thread, and absorb its stat shard. Idempotent. Tickets
     * accepted before the stop still complete (no lost fills); no
     * install happens after stop() returns.
     */
    void stop();

    /** True until stop() has begun. */
    bool accepting() const { return !queue.isStopped(); }

    /** @name Quiescent accessors (call after stop(), or for tests) @{ */
    std::uint64_t fillsCompleted() const { return statFills.value(); }

    /** Modeled DMA ticks serviced off the workers' critical path. */
    sim::Tick overlappedTicks() const
    {
        return static_cast<sim::Tick>(statOverlappedTicks.value());
    }
    /** @} */

    /** The pipeline's statistics subtree ("fill_pipeline"). */
    sim::StatGroup &stats() { return statsGrp; }
    const sim::StatGroup &stats() const { return statsGrp; }

  private:
    void run();

    UtlbDriver *driver;
    SharedUtlbCache *cache;
    const nic::NicTimings *timings;

    sim::FillQueue<FillTicket *> queue;

    /** Pairs the done flags with sleeping waiters (no lost wakeup). */
    sim::Mutex doneMu;
    sim::CondVar doneCv;

    /** @name Fill-thread-owned state (no locks; single owner) @{ */
    SharedUtlbCache::Shard shard;
    std::vector<std::optional<mem::Pfn>> runBuf;
    std::vector<std::optional<mem::Pfn>> repairBuf;
    std::vector<FillTicket *> batch;
    /** @} */

    bool joined = false;
    std::thread filler;

    sim::StatGroup statsGrp{"fill_pipeline"};
    sim::Counter statPosted{&statsGrp, "fills_posted",
                            "miss requests accepted by the queue"};
    sim::Counter statFills{&statsGrp, "fills_completed",
                           "miss requests serviced by the fill "
                           "thread"};
    sim::Counter statFaultFills{&statsGrp, "fault_fills",
                                "serviced fills that took the "
                                "host-interrupt fault path"};
    sim::Counter statOverlappedTicks{&statsGrp, "overlapped_ticks",
                                     "modeled miss-service ticks "
                                     "run on the fill thread, "
                                     "overlapping worker progress"};
    sim::Histogram statBatchSize{&statsGrp, "batch_size",
                                 "tickets drained per queue pop",
                                 static_cast<double>(kBatchMax) + 1.0,
                                 kBatchMax + 1};
    sim::Histogram statQueueDepth{&statsGrp, "queue_depth",
                                  "queue occupancy after each batch "
                                  "pop", 64.0, 16};
    sim::Histogram statFillLatency{&statsGrp, "fill_latency_us",
                                   "wall-clock post-to-completion "
                                   "latency per fill", 1000.0, 40};
};

} // namespace utlb::core

#endif // UTLB_CORE_FILL_PIPELINE_HPP
