/**
 * @file
 * Invariant-audit framework.
 *
 * An auditor is a method `audit(check::AuditReport &) const` on a
 * load-bearing structure that re-derives the structure's redundant
 * state from first principles and reports every disagreement. Unlike
 * UTLB_ASSERT (which aborts at the corruption site), auditors only
 * *collect* violations, so:
 *
 *  - tests can deliberately corrupt a structure and assert the
 *    auditor catches it (tests/test_invariants.cpp);
 *  - the tlbsim simulator can sweep all auditors every N lookups
 *    (--audit-every) and abort with a full list of violations.
 *
 * Auditors are expected to be O(structure size); they are *not* for
 * hot paths. Hot-path preconditions belong in UTLB_ASSERT.
 */

#ifndef UTLB_CHECK_AUDIT_HPP
#define UTLB_CHECK_AUDIT_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace utlb::check {

/** One invariant violation found by an auditor. */
struct AuditIssue {
    std::string component;  //!< auditor that found it
    std::string detail;     //!< human-readable description
    std::uint64_t pid;      //!< owning process, or kNoAuditPid
};

/** Sentinel for issues not tied to one process. */
inline constexpr std::uint64_t kNoAuditPid = ~std::uint64_t{0};

/**
 * Collector passed through a sweep of auditors.
 *
 * Usage: each auditor calls component() once to name itself, then
 * require()/addf() for every invariant it re-derives.
 */
class AuditReport
{
  public:
    /** True if no auditor reported a violation. */
    bool ok() const { return issues.empty(); }

    /** All collected violations. */
    const std::vector<AuditIssue> &all() const { return issues; }

    /** Violations attributed to @p component. */
    std::size_t countFor(const std::string &component) const;

    /** Number of auditors that ran (component() calls). */
    std::size_t auditorsRun() const { return numAuditors; }

    /** Begin a component's audit; sets the attribution label. */
    void component(std::string name, std::uint64_t pid = kNoAuditPid);

    /** Record a violation under the current component. */
    void addf(const char *fmt, ...)
        __attribute__((format(printf, 2, 3)));

    /** Record a violation iff @p ok is false. */
    void require(bool ok, const char *fmt, ...)
        __attribute__((format(printf, 3, 4)));

    /** Render every issue as one line each. */
    std::string summary() const;

  private:
    std::vector<AuditIssue> issues;
    std::string curComponent = "(unnamed)";
    std::uint64_t curPid = kNoAuditPid;
    std::size_t numAuditors = 0;
};

} // namespace utlb::check

#endif // UTLB_CHECK_AUDIT_HPP
