#!/usr/bin/env bash
# Negative-compile suite for the static concurrency checks.
#
# Every tests/negative/tsa_*.cpp except the positive control must
#   (a) compile clean WITHOUT thread-safety analysis, and
#   (b) be REJECTED with -Werror=thread-safety-analysis.
# The positive control (tsa_clean.cpp) must compile clean with the
# analysis enabled — this catches a toolchain that rejects the flags
# themselves, which would otherwise make the suite pass vacuously.
#
# The third ISSUE case — a store inside a seqlock read section — is
# invisible to the capability analysis, so it lives as a lint
# fixture; this script asserts scripts/concurrency_lint.py flags it.
#
# Exit: 0 all cases behave, 1 a case misbehaves, 77 environment
# cannot run any leg (ctest SKIP_RETURN_CODE).

set -u
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
NEG="$ROOT/tests/negative"
fail=0
ran_any=0

# --- Lint leg: runs wherever python3 exists (no clang needed) -------
if command -v python3 >/dev/null 2>&1; then
    ran_any=1
    if python3 "$ROOT/scripts/concurrency_lint.py" --force-src \
        --expect-findings \
        "$ROOT/tests/lint/seqlock_store_in_read_section.cpp"; then
        echo "ok   lint flags the seqlock-store case"
    else
        echo "FAIL lint does not flag the seqlock-store case"
        fail=1
    fi
else
    echo "negative_compile: python3 not found; skipping the lint leg" >&2
fi

# --- TSA leg: needs a clang with thread-safety analysis -------------
CLANG="${CLANG:-}"
if [ -z "$CLANG" ]; then
    for c in clang++ clang++-20 clang++-19 clang++-18 clang++-17 \
             clang++-16 clang++-15 clang++-14; do
        if command -v "$c" >/dev/null 2>&1; then
            CLANG="$c"
            break
        fi
    done
fi

if [ -z "$CLANG" ]; then
    echo "negative_compile: no clang++ found; TSA cases skipped" \
         "(CI's static-analysis job runs them)" >&2
    if [ "$fail" -ne 0 ]; then
        exit 1
    fi
    if [ "$ran_any" -eq 0 ]; then
        exit 77
    fi
    # The lint leg ran and passed; report a skip so the TSA gap is
    # visible rather than silently green.
    exit 77
fi

BASE=(-std=c++20 -fsyntax-only "-I$ROOT/src")
TSA=(-Wthread-safety -Wthread-safety-beta
     -Werror=thread-safety-analysis)

# Positive control first: correct code must pass WITH the analysis.
if "$CLANG" "${BASE[@]}" "${TSA[@]}" "$NEG/tsa_clean.cpp"; then
    echo "ok   tsa_clean.cpp: accepted with the analysis enabled"
else
    echo "FAIL tsa_clean.cpp: rejected with the analysis enabled —" \
         "toolchain cannot run this suite"
    exit 1
fi

for f in "$NEG"/tsa_*.cpp; do
    name="$(basename "$f")"
    [ "$name" = "tsa_clean.cpp" ] && continue
    if ! "$CLANG" "${BASE[@]}" "$f" 2>/dev/null; then
        echo "FAIL $name: does not compile even without the analysis"
        fail=1
        continue
    fi
    if "$CLANG" "${BASE[@]}" "${TSA[@]}" "$f" 2>/dev/null; then
        echo "FAIL $name: accepted under -Werror=thread-safety-analysis"
        fail=1
    else
        echo "ok   $name: rejected by the analysis, accepted without"
    fi
done

exit "$fail"
