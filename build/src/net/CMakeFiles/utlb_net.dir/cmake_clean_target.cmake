file(REMOVE_RECURSE
  "libutlb_net.a"
)
