#include "core/interrupt_baseline.hpp"

#include "sim/log.hpp"

namespace utlb::core {

using mem::PinStatus;
using mem::ProcId;
using mem::Vpn;

void
InterruptTlb::unpinEvicted(const EvictedEntry &ev, IntrLookup &out)
{
    // Eviction from the NIC cache unpins the page — the defining
    // behaviour of this approach [Basu et al. 97].
    pins->unpinPage(ev.pid, ev.vpn);
    out.cost += costs->kernelUnpinCost();
    ++out.unpins;
    ++statUnpins;
}

IntrLookup
InterruptTlb::translate(ProcId pid, Vpn vpn)
{
    IntrLookup out = translateImpl(pid, vpn);
    statLookupLatency.sample(sim::ticksToUs(out.cost));
    return out;
}

IntrLookup
InterruptTlb::translateImpl(ProcId pid, Vpn vpn)
{
    IntrLookup out;
    ++statLookups;

    CacheProbe probe = nicCache->lookup(pid, vpn);
    out.cost += probe.cost;
    if (probe.hit) {
        out.pfn = probe.pfn;
        return out;
    }

    // Miss: interrupt the host; the handler pins the page and
    // installs the translation.
    out.miss = true;
    ++statMisses;
    ++statInterrupts;
    out.cost += costs->interruptCost();

    std::optional<mem::Pfn> frame;
    while (true) {
        PinStatus st = PinStatus::Ok;
        frame = pins->pinPage(pid, vpn, &st);
        if (frame)
            break;
        if (st == PinStatus::LimitExceeded
            || st == PinStatus::OutOfMemory) {
            // Pinning is tied to cache residency: shed this
            // process' LRU cached page and retry.
            auto shed = nicCache->evictLruOfProcess(pid);
            if (!shed) {
                out.failed = true;
                out.cost += costs->kernelPinCost();
                return out;
            }
            unpinEvicted(*shed, out);
            continue;
        }
        out.failed = true;
        return out;
    }
    out.cost += costs->kernelPinCost();

    auto evicted = nicCache->insert(pid, vpn, *frame);
    if (evicted)
        unpinEvicted(*evicted, out);

    out.pfn = *frame;
    return out;
}

} // namespace utlb::core
