# Empty compiler generated dependencies file for test_multiprog.
# This may be replaced when dependencies are built.
