file(REMOVE_RECURSE
  "../bench/bench_table4_utlb_vs_intr"
  "../bench/bench_table4_utlb_vs_intr.pdb"
  "CMakeFiles/bench_table4_utlb_vs_intr.dir/bench_table4_utlb_vs_intr.cpp.o"
  "CMakeFiles/bench_table4_utlb_vs_intr.dir/bench_table4_utlb_vs_intr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_utlb_vs_intr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
