/**
 * @file
 * The Per-process UTLB design (§3.1, Figure 1).
 *
 * Each process owns a fixed-size translation table in NIC SRAM and a
 * user-level two-level lookup tree mapping virtual pages to table
 * indices. To communicate, the process looks up (or creates) the
 * indices for its buffer's pages and submits those indices to the
 * NIC, which translates with a single protected table read.
 *
 * Capacity is limited by NIC SRAM ("this results in a fairly small
 * translation table for each process", §3.2 — the motivation for the
 * Shared UTLB-Cache). When the table fills, the library evicts
 * entries with its replacement policy, unpinning the victims.
 */

#ifndef UTLB_CORE_PER_PROCESS_UTLB_HPP
#define UTLB_CORE_PER_PROCESS_UTLB_HPP

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/driver.hpp"
#include "core/lookup_tree.hpp"
#include "core/replacement.hpp"
#include "sim/types.hpp"

namespace utlb::core {

/** Configuration of a per-process UTLB instance. */
struct PerProcessConfig {
    std::size_t tableEntries = 8192;  //!< NIC SRAM table slots
    PolicyKind policy = PolicyKind::Lru;
    std::uint64_t seed = 12345;
};

/** Result of resolving a buffer to translation-table indices. */
struct IndexLookup {
    bool ok = true;
    std::vector<UtlbIndex> indices;  //!< one per page of the buffer
    sim::Tick hostCost = 0;
    bool checkMiss = false;
    std::size_t pagesPinned = 0;
    std::size_t pagesUnpinned = 0;
};

/**
 * A process' handle on its private NIC-resident translation table.
 */
class PerProcessUtlb
{
  public:
    /** Creates the NIC table through the driver (claims SRAM). */
    PerProcessUtlb(UtlbDriver &drv, mem::ProcId pid,
                   const PerProcessConfig &cfg);

    mem::ProcId pid() const { return procId; }
    std::size_t tableEntries() const { return cfg.tableEntries; }

    /**
     * Resolve [va, va+nbytes) to table indices, pinning and
     * installing translations for unpinned pages (evicting old
     * entries if the table is full).
     */
    IndexLookup lookup(mem::VirtAddr va, std::size_t nbytes);

    /**
     * NIC-side read of a user-submitted index: always yields a
     * frame (the garbage frame for bogus indices) in constant time.
     */
    mem::Pfn nicRead(UtlbIndex index) const;

    /** Number of live (pinned) entries in the table. */
    std::size_t liveEntries() const;

    /** User-level index of @p vpn, if installed. */
    std::optional<UtlbIndex> indexOf(mem::Vpn vpn) const;

    /**
     * Fragmentation metric (§3.3): the number of discontiguous
     * index runs occupied by the translations of the buffer
     * [va, va+nbytes). A freshly-filled table maps a contiguous
     * buffer to one run; "after complex data accesses, a user
     * buffer's translations may be scattered in the translation
     * table" — the problem Hierarchical-UTLB eliminates.
     * Pages without an installed index are ignored.
     * @return the run count (0 if no page is installed).
     */
    std::size_t bufferIndexRuns(mem::VirtAddr va,
                                std::size_t nbytes) const;

    /** @name Lifetime counters @{ */
    std::uint64_t totalLookups() const { return numLookups; }
    std::uint64_t totalCheckMisses() const { return numCheckMisses; }
    std::uint64_t totalEvictions() const { return numEvictions; }
    /** @} */

  private:
    /**
     * Free a slot by evicting the policy's victim, never choosing a
     * page inside [keep_start, keep_start + keep_pages).
     */
    bool evictOne(IndexLookup &res, mem::Vpn keep_start,
                  std::size_t keep_pages);

    UtlbDriver *driver;
    mem::ProcId procId;
    PerProcessConfig cfg;
    LookupTree tree;
    std::unique_ptr<ReplacementPolicy> repl;
    std::vector<UtlbIndex> freeIndices;
    std::unordered_map<UtlbIndex, mem::Vpn> vpnAtIndex;

    std::uint64_t numLookups = 0;
    std::uint64_t numCheckMisses = 0;
    std::uint64_t numEvictions = 0;
};

} // namespace utlb::core

#endif // UTLB_CORE_PER_PROCESS_UTLB_HPP
