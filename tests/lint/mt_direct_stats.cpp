// Known-bad fixture for scripts/concurrency_lint.py (never compiled).
//
// A *MT method bumps the shared stat counters directly instead of
// accumulating into the caller's Shard. Under contention this is a
// data race on the counter (sim::Counter is not atomic) and it
// serializes the hot path the sharding exists to keep private.
//
// utlb-lint-expect: mt-shard-discipline

#include <cstdint>

struct Shard {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
};

struct Counter {
    std::uint64_t v = 0;
    Counter &operator++() { ++v; return *this; }
};

class FakeCache
{
  public:
    bool lookupMT(std::uint64_t vpn, Shard &sh);

  private:
    Counter statHits;
    Counter statMisses;
};

bool
FakeCache::lookupMT(std::uint64_t vpn, Shard &sh)
{
    if (vpn & 1) {
        // BAD: shared counter mutated on the concurrent hot path.
        ++statHits;
        return true;
    }
    ++sh.misses; // fine: the caller's shard
    ++statMisses; // BAD again
    return false;
}
