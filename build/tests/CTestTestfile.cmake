# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_nic[1]_include.cmake")
include("/root/repo/build/tests/test_core_structures[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_vmmc[1]_include.cmake")
include("/root/repo/build/tests/test_core_utlb[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_tlbsim[1]_include.cmake")
include("/root/repo/build/tests/test_failure[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_rcache[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_reproduction[1]_include.cmake")
include("/root/repo/build/tests/test_multiprog[1]_include.cmake")
