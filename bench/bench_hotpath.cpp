/**
 * @file
 * Wall-clock hot-path harness: translations per second through the
 * real UTLB stack, per-page translate() vs batched translateRange().
 *
 * Unlike the table/figure harnesses this one measures the simulator
 * itself, not the modeled machine: both modes accrue identical
 * modeled costs by construction (asserted here and by
 * tests/test_batched_range.cpp), so any wall-clock difference is
 * pure data-structure and batching win.
 *
 * Scenarios:
 *   seq64      4096-page warm buffer swept in 64-page windows, all
 *              NIC-cache hits — the acceptance cell (batched must be
 *              >= 3x pages/sec in a Release build);
 *   miss_sweep 16K-page buffer over a 1K-entry cache with prefetch
 *              32 — steady-state miss + prefetch-refill pattern;
 *   same_page  one page translated over and over — the MRU "L0"
 *              slot path;
 *   mt_warm    the warm sweep again, but with 1/2/4 worker threads
 *              driving disjoint per-process ranges through the
 *              concurrent-mode stack (bench_mt_common.hpp) — the
 *              aggregate-throughput scaling cell. Real speedup needs
 *              real cores; host_info records both the machine's core
 *              count and the worker count so the JSON is honest
 *              about oversubscription.
 *
 * UTLB_HOTPATH_MS bounds the per-cell budget (default 300 ms);
 * BENCH_hotpath.json records pages/sec, ns/page and the speedup per
 * scenario.
 */

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>

#include "bench_common.hpp"
#include "bench_mt_common.hpp"
#include "core/driver.hpp"
#include "core/utlb.hpp"
#include "mem/address_space.hpp"
#include "mem/phys_memory.hpp"
#include "mem/pinning.hpp"
#include "nic/sram.hpp"
#include "nic/timing.hpp"
#include "sim/log.hpp"
#include "sim/table.hpp"

namespace {

using namespace utlb;

/** One freshly built single-process UTLB stack. */
struct Stack {
    mem::PhysMemory phys;
    mem::PinFacility pins;
    nic::Sram sram;
    nic::NicTimings timings;
    core::HostCosts costs;
    core::SharedUtlbCache cache;
    core::UtlbDriver driver;
    std::unique_ptr<mem::AddressSpace> space;
    std::unique_ptr<core::UserUtlb> utlb;

    Stack(std::size_t frames, std::size_t entries,
          std::size_t prefetch)
        : phys(frames), sram(4u << 20),
          costs(core::HostProfile::PentiumIINT),
          cache(core::CacheConfig{entries, 1, true}, timings, &sram),
          driver(phys, pins, sram, cache, costs)
    {
        space = std::make_unique<mem::AddressSpace>(1, phys);
        driver.registerProcess(*space);
        core::UtlbConfig ucfg;
        ucfg.prefetchEntries = prefetch;
        utlb = std::make_unique<core::UserUtlb>(driver, cache,
                                                timings, 1, ucfg);
    }
};

/** Shape of one scenario's replayed workload. */
struct Scenario {
    const char *name;
    std::size_t bufPages;    //!< total pages in the buffer
    std::size_t windowPages; //!< pages per translate call
    std::size_t entries;     //!< NIC cache entries (direct-mapped)
    std::size_t prefetch;    //!< entries fetched per miss
};

struct Cell {
    double wallNs = 0;
    std::uint64_t pages = 0;
    sim::Tick modeled = 0;   //!< summed hostCost + nicCost

    double pagesPerSec() const
    {
        return wallNs > 0
            ? static_cast<double>(pages) * 1e9 / wallNs
            : 0.0;
    }
    double nsPerPage() const
    {
        return pages > 0 ? wallNs / static_cast<double>(pages) : 0.0;
    }
    double modeledUsPerPage() const
    {
        return pages > 0
            ? sim::ticksToUs(modeled) / static_cast<double>(pages)
            : 0.0;
    }
};

double
budgetMs()
{
    if (const char *e = std::getenv("UTLB_HOTPATH_MS")) {
        double v = std::atof(e);
        if (v > 0)
            return v;
    }
    return 300.0;
}

/**
 * Replay windows over the buffer until the budget expires, through
 * either translate() (batched = false) or translateRange().
 */
Cell
runCell(const Scenario &sc, bool batched, double budget_ms)
{
    Stack st(sc.bufPages + 64, sc.entries, sc.prefetch);
    std::size_t nbytes = sc.windowPages * mem::kPageSize;

    // Warm pass: pin the whole buffer and fill the cache so the
    // timed region measures the steady state, not the cold start.
    for (std::size_t p = 0; p < sc.bufPages; p += sc.windowPages) {
        core::Translation t =
            st.utlb->translate(p * mem::kPageSize, nbytes);
        if (!t.ok)
            sim::fatal("hotpath %s: warm-up pin failed", sc.name);
    }

    Cell cell;
    std::size_t window = 0;
    std::size_t nwindows = sc.bufPages / sc.windowPages;
    auto t0 = std::chrono::steady_clock::now();
    double budget_ns = budget_ms * 1e6;
    for (;;) {
        // Check the clock once per 64 windows so it stays off the
        // hot path.
        for (int rep = 0; rep < 64; ++rep) {
            mem::VirtAddr va = (window * sc.windowPages)
                * mem::kPageSize;
            core::Translation t = batched
                ? st.utlb->translateRange(va, nbytes)
                : st.utlb->translate(va, nbytes);
            cell.modeled += t.hostCost + t.nicCost;
            cell.pages += t.pageAddrs.size();
            if (++window == nwindows)
                window = 0;
        }
        double ns = std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
        if (ns >= budget_ns) {
            cell.wallNs = ns;
            break;
        }
    }
    return cell;
}

/**
 * Fixed-iteration equivalence check: the two modes over identical
 * fresh stacks must accrue bit-identical modeled cost and results.
 */
void
checkEquivalence(const Scenario &sc)
{
    Stack a(sc.bufPages + 64, sc.entries, sc.prefetch);
    Stack b(sc.bufPages + 64, sc.entries, sc.prefetch);
    std::size_t nbytes = sc.windowPages * mem::kPageSize;
    std::size_t nwindows = sc.bufPages / sc.windowPages;
    // Two full passes: cold misses, then steady state.
    for (std::size_t w = 0; w < 2 * nwindows; ++w) {
        mem::VirtAddr va =
            ((w % nwindows) * sc.windowPages) * mem::kPageSize;
        core::Translation ta = a.utlb->translate(va, nbytes);
        core::Translation tb = b.utlb->translateRange(va, nbytes);
        if (ta.hostCost != tb.hostCost || ta.nicCost != tb.nicCost
            || ta.niMisses != tb.niMisses
            || ta.pageAddrs != tb.pageAddrs
            || ta.missPages != tb.missPages)
            sim::fatal("hotpath %s: translateRange diverged from "
                       "translate at window %zu",
                       sc.name, w);
    }
}

/**
 * Direct probe-cost microcell: ns per SharedUtlbCache::lookup() on a
 * warm cache at the given associativity — the packed tag-compare
 * loop with as little else as a call can carry. Reported per assoc
 * {1, 2, 4}; perf-smoke gates each cell against the same run's
 * same_page ns/page (the probe is a strict subset of that path, so
 * the comparison holds on arbitrarily slow shared runners where an
 * absolute threshold would not).
 */
double
runProbeCell(unsigned assoc, double budget_ms)
{
    nic::NicTimings timings;
    core::SharedUtlbCache cache(core::CacheConfig{1024, assoc, true},
                                timings);
    constexpr std::uint64_t kSpan = 768;
    for (mem::Vpn v = 0; v < kSpan; ++v)
        cache.insert(1, v, v + 100, core::InsertMode::Demand);

    std::uint64_t probes = 0;
    std::uint64_t hits = 0;
    mem::Vpn vpn = 0;
    auto t0 = std::chrono::steady_clock::now();
    double budget_ns = budget_ms * 1e6;
    double ns = 0;
    for (;;) {
        for (int rep = 0; rep < 1024; ++rep) {
            hits += cache.lookup(1, vpn).hit ? 1 : 0;
            if (++vpn == kSpan)
                vpn = 0;
        }
        probes += 1024;
        ns = std::chrono::duration<double, std::nano>(
                 std::chrono::steady_clock::now() - t0)
                 .count();
        if (ns >= budget_ns)
            break;
    }
    if (hits == 0)
        sim::fatal("probe_cost assoc %u: warm cache never hit",
                   assoc);
    return ns / static_cast<double>(probes);
}

} // namespace

int
main()
{
    const Scenario scenarios[] = {
        {"seq64", 4096, 64, 8192, 1},
        {"miss_sweep", 16384, 64, 1024, 32},
        {"same_page", 1, 1, 8192, 1},
    };
    double ms = budgetMs();

    bench::JsonReporter json("hotpath");
    sim::TextTable table("hot-path wall clock (" +
                         sim::TextTable::num(ms, 0) + " ms/cell)");
    table.setHeader({"scenario", "mode", "pages/sec", "ns/page",
                     "modeled us/page"});

    for (const Scenario &sc : scenarios) {
        checkEquivalence(sc);
        Cell perpage = runCell(sc, false, ms);
        Cell batched = runCell(sc, true, ms);
        auto emit = [&](const char *mode, const Cell &cell) {
            table.addRow({sc.name, mode,
                          sim::TextTable::num(cell.pagesPerSec(), 0),
                          sim::TextTable::num(cell.nsPerPage(), 1),
                          sim::TextTable::num(cell.modeledUsPerPage(),
                                              3)});
            json.add({{"scenario", sc.name}, {"mode", mode}},
                     {{"pages_per_sec", cell.pagesPerSec()},
                      {"wall_ns", cell.wallNs},
                      {"ns_per_page", cell.nsPerPage()},
                      {"modeled_us_per_page",
                       cell.modeledUsPerPage()}});
        };
        emit("perpage", perpage);
        emit("batched", batched);
        double speedup = perpage.pagesPerSec() > 0
            ? batched.pagesPerSec() / perpage.pagesPerSec()
            : 0.0;
        table.addRow({sc.name, "speedup",
                      sim::TextTable::num(speedup, 2) + "x", "", ""});
        json.add({{"scenario", sc.name}, {"mode", "speedup"}},
                 {{"speedup", speedup}});
    }

    // Probe-cost microcells: the packed set probe in isolation.
    for (unsigned assoc : {1u, 2u, 4u}) {
        double nsProbe = runProbeCell(assoc, ms);
        std::string mode = "assoc" + std::to_string(assoc);
        table.addRow({"probe_cost", mode, "",
                      sim::TextTable::num(nsProbe, 1), ""});
        json.add({{"scenario", "probe_cost"}, {"mode", mode}},
                 {{"assoc", static_cast<double>(assoc)},
                  {"ns_per_probe", nsProbe}});
    }

    // Multi-thread scaling cell: the warm sweep with 1/2/4 workers
    // on disjoint ranges through the concurrent-mode stack.
    const bench::MtScenario &mt = bench::kMtWarm;
    json.setWorkerThreads(4);
    unsigned cores = std::thread::hardware_concurrency();
    if (cores == 0)
        cores = 1;
    double base = 0.0;
    double widest = 0.0;
    bool widestOversub = false;
    for (unsigned t = 1; t <= 4; t *= 2) {
        bench::MtStack stack(mt, t, true);
        bench::MtCell cell = bench::runMtCell(mt, stack, t, ms);
        double pps = cell.pagesPerSec();
        if (t == 1)
            base = pps;
        widest = pps;
        widestOversub = t > cores;
        std::string mode = "threads" + std::to_string(t);
        table.addRow({mt.name, mode,
                      sim::TextTable::num(pps, 0),
                      sim::TextTable::num(cell.nsPerPage(), 1),
                      sim::TextTable::num(cell.modeledUsPerPage(),
                                          3)});
        json.add({{"scenario", mt.name}, {"mode", mode}},
                 {{"threads", static_cast<double>(t)},
                  {"pages_per_sec", pps},
                  {"wall_ns", cell.wallNs},
                  {"ns_per_page", cell.nsPerPage()},
                  {"modeled_us_per_page", cell.modeledUsPerPage()},
                  {"host_cores", static_cast<double>(cores)},
                  {"oversubscribed", t > cores ? 1.0 : 0.0}});
    }
    // Speedup of the widest cell over 1 thread, recorded like the
    // per-scenario speedup rows. Meaningless when the widest cell
    // time-sliced more workers than the host has cores: flag it and
    // skip the figure rather than report scheduler arithmetic.
    double mtSpeedup = base > 0 ? widest / base : 0.0;
    table.addRow({mt.name, "speedup",
                  widestOversub
                      ? std::string("n/a")
                      : sim::TextTable::num(mtSpeedup, 2) + "x",
                  "", ""});
    if (widestOversub)
        json.add({{"scenario", mt.name}, {"mode", "speedup"}},
                 {{"host_cores", static_cast<double>(cores)},
                  {"oversubscribed", 1.0}});
    else
        json.add({{"scenario", mt.name}, {"mode", "speedup"}},
                 {{"speedup", mtSpeedup},
                  {"host_cores", static_cast<double>(cores)},
                  {"oversubscribed", 0.0}});

    table.print(std::cout);
    return 0;
}
