# Empty dependencies file for test_core_utlb.
# This may be replaced when dependencies are built.
