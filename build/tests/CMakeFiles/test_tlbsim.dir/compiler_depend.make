# Empty compiler generated dependencies file for test_tlbsim.
# This may be replaced when dependencies are built.
