file(REMOVE_RECURSE
  "../bench/bench_ablation_fragmentation"
  "../bench/bench_ablation_fragmentation.pdb"
  "CMakeFiles/bench_ablation_fragmentation.dir/bench_ablation_fragmentation.cpp.o"
  "CMakeFiles/bench_ablation_fragmentation.dir/bench_ablation_fragmentation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
