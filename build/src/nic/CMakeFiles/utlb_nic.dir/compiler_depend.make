# Empty compiler generated dependencies file for utlb_nic.
# This may be replaced when dependencies are built.
