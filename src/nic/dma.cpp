#include "nic/dma.hpp"

#include <vector>

namespace utlb::nic {

using sim::Tick;

Tick
DmaEngine::hostToNic(mem::PhysAddr src, SramAddr dst, std::size_t len)
{
    std::vector<std::uint8_t> buf(len);
    hostMem->read(src, buf);
    sram->write(dst, buf);
    numBytesToNic += len;
    ++numTransfers;
    return timings->payloadDmaCost(len);
}

Tick
DmaEngine::nicToHost(SramAddr src, mem::PhysAddr dst, std::size_t len)
{
    std::vector<std::uint8_t> buf(len);
    sram->read(src, buf);
    hostMem->write(dst, buf);
    numBytesToHost += len;
    ++numTransfers;
    return timings->payloadDmaCost(len);
}

Tick
DmaEngine::hostToHost(mem::PhysAddr src, mem::PhysAddr dst,
                      std::size_t len)
{
    std::vector<std::uint8_t> buf(len);
    hostMem->read(src, buf);
    hostMem->write(dst, buf);
    numBytesToNic += len;
    numBytesToHost += len;
    ++numTransfers;
    return timings->payloadDmaCost(len);
}

} // namespace utlb::nic
