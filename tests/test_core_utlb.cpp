/**
 * @file
 * Tests for the assembled UTLB mechanisms: driver ioctls, the pin
 * manager, the Hierarchical-UTLB facade (UserUtlb), the per-process
 * UTLB, and the interrupt-based baseline.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/cost_model.hpp"
#include "core/driver.hpp"
#include "core/interrupt_baseline.hpp"
#include "core/per_process_utlb.hpp"
#include "core/pin_manager.hpp"
#include "core/table_pager.hpp"
#include "core/shared_cache.hpp"
#include "core/utlb.hpp"
#include "mem/address_space.hpp"
#include "mem/phys_memory.hpp"
#include "mem/pinning.hpp"
#include "nic/sram.hpp"
#include "nic/timing.hpp"
#include "tlbsim/simulator.hpp"
#include "trace/workloads.hpp"

namespace {

using namespace utlb::core;
using utlb::mem::addrOf;
using utlb::mem::AddressSpace;
using utlb::mem::kPageSize;
using utlb::mem::PhysMemory;
using utlb::mem::PinFacility;
using utlb::mem::PinStatus;
using utlb::mem::Vpn;
using utlb::nic::NicTimings;
using utlb::nic::Sram;
using utlb::sim::Tick;
using utlb::sim::ticksToUs;
using utlb::sim::usToTicks;

/** A full single-node UTLB stack. */
class UtlbStack : public ::testing::Test
{
  protected:
    UtlbStack()
        : physMem(8192), sram(1 << 20),
          cache(CacheConfig{256, 1, true}, timings, &sram),
          driver(physMem, pins, sram, cache, costs),
          space(1, physMem)
    {
        driver.registerProcess(space);
    }

    UserUtlb
    makeUtlb(const UtlbConfig &cfg = {})
    {
        return UserUtlb(driver, cache, timings, 1, cfg);
    }

    HostCosts costs;
    NicTimings timings;
    PhysMemory physMem;
    PinFacility pins;
    Sram sram;
    SharedUtlbCache cache;
    UtlbDriver driver;
    AddressSpace space;
};

// ---------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------

TEST(HostCostModel, Table1PinUnpinRowsAreExact)
{
    HostCosts c;
    EXPECT_EQ(c.pinCost(1), usToTicks(27.0));
    EXPECT_EQ(c.pinCost(2), usToTicks(30.0));
    EXPECT_EQ(c.pinCost(4), usToTicks(36.0));
    EXPECT_EQ(c.pinCost(8), usToTicks(47.0));
    EXPECT_EQ(c.pinCost(16), usToTicks(70.0));
    EXPECT_EQ(c.pinCost(32), usToTicks(115.0));
    EXPECT_EQ(c.unpinCost(1), usToTicks(25.0));
    EXPECT_EQ(c.unpinCost(16), usToTicks(80.0));
    EXPECT_EQ(c.unpinCost(32), usToTicks(139.0));
}

TEST(HostCostModel, BatchPinningIsCheaperPerPage)
{
    HostCosts c;
    double one = ticksToUs(c.pinCost(1));
    double sixteen = ticksToUs(c.pinCost(16)) / 16.0;
    EXPECT_LT(sixteen, one);
}

TEST(HostCostModel, DerivedKernelCostsMatchDocumentation)
{
    HostCosts c;
    EXPECT_EQ(c.kernelPinCost(), usToTicks(16.0));
    EXPECT_EQ(c.kernelUnpinCost(), usToTicks(16.0));
    EXPECT_EQ(c.interruptCost(), usToTicks(10.0));
    EXPECT_EQ(c.userCheck(), usToTicks(0.5));
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

TEST_F(UtlbStack, PinAndInstallPopulatesHostTable)
{
    auto res = driver.ioctlPinAndInstall(1, 10, 3);
    EXPECT_EQ(res.status, PinStatus::Ok);
    EXPECT_EQ(res.pagesDone, 3u);
    EXPECT_EQ(res.cost, costs.pinCost(3));
    auto &table = driver.pageTable(1);
    for (Vpn v = 10; v < 13; ++v) {
        ASSERT_TRUE(table.get(v).has_value());
        EXPECT_EQ(table.get(v), pins.pinnedFrame(1, v));
    }
}

TEST_F(UtlbStack, UnpinInvalidatesTableAndCache)
{
    driver.ioctlPinAndInstall(1, 10, 1);
    auto pfn = *driver.pageTable(1).get(10);
    cache.insert(1, 10, pfn);
    auto res = driver.ioctlUnpinAndInvalidate(1, 10, 1);
    EXPECT_EQ(res.status, PinStatus::Ok);
    EXPECT_FALSE(driver.pageTable(1).get(10).has_value());
    EXPECT_FALSE(cache.peek(1, 10).has_value());
    EXPECT_FALSE(pins.isPinned(1, 10));
}

TEST_F(UtlbStack, UnpinKeepsTranslationWhileRefsRemain)
{
    driver.ioctlPinAndInstall(1, 10, 1);
    driver.ioctlPinAndInstall(1, 10, 1);  // second reference
    driver.ioctlUnpinAndInvalidate(1, 10, 1);
    // Still pinned once: translation must survive.
    EXPECT_TRUE(driver.pageTable(1).get(10).has_value());
    EXPECT_TRUE(pins.isPinned(1, 10));
}

TEST_F(UtlbStack, PinLimitSurfacesWithoutPartialPin)
{
    pins.setPinLimit(1, 2);
    auto res = driver.ioctlPinAndInstall(1, 0, 5);
    EXPECT_EQ(res.status, PinStatus::LimitExceeded);
    EXPECT_EQ(res.pagesDone, 0u);
    EXPECT_EQ(pins.pinnedPages(1), 0u);
    EXPECT_FALSE(driver.pageTable(1).get(0).has_value());
}

TEST_F(UtlbStack, GarbageFrameIsAllocatedAndStable)
{
    auto g = driver.garbageFrame();
    EXPECT_TRUE(physMem.isAllocated(g));
    EXPECT_EQ(physMem.ownerOf(g), kKernelPid);
}

TEST_F(UtlbStack, UnregisterDropsEverything)
{
    driver.ioctlPinAndInstall(1, 0, 4);
    cache.insert(1, 0, *driver.pageTable(1).get(0));
    driver.unregisterProcess(1);
    EXPECT_FALSE(driver.isRegistered(1));
    EXPECT_FALSE(cache.peek(1, 0).has_value());
}

// ---------------------------------------------------------------------
// PinManager
// ---------------------------------------------------------------------

TEST_F(UtlbStack, EnsurePinnedPinsOnDemandOnce)
{
    PinManager mgr(driver, 1, {});
    auto r1 = mgr.ensurePinned(100, 4);
    EXPECT_TRUE(r1.ok);
    EXPECT_TRUE(r1.checkMiss);
    EXPECT_EQ(r1.pagesPinned, 4u);
    EXPECT_EQ(r1.pinIoctls, 1u);

    auto r2 = mgr.ensurePinned(100, 4);
    EXPECT_TRUE(r2.ok);
    EXPECT_FALSE(r2.checkMiss);
    EXPECT_EQ(r2.pagesPinned, 0u);
    // Second call is cheap: just the bitmap check.
    EXPECT_LT(r2.cost, usToTicks(1.0));
    EXPECT_GT(r1.cost, usToTicks(27.0));
}

TEST_F(UtlbStack, PartialOverlapPinsOnlyMissingPages)
{
    PinManager mgr(driver, 1, {});
    mgr.ensurePinned(100, 4);
    auto r = mgr.ensurePinned(102, 4);  // 102,103 pinned; 104,105 not
    EXPECT_TRUE(r.checkMiss);
    EXPECT_EQ(r.pagesPinned, 2u);
}

TEST_F(UtlbStack, MemoryLimitTriggersEvictionWithLru)
{
    PinManagerConfig cfg;
    cfg.memLimitPages = 4;
    cfg.policy = PolicyKind::Lru;
    PinManager mgr(driver, 1, cfg);
    mgr.ensurePinned(0, 4);
    mgr.ensurePinned(0, 1);  // touch page 0: page 1 is now LRU
    auto r = mgr.ensurePinned(50, 1);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.pagesUnpinned, 1u);
    EXPECT_FALSE(mgr.isPinned(1));  // LRU victim
    EXPECT_TRUE(mgr.isPinned(0));
    EXPECT_TRUE(mgr.isPinned(50));
    EXPECT_EQ(mgr.pinnedPages(), 4u);
}

TEST_F(UtlbStack, KernelLimitTighterThanLibraryBudgetStillWorks)
{
    pins.setPinLimit(1, 3);
    PinManagerConfig cfg;
    cfg.memLimitPages = 0;  // library thinks it is unlimited
    PinManager mgr(driver, 1, cfg);
    mgr.ensurePinned(0, 3);
    auto r = mgr.ensurePinned(10, 1);
    EXPECT_TRUE(r.ok);
    EXPECT_GE(r.pagesUnpinned, 1u);
    EXPECT_EQ(pins.pinnedPages(1), 3u);
}

TEST_F(UtlbStack, LockedPagesAreNotEvicted)
{
    PinManagerConfig cfg;
    cfg.memLimitPages = 2;
    PinManager mgr(driver, 1, cfg);
    mgr.ensurePinned(0, 2);
    mgr.lockRange(0, 1);  // page 0 in an outstanding send
    auto r = mgr.ensurePinned(10, 1);
    EXPECT_TRUE(r.ok);
    EXPECT_TRUE(mgr.isPinned(0));    // locked survived
    EXPECT_FALSE(mgr.isPinned(1));   // the other page went
    mgr.unlockRange(0, 1);
    EXPECT_FALSE(mgr.isLocked(0));
}

TEST_F(UtlbStack, FullyLockedSetFailsGracefully)
{
    PinManagerConfig cfg;
    cfg.memLimitPages = 2;
    PinManager mgr(driver, 1, cfg);
    mgr.ensurePinned(0, 2);
    mgr.lockRange(0, 2);
    auto r = mgr.ensurePinned(10, 1);
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(mgr.isPinned(0));
    EXPECT_TRUE(mgr.isPinned(1));
}

TEST_F(UtlbStack, PrepinExtendsRunAndUsesBatchIoctl)
{
    PinManagerConfig cfg;
    cfg.prepinPages = 16;
    PinManager mgr(driver, 1, cfg);
    auto r = mgr.ensurePinned(100, 1);
    EXPECT_EQ(r.pagesPinned, 16u);
    EXPECT_EQ(r.pinIoctls, 1u);
    EXPECT_EQ(r.cost,
              costs.checkCostMin(1) + costs.pinCost(16));
    for (Vpn v = 100; v < 116; ++v)
        EXPECT_TRUE(mgr.isPinned(v));
}

TEST_F(UtlbStack, PrepinStopsAtAlreadyPinnedPage)
{
    PinManagerConfig cfg;
    cfg.prepinPages = 16;
    PinManager mgr(driver, 1, cfg);
    mgr.ensurePinned(104, 1);  // pins 104..119
    auto r = mgr.ensurePinned(100, 1);
    // Run from 100 stops at 104 (already pinned).
    EXPECT_EQ(r.pagesPinned, 4u);
}

TEST_F(UtlbStack, StateAgreesAcrossLibraryKernelAndPolicy)
{
    PinManagerConfig cfg;
    cfg.memLimitPages = 8;
    PinManager mgr(driver, 1, cfg);
    utlb::sim::Rng rng(3);
    for (int i = 0; i < 300; ++i) {
        Vpn v = rng.below(64);
        std::size_t n = 1 + rng.below(4);
        mgr.ensurePinned(v, n);
        // Invariants: library bitmap == kernel pin set == policy set.
        ASSERT_EQ(mgr.pinnedPages(), pins.pinnedPages(1));
        ASSERT_EQ(mgr.pinnedPages(), mgr.policy().size());
        ASSERT_LE(mgr.pinnedPages(), 8u);
    }
    for (Vpn v = 0; v < 70; ++v) {
        ASSERT_EQ(mgr.isPinned(v), pins.isPinned(1, v)) << v;
        if (mgr.isPinned(v))
            ASSERT_TRUE(driver.pageTable(1).get(v).has_value());
        else
            ASSERT_FALSE(driver.pageTable(1).get(v).has_value());
    }
}

TEST_F(UtlbStack, ReleasePageUnpinsVoluntarily)
{
    PinManager mgr(driver, 1, {});
    mgr.ensurePinned(5, 1);
    EXPECT_TRUE(mgr.releasePage(5));
    EXPECT_FALSE(mgr.isPinned(5));
    EXPECT_FALSE(pins.isPinned(1, 5));
    EXPECT_FALSE(mgr.releasePage(5));
}

// ---------------------------------------------------------------------
// UserUtlb (Hierarchical-UTLB facade)
// ---------------------------------------------------------------------

TEST_F(UtlbStack, TranslateProducesCorrectPhysicalAddresses)
{
    auto utlb = makeUtlb();
    auto tr = utlb.translate(addrOf(100), 3 * kPageSize);
    ASSERT_TRUE(tr.ok);
    ASSERT_EQ(tr.pageAddrs.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        auto pfn = pins.pinnedFrame(1, 100 + i);
        ASSERT_TRUE(pfn.has_value());
        EXPECT_EQ(tr.pageAddrs[i], utlb::mem::frameAddr(*pfn));
    }
    EXPECT_TRUE(tr.checkMiss);
    EXPECT_EQ(tr.niMisses, 3u);  // cold cache
}

TEST_F(UtlbStack, SecondTranslateIsAllHits)
{
    auto utlb = makeUtlb();
    utlb.translate(addrOf(100), 2 * kPageSize);
    auto tr = utlb.translate(addrOf(100), 2 * kPageSize);
    EXPECT_FALSE(tr.checkMiss);
    EXPECT_EQ(tr.niMisses, 0u);
    EXPECT_EQ(tr.pagesPinned, 0u);
    // Fast path: 0.8 us per page on the NIC (Table 2 hit cost).
    EXPECT_EQ(tr.nicCost, 2 * usToTicks(0.8));
}

TEST_F(UtlbStack, HitPathTotalMatchesPaperHeadline)
{
    // §5: "The total overhead for this path is only 0.9 us (0.4 us on
    // the host and 0.5 us on the network interface)" — our model uses
    // the §6.2 steady-state constants (check ~0.2-0.4 us host, 0.8 us
    // NIC); assert the all-hit path stays within 2x of the headline.
    auto utlb = makeUtlb();
    utlb.translate(addrOf(7), 8);
    auto tr = utlb.translate(addrOf(7), 8);
    Tick total = tr.hostCost + tr.nicCost;
    EXPECT_LE(total, usToTicks(1.8));
    EXPECT_GE(total, usToTicks(0.9));
}

TEST_F(UtlbStack, NicMissFetchesFromHostTable)
{
    auto utlb = makeUtlb();
    utlb.prepare(addrOf(50), kPageSize);
    auto nl = utlb.nicTranslate(50);
    EXPECT_TRUE(nl.miss);
    EXPECT_FALSE(nl.fault);
    EXPECT_EQ(nl.fetched, 1u);
    EXPECT_EQ(nl.cost, usToTicks(0.8) + timings.missHandleCost(1));
    // Entry now cached.
    auto nl2 = utlb.nicTranslate(50);
    EXPECT_FALSE(nl2.miss);
    EXPECT_EQ(nl2.pfn, nl.pfn);
}

TEST_F(UtlbStack, PrefetchInstallsNeighbours)
{
    UtlbConfig cfg;
    cfg.prefetchEntries = 8;
    auto utlb = makeUtlb(cfg);
    utlb.prepare(addrOf(200), 8 * kPageSize);
    auto nl = utlb.nicTranslate(200);
    EXPECT_TRUE(nl.miss);
    EXPECT_EQ(nl.fetched, 8u);
    // Neighbours are now hits without further misses.
    for (Vpn v = 201; v < 208; ++v) {
        auto n = utlb.nicTranslate(v);
        EXPECT_FALSE(n.miss) << v;
    }
}

TEST_F(UtlbStack, PrefetchSkipsUnpinnedNeighbours)
{
    UtlbConfig cfg;
    cfg.prefetchEntries = 4;
    auto utlb = makeUtlb(cfg);
    utlb.prepare(addrOf(300), kPageSize);  // only page 300 pinned
    auto nl = utlb.nicTranslate(300);
    EXPECT_TRUE(nl.miss);
    // Unpinned neighbours must not be cached.
    EXPECT_FALSE(cache.peek(1, 301).has_value());
    EXPECT_FALSE(cache.peek(1, 302).has_value());
}

TEST_F(UtlbStack, UnpreparedNicLookupFaultsAndRecovers)
{
    auto utlb = makeUtlb();
    auto nl = utlb.nicTranslate(400);  // never prepared
    EXPECT_TRUE(nl.fault);
    EXPECT_EQ(utlb.nicFaults(), 1u);
    // The fault path pinned the page on the NIC's behalf.
    EXPECT_TRUE(pins.isPinned(1, 400));
    EXPECT_NE(nl.pfn, driver.garbageFrame());
    // Fault cost includes the interrupt.
    EXPECT_GE(nl.cost, timings.interruptCost);
}

TEST_F(UtlbStack, EvictionFromNicCacheDoesNotUnpin)
{
    // The defining UTLB property: NIC cache eviction leaves the page
    // pinned and its host-table translation alive.
    auto utlb = makeUtlb();
    utlb.translate(addrOf(0), kPageSize);
    // Force eviction of (1, 0) by filling its set.
    for (int i = 1; i <= 400; ++i) {
        Vpn v = static_cast<Vpn>(i) * cache.sets();
        utlb.translate(addrOf(v), kPageSize);
    }
    EXPECT_FALSE(cache.peek(1, 0).has_value());
    EXPECT_TRUE(pins.isPinned(1, 0));
    EXPECT_TRUE(driver.pageTable(1).get(0).has_value());
    // Re-translate: a NIC miss but NO pin activity.
    auto tr = utlb.translate(addrOf(0), kPageSize);
    EXPECT_FALSE(tr.checkMiss);
    EXPECT_EQ(tr.pagesPinned, 0u);
    EXPECT_EQ(tr.niMisses, 1u);
}

// ---------------------------------------------------------------------
// InterruptTlb baseline
// ---------------------------------------------------------------------

TEST_F(UtlbStack, IntrMissInterruptsPinsAndInstalls)
{
    InterruptTlb intr(pins, cache, costs, timings);
    auto r = intr.translate(1, 10);
    EXPECT_TRUE(r.miss);
    EXPECT_TRUE(pins.isPinned(1, 10));
    EXPECT_EQ(r.cost, usToTicks(0.8) + usToTicks(10.0)
                          + usToTicks(16.0));
    auto r2 = intr.translate(1, 10);
    EXPECT_FALSE(r2.miss);
    EXPECT_EQ(r2.pfn, r.pfn);
    EXPECT_EQ(r2.cost, usToTicks(0.8));
}

TEST_F(UtlbStack, IntrEvictionUnpinsThePage)
{
    SharedUtlbCache small({4, 1, false}, timings);
    InterruptTlb intr(pins, small, costs, timings);
    intr.translate(1, 0);
    EXPECT_TRUE(pins.isPinned(1, 0));
    auto r = intr.translate(1, 4);  // collides with vpn 0 in 4 sets
    EXPECT_EQ(r.unpins, 1u);
    EXPECT_FALSE(pins.isPinned(1, 0));
    EXPECT_TRUE(pins.isPinned(1, 4));
    EXPECT_GE(r.cost, usToTicks(0.8 + 10.0 + 16.0 + 16.0));
}

TEST_F(UtlbStack, IntrPinLimitForcesCacheShedding)
{
    pins.setPinLimit(1, 2);
    InterruptTlb intr(pins, cache, costs, timings);
    intr.translate(1, 0);
    intr.translate(1, 1);
    auto r = intr.translate(1, 2);
    EXPECT_FALSE(r.failed);
    EXPECT_EQ(r.unpins, 1u);
    EXPECT_EQ(pins.pinnedPages(1), 2u);
    EXPECT_TRUE(pins.isPinned(1, 2));
    // The shed page's cache entry is gone too.
    EXPECT_FALSE(cache.peek(1, 0).has_value());
}

TEST_F(UtlbStack, IntrKeepsPinsEqualToCachedEntries)
{
    // Pinning is tied to cache residency: at any quiescent point,
    // this process' pinned pages == its valid cache entries.
    SharedUtlbCache small({8, 2, true}, timings);
    InterruptTlb intr(pins, small, costs, timings);
    utlb::sim::Rng rng(11);
    for (int i = 0; i < 500; ++i) {
        intr.translate(1, rng.below(64));
        ASSERT_EQ(pins.pinnedPages(1), small.validEntries());
    }
}

// ---------------------------------------------------------------------
// PerProcessUtlb
// ---------------------------------------------------------------------

TEST_F(UtlbStack, PerProcessLookupReturnsUsableIndices)
{
    PerProcessConfig cfg;
    cfg.tableEntries = 64;
    PerProcessUtlb pp(driver, 1, cfg);
    auto r = pp.lookup(addrOf(10), 2 * kPageSize);
    ASSERT_TRUE(r.ok);
    ASSERT_EQ(r.indices.size(), 2u);
    EXPECT_TRUE(r.checkMiss);
    EXPECT_EQ(r.pagesPinned, 2u);
    for (std::size_t i = 0; i < 2; ++i) {
        auto pfn = pp.nicRead(r.indices[i]);
        EXPECT_EQ(pfn, pins.pinnedFrame(1, 10 + i));
    }
}

TEST_F(UtlbStack, PerProcessSecondLookupHits)
{
    PerProcessConfig cfg;
    cfg.tableEntries = 64;
    PerProcessUtlb pp(driver, 1, cfg);
    auto r1 = pp.lookup(addrOf(10), kPageSize);
    auto r2 = pp.lookup(addrOf(10), kPageSize);
    EXPECT_FALSE(r2.checkMiss);
    EXPECT_EQ(r2.pagesPinned, 0u);
    EXPECT_EQ(r2.indices, r1.indices);
    EXPECT_LT(r2.hostCost, r1.hostCost);
}

TEST_F(UtlbStack, PerProcessTableFullEvicts)
{
    PerProcessConfig cfg;
    cfg.tableEntries = 4;
    PerProcessUtlb pp(driver, 1, cfg);
    for (Vpn v = 0; v < 4; ++v)
        pp.lookup(addrOf(v), kPageSize);
    EXPECT_EQ(pp.liveEntries(), 4u);
    auto r = pp.lookup(addrOf(100), kPageSize);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.pagesUnpinned, 1u);
    EXPECT_EQ(pp.liveEntries(), 4u);
    // LRU victim was page 0; its pin is gone.
    EXPECT_FALSE(pins.isPinned(1, 0));
    EXPECT_FALSE(pp.indexOf(0).has_value());
}

TEST_F(UtlbStack, PerProcessNeverEvictsCurrentRequest)
{
    PerProcessConfig cfg;
    cfg.tableEntries = 4;
    PerProcessUtlb pp(driver, 1, cfg);
    // A 4-page request into a 4-entry table must succeed with all
    // four indices distinct and live.
    pp.lookup(addrOf(0), kPageSize);
    auto r = pp.lookup(addrOf(10), 4 * kPageSize);
    ASSERT_TRUE(r.ok);
    std::set<UtlbIndex> uniq(r.indices.begin(), r.indices.end());
    EXPECT_EQ(uniq.size(), 4u);
    for (Vpn v = 10; v < 14; ++v)
        EXPECT_TRUE(pins.isPinned(1, v));
}

TEST_F(UtlbStack, PerProcessRequestLargerThanTableFails)
{
    PerProcessConfig cfg;
    cfg.tableEntries = 2;
    PerProcessUtlb pp(driver, 1, cfg);
    auto r = pp.lookup(addrOf(0), 3 * kPageSize);
    EXPECT_FALSE(r.ok);
}

TEST_F(UtlbStack, PerProcessBogusNicIndexYieldsGarbage)
{
    PerProcessConfig cfg;
    cfg.tableEntries = 8;
    PerProcessUtlb pp(driver, 1, cfg);
    EXPECT_EQ(pp.nicRead(12345), driver.garbageFrame());
}

} // namespace

// Fragmentation (§3.3) and cost-equation validation (§6.2).
namespace {

using utlb::sim::Rng;
using utlb::sim::ticksToUs;

TEST_F(UtlbStack, FreshTableMapsContiguousBufferToOneRun)
{
    PerProcessConfig cfg;
    cfg.tableEntries = 64;
    PerProcessUtlb pp(driver, 1, cfg);
    auto lk = pp.lookup(addrOf(10), 8 * kPageSize);
    ASSERT_TRUE(lk.ok);
    EXPECT_EQ(pp.bufferIndexRuns(addrOf(10), 8 * kPageSize), 1u);
}

TEST_F(UtlbStack, ChurnFragmentsPerProcessIndices)
{
    // §3.3's motivation: interleave two buffers' growth with
    // evictions; the surviving translations of buffer A end up
    // scattered across the table.
    PerProcessConfig cfg;
    cfg.tableEntries = 32;
    PerProcessUtlb pp(driver, 1, cfg);
    Rng rng(3);
    for (int step = 0; step < 400; ++step) {
        if (rng.chance(0.5))
            pp.lookup(addrOf(10 + rng.below(16)), kPageSize);
        else
            pp.lookup(addrOf(100 + rng.below(40)), kPageSize);
    }
    // Buffer A's pages hold valid indices but in multiple runs.
    pp.lookup(addrOf(10), 16 * kPageSize);  // ensure all installed
    std::size_t runs = pp.bufferIndexRuns(addrOf(10),
                                          16 * kPageSize);
    EXPECT_GT(runs, 1u);
    EXPECT_LE(runs, 16u);
    EXPECT_EQ(pp.bufferIndexRuns(addrOf(5000), kPageSize), 0u);
}

TEST(CostEquation, SimulatedCostMatchesSection62ClosedForm)
{
    // Replay a workload, then recompute the paper's §6.2 per-lookup
    // cost equation from the measured rates; the simulator's
    // accumulated time must match the closed form.
    auto trace = utlb::trace::generateTrace("volrend");
    utlb::tlbsim::SimConfig cfg;
    cfg.cache = {2048, 1, true};
    auto r = utlb::tlbsim::simulateUtlb(trace, cfg);

    double lookups = static_cast<double>(r.lookups);
    double user_check = 0.5;
    double ni_check = 0.8 * static_cast<double>(r.probes) / lookups;
    double pin = ticksToUs(r.pinTime) / lookups;
    double unpin = ticksToUs(r.unpinTime) / lookups;
    double miss = 1.8 * static_cast<double>(r.niMissProbes) / lookups;
    double closed_form = user_check + ni_check + pin + unpin + miss;
    EXPECT_NEAR(r.avgLookupCostUs(), closed_form,
                0.02 * closed_form);

    // And the interrupt equation: ni_check + (intr + kernel_pin) *
    // miss + kernel_unpin * unpins.
    auto ri = utlb::tlbsim::simulateIntr(trace, cfg);
    double i_probes = static_cast<double>(ri.probes) / lookups;
    double i_miss = static_cast<double>(ri.niMissProbes) / lookups;
    double i_unpin = static_cast<double>(ri.pagesUnpinned) / lookups;
    double i_closed = 0.8 * i_probes + (10.0 + 16.0) * i_miss
        + 16.0 * i_unpin;
    EXPECT_NEAR(ri.avgLookupCostUs(), i_closed, 0.02 * i_closed);
}

} // namespace

// Second-level table paging (§3.3 extension): the TablePager.
namespace {

using utlb::core::TablePager;
using utlb::core::TablePagerConfig;

TEST(TablePager, SwapsColdLeavesUnderPressureOnly)
{
    PhysMemory pm(64);
    HostPageTable t(pm, 1);
    TablePagerConfig cfg;
    cfg.lowWaterFrames = 16;
    cfg.batchLeaves = 2;
    TablePager pager(pm, cfg);
    pager.registerTable(t);

    // Three leaves, plenty of memory: no swapping.
    for (int leaf = 0; leaf < 3; ++leaf) {
        Vpn v = static_cast<Vpn>(leaf) * HostPageTable::kLeafEntries;
        t.set(v, 100 + leaf);
        pager.touch(1, v);
    }
    EXPECT_EQ(pager.balance(), 0u);
    EXPECT_EQ(t.swapOuts(), 0u);

    // Create pressure: allocate frames until below the low-water
    // mark, then balance reclaims the two coldest leaves.
    while (pm.freeFrames() >= cfg.lowWaterFrames)
        ASSERT_TRUE(pm.allocFrame(9).has_value());
    EXPECT_EQ(pager.balance(), 2u);
    EXPECT_TRUE(t.leafSwappedOut(0));
    EXPECT_TRUE(t.leafSwappedOut(HostPageTable::kLeafEntries));
    EXPECT_FALSE(t.leafSwappedOut(2 * HostPageTable::kLeafEntries));
    EXPECT_EQ(pager.totalSwapOuts(), 2u);
}

TEST(TablePager, TouchRefreshesRecency)
{
    PhysMemory pm(64);
    HostPageTable t(pm, 1);
    TablePagerConfig cfg;
    cfg.lowWaterFrames = 64;  // permanent pressure
    cfg.batchLeaves = 1;
    TablePager pager(pm, cfg);
    pager.registerTable(t);
    t.set(0, 1);
    t.set(HostPageTable::kLeafEntries, 2);
    pager.touch(1, 0);
    pager.touch(1, HostPageTable::kLeafEntries);
    pager.touch(1, 0);  // leaf 0 is now hot; leaf 1 is cold
    EXPECT_EQ(pager.balance(), 1u);
    EXPECT_FALSE(t.leafSwappedOut(0));
    EXPECT_TRUE(t.leafSwappedOut(HostPageTable::kLeafEntries));
}

TEST_F(UtlbStack, PagedOutLeafRecoversThroughNicFaultPath)
{
    // Full circle: pager swaps a leaf out; the NIC's next miss on a
    // page of that leaf faults, the host re-pins, and the leaf is
    // resident again — translations intact.
    auto utlb = makeUtlb();
    utlb.translate(addrOf(3), 2 * kPageSize);
    cache.invalidateProcess(1);

    TablePagerConfig cfg;
    cfg.lowWaterFrames = physMem.totalFrames();  // force pressure
    cfg.batchLeaves = 1;
    TablePager pager(physMem, cfg);
    pager.registerTable(driver.pageTable(1));
    pager.touch(1, 3);
    ASSERT_EQ(pager.balance(), 1u);
    ASSERT_TRUE(driver.pageTable(1).leafSwappedOut(3));

    auto nl = utlb.nicTranslate(3);
    EXPECT_TRUE(nl.fault);
    EXPECT_EQ(nl.pfn, *pins.pinnedFrame(1, 3));
    EXPECT_FALSE(driver.pageTable(1).leafSwappedOut(3));
    EXPECT_EQ(driver.pageTable(1).get(4), pins.pinnedFrame(1, 4));
}

} // namespace

// Host cost profiles (1998 testbed vs modern what-if).
namespace {

using utlb::core::HostProfile;

TEST(HostProfiles, DefaultAndLinuxMatchThePaper)
{
    HostCosts nt(HostProfile::PentiumIINT);
    HostCosts linux_host(HostProfile::PentiumIILinux);
    // §6.2: "On Linux, the pinning and unpinning costs are similar
    // to those on NT" — modeled as identical.
    for (std::size_t n : {1u, 4u, 32u}) {
        EXPECT_EQ(nt.pinCost(n), linux_host.pinCost(n));
        EXPECT_EQ(nt.unpinCost(n), linux_host.unpinCost(n));
    }
    EXPECT_EQ(nt.interruptCost(), linux_host.interruptCost());
}

TEST(HostProfiles, ModernHostIsUniformlyCheaper)
{
    HostCosts old_host(HostProfile::PentiumIINT);
    HostCosts modern(HostProfile::ModernX86);
    EXPECT_LT(modern.userCheck(), old_host.userCheck());
    EXPECT_LT(modern.interruptCost(), old_host.interruptCost());
    EXPECT_LT(modern.kernelPinCost(), old_host.kernelPinCost());
    for (std::size_t n : {1u, 4u, 32u}) {
        EXPECT_LT(modern.pinCost(n), old_host.pinCost(n));
        EXPECT_LT(modern.unpinCost(n), old_host.unpinCost(n));
    }
    // Batching still pays on modern hosts.
    EXPECT_LT(utlb::sim::ticksToUs(modern.pinCost(32)) / 32.0,
              utlb::sim::ticksToUs(modern.pinCost(1)));
}

TEST(HostProfiles, ModernProfileShrinksTheUtlbAdvantage)
{
    auto trace = utlb::trace::generateTrace("barnes");
    utlb::tlbsim::SimConfig cfg;
    cfg.cache = {1024, 1, true};
    cfg.hostProfile = HostProfile::PentiumIINT;
    auto u98 = utlb::tlbsim::simulateUtlb(trace, cfg);
    auto i98 = utlb::tlbsim::simulateIntr(trace, cfg);
    cfg.hostProfile = HostProfile::ModernX86;
    auto u20 = utlb::tlbsim::simulateUtlb(trace, cfg);
    auto i20 = utlb::tlbsim::simulateIntr(trace, cfg);
    double gain98 = i98.avgLookupCostUs() / u98.avgLookupCostUs();
    double gain20 = i20.avgLookupCostUs() / u20.avgLookupCostUs();
    EXPECT_GT(gain98, 2.0);
    EXPECT_LT(gain20, 1.3);
    EXPECT_GT(gain20, 0.8);
}

} // namespace
