#include "core/pin_budget.hpp"

#include "sim/log.hpp"

namespace utlb::core {

PinBudget::PinBudget(std::size_t globalPages, QuotaMode m)
    : global(globalPages), quotaMode(m)
{
}

void
PinBudget::attach(mem::ProcId pid, std::size_t capPages,
                  std::size_t weight)
{
    sim::LockGuard g(mu);
    Entry e{capPages, weight == 0 ? std::size_t{1} : weight};
    auto [it, inserted] = entries.emplace(pid, e);
    if (!inserted) {
        sim::panic("PinBudget: pid %u attached twice", pid);
    }
    totalWeight += it->second.weight;
    ++statAttaches;
}

void
PinBudget::detach(mem::ProcId pid)
{
    sim::LockGuard g(mu);
    auto it = entries.find(pid);
    if (it == entries.end())
        return;
    totalWeight -= it->second.weight;
    entries.erase(it);
    ++statDetaches;
}

std::size_t
PinBudget::limitFor(mem::ProcId pid) const
{
    sim::LockGuard g(mu);
    auto it = entries.find(pid);
    if (it == entries.end())
        return 0;
    if (quotaMode == QuotaMode::HardCap)
        return it->second.cap != 0 ? it->second.cap : global;
    // WeightedShare: an unlimited pool means unlimited shares; a
    // bounded one is split by weight, floored at one page so every
    // tenant can always make progress.
    if (global == 0)
        return 0;
    std::size_t share = global * it->second.weight / totalWeight;
    return share == 0 ? 1 : share;
}

std::size_t
PinBudget::tenants() const
{
    sim::LockGuard g(mu);
    return entries.size();
}

} // namespace utlb::core
