/**
 * @file
 * Ablation: Per-process UTLB vs Shared UTLB-Cache (§3.1 vs §3.2).
 *
 * §7 lists this as unexplored: "we have not compared the per-process
 * UTLB with Shared UTLB-Cache approach because we lack multiple
 * program traces." Our synthetic multiprogrammed traces make the
 * comparison possible: the per-process design statically partitions
 * NIC SRAM into five fixed tables, while the shared cache lets the
 * five processes compete for the same entries. We sweep the total
 * NIC SRAM budget and report pin traffic (the per-process design's
 * capacity evictions force unpins) against the shared design's
 * cache misses (cheap DMA refills, no unpins).
 */

#include "bench_common.hpp"

#include <map>
#include <memory>

#include "core/per_process_utlb.hpp"
#include "mem/address_space.hpp"
#include "mem/phys_memory.hpp"
#include "mem/pinning.hpp"

namespace {

using namespace utlb;

struct PerProcResult {
    std::uint64_t checkMissLookups = 0;
    std::uint64_t pagesPinned = 0;
    std::uint64_t pagesUnpinned = 0;
    double hostUs = 0.0;
};

/** Replay a trace through five per-process NIC tables. */
PerProcResult
runPerProcess(const trace::Trace &tr, std::size_t entries_per_proc)
{
    auto shape = trace::measure(tr);
    mem::PhysMemory phys_mem(shape.distinctPages * 2 + 1024);
    mem::PinFacility pins;
    nic::Sram sram(4u << 20);
    nic::NicTimings timings;
    core::HostCosts costs;
    core::SharedUtlbCache cache({64, 1, true}, timings);  // unused
    core::UtlbDriver driver(phys_mem, pins, sram, cache, costs);

    std::map<mem::ProcId,
             std::unique_ptr<mem::AddressSpace>> spaces;
    std::map<mem::ProcId,
             std::unique_ptr<core::PerProcessUtlb>> tables;

    PerProcResult res;
    for (const auto &rec : tr) {
        if (!tables.count(rec.pid)) {
            auto space = std::make_unique<mem::AddressSpace>(
                rec.pid, phys_mem);
            driver.registerProcess(*space);
            spaces.emplace(rec.pid, std::move(space));
            core::PerProcessConfig cfg;
            cfg.tableEntries = entries_per_proc;
            tables.emplace(rec.pid,
                           std::make_unique<core::PerProcessUtlb>(
                               driver, rec.pid, cfg));
        }
        auto lk = tables.at(rec.pid)->lookup(rec.va, rec.nbytes);
        if (lk.checkMiss)
            ++res.checkMissLookups;
        res.pagesPinned += lk.pagesPinned;
        res.pagesUnpinned += lk.pagesUnpinned;
        res.hostUs += sim::ticksToUs(lk.hostCost);
    }
    return res;
}

} // namespace

int
main()
{
    using namespace bench;
    using tlbsim::SimConfig;
    using tlbsim::simulateUtlb;

    TraceSet traces;
    auto names = workloadNames();

    utlb::sim::TextTable t(
        "Ablation: per-process UTLB tables vs Shared UTLB-Cache, "
        "same total NIC SRAM (unpins per lookup | host+NIC cost "
        "proxy, us per lookup)");
    std::vector<std::string> header{"Total entries", "Design"};
    for (const auto &n : names)
        header.push_back(n);
    t.setHeader(header);

    const std::vector<std::size_t> budgets{2048, 8192, 32768};
    for (std::size_t total : budgets) {
        std::vector<std::string> pp_row{
            utlb::sim::TextTable::num(std::uint64_t{total}),
            "per-process (/5)"};
        std::vector<std::string> sh_row{"", "shared cache"};
        for (const auto &n : names) {
            const auto &tr = traces.get(n);
            auto pp = runPerProcess(tr, total / 5);
            double pp_cost = pp.hostUs
                + 0.8 * static_cast<double>(tr.size());
            pp_row.push_back(rate(
                static_cast<double>(pp.pagesUnpinned)
                / static_cast<double>(tr.size()))
                + " | " + rate(pp_cost
                               / static_cast<double>(tr.size())));

            SimConfig cfg;
            cfg.cache = {total, 1, true};
            auto sh = simulateUtlb(tr, cfg);
            sh_row.push_back(rate(sh.unpinsPerLookup()) + " | "
                             + rate(sh.avgLookupCostUs()));
        }
        t.addRow(pp_row);
        t.addRow(sh_row);
        t.addRule();
    }
    t.print(std::cout);

    std::cout << "\nShape checks: with small SRAM budgets the "
                 "per-process split thrashes (capacity evictions "
                 "force real unpins at\n~25 us each), while the "
                 "shared cache degrades gracefully (misses refill "
                 "over the I/O bus at ~2 us) —\nthe §3.2 motivation "
                 "for moving translation tables to host memory.\n";
    return 0;
}
