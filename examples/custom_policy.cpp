/**
 * @file
 * Application-specific replacement policies (§3.4).
 *
 * "Because the application process often has knowledge about its
 * virtual memory access, it can use a custom replacement policy to
 * minimize the number of page pinning and unpinning operations."
 *
 * This example runs two access patterns against a tight pin budget
 * under every predefined policy and shows why the right choice is
 * workload-dependent:
 *
 *  - a cyclic scan over a region slightly larger than the budget —
 *    the classic case where LRU is pessimal (it always evicts the
 *    page about to be reused) and MRU is optimal;
 *  - a hot/cold mix (90% of touches on a small hot set) — where
 *    LRU/LFU shine and MRU is a disaster.
 */

#include <iostream>
#include <vector>

#include "core/cost_model.hpp"
#include "core/driver.hpp"
#include "core/pin_manager.hpp"
#include "core/shared_cache.hpp"
#include "mem/address_space.hpp"
#include "mem/phys_memory.hpp"
#include "mem/pinning.hpp"
#include "nic/sram.hpp"
#include "nic/timing.hpp"
#include "sim/random.hpp"
#include "sim/table.hpp"

namespace {

using namespace utlb;
using core::PolicyKind;

struct Outcome {
    std::uint64_t pins = 0;
    std::uint64_t unpins = 0;
    double hostUs = 0.0;
};

/** Run one access pattern under one policy, fresh stack each time. */
template <typename Pattern>
Outcome
run(PolicyKind policy, std::size_t budget_pages, Pattern &&pattern)
{
    mem::PhysMemory phys_mem(8192);
    mem::PinFacility pins;
    nic::Sram sram;
    nic::NicTimings timings;
    core::HostCosts costs;
    core::SharedUtlbCache cache({1024, 1, true}, timings, &sram);
    core::UtlbDriver driver(phys_mem, pins, sram, cache, costs);
    mem::AddressSpace space(1, phys_mem);
    driver.registerProcess(space);

    core::PinManagerConfig cfg;
    cfg.memLimitPages = budget_pages;
    cfg.policy = policy;
    core::PinManager mgr(driver, 1, cfg);

    Outcome out;
    pattern([&](mem::Vpn vpn) {
        auto res = mgr.ensurePinned(vpn, 1);
        out.pins += res.pagesPinned;
        out.unpins += res.pagesUnpinned;
        out.hostUs += sim::ticksToUs(res.cost);
    });
    return out;
}

} // namespace

int
main()
{
    const std::vector<PolicyKind> policies{
        PolicyKind::Lru, PolicyKind::Mru, PolicyKind::Lfu,
        PolicyKind::Mfu, PolicyKind::Fifo, PolicyKind::Random};

    constexpr std::size_t kBudget = 64;

    // Pattern 1: cyclic scan over budget+8 pages, 40 rounds.
    auto cyclic = [](auto &&touch) {
        for (int round = 0; round < 40; ++round)
            for (mem::Vpn v = 0; v < kBudget + 8; ++v)
                touch(v);
    };

    // Pattern 2: 90% hot (32 pages), 10% cold (1024 pages), 20k ops.
    auto hotcold = [](auto &&touch) {
        sim::Rng rng(99);
        for (int i = 0; i < 20000; ++i) {
            if (rng.chance(0.9))
                touch(rng.below(32));
            else
                touch(100 + rng.below(1024));
        }
    };

    sim::TextTable t(
        "Pin/unpin traffic under a 64-page budget, by policy "
        "(pins + unpins; lower is better)");
    t.setHeader({"Policy", "cyclic pins", "cyclic unpins",
                 "cyclic host ms", "hot/cold pins", "hot/cold unpins",
                 "hot/cold host ms"});

    for (auto p : policies) {
        auto c = run(p, kBudget, cyclic);
        auto h = run(p, kBudget, hotcold);
        t.addRow({core::toString(p),
                  sim::TextTable::num(c.pins),
                  sim::TextTable::num(c.unpins),
                  sim::TextTable::num(c.hostUs / 1000.0, 1),
                  sim::TextTable::num(h.pins),
                  sim::TextTable::num(h.unpins),
                  sim::TextTable::num(h.hostUs / 1000.0, 1)});
    }
    t.print(std::cout);

    std::cout <<
        "\nReading the table: on the cyclic scan MRU keeps most of "
        "the loop resident (few pins), while LRU evicts\nexactly the "
        "page that comes back next and re-pins every round. On the "
        "hot/cold mix the recency/frequency\npolicies protect the "
        "hot set and MRU keeps evicting it. That asymmetry is why "
        "UTLB exposes the policy\nchoice to the application (§3.4) "
        "instead of hard-wiring LRU.\n";
    return 0;
}
