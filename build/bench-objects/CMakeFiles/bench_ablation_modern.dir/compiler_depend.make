# Empty compiler generated dependencies file for bench_ablation_modern.
# This may be replaced when dependencies are built.
