file(REMOVE_RECURSE
  "CMakeFiles/utlb_nic.dir/command_post.cpp.o"
  "CMakeFiles/utlb_nic.dir/command_post.cpp.o.d"
  "CMakeFiles/utlb_nic.dir/dma.cpp.o"
  "CMakeFiles/utlb_nic.dir/dma.cpp.o.d"
  "CMakeFiles/utlb_nic.dir/sram.cpp.o"
  "CMakeFiles/utlb_nic.dir/sram.cpp.o.d"
  "CMakeFiles/utlb_nic.dir/timing.cpp.o"
  "CMakeFiles/utlb_nic.dir/timing.cpp.o.d"
  "libutlb_nic.a"
  "libutlb_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utlb_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
