
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nic/command_post.cpp" "src/nic/CMakeFiles/utlb_nic.dir/command_post.cpp.o" "gcc" "src/nic/CMakeFiles/utlb_nic.dir/command_post.cpp.o.d"
  "/root/repo/src/nic/dma.cpp" "src/nic/CMakeFiles/utlb_nic.dir/dma.cpp.o" "gcc" "src/nic/CMakeFiles/utlb_nic.dir/dma.cpp.o.d"
  "/root/repo/src/nic/sram.cpp" "src/nic/CMakeFiles/utlb_nic.dir/sram.cpp.o" "gcc" "src/nic/CMakeFiles/utlb_nic.dir/sram.cpp.o.d"
  "/root/repo/src/nic/timing.cpp" "src/nic/CMakeFiles/utlb_nic.dir/timing.cpp.o" "gcc" "src/nic/CMakeFiles/utlb_nic.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/utlb_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/utlb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
