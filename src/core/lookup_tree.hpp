/**
 * @file
 * Two-level user-level lookup structure (§3, Figure 1).
 *
 * The per-process UTLB keeps, at user level, a mapping from each
 * virtual page to the index in the protected translation table where
 * that page's physical address is stored. The structure is a
 * standard two-level page-table tree: a directory of second-level
 * tables, each covering a fixed run of virtual pages. "Only two
 * memory references are required to obtain the UTLB index for a
 * given virtual page address."
 */

#ifndef UTLB_CORE_LOOKUP_TREE_HPP
#define UTLB_CORE_LOOKUP_TREE_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mem/page.hpp"
#include "sim/types.hpp"

namespace utlb::core {

/** Index into a UTLB translation table. */
using UtlbIndex = std::uint32_t;

/** Invalid-index sentinel inside tree nodes. */
inline constexpr UtlbIndex kInvalidIndex = ~UtlbIndex{0};

/**
 * The user-level two-level lookup tree.
 *
 * Second-level tables are allocated lazily, one per 1024-page run
 * (a 4 KB table of 4-byte entries, matching the x86-style layout the
 * paper cites). Lookup cost is a constant two memory references,
 * exposed through lookupCost() so callers can charge simulated time.
 */
class LookupTree
{
  public:
    /** Entries per second-level table (1024 x 4-byte entries). */
    static constexpr std::size_t kLeafEntries = 1024;

    LookupTree() = default;

    /** Record that @p vpn's translation lives at @p index. */
    void set(mem::Vpn vpn, UtlbIndex index);

    /** The stored index for @p vpn, or nullopt. */
    std::optional<UtlbIndex> get(mem::Vpn vpn) const;

    /** Invalidate @p vpn's entry. @return true if one existed. */
    bool invalidate(mem::Vpn vpn);

    /** Number of valid entries. */
    std::size_t validEntries() const { return numValid; }

    /** Number of allocated second-level tables. */
    std::size_t leafTables() const { return leaves.size(); }

    /**
     * Simulated cost of one lookup: two dependent memory references
     * on the paper's host (~0.1 us each on a P-II with cache
     * misses); the paper's aggregate user-level cost of 0.5 us per
     * lookup (§6.2) also covers the surrounding library code, so
     * this constant is only used by the fine-grained
     * microbenchmarks.
     */
    static sim::Tick lookupCost() { return sim::nsToTicks(200.0); }

    /** Bytes of user memory consumed by the tree. */
    std::size_t footprintBytes() const;

  private:
    using Leaf = std::vector<UtlbIndex>;

    std::unordered_map<std::uint64_t, std::unique_ptr<Leaf>> leaves;
    std::size_t numValid = 0;
};

} // namespace utlb::core

#endif // UTLB_CORE_LOOKUP_TREE_HPP
