/**
 * @file
 * Fault-injection tests for the invariant auditors (src/check).
 *
 * Each test corrupts one structure's private redundant state through
 * the TestTamper friend — defined only in this binary — and asserts
 * the structure's auditor reports the damage. A clean audit before
 * every corruption guards against auditors that always fire.
 *
 * Also covers the UTLB_ASSERT failure handler (structured context,
 * throwing handlers) and the BitVector/PinManager boundary cases:
 * a pin budget hit exactly, unpinning a never-pinned page, and
 * out-of-range garbage-page indices.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "check/audit.hpp"
#include "check/check.hpp"
#include "core/bitvector.hpp"
#include "core/cost_model.hpp"
#include "core/driver.hpp"
#include "core/pin_manager.hpp"
#include "core/shared_cache.hpp"
#include "core/translation_table.hpp"
#include "mem/address_space.hpp"
#include "mem/phys_memory.hpp"
#include "mem/pinning.hpp"
#include "nic/sram.hpp"
#include "nic/timing.hpp"
#include "sim/event_queue.hpp"
#include "tlbsim/simulator.hpp"
#include "trace/workloads.hpp"
#include "vmmc/system.hpp"

namespace utlb::check {

/**
 * The fault injector. Audited classes befriend this struct but only
 * the test binary defines it, so production code cannot reach the
 * corruption helpers. Every helper breaks exactly one invariant the
 * matching auditor re-derives.
 */
struct TestTamper {
    /** Flip a raw bitmap bit without updating the cached count. */
    static void
    flipBitmapWord(core::PinBitVector &bv)
    {
        ASSERT_FALSE(bv.words.empty());
        bv.words.front() ^= 1;
    }

    /** Write a live-looking word into NIC SRAM behind the count. */
    static void
    pokeNicSlot(core::NicTranslationTable &t, std::size_t slot)
    {
        t.sram->writeWord(
            t.base + static_cast<nic::SramAddr>(slot * 4),
            static_cast<std::uint32_t>(t.garbagePfn) + 1);
    }

    /** Overstate the host page table's valid-entry count. */
    static void
    bumpHostValidCount(core::HostPageTable &t)
    {
        ++t.numValid;
    }

    /** Move a valid cache way's tags so it indexes to another set.
     *  The packed tag word is retagged along with the cold vpn so
     *  only the home-set invariant fires, not tag/cold coherence. */
    static bool
    misplaceCacheLine(core::SharedUtlbCache &c)
    {
        for (std::size_t set = 0; set < c.numSets; ++set) {
            for (unsigned w = 0; w < c.config.assoc; ++w) {
                std::size_t idx = set * c.config.assoc + w;
                if (c.tagWords[idx] == 0)
                    continue;
                auto &cw = c.cold[idx];
                mem::ProcId pid =
                    core::SharedUtlbCache::pidOfPacked(cw.pidVpn);
                mem::Vpn vpn =
                    core::SharedUtlbCache::vpnOfPacked(cw.pidVpn);
                for (mem::Vpn delta = 1; delta < 64; ++delta) {
                    if (c.setIndex(pid, vpn + delta) != set) {
                        cw.pidVpn = core::SharedUtlbCache::packPidVpn(
                            pid, vpn + delta);
                        c.tagWords[idx] =
                            core::SharedUtlbCache::tagKey(
                                pid, vpn + delta);
                        return true;
                    }
                }
            }
        }
        return false;
    }

    /** Corrupt a valid way's packed tag word so it no longer matches
     *  its cold (pid, vpn) tags (tag/cold coherence violation). */
    static bool
    desyncTagWord(core::SharedUtlbCache &c)
    {
        for (std::size_t idx = 0; idx < c.config.entries; ++idx) {
            if (c.tagWords[idx] != 0) {
                // Flip a middle bit: stays nonzero (still "valid"),
                // no longer the key of the cold tags.
                c.tagWords[idx] ^= std::uint64_t{1} << 17;
                return true;
            }
        }
        return false;
    }

    /** Leave a recency stamp on a dead (invalid) cache way. */
    static bool
    stampDeadLine(core::SharedUtlbCache &c)
    {
        for (std::size_t idx = 0; idx < c.config.entries; ++idx) {
            if (c.tagWords[idx] == 0) {
                c.cold[idx].lastUse = 1;
                return true;
            }
        }
        return false;
    }

    /** Scribble on the SIMD overread padding after the last set. */
    static void
    scribblePadWord(core::SharedUtlbCache &c)
    {
        c.tagWords[c.config.entries] = 0xdeadbeefull;
    }

    /** Leave set 0's seqlock version odd (unclosed write section). */
    static void
    wedgeSeqlock(core::SharedUtlbCache &c)
    {
        ASSERT_NE(c.numStripes, 0u) << "cache is not concurrent";
        c.seqs[0].writeBegin();
    }

    /** Warp the event clock past the earliest pending event. */
    static void
    warpClock(sim::EventQueue &q)
    {
        ASSERT_FALSE(q.heap.empty());
        q.curTick = q.heap.top().when + 1;
    }

    /** Zero one kernel pin refcount while keeping the page listed. */
    static void
    zeroPinRefcount(mem::PinFacility &pf, mem::ProcId pid)
    {
        auto &refs = pf.procs.at(pid).refs;
        ASSERT_FALSE(refs.empty());
        refs.begin()->second = 0;
    }

    /** Record a zero-count outstanding-send lock. */
    static void
    plantZeroLock(core::PinManager &m, mem::Vpn vpn)
    {
        m.locks[vpn] = 0;
    }
};

} // namespace utlb::check

namespace {

using namespace utlb;
using core::CacheConfig;
using core::HostCosts;
using core::HostPageTable;
using core::NicTranslationTable;
using core::PinBitVector;
using core::PinManager;
using core::PinManagerConfig;
using core::SharedUtlbCache;
using core::UtlbDriver;
using mem::AddressSpace;
using mem::PhysMemory;
using mem::PinFacility;
using mem::Vpn;
using nic::NicTimings;
using nic::Sram;

// ---------------------------------------------------------------------
// PinBitVector
// ---------------------------------------------------------------------

TEST(BitVectorAudit, CleanVectorPasses)
{
    PinBitVector bv;
    bv.set(3);
    bv.set(64);
    bv.set(200);
    check::AuditReport report;
    bv.audit(report);
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.auditorsRun(), 1u);
}

TEST(BitVectorAudit, CatchesCountWordDisagreement)
{
    PinBitVector bv;
    bv.set(3);
    bv.set(64);
    check::AuditReport before;
    bv.audit(before);
    ASSERT_TRUE(before.ok());

    check::TestTamper::flipBitmapWord(bv);
    check::AuditReport after;
    bv.audit(after);
    EXPECT_FALSE(after.ok());
    EXPECT_GE(after.countFor("bitvector"), 1u);
}

TEST(BitVectorBoundary, ClearOfNeverSetPageIsHarmless)
{
    PinBitVector bv;
    bv.set(10);
    bv.clear(11);      // same word, never set
    bv.clear(100000);  // word never allocated
    EXPECT_EQ(bv.count(), 1u);
    EXPECT_FALSE(bv.test(100000));

    check::AuditReport report;
    bv.audit(report);
    EXPECT_TRUE(report.ok());
}

TEST(BitVectorBoundary, ForEachSetVisitsAscending)
{
    PinBitVector bv;
    bv.set(200);
    bv.set(3);
    bv.set(64);
    std::vector<Vpn> seen;
    bv.forEachSet([&](Vpn v) { seen.push_back(v); });
    EXPECT_EQ(seen, (std::vector<Vpn>{3, 64, 200}));
}

// ---------------------------------------------------------------------
// NicTranslationTable
// ---------------------------------------------------------------------

TEST(NicTableAudit, CatchesSramPokeBehindCount)
{
    Sram sram(1 << 16);
    NicTranslationTable table(sram, 1, 128, /*garbage_frame=*/7);
    table.install(5, 99);
    ASSERT_EQ(table.validEntries(), 1u);

    check::AuditReport before;
    table.audit(before);
    ASSERT_TRUE(before.ok());

    // Slot 9 silently becomes non-garbage: the recount straight from
    // SRAM must disagree with the cached valid count.
    check::TestTamper::pokeNicSlot(table, 9);
    check::AuditReport after;
    table.audit(after);
    EXPECT_FALSE(after.ok());
    EXPECT_GE(after.countFor("nic-table"), 1u);
}

TEST(NicTableBoundary, OutOfRangeIndexYieldsGarbageFrame)
{
    Sram sram(1 << 16);
    NicTranslationTable table(sram, 1, 64, /*garbage_frame=*/7);
    table.install(0, 42);

    // §4.2: a stale or hostile index must never fault — it reads the
    // always-pinned garbage frame instead.
    EXPECT_EQ(table.entry(64), 7u);
    EXPECT_EQ(table.entry(10000), 7u);
    EXPECT_FALSE(table.isValid(64));
    EXPECT_EQ(table.entry(0), 42u);
}

// ---------------------------------------------------------------------
// HostPageTable
// ---------------------------------------------------------------------

TEST(HostTableAudit, CatchesOverstatedValidCount)
{
    PhysMemory phys(512);
    HostPageTable table(phys, 1);
    ASSERT_TRUE(table.set(3, 17));
    ASSERT_TRUE(table.set(700, 18));

    check::AuditReport before;
    table.audit(before);
    ASSERT_TRUE(before.ok());

    check::TestTamper::bumpHostValidCount(table);
    check::AuditReport after;
    table.audit(after);
    EXPECT_FALSE(after.ok());
    EXPECT_GE(after.countFor("host-page-table"), 1u);
}

TEST(HostTableAudit, SwappedLeafStillPasses)
{
    PhysMemory phys(512);
    HostPageTable table(phys, 1);
    ASSERT_TRUE(table.set(3, 17));
    ASSERT_TRUE(table.swapOutLeaf(3));

    // The auditor recounts valid entries inside the swapped disk
    // image, so a clean swap is not a false positive.
    check::AuditReport report;
    table.audit(report);
    EXPECT_TRUE(report.ok());
}

// ---------------------------------------------------------------------
// SharedUtlbCache
// ---------------------------------------------------------------------

TEST(SharedCacheAudit, CatchesMisplacedLine)
{
    NicTimings timings;
    SharedUtlbCache cache(CacheConfig{64, 2, true}, timings);
    for (mem::ProcId pid = 1; pid <= 3; ++pid)
        for (Vpn v = 0; v < 20; ++v)
            cache.insert(pid, v, 1000 + v);

    check::AuditReport before;
    cache.audit(before);
    ASSERT_TRUE(before.ok());

    ASSERT_TRUE(check::TestTamper::misplaceCacheLine(cache));
    check::AuditReport after;
    cache.audit(after);
    EXPECT_FALSE(after.ok());
    EXPECT_GE(after.countFor("shared-cache"), 1u);
}

TEST(SharedCacheAudit, CatchesDesyncedTagWord)
{
    NicTimings timings;
    SharedUtlbCache cache(CacheConfig{64, 4, true}, timings);
    for (mem::ProcId pid = 1; pid <= 3; ++pid)
        for (Vpn v = 0; v < 20; ++v)
            cache.insert(pid, v, 1000 + v);

    check::AuditReport before;
    cache.audit(before);
    ASSERT_TRUE(before.ok());

    ASSERT_TRUE(check::TestTamper::desyncTagWord(cache));
    check::AuditReport after;
    cache.audit(after);
    EXPECT_FALSE(after.ok());
    EXPECT_GE(after.countFor("shared-cache"), 1u);
}

TEST(SharedCacheAudit, CatchesScribbledSimdPadding)
{
    NicTimings timings;
    SharedUtlbCache cache(CacheConfig{64, 2, true}, timings);
    cache.insert(1, 5, 100);

    check::AuditReport before;
    cache.audit(before);
    ASSERT_TRUE(before.ok());

    check::TestTamper::scribblePadWord(cache);
    check::AuditReport after;
    cache.audit(after);
    EXPECT_FALSE(after.ok());
    EXPECT_GE(after.countFor("shared-cache"), 1u);
}

TEST(SharedCacheAudit, CatchesStaleStampOnDeadLine)
{
    NicTimings timings;
    SharedUtlbCache cache(CacheConfig{64, 1, true}, timings);
    cache.insert(1, 5, 100);
    ASSERT_TRUE(cache.lookup(1, 5).hit);  // useClock > 0

    check::AuditReport before;
    cache.audit(before);
    ASSERT_TRUE(before.ok());

    // A dead line keeping a recency stamp is exactly the state a
    // buggy invalidate path (one that clears `valid` but not
    // `lastUse`) leaves behind; the auditor must flag it.
    ASSERT_TRUE(check::TestTamper::stampDeadLine(cache));
    check::AuditReport after;
    cache.audit(after);
    EXPECT_FALSE(after.ok());
    EXPECT_GE(after.countFor("shared-cache"), 1u);
}

TEST(SharedCacheAudit, CatchesWedgedSeqlock)
{
    NicTimings timings;
    SharedUtlbCache cache(CacheConfig{64, 2, true}, timings);
    cache.enableConcurrent();
    SharedUtlbCache::Shard sh = cache.makeShard();
    for (Vpn v = 0; v < 20; ++v)
        cache.insertMT(1, v, 1000 + v, utlb::core::InsertMode::Demand,
                       sh);
    cache.absorbShard(sh);

    check::AuditReport before;
    cache.audit(before);
    ASSERT_TRUE(before.ok());

    // An odd version at quiescence is what a writer that died (or
    // forgot writeEnd) leaves behind: every future optimistic read
    // of the set would retry to the lock-fallback bound forever.
    check::TestTamper::wedgeSeqlock(cache);
    check::AuditReport after;
    cache.audit(after);
    EXPECT_FALSE(after.ok());
    EXPECT_GE(after.countFor("shared-cache"), 1u);
}

// ---------------------------------------------------------------------
// EventQueue
// ---------------------------------------------------------------------

TEST(EventQueueAudit, CatchesClockAheadOfPendingEvent)
{
    sim::EventQueue q;
    q.schedule(100, [] {});
    q.schedule(200, [] {});

    check::AuditReport before;
    q.audit(before);
    ASSERT_TRUE(before.ok());

    check::TestTamper::warpClock(q);
    check::AuditReport after;
    q.audit(after);
    EXPECT_FALSE(after.ok());
    EXPECT_GE(after.countFor("event-queue"), 1u);
}

// ---------------------------------------------------------------------
// PinFacility / PinManager
// ---------------------------------------------------------------------

/** A minimal driver stack for pin-layer fault injection. */
class PinStack : public ::testing::Test
{
  protected:
    PinStack()
        : physMem(4096), sram(1 << 20),
          cache(CacheConfig{256, 1, true}, timings, &sram),
          driver(physMem, pins, sram, cache, costs),
          space(1, physMem)
    {
        driver.registerProcess(space);
    }

    PinManager
    makeManager(const PinManagerConfig &cfg = {})
    {
        return PinManager(driver, 1, cfg);
    }

    HostCosts costs;
    NicTimings timings;
    PhysMemory physMem;
    PinFacility pins;
    Sram sram;
    SharedUtlbCache cache;
    UtlbDriver driver;
    AddressSpace space;
};

TEST_F(PinStack, FacilityAuditCatchesZeroRefcount)
{
    ASSERT_TRUE(pins.pinPage(1, 5).has_value());

    check::AuditReport before;
    pins.audit(before);
    ASSERT_TRUE(before.ok());

    check::TestTamper::zeroPinRefcount(pins, 1);
    check::AuditReport after;
    pins.audit(after);
    EXPECT_FALSE(after.ok());
    EXPECT_GE(after.countFor("pin-facility"), 1u);
}

TEST_F(PinStack, ManagerAuditCatchesKernelUnpinBehindItsBack)
{
    PinManager mgr = makeManager();
    ASSERT_TRUE(mgr.ensurePinned(10, 2).ok);

    check::AuditReport before;
    mgr.audit(before);
    ASSERT_TRUE(before.ok());

    // The kernel drops a page the library still believes pinned —
    // exactly what a refcount bug in the facility would look like.
    EXPECT_EQ(pins.unpinPage(1, 10), mem::PinStatus::Ok);
    check::AuditReport after;
    mgr.audit(after);
    EXPECT_FALSE(after.ok());
    EXPECT_GE(after.countFor("pin-manager"), 1u);
}

TEST_F(PinStack, ManagerAuditCatchesUnpinnedDmaLock)
{
    PinManager mgr = makeManager();
    ASSERT_TRUE(mgr.ensurePinned(10, 1).ok);
    mgr.lockRange(10, 1);

    check::AuditReport before;
    mgr.audit(before);
    ASSERT_TRUE(before.ok());

    // An in-flight DMA must never target an unpinned frame (§3.1).
    EXPECT_EQ(pins.unpinPage(1, 10), mem::PinStatus::Ok);
    check::AuditReport after;
    mgr.audit(after);
    EXPECT_FALSE(after.ok());
    EXPECT_GE(after.countFor("pin-manager"), 1u);
}

TEST_F(PinStack, ManagerAuditCatchesZeroCountLock)
{
    PinManager mgr = makeManager();
    ASSERT_TRUE(mgr.ensurePinned(10, 1).ok);

    check::TestTamper::plantZeroLock(mgr, 10);
    check::AuditReport report;
    mgr.audit(report);
    EXPECT_FALSE(report.ok());
    EXPECT_GE(report.countFor("pin-manager"), 1u);
}

TEST_F(PinStack, PinLimitExactlyReachedStaysWithinBudget)
{
    PinManagerConfig cfg;
    cfg.memLimitPages = 4;
    PinManager mgr = makeManager(cfg);

    // Fill the budget to the brim: legal, and the auditor agrees.
    ASSERT_TRUE(mgr.ensurePinned(10, 4).ok);
    EXPECT_EQ(mgr.pinnedPages(), 4u);
    check::AuditReport at_limit;
    mgr.audit(at_limit);
    EXPECT_TRUE(at_limit.ok());

    // One page over the brim forces an eviction, never an overflow.
    core::EnsureResult r = mgr.ensurePinned(100, 1);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.pagesUnpinned, 1u);
    EXPECT_EQ(mgr.pinnedPages(), 4u);
    check::AuditReport after;
    mgr.audit(after);
    EXPECT_TRUE(after.ok());
}

TEST_F(PinStack, UnpinOfNeverPinnedPageIsRejected)
{
    PinManager mgr = makeManager();
    EXPECT_FALSE(mgr.releasePage(999));
    EXPECT_EQ(pins.unpinPage(1, 999), mem::PinStatus::NotPinned);

    check::AuditReport report;
    mgr.audit(report);
    pins.audit(report);
    EXPECT_TRUE(report.ok());
}

// ---------------------------------------------------------------------
// VmmcNode / Cluster
// ---------------------------------------------------------------------

TEST(VmmcAudit, ClusterSweepIsCleanAndCatchesUnpinnedExport)
{
    vmmc::ClusterConfig cfg;
    cfg.nodes = 2;
    cfg.node.memoryFrames = 2048;
    cfg.node.cache = {512, 1, true};
    vmmc::Cluster cluster(cfg);
    cluster.node(0).createProcess(1);
    cluster.node(1).createProcess(2);

    mem::VirtAddr recv_va = mem::addrOf(20);
    auto exp = cluster.node(1).exportBuffer(2, recv_va, 2 * 4096);
    ASSERT_TRUE(exp.has_value());

    check::AuditReport before;
    cluster.audit(before);
    ASSERT_TRUE(before.ok()) << before.summary();
    EXPECT_GT(before.auditorsRun(), 4u);

    // Unpin an exported page behind the export's back: a standing
    // DMA target now points at a reclaimable frame.
    EXPECT_EQ(cluster.node(1).pinFacility().unpinPage(2, 20),
              mem::PinStatus::Ok);
    check::AuditReport after;
    cluster.audit(after);
    EXPECT_FALSE(after.ok());
    EXPECT_GE(after.countFor("vmmc-node"), 1u);
}

// ---------------------------------------------------------------------
// Simulator integration (--audit-every)
// ---------------------------------------------------------------------

TEST(SimulatorAudit, PeriodicSweepsRunCleanInBothModes)
{
    trace::SyntheticSpec spec;
    spec.processes = 2;
    spec.pages = 64;
    spec.lookups = 300;
    trace::Trace tr = trace::generateSynthetic("uniform", spec, 42);

    tlbsim::SimConfig cfg;
    cfg.cache = {128, 1, true};
    cfg.memLimitPages = 32;
    cfg.auditEvery = 100;

    tlbsim::SimResult u = tlbsim::simulateUtlb(tr, cfg);
    EXPECT_GT(u.audits, 0u);
    tlbsim::SimResult i = tlbsim::simulateIntr(tr, cfg);
    EXPECT_GT(i.audits, 0u);
}

// ---------------------------------------------------------------------
// UTLB_ASSERT failure handling
// ---------------------------------------------------------------------

// These tests trip UTLB_ASSERT deliberately, so they only exist in
// builds where the macro is live.
#if UTLB_CHECK_LEVEL >= 1

TEST(CheckMacros, ThrowingHandlerSeesStructuredContext)
{
    check::setFailureHandler(
        [](const check::Failure &f) { throw f; });

    volatile int four = 4;
    bool caught = false;
    try {
        check::ScopedContext ctx("unit-test", 42);
        UTLB_ASSERT(four == 5, "deliberate failure, four=%d", four);
    } catch (const check::Failure &f) {
        caught = true;
        EXPECT_EQ(f.component, "unit-test");
        EXPECT_EQ(f.pid, 42u);
        EXPECT_NE(f.message.find("deliberate failure"),
                  std::string::npos);
        EXPECT_STREQ(f.expr, "four == 5");
    }
    EXPECT_TRUE(caught);
    check::setFailureHandler(nullptr);
}

TEST(CheckMacros, ScopedContextNestsAndRestores)
{
    check::setFailureHandler(
        [](const check::Failure &f) { throw f; });

    check::ScopedContext outer("outer", 1);
    {
        check::ScopedContext inner("inner", 2);
        try {
            UTLB_ASSERT(false);
        } catch (const check::Failure &f) {
            EXPECT_EQ(f.component, "inner");
            EXPECT_EQ(f.pid, 2u);
        }
    }
    try {
        UTLB_ASSERT(false);
    } catch (const check::Failure &f) {
        EXPECT_EQ(f.component, "outer");
        EXPECT_EQ(f.pid, 1u);
    }
    check::setFailureHandler(nullptr);
}

TEST(CheckMacrosDeathTest, DefaultHandlerPrintsAndAborts)
{
    EXPECT_DEATH(
        {
            check::ScopedContext ctx("doomed-component", 9);
            UTLB_ASSERT(1 + 1 == 3, "the books do not balance");
        },
        "doomed-component");
}

#endif // UTLB_CHECK_LEVEL >= 1

} // namespace
