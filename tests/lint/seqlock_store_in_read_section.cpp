// Known-bad fixture for scripts/concurrency_lint.py (never compiled).
//
// A reader promotes itself to a writer inside the optimistic seqlock
// read section: it stores to the line it is probing without taking
// the stripe lock or bumping the version, so a concurrent reader can
// observe a torn entry that readRetry() never detects.
//
// utlb-lint-expect: seqlock-read-section

#include <cstdint>

struct Line {
    bool valid;
    unsigned pid;
    std::uint64_t vpn;
    std::uint64_t pfn;
};

struct SeqCount {
    std::uint32_t readBegin() const;
    bool readRetry(std::uint32_t) const;
};

std::uint64_t loadRelaxed(const std::uint64_t &);
void storeRelaxed(std::uint64_t &, std::uint64_t);

std::uint64_t
probeAndPromote(SeqCount &seq, Line &line, std::uint64_t vpn)
{
    for (;;) {
        std::uint32_t v = seq.readBegin();
        std::uint64_t pfn = 0;
        if (loadRelaxed(line.vpn) == vpn) {
            pfn = loadRelaxed(line.pfn);
            // BAD: a store inside the read section.
            storeRelaxed(line.vpn, vpn);
            // BAD: a plain member write inside the read section.
            line.valid = true;
        }
        if (!seq.readRetry(v))
            return pfn;
    }
}
