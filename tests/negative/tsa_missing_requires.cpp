// Negative-compile case: MUST be rejected by clang's thread-safety
// analysis (-Werror=thread-safety-analysis) and MUST compile clean
// without it. Driven by scripts/negative_compile.sh; never linked.
//
// The defect: calling a UTLB_REQUIRES method without holding the
// required capability (the same shape as calling
// SharedUtlbCache::scanWaysLocked without the stripe lock).

#include "sim/annotations.hpp"
#include "sim/spinlock.hpp"

class Table
{
  public:
    int get(int i) UTLB_REQUIRES(mu) { return slots[i]; }

    int getRacy(int i)
    {
        // BAD: get() requires mu, and nothing here acquires it.
        return get(i);
    }

  private:
    utlb::sim::Spinlock mu;
    int slots[4] UTLB_GUARDED_BY(mu) = {};
};

int
main()
{
    Table t;
    return t.getRacy(0);
}
