/**
 * @file
 * Lightweight event tracer for the translation miss path.
 *
 * Records timed events (cache probe, host-table DMA read, pin ioctl,
 * cache install, ...) and serializes them as Chrome trace-event JSON
 * (the `chrome://tracing` / Perfetto "traceEvents" format), so a miss
 * can be inspected span-by-span in a standard timeline viewer.
 *
 * The simulation is cost-model driven rather than globally clocked,
 * so the tracer keeps its own cursor: each complete() event is placed
 * at the cursor and advances it by the event's duration. Components
 * that spend modeled time without emitting an event advance the
 * cursor explicitly with advance().
 *
 * The event buffer is bounded; once full, further events are counted
 * in dropped() but not stored, keeping long replays cheap.
 */

#ifndef UTLB_SIM_TRACER_HPP
#define UTLB_SIM_TRACER_HPP

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/types.hpp"

namespace utlb::sim {

/** One numeric annotation on a trace event. */
struct TraceArg {
    const char *key;
    std::uint64_t value;
};

/** Bounded recorder of Chrome trace events. */
class Tracer
{
  public:
    /** Default event-buffer bound (~a few MB of JSON). */
    static constexpr std::size_t kDefaultMaxEvents = 1u << 20;

    explicit Tracer(std::size_t max_events = kDefaultMaxEvents)
        : maxEvents(max_events)
    {}

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Current position of the trace clock (ticks). */
    Tick now() const { return clock; }

    /** Advance the clock without emitting an event. */
    void advance(Tick dur) { clock += dur; }

    /**
     * Emit a complete ("ph":"X") event of duration @p dur at the
     * clock cursor, attributed to track @p track (rendered as the
     * Chrome pid, one row per process), then advance the cursor.
     */
    void complete(std::string_view name, std::string_view category,
                  std::uint32_t track, Tick dur,
                  std::initializer_list<TraceArg> args = {});

    /** Emit an instant ("ph":"i") event at the clock cursor. */
    void instant(std::string_view name, std::string_view category,
                 std::uint32_t track,
                 std::initializer_list<TraceArg> args = {});

    /** Events currently stored. */
    std::size_t events() const { return recorded.size(); }

    /** Events discarded because the buffer bound was reached. */
    std::size_t dropped() const { return numDropped; }

    /** Discard all stored events; the clock keeps running. */
    void clearEvents();

    /** Serialize as a Chrome trace-event JSON object. */
    void writeJson(std::ostream &os) const;

  private:
    struct Event {
        std::string name;
        std::string category;
        char phase;
        std::uint32_t track;
        Tick ts;
        Tick dur;
        std::vector<std::pair<std::string, std::uint64_t>> args;
    };

    void record(Event ev);

    std::size_t maxEvents;
    std::vector<Event> recorded;
    Tick clock = 0;
    std::size_t numDropped = 0;
};

} // namespace utlb::sim

#endif // UTLB_SIM_TRACER_HPP
