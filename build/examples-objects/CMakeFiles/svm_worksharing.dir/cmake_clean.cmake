file(REMOVE_RECURSE
  "../examples/svm_worksharing"
  "../examples/svm_worksharing.pdb"
  "CMakeFiles/svm_worksharing.dir/svm_worksharing.cpp.o"
  "CMakeFiles/svm_worksharing.dir/svm_worksharing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svm_worksharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
