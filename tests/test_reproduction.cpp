/**
 * @file
 * Reproduction regression tests: pin the simulated results to the
 * paper's published values (within documented tolerances), so that
 * any change to the generators, the cache, the pin manager, or the
 * cost model that silently degrades fidelity fails CI.
 *
 * Tolerances are deliberately loose where EXPERIMENTS.md documents
 * known deviations and tight where the reproduction is exact.
 */

#include <gtest/gtest.h>

#include "tlbsim/simulator.hpp"
#include "trace/workloads.hpp"

namespace {

using utlb::tlbsim::SimConfig;
using utlb::tlbsim::simulateIntr;
using utlb::tlbsim::simulateUtlb;
using utlb::trace::generateTrace;

struct PaperRow {
    const char *app;
    double checkMiss;   //!< Table 4, any cache size
    double niMiss1K;    //!< Table 4 @1K entries
    double niMiss16K;   //!< Table 4 @16K entries
};

// Transcribed from Table 4 (infinite memory, direct + offsetting).
const PaperRow kTable4[] = {
    {"fft", 0.25, 0.50, 0.38},
    {"lu", 0.49, 0.50, 0.49},
    {"barnes", 0.04, 0.10, 0.04},
    {"radix", 0.54, 0.62, 0.54},
    {"raytrace", 0.43, 0.48, 0.43},
    {"volrend", 0.25, 0.31, 0.25},
    {"water", 0.10, 0.35, 0.10},
};

class Table4Fidelity : public ::testing::TestWithParam<PaperRow>
{};

TEST_P(Table4Fidelity, CheckMissRateWithinTolerance)
{
    const auto &row = GetParam();
    SimConfig cfg;
    cfg.cache = {1024, 1, true};
    auto r = simulateUtlb(generateTrace(row.app), cfg);
    EXPECT_NEAR(r.checkMissPerLookup(), row.checkMiss, 0.02)
        << row.app;
}

TEST_P(Table4Fidelity, NiMissRatesWithinTolerance)
{
    const auto &row = GetParam();
    SimConfig small, big;
    small.cache = {1024, 1, true};
    big.cache = {16384, 1, true};
    auto trace = generateTrace(row.app);
    auto s = simulateUtlb(trace, small);
    auto b = simulateUtlb(trace, big);
    // Documented deviations (EXPERIMENTS.md) are within 0.07.
    EXPECT_NEAR(s.niMissPerLookup(), row.niMiss1K, 0.07) << row.app;
    EXPECT_NEAR(b.niMissPerLookup(), row.niMiss16K, 0.04) << row.app;
}

TEST_P(Table4Fidelity, UtlbNeverUnpinsAndIntrAlwaysDoesAtSmallCaches)
{
    const auto &row = GetParam();
    SimConfig cfg;
    cfg.cache = {1024, 1, true};
    auto trace = generateTrace(row.app);
    auto u = simulateUtlb(trace, cfg);
    auto i = simulateIntr(trace, cfg);
    EXPECT_EQ(u.pagesUnpinned, 0u) << row.app;
    EXPECT_GT(i.pagesUnpinned, 0u) << row.app;
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, Table4Fidelity, ::testing::ValuesIn(kTable4),
    [](const ::testing::TestParamInfo<PaperRow> &info) {
        return std::string(info.param.app);
    });

TEST(Table6Fidelity, FftLookupCostsMatchPaperClosely)
{
    auto trace = generateTrace("fft");
    struct Cell {
        std::size_t entries;
        double utlb;
        double intr;
    };
    // Table 6, FFT columns.
    const Cell cells[] = {
        {1024, 9.0, 21.7}, {4096, 8.9, 20.9}, {16384, 8.7, 14.8}};
    for (const auto &c : cells) {
        SimConfig cfg;
        cfg.cache = {c.entries, 1, true};
        auto u = simulateUtlb(trace, cfg);
        auto i = simulateIntr(trace, cfg);
        EXPECT_NEAR(u.avgLookupCostUs(), c.utlb, 0.15 * c.utlb)
            << c.entries;
        // The interrupt column runs up to ~17% under the paper at
        // 16K (our FFT evicts slightly less there; EXPERIMENTS.md).
        EXPECT_NEAR(i.avgLookupCostUs(), c.intr, 0.20 * c.intr)
            << c.entries;
        // The structural claim: UTLB wins for FFT at every size.
        EXPECT_LT(u.avgLookupCostUs(), i.avgLookupCostUs());
    }
}

TEST(Table5Fidelity, FourMbLimitMatchesPaperShapes)
{
    // Table 5's distinguishing cells: LU's UTLB unpin rate is 0.33
    // at every cache size; small-footprint apps stay at zero.
    SimConfig cfg;
    cfg.cache = {8192, 1, true};
    cfg.memLimitPages = 1024;
    auto lu = simulateUtlb(generateTrace("lu"), cfg);
    EXPECT_NEAR(lu.unpinsPerLookup(), 0.33, 0.03);
    auto water = simulateUtlb(generateTrace("water"), cfg);
    EXPECT_NEAR(water.unpinsPerLookup(), 0.0, 0.005);
    auto volrend = simulateUtlb(generateTrace("volrend"), cfg);
    EXPECT_NEAR(volrend.unpinsPerLookup(), 0.0, 0.005);
}

TEST(Fig7Fidelity, CompulsoryMissesDominateAtLargeCaches)
{
    for (const char *app : {"fft", "lu", "radix", "raytrace",
                            "volrend", "water"}) {
        SimConfig cfg;
        cfg.cache = {16384, 1, true};
        auto r = simulateUtlb(generateTrace(app), cfg);
        EXPECT_GT(r.compulsoryMisses,
                  r.capacityMisses + r.conflictMisses)
            << app;
    }
}

TEST(Fig8Fidelity, PrefetchWithPrepinSlashesRadixMisses)
{
    auto trace = generateTrace("radix");
    SimConfig base, aggressive;
    base.cache = aggressive.cache = {1024, 1, true};
    aggressive.prefetchEntries = 16;
    aggressive.prepinPages = 16;
    auto b = simulateUtlb(trace, base);
    auto a = simulateUtlb(trace, aggressive);
    // Paper: aggressive prefetch cuts the miss rate several-fold
    // when contiguous translations are available.
    EXPECT_LT(a.probeMissRate(), 0.35 * b.probeMissRate());
    EXPECT_LT(a.avgProbeCostUs(), b.avgProbeCostUs());
}

TEST(Table7Fidelity, PrepinHelpsLuAndBackfiresOnFft)
{
    SimConfig one, sixteen;
    one.cache = sixteen.cache = {8192, 1, true};
    one.memLimitPages = sixteen.memLimitPages = 4096;
    sixteen.prepinPages = 16;

    auto lu = generateTrace("lu");
    auto lu1 = simulateUtlb(lu, one);
    auto lu16 = simulateUtlb(lu, sixteen);
    // Paper: 12.0 -> 2.3 us; require at least a 4x improvement.
    EXPECT_LT(lu16.amortizedPinUs(), lu1.amortizedPinUs() / 4.0);
    EXPECT_LT(lu16.amortizedUnpinUs(), 0.5);

    auto fft = generateTrace("fft");
    auto fft1 = simulateUtlb(fft, one);
    auto fft16 = simulateUtlb(fft, sixteen);
    // Paper: unpin cost explodes (0.1 -> 93 us); require the
    // blow-up to reproduce in direction and magnitude (>10 us).
    EXPECT_LT(fft1.amortizedUnpinUs(), 0.5);
    EXPECT_GT(fft16.amortizedUnpinUs(), 10.0);
}

TEST(Table8Fidelity, OffsettingBeatsNoOffsettingEverywhere)
{
    for (const char *app : {"fft", "lu", "barnes", "water"}) {
        auto trace = generateTrace(app);
        SimConfig with, without;
        with.cache = {4096, 1, true};
        without.cache = {4096, 1, false};
        auto w = simulateUtlb(trace, with);
        auto wo = simulateUtlb(trace, without);
        EXPECT_LT(w.probeMissRate(), wo.probeMissRate()) << app;
    }
}

} // namespace
