#include "tlbsim/simulator.hpp"

#include <chrono>
#include <list>
#include <memory>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "check/audit.hpp"
#include "core/cost_model.hpp"
#include "core/driver.hpp"
#include "core/interrupt_baseline.hpp"
#include "core/utlb.hpp"
#include "mem/address_space.hpp"
#include "mem/phys_memory.hpp"
#include "mem/pinning.hpp"
#include "nic/sram.hpp"
#include "nic/timing.hpp"
#include "sim/json.hpp"
#include "sim/log.hpp"

namespace utlb::tlbsim {

using mem::pageOf;
using mem::pagesSpanned;
using mem::ProcId;
using mem::Vpn;

namespace {

/** Key for a (pid, vpn) pair. */
std::uint64_t
pageKey(ProcId pid, Vpn vpn)
{
    return (static_cast<std::uint64_t>(pid) << 40) | vpn;
}

/**
 * Three-C miss classifier: a seen-set for compulsory misses and a
 * fully-associative LRU shadow cache of equal total capacity for the
 * capacity/conflict split (§6.3 cites Hill's taxonomy).
 */
class MissClassifier
{
  public:
    explicit MissClassifier(std::size_t capacity) : cap(capacity) {}

    /** Record a probe; if @p missed, classify it. */
    void
    probe(ProcId pid, Vpn vpn, bool missed, SimResult &res)
    {
        std::uint64_t key = pageKey(pid, vpn);
        bool first = seen.insert(key).second;
        bool shadow_hit = touch(key);
        if (!missed)
            return;
        if (first)
            ++res.compulsoryMisses;
        else if (!shadow_hit)
            ++res.capacityMisses;
        else
            ++res.conflictMisses;
    }

  private:
    /** LRU-touch @p key in the shadow. @return prior residency. */
    bool
    touch(std::uint64_t key)
    {
        auto it = index.find(key);
        if (it != index.end()) {
            order.splice(order.end(), order, it->second);
            return true;
        }
        order.push_back(key);
        index.emplace(key, std::prev(order.end()));
        if (index.size() > cap) {
            index.erase(order.front());
            order.pop_front();
        }
        return false;
    }

    std::size_t cap;
    std::unordered_set<std::uint64_t> seen;
    std::list<std::uint64_t> order;
    std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
        index;
};

/** Abort the run if an audit sweep found violations. */
void
dieOnViolations(const check::AuditReport &report, std::uint64_t lookup)
{
    if (report.ok())
        return;
    sim::panic("invariant audit failed after %llu lookups:\n%s",
               static_cast<unsigned long long>(lookup),
               report.summary().c_str());
}

/**
 * Serialize one finished run as the "utlb-stats-v1" per-run object:
 * the mechanism, the configuration it ran under, the headline
 * results (raw counters plus the derived table metrics), and the
 * full component statistics tree rooted at @p root.
 */
std::string
runJson(const char *mechanism, const SimConfig &cfg,
        const SimResult &res, const sim::StatGroup &root)
{
    std::ostringstream os;
    sim::JsonWriter w(os);
    w.beginObject();
    w.field("schema", "utlb-stats-v1");
    w.field("mechanism", mechanism);

    w.beginObject("config");
    w.field("cache_entries", std::uint64_t{cfg.cache.entries});
    w.field("cache_assoc", std::uint64_t{cfg.cache.assoc});
    w.field("index_offsetting", cfg.cache.indexOffsetting);
    w.field("prefetch_entries", std::uint64_t{cfg.prefetchEntries});
    w.field("mem_limit_pages", std::uint64_t{cfg.memLimitPages});
    w.field("policy", core::toString(cfg.policy));
    w.field("prepin_pages", std::uint64_t{cfg.prepinPages});
    w.field("batched_range", cfg.batchedRange);
    w.field("seed", cfg.seed);
    w.field("warmup_lookups", std::uint64_t{cfg.warmupLookups});
    w.endObject();

    w.beginObject("results");
    w.field("lookups", res.lookups);
    w.field("probes", res.probes);
    w.field("check_miss_lookups", res.checkMissLookups);
    w.field("ni_miss_lookups", res.niMissLookups);
    w.field("ni_miss_probes", res.niMissProbes);
    w.field("pages_pinned", res.pagesPinned);
    w.field("pages_unpinned", res.pagesUnpinned);
    w.field("pin_ioctls", res.pinIoctls);
    w.field("interrupts", res.interrupts);
    w.field("host_time_us", sim::ticksToUs(res.hostTime));
    w.field("pin_time_us", sim::ticksToUs(res.pinTime));
    w.field("unpin_time_us", sim::ticksToUs(res.unpinTime));
    w.field("nic_time_us", sim::ticksToUs(res.nicTime));
    w.field("compulsory_misses", res.compulsoryMisses);
    w.field("capacity_misses", res.capacityMisses);
    w.field("conflict_misses", res.conflictMisses);
    w.field("audits", res.audits);
    w.field("wall_ns", res.wallNs);
    w.field("check_miss_per_lookup", res.checkMissPerLookup());
    w.field("ni_miss_per_lookup", res.niMissPerLookup());
    w.field("unpins_per_lookup", res.unpinsPerLookup());
    w.field("probe_miss_rate", res.probeMissRate());
    w.field("avg_lookup_cost_us", res.avgLookupCostUs());
    w.field("amortized_pin_us", res.amortizedPinUs());
    w.field("amortized_unpin_us", res.amortizedUnpinUs());
    w.endObject();

    root.writeJson(w, "components");

    w.endObject();
    return os.str();
}

/** Frames needed to replay a trace without running out of DRAM. */
std::size_t
framesFor(const trace::Trace &trace)
{
    trace::TraceShape shape = trace::measure(trace);
    // Data pages — including pages only sequential pre-pinning ever
    // touches: with FFT's stride-8 layout, pre-pin waste can reach
    // ~8x the communicated footprint — plus page-table leaves, the
    // garbage page, and slack.
    return shape.distinctPages * 10 + 2048;
}

} // namespace

SimResult
simulateUtlb(const trace::Trace &trace, const SimConfig &cfg)
{
    SimResult res;
    if (trace.empty()) {
        sim::StatGroup root("utlb");
        res.statsJson = runJson("utlb", cfg, res, root);
        return res;
    }

    mem::PhysMemory phys_mem(framesFor(trace));
    mem::PinFacility pins;
    nic::Sram sram(4u << 20);  // generous: sweeps go up to 16 K entries
    nic::NicTimings timings;
    core::HostCosts costs(cfg.hostProfile);
    core::SharedUtlbCache cache(cfg.cache, timings, &sram);
    core::UtlbDriver driver(phys_mem, pins, sram, cache, costs);

    sim::StatGroup root("utlb");
    root.adopt(cache.stats());
    root.adopt(driver.stats());
    root.adopt(pins.stats());
    root.adopt(sram.stats());

    struct Proc {
        std::unique_ptr<mem::AddressSpace> space;
        std::unique_ptr<core::UserUtlb> utlb;
    };
    std::unordered_map<ProcId, Proc> procs;

    auto get_utlb = [&](ProcId pid) -> core::UserUtlb & {
        auto it = procs.find(pid);
        if (it == procs.end()) {
            Proc p;
            p.space =
                std::make_unique<mem::AddressSpace>(pid, phys_mem);
            driver.registerProcess(*p.space);
            core::UtlbConfig ucfg;
            ucfg.prefetchEntries = cfg.prefetchEntries;
            ucfg.pin.memLimitPages = cfg.memLimitPages;
            ucfg.pin.policy = cfg.policy;
            ucfg.pin.prepinPages = cfg.prepinPages;
            ucfg.pin.seed = cfg.seed + pid;
            p.utlb = std::make_unique<core::UserUtlb>(
                driver, cache, timings, pid, ucfg);
            p.utlb->setTracer(cfg.tracer);
            root.adopt(p.utlb->stats());
            it = procs.emplace(pid, std::move(p)).first;
        }
        return *it->second.utlb;
    };

    MissClassifier classifier(cfg.cache.entries);

    std::size_t seen = 0;
    auto wall_start = std::chrono::steady_clock::now();
    for (const auto &rec : trace) {
        core::UserUtlb &utlb = get_utlb(rec.pid);
        std::size_t npages = pagesSpanned(rec.va, rec.nbytes);
        if (npages == 0)
            continue;
        bool warm = seen++ >= cfg.warmupLookups;
        if (warm)
            ++res.lookups;
        Vpn start = pageOf(rec.va);

        if (cfg.batchedRange) {
            // Whole-buffer fast path. The modeled costs and stats it
            // accrues are identical to the per-page branch below (the
            // golden-equivalence test holds both against each other);
            // the classifier is replayed from the recorded miss
            // indices, which match the interleaved peek outcomes.
            core::Translation t = utlb.translateRange(rec.va,
                                                      rec.nbytes);
            if (warm) {
                res.hostTime += costs.userCheck() + t.pinCost
                    + t.unpinCost;
                res.pinTime += t.pinCost;
                res.unpinTime += t.unpinCost;
                if (t.checkMiss)
                    ++res.checkMissLookups;
                res.pagesPinned += t.pagesPinned;
                res.pagesUnpinned += t.pagesUnpinned;
                res.pinIoctls += t.pinIoctls;
            }
            if (!t.ok) {
                sim::warn("UTLB sim: pin failed for pid %u va %llx",
                          rec.pid,
                          static_cast<unsigned long long>(rec.va));
                continue;
            }
            if (warm) {
                res.probes += npages;
                res.nicTime += t.nicCost;
                res.niMissProbes += t.missPages.size();
                if (!t.missPages.empty())
                    ++res.niMissLookups;
                std::size_t mi = 0;
                for (std::size_t i = 0; i < npages; ++i) {
                    bool missed = mi < t.missPages.size()
                        && t.missPages[mi] == i;
                    if (missed)
                        ++mi;
                    classifier.probe(rec.pid, start + i, missed, res);
                }
            }
        } else {
            core::EnsureResult host = utlb.prepare(rec.va, rec.nbytes);
            if (warm) {
                // Per-lookup host time uses the §6.2 cost equation:
                // the flat 0.5 us user-level charge (which subsumes
                // the bitmap scan) plus the measured pin/unpin ioctl
                // costs.
                res.hostTime += costs.userCheck() + host.pinCost
                    + host.unpinCost;
                res.pinTime += host.pinCost;
                res.unpinTime += host.unpinCost;
                if (host.checkMiss)
                    ++res.checkMissLookups;
                res.pagesPinned += host.pagesPinned;
                res.pagesUnpinned += host.pagesUnpinned;
                res.pinIoctls += host.pinIoctls;
            }
            if (!host.ok) {
                sim::warn("UTLB sim: pin failed for pid %u va %llx",
                          rec.pid,
                          static_cast<unsigned long long>(rec.va));
                continue;
            }

            bool any_miss = false;
            for (std::size_t i = 0; i < npages; ++i) {
                // Classification must see the probe outcome before
                // the lookup's side effects, so peek first.
                bool would_hit =
                    cache.peek(rec.pid, start + i).has_value();
                if (warm)
                    classifier.probe(rec.pid, start + i, !would_hit,
                                     res);

                core::NicLookup nl = utlb.nicTranslate(start + i);
                if (warm) {
                    ++res.probes;
                    res.nicTime += nl.cost;
                    if (nl.miss) {
                        ++res.niMissProbes;
                        any_miss = true;
                    }
                }
            }
            if (warm && any_miss)
                ++res.niMissLookups;
        }

        if (cfg.auditEvery != 0 && seen % cfg.auditEvery == 0) {
            // Periodic self-check (--audit-every): re-derive every
            // structure's redundant state and abort on disagreement.
            check::AuditReport report;
            cache.audit(report);
            driver.audit(report);
            for (const auto &[pid, p] : procs)
                p.utlb->pinManager().audit(report);
            dieOnViolations(report, seen);
            ++res.audits;
        }
    }
    res.wallNs = std::chrono::duration<double, std::nano>(
                     std::chrono::steady_clock::now() - wall_start)
                     .count();
    res.statsJson = runJson("utlb", cfg, res, root);
    return res;
}

SimResult
simulateIntr(const trace::Trace &trace, const SimConfig &cfg)
{
    SimResult res;
    if (trace.empty()) {
        sim::StatGroup root("intr");
        res.statsJson = runJson("intr", cfg, res, root);
        return res;
    }

    mem::PhysMemory phys_mem(framesFor(trace));
    mem::PinFacility pins;
    nic::NicTimings timings;
    core::HostCosts costs(cfg.hostProfile);
    core::SharedUtlbCache cache(cfg.cache, timings);
    core::InterruptTlb intr(pins, cache, costs, timings);

    sim::StatGroup root("intr");
    root.adopt(cache.stats());
    root.adopt(intr.stats());
    root.adopt(pins.stats());

    std::unordered_map<ProcId, std::unique_ptr<mem::AddressSpace>>
        spaces;
    auto ensure_proc = [&](ProcId pid) {
        if (spaces.count(pid))
            return;
        auto space =
            std::make_unique<mem::AddressSpace>(pid, phys_mem);
        pins.registerSpace(*space);
        if (cfg.memLimitPages != 0)
            pins.setPinLimit(pid, cfg.memLimitPages);
        spaces.emplace(pid, std::move(space));
    };

    MissClassifier classifier(cfg.cache.entries);

    std::size_t seen = 0;
    auto wall_start = std::chrono::steady_clock::now();
    for (const auto &rec : trace) {
        ensure_proc(rec.pid);
        std::size_t npages = pagesSpanned(rec.va, rec.nbytes);
        if (npages == 0)
            continue;
        bool warm = seen++ >= cfg.warmupLookups;
        if (warm)
            ++res.lookups;

        bool any_miss = false;
        Vpn start = pageOf(rec.va);
        for (std::size_t i = 0; i < npages; ++i) {
            bool would_hit =
                cache.peek(rec.pid, start + i).has_value();
            if (warm)
                classifier.probe(rec.pid, start + i, !would_hit, res);

            core::IntrLookup lk = intr.translate(rec.pid, start + i);
            if (warm) {
                ++res.probes;
                res.nicTime += lk.cost;
                if (lk.miss) {
                    ++res.niMissProbes;
                    any_miss = true;
                    ++res.interrupts;
                    ++res.pagesPinned;
                    res.pinTime += costs.kernelPinCost();
                }
                res.pagesUnpinned += lk.unpins;
                res.unpinTime += static_cast<sim::Tick>(lk.unpins)
                    * costs.kernelUnpinCost();
            }
            if (lk.failed) {
                sim::warn("Intr sim: pin failed for pid %u page "
                          "%llu", rec.pid,
                          static_cast<unsigned long long>(start + i));
            }
        }
        if (warm && any_miss)
            ++res.niMissLookups;

        if (cfg.auditEvery != 0 && seen % cfg.auditEvery == 0) {
            check::AuditReport report;
            cache.audit(report);
            pins.audit(report);
            dieOnViolations(report, seen);
            ++res.audits;
        }
    }
    res.wallNs = std::chrono::duration<double, std::nano>(
                     std::chrono::steady_clock::now() - wall_start)
                     .count();
    res.statsJson = runJson("intr", cfg, res, root);
    return res;
}

} // namespace utlb::tlbsim
