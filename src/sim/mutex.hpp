/**
 * @file
 * Capability-annotated mutex wrappers.
 *
 * libstdc++'s std::mutex and std::lock_guard carry no clang
 * thread-safety annotations, so acquisitions through them are
 * invisible to the analysis: a UTLB_GUARDED_BY field locked with
 * std::lock_guard would warn on every correct access. These thin
 * wrappers restore visibility — sim::Mutex is an annotated
 * capability, sim::LockGuard the scoped holder the analysis tracks.
 * Project rule (enforced by scripts/concurrency_lint.py): code under
 * src/ uses these, never a bare std::mutex.
 */

#ifndef UTLB_SIM_MUTEX_HPP
#define UTLB_SIM_MUTEX_HPP

#include <mutex>

#include "sim/annotations.hpp"

namespace utlb::sim {

/** A std::mutex the thread-safety analysis can see. */
class UTLB_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;

    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() UTLB_ACQUIRE()
    {
        m.lock();
    }

    void
    unlock() UTLB_RELEASE()
    {
        m.unlock();
    }

    [[nodiscard]] bool
    try_lock() UTLB_TRY_ACQUIRE(true)
    {
        return m.try_lock();
    }

  private:
    std::mutex m;
};

/** Scoped Mutex holder (the annotated std::lock_guard). */
class UTLB_SCOPED_CAPABILITY LockGuard
{
  public:
    explicit LockGuard(Mutex &m) UTLB_ACQUIRE(m) : mu(&m)
    {
        mu->lock();
    }

    ~LockGuard() UTLB_RELEASE() { mu->unlock(); }

    LockGuard(const LockGuard &) = delete;
    LockGuard &operator=(const LockGuard &) = delete;

  private:
    Mutex *mu;
};

/**
 * A guard that holds either one Mutex or nothing — the conditional
 * acquisition PinManager::guard() hands out (locking is opt-in
 * there; single-threaded callers pay no lock).
 *
 * Conditional locking is outside what the static analysis can
 * model, so the ctor/dtor are UTLB_NO_THREAD_SAFETY_ANALYSIS: the
 * discipline that matters — entry points take the guard, *Impl
 * internals never re-acquire — is documented at the use site and
 * covered by the concurrency lint's scoped-guard rule instead.
 */
class OptionalLockGuard
{
  public:
    /** Empty guard: holds (and will release) nothing. */
    OptionalLockGuard() = default;

    /** Locks @p m if non-null. Invisible to the analysis (above). */
    explicit OptionalLockGuard(Mutex *m) UTLB_NO_THREAD_SAFETY_ANALYSIS
        : mu(m)
    {
        if (mu)
            mu->lock();
    }

    ~OptionalLockGuard() UTLB_NO_THREAD_SAFETY_ANALYSIS
    {
        if (mu)
            mu->unlock();
    }

    OptionalLockGuard(const OptionalLockGuard &) = delete;
    OptionalLockGuard &operator=(const OptionalLockGuard &) = delete;

  private:
    Mutex *mu = nullptr;
};

} // namespace utlb::sim

#endif // UTLB_SIM_MUTEX_HPP
