# Empty compiler generated dependencies file for bench_table8_associativity.
# This may be replaced when dependencies are built.
