# Empty compiler generated dependencies file for bench_ablation_steady_state.
# This may be replaced when dependencies are built.
