#include "core/driver.hpp"

#include "check/audit.hpp"
#include "sim/log.hpp"

namespace utlb::core {

using mem::PinStatus;
using mem::ProcId;
using mem::Vpn;
using sim::fatal;
using sim::panic;

UtlbDriver::UtlbDriver(mem::PhysMemory &host_mem,
                       mem::PinFacility &pin_facility,
                       nic::Sram &board_sram, SharedUtlbCache &cache,
                       const HostCosts &costs)
    : hostMem(&host_mem), pins(&pin_facility), sram(&board_sram),
      nicCache(&cache), hostCosts(&costs)
{
    // "The device driver allocates and pins a 'garbage' page" (§4.2).
    auto frame = hostMem->allocFrame(kKernelPid);
    if (!frame)
        fatal("no physical memory for the driver garbage page");
    garbagePfn = *frame;

    // Size the per-process maps for a plausible process population
    // up front; registration is rare but the maps are probed on the
    // miss path, and a pre-sized table avoids early rehashes.
    tables.reserve(64);
    nicTables.reserve(64);
    spaces.reserve(64);
}

UtlbDriver::~UtlbDriver()
{
    hostMem->freeFrame(garbagePfn);
}

void
UtlbDriver::registerProcess(mem::AddressSpace &space)
{
    sim::LockGuard lk(mu);
    ProcId pid = space.pid();
    if (tables.count(pid))
        panic("process %u registered with the driver twice", pid);
    pins->registerSpace(space);
    spaces.emplace(pid, &space);
    auto it = tables.emplace(
        pid, std::make_unique<HostPageTable>(*hostMem, pid, sram));
    statsGrp.adopt(it.first->second->stats());
}

void
UtlbDriver::unregisterProcess(ProcId pid)
{
    sim::LockGuard lk(mu);
    nicCache->invalidateProcess(pid);
    if (auto it = tables.find(pid); it != tables.end())
        statsGrp.disown(it->second->stats());
    tables.erase(pid);
    nicTables.erase(pid);
    spaces.erase(pid);
    pins->unregisterProcess(pid);
}

// Quiescent-only by contract (class comment): callers either hold mu
// (the ioctl paths call this under the lock) or have stopped every
// worker. That temporal argument is invisible to the static analysis.
bool
UtlbDriver::isRegistered(ProcId pid) const UTLB_NO_THREAD_SAFETY_ANALYSIS
{
    return tables.count(pid) > 0;
}

// Quiescent-only accessor (class comment): hands out a reference that
// outlives any lock scope, so locking here would promise nothing.
HostPageTable &
UtlbDriver::pageTable(ProcId pid) UTLB_NO_THREAD_SAFETY_ANALYSIS
{
    auto it = tables.find(pid);
    if (it == tables.end())
        panic("pageTable of unregistered process %u", pid);
    return *it->second;
}

IoctlResult
UtlbDriver::ioctlPinAndInstall(ProcId pid, Vpn start, std::size_t npages)
{
    IoctlResult res;
    {
        sim::LockGuard lk(mu);
        res = pinAndInstallLocked(pid, start, npages);
    }
    // Latency bookkeeping happens after mu is released (see record).
    return record(res);
}

IoctlResult
UtlbDriver::pinAndInstallLocked(ProcId pid, Vpn start,
                                std::size_t npages)
{
    ++statIoctls;
    IoctlResult res;
    if (!isRegistered(pid)) {
        res.status = PinStatus::UnknownProcess;
        return res;
    }
    if (npages == 0)
        return res;

    PinStatus st = PinStatus::Ok;
    auto frames = pins->pinRange(pid, start, npages, &st);
    if (!frames) {
        res.status = st;
        // A rejected ioctl still costs the syscall entry; charge the
        // one-page pin floor as a conservative model.
        res.cost = hostCosts->pinCost(1);
        return res;
    }

    HostPageTable &table = pageTable(pid);
    for (std::size_t i = 0; i < npages; ++i) {
        if (!table.set(start + i, (*frames)[i])) {
            // Roll back on table-leaf OOM.
            for (std::size_t j = 0; j <= i; ++j) {
                table.clear(start + j);
            }
            for (std::size_t j = 0; j < npages; ++j)
                pins->unpinPage(pid, start + j);
            res.status = PinStatus::OutOfMemory;
            res.cost = hostCosts->pinCost(1);
            return res;
        }
    }

    statPagesPinned += npages;
    res.pagesDone = npages;
    res.cost = hostCosts->pinCost(npages);
    return res;
}

IoctlResult
UtlbDriver::ioctlUnpinAndInvalidate(ProcId pid, Vpn start,
                                    std::size_t npages)
{
    IoctlResult res;
    {
        sim::LockGuard lk(mu);
        res = unpinAndInvalidateLocked(pid, start, npages);
    }
    return record(res);
}

IoctlResult
UtlbDriver::unpinAndInvalidateLocked(ProcId pid, Vpn start,
                                     std::size_t npages)
{
    ++statIoctls;
    IoctlResult res;
    if (!isRegistered(pid)) {
        res.status = PinStatus::UnknownProcess;
        return res;
    }

    HostPageTable &table = pageTable(pid);
    for (std::size_t i = 0; i < npages; ++i) {
        Vpn vpn = start + i;
        if (pins->unpinPage(pid, vpn) != PinStatus::Ok)
            continue;
        if (!pins->isPinned(pid, vpn)) {
            // Last reference gone: the translation must not survive
            // anywhere the NIC could read it.
            table.clear(vpn);
            nicCache->invalidate(pid, vpn);
        }
        ++res.pagesDone;
    }
    statPagesUnpinned += res.pagesDone;
    res.cost = hostCosts->unpinCost(res.pagesDone ? res.pagesDone : 1);
    return res;
}

NicTranslationTable &
UtlbDriver::createNicTable(ProcId pid, std::size_t entries)
{
    sim::LockGuard lk(mu);
    if (!isRegistered(pid))
        panic("createNicTable for unregistered process %u", pid);
    auto [it, inserted] = nicTables.emplace(
        pid, std::make_unique<NicTranslationTable>(*sram, pid, entries,
                                                   garbagePfn));
    if (!inserted)
        panic("NIC table for process %u created twice", pid);
    return *it->second;
}

// Quiescent-only accessor, same contract as pageTable().
NicTranslationTable &
UtlbDriver::nicTable(ProcId pid) UTLB_NO_THREAD_SAFETY_ANALYSIS
{
    auto it = nicTables.find(pid);
    if (it == nicTables.end())
        panic("nicTable of process %u does not exist", pid);
    return *it->second;
}

IoctlResult
UtlbDriver::ioctlPinAtIndex(ProcId pid, Vpn vpn, UtlbIndex index)
{
    IoctlResult res;
    {
        sim::LockGuard lk(mu);
        res = pinAtIndexLocked(pid, vpn, index);
    }
    return record(res);
}

IoctlResult
UtlbDriver::pinAtIndexLocked(ProcId pid, Vpn vpn, UtlbIndex index)
{
    ++statIoctls;
    IoctlResult res;
    if (!isRegistered(pid)) {
        res.status = PinStatus::UnknownProcess;
        return res;
    }

    PinStatus st = PinStatus::Ok;
    auto frame = pins->pinPage(pid, vpn, &st);
    if (!frame) {
        res.status = st;
        res.cost = hostCosts->pinCost(1);
        return res;
    }
    nicTable(pid).install(index, *frame);
    ++statPagesPinned;
    res.pagesDone = 1;
    res.cost = hostCosts->pinCost(1);
    return res;
}

IoctlResult
UtlbDriver::ioctlUnpinIndex(ProcId pid, Vpn vpn, UtlbIndex index)
{
    IoctlResult res;
    {
        sim::LockGuard lk(mu);
        res = unpinIndexLocked(pid, vpn, index);
    }
    return record(res);
}

IoctlResult
UtlbDriver::unpinIndexLocked(ProcId pid, Vpn vpn, UtlbIndex index)
{
    ++statIoctls;
    IoctlResult res;
    if (!isRegistered(pid)) {
        res.status = PinStatus::UnknownProcess;
        return res;
    }
    res.status = pins->unpinPage(pid, vpn);
    if (res.status == PinStatus::Ok) {
        nicTable(pid).invalidate(index);
        ++statPagesUnpinned;
        res.pagesDone = 1;
    }
    res.cost = hostCosts->unpinCost(1);
    return res;
}

// Audits run at quiescence only (no worker in an ioctl), so the
// unlocked sweep over the guarded maps is safe but unprovable here.
void
UtlbDriver::audit(check::AuditReport &report) const
    UTLB_NO_THREAD_SAFETY_ANALYSIS
{
    report.component("driver");
    report.require(hostMem->isAllocated(garbagePfn),
                   "garbage frame %llu is not allocated",
                   static_cast<unsigned long long>(garbagePfn));
    report.require(hostMem->ownerOf(garbagePfn) == kKernelPid,
                   "garbage frame %llu not owned by the kernel",
                   static_cast<unsigned long long>(garbagePfn));
    for (const auto &[pid, space] : spaces) {
        report.require(space->pid() == pid,
                       "space registered under pid %u reports pid %u",
                       pid, space->pid());
        report.require(tables.count(pid) == 1,
                       "registered pid %u has no host page table", pid);
    }
    for (const auto &[pid, table] : tables)
        table->audit(report);
    for (const auto &[pid, table] : nicTables)
        table->audit(report);
    pins->audit(report);
}

} // namespace utlb::core
