/**
 * @file
 * Table 8: overall miss rates in the Shared UTLB-Cache vs cache
 * size and associativity (direct / 2-way / 4-way, all with index
 * offsetting) plus a direct-mapped cache without offsetting
 * ("direct-nohash"), for all seven workloads with infinite host
 * memory and no prefetch.
 *
 * Alongside the modeled miss rates, the harness emits wall-clock
 * `mt` cells into BENCH_table8_associativity.json: for each
 * associativity of the paper's sweep it first replays the warm
 * disjoint workload through a single concurrent worker and dies
 * unless it matches the sequential path bit-for-bit (the
 * golden_equivalence marker), then times a 2-worker steady-state
 * sweep through the seqlock way-search path. UTLB_MT_MS bounds the
 * per-cell budget (default 60 ms).
 */

#include <cstdlib>

#include "bench_common.hpp"
#include "bench_mt_common.hpp"

namespace {

/** The warm disjoint sweep of bench_mt, one cell per paper assoc. */
constexpr bench::MtScenario kMtAssoc[] = {
    {"table8_mt_assoc1", 512, 64, 8192, 1, false, 1},
    {"table8_mt_assoc2", 512, 64, 8192, 1, false, 2},
    {"table8_mt_assoc4", 512, 64, 8192, 1, false, 4},
};

double
mtBudgetMs()
{
    if (const char *e = std::getenv("UTLB_MT_MS")) {
        double v = std::atof(e);
        if (v > 0)
            return v;
    }
    return 60.0;
}

} // namespace

int
main()
{
    using namespace bench;
    using utlb::tlbsim::SimConfig;
    using utlb::tlbsim::simulateUtlb;

    TraceSet traces;
    auto names = workloadNames();

    struct Variant {
        const char *label;
        unsigned assoc;
        bool offset;
    };
    const std::vector<Variant> variants{
        {"direct", 1, true},
        {"2-way", 2, true},
        {"4-way", 4, true},
        {"direct-nohash", 1, false},
    };

    JsonReporter json("table8_associativity");

    utlb::sim::TextTable t(
        "Table 8: overall Shared UTLB-Cache miss rates (misses per "
        "probe; infinite memory, no prefetch)");
    std::vector<std::string> header{"Cache", "Assoc"};
    for (const auto &n : names)
        header.push_back(n);
    t.setHeader(header);

    for (std::size_t entries : kCacheSizes) {
        bool first = true;
        for (const auto &v : variants) {
            SimConfig cfg;
            cfg.cache = {entries, v.assoc, v.offset};
            std::vector<std::string> row{
                first ? sizeLabel(entries) : "", v.label};
            first = false;
            for (const auto &n : names) {
                auto res = simulateUtlb(traces.get(n), cfg);
                row.push_back(rate(res.probeMissRate()));
                json.add({{"workload", n},
                          {"cache", sizeLabel(entries)},
                          {"variant", v.label},
                          {"mode", "modeled"}},
                         {{"miss_rate", res.probeMissRate()}});
            }
            t.addRow(row);
        }
        t.addRule();
    }
    t.print(std::cout);

    // Wall-clock mt cells: the same associativity sweep through the
    // concurrent stack. Golden equivalence gates each cell exactly as
    // in bench_mt.
    const unsigned mtThreads = 2;
    const double ms = mtBudgetMs();
    unsigned cores = std::thread::hardware_concurrency();
    if (cores == 0)
        cores = 1;
    json.setWorkerThreads(mtThreads);
    for (const MtScenario &sc : kMtAssoc) {
        std::string divergence = mtGoldenDivergence(sc);
        if (!divergence.empty())
            utlb::sim::fatal("%s", divergence.c_str());
        MtStack stack(sc, mtThreads, true);
        MtCell cell = runMtCell(sc, stack, mtThreads, ms);
        json.add({{"scenario", sc.name},
                  {"mode", "mt"},
                  {"assoc", std::to_string(sc.assoc)}},
                 {{"golden_equivalence", 1.0},
                  {"assoc", static_cast<double>(sc.assoc)},
                  {"threads", static_cast<double>(mtThreads)},
                  {"pages_per_sec", cell.pagesPerSec()},
                  {"ns_per_page", cell.nsPerPage()},
                  {"modeled_us_per_page", cell.modeledUsPerPage()},
                  {"host_cores", static_cast<double>(cores)},
                  {"oversubscribed",
                   mtThreads > cores ? 1.0 : 0.0}});
    }

    std::cout << "\nPaper shape checks: direct-mapped with offsetting "
                 "is competitive with (often better than) 2-way and "
                 "4-way;\ndropping the offset (direct-nohash) "
                 "inflates miss rates through cross-process "
                 "conflicts.\n";
    return 0;
}
