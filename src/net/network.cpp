#include "net/network.hpp"

#include <algorithm>
#include <utility>

#include "sim/log.hpp"

namespace utlb::net {

using sim::panic;
using sim::Tick;

Network::Network(sim::EventQueue &event_queue, const nic::NicTimings &t,
                 const NetworkConfig &cfg)
    : events(&event_queue), timings(&t), config(cfg), rng(cfg.seed),
      handlers(cfg.nodes), txBusyUntil(cfg.nodes, 0),
      rxBusyUntil(cfg.nodes, 0), nodeDown(cfg.nodes, false)
{
    if (cfg.nodes == 0)
        sim::fatal("network requires at least one node");
}

void
Network::setNodeDown(NodeId node, bool down)
{
    if (node >= handlers.size())
        panic("setNodeDown on nonexistent node %u", node);
    nodeDown[node] = down;
}

bool
Network::isNodeDown(NodeId node) const
{
    return node < nodeDown.size() && nodeDown[node];
}

void
Network::attach(NodeId node, PacketHandler handler)
{
    if (node >= handlers.size())
        panic("attach to nonexistent node %u", node);
    handlers[node] = std::move(handler);
}

void
Network::send(Packet pkt)
{
    NodeId src = pkt.hdr.src;
    NodeId dst = pkt.hdr.dst;
    if (src >= handlers.size() || dst >= handlers.size())
        panic("packet between nonexistent nodes %u -> %u", src, dst);
    ++numSent;

    if (nodeDown[src] || nodeDown[dst]) {
        ++numDropped;
        return;
    }

    bool droppable = config.dropAcks
        || pkt.hdr.type != PacketType::Ack;
    if (config.lossProbability > 0.0 && droppable
        && rng.chance(config.lossProbability)) {
        ++numDropped;
        return;
    }

    Tick now = events->now();
    Tick wire = timings->linkTransferCost(pkt.wireBytes());

    // Serialize on the source uplink...
    Tick tx_start = std::max(now, txBusyUntil[src]);
    Tick tx_done = tx_start + wire;
    txBusyUntil[src] = tx_done;

    // ...cross the switch...
    Tick at_switch = tx_done + timings->switchLatency;

    // ...serialize on the destination downlink.
    Tick rx_start = std::max(at_switch, rxBusyUntil[dst]);
    Tick rx_done = rx_start + wire;
    rxBusyUntil[dst] = rx_done;

    events->schedule(rx_done, [this, dst,
                               pkt = std::move(pkt)]() mutable {
        ++numDelivered;
        numBytes += pkt.wireBytes();
        if (handlers[dst])
            handlers[dst](pkt);
    });
}

} // namespace utlb::net
