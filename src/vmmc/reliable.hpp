/**
 * @file
 * Link-level reliable delivery (§4.1, "Reliable communication that
 * implements a retransmission protocol at data link level (between
 * network interfaces)").
 *
 * Go-back-N between NIC pairs: every non-ack packet carries a
 * per-channel sequence number; the receiver delivers in order and
 * returns cumulative acks; the sender retransmits all unacked
 * packets after a timeout. Duplicates and out-of-order arrivals are
 * dropped (and re-acked) at the link level, so the VMMC layer above
 * sees an in-order, exactly-once packet stream.
 */

#ifndef UTLB_VMMC_RELIABLE_HPP
#define UTLB_VMMC_RELIABLE_HPP

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

#include "net/network.hpp"
#include "net/packet.hpp"
#include "sim/event_queue.hpp"
#include "sim/types.hpp"

namespace utlb::vmmc {

/** Default retransmission timeout. */
inline constexpr sim::Tick kDefaultRetryTimeout = sim::usToTicks(500.0);

/**
 * One node's end of the reliable link protocol, covering all its
 * peer channels.
 */
class ReliableEndpoint
{
  public:
    ReliableEndpoint(net::NodeId self, net::Network &network,
                     sim::EventQueue &event_queue,
                     sim::Tick retry_timeout = kDefaultRetryTimeout);

    ReliableEndpoint(const ReliableEndpoint &) = delete;
    ReliableEndpoint &operator=(const ReliableEndpoint &) = delete;

    /**
     * Send @p pkt reliably: stamps the channel sequence number,
     * records it for retransmission, and transmits.
     */
    void sendReliable(net::Packet pkt);

    /**
     * Feed every arriving packet through here.
     * @return a packet to deliver up-stack (in-order data), or
     *         nullopt (ack, duplicate, or out-of-order).
     */
    std::optional<net::Packet> onPacket(const net::Packet &pkt);

    /**
     * Dynamic node remapping (§4.1): retarget the channel to
     * @p old_peer at @p new_peer. Unacknowledged packets are
     * re-issued to the new peer with fresh sequence numbers, so an
     * in-flight transfer survives a port failover as long as the
     * replacement node holds equivalent receive-buffer state.
     */
    void remapPeer(net::NodeId old_peer, net::NodeId new_peer);

    /** Packets awaiting acknowledgment across all channels. */
    std::size_t unackedPackets() const;

    /** @name Lifetime counters @{ */
    std::uint64_t retransmissions() const { return numRetransmits; }
    std::uint64_t duplicatesDropped() const { return numDuplicates; }
    std::uint64_t outOfOrderDropped() const { return numOutOfOrder; }
    std::uint64_t acksSent() const { return numAcks; }
    std::uint64_t timeouts() const { return numTimeouts; }
    std::uint64_t remaps() const { return numRemaps; }
    /** @} */

  private:
    struct SenderChannel {
        std::uint32_t nextSeq = 0;
        std::uint32_t baseSeq = 0;          //!< oldest unacked
        std::deque<net::Packet> inflight;   //!< baseSeq..nextSeq-1
        bool timerArmed = false;
    };

    struct ReceiverChannel {
        std::uint32_t expectedSeq = 0;
    };

    void armTimer(net::NodeId peer);
    void onTimeout(net::NodeId peer);
    void sendAck(net::NodeId peer, std::uint32_t cumulative);

    net::NodeId selfId;
    net::Network *net;
    sim::EventQueue *events;
    sim::Tick timeout;

    std::unordered_map<net::NodeId, SenderChannel> senders;
    std::unordered_map<net::NodeId, ReceiverChannel> receivers;

    std::uint64_t numRetransmits = 0;
    std::uint64_t numDuplicates = 0;
    std::uint64_t numOutOfOrder = 0;
    std::uint64_t numAcks = 0;
    std::uint64_t numTimeouts = 0;
    std::uint64_t numRemaps = 0;
};

} // namespace utlb::vmmc

#endif // UTLB_VMMC_RELIABLE_HPP
