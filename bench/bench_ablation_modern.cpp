/**
 * @file
 * Ablation: does the UTLB argument still hold 25 years later?
 *
 * The paper's case for UTLB rests on its 1998 cost structure:
 * interrupts at 10 us and page pinning at 27 us dwarfed the ~2 us
 * I/O-bus refill of a host-resident table entry. This ablation
 * reruns the Table 6 comparison under a ModernX86 host profile
 * (MSI-X interrupt ~2 us, get_user_pages fast path ~0.6 us/page,
 * sub-0.1 us user checks) while keeping the workloads identical.
 *
 * Expected outcome: UTLB's *relative* advantage shrinks by an order
 * of magnitude because the costs it avoids got cheap — which is the
 * historical trajectory: its descendant (the registration cache,
 * see bench_ablation_rcache) kept the demand-registration idea but
 * dropped the NIC-managed translation cache machinery.
 */

#include "bench_common.hpp"

int
main()
{
    using namespace bench;
    using utlb::core::HostProfile;
    using utlb::tlbsim::SimConfig;
    using utlb::tlbsim::simulateIntr;
    using utlb::tlbsim::simulateUtlb;

    TraceSet traces;
    const std::vector<std::string> apps{"barnes", "fft", "radix",
                                        "water"};

    utlb::sim::TextTable t(
        "Average lookup cost (us) under 1998 vs modern host costs "
        "(1K-entry cache, infinite memory)");
    t.setHeader({"workload", "1998 UTLB", "1998 Intr", "1998 gain",
                 "modern UTLB", "modern Intr", "modern gain"});

    for (const auto &app : apps) {
        const auto &tr = traces.get(app);
        SimConfig cfg;
        cfg.cache = {1024, 1, true};

        cfg.hostProfile = HostProfile::PentiumIINT;
        auto u98 = simulateUtlb(tr, cfg);
        auto i98 = simulateIntr(tr, cfg);

        cfg.hostProfile = HostProfile::ModernX86;
        auto u20 = simulateUtlb(tr, cfg);
        auto i20 = simulateIntr(tr, cfg);

        auto gain = [](double u, double i) {
            return utlb::sim::TextTable::num(u > 0 ? i / u : 0.0, 2)
                + "x";
        };
        t.addRow({app, rate(u98.avgLookupCostUs()),
                  rate(i98.avgLookupCostUs()),
                  gain(u98.avgLookupCostUs(), i98.avgLookupCostUs()),
                  rate(u20.avgLookupCostUs()),
                  rate(i20.avgLookupCostUs()),
                  gain(u20.avgLookupCostUs(),
                       i20.avgLookupCostUs())});
    }
    t.print(std::cout);

    std::cout << "\nReading the table: on 1998 hardware UTLB wins "
                 "1.5-3.7x by dodging 10 us interrupts and 27 us "
                 "pins; on a modern\nhost those costs are ~2 us and "
                 "~0.6 us, so the two mechanisms nearly converge — "
                 "the NIC-side translation cache\n(0.8 us hit, ~2 us "
                 "refill, unchanged: it is bound by the I/O bus) now "
                 "dominates both. This is why modern\nstacks kept "
                 "demand registration (the rcache) and moved "
                 "translation into NIC hardware MMUs.\n";
    return 0;
}
