file(REMOVE_RECURSE
  "../bench/bench_ablation_offsetting"
  "../bench/bench_ablation_offsetting.pdb"
  "CMakeFiles/bench_ablation_offsetting.dir/bench_ablation_offsetting.cpp.o"
  "CMakeFiles/bench_ablation_offsetting.dir/bench_ablation_offsetting.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_offsetting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
