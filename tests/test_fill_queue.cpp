/**
 * @file
 * Asynchronous miss pipeline suite: the bounded MPSC FillQueue, the
 * FillPipeline lifecycle, the UserUtlb out-of-order miss path, and
 * the miss-service bookkeeping fixes that rode along with it.
 *
 * The pipeline promises:
 *
 *  1. Drain semantics — stop() loses no accepted fill and installs
 *     nothing after it returns; a full or stopped queue degrades the
 *     poster to the old synchronous path, never wedges it.
 *  2. Consistency — translateRange() with a pipeline attached
 *     returns the same ok/pageAddrs as without one (modeled costs
 *     differ by design: DMA ticks run on the modeled fill engines
 *     and only residual stalls are charged).
 *  3. Safety — fills racing pin churn and stripe invalidates leave
 *     every structure coherent (run under UTLB_SANITIZE=thread).
 *
 * The serviceMiss tests pin the fault-repair splice: a wide fetch
 * whose neighbours are valid around an invalid first entry installs
 * and counts each transferred entry exactly once.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "check/audit.hpp"
#include "core/driver.hpp"
#include "core/fill_pipeline.hpp"
#include "core/shared_cache.hpp"
#include "core/utlb.hpp"
#include "mem/address_space.hpp"
#include "mem/phys_memory.hpp"
#include "mem/pinning.hpp"
#include "nic/sram.hpp"
#include "nic/timing.hpp"
#include "sim/fill_queue.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"

namespace {

using namespace utlb::core;
using utlb::check::AuditReport;
using utlb::mem::Vpn;
using utlb::sim::FillQueue;
using utlb::sim::Rng;

// ---------------------------------------------------------------------
// FillQueue: bounded MPSC semantics
// ---------------------------------------------------------------------

TEST(FillQueueTest, FifoOrderAndFullBackpressure)
{
    FillQueue<int> q(4);
    EXPECT_EQ(q.capacity(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(q.tryPush(i));
    // Full ring: the producer must be told to fall back, not block.
    EXPECT_FALSE(q.tryPush(99));
    EXPECT_EQ(q.depth(), 4u);

    std::vector<int> out;
    EXPECT_EQ(q.popBatch(out, 2), 2u);
    EXPECT_EQ(out, (std::vector<int>{0, 1}));
    // Space freed: pushes are accepted again, FIFO continues.
    EXPECT_TRUE(q.tryPush(4));
    EXPECT_EQ(q.popBatch(out, 16), 3u);
    EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(FillQueueTest, StopDrainsAcceptedItems)
{
    FillQueue<int> q(8);
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(q.tryPush(i));
    q.stop();
    EXPECT_TRUE(q.isStopped());
    // Stopped: nothing new is accepted...
    EXPECT_FALSE(q.tryPush(99));
    // ...but everything already accepted drains in order, then the
    // consumer sees the 0 that means "shutdown, fully drained".
    std::vector<int> out;
    EXPECT_EQ(q.popBatch(out, 2), 2u);
    EXPECT_EQ(q.popBatch(out, 2), 1u);
    EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(q.popBatch(out, 2), 0u);
    // stop() is idempotent.
    q.stop();
    EXPECT_EQ(q.popBatch(out, 2), 0u);
}

TEST(FillQueueTest, ConsumerBlocksUntilPushOrStop)
{
    FillQueue<int> q(8);
    std::atomic<int> got{-1};
    std::thread consumer([&q, &got] {
        std::vector<int> out;
        while (q.popBatch(out, 4) != 0) {
            got.store(out.back(), std::memory_order_release);
            out.clear();
        }
    });
    EXPECT_TRUE(q.tryPush(7));
    while (got.load(std::memory_order_acquire) != 7)
        std::this_thread::yield();
    q.stop();
    consumer.join();
    EXPECT_EQ(got.load(), 7);
}

TEST(FillQueueTest, MultiProducerConservation)
{
    // 4 producers tag items with (producer << 16 | seq); the drain
    // must hand back every accepted item exactly once, and each
    // producer's items in its own push order (FIFO per producer).
    FillQueue<int> q(16);
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 500;
    std::atomic<int> accepted{0};
    std::atomic<bool> done{false};
    std::vector<int> drained;
    std::thread consumer([&] {
        std::vector<int> out;
        for (;;) {
            std::size_t n = q.popBatch(out, 8);
            if (n == 0)
                break;
            drained.insert(drained.end(), out.begin(), out.end());
            out.clear();
        }
        done.store(true, std::memory_order_release);
    });
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&q, &accepted, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                if (q.tryPush((p << 16) | i))
                    accepted.fetch_add(1,
                                       std::memory_order_relaxed);
            }
        });
    }
    for (auto &t : producers)
        t.join();
    q.stop();
    consumer.join();
    ASSERT_TRUE(done.load(std::memory_order_acquire));
    EXPECT_EQ(drained.size(),
              static_cast<std::size_t>(accepted.load()));
    int lastSeq[kProducers];
    for (int p = 0; p < kProducers; ++p)
        lastSeq[p] = -1;
    for (int item : drained) {
        int p = item >> 16;
        int seq = item & 0xffff;
        ASSERT_LT(p, kProducers);
        EXPECT_GT(seq, lastSeq[p]) << "producer " << p;
        lastSeq[p] = seq;
    }
}

// ---------------------------------------------------------------------
// Shared harness: one registered process over the full stack
// ---------------------------------------------------------------------

struct Stack {
    utlb::mem::PhysMemory phys;
    utlb::mem::PinFacility pins;
    utlb::nic::Sram sram;
    utlb::nic::NicTimings timings;
    HostCosts costs;
    SharedUtlbCache cache;
    UtlbDriver driver;
    std::vector<std::unique_ptr<utlb::mem::AddressSpace>> spaces;

    explicit Stack(std::size_t entries = 1024,
                   std::size_t nprocs = 1)
        : phys(8192), sram(4u << 20),
          costs(HostProfile::PentiumIINT),
          cache(CacheConfig{entries, 1, true}, timings, &sram),
          driver(phys, pins, sram, cache, costs)
    {
        for (std::size_t p = 1; p <= nprocs; ++p) {
            spaces.push_back(
                std::make_unique<utlb::mem::AddressSpace>(p, phys));
            driver.registerProcess(*spaces.back());
        }
    }

    std::unique_ptr<UserUtlb>
    makeView(utlb::mem::ProcId pid, const UtlbConfig &cfg)
    {
        return std::make_unique<UserUtlb>(driver, cache, timings,
                                          pid, cfg);
    }
};

// ---------------------------------------------------------------------
// FillPipeline lifecycle
// ---------------------------------------------------------------------

TEST(FillPipelineTest, PostedFillsCompleteAndInstall)
{
    Stack st;
    // Pre-pin so the fills take the fast (non-fault) service path.
    ASSERT_EQ(st.driver.ioctlPinAndInstall(1, 0, 32).status,
              utlb::mem::PinStatus::Ok);
    FillPipeline fp(st.driver, st.cache, st.timings);
    ASSERT_TRUE(fp.accepting());

    constexpr std::size_t kFills = 8;
    FillTicket tickets[kFills];
    for (std::size_t i = 0; i < kFills; ++i)
        ASSERT_TRUE(fp.post(tickets[i], 1, i * 4, 4));
    for (std::size_t i = 0; i < kFills; ++i) {
        fp.waitDone(tickets[i]);
        EXPECT_TRUE(tickets[i].result.ok) << "fill " << i;
        EXPECT_FALSE(tickets[i].result.fault) << "fill " << i;
        EXPECT_GT(tickets[i].result.cost, 0u) << "fill " << i;
    }
    fp.stop();
    EXPECT_FALSE(fp.accepting());
    EXPECT_EQ(fp.fillsCompleted(), kFills);
    EXPECT_GT(fp.overlappedTicks(), 0u);
    // stop() is idempotent and nothing is accepted afterwards.
    fp.stop();
    FillTicket late;
    EXPECT_FALSE(fp.post(late, 1, 0, 4));
    EXPECT_EQ(fp.fillsCompleted(), kFills);

    // The fills' installs are visible: every posted vpn now hits.
    for (std::size_t i = 0; i < kFills; ++i)
        EXPECT_TRUE(st.cache.lookup(1, i * 4).hit) << "vpn " << i * 4;

    AuditReport report;
    st.cache.audit(report);
    st.driver.audit(report);
    EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(FillPipelineTest, StopDrainsEveryAcceptedTicket)
{
    Stack st;
    ASSERT_EQ(st.driver.ioctlPinAndInstall(1, 0, 64).status,
              utlb::mem::PinStatus::Ok);
    FillPipeline fp(st.driver, st.cache, st.timings);

    // Race stop() against a burst of accepted posts: drain semantics
    // say every accepted ticket still completes — no lost fills, no
    // ticket left pending after stop() returns.
    constexpr std::size_t kBurst = 32;
    FillTicket tickets[kBurst];
    std::size_t posted = 0;
    for (std::size_t i = 0; i < kBurst; ++i) {
        if (fp.post(tickets[i], 1, i, 1))
            ++posted;
        else
            break;
    }
    fp.stop();
    for (std::size_t i = 0; i < posted; ++i) {
        EXPECT_TRUE(
            tickets[i].done.load(std::memory_order_acquire))
            << "ticket " << i << " lost by stop()";
        EXPECT_TRUE(tickets[i].result.ok);
    }
    EXPECT_EQ(fp.fillsCompleted(), posted);
}

TEST(FillPipelineTest, FaultFillRepairsThroughDriver)
{
    Stack st;
    FillPipeline fp(st.driver, st.cache, st.timings);
    // Nothing pinned: the fill must take the host-interrupt repair
    // path through the driver mutex and still produce a real frame.
    FillTicket t;
    ASSERT_TRUE(fp.post(t, 1, 100, 8));
    fp.waitDone(t);
    EXPECT_TRUE(t.result.fault);
    EXPECT_TRUE(t.result.ok);
    fp.stop();
    EXPECT_TRUE(st.cache.lookup(1, 100).hit);
}

// ---------------------------------------------------------------------
// UserUtlb asynchronous miss path
// ---------------------------------------------------------------------

/** Counter value by name from a UserUtlb's stats subtree. */
std::uint64_t
counterValue(UserUtlb &u, const char *name)
{
    const auto *stat = u.stats().find(name);
    EXPECT_NE(stat, nullptr) << name;
    return stat ? static_cast<const utlb::sim::Counter *>(stat)
                      ->value()
                : 0;
}

TEST(AsyncMissPath, MatchesSyncResults)
{
    // Same randomized workload through a concurrent-mode stack with
    // and without the pipeline: translation results (ok, pageAddrs)
    // must be identical; modeled costs legitimately differ.
    UtlbConfig cfg;
    cfg.concurrent = true;
    cfg.prefetchEntries = 8;

    Stack syncSt(256), asyncSt(256);
    auto syncView = syncSt.makeView(1, cfg);
    auto asyncView = asyncSt.makeView(1, cfg);
    FillPipeline fp(asyncSt.driver, asyncSt.cache, asyncSt.timings);
    asyncView->attachFillPipeline(&fp);

    Rng rng(0xf111ULL ^ 0xabcdULL);
    constexpr std::size_t kBufPages = 512;
    for (int call = 0; call < 250; ++call) {
        Vpn startPage = rng.below(kBufPages);
        std::size_t npages = 1 + rng.below(96);
        utlb::mem::VirtAddr va = startPage * utlb::mem::kPageSize;
        std::size_t nbytes = npages * utlb::mem::kPageSize;
        Translation a = syncView->translateRange(va, nbytes);
        Translation b = asyncView->translateRange(va, nbytes);
        ASSERT_EQ(a.ok, b.ok) << "call " << call;
        ASSERT_EQ(a.pageAddrs, b.pageAddrs) << "call " << call;
    }
    EXPECT_GT(counterValue(*asyncView, "async_fills"), 0u);

    asyncView->attachFillPipeline(nullptr);
    fp.stop();
    EXPECT_GT(fp.fillsCompleted(), 0u);

    // Fold the worker's buffered shard deltas before auditing the
    // cache's counter taxonomy (fp.stop() already folded the fill
    // thread's).
    asyncView->flushShardStats();
    AuditReport report;
    asyncSt.cache.audit(report);
    asyncSt.driver.audit(report);
    asyncView->pinManager().audit(report);
    EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(AsyncMissPath, ColdWindowPostsCoalescesAndCounts)
{
    // A cold 64-page window with prefetch 8 posts exactly one fill
    // per 8-page stride (the strides are disjoint, so each stride's
    // first probe always misses) and never falls back: the
    // outstanding window is never exhausted. The other 56 pages ride
    // the posted fills — as coalesced waiters, or as plain run hits
    // when the fill thread wins the race and installs first.
    UtlbConfig cfg;
    cfg.concurrent = true;
    cfg.prefetchEntries = 8;
    Stack st;
    auto view = st.makeView(1, cfg);
    FillPipeline fp(st.driver, st.cache, st.timings);
    view->attachFillPipeline(&fp);

    Translation t =
        view->translateRange(0, 64 * utlb::mem::kPageSize);
    ASSERT_TRUE(t.ok);
    EXPECT_EQ(t.pageAddrs.size(), 64u);
    EXPECT_EQ(counterValue(*view, "async_fills"), 8u);
    EXPECT_LE(counterValue(*view, "async_coalesced"), 56u);
    EXPECT_EQ(counterValue(*view, "async_sync_fallbacks"), 0u);
    EXPECT_GT(counterValue(*view, "async_hidden_ticks"), 0u);

    view->attachFillPipeline(nullptr);
    fp.stop();
}

TEST(AsyncMissPath, OutstandingWindowExhaustionFallsBackSync)
{
    // prefetch 1 means no coalescing: a cold 64-page window has 64
    // misses but only kMaxOutstandingFills=8 slots, so the rest must
    // be serviced synchronously in place.
    UtlbConfig cfg;
    cfg.concurrent = true;
    cfg.prefetchEntries = 1;
    Stack st;
    auto view = st.makeView(1, cfg);
    FillPipeline fp(st.driver, st.cache, st.timings);
    view->attachFillPipeline(&fp);

    Translation t =
        view->translateRange(0, 64 * utlb::mem::kPageSize);
    ASSERT_TRUE(t.ok);
    EXPECT_EQ(counterValue(*view, "async_fills"), 8u);
    EXPECT_EQ(counterValue(*view, "async_coalesced"), 0u);
    EXPECT_EQ(counterValue(*view, "async_sync_fallbacks"), 56u);

    view->attachFillPipeline(nullptr);
    fp.stop();
}

TEST(AsyncMissPath, StoppedPipelineDegradesToSync)
{
    // A stopped queue fails every post: translateRange must still
    // produce correct results, all through the fallback path.
    UtlbConfig cfg;
    cfg.concurrent = true;
    cfg.prefetchEntries = 8;
    Stack st;
    auto view = st.makeView(1, cfg);
    FillPipeline fp(st.driver, st.cache, st.timings);
    fp.stop();
    view->attachFillPipeline(&fp);

    Translation t =
        view->translateRange(0, 64 * utlb::mem::kPageSize);
    ASSERT_TRUE(t.ok);
    EXPECT_EQ(t.pageAddrs.size(), 64u);
    EXPECT_EQ(counterValue(*view, "async_fills"), 0u);
    EXPECT_GT(counterValue(*view, "async_sync_fallbacks"), 0u);
    view->attachFillPipeline(nullptr);
}

TEST(AsyncMissPath, FillsVsPinChurnStressAuditsClean)
{
    // Two workers (own pids, own pin managers under a tight pin
    // budget) drive async translateRange loops through one shared
    // pipeline: queue posts race each other, fill-thread installs
    // race the budget-forced unpins' stripe invalidates, and the
    // driver mutex arbitrates fault repair against pin churn. Run
    // under UTLB_SANITIZE=thread to make this a race detector.
    UtlbConfig cfg;
    cfg.concurrent = true;
    cfg.prefetchEntries = 8;
    cfg.pin.memLimitPages = 96;

    Stack st(512, 2);
    auto v1 = st.makeView(1, cfg);
    auto v2 = st.makeView(2, cfg);
    FillPipeline fp(st.driver, st.cache, st.timings);
    v1->attachFillPipeline(&fp);
    v2->attachFillPipeline(&fp);

    auto work = [](UserUtlb &view, std::uint64_t seed) {
        Rng rng(seed);
        for (int it = 0; it < 200; ++it) {
            Vpn start = rng.below(512);
            std::size_t n = 1 + rng.below(32);
            view.translateRange(start * utlb::mem::kPageSize,
                                n * utlb::mem::kPageSize);
        }
    };
    std::thread w1([&] { work(*v1, 0x111); });
    std::thread w2([&] { work(*v2, 0x222); });
    w1.join();
    w2.join();

    v1->attachFillPipeline(nullptr);
    v2->attachFillPipeline(nullptr);
    fp.stop();

    v1->flushShardStats();
    v2->flushShardStats();
    AuditReport report;
    st.cache.audit(report);
    st.driver.audit(report);
    v1->pinManager().audit(report);
    v2->pinManager().audit(report);
    EXPECT_TRUE(report.ok()) << report.summary();
}

// ---------------------------------------------------------------------
// serviceMiss fault repair: each transferred entry counted once
// ---------------------------------------------------------------------

TEST(ServiceMissRepair, SpliceKeepsNeighboursAndCountsOnce)
{
    // Wide fetch around an invalid first entry: vpns 101..107 are
    // pinned, 100 is not. The repair must splice the single repaired
    // entry into the already-transferred run — installing all 8
    // entries, counting 7 prefetch installs, and charging one 1-wide
    // re-fetch on top of the original 8-wide DMA. The old fallback
    // re-issued the full fetch and double-counted the neighbours.
    Stack st, twin;
    ASSERT_EQ(st.driver.ioctlPinAndInstall(1, 101, 7).status,
              utlb::mem::PinStatus::Ok);
    ASSERT_EQ(twin.driver.ioctlPinAndInstall(1, 101, 7).status,
              utlb::mem::PinStatus::Ok);
    // The twin measures what the in-service repair ioctl will cost.
    IoctlResult repairIo = twin.driver.ioctlPinAndInstall(1, 100, 1);
    ASSERT_EQ(repairIo.status, utlb::mem::PinStatus::Ok);

    std::vector<std::optional<utlb::mem::Pfn>> runBuf, repairBuf;
    MissOutcome mo =
        serviceMiss(st.driver, st.cache, st.timings, 1, 100, 8,
                    runBuf, repairBuf, nullptr, nullptr);

    EXPECT_TRUE(mo.fault);
    EXPECT_TRUE(mo.ok);
    EXPECT_EQ(mo.fetched, 8u);
    EXPECT_EQ(mo.prefetchInstalls, 7u);
    EXPECT_EQ(mo.cost,
              st.timings.interruptCost + repairIo.cost
                  + st.timings.entryFetchCost(1)
                  + st.timings.missHandleCost(8));
    // The repaired demand entry matches the host table.
    auto entry = st.driver.pageTable(1).readRun(100, 1);
    ASSERT_FALSE(entry.empty());
    ASSERT_TRUE(entry[0].has_value());
    EXPECT_EQ(mo.pfn, *entry[0]);
    // Conservation: every entry of the run is installed exactly once
    // and the structures still agree.
    for (Vpn v = 100; v < 108; ++v)
        EXPECT_TRUE(st.cache.lookup(1, v).hit) << "vpn " << v;
    AuditReport report;
    st.cache.audit(report);
    st.driver.audit(report);
    EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(ServiceMissRepair, EmptyRunStillChargesSingleFetch)
{
    // No leaf table at all: the repair provides the only entry, so
    // the service fetches exactly one entry and installs exactly one.
    Stack st, twin;
    IoctlResult repairIo =
        twin.driver.ioctlPinAndInstall(1, 5000, 1);
    ASSERT_EQ(repairIo.status, utlb::mem::PinStatus::Ok);

    std::vector<std::optional<utlb::mem::Pfn>> runBuf, repairBuf;
    MissOutcome mo =
        serviceMiss(st.driver, st.cache, st.timings, 1, 5000, 8,
                    runBuf, repairBuf, nullptr, nullptr);

    EXPECT_TRUE(mo.fault);
    EXPECT_TRUE(mo.ok);
    EXPECT_EQ(mo.fetched, 1u);
    EXPECT_EQ(mo.prefetchInstalls, 0u);
    EXPECT_EQ(mo.cost,
              st.timings.interruptCost + repairIo.cost
                  + st.timings.missHandleCost(1));
}

} // namespace
