/**
 * @file
 * Tests for the trace layer: record measurement, serialization, and
 * the synthetic workload generators' calibration against Table 3.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "trace/record.hpp"
#include "trace/trace_io.hpp"
#include "trace/workloads.hpp"

namespace {

using namespace utlb::trace;
using utlb::mem::addrOf;
using utlb::mem::kPageSize;
using utlb::mem::pageOf;

TEST(TraceMeasure, CountsDistinctPagesPerProcess)
{
    Trace t;
    t.push_back({0, 1, TraceOp::Send, addrOf(10), 4096});
    t.push_back({1, 1, TraceOp::Send, addrOf(10), 4096});
    t.push_back({2, 2, TraceOp::Send, addrOf(10), 4096});  // other pid
    t.push_back({3, 1, TraceOp::Fetch, addrOf(20), 8192});
    auto shape = measure(t);
    EXPECT_EQ(shape.lookups, 4u);
    EXPECT_EQ(shape.distinctPages, 4u);  // (1,10) (2,10) (1,20) (1,21)
    EXPECT_EQ(shape.processes, 2u);
    EXPECT_DOUBLE_EQ(shape.pagesPerLookup, 5.0 / 4.0);
}

TEST(TraceIo, RoundTripsThroughText)
{
    Trace t;
    t.push_back({0, 3, TraceOp::Send, 0x123456000ull, 4096});
    t.push_back({1, 4, TraceOp::Fetch, 0xabc000ull, 123});
    std::stringstream ss;
    writeTrace(t, ss);
    auto back = readTrace(ss);
    ASSERT_TRUE(back.has_value());
    ASSERT_EQ(back->size(), 2u);
    EXPECT_EQ((*back)[0].va, t[0].va);
    EXPECT_EQ((*back)[0].op, TraceOp::Send);
    EXPECT_EQ((*back)[1].op, TraceOp::Fetch);
    EXPECT_EQ((*back)[1].nbytes, 123u);
    EXPECT_EQ((*back)[1].pid, 4u);
}

TEST(TraceIo, RejectsGarbage)
{
    std::stringstream ss("not a trace\n1 2 3\n");
    EXPECT_FALSE(readTrace(ss).has_value());
    std::stringstream ss2("# utlb-trace v1\n0 1 Q 1000 64\n");
    EXPECT_FALSE(readTrace(ss2).has_value());
}

TEST(Workloads, TableHasSevenApps)
{
    EXPECT_EQ(allWorkloads().size(), 7u);
    EXPECT_EQ(workloadByName("fft").footprintPages, 10803u);
    EXPECT_EQ(workloadByName("water").lookups, 8488u);
}

/** Calibration: every generator hits Table 3 within tolerance. */
class WorkloadCalibration
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(WorkloadCalibration, MatchesTable3Targets)
{
    const auto &info = workloadByName(GetParam());
    auto trace = generateTrace(GetParam());
    auto shape = measure(trace);

    // Lookups within 0.5%, footprint within 2%.
    EXPECT_NEAR(static_cast<double>(shape.lookups),
                static_cast<double>(info.lookups),
                0.005 * static_cast<double>(info.lookups));
    EXPECT_NEAR(static_cast<double>(shape.distinctPages),
                static_cast<double>(info.footprintPages),
                0.02 * static_cast<double>(info.footprintPages));
}

TEST_P(WorkloadCalibration, HasFiveInterleavedProcesses)
{
    auto trace = generateTrace(GetParam());
    auto shape = measure(trace);
    EXPECT_EQ(shape.processes, 5u);  // 4 app + 1 protocol

    // Interleaved, not concatenated: every 1000-record window must
    // contain several distinct pids.
    for (std::size_t start = 0; start + 1000 <= trace.size();
         start += 1000) {
        std::set<utlb::mem::ProcId> pids;
        for (std::size_t i = start; i < start + 1000; ++i)
            pids.insert(trace[i].pid);
        EXPECT_GE(pids.size(), 4u) << "window at " << start;
    }
}

TEST_P(WorkloadCalibration, SequenceNumbersAreSerialized)
{
    auto trace = generateTrace(GetParam());
    for (std::size_t i = 0; i < trace.size(); ++i)
        ASSERT_EQ(trace[i].seq, i);
}

TEST_P(WorkloadCalibration, DeterministicPerSeed)
{
    auto a = generateTrace(GetParam(), 7);
    auto b = generateTrace(GetParam(), 7);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].va, b[i].va);
        ASSERT_EQ(a[i].pid, b[i].pid);
    }
}

TEST_P(WorkloadCalibration, RecordsAreWellFormed)
{
    auto trace = generateTrace(GetParam());
    for (const auto &rec : trace) {
        ASSERT_LE(rec.pid, kProtocolPid);
        ASSERT_GT(rec.nbytes, 0u);
        ASSERT_LE(rec.nbytes, 8u * kPageSize);
        ASSERT_EQ(rec.va % kPageSize, 0u);  // page-aligned buffers
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadCalibration,
    ::testing::Values("fft", "lu", "barnes", "radix", "raytrace",
                      "volrend", "water"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        return std::string(info.param);
    });

TEST(Workloads, UnknownNameDies)
{
    EXPECT_DEATH(
        {
            workloadByName("doom");
        },
        "unknown workload");
}

} // namespace

namespace {

using utlb::trace::generateSynthetic;
using utlb::trace::SyntheticSpec;

TEST(Synthetic, UniformCoversMostPagesRandomly)
{
    SyntheticSpec spec;
    spec.processes = 2;
    spec.pages = 64;
    spec.lookups = 4000;
    auto t = generateSynthetic("uniform", spec, 3);
    auto shape = measure(t);
    EXPECT_EQ(shape.lookups, 8000u);
    EXPECT_EQ(shape.processes, 2u);
    // 4000 uniform draws over 64 pages: all pages touched w.h.p.
    EXPECT_EQ(shape.distinctPages, 128u);
}

TEST(Synthetic, StreamNeverRevisits)
{
    SyntheticSpec spec;
    spec.processes = 3;
    spec.lookups = 500;
    auto t = generateSynthetic("stream", spec, 3);
    auto shape = measure(t);
    EXPECT_EQ(shape.distinctPages, shape.lookups);
    EXPECT_EQ(shape.lookups, 1500u);
}

TEST(Synthetic, HotColdConcentratesAccesses)
{
    SyntheticSpec spec;
    spec.processes = 1;
    spec.pages = 4096;
    spec.hotPages = 16;
    spec.hotFraction = 0.95;
    spec.lookups = 10000;
    auto t = generateSynthetic("hotcold", spec, 3);
    // Count accesses landing in the hot set.
    std::size_t hot = 0;
    for (const auto &rec : t) {
        auto vpn = pageOf(rec.va) - ((utlb::mem::Vpn{0} + 1) << 20);
        hot += (vpn < 16);
    }
    double frac = static_cast<double>(hot)
        / static_cast<double>(t.size());
    EXPECT_NEAR(frac, 0.95, 0.02);
}

TEST(Synthetic, UnknownKindDies)
{
    EXPECT_DEATH(
        {
            generateSynthetic("nope", SyntheticSpec{});
        },
        "unknown synthetic");
}

} // namespace
