/**
 * @file
 * Parallel miss-service suite: the fill-thread pool, the sharded
 * driver, and the cross-window outstanding-fill model.
 *
 * The three promises under test:
 *
 *  1. Pool semantics — a fill pool of any size drains every accepted
 *     ticket exactly once (stripe-residue routing keeps each stripe
 *     on one thread), and the stress loops are clean under
 *     UTLB_SANITIZE=thread at pool sizes 1, 2, and 4.
 *  2. Shard transparency — the sharded driver is semantically
 *     invisible: a single-threaded workload produces identical
 *     translations at any shard count, identical stats dumps between
 *     same-shard-count runs, and merge-on-read stats whose integer
 *     fields (counters, sample counts, buckets, overflow) match the
 *     monolithic driver exactly; only float summaries (histogram
 *     means) may differ in the last bits from merge association
 *     order.
 *  3. Carry model — asyncCarryFills changes only modeled cost
 *     accounting: translations are identical with the flag on and
 *     off, and the carry run actually carries fills across windows
 *     (async_carried_fills > 0) while the off run charges every
 *     residual at its own window edge.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "check/audit.hpp"
#include "core/driver.hpp"
#include "core/fill_pipeline.hpp"
#include "core/shared_cache.hpp"
#include "core/utlb.hpp"
#include "mem/address_space.hpp"
#include "mem/phys_memory.hpp"
#include "mem/pinning.hpp"
#include "nic/sram.hpp"
#include "nic/timing.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"

namespace {

using namespace utlb::core;
using utlb::check::AuditReport;
using utlb::mem::Vpn;
using utlb::sim::Rng;

/** One registered-process stack with a configurable driver. */
struct Stack {
    utlb::mem::PhysMemory phys;
    utlb::mem::PinFacility pins;
    utlb::nic::Sram sram;
    utlb::nic::NicTimings timings;
    HostCosts costs;
    SharedUtlbCache cache;
    UtlbDriver driver;
    std::vector<std::unique_ptr<utlb::mem::AddressSpace>> spaces;

    explicit Stack(std::size_t entries = 1024, std::size_t nprocs = 1,
                   unsigned shards = 1)
        : phys(16384), sram(4u << 20),
          costs(HostProfile::PentiumIINT),
          cache(CacheConfig{entries, 1, true}, timings, &sram),
          driver(phys, pins, sram, cache, costs, shards)
    {
        for (std::size_t p = 1; p <= nprocs; ++p) {
            spaces.push_back(
                std::make_unique<utlb::mem::AddressSpace>(p, phys));
            driver.registerProcess(*spaces.back());
        }
    }

    std::unique_ptr<UserUtlb>
    makeView(utlb::mem::ProcId pid, const UtlbConfig &cfg)
    {
        return std::make_unique<UserUtlb>(driver, cache, timings,
                                          pid, cfg);
    }
};

/** Counter value by name from any stats subtree. */
std::uint64_t
counterValue(const utlb::sim::StatGroup &grp, const char *name)
{
    const auto *stat = grp.find(name);
    EXPECT_NE(stat, nullptr) << name;
    return stat ? static_cast<const utlb::sim::Counter *>(stat)
                      ->value()
                : 0;
}

// ---------------------------------------------------------------------
// Fill-thread pool
// ---------------------------------------------------------------------

TEST(FillPool, EveryPoolSizeDrainsEveryTicket)
{
    // Direct posts across a spread of stripes at pool sizes 1, 2,
    // and 4: routing by stripe residue must hand each ticket to the
    // thread owning its stripe (the drain loop asserts ownership),
    // every ticket completes, and pool size never changes what gets
    // installed.
    for (std::size_t pool : {std::size_t{1}, std::size_t{2},
                             std::size_t{4}}) {
        SCOPED_TRACE("pool " + std::to_string(pool));
        Stack st;
        ASSERT_EQ(st.driver.ioctlPinAndInstall(1, 0, 512).status,
                  utlb::mem::PinStatus::Ok);
        FillPipeline fp(st.driver, st.cache, st.timings, 64, pool);
        EXPECT_EQ(fp.poolSize(), pool);

        constexpr std::size_t kFills = 64;
        FillTicket tickets[kFills];
        for (std::size_t i = 0; i < kFills; ++i)
            ASSERT_TRUE(fp.post(tickets[i], 1, i * 8, 8)) << i;
        for (std::size_t i = 0; i < kFills; ++i) {
            fp.waitDone(tickets[i]);
            EXPECT_TRUE(tickets[i].result.ok) << "fill " << i;
        }
        fp.stop();
        EXPECT_EQ(fp.fillsCompleted(), kFills);
        EXPECT_EQ(counterValue(fp.stats(), "fills_posted"), kFills);
        for (std::size_t i = 0; i < kFills; ++i)
            EXPECT_TRUE(st.cache.lookup(1, i * 8).hit)
                << "vpn " << i * 8;

        AuditReport report;
        st.cache.audit(report);
        st.driver.audit(report);
        EXPECT_TRUE(report.ok()) << report.summary();
    }
}

TEST(FillPool, PinChurnStressAuditsCleanAtEveryPoolSize)
{
    // The FillsVsPinChurnStress shape from the single-thread pipeline
    // suite, swept over pool sizes: two workers under tight pin
    // budgets drive async translateRange loops, so queue posts race
    // each other, multiple fill threads install into disjoint stripe
    // sets, and budget-forced unpins invalidate under the fills'
    // feet. Run under UTLB_SANITIZE=thread to make this a race
    // detector for the pool's ownership discipline.
    for (std::size_t pool : {std::size_t{1}, std::size_t{2},
                             std::size_t{4}}) {
        SCOPED_TRACE("pool " + std::to_string(pool));
        UtlbConfig cfg;
        cfg.concurrent = true;
        cfg.prefetchEntries = 8;
        cfg.pin.memLimitPages = 96;

        Stack st(512, 2);
        auto v1 = st.makeView(1, cfg);
        auto v2 = st.makeView(2, cfg);
        FillPipeline fp(st.driver, st.cache, st.timings, 64, pool);
        v1->attachFillPipeline(&fp);
        v2->attachFillPipeline(&fp);

        auto work = [](UserUtlb &view, std::uint64_t seed) {
            Rng rng(seed);
            for (int it = 0; it < 150; ++it) {
                Vpn start = rng.below(512);
                std::size_t n = 1 + rng.below(32);
                view.translateRange(start * utlb::mem::kPageSize,
                                    n * utlb::mem::kPageSize);
            }
        };
        std::thread w1([&] { work(*v1, 0x9001 + pool); });
        std::thread w2([&] { work(*v2, 0x9002 + pool); });
        w1.join();
        w2.join();

        v1->attachFillPipeline(nullptr);
        v2->attachFillPipeline(nullptr);
        fp.stop();
        // Drain conservation: every accepted post was serviced.
        EXPECT_EQ(fp.fillsCompleted(),
                  counterValue(fp.stats(), "fills_posted"));

        v1->flushShardStats();
        v2->flushShardStats();
        AuditReport report;
        st.cache.audit(report);
        st.driver.audit(report);
        v1->pinManager().audit(report);
        v2->pinManager().audit(report);
        EXPECT_TRUE(report.ok()) << report.summary();
    }
}

// ---------------------------------------------------------------------
// Sharded driver: golden equivalence
// ---------------------------------------------------------------------

/** Serialize a stack's driver + cache + pin-facility stats. */
std::string
statsDump(Stack &st)
{
    utlb::sim::StatGroup root{"stack"};
    root.adopt(st.cache.stats());
    root.adopt(st.driver.stats());
    root.adopt(st.pins.stats());
    std::ostringstream os;
    root.dumpJson(os);
    return os.str();
}

/**
 * Structural JSON comparison with numeric tolerance: the non-numeric
 * skeletons must match byte for byte, integer-formatted numbers
 * (counters, sample counts, buckets, overflow) must match exactly,
 * and float-formatted numbers (histogram means and bounds, whose
 * merge-on-read summation order differs from sequential
 * accumulation) must agree to 1e-9 relative. Returns a description
 * of the first divergence, or "".
 */
std::string
jsonDivergence(const std::string &a, const std::string &b)
{
    auto isNumChar = [](char c) {
        return std::isdigit(static_cast<unsigned char>(c)) || c == '.'
            || c == '-' || c == '+' || c == 'e' || c == 'E';
    };
    auto numToken = [&](const std::string &s, std::size_t &i) {
        std::size_t start = i;
        while (i < s.size() && isNumChar(s[i]))
            ++i;
        return s.substr(start, i - start);
    };
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
        bool na = isNumChar(a[i]) && (std::isdigit(static_cast<
                                          unsigned char>(a[i]))
                                      || a[i] == '-');
        bool nb = isNumChar(b[j]) && (std::isdigit(static_cast<
                                          unsigned char>(b[j]))
                                      || b[j] == '-');
        if (na != nb)
            return "skeleton diverged near offset "
                + std::to_string(i);
        if (!na) {
            if (a[i] != b[j])
                return "skeleton diverged near offset "
                    + std::to_string(i);
            ++i;
            ++j;
            continue;
        }
        std::string ta = numToken(a, i);
        std::string tb = numToken(b, j);
        if (ta == tb)
            continue;
        bool floatFmt =
            ta.find_first_of(".eE") != std::string::npos
            || tb.find_first_of(".eE") != std::string::npos;
        if (!floatFmt)
            return "integer field diverged: " + ta + " vs " + tb;
        double va = std::strtod(ta.c_str(), nullptr);
        double vb = std::strtod(tb.c_str(), nullptr);
        double scale = std::max(std::abs(va), std::abs(vb));
        if (std::abs(va - vb) > 1e-9 * std::max(scale, 1.0))
            return "float field diverged: " + ta + " vs " + tb;
    }
    if (i != a.size() || j != b.size())
        return "dumps differ in length";
    return "";
}

/** Drive an ioctl-heavy 4-process workload single-threaded. */
void
runShardWorkload(Stack &st, std::vector<Translation> &out)
{
    UtlbConfig cfg;
    cfg.prefetchEntries = 8;
    cfg.pin.memLimitPages = 128;
    std::vector<std::unique_ptr<UserUtlb>> views;
    for (utlb::mem::ProcId pid = 1; pid <= 4; ++pid)
        views.push_back(st.makeView(pid, cfg));
    // Two passes over twice the pin budget per process, windows
    // interleaved across pids so consecutive ioctls hit different
    // shards (when there are shards to hit).
    for (int pass = 0; pass < 2; ++pass) {
        for (Vpn w = 0; w < 256; w += 32) {
            for (auto &v : views) {
                out.push_back(v->translateRange(
                    w * utlb::mem::kPageSize,
                    32 * utlb::mem::kPageSize));
            }
        }
    }
}

TEST(DriverShards, ShardingIsSemanticallyInvisible)
{
    Stack mono(1024, 4, 1);
    Stack monoTwin(1024, 4, 1);
    Stack sharded(1024, 4, 4);
    std::vector<Translation> rMono, rTwin, rSharded;
    runShardWorkload(mono, rMono);
    runShardWorkload(monoTwin, rTwin);
    runShardWorkload(sharded, rSharded);

    ASSERT_EQ(rMono.size(), rSharded.size());
    for (std::size_t i = 0; i < rMono.size(); ++i) {
        const Translation &a = rMono[i];
        const Translation &b = rSharded[i];
        ASSERT_EQ(a.ok, b.ok) << "call " << i;
        ASSERT_EQ(a.hostCost, b.hostCost) << "call " << i;
        ASSERT_EQ(a.nicCost, b.nicCost) << "call " << i;
        ASSERT_EQ(a.niMisses, b.niMisses) << "call " << i;
        ASSERT_EQ(a.pageAddrs, b.pageAddrs) << "call " << i;
        ASSERT_EQ(a.missPages, b.missPages) << "call " << i;
    }

    // One shard merges from one slot: bit-exact, so the full dump is
    // string-identical between same-configuration runs.
    EXPECT_EQ(statsDump(mono), statsDump(monoTwin));

    // Four shards vs one: every integer field (counter values,
    // histogram sample counts, buckets, overflow) must match
    // exactly; float summaries only to merge-order tolerance.
    std::string div = jsonDivergence(statsDump(mono),
                                     statsDump(sharded));
    EXPECT_EQ(div, "");

    AuditReport report;
    sharded.cache.audit(report);
    sharded.driver.audit(report);
    EXPECT_TRUE(report.ok()) << report.summary();
}

// ---------------------------------------------------------------------
// Cross-window outstanding fills
// ---------------------------------------------------------------------

TEST(CrossWindowFills, CarryFlagChangesAccountingNotResults)
{
    // A capacity-miss stream (working set twice the cache) replayed
    // through two async stacks, carry on vs off: every call's
    // ok/pageAddrs must be identical — the carry model moves modeled
    // cost between windows, never changes what a window returns. The
    // carry run must actually carry (async_carried_fills > 0); the
    // off run must never (every residual is charged at its own
    // window's edge, PR-7 accounting).
    //
    // The shape is chosen for determinism: prefetch 1 means a fill
    // covers only its own page, so no window page can race a
    // neighbour's in-flight fill (no coalescing, no wall-clock-
    // dependent hits), and 8-page all-miss windows post exactly
    // kMaxOutstandingFills fills with no synchronous fallbacks. The
    // hit/probe cost is shrunk so a window's modeled service (8 x
    // 0.01 us of probes) ends long before its fills' DMAs (~1.8 us
    // each) — the carried-residue regime.
    auto runStream = [](bool carry, std::vector<Translation> &out)
        -> std::uint64_t {
        UtlbConfig cfg;
        cfg.concurrent = true;
        cfg.prefetchEntries = 1;
        cfg.asyncCarryFills = carry;
        Stack st(256);
        st.timings.cacheHitCost = utlb::sim::usToTicks(0.01);
        auto view = st.makeView(1, cfg);
        FillPipeline fp(st.driver, st.cache, st.timings);
        view->attachFillPipeline(&fp);
        // Two passes over 512 pages through a 256-entry direct-
        // mapped cache: every window of every pass is all-miss.
        for (int pass = 0; pass < 2; ++pass) {
            for (Vpn w = 0; w < 512; w += 8) {
                out.push_back(view->translateRange(
                    w * utlb::mem::kPageSize,
                    8 * utlb::mem::kPageSize));
            }
        }
        view->attachFillPipeline(nullptr);
        fp.stop();
        return counterValue(view->stats(), "async_carried_fills");
    };

    std::vector<Translation> rCarry, rEdge;
    std::uint64_t carried = runStream(true, rCarry);
    std::uint64_t edgeCarried = runStream(false, rEdge);

    ASSERT_EQ(rCarry.size(), rEdge.size());
    for (std::size_t i = 0; i < rCarry.size(); ++i) {
        ASSERT_EQ(rCarry[i].ok, rEdge[i].ok) << "window " << i;
        ASSERT_EQ(rCarry[i].pageAddrs, rEdge[i].pageAddrs)
            << "window " << i;
    }
    EXPECT_GT(carried, 0u);
    EXPECT_EQ(edgeCarried, 0u);
}

TEST(CrossWindowFills, CarryStateResetsOnAttach)
{
    // Attaching a pipeline starts a fresh modeled timeline. Two
    // identical stacks run the same two cold windows; stack A keeps
    // one attachment (window 1 inherits window 0's busy engines and
    // pays their residuals), stack B detaches and re-attaches in
    // between (the reset forgets the residue). Results must agree
    // either way; A's second window must be strictly costlier. Same
    // deterministic all-miss shape as above: prefetch 1, 8-page
    // windows, probes far cheaper than fills — window 0 parks all 8
    // engines busy deep into window 1's timeline.
    UtlbConfig cfg;
    cfg.concurrent = true;
    cfg.prefetchEntries = 1;
    auto coldWindow = [](UserUtlb &v, Vpn base) {
        return v.translateRange(base * utlb::mem::kPageSize,
                                8 * utlb::mem::kPageSize);
    };

    Stack a(256), b(256);
    a.timings.cacheHitCost = utlb::sim::usToTicks(0.01);
    b.timings.cacheHitCost = utlb::sim::usToTicks(0.01);
    auto va = a.makeView(1, cfg);
    auto vb = b.makeView(1, cfg);
    FillPipeline fpa(a.driver, a.cache, a.timings);
    FillPipeline fpb(b.driver, b.cache, b.timings);

    va->attachFillPipeline(&fpa);
    ASSERT_TRUE(coldWindow(*va, 0).ok);
    Translation contin = coldWindow(*va, 8);
    va->attachFillPipeline(nullptr);
    fpa.stop();

    vb->attachFillPipeline(&fpb);
    ASSERT_TRUE(coldWindow(*vb, 0).ok);
    vb->attachFillPipeline(nullptr);
    vb->attachFillPipeline(&fpb);
    Translation fresh = coldWindow(*vb, 8);
    vb->attachFillPipeline(nullptr);
    fpb.stop();

    ASSERT_TRUE(contin.ok);
    ASSERT_TRUE(fresh.ok);
    EXPECT_EQ(contin.pageAddrs, fresh.pageAddrs);
    // Window 0's modeled DMAs outlive it, so the continuing stack's
    // window 1 posts onto busy engines and pays carried stalls the
    // re-attached stack never sees.
    EXPECT_GT(contin.nicCost, fresh.nicCost);
}

} // namespace
