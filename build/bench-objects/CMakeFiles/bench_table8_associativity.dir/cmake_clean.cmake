file(REMOVE_RECURSE
  "../bench/bench_table8_associativity"
  "../bench/bench_table8_associativity.pdb"
  "CMakeFiles/bench_table8_associativity.dir/bench_table8_associativity.cpp.o"
  "CMakeFiles/bench_table8_associativity.dir/bench_table8_associativity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_associativity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
