/**
 * @file
 * Deterministic Zipf(alpha) sampler.
 *
 * Extracted from the bench harnesses so workload generators (the
 * tenant fleet, the MT bench cells, tests) all share one seed
 * contract: the same (n, alpha, seed) triple always yields the same
 * rank sequence, bit-for-bit, across platforms. Draws come from the
 * project's Xorshift64* Rng (sim/random.hpp), so paired runs (async
 * consistency, ablation pairs, repeated bench cells) replay
 * identical workloads.
 *
 * Portability note: the inverse-CDF table is built from rank weights
 * 1/rank^alpha. For *integral* alpha (0, 1, 2, ...) the power is
 * computed by repeated multiplication — exact IEEE operations, so
 * the table and therefore the sampled stream are identical on every
 * conforming platform. Non-integral alphas fall back to std::pow,
 * whose last-ulp rounding is implementation-defined; streams are
 * still deterministic for a given libm but may differ across ones.
 * Tests that pin exact streams use integral alphas only.
 */

#ifndef UTLB_SIM_ZIPF_HPP
#define UTLB_SIM_ZIPF_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/random.hpp"

namespace utlb::sim {

/** Zipf(alpha) sampler over {0, .., n-1} by inverse CDF. */
class ZipfPicker
{
  public:
    /**
     * Build the sampler over @p n ranks. Rank r (0-based) is drawn
     * with probability proportional to 1/(r+1)^alpha; alpha = 0 is
     * the uniform distribution. @p n must be nonzero.
     */
    ZipfPicker(std::size_t n, double alpha, std::uint64_t seed);

    /** Draw the next rank in [0, n). */
    std::size_t next();

    /** Number of ranks the sampler covers. */
    std::size_t size() const { return cdf.size(); }

  private:
    std::vector<double> cdf;
    Rng rng;
};

} // namespace utlb::sim

#endif // UTLB_SIM_ZIPF_HPP
