
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_offsetting.cpp" "bench-objects/CMakeFiles/bench_ablation_offsetting.dir/bench_ablation_offsetting.cpp.o" "gcc" "bench-objects/CMakeFiles/bench_ablation_offsetting.dir/bench_ablation_offsetting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tlbsim/CMakeFiles/utlb_tlbsim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/utlb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/vmmc/CMakeFiles/utlb_vmmc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/utlb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/utlb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/utlb_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/utlb_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/utlb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
