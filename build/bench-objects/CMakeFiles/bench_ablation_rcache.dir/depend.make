# Empty dependencies file for bench_ablation_rcache.
# This may be replaced when dependencies are built.
