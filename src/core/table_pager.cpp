#include "core/table_pager.hpp"

namespace utlb::core {

void
TablePager::touch(mem::ProcId pid, mem::Vpn vpn)
{
    if (!tables.count(pid))
        return;
    std::uint64_t leaf = vpn / HostPageTable::kLeafEntries;
    std::uint64_t k = key(pid, leaf);
    auto it = index.find(k);
    if (it != index.end()) {
        order.splice(order.end(), order, it->second);
        return;
    }
    order.push_back(LeafRef{pid, leaf});
    index.emplace(k, std::prev(order.end()));
}

std::size_t
TablePager::balance()
{
    if (physMem->freeFrames() >= config.lowWaterFrames)
        return 0;

    std::size_t reclaimed = 0;
    auto it = order.begin();
    while (it != order.end() && reclaimed < config.batchLeaves) {
        auto table_it = tables.find(it->pid);
        if (table_it == tables.end()) {
            index.erase(key(it->pid, it->leaf));
            it = order.erase(it);
            continue;
        }
        mem::Vpn probe_vpn = it->leaf * HostPageTable::kLeafEntries;
        if (table_it->second->swapOutLeaf(probe_vpn)) {
            ++reclaimed;
            ++numSwapOuts;
        }
        index.erase(key(it->pid, it->leaf));
        it = order.erase(it);
    }
    return reclaimed;
}

} // namespace utlb::core
