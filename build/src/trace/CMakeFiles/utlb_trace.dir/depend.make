# Empty dependencies file for utlb_trace.
# This may be replaced when dependencies are built.
