#include "sim/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "sim/log.hpp"

namespace utlb::sim {

namespace {

/**
 * 1/rank^alpha with an exact-arithmetic path for integral alpha.
 * Repeated multiplication keeps the weight table bit-identical
 * across libms, which is what lets tests pin exact sample streams.
 */
double
rankWeight(std::size_t rank, double alpha)
{
    if (alpha == 0.0)
        return 1.0;
    double a = std::floor(alpha);
    if (a == alpha && alpha > 0.0 && alpha <= 8.0) {
        double w = 1.0;
        for (unsigned k = 0; k < static_cast<unsigned>(a); ++k)
            w *= static_cast<double>(rank);
        return 1.0 / w;
    }
    return 1.0
        / std::pow(static_cast<double>(rank), alpha);
}

} // namespace

ZipfPicker::ZipfPicker(std::size_t n, double alpha, std::uint64_t seed)
    : rng(seed)
{
    if (n == 0)
        panic("ZipfPicker over zero ranks");
    cdf.reserve(n);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        sum += rankWeight(i + 1, alpha);
        cdf.push_back(sum);
    }
    for (double &c : cdf)
        c /= sum;
}

std::size_t
ZipfPicker::next()
{
    double u = rng.uniform();
    std::size_t r = static_cast<std::size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    // u == 1.0 cannot happen (uniform() < 1), but guard the edge
    // where accumulated rounding leaves cdf.back() a hair under u.
    return r < cdf.size() ? r : cdf.size() - 1;
}

} // namespace utlb::sim
