/**
 * @file
 * The Shared UTLB-Cache (§3.2, Figure 3).
 *
 * A process-tagged translation cache in NIC SRAM shared by all
 * processes using the board. Entries map (process, virtual page) to
 * a physical frame. The cache is direct-mapped or set-associative;
 * a process-dependent index offset ("a simple scheme to reduce the
 * conflict misses is to offset a translation table index by a
 * process-dependent constant", §3.2) hashes different processes'
 * pages to different sets.
 *
 * Cost model: a hit is the constant 0.8 us of Table 2. Because the
 * LANai firmware "can only check one cache entry at a time" (§6.3),
 * each additional way probed adds perWayProbeCost; this is what makes
 * set-associativity lose on lookup cost even when it wins on miss
 * rate (Table 8 discussion).
 *
 * Tag-width note: the paper stores an 8-bit address tag and a 4-bit
 * process tag per line and relies on the garbage page to absorb any
 * false hits. We store full tags, so a hit is always correct;
 * EXPERIMENTS.md discusses the (negligible) behavioural difference.
 *
 * Layout: structure-of-arrays. Each set's tag words (one 64-bit
 * pid⊕vpn key per way, 0 = invalid) are packed contiguously and
 * cache-line aligned so a whole-set probe — optionally SIMD
 * (sim/simd.hpp) — touches a single 64-byte line; the frame, full
 * tags, and LRU stamp live in a parallel cold array touched only
 * once the tag mask names a candidate way. docs/performance.md has
 * the byte-level diagram and the correctness argument.
 */

#ifndef UTLB_CORE_SHARED_CACHE_HPP
#define UTLB_CORE_SHARED_CACHE_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "check/test_tamper.hpp"
#include "mem/page.hpp"
#include "nic/sram.hpp"
#include "nic/timing.hpp"
#include "sim/annotations.hpp"
#include "sim/mutex.hpp"
#include "sim/simd.hpp"
#include "sim/spinlock.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace utlb::check {
class AuditReport;
} // namespace utlb::check

namespace utlb::core {

/** Static configuration of a Shared UTLB-Cache. */
struct CacheConfig {
    std::size_t entries = 8192;   //!< total entries (8 K = 32 KB, §4.2)
    unsigned assoc = 1;           //!< 1 (direct), 2, or 4 in the paper
    bool indexOffsetting = true;  //!< process-dependent index offset
};

/** An entry pushed out of the cache by an insertion. */
struct EvictedEntry {
    mem::ProcId pid;
    mem::Vpn vpn;
    mem::Pfn pfn;
};

/** Outcome of a cache probe, including the modeled firmware time. */
struct CacheProbe {
    bool hit = false;
    mem::Pfn pfn = mem::kInvalidPfn;
    sim::Tick cost = 0;
};

/** Outcome of a batched run probe (lookupRun). */
struct RunHits {
    std::size_t hits = 0;     //!< consecutive hits before first miss
    sim::Tick cost = 0;       //!< total modeled cost of those hits
    sim::Tick perHitCost = 0; //!< modeled cost of each hit probe
};

/**
 * Why a translation is being installed (§6.4).
 *
 * Demand installs come from a real NIC reference and update the
 * line's LRU stamp. Prefetch installs are speculative neighbours
 * fetched alongside a miss: refreshing an already-resident line must
 * NOT touch its recency (the NIC never referenced it), or prefetch
 * traffic promotes dead lines over genuinely hot ones.
 */
enum class InsertMode {
    Demand,    //!< a real reference; updates recency
    Prefetch,  //!< speculative neighbour; no-touch on refresh
};

/**
 * The NIC-resident shared translation cache.
 *
 * Within a set, replacement is LRU (the firmware keeps a per-line
 * use stamp). The cache does not know about pinning; callers keep
 * it coherent by invalidating entries when pages are unpinned.
 */
class SharedUtlbCache
{
  public:
    /**
     * Build a cache. If @p board_sram is non-null the cache claims
     * its line storage (4 bytes per entry, as in the paper's 32 KB
     * for 8 K entries) from board SRAM and dies fatally if it does
     * not fit.
     */
    SharedUtlbCache(const CacheConfig &cfg, const nic::NicTimings &t,
                    nic::Sram *board_sram = nullptr);

    std::size_t entries() const { return config.entries; }
    unsigned assoc() const { return config.assoc; }
    std::size_t sets() const { return numSets; }
    const CacheConfig &cfg() const { return config; }

    /** Probe for (pid, vpn); updates LRU and hit/miss counters. */
    CacheProbe lookup(mem::ProcId pid, mem::Vpn vpn);

    /** Probe without updating state or counters. */
    std::optional<mem::Pfn> peek(mem::ProcId pid, mem::Vpn vpn) const;

    /**
     * A stable handle to the way that served a hit, letting a
     * repeat lookup of the same (pid, vpn) skip the probe. The ref
     * is a (set, way) index pair into the packed arrays (way ==
     * kNoWay means "no ref"). Obtained from
     * lookupRun()/lookupRunMT(); becomes a guaranteed miss (never a
     * wrong hit) if the way is since evicted or retagged — the
     * re-probe revalidates the packed tag word and the full cold
     * (pid, vpn) tags.
     *
     * In concurrent mode the ref also carries the set's seqlock
     * version from when it was minted: hitViaRefMT() honours the ref
     * only while that version still stands, so a stale ref can never
     * return a reclaimed way — any insert, eviction, or invalidation
     * in the set since the mint demotes the ref to a clean miss.
     */
    class LineRef
    {
        friend class SharedUtlbCache;
        static constexpr std::uint32_t kNoWay = ~std::uint32_t{0};
        std::uint32_t set = 0;
        std::uint32_t way = kNoWay;
        std::uint32_t version = 0;
    };

    /**
     * Probe a run of consecutive pages of one process, stopping at
     * (and recording nothing for) the first miss. Slot i of @p pfns
     * receives the frame of vpn + i for each hit. Stats and LRU
     * state end up exactly as the equivalent lookup() sequence over
     * the hit prefix would leave them. If @p first_hit is non-null
     * and the first page hits, it is filled for later hitViaRef()
     * shortcuts. Requires assoc() == 1 (the per-way cost model makes
     * wider probes take the page-at-a-time path).
     */
    RunHits lookupRun(mem::ProcId pid, mem::Vpn start, std::size_t n,
                      mem::Pfn *pfns, LineRef *first_hit = nullptr);

    /**
     * Re-probe via a LineRef from an earlier lookupRun. On a still-
     * valid match, records the hit (stats + LRU) exactly like
     * lookup() and returns true; on any mismatch returns false with
     * no state change, and the caller falls back to a full probe.
     */
    bool hitViaRef(LineRef &ref, mem::ProcId pid, mem::Vpn vpn,
                   CacheProbe &out);

    /**
     * @name Concurrent mode (§4 atomicity/consistency)
     *
     * The paper's host library and NIC firmware touch UTLB state
     * concurrently without syscalls on the common path; mirroring
     * that, the cache can serve probes and miss-fill installs from
     * many threads at once, at any associativity (the paper's §3.2
     * sweep runs 1/2/4-way). enableConcurrent() arms it:
     *
     *  - every set carries a seqlock version counter (sim::SeqCount).
     *    lookupMT()/lookupRunMT() read the ways *optimistically* —
     *    no lock, relaxed atomic field reads, retry on an odd or
     *    changed version — so probes never serialize against each
     *    other. After kSeqlockMaxRetries torn reads a probe falls
     *    back to the set's stripe lock, bounding retries;
     *  - writers (insertMT(), the concurrent invalidate()) mutate a
     *    set's tags only inside a writeBegin()/writeEnd() version
     *    bump, and only while holding the set's *stripe* spinlock:
     *    the line array is partitioned into contiguous stripes of
     *    kSetsPerStripe sets, each guarded by one spinlock, so
     *    writers serialize per stripe while readers sail past.
     *    Recording a hit's LRU stamp also takes the stripe lock (the
     *    stamp write must not race an eviction) but does not bump
     *    the version — stamps are never read optimistically;
     *  - hot-path statistics accumulate into a per-worker Shard
     *    buffer (no shared counter cache line on the probe path) and
     *    are folded into the global stats by absorbShard();
     *  - LRU stamps come from per-shard blocks carved off the shared
     *    use clock with one relaxed fetch-add per kStampBlock hits.
     *    Stamps stay strictly monotonic within a worker and within a
     *    stamp block, so single-threaded stamp sequences are exactly
     *    the sequential ones; across concurrent workers LRU order is
     *    approximate, as on real hardware.
     *
     * With one worker the MT entry points perform the same state
     * transitions, modeled costs, and stat updates as their
     * sequential twins, in the same order — the golden-equivalence
     * suite (tests/test_concurrency.cpp) pins that down bit-exactly.
     *
     * Maintenance operations (clear, evictLruOfProcess, resetStats,
     * audit, stats serialization) still require quiescence: call
     * them only when no worker is in an MT entry point and all
     * shards have been absorbed. invalidateProcess() is the
     * exception: process teardown during fleet churn overlaps other
     * tenants' probes, so in concurrent mode it retires a process'
     * lines stripe by stripe under the same stripe-lock + seqlock
     * protocol as invalidate().
     * @{
     */

    /**
     * Per-worker concurrent-mode context: stat deltas plus the LRU
     * stamp block. One Shard belongs to exactly one thread at a
     * time; fold it back with absorbShard() before reading stats.
     */
    class Shard
    {
        friend class SharedUtlbCache;

        explicit Shard(sim::HistAccum probe_shape)
            : probeLatency(std::move(probe_shape))
        {}

        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t inserts = 0;
        std::uint64_t refreshes = 0;
        std::uint64_t evictions = 0;
        std::uint64_t crossEvictions = 0;
        sim::HistAccum probeLatency;

        /** Unconsumed LRU stamps: [stampNext, stampEnd). */
        std::uint64_t stampNext = 0;
        std::uint64_t stampEnd = 0;

        /** Torn optimistic reads this worker retried (diagnostic;
         *  not part of the stats tree, not folded by absorbShard). */
        std::uint64_t seqRetries = 0;

      public:
        Shard(Shard &&) = default;
        Shard &operator=(Shard &&) = default;

        /**
         * How many optimistic set reads this worker had to retry.
         * Structurally bounded: after kSeqlockMaxRetries torn reads
         * of one set the probe takes the stripe lock instead, so a
         * single lookup contributes at most kSeqlockMaxRetries.
         */
        std::uint64_t seqlockRetries() const { return seqRetries; }
    };

    /**
     * Optimistic-read retries of one set before a probe gives up and
     * takes the stripe lock (the readers' progress guarantee).
     */
    static constexpr unsigned kSeqlockMaxRetries = 64;

    /**
     * Arm concurrent mode (idempotent). Works at any associativity:
     * the MT probe paths do the same way search and LRU victim
     * selection as their sequential twins, under per-set seqlocks.
     */
    void enableConcurrent();

    /** True once enableConcurrent() has run. */
    bool concurrent() const { return numStripes != 0; }

    /** A zeroed per-worker context for this cache. */
    Shard makeShard() const;

    /**
     * Fold a worker's stat deltas into the global stats and zero
     * them. Serialized internally on absorbMu; callable while other
     * workers are still probing (their deltas are simply not
     * included yet). Callers must not already hold absorbMu.
     */
    void absorbShard(Shard &sh) UTLB_EXCLUDES(absorbMu);

    /**
     * lookup()'s concurrent twin: an optimistic seqlock-validated
     * way scan (stripe-locked only to record a hit's LRU stamp),
     * stats into @p sh. Any associativity; same probe counts, costs,
     * and stat updates as lookup().
     */
    CacheProbe lookupMT(mem::ProcId pid, mem::Vpn vpn, Shard &sh);

    /**
     * lookupRun()'s concurrent twin: optimistic per-set reads walk
     * each stripe's window, then one stripe-lock acquisition stamps
     * the window's hits. Stats into @p sh. Like lookupRun(), assoc 1
     * only (the shared per-hit cost model).
     */
    RunHits lookupRunMT(mem::ProcId pid, mem::Vpn start, std::size_t n,
                        mem::Pfn *pfns, LineRef *first_hit, Shard &sh);

    /**
     * hitViaRef()'s concurrent twin. Honours @p ref only while the
     * set's seqlock version still equals the ref's minted version
     * (checked under the stripe lock), so a stale ref can never
     * return a reclaimed way; any mismatch is a clean miss and the
     * caller re-probes. Stats into @p sh.
     */
    bool hitViaRefMT(LineRef &ref, mem::ProcId pid, mem::Vpn vpn,
                     CacheProbe &out, Shard &sh);

    /**
     * insert()'s concurrent twin: the same refresh / free-way / LRU
     * victim selection, under the set's stripe lock with seqlock
     * version bumps around every tag mutation. Stats into @p sh.
     */
    std::optional<EvictedEntry>
    insertMT(mem::ProcId pid, mem::Vpn vpn, mem::Pfn pfn,
             InsertMode mode, Shard &sh);

    /** @} */

    /**
     * Install a translation, evicting the set's LRU entry if the
     * set is full. Prefetch-mode refreshes leave the line's LRU
     * stamp untouched (see InsertMode).
     * @return the displaced entry, if any.
     */
    std::optional<EvictedEntry>
    insert(mem::ProcId pid, mem::Vpn vpn, mem::Pfn pfn,
           InsertMode mode = InsertMode::Demand);

    /** Drop one translation. @return true if it was present. */
    bool invalidate(mem::ProcId pid, mem::Vpn vpn);

    /**
     * Forcibly remove the least recently used entry belonging to
     * @p pid (used by the interrupt-based baseline when a pin limit
     * forces it to shed a cached page). Counted as a shed, not a
     * capacity eviction: the removal is demanded by the pin budget,
     * not by cache pressure.
     * @return the removed entry, or nullopt if the process caches
     *         nothing.
     */
    std::optional<EvictedEntry> evictLruOfProcess(mem::ProcId pid);

    /** Drop all translations of a process. @return count dropped. */
    std::size_t invalidateProcess(mem::ProcId pid);

    /** Drop everything. */
    void clear();

    /** Number of currently valid entries. */
    std::size_t validEntries() const;

    /** Number of valid entries belonging to @p pid (occupancy). */
    std::size_t occupancyOf(mem::ProcId pid) const;

    /** The set index (pid, vpn) maps to; exposed for tests. */
    std::size_t setIndex(mem::ProcId pid, mem::Vpn vpn) const;

    /**
     * The lock-stripe index (pid, vpn)'s set lives in. The fill
     * thread sorts each miss batch by this so its installs take each
     * stripe spinlock in runs instead of ping-ponging across stripes.
     */
    std::size_t stripeIndex(mem::ProcId pid, mem::Vpn vpn) const
    {
        return setIndex(pid, vpn) >> kSetsPerStripeLog2;
    }

    /**
     * @name Lifetime counters
     *
     * Removal taxonomy (the stats JSON relies on this split):
     *  - evictions():     capacity displacements by insert() only;
     *  - sheds():         forced per-process LRU removals via
     *                     evictLruOfProcess() (pin-budget pressure);
     *  - invalidations(): explicit coherence drops via invalidate()
     *                     and invalidateProcess().
     * @{
     */
    std::uint64_t hits() const { return statHits.value(); }
    std::uint64_t misses() const { return statMisses.value(); }
    std::uint64_t insertions() const { return statInserts.value(); }
    std::uint64_t refreshes() const { return statRefreshes.value(); }
    std::uint64_t evictions() const { return statEvictions.value(); }
    /** Capacity evictions whose victim belonged to another process —
     *  the cross-tenant pollution the fleet bench ablates. */
    std::uint64_t crossTenantEvictions() const
    {
        return statCrossEvictions.value();
    }
    std::uint64_t sheds() const { return statSheds.value(); }
    std::uint64_t invalidations() const
    {
        return statInvalidations.value();
    }
    /** @} */

    /** This cache's statistics subtree (for adoption into a root). */
    sim::StatGroup &stats() { return statsGrp; }
    const sim::StatGroup &stats() const { return statsGrp; }

    /** Reset counters (state untouched). */
    void resetStats();

    /**
     * Invariant auditor: every valid way's packed tag word equals
     * tagKey() of its cold (pid, vpn) tags (a desynced word turns
     * real entries invisible or resurrects dead ones), every valid
     * way indexes to the set it lives in, no (pid, vpn) pair
     * occupies two ways, no LRU stamp runs ahead of the use clock,
     * dead ways carry no recency stamp, the SIMD overread padding is
     * zero, every seqlock version is even at quiescence (an odd one
     * means a writer died mid-update and readers would spin), and
     * the removal counters' taxonomy balances against the current
     * occupancy (lines present = lines installed minus lines
     * evicted/shed/invalidated/cleared since the last stats reset).
     */
    void audit(check::AuditReport &report) const;

  private:
    friend struct check::TestTamper;

    /**
     * Per-way cold payload, parallel to the packed tag words: the
     * full (pid, vpn) tags that make every hit exact (the packed key
     * is only a filter), the frame, and the LRU stamp. The two tags
     * share one 64-bit word (packPidVpn) — the confirm compare is a
     * single load-and-compare, and at 24 bytes nearly three ways fit
     * a cache line instead of two — but the probe loop never touches
     * it until the tag mask has already named a candidate way.
     */
    struct Cold {
        std::uint64_t pidVpn = 0;  //!< packPidVpn(pid, vpn)
        mem::Pfn pfn = mem::kInvalidPfn;
        std::uint64_t lastUse = 0;
    };

    /**
     * The exact (pid, vpn) pair as one word: pid in the top 32 bits,
     * vpn in the bottom 32. Unlike tagKey this is an injective
     * encoding, so comparing packed words IS comparing the full tags
     * — provided the vpn fits 32 bits, which install paths assert
     * (a 32-bit vpn spans 16 TB of 4 KB pages, far beyond the
     * simulated address spaces; the paper's own NIC tables are lossy
     * 8-bit tags, §4.2).
     */
    static std::uint64_t packPidVpn(mem::ProcId pid, mem::Vpn vpn)
    {
        return (static_cast<std::uint64_t>(pid) << 32) |
               static_cast<std::uint64_t>(vpn);
    }

    static mem::ProcId pidOfPacked(std::uint64_t pv)
    {
        return static_cast<mem::ProcId>(pv >> 32);
    }

    static mem::Vpn vpnOfPacked(std::uint64_t pv)
    {
        return static_cast<mem::Vpn>(pv & 0xffffffffull);
    }

    /**
     * The packed tag word for (pid, vpn): a fixed multiplicative mix
     * of both tags, forced odd so 0 never names a valid entry — a
     * zero tag word IS the invalid-way state (there is no separate
     * valid bit). Equal (pid, vpn) pairs always collide; unequal
     * pairs collide with probability ~2^-63, and the cold-tag
     * confirm in probePacked() makes even those collisions harmless
     * (full-tag correctness, unlike the paper's lossy 8-bit tags).
     */
    static std::uint64_t tagKey(mem::ProcId pid, mem::Vpn vpn)
    {
        std::uint64_t k = (vpn * 0x9E3779B97F4A7C15ull)
            ^ ((static_cast<std::uint64_t>(pid) + 1)
               * 0xC2B2AE3D27D4EB4Full);
        return k | 1;
    }

    /**
     * The one way-scan authority both probe modes share: build the
     * candidate mask from the packed tag words (Loads::matchMask —
     * SIMD for the sequential/locked paths, relaxed atomic loads for
     * the seqlock read path), then confirm candidates against the
     * cold (pid, vpn) tags in way order. Returns the modeled probe
     * count (hit way + 1, or assoc on a miss); on a hit sets @p way
     * and @p pfn, on a miss leaves @p way == assoc. Because way
     * selection and probe counting live here and nowhere else, the
     * sequential and MT paths cannot drift.
     */
    template <class Loads>
    unsigned probePacked(std::size_t set, mem::ProcId pid,
                         mem::Vpn vpn, std::uint64_t key,
                         unsigned &way, mem::Pfn &pfn);

    /**
     * Seqlock-validated scan of @p set's ways for (pid, vpn): reads
     * the packed words with relaxed atomics, retries on a torn
     * version, and falls back to the stripe lock after
     * kSeqlockMaxRetries torn reads. Returns the modeled probe
     * count; on a hit sets @p way and @p pfn, on a miss leaves
     * @p way == assoc.
     */
    unsigned probeSetMT(std::size_t set, mem::ProcId pid,
                        mem::Vpn vpn, std::uint64_t key,
                        unsigned &way, mem::Pfn &pfn, Shard &sh);

    /**
     * The lock-based way scan probeSetMT falls back to when writers
     * keep tearing its optimistic reads. The capability requirement
     * makes "caller holds this set's stripe lock" part of the
     * checked signature.
     */
    unsigned scanWaysLocked(std::size_t set, mem::ProcId pid,
                            mem::Vpn vpn, std::uint64_t key,
                            unsigned &way, mem::Pfn &pfn)
        UTLB_REQUIRES(stripeOf(set));

    /**
     * Record a hit's LRU stamp under the stripe lock, re-validating
     * the way first: if the line was reclaimed or retagged since the
     * optimistic read, the (already-returned) hit keeps its snapshot
     * semantics and simply leaves no recency mark.
     */
    void stampWayMT(std::size_t set, unsigned way, mem::ProcId pid,
                    mem::Vpn vpn, Shard &sh);

    /** stampWayMT's locked body (re-validate, then stamp). */
    void stampLineLocked(std::size_t set, unsigned way,
                         mem::ProcId pid, mem::Vpn vpn, Shard &sh)
        UTLB_REQUIRES(stripeOf(set));

    /** Invalidate a way, scrubbing its recency stamp. */
    void killWay(std::size_t idx);

    /** Sets per lock stripe; a batched run re-locks this often. */
    static constexpr std::size_t kSetsPerStripeLog2 = 6;
    static constexpr std::size_t kSetsPerStripe = 1 << kSetsPerStripeLog2;

    /** LRU stamps carved off useClock per relaxed fetch-add. */
    static constexpr std::uint64_t kStampBlock = 1024;

    sim::Spinlock &stripeOf(std::size_t set)
    {
        return stripes[set >> kSetsPerStripeLog2];
    }

    /** Next LRU stamp for a concurrent worker (refills its block). */
    std::uint64_t nextStamp(Shard &sh);

    CacheConfig config;
    const nic::NicTimings *timings;
    std::size_t numSets;

    /** numSets - 1 when numSets is a power of two, else 0; lets
     *  setIndex() replace the modulo with a mask (same result). */
    std::size_t setsMask = 0;

    /**
     * Packed tag words, set-major with stride assoc: one 64-bit key
     * per way, 0 = invalid. The base is 64-byte aligned, so a set's
     * whole tag block (8 x assoc bytes) sits in one cache line for
     * any power-of-two assoc <= 8 and a full 4-way probe touches a
     * single line. simd::kTagPadWords zero words trail the last set
     * so the vector compares may overread.
     */
    std::vector<std::uint64_t,
                simd::CacheAlignedAlloc<std::uint64_t>>
        tagWords;

    /** Cold per-way payload, parallel to tagWords (entries). */
    std::vector<Cold> cold;

    std::uint64_t useClock = 0;

    /** Stripe locks; non-null only once enableConcurrent() ran. */
    std::unique_ptr<sim::Spinlock[]> stripes;
    std::size_t numStripes = 0;

    /** Per-set seqlock versions; non-null alongside stripes. */
    std::unique_ptr<sim::SeqCount[]> seqs;

    /** Serializes absorbShard() callers against each other. */
    sim::Mutex absorbMu;

    /** Valid entries at the last resetStats(), for the audit. */
    std::size_t statsBaseValid = 0;

    sim::StatGroup statsGrp{"shared_cache"};
    sim::Counter statHits{&statsGrp, "hits", "probes that hit"};
    sim::Counter statMisses{&statsGrp, "misses", "probes that missed"};
    sim::Counter statInserts{&statsGrp, "insertions",
                             "install requests (incl. refreshes)"};
    sim::Counter statRefreshes{&statsGrp, "refreshes",
                               "installs that hit a resident line"};
    sim::Counter statEvictions{&statsGrp, "evictions",
                               "capacity evictions (LRU displaced "
                               "by insert)"};
    sim::Counter statCrossEvictions{&statsGrp, "cross_evictions",
                                    "capacity evictions whose victim "
                                    "belonged to another process "
                                    "(subset of evictions)"};
    sim::Counter statSheds{&statsGrp, "sheds",
                           "forced per-process LRU removals "
                           "(pin-budget shedding)"};
    sim::Counter statInvalidations{&statsGrp, "invalidations",
                                   "explicit coherence "
                                   "invalidations"};
    sim::Counter statClearDrops{&statsGrp, "clear_drops",
                                "lines dropped by whole-cache "
                                "clears"};
    sim::Histogram statProbeLatency{&statsGrp, "probe_latency_us",
                                    "modeled firmware probe cost",
                                    4.0, 16};
};

} // namespace utlb::core

#endif // UTLB_CORE_SHARED_CACHE_HPP
