file(REMOVE_RECURSE
  "CMakeFiles/utlb_mem.dir/address_space.cpp.o"
  "CMakeFiles/utlb_mem.dir/address_space.cpp.o.d"
  "CMakeFiles/utlb_mem.dir/phys_memory.cpp.o"
  "CMakeFiles/utlb_mem.dir/phys_memory.cpp.o.d"
  "CMakeFiles/utlb_mem.dir/pinning.cpp.o"
  "CMakeFiles/utlb_mem.dir/pinning.cpp.o.d"
  "libutlb_mem.a"
  "libutlb_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utlb_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
