# Empty compiler generated dependencies file for bench_table2_ni_ops.
# This may be replaced when dependencies are built.
