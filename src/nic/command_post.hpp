/**
 * @file
 * Per-process command post buffers.
 *
 * In the paper's VMMC implementation the driver allocates a command
 * post buffer in NIC SRAM for each process and maps it into the
 * process' address space; the user library writes commands there and
 * the firmware (MCP) polls each post in turn (§4.2). The address of
 * the command buffer identifies the process.
 *
 * This model serializes commands into a real SRAM ring so that SRAM
 * capacity genuinely limits how many posts can exist.
 */

#ifndef UTLB_NIC_COMMAND_POST_HPP
#define UTLB_NIC_COMMAND_POST_HPP

#include <cstdint>
#include <optional>

#include "mem/page.hpp"
#include "nic/sram.hpp"

namespace utlb::nic {

/** Operation requested of the firmware. */
enum class CommandOp : std::uint32_t {
    Nop = 0,
    SendVirt,   //!< remote store; local buffer named by virtual addr
    FetchVirt,  //!< remote fetch into a local virtual buffer
    SendIdx,    //!< remote store; buffer named by UTLB table indices
};

/** A user-level communication request. */
struct Command {
    CommandOp op = CommandOp::Nop;
    std::uint32_t seq = 0;          //!< per-post sequence number
    std::uint64_t localVa = 0;      //!< local buffer virtual address
    std::uint32_t nbytes = 0;       //!< transfer length
    std::uint32_t importSlot = 0;   //!< imported remote buffer handle
    std::uint64_t remoteOffset = 0; //!< offset within remote buffer
    std::uint32_t utlbIndex = 0;    //!< for SendIdx (per-process UTLB)
};

/** Serialized command size in the SRAM ring. */
inline constexpr std::size_t kCommandBytes = 40;

/**
 * A single process' command ring in NIC SRAM.
 *
 * Layout: [head word][tail word][slot 0..n-1]. The host side calls
 * post(); the firmware calls poll(). Single producer, single
 * consumer, no locking needed (matching programmed-I/O posting on
 * the real board).
 */
class CommandPost
{
  public:
    /**
     * Carve a ring with @p slots command slots out of @p board_sram.
     * Dies fatally if SRAM is exhausted (configuration error).
     */
    CommandPost(Sram &board_sram, mem::ProcId pid, std::size_t slots);

    mem::ProcId pid() const { return procId; }
    std::size_t capacity() const { return numSlots; }

    /** Number of commands waiting to be polled. */
    std::size_t depth() const;

    /** True if no command can currently be posted. */
    bool full() const { return depth() == numSlots; }

    /**
     * Post a command from the host side.
     * @return false if the ring is full.
     */
    bool post(const Command &cmd);

    /** Firmware side: take the oldest command, if any. */
    std::optional<Command> poll();

    /** Commands posted over the lifetime of the ring. */
    std::uint64_t totalPosted() const { return numPosted; }

    /** Commands the host failed to post due to a full ring. */
    std::uint64_t totalRejected() const { return numRejected; }

  private:
    SramAddr slotAddr(std::uint32_t idx) const;

    Sram *sram;
    mem::ProcId procId;
    std::size_t numSlots;
    SramAddr base;

    std::uint64_t numPosted = 0;
    std::uint64_t numRejected = 0;
};

} // namespace utlb::nic

#endif // UTLB_NIC_COMMAND_POST_HPP
