#include "nic/timing.hpp"

#include "sim/calibration.hpp"

namespace utlb::nic {

using sim::CalCurve;
using sim::Tick;

namespace {

/** Table 2, "DMA cost" row: fetching n entries over the I/O bus. */
const CalCurve &
dmaCurve()
{
    static const CalCurve curve{
        {1, 1.5}, {2, 1.6}, {4, 1.6}, {8, 1.9}, {16, 2.1}, {32, 2.5}};
    return curve;
}

/** Table 2, "total miss cost" row: directory ref + DMA + install. */
const CalCurve &
missCurve()
{
    static const CalCurve curve{
        {1, 1.8}, {2, 1.9}, {4, 1.9}, {8, 2.3}, {16, 2.8}, {32, 3.2}};
    return curve;
}

} // namespace

Tick
NicTimings::entryFetchCost(std::size_t entries) const
{
    if (entries == 0)
        sim::panic("entryFetchCost of zero entries");
    return dmaCurve().ticksAt(entries);
}

Tick
NicTimings::missHandleCost(std::size_t entries) const
{
    if (entries == 0)
        sim::panic("missHandleCost of zero entries");
    return missCurve().ticksAt(entries);
}

Tick
NicTimings::payloadDmaCost(std::size_t bytes) const
{
    double sec = static_cast<double>(bytes) / dmaBytesPerSec;
    return dmaSetup + static_cast<Tick>(sec * 1e12 + 0.5);
}

Tick
NicTimings::linkTransferCost(std::size_t bytes) const
{
    double sec = static_cast<double>(bytes) / linkBytesPerSec;
    return static_cast<Tick>(sec * 1e12 + 0.5);
}

} // namespace utlb::nic
