#include "core/bitvector.hpp"

#include <bit>

#include "check/audit.hpp"
#include "core/cost_model.hpp"

namespace utlb::core {

namespace {

/** Shared cost curves (Table 1 "check" rows). */
const HostCosts &
costs()
{
    static const HostCosts c;
    return c;
}

} // namespace

void
PinBitVector::ensure(std::uint64_t word_index)
{
    if (word_index >= words.size())
        words.resize(word_index + 1, 0);
}

void
PinBitVector::set(mem::Vpn vpn)
{
    std::uint64_t w = vpn / 64;
    std::uint64_t bit = std::uint64_t{1} << (vpn % 64);
    ensure(w);
    if (!(words[w] & bit)) {
        words[w] |= bit;
        ++numSet;
    }
}

void
PinBitVector::clear(mem::Vpn vpn)
{
    std::uint64_t w = vpn / 64;
    if (!wordPresent(w))
        return;
    std::uint64_t bit = std::uint64_t{1} << (vpn % 64);
    if (words[w] & bit) {
        words[w] &= ~bit;
        --numSet;
    }
}

bool
PinBitVector::test(mem::Vpn vpn) const
{
    std::uint64_t w = vpn / 64;
    if (!wordPresent(w))
        return false;
    return (words[w] >> (vpn % 64)) & 1;
}

namespace {

/**
 * Bits of a 64-bit word that fall inside [start, end) when the word
 * covers pages [w*64, w*64 + 64).
 */
std::uint64_t
rangeMask(std::uint64_t w, mem::Vpn start, mem::Vpn end)
{
    std::uint64_t mask = ~std::uint64_t{0};
    if (w == start / 64)
        mask &= ~std::uint64_t{0} << (start % 64);
    if (w == (end - 1) / 64 && end % 64 != 0)
        mask &= ~std::uint64_t{0} >> (64 - end % 64);
    return mask;
}

} // namespace

std::optional<mem::Vpn>
PinBitVector::firstClearInRange(mem::Vpn start, std::size_t npages) const
{
    if (npages == 0)
        return std::nullopt;
    mem::Vpn end = start + npages;
    std::uint64_t wstart = start / 64;
    std::uint64_t wend = (end - 1) / 64;
    for (std::uint64_t w = wstart; w <= wend; ++w) {
        std::uint64_t have = wordPresent(w) ? words[w] : 0;
        std::uint64_t missing = rangeMask(w, start, end) & ~have;
        if (missing) {
            return static_cast<mem::Vpn>(
                w * 64 + static_cast<unsigned>(std::countr_zero(missing)));
        }
    }
    return std::nullopt;
}

std::optional<mem::Vpn>
PinBitVector::firstSetInRange(mem::Vpn start, std::size_t npages) const
{
    if (npages == 0)
        return std::nullopt;
    mem::Vpn end = start + npages;
    std::uint64_t wstart = start / 64;
    std::uint64_t wend = (end - 1) / 64;
    for (std::uint64_t w = wstart; w <= wend; ++w) {
        if (!wordPresent(w))
            return std::nullopt;    // words beyond the map are all clear
        std::uint64_t present = rangeMask(w, start, end) & words[w];
        if (present) {
            return static_cast<mem::Vpn>(
                w * 64 + static_cast<unsigned>(std::countr_zero(present)));
        }
    }
    return std::nullopt;
}

bool
PinBitVector::allSetInRange(mem::Vpn start, std::size_t npages) const
{
    return !firstClearInRange(start, npages).has_value();
}

CheckResult
PinBitVector::checkRange(mem::Vpn start, std::size_t npages) const
{
    CheckResult res{};
    res.allPinned = true;

    // The scan stops at the first zero bit, so the pages (and bitmap
    // words) charged for cover [start, first clear] inclusive — or the
    // whole range when every page is pinned.
    std::size_t scanned_pages = 0;
    if (npages > 0) {
        mem::Vpn last = start + npages - 1;
        if (auto clear = firstClearInRange(start, npages)) {
            res.allPinned = false;
            res.firstUnpinned = *clear;
            last = *clear;
        }
        scanned_pages = static_cast<std::size_t>(last - start) + 1;
        res.wordsScanned =
            static_cast<std::size_t>(last / 64 - start / 64) + 1;
    }

    // Cost model (Table 1 "check" rows): finding the zero bit at the
    // very first page is the measured minimum (0.2 us); scanning the
    // whole range costs the measured maximum for that range length.
    if (!res.allPinned && scanned_pages <= 1)
        res.cost = costs().checkCostMin(npages ? npages : 1);
    else
        res.cost = costs().checkCostMax(scanned_pages ? scanned_pages : 1);
    return res;
}

void
PinBitVector::audit(check::AuditReport &report) const
{
    report.component("bitvector");
    std::size_t popcount = 0;
    for (std::uint64_t word : words)
        popcount += static_cast<std::size_t>(std::popcount(word));
    report.require(popcount == numSet,
                   "cached set-bit count %zu != recounted %zu",
                   numSet, popcount);
}

} // namespace utlb::core
