file(REMOVE_RECURSE
  "CMakeFiles/test_tlbsim.dir/test_tlbsim.cpp.o"
  "CMakeFiles/test_tlbsim.dir/test_tlbsim.cpp.o.d"
  "test_tlbsim"
  "test_tlbsim.pdb"
  "test_tlbsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tlbsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
