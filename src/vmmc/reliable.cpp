#include "vmmc/reliable.hpp"

#include "sim/log.hpp"

namespace utlb::vmmc {

using net::NodeId;
using net::Packet;
using net::PacketType;

ReliableEndpoint::ReliableEndpoint(NodeId self, net::Network &network,
                                   sim::EventQueue &event_queue,
                                   sim::Tick retry_timeout)
    : selfId(self), net(&network), events(&event_queue),
      timeout(retry_timeout)
{
}

void
ReliableEndpoint::sendReliable(Packet pkt)
{
    if (pkt.hdr.type == PacketType::Ack)
        sim::panic("acks are sent by the protocol, not callers");
    NodeId peer = pkt.hdr.dst;
    SenderChannel &ch = senders[peer];
    pkt.hdr.src = selfId;
    pkt.hdr.seq = ch.nextSeq++;
    ch.inflight.push_back(pkt);
    net->send(std::move(pkt));
    armTimer(peer);
}

void
ReliableEndpoint::armTimer(NodeId peer)
{
    SenderChannel &ch = senders[peer];
    if (ch.timerArmed || ch.inflight.empty())
        return;
    ch.timerArmed = true;
    events->after(timeout, [this, peer] { onTimeout(peer); });
}

void
ReliableEndpoint::onTimeout(NodeId peer)
{
    SenderChannel &ch = senders[peer];
    ch.timerArmed = false;
    if (ch.inflight.empty())
        return;
    ++numTimeouts;
    // Go-back-N: retransmit the whole window.
    for (const Packet &pkt : ch.inflight) {
        ++numRetransmits;
        net->send(pkt);
    }
    armTimer(peer);
}

void
ReliableEndpoint::sendAck(NodeId peer, std::uint32_t cumulative)
{
    Packet ack;
    ack.hdr.type = PacketType::Ack;
    ack.hdr.src = selfId;
    ack.hdr.dst = peer;
    ack.hdr.ackSeq = cumulative;
    ++numAcks;
    net->send(std::move(ack));
}

std::optional<Packet>
ReliableEndpoint::onPacket(const Packet &pkt)
{
    if (pkt.hdr.dst != selfId)
        sim::panic("packet for node %u arrived at node %u",
                   pkt.hdr.dst, selfId);

    if (pkt.hdr.type == PacketType::Ack) {
        SenderChannel &ch = senders[pkt.hdr.src];
        // Cumulative: everything up to and including ackSeq is
        // delivered. Guard against stale acks from retransmits.
        while (!ch.inflight.empty()
               && ch.baseSeq <= pkt.hdr.ackSeq) {
            ch.inflight.pop_front();
            ++ch.baseSeq;
        }
        return std::nullopt;
    }

    ReceiverChannel &ch = receivers[pkt.hdr.src];
    if (pkt.hdr.seq == ch.expectedSeq) {
        ++ch.expectedSeq;
        sendAck(pkt.hdr.src, pkt.hdr.seq);
        return pkt;
    }
    if (pkt.hdr.seq < ch.expectedSeq) {
        // Duplicate of something already delivered; re-ack so the
        // sender can advance if our ack was lost.
        ++numDuplicates;
        sendAck(pkt.hdr.src, ch.expectedSeq - 1);
        return std::nullopt;
    }
    // Out of order (a predecessor was dropped): go-back-N discards.
    ++numOutOfOrder;
    if (ch.expectedSeq > 0)
        sendAck(pkt.hdr.src, ch.expectedSeq - 1);
    return std::nullopt;
}

void
ReliableEndpoint::remapPeer(NodeId old_peer, NodeId new_peer)
{
    auto it = senders.find(old_peer);
    if (it == senders.end())
        return;
    ++numRemaps;
    std::deque<Packet> pending = std::move(it->second.inflight);
    senders.erase(it);
    // Re-issue the window to the new peer as fresh traffic; its
    // receiver channel starts from its own expected sequence.
    SenderChannel &ch = senders[new_peer];
    for (Packet &pkt : pending) {
        pkt.hdr.dst = new_peer;
        pkt.hdr.seq = ch.nextSeq++;
        ch.inflight.push_back(pkt);
        net->send(ch.inflight.back());
    }
    armTimer(new_peer);
}

std::size_t
ReliableEndpoint::unackedPackets() const
{
    std::size_t total = 0;
    for (const auto &[peer, ch] : senders)
        total += ch.inflight.size();
    return total;
}

} // namespace utlb::vmmc
