/**
 * @file
 * Table 3: application problem size, communication memory footprint
 * (4 KB pages), and translation-lookup count — measured from our
 * synthetic traces next to the paper's published targets.
 */

#include "bench_common.hpp"

int
main()
{
    using utlb::sim::TextTable;

    TextTable t("Table 3: problem size, communication footprint, "
                "lookup count (paper target vs generated trace)");
    t.setHeader({"Application", "Problem Size", "Footprint(paper)",
                 "Footprint(ours)", "Lookups(paper)", "Lookups(ours)",
                 "Pages/lookup", "Procs"});

    for (const auto &w : utlb::trace::allWorkloads()) {
        auto trace = utlb::trace::generateTrace(w.name);
        auto shape = utlb::trace::measure(trace);
        t.addRow({w.name, w.problemSize,
                  TextTable::num(std::uint64_t{w.footprintPages}),
                  TextTable::num(std::uint64_t{shape.distinctPages}),
                  TextTable::num(std::uint64_t{w.lookups}),
                  TextTable::num(std::uint64_t{shape.lookups}),
                  TextTable::num(shape.pagesPerLookup, 2),
                  TextTable::num(std::uint64_t{shape.processes})});
    }
    t.print(std::cout);
    return 0;
}
