#include "core/registration_cache.hpp"

#include <algorithm>

#include "sim/log.hpp"

namespace utlb::core {

using mem::kPageSize;
using mem::PinStatus;
using mem::Vpn;

RegistrationCache::RegistrationCache(UtlbDriver &drv, mem::ProcId pid,
                                     const RegCacheConfig &cfg)
    : driver(&drv), procId(pid), config(cfg)
{
}

RegistrationCache::~RegistrationCache()
{
    RegResult scratch;
    while (!map.empty())
        dropRegion(map.begin(), scratch);
}

bool
RegistrationCache::covered(mem::VirtAddr va, std::size_t len) const
{
    if (len == 0)
        return true;
    Vpn start = mem::pageOf(va);
    Vpn end = mem::pageOf(va + len - 1) + 1;
    // Regions are coalesced (no two abut), so full coverage implies
    // a single region contains the range.
    auto it = map.upper_bound(start);
    if (it == map.begin())
        return false;
    --it;
    return it->second.start <= start && it->second.end >= end;
}

void
RegistrationCache::dropRegion(std::map<Vpn, Region>::iterator it,
                              RegResult &res)
{
    Region &r = it->second;
    std::size_t npages = static_cast<std::size_t>(r.end - r.start);
    IoctlResult io =
        driver->ioctlUnpinAndInvalidate(procId, r.start, npages);
    res.cost += io.cost;
    res.pagesUnpinned += io.pagesDone;
    totalBytes -= npages * kPageSize;
    lru.erase(r.lruPos);
    map.erase(it);
}

bool
RegistrationCache::evictOne(Vpn keep_lo, Vpn keep_hi, RegResult &res)
{
    for (auto lru_it = lru.begin(); lru_it != lru.end(); ++lru_it) {
        auto map_it = map.find(*lru_it);
        if (map_it == map.end())
            sim::panic("rcache LRU entry missing from interval map");
        const Region &r = map_it->second;
        bool overlaps = r.start < keep_hi && keep_lo < r.end;
        if (overlaps)
            continue;
        dropRegion(map_it, res);
        ++numEvictions;
        ++res.regionsEvicted;
        return true;
    }
    return false;
}

RegResult
RegistrationCache::acquire(mem::VirtAddr va, std::size_t len)
{
    RegResult res;
    if (len == 0)
        return res;
    Vpn start = mem::pageOf(va);
    Vpn end = mem::pageOf(va + len - 1) + 1;

    res.cost += lookupCost();
    if (covered(va, len)) {
        res.hit = true;
        ++numHits;
        auto it = std::prev(map.upper_bound(start));
        lru.splice(lru.end(), lru, it->second.lruPos);
        return res;
    }
    ++numMisses;

    // Collect regions overlapping or abutting [start, end): they
    // will be merged into the new registration.
    Vpn merged_lo = start;
    Vpn merged_hi = end;
    std::vector<std::map<Vpn, Region>::iterator> absorb;
    auto it = map.upper_bound(start);
    if (it != map.begin() && std::prev(it)->second.end >= start)
        --it;
    while (it != map.end() && it->second.start <= end) {
        absorb.push_back(it);
        merged_lo = std::min(merged_lo, it->second.start);
        merged_hi = std::max(merged_hi, it->second.end);
        ++it;
    }

    // Pages that need fresh pinning: the gaps of [start, end) not
    // covered by absorbed regions.
    std::size_t new_pages = 0;
    {
        Vpn cursor = start;
        for (auto *vec_it = absorb.data();
             vec_it != absorb.data() + absorb.size(); ++vec_it) {
            const Region &r = (*vec_it)->second;
            if (r.start > cursor)
                new_pages += static_cast<std::size_t>(
                    std::min(end, r.start) - cursor);
            cursor = std::max(cursor, r.end);
            if (cursor >= end)
                break;
        }
        if (cursor < end)
            new_pages += static_cast<std::size_t>(end - cursor);
    }

    // Budget: make room before pinning anything new.
    if (config.maxBytes != 0) {
        while (totalBytes + new_pages * kPageSize > config.maxBytes) {
            if (!evictOne(merged_lo, merged_hi, res)) {
                res.ok = false;
                return res;
            }
        }
    }

    // Pin each gap with one batch ioctl.
    Vpn cursor = start;
    auto pin_gap = [&](Vpn lo, Vpn hi) -> bool {
        if (lo >= hi)
            return true;
        IoctlResult io = driver->ioctlPinAndInstall(
            procId, lo, static_cast<std::size_t>(hi - lo));
        res.cost += io.cost;
        if (io.status != PinStatus::Ok) {
            res.ok = false;
            return false;
        }
        res.pagesPinned += io.pagesDone;
        return true;
    };
    for (auto &absorbed : absorb) {
        const Region &r = absorbed->second;
        if (!pin_gap(cursor, std::min(end, r.start)))
            return res;
        cursor = std::max(cursor, r.end);
        if (cursor >= end)
            break;
    }
    if (!pin_gap(cursor, end))
        return res;

    // Replace absorbed regions with the merged one.
    numMerges += absorb.empty() ? 0 : absorb.size();
    for (auto &absorbed : absorb) {
        lru.erase(absorbed->second.lruPos);
        map.erase(absorbed);
    }
    lru.push_back(merged_lo);
    Region merged;
    merged.start = merged_lo;
    merged.end = merged_hi;
    merged.lruPos = std::prev(lru.end());
    map.emplace(merged_lo, merged);
    totalBytes += new_pages * kPageSize;
    return res;
}

} // namespace utlb::core
