#include "core/fill_pipeline.hpp"

#include <algorithm>

#include "sim/log.hpp"

namespace utlb::core {

FillPipeline::FillPipeline(UtlbDriver &drv, SharedUtlbCache &c,
                           const nic::NicTimings &t,
                           std::size_t queue_capacity)
    : driver(&drv), cache(&c), timings(&t), queue(queue_capacity),
      shard(c.makeShard())
{
    // Arm the cache's striped locking (idempotent; construction-time,
    // so quiescent): the fill thread installs through insertMT and
    // must never run against an unarmed cache.
    cache->enableConcurrent();
    batch.reserve(kBatchMax);
    filler = std::thread([this] { run(); });
}

FillPipeline::~FillPipeline()
{
    stop();
}

bool
FillPipeline::post(FillTicket &t, mem::ProcId pid, mem::Vpn vpn,
                   std::size_t width)
{
    if (width == 0)
        sim::fatal("FillPipeline::post width must be >= 1");
    t.pid = pid;
    t.vpn = vpn;
    t.width = width;
    // Relaxed is enough: the push's queue mutex orders these writes
    // before the fill thread's reads.
    t.done.store(false, std::memory_order_relaxed);
    t.postedAt = std::chrono::steady_clock::now();
    if (!queue.tryPush(&t))
        return false;
    statPosted.addRelaxed(1);
    return true;
}

void
FillPipeline::waitDone(const FillTicket &t)
{
    // Fast path: the fill already completed; the acquire pairs with
    // the fill thread's release store and makes result visible.
    if (t.done.load(std::memory_order_acquire))
        return;
    sim::UniqueLock lk(doneMu);
    while (!t.done.load(std::memory_order_acquire))
        doneCv.waitOn(lk);
}

void
FillPipeline::stop()
{
    queue.stop();
    if (!joined && filler.joinable()) {
        filler.join();
        joined = true;
        // The fill thread has exited: its shard is quiescent; fold
        // its cache-stat deltas into the global tree.
        cache->absorbShard(shard);
    }
}

void
FillPipeline::run()
{
    for (;;) {
        batch.clear();
        std::size_t n = queue.popBatch(batch, kBatchMax);
        if (n == 0)
            return; // stopped and drained
        statBatchSize.sample(static_cast<double>(n));
        statQueueDepth.sample(static_cast<double>(queue.depth()));

        // Service the batch stripe-major: installs then take each
        // stripe spinlock in runs. stable_sort keeps same-stripe
        // fills in post order (FIFO fairness within a stripe).
        std::stable_sort(
            batch.begin(), batch.end(),
            [this](const FillTicket *a, const FillTicket *b) {
                return cache->stripeIndex(a->pid, a->vpn) <
                       cache->stripeIndex(b->pid, b->vpn);
            });

        for (FillTicket *t : batch) {
            t->result = serviceMiss(*driver, *cache, *timings, t->pid,
                                    t->vpn, t->width, runBuf,
                                    repairBuf, &shard, nullptr);
            ++statFills;
            if (t->result.fault)
                ++statFaultFills;
            statOverlappedTicks +=
                static_cast<std::uint64_t>(t->result.cost);
            statFillLatency.sample(
                std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - t->postedAt)
                    .count());
            // Publish completion. The store sits inside the mutex so
            // a waiter cannot check done and sleep between our store
            // and notify (the classic lost wakeup); the release pairs
            // with waitDone's acquire to hand over result.
            {
                sim::LockGuard lk(doneMu);
                t->done.store(true, std::memory_order_release);
            }
            doneCv.notifyAll();
        }
    }
}

} // namespace utlb::core
