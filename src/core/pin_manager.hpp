/**
 * @file
 * User-level pinned-page manager (§3.1, §3.3, §3.4, §6.5).
 *
 * The part of the UTLB user-level library that keeps pages pinned:
 * it tracks pin status in a bit vector, invokes the driver ioctl to
 * pin on demand (optionally pre-pinning a run of contiguous pages,
 * §6.5), and — when the process' physical memory allowance runs out —
 * selects victims with an application-chosen replacement policy and
 * unpins them one page at a time (§6.5: "unpinning is still done one
 * page at a time").
 *
 * Correctness: pages named in outstanding send requests can be
 * locked with lockRange(); the victim search skips locked pages
 * (§3.1: the library "must only select virtual pages that will not
 * be involved in any outstanding send requests").
 */

#ifndef UTLB_CORE_PIN_MANAGER_HPP
#define UTLB_CORE_PIN_MANAGER_HPP

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "core/bitvector.hpp"
#include "core/driver.hpp"
#include "core/replacement.hpp"
#include "mem/page.hpp"
#include "sim/mutex.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace utlb::core {

class PinBudget;

/** Configuration of a process' pin manager. */
struct PinManagerConfig {
    /**
     * The library's own pin budget in pages (0 = unlimited). This is
     * the "amount of physical memory that a user process can pin"
     * (§3.4); the experiments use 4 MB (1024 pages) and 16 MB (4096
     * pages) budgets.
     */
    std::size_t memLimitPages = 0;

    /** Sequential pre-pin batch size (§6.5); 1 disables pre-pinning. */
    std::size_t prepinPages = 1;

    /** Replacement policy for victim selection (§3.4). */
    PolicyKind policy = PolicyKind::Lru;

    /** Seed for the RANDOM policy. */
    std::uint64_t seed = 12345;

    /**
     * Optional fleet-wide quota (src/core/pin_budget.hpp). When set,
     * the manager attaches on construction, detaches on destruction,
     * and treats PinBudget::limitFor() as a second pin budget next
     * to memLimitPages — the tighter of the two wins, and evictions
     * the quota forces count as quota_throttles. Must outlive the
     * manager. nullptr (the default) keeps behavior bit-identical to
     * the pre-quota library.
     */
    PinBudget *budget = nullptr;

    /** HardCap override for this tenant (0 = the pool default). */
    std::size_t quotaCapPages = 0;

    /** WeightedShare weight for this tenant (0 is remapped to 1). */
    std::size_t quotaWeight = 1;
};

/** Accounting of one ensurePinned() call. */
struct EnsureResult {
    bool ok = true;               //!< all pages pinned on return
    sim::Tick cost = 0;           //!< modeled host time (check+ioctls)
    sim::Tick pinCost = 0;        //!< portion spent in pin ioctls
    sim::Tick unpinCost = 0;      //!< portion spent in unpin ioctls
    bool checkMiss = false;       //!< some page was found unpinned
    std::size_t pagesPinned = 0;  //!< newly pinned (incl. pre-pins)
    std::size_t pagesUnpinned = 0;//!< evicted to make room
    std::size_t pinIoctls = 0;
    std::size_t unpinIoctls = 0;
};

/**
 * Per-process user-level pin manager.
 *
 * Invariant (checked by the test suite): the bit vector, the
 * replacement policy's tracked set, and the kernel pin facility's
 * per-process pin set agree at every quiescent point.
 *
 * Thread safety: single-threaded by default. After
 * enableConcurrent(), the mutating entry points and their read-side
 * counterparts (ensurePinned*, lockRange/unlockRange/isLocked,
 * isPinned/pinnedPages, releasePage) serialize on an internal
 * mutex, so overlapping pins, releases, and send-locks from many
 * threads stay coherent. The paper's library gets this atomicity
 * for free by running inside one process; the simulated one takes a
 * lock. bitVector(), policy(), stats(), and audit() remain
 * unlocked: call them only at quiescent points.
 */
class PinManager
{
  public:
    PinManager(UtlbDriver &drv, mem::ProcId pid,
               const PinManagerConfig &cfg);

    /** Detaches from the shared PinBudget, if one was configured. */
    ~PinManager();

    PinManager(const PinManager &) = delete;
    PinManager &operator=(const PinManager &) = delete;

    mem::ProcId pid() const { return procId; }
    const PinManagerConfig &config() const { return cfg; }

    /**
     * Make the public entry points callable from many threads (see
     * class comment). Idempotent; call before spawning workers. The
     * uncontended lock is not charged to the modeled cost, so a
     * single-threaded caller sees bit-identical results and stats
     * with or without it.
     */
    void enableConcurrent();

    /** True once enableConcurrent() has run. */
    bool isConcurrent() const { return mu != nullptr; }

    /**
     * Guarantee [start, start+npages) is pinned with translations
     * installed, evicting other pages if the budget requires it.
     */
    EnsureResult ensurePinned(mem::Vpn start, std::size_t npages);

    /**
     * Batched ensurePinned: identical modeled cost, stats, and
     * policy end state, but the already-pinned fast path notifies
     * the replacement policy with one onAccessRange() instead of a
     * per-page loop. Used by the range-translation hot path.
     */
    EnsureResult ensurePinnedRange(mem::Vpn start, std::size_t npages);

    /** Mark pages as involved in an outstanding send. */
    void lockRange(mem::Vpn start, std::size_t npages);

    /** Release an outstanding-send lock. */
    void unlockRange(mem::Vpn start, std::size_t npages);

    /** True if @p vpn is locked against eviction. */
    bool isLocked(mem::Vpn vpn) const;

    /** True if the library believes @p vpn is pinned. */
    bool isPinned(mem::Vpn vpn) const;

    /** Number of pages this manager currently holds pinned. */
    std::size_t pinnedPages() const;

    /** Voluntarily unpin a page (e.g. on buffer free). */
    bool releasePage(mem::Vpn vpn);

    /** The pin-status bit vector (read-only). */
    const PinBitVector &bitVector() const { return bits; }

    /** The replacement policy (read-only access for tests). */
    const ReplacementPolicy &policy() const { return *repl; }

    /** @name Lifetime counters @{ */
    std::uint64_t totalChecks() const { return statChecks.value(); }
    std::uint64_t totalCheckMisses() const
    {
        return statCheckMisses.value();
    }
    std::uint64_t totalEvictions() const
    {
        return statEvictions.value();
    }
    std::uint64_t totalQuotaThrottles() const
    {
        return statQuotaThrottles.value();
    }
    /** @} */

    /** This manager's statistics subtree (policy group nested). */
    sim::StatGroup &stats() { return statsGrp; }
    const sim::StatGroup &stats() const { return statsGrp; }

    /**
     * Invariant auditor: the bit vector's count agrees with its own
     * words and with the library's pin budget, every page the library
     * believes pinned is pinned in the kernel facility, and every
     * outstanding-send lock covers a pinned page (no in-flight DMA
     * may target an unpinned frame).
     */
    void audit(check::AuditReport &report) const;

  private:
    friend struct check::TestTamper;

    /**
     * The concurrent-mode lock, or an empty (unlocked) handle when
     * enableConcurrent() was never called. Public entry points hold
     * it and delegate to the unlocked *Impl internals — the slow
     * path re-enters lockRange/isLocked from inside itself, so the
     * internals must not re-acquire. Conditional acquisition is
     * outside the thread-safety analysis (see sim::OptionalLockGuard);
     * the lint's scoped-guard rule covers this file instead.
     */
    sim::OptionalLockGuard guard() const;

    void lockRangeImpl(mem::Vpn start, std::size_t npages);
    void unlockRangeImpl(mem::Vpn start, std::size_t npages);
    bool isLockedImpl(mem::Vpn vpn) const;

    /**
     * Evict one victim page to free budget.
     * @return false if nothing is evictable.
     */
    bool evictOne(EnsureResult &res);

    /** Pin a contiguous run of currently-unpinned pages. */
    bool pinRun(mem::Vpn start, std::size_t npages, EnsureResult &res);

    /**
     * Shared check-miss path of ensurePinned/ensurePinnedRange:
     * pins every unpinned run in the request, skipping pinned
     * stretches a 64-page bitmap word at a time.
     */
    EnsureResult ensureSlow(mem::Vpn start, std::size_t npages,
                            mem::Vpn firstUnpinned, EnsureResult res);

    UtlbDriver *driver;
    mem::ProcId procId;

    /**
     * The driver shard serving procId, resolved once at construction
     * (the shard layout is fixed for the driver's lifetime). Every
     * ioctl this manager issues goes through the handle overloads,
     * skipping the per-call shard lookup on the pin hot path.
     */
    UtlbDriver::ShardHandle homeShard;

    PinManagerConfig cfg;
    /** Non-null once enableConcurrent() ran; mutable for guards in
     *  const readers (isLocked/isPinned/pinnedPages). Annotated
     *  capability type so any future direct use is analyzable. */
    mutable std::unique_ptr<sim::Mutex> mu;
    PinBitVector bits;
    std::unique_ptr<ReplacementPolicy> repl;
    std::unordered_map<mem::Vpn, std::uint32_t> locks;

    sim::StatGroup statsGrp{"pin_manager"};
    sim::Counter statChecks{&statsGrp, "checks",
                            "bit-vector range checks (one per "
                            "ensurePinned call)"};
    sim::Counter statCheckMisses{&statsGrp, "check_misses",
                                 "checks that found an unpinned page"};
    sim::Counter statEvictions{&statsGrp, "evictions",
                               "pages unpinned to free budget"};
    sim::Counter statQuotaThrottles{&statsGrp, "quota_throttles",
                                    "evictions forced by the shared "
                                    "tenant quota (subset of "
                                    "evictions)"};
    sim::Counter statPagesPinned{&statsGrp, "pages_pinned",
                                 "pages pinned (incl. pre-pins)"};
    sim::Histogram statEnsureLatency{
        &statsGrp, "ensure_latency_us",
        "modeled host-side cost per ensurePinned call", 50.0, 40};

    // Replacement-policy traffic, kept outside the ReplacementPolicy
    // interface so external policy implementations need no changes.
    sim::StatGroup statsPolicy{"policy", &statsGrp};
    sim::Counter statPolicyAccesses{&statsPolicy, "accesses",
                                    "onAccess notifications"};
    sim::Counter statPolicyVictims{&statsPolicy, "victim_requests",
                                   "victim selections requested"};
    sim::Counter statPolicyVictimFails{&statsPolicy, "victim_failures",
                                       "victim requests with no "
                                       "evictable page"};
};

} // namespace utlb::core

#endif // UTLB_CORE_PIN_MANAGER_HPP
