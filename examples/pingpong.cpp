/**
 * @file
 * Ping-pong latency / bandwidth microbenchmark (§5-style).
 *
 * Two processes on two nodes bounce messages of increasing size and
 * report half-round-trip latency and streaming bandwidth, first on a
 * cold UTLB (pinning on the critical path) and then warm (the UTLB
 * common case: no system calls, no interrupts). Also demonstrates
 * remote fetch and the effect of packet loss on the reliable
 * protocol.
 *
 * Run: ./build/examples/pingpong
 */

#include <iostream>
#include <vector>

#include "sim/table.hpp"
#include "vmmc/system.hpp"

namespace {

using namespace utlb;
using mem::addrOf;
using sim::TextTable;
using sim::Tick;
using sim::ticksToUs;

/** One latency sample: send size bytes, run to quiescence. */
double
sendOnce(vmmc::Cluster &cluster, vmmc::VmmcNode &from,
         mem::ProcId pid, mem::VirtAddr va, std::size_t bytes,
         vmmc::ImportSlot slot, vmmc::VmmcNode &to)
{
    Tick start = cluster.clock().now();
    if (!from.send(pid, va, bytes, slot, 0))
        return -1.0;
    cluster.run();
    return ticksToUs(to.lastDepositTime() - start);
}

} // namespace

int
main()
{
    vmmc::ClusterConfig cfg;
    cfg.nodes = 2;
    cfg.node.memoryFrames = 32768;
    vmmc::Cluster cluster(cfg);
    auto &a = cluster.node(0);
    auto &b = cluster.node(1);
    a.createProcess(1);
    b.createProcess(2);

    constexpr std::size_t kMax = 256 * 1024;
    auto exp = b.exportBuffer(2, addrOf(1000), kMax);
    auto slot = a.importBuffer(1, 1, *exp);

    const std::vector<std::size_t> sizes{64,   256,   1024, 4096,
                                         16384, 65536, kMax};

    TextTable t("One-way latency and bandwidth, cold vs warm UTLB");
    t.setHeader({"bytes", "cold (us)", "warm (us)", "warm BW (MB/s)"});
    std::size_t region = 0;
    for (std::size_t size : sizes) {
        // Fresh buffer per size => cold path pins on first use.
        mem::VirtAddr va = addrOf(5000 + 700 * region++);
        std::vector<std::uint8_t> data(size, 0xab);
        a.space(1).writeBytes(va, data);

        double cold = sendOnce(cluster, a, 1, va, size, slot, b);
        double warm = sendOnce(cluster, a, 1, va, size, slot, b);
        double bw = static_cast<double>(size) / warm;  // bytes/us
        t.addRow({TextTable::num(std::uint64_t{size}),
                  TextTable::num(cold, 1), TextTable::num(warm, 1),
                  TextTable::num(bw, 1)});
    }
    t.print(std::cout);

    // Remote fetch: pull the data back.
    std::cout << "\nremote fetch of 4 KB: ";
    Tick start = cluster.clock().now();
    a.fetch(1, addrOf(9000), 4096, slot, 0);
    cluster.run();
    std::cout << ticksToUs(a.lastDepositTime() - start)
              << " us (request + reply)\n";

    // The same transfer under 20% packet loss: the link-level
    // retransmission protocol (§4.1) recovers transparently.
    vmmc::ClusterConfig lossy_cfg = cfg;
    lossy_cfg.lossProbability = 0.2;
    vmmc::Cluster lossy(lossy_cfg);
    lossy.node(0).createProcess(1);
    lossy.node(1).createProcess(2);
    auto lexp = lossy.node(1).exportBuffer(2, addrOf(1000), kMax);
    auto lslot = lossy.node(0).importBuffer(1, 1, *lexp);
    std::vector<std::uint8_t> payload(64 * 1024, 0x5c);
    lossy.node(0).space(1).writeBytes(addrOf(5000), payload);

    double clean = sendOnce(cluster, a, 1, addrOf(5000 + 128), 65536,
                            slot, b);
    double rough = sendOnce(lossy, lossy.node(0), 1, addrOf(5000),
                            65536, lslot, lossy.node(1));
    std::cout << "\n64 KB transfer, 0% loss: " << clean
              << " us;  20% loss: " << rough << " us ("
              << lossy.node(0).reliable().retransmissions()
              << " retransmissions, data intact)\n";
    return 0;
}
