/**
 * @file
 * Communication trace records (§6).
 *
 * The paper instruments VMMC to trace "each send and remote read
 * request along with a globally-synchronized clock", serializing the
 * five processes on each SMP node (four application processes plus
 * one SVM protocol process) by timestamp, and feeds the result to
 * the UTLB simulator. A TraceRecord is one such communication
 * operation; a Trace is one node's serialized stream.
 */

#ifndef UTLB_TRACE_RECORD_HPP
#define UTLB_TRACE_RECORD_HPP

#include <cstdint>
#include <vector>

#include "mem/page.hpp"

namespace utlb::trace {

/** Kind of communication operation. */
enum class TraceOp : std::uint8_t {
    Send,   //!< remote store from a local buffer
    Fetch,  //!< remote read into a local buffer
};

/** One communication operation (one "translation lookup"). */
struct TraceRecord {
    std::uint64_t seq = 0;      //!< serialized position on the node
    mem::ProcId pid = 0;        //!< process issuing the operation
    TraceOp op = TraceOp::Send;
    mem::VirtAddr va = 0;       //!< local buffer virtual address
    std::uint32_t nbytes = 0;   //!< transfer length
};

/** One node's serialized communication trace. */
using Trace = std::vector<TraceRecord>;

/** Aggregate shape of a trace (compare against Table 3). */
struct TraceShape {
    std::size_t lookups = 0;         //!< records
    std::size_t distinctPages = 0;   //!< communication footprint
    std::size_t processes = 0;       //!< distinct pids
    double pagesPerLookup = 0.0;     //!< mean pages spanned
    std::uint64_t totalBytes = 0;
};

/** Measure a trace's shape. */
TraceShape measure(const Trace &trace);

} // namespace utlb::trace

#endif // UTLB_TRACE_RECORD_HPP
