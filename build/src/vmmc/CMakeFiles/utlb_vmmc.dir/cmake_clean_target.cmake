file(REMOVE_RECURSE
  "libutlb_vmmc.a"
)
