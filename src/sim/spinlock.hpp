/**
 * @file
 * A minimal test-and-test-and-set spinlock.
 *
 * Used for the striped per-set locks of the concurrent Shared
 * UTLB-Cache: critical sections there are a handful of loads and
 * stores on one cache line, far below the cost of parking a thread,
 * so spinning beats std::mutex. The relaxed re-test loop keeps the
 * waiting thread reading its local cache copy instead of hammering
 * the lock line with RMW traffic.
 */

#ifndef UTLB_SIM_SPINLOCK_HPP
#define UTLB_SIM_SPINLOCK_HPP

#include <atomic>

namespace utlb::sim {

class Spinlock
{
  public:
    Spinlock() = default;

    Spinlock(const Spinlock &) = delete;
    Spinlock &operator=(const Spinlock &) = delete;

    void
    lock()
    {
        while (flag.test_and_set(std::memory_order_acquire)) {
            while (flag.test(std::memory_order_relaxed)) {
#if defined(__x86_64__) || defined(__i386__)
                __builtin_ia32_pause();
#endif
            }
        }
    }

    void
    unlock()
    {
        flag.clear(std::memory_order_release);
    }

  private:
    std::atomic_flag flag = ATOMIC_FLAG_INIT;
};

/** Scoped Spinlock holder. */
class SpinGuard
{
  public:
    explicit SpinGuard(Spinlock &l) : lk(&l) { lk->lock(); }
    ~SpinGuard() { lk->unlock(); }

    SpinGuard(const SpinGuard &) = delete;
    SpinGuard &operator=(const SpinGuard &) = delete;

  private:
    Spinlock *lk;
};

} // namespace utlb::sim

#endif // UTLB_SIM_SPINLOCK_HPP
