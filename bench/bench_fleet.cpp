/**
 * @file
 * Tenant-fleet harness: thousands of processes, Zipf-skewed buffer
 * popularity, bursty attach/teardown churn, and a global pin budget
 * under pressure — the multi-programmed workload the Shared
 * UTLB-Cache's process tagging and index offsetting exist for
 * (§3.2), at the scale the ROADMAP's fleet item asks for.
 *
 * Each worker thread owns a contiguous block of tenants and replays
 * its own deterministic sim::TenantFleet op stream against the one
 * shared NIC stack: Translate ops run translateRange over the named
 * buffer, Detach ops tear the tenant down through the driver
 * (stat-tree disown, SRAM release, unpin-everything), Attach ops
 * re-register it. Per-tenant modeled latency samples feed
 * p50/p99/p999 cells; cross-tenant pollution (evictions whose victim
 * belonged to another pid) and quota throttles come from the new
 * shared-cache / pin-manager counters.
 *
 * Fairness ablations (scripts/fleet_sweep.py drives the grid):
 *   --offsetting 0|1     process-dependent index offsetting
 *   --budget-mode M      off | hard | weighted (PinBudget quota)
 *
 * JSON ("utlb-bench-v1", bench "fleet"):
 *   mode=summary   fleet-wide totals, percentiles, pollution, audit
 *   mode=tenant    one point per tenant: ops, pages, p50/p99/p999,
 *                  quota_throttles
 *   mode=conservation   cross-checks the sweep script gates on
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "check/audit.hpp"
#include "core/driver.hpp"
#include "core/pin_budget.hpp"
#include "core/utlb.hpp"
#include "mem/address_space.hpp"
#include "mem/phys_memory.hpp"
#include "mem/pinning.hpp"
#include "nic/sram.hpp"
#include "nic/timing.hpp"
#include "sim/log.hpp"
#include "sim/stats.hpp"
#include "sim/tenant_fleet.hpp"

namespace {

namespace mem = utlb::mem;
namespace core = utlb::core;
namespace nic = utlb::nic;
namespace sim = utlb::sim;

struct FleetOptions {
    std::size_t tenants = 1024;
    std::size_t buffersPerTenant = 4;
    std::size_t pagesPerBuffer = 32;
    double alpha = 1.0;
    double churn = 0.02;
    std::size_t churnBurst = 8;
    unsigned threads = 2;
    std::size_t opsPerWorker = 20000;
    std::string budgetMode = "weighted"; //!< off | hard | weighted
    std::size_t budgetPages = 0;         //!< 0 = tenants * 16
    bool offsetting = true;
    std::size_t entries = 4096;
    unsigned assoc = 1;
    unsigned driverShards = 4;
    std::uint64_t seed = 42;
    bool perTenantPoints = true;
};

FleetOptions
parseArgs(int argc, char **argv)
{
    FleetOptions o;
    auto need = [&](int i) {
        if (i + 1 >= argc)
            sim::fatal("%s needs a value", argv[i]);
        return std::string(argv[i + 1]);
    };
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--tenants")
            o.tenants = std::stoul(need(i++));
        else if (a == "--buffers")
            o.buffersPerTenant = std::stoul(need(i++));
        else if (a == "--pages-per-buffer")
            o.pagesPerBuffer = std::stoul(need(i++));
        else if (a == "--alpha")
            o.alpha = std::stod(need(i++));
        else if (a == "--churn")
            o.churn = std::stod(need(i++));
        else if (a == "--churn-burst")
            o.churnBurst = std::stoul(need(i++));
        else if (a == "--threads")
            o.threads = static_cast<unsigned>(std::stoul(need(i++)));
        else if (a == "--ops")
            o.opsPerWorker = std::stoul(need(i++));
        else if (a == "--budget-mode")
            o.budgetMode = need(i++);
        else if (a == "--budget-pages")
            o.budgetPages = std::stoul(need(i++));
        else if (a == "--offsetting")
            o.offsetting = std::stoul(need(i++)) != 0;
        else if (a == "--entries")
            o.entries = std::stoul(need(i++));
        else if (a == "--assoc")
            o.assoc = static_cast<unsigned>(std::stoul(need(i++)));
        else if (a == "--driver-shards")
            o.driverShards =
                static_cast<unsigned>(std::stoul(need(i++)));
        else if (a == "--seed")
            o.seed = std::stoull(need(i++));
        else if (a == "--no-tenant-points")
            o.perTenantPoints = false;
        else
            sim::fatal("unknown option %s", a.c_str());
    }
    if (o.tenants == 0 || o.threads == 0)
        sim::fatal("need at least one tenant and one thread");
    if (o.budgetMode != "off" && o.budgetMode != "hard"
        && o.budgetMode != "weighted")
        sim::fatal("--budget-mode must be off, hard, or weighted");
    // Default quota: 48 pages/tenant — enough to pin one 32-page
    // buffer, well short of the 128-page per-tenant working set, so
    // every buffer switch under quota evicts (throttles) but ops
    // still complete.
    if (o.budgetPages == 0)
        o.budgetPages = o.tenants * 48;
    return o;
}

/** The one shared NIC stack every tenant attaches to. */
struct FleetStack {
    mem::PhysMemory phys;
    mem::PinFacility pins;
    nic::Sram sram;
    nic::NicTimings timings;
    core::HostCosts costs;
    core::SharedUtlbCache cache;
    core::UtlbDriver driver;
    std::unique_ptr<core::PinBudget> budget;

    explicit FleetStack(const FleetOptions &o)
        : // Frames for every tenant's full working set (quota off is
          // the worst case), one leaf-table frame per tenant, plus
          // slack for the garbage page and allocator rounding.
          phys(o.tenants
                   * (o.buffersPerTenant * o.pagesPerBuffer + 2)
               + 4096),
          // 4 KB directory per live tenant plus the cache's claim;
          // churn recycles regions via Sram::free, so this does not
          // need headroom for the attach total, only the live peak.
          sram(o.tenants * 4096 + (1u << 20)),
          costs(core::HostProfile::PentiumIINT),
          cache(core::CacheConfig{o.entries, o.assoc, o.offsetting},
                timings, &sram),
          driver(phys, pins, sram, cache, costs, o.driverShards)
    {
        if (o.budgetMode == "hard") {
            budget = std::make_unique<core::PinBudget>(
                o.budgetPages / (o.tenants ? o.tenants : 1),
                core::QuotaMode::HardCap);
        } else if (o.budgetMode == "weighted") {
            budget = std::make_unique<core::PinBudget>(
                o.budgetPages, core::QuotaMode::WeightedShare);
        }
    }
};

/** Everything a worker tracks about one of its tenants. */
struct TenantState {
    std::unique_ptr<mem::AddressSpace> space;
    std::unique_ptr<core::UserUtlb> view;
    std::vector<double> latencyUs;
    std::uint64_t ops = 0;
    std::uint64_t pages = 0;
    std::uint64_t failures = 0;
    std::uint64_t attaches = 0;
    std::uint64_t detaches = 0;
    std::uint64_t quotaThrottles = 0;
};

double
percentile(std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
}

/** One worker: owns tenants [first, first + count). */
class Worker
{
  public:
    Worker(FleetStack &stack, const FleetOptions &o,
           std::size_t first, std::size_t count, std::uint64_t seed)
        : stack(&stack), opts(&o), firstTenant(first)
    {
        tenants.resize(count);
        sim::FleetConfig fc;
        fc.tenants = count;
        fc.buffersPerTenant = o.buffersPerTenant;
        fc.pagesPerBuffer = o.pagesPerBuffer;
        fc.zipfAlpha = o.alpha;
        fc.churnProbability = o.churn;
        fc.churnBurst = o.churnBurst;
        fc.seed = seed;
        fleet = std::make_unique<sim::TenantFleet>(fc);
    }

    mem::ProcId pidOf(std::size_t local) const
    {
        return static_cast<mem::ProcId>(firstTenant + local + 1);
    }

    void
    attach(std::size_t local)
    {
        TenantState &t = tenants[local];
        mem::ProcId pid = pidOf(local);
        t.space = std::make_unique<mem::AddressSpace>(pid,
                                                      stack->phys);
        stack->driver.registerProcess(*t.space);
        core::UtlbConfig ucfg;
        ucfg.prefetchEntries = 8;
        ucfg.concurrent = true;
        ucfg.pin.budget = stack->budget.get();
        t.view = std::make_unique<core::UserUtlb>(
            stack->driver, stack->cache, stack->timings, pid, ucfg);
        ++t.attaches;
    }

    /** Harvest per-tenant counters that die with the view. */
    void
    harvest(std::size_t local)
    {
        TenantState &t = tenants[local];
        if (!t.view)
            return;
        t.quotaThrottles +=
            t.view->pinManager().totalQuotaThrottles();
    }

    void
    detach(std::size_t local)
    {
        TenantState &t = tenants[local];
        harvest(local);
        // Order matters: the view's dtor flushes its stat shard and
        // detaches the quota before the driver invalidates the
        // tenant's cache lines and unpins everything it held.
        t.view.reset();
        stack->driver.unregisterProcess(pidOf(local));
        t.space.reset();
        ++t.detaches;
    }

    void
    translate(std::size_t local, std::uint32_t buffer)
    {
        TenantState &t = tenants[local];
        mem::VirtAddr va = static_cast<mem::VirtAddr>(buffer)
            * opts->pagesPerBuffer * mem::kPageSize;
        core::Translation tr = t.view->translateRange(
            va, opts->pagesPerBuffer * mem::kPageSize);
        ++t.ops;
        t.pages += tr.pageAddrs.size();
        if (!tr.ok)
            ++t.failures; // pin pressure; the op still measured
        t.latencyUs.push_back(
            sim::ticksToUs(tr.hostCost + tr.nicCost));
    }

    void
    run()
    {
        // Every tenant starts attached (the fleet generator's
        // initial state); churn tears some down as the stream runs.
        for (std::size_t l = 0; l < tenants.size(); ++l)
            attach(l);
        for (std::size_t op = 0; op < opts->opsPerWorker; ++op) {
            sim::FleetOp fop = fleet->next();
            switch (fop.kind) {
            case sim::FleetOp::Kind::Translate:
                translate(fop.tenant, fop.buffer);
                break;
            case sim::FleetOp::Kind::Attach:
                attach(fop.tenant);
                break;
            case sim::FleetOp::Kind::Detach:
                detach(fop.tenant);
                break;
            }
        }
    }

    /** Post-run quiesce: flush every live view's stat shard. */
    void
    flush()
    {
        for (std::size_t l = 0; l < tenants.size(); ++l) {
            harvest(l);
            if (tenants[l].view)
                tenants[l].view->flushShardStats();
        }
    }

    /** Tear down every live tenant (post-measurement). */
    void
    teardownAll()
    {
        for (std::size_t l = 0; l < tenants.size(); ++l) {
            if (tenants[l].view) {
                tenants[l].view.reset();
                stack->driver.unregisterProcess(pidOf(l));
                tenants[l].space.reset();
            }
        }
    }

    FleetStack *stack;
    const FleetOptions *opts;
    std::size_t firstTenant;
    std::vector<TenantState> tenants;
    std::unique_ptr<sim::TenantFleet> fleet;
};

/** Count live "host_table<pid>" stat groups in the driver's tree. */
std::size_t
statTreeTableCount(core::UtlbDriver &driver)
{
    std::ostringstream os;
    driver.stats().dumpJson(os);
    const std::string dump = os.str();
    const std::string needle = "\"host_table";
    std::size_t n = 0;
    for (std::size_t pos = dump.find(needle); pos != std::string::npos;
         pos = dump.find(needle, pos + needle.size()))
        ++n;
    return n;
}

} // namespace

int
main(int argc, char **argv)
{
    FleetOptions o = parseArgs(argc, argv);
    bench::JsonReporter json("fleet");
    json.setWorkerThreads(o.threads);

    FleetStack stack(o);

    // Partition tenants into contiguous per-worker blocks; each
    // worker replays its own deterministic fleet stream, so the
    // whole run is reproducible for a given (seed, threads).
    std::vector<std::unique_ptr<Worker>> workers;
    std::size_t per = o.tenants / o.threads;
    std::size_t extra = o.tenants % o.threads;
    std::size_t first = 0;
    for (unsigned w = 0; w < o.threads; ++w) {
        std::size_t count = per + (w < extra ? 1 : 0);
        if (count == 0)
            continue;
        workers.push_back(std::make_unique<Worker>(
            stack, o, first, count, o.seed + w));
        first += count;
    }

    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(workers.size());
    for (auto &w : workers)
        threads.emplace_back([&wk = *w] { wk.run(); });
    for (auto &t : threads)
        t.join();
    double wallNs = std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - t0)
                        .count();

    // Quiesce: fold every live worker shard, then audit while the
    // fleet is still attached (pin conservation is only interesting
    // with live pins).
    for (auto &w : workers)
        w->flush();
    utlb::check::AuditReport report;
    stack.cache.audit(report);
    stack.pins.audit(report);
    std::size_t liveTenants = 0;
    for (auto &w : workers) {
        for (std::size_t l = 0; l < w->tenants.size(); ++l) {
            if (!w->tenants[l].view)
                continue;
            ++liveTenants;
            w->tenants[l].view->pinManager().audit(report);
        }
    }
    std::size_t statTables = statTreeTableCount(stack.driver);

    if (!report.ok())
        std::cerr << report.summary();

    // Fleet-wide aggregates + per-tenant percentile points.
    std::vector<double> allLat;
    std::uint64_t ops = 0, pages = 0, failures = 0, attaches = 0,
                  detaches = 0, throttles = 0, tenantPages = 0;
    for (auto &w : workers) {
        for (std::size_t l = 0; l < w->tenants.size(); ++l) {
            TenantState &t = w->tenants[l];
            ops += t.ops;
            pages += t.pages;
            failures += t.failures;
            attaches += t.attaches;
            detaches += t.detaches;
            throttles += t.quotaThrottles;
            tenantPages += t.pages;
            allLat.insert(allLat.end(), t.latencyUs.begin(),
                          t.latencyUs.end());
        }
    }
    std::sort(allLat.begin(), allLat.end());

    std::uint64_t evictions = stack.cache.evictions();
    std::uint64_t cross = stack.cache.crossTenantEvictions();

    json.add(
        {{"scenario", "fleet"}, {"mode", "summary"}},
        {{"tenants", static_cast<double>(o.tenants)},
         {"live_tenants", static_cast<double>(liveTenants)},
         {"alpha", o.alpha},
         {"churn", o.churn},
         {"offsetting", o.offsetting ? 1.0 : 0.0},
         {"budget_hard", o.budgetMode == "hard" ? 1.0 : 0.0},
         {"budget_weighted",
          o.budgetMode == "weighted" ? 1.0 : 0.0},
         {"budget_pages", static_cast<double>(o.budgetPages)},
         {"ops", static_cast<double>(ops)},
         {"pages", static_cast<double>(pages)},
         {"failed_ops", static_cast<double>(failures)},
         {"attaches", static_cast<double>(attaches)},
         {"detaches", static_cast<double>(detaches)},
         {"evictions", static_cast<double>(evictions)},
         {"cross_evictions", static_cast<double>(cross)},
         {"pollution_ratio",
          evictions ? static_cast<double>(cross)
                  / static_cast<double>(evictions)
                    : 0.0},
         {"quota_throttles", static_cast<double>(throttles)},
         {"p50_us", percentile(allLat, 0.50)},
         {"p99_us", percentile(allLat, 0.99)},
         {"p999_us", percentile(allLat, 0.999)},
         {"wall_ms", wallNs / 1e6},
         {"audit_clean", report.ok() ? 1.0 : 0.0}});

    if (o.perTenantPoints) {
        for (auto &w : workers) {
            for (std::size_t l = 0; l < w->tenants.size(); ++l) {
                TenantState &t = w->tenants[l];
                std::sort(t.latencyUs.begin(), t.latencyUs.end());
                json.add(
                    {{"scenario", "fleet"},
                     {"mode", "tenant"},
                     {"tenant",
                      std::to_string(w->pidOf(l))}},
                    {{"ops", static_cast<double>(t.ops)},
                     {"pages", static_cast<double>(t.pages)},
                     {"attaches", static_cast<double>(t.attaches)},
                     {"detaches", static_cast<double>(t.detaches)},
                     {"quota_throttles",
                      static_cast<double>(t.quotaThrottles)},
                     {"p50_us", percentile(t.latencyUs, 0.50)},
                     {"p99_us", percentile(t.latencyUs, 0.99)},
                     {"p999_us", percentile(t.latencyUs, 0.999)}});
            }
        }
    }

    // The cells scripts/fleet_sweep.py gates on: per-tenant page
    // sums must re-add to the fleet total, the live stat tree must
    // hold exactly one host_table group per live tenant (stat-tree
    // leak check), and the audits must be clean.
    json.add({{"scenario", "fleet"}, {"mode", "conservation"}},
             {{"sum_tenant_pages", static_cast<double>(tenantPages)},
              {"pages", static_cast<double>(pages)},
              {"live_tenants", static_cast<double>(liveTenants)},
              {"stat_tree_tables", static_cast<double>(statTables)},
              {"audit_violations",
               static_cast<double>(report.all().size())},
              {"audit_clean", report.ok() ? 1.0 : 0.0}});

    std::printf("fleet: %zu tenants (%zu live), %u threads, %llu ops, "
                "%llu pages, %llu attaches, %llu detaches\n",
                o.tenants, liveTenants, o.threads,
                static_cast<unsigned long long>(ops),
                static_cast<unsigned long long>(pages),
                static_cast<unsigned long long>(attaches),
                static_cast<unsigned long long>(detaches));
    std::printf(
        "fleet: p50 %.2f us, p99 %.2f us, p999 %.2f us | "
        "evictions %llu (cross %llu), quota throttles %llu\n",
        percentile(allLat, 0.50), percentile(allLat, 0.99),
        percentile(allLat, 0.999),
        static_cast<unsigned long long>(evictions),
        static_cast<unsigned long long>(cross),
        static_cast<unsigned long long>(throttles));

    // Orderly teardown of the remaining fleet: every tenant leaves
    // through the same unregister path churn used, so the final
    // audits double as a teardown-storm regression.
    for (auto &w : workers)
        w->teardownAll();
    utlb::check::AuditReport post;
    stack.cache.audit(post);
    stack.pins.audit(post);
    if (!post.ok()) {
        std::cerr << post.summary();
        sim::fatal("fleet: post-teardown audit failed");
    }
    if (statTreeTableCount(stack.driver) != 0)
        sim::fatal("fleet: stat tree leaked host_table groups after "
                   "full teardown");
    if (!report.ok())
        sim::fatal("fleet: quiescent audit failed");
    return 0;
}
