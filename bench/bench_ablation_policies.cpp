/**
 * @file
 * Ablation: user-level replacement policies under memory pressure.
 *
 * §3.4 defines five application-selectable policies but §7 admits
 * "we only used LRU policy in this study; we have not explored
 * other choices." This ablation explores them: every workload runs
 * under a 4 MB per-process budget with each policy, reporting
 * unpins per lookup and the average lookup cost — quantifying how
 * much an application could gain by choosing its own policy.
 */

#include "bench_common.hpp"

#include "core/replacement.hpp"

int
main()
{
    using namespace bench;
    using utlb::core::PolicyKind;
    using utlb::tlbsim::SimConfig;
    using utlb::tlbsim::simulateUtlb;

    TraceSet traces;
    auto names = workloadNames();
    const std::vector<PolicyKind> policies{
        PolicyKind::Lru,  PolicyKind::Mru,  PolicyKind::Lfu,
        PolicyKind::Mfu,  PolicyKind::Fifo, PolicyKind::Random};

    utlb::sim::TextTable t(
        "Ablation: replacement policy under a 4 MB per-process "
        "budget (unpins per lookup | avg lookup cost, us; 8K cache)");
    std::vector<std::string> header{"Policy"};
    for (const auto &n : names)
        header.push_back(n);
    t.setHeader(header);

    for (auto policy : policies) {
        std::vector<std::string> row{utlb::core::toString(policy)};
        for (const auto &n : names) {
            SimConfig cfg;
            cfg.cache = {8192, 1, true};
            cfg.memLimitPages = 1024;
            cfg.policy = policy;
            auto res = simulateUtlb(traces.get(n), cfg);
            row.push_back(rate(res.unpinsPerLookup()) + " | "
                          + rate(res.avgLookupCostUs()));
        }
        t.addRow(row);
    }
    t.print(std::cout);

    std::cout << "\nReading the table: LRU is a solid default, but "
                 "cyclic-sweep workloads (fft's phases) favour MRU "
                 "or RANDOM,\nconfirming §3.4's case for "
                 "application-controlled replacement.\n";
    return 0;
}
