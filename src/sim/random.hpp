/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in the project (RANDOM replacement, task
 * queue workload generators, packet-loss injection) draws from an
 * explicitly-seeded Xorshift64* generator so that all experiments are
 * reproducible bit-for-bit. std::mt19937 is deliberately avoided in
 * hot paths; xorshift64* is 3 ops per draw and passes BigCrush for the
 * purposes we need.
 */

#ifndef UTLB_SIM_RANDOM_HPP
#define UTLB_SIM_RANDOM_HPP

#include <cstdint>

#include "sim/log.hpp"

namespace utlb::sim {

/** A small, fast, seedable PRNG (xorshift64*). */
class Rng
{
  public:
    /** Construct with a nonzero seed; 0 is remapped to a constant. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 0x9e3779b97f4a7c15ull)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        if (bound == 0)
            panic("Rng::below called with bound 0");
        // Modulo bias is negligible for bound << 2^64 (our use cases
        // are all bounded by table sizes < 2^32).
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        if (lo > hi)
            panic("Rng::range with lo > hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11)
            * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli trial with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    std::uint64_t state;
};

} // namespace utlb::sim

#endif // UTLB_SIM_RANDOM_HPP
