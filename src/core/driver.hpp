/**
 * @file
 * The UTLB device driver (§4.2).
 *
 * "The UTLB mechanism does not rely on OS modifications nor on
 * esoteric OS features. Only a device driver that accesses the OS
 * page-pinning and unpinning facility is required." This class is
 * that driver: it owns the pinned garbage page, allocates per-process
 * translation tables, and exposes the ioctl() the user-level library
 * calls to (a) lock pages and (b) fill translation entries.
 *
 * Costs: an ioctl pin/unpin charges the measured Table 1 batch curve
 * (syscall overhead included, since the paper measured through the
 * ioctl interface).
 */

#ifndef UTLB_CORE_DRIVER_HPP
#define UTLB_CORE_DRIVER_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>

#include "core/cost_model.hpp"
#include "core/shared_cache.hpp"
#include "core/translation_table.hpp"
#include "mem/address_space.hpp"
#include "mem/phys_memory.hpp"
#include "mem/pinning.hpp"
#include "nic/sram.hpp"
#include "sim/annotations.hpp"
#include "sim/mutex.hpp"
#include "sim/stats.hpp"

namespace utlb::core {

/** Result of a driver ioctl. */
struct IoctlResult {
    mem::PinStatus status = mem::PinStatus::Ok;
    sim::Tick cost = 0;          //!< modeled host time spent
    std::size_t pagesDone = 0;   //!< pages actually pinned/unpinned
};

/**
 * The VMMC/UTLB device driver.
 *
 * One driver instance per host; it manages every process using the
 * board. The driver keeps the host-resident Hierarchical-UTLB page
 * tables coherent with the pinning facility and the NIC shared
 * cache: an unpin always invalidates both the host table entry and
 * any cached NIC copy before the page becomes evictable.
 *
 * Thread safety: the ioctl entry points and process (un)registration
 * serialize on one internal mutex, like syscalls into a real driver
 * taking its lock — they touch the shared pin facility and physical
 * allocator, and they sit on the modeled-syscall slow path where a
 * lock is noise. Accessors that hand out references (pageTable,
 * nicTable, pinFacility, stats, audit) are not locked: use them only
 * after registration has quiesced and, for stats/audit, when no
 * worker is in an ioctl.
 */
class UtlbDriver
{
  public:
    UtlbDriver(mem::PhysMemory &host_mem, mem::PinFacility &pin_facility,
               nic::Sram &board_sram, SharedUtlbCache &cache,
               const HostCosts &costs);

    ~UtlbDriver();

    UtlbDriver(const UtlbDriver &) = delete;
    UtlbDriver &operator=(const UtlbDriver &) = delete;

    /** The always-pinned garbage frame (§4.2). */
    mem::Pfn garbageFrame() const { return garbagePfn; }

    /** The kernel pin facility this driver fronts. */
    const mem::PinFacility &pinFacility() const { return *pins; }

    /**
     * Register a process: creates its host-resident page table and
     * registers its address space with the pinning facility.
     */
    void registerProcess(mem::AddressSpace &space);

    /** Tear down a process: unpins all pages, drops cache entries. */
    void unregisterProcess(mem::ProcId pid);

    /** True if @p pid is registered. */
    bool isRegistered(mem::ProcId pid) const;

    /** The process' Hierarchical-UTLB page table. */
    HostPageTable &pageTable(mem::ProcId pid);

    /**
     * ioctl: pin [start, start+npages) and install the translations
     * into the process' host page table (all-or-nothing).
     *
     * On LimitExceeded/OutOfMemory nothing is pinned and the caller
     * (the user-level library) is expected to evict and retry.
     */
    IoctlResult ioctlPinAndInstall(mem::ProcId pid, mem::Vpn start,
                                   std::size_t npages);

    /**
     * ioctl: unpin @p npages pages starting at @p start,
     * invalidating host-table entries and NIC cache copies.
     * Pages in the range that are not pinned are skipped.
     */
    IoctlResult ioctlUnpinAndInvalidate(mem::ProcId pid, mem::Vpn start,
                                        std::size_t npages);

    /**
     * Create the per-process NIC-resident translation table used by
     * the §3.1 design. @p entries slots, garbage-initialized.
     */
    NicTranslationTable &createNicTable(mem::ProcId pid,
                                        std::size_t entries);

    /** The per-process NIC table (must have been created). */
    NicTranslationTable &nicTable(mem::ProcId pid);

    /**
     * ioctl for the per-process design: pin one page and install its
     * translation at @p index of the process' NIC table.
     */
    IoctlResult ioctlPinAtIndex(mem::ProcId pid, mem::Vpn vpn,
                                UtlbIndex index);

    /**
     * ioctl for the per-process design: unpin the page behind
     * @p index and reset the slot to the garbage frame.
     */
    IoctlResult ioctlUnpinIndex(mem::ProcId pid, mem::Vpn vpn,
                                UtlbIndex index);

    /**
     * @name Lifetime counters
     *
     * Quiescent-only accessors (class comment): they read mu-guarded
     * counters unlocked, by the same temporal contract as pageTable().
     * @{
     */
    std::uint64_t ioctlCalls() const UTLB_NO_THREAD_SAFETY_ANALYSIS
    {
        return statIoctls.value();
    }
    std::uint64_t pagesPinned() const UTLB_NO_THREAD_SAFETY_ANALYSIS
    {
        return statPagesPinned.value();
    }
    std::uint64_t pagesUnpinned() const UTLB_NO_THREAD_SAFETY_ANALYSIS
    {
        return statPagesUnpinned.value();
    }
    /** @} */

    /** The driver's statistics subtree. */
    sim::StatGroup &stats() { return statsGrp; }
    const sim::StatGroup &stats() const { return statsGrp; }

    /**
     * Invariant auditor: sweeps the garbage page, every registered
     * process' host page table, every NIC-resident table, and the
     * pin facility itself.
     */
    void audit(check::AuditReport &report) const;

  private:
    /**
     * Record an ioctl's outcome in the latency stats before returning
     * it. Called by the public wrappers *after* releasing the driver
     * mutex: the bookkeeping is not part of the modeled critical
     * section, and a rejected call — which only ever charges the
     * one-page syscall floor — must not stretch its hold of mu while
     * other workers' pins queue behind it. Rejects sample their own
     * histogram so ioctl_latency_us stays a pure success-cost
     * (Table 1) distribution.
     */
    IoctlResult record(IoctlResult res) UTLB_EXCLUDES(mu)
    {
        sim::LockGuard lk(statMu);
        if (res.status != mem::PinStatus::Ok) {
            ++statIoctlRejects;
            statIoctlRejectLatency.sample(sim::ticksToUs(res.cost));
        } else {
            statIoctlLatency.sample(sim::ticksToUs(res.cost));
        }
        return res;
    }

    /** @name Locked ioctl bodies (wrappers record() after unlock) @{ */
    IoctlResult pinAndInstallLocked(mem::ProcId pid, mem::Vpn start,
                                    std::size_t npages)
        UTLB_REQUIRES(mu);
    IoctlResult unpinAndInvalidateLocked(mem::ProcId pid,
                                         mem::Vpn start,
                                         std::size_t npages)
        UTLB_REQUIRES(mu);
    IoctlResult pinAtIndexLocked(mem::ProcId pid, mem::Vpn vpn,
                                 UtlbIndex index) UTLB_REQUIRES(mu);
    IoctlResult unpinIndexLocked(mem::ProcId pid, mem::Vpn vpn,
                                 UtlbIndex index) UTLB_REQUIRES(mu);
    /** @} */

    /** Serializes ioctls and (un)registration (see class comment). */
    sim::Mutex mu;

    /** Guards the latency/reject stats record() touches (post-mu). */
    sim::Mutex statMu;

    mem::PhysMemory *hostMem;
    mem::PinFacility *pins;
    nic::Sram *sram;
    SharedUtlbCache *nicCache;
    const HostCosts *hostCosts;

    /** Set once in the constructor, immutable afterwards. */
    mem::Pfn garbagePfn;

    /**
     * The per-process maps are the mu-guarded state: every ioctl and
     * (un)registration mutates or probes them under the lock. The
     * quiescent-only accessors (pageTable, nicTable, isRegistered,
     * audit) read them unlocked by documented contract and carry
     * UTLB_NO_THREAD_SAFETY_ANALYSIS at their definitions.
     */
    std::unordered_map<mem::ProcId, std::unique_ptr<HostPageTable>>
        tables UTLB_GUARDED_BY(mu);
    std::unordered_map<mem::ProcId,
                       std::unique_ptr<NicTranslationTable>>
        nicTables UTLB_GUARDED_BY(mu);
    std::unordered_map<mem::ProcId, mem::AddressSpace *>
        spaces UTLB_GUARDED_BY(mu);

    sim::StatGroup statsGrp{"driver"};
    sim::Counter statIoctls UTLB_GUARDED_BY(mu){
        &statsGrp, "ioctl_calls",
        "ioctl invocations (all four entry points)"};
    sim::Counter statIoctlRejects UTLB_GUARDED_BY(statMu){
        &statsGrp, "ioctl_rejects",
        "ioctls that returned a non-Ok status"};
    sim::Counter statPagesPinned UTLB_GUARDED_BY(mu){
        &statsGrp, "pages_pinned", "pages pinned through ioctls"};
    sim::Counter statPagesUnpinned UTLB_GUARDED_BY(mu){
        &statsGrp, "pages_unpinned",
        "pages unpinned through ioctls"};
    sim::Histogram statIoctlLatency UTLB_GUARDED_BY(statMu){
        &statsGrp, "ioctl_latency_us",
        "modeled cost per successful ioctl (Table 1 batch curve)",
        200.0, 40};
    sim::Histogram statIoctlRejectLatency UTLB_GUARDED_BY(statMu){
        &statsGrp, "ioctl_reject_latency_us",
        "modeled cost charged to rejected ioctls (syscall floor)",
        200.0, 40};
};

} // namespace utlb::core

#endif // UTLB_CORE_DRIVER_HPP
