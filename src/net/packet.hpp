/**
 * @file
 * Network packet representation.
 *
 * Myrinet is a switched point-to-point network with source routing;
 * VMMC-2 layers a link-level retransmission protocol on top (§4.1).
 * Packets here carry a small routing/protocol header plus a real
 * payload (bytes are actually moved end to end so integration tests
 * can verify data integrity).
 */

#ifndef UTLB_NET_PACKET_HPP
#define UTLB_NET_PACKET_HPP

#include <cstdint>
#include <vector>

namespace utlb::net {

/** Node (host/NIC) identifier within a cluster. */
using NodeId = std::uint32_t;

/** Link-level packet type. */
enum class PacketType : std::uint8_t {
    Data,      //!< remote-store fragment
    FetchReq,  //!< remote-fetch request (no payload)
    Ack,       //!< link-level cumulative acknowledgment
};

/** Wire-format header fields modeled explicitly. */
struct PacketHeader {
    PacketType type = PacketType::Data;
    NodeId src = 0;
    NodeId dst = 0;
    std::uint32_t seq = 0;        //!< link-level sequence number
    std::uint32_t ackSeq = 0;     //!< for Ack: cumulative ack

    // VMMC addressing.
    std::uint32_t transferId = 0; //!< sender-unique transfer tag
    std::uint32_t exportId = 0;   //!< receiver buffer handle
    std::uint64_t offset = 0;     //!< byte offset in that buffer
    std::uint32_t totalBytes = 0; //!< full transfer length

    // Fetch addressing (FetchReq only).
    std::uint32_t fetchBytes = 0;
    std::uint32_t replyExportId = 0;
    std::uint64_t replyOffset = 0;
};

/** Modeled header size on the wire. */
inline constexpr std::size_t kHeaderBytes = 40;

/** A packet: header + payload bytes. */
struct Packet {
    PacketHeader hdr;
    std::vector<std::uint8_t> payload;

    /** Bytes occupying the wire. */
    std::size_t wireBytes() const { return kHeaderBytes + payload.size(); }
};

} // namespace utlb::net

#endif // UTLB_NET_PACKET_HPP
