#include "sim/tracer.hpp"

#include <ostream>

#include "sim/json.hpp"

namespace utlb::sim {

void
Tracer::record(Event ev)
{
    if (recorded.size() >= maxEvents) {
        ++numDropped;
        return;
    }
    recorded.push_back(std::move(ev));
}

void
Tracer::complete(std::string_view name, std::string_view category,
                 std::uint32_t track, Tick dur,
                 std::initializer_list<TraceArg> args)
{
    Event ev{std::string(name), std::string(category), 'X', track,
             clock, dur, {}};
    for (const TraceArg &a : args)
        ev.args.emplace_back(a.key, a.value);
    record(std::move(ev));
    clock += dur;
}

void
Tracer::instant(std::string_view name, std::string_view category,
                std::uint32_t track,
                std::initializer_list<TraceArg> args)
{
    Event ev{std::string(name), std::string(category), 'i', track,
             clock, 0, {}};
    for (const TraceArg &a : args)
        ev.args.emplace_back(a.key, a.value);
    record(std::move(ev));
}

void
Tracer::clearEvents()
{
    recorded.clear();
    numDropped = 0;
}

void
Tracer::writeJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.field("displayTimeUnit", "ns");
    w.beginArray("traceEvents");
    for (const Event &ev : recorded) {
        w.beginObject();
        w.field("name", ev.name);
        w.field("cat", ev.category);
        w.field("ph", std::string_view(&ev.phase, 1));
        // Chrome trace timestamps are microseconds.
        w.field("ts", ticksToUs(ev.ts));
        if (ev.phase == 'X')
            w.field("dur", ticksToUs(ev.dur));
        else
            w.field("s", "t");  // instant scope: thread
        w.field("pid", std::uint64_t{ev.track});
        w.field("tid", std::uint64_t{0});
        if (!ev.args.empty()) {
            w.beginObject("args");
            for (const auto &[k, v] : ev.args)
                w.field(k, v);
            w.endObject();
        }
        w.endObject();
    }
    w.endArray();
    w.beginObject("metadata");
    w.field("dropped_events", std::uint64_t{numDropped});
    w.endObject();
    w.endObject();
    os << '\n';
}

} // namespace utlb::sim
