// Known-bad fixture for scripts/concurrency_lint.py (never compiled).
//
// A fill-queue-style sleep built on a bare std::condition_variable.
// The condvar's lock handoff is invisible to the clang thread-safety
// analysis, so a waiter that re-reads guarded state after waking is
// unchecked; src/ code must sleep through sim::CondVar::waitOn with
// a sim::UniqueLock.
//
// utlb-lint-expect: scoped-guard

#include <condition_variable>
#include <mutex>

struct BadQueue {
    std::mutex mu;
    // BAD: bare condvar; the analysis cannot tie the sleep to mu.
    std::condition_variable cv;
    int count = 0;

    void
    waitNonEmpty()
    {
        std::unique_lock<std::mutex> lk(mu);
        while (count == 0)
            cv.wait(lk);
    }
};
