/**
 * @file
 * Fault-injection backdoor for the invariant tests.
 *
 * Audited structures declare `friend struct check::TestTamper;`. The
 * struct itself is only *defined* by tests/test_invariants.cpp, whose
 * static member functions corrupt private state so the test can
 * prove each auditor detects the corruption. Production code never
 * defines it, so this grants no access outside the test binary.
 */

#ifndef UTLB_CHECK_TEST_TAMPER_HPP
#define UTLB_CHECK_TEST_TAMPER_HPP

namespace utlb::check {

struct TestTamper;

} // namespace utlb::check

#endif // UTLB_CHECK_TEST_TAMPER_HPP
