# Empty dependencies file for utlb_net.
# This may be replaced when dependencies are built.
