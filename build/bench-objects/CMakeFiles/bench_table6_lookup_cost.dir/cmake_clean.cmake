file(REMOVE_RECURSE
  "../bench/bench_table6_lookup_cost"
  "../bench/bench_table6_lookup_cost.pdb"
  "CMakeFiles/bench_table6_lookup_cost.dir/bench_table6_lookup_cost.cpp.o"
  "CMakeFiles/bench_table6_lookup_cost.dir/bench_table6_lookup_cost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_lookup_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
