/**
 * @file
 * Unit tests for the host memory substrate: physical memory,
 * address spaces, and the pinning facility.
 */

#include <gtest/gtest.h>

#include <array>
#include <numeric>

#include "mem/address_space.hpp"
#include "mem/page.hpp"
#include "mem/phys_memory.hpp"
#include "mem/pinning.hpp"

namespace {

using namespace utlb::mem;

TEST(Page, Helpers)
{
    EXPECT_EQ(kPageSize, 4096u);
    EXPECT_EQ(pageOf(0x12345), 0x12u);
    EXPECT_EQ(offsetOf(0x12345), 0x345u);
    EXPECT_EQ(addrOf(3), 3u * 4096u);
    EXPECT_EQ(frameAddr(2), 8192u);
}

TEST(Page, PagesSpanned)
{
    EXPECT_EQ(pagesSpanned(0, 0), 0u);
    EXPECT_EQ(pagesSpanned(0, 1), 1u);
    EXPECT_EQ(pagesSpanned(0, 4096), 1u);
    EXPECT_EQ(pagesSpanned(0, 4097), 2u);
    EXPECT_EQ(pagesSpanned(4095, 2), 2u);
    EXPECT_EQ(pagesSpanned(4096, 4096), 1u);
    EXPECT_EQ(pagesSpanned(100, 3 * 4096), 4u);
}

TEST(PhysMemory, AllocatesLowestFrameFirst)
{
    PhysMemory pm(4);
    EXPECT_EQ(*pm.allocFrame(1), 0u);
    EXPECT_EQ(*pm.allocFrame(1), 1u);
    EXPECT_EQ(*pm.allocFrame(2), 2u);
    EXPECT_EQ(pm.allocatedFrames(), 3u);
    EXPECT_EQ(pm.freeFrames(), 1u);
}

TEST(PhysMemory, TracksOwners)
{
    PhysMemory pm(2);
    auto f = *pm.allocFrame(7);
    EXPECT_EQ(pm.ownerOf(f), 7u);
    EXPECT_TRUE(pm.isAllocated(f));
    pm.freeFrame(f);
    EXPECT_EQ(pm.ownerOf(f), kNoOwner);
    EXPECT_FALSE(pm.isAllocated(f));
}

TEST(PhysMemory, ExhaustionReturnsNullopt)
{
    PhysMemory pm(1);
    EXPECT_TRUE(pm.allocFrame(1).has_value());
    EXPECT_FALSE(pm.allocFrame(1).has_value());
}

TEST(PhysMemory, FreedFramesAreReused)
{
    PhysMemory pm(1);
    auto f = *pm.allocFrame(1);
    pm.freeFrame(f);
    EXPECT_EQ(*pm.allocFrame(2), f);
}

TEST(PhysMemory, ReadWriteRoundTrips)
{
    PhysMemory pm(2);
    auto f = *pm.allocFrame(1);
    std::array<std::uint8_t, 8> in{1, 2, 3, 4, 5, 6, 7, 8};
    pm.write(frameAddr(f) + 100, in);
    std::array<std::uint8_t, 8> out{};
    pm.read(frameAddr(f) + 100, out);
    EXPECT_EQ(in, out);
}

TEST(PhysMemory, ZeroFrameClears)
{
    PhysMemory pm(1);
    auto f = *pm.allocFrame(1);
    std::array<std::uint8_t, 4> in{9, 9, 9, 9};
    pm.write(frameAddr(f), in);
    pm.zeroFrame(f);
    std::array<std::uint8_t, 4> out{1, 1, 1, 1};
    pm.read(frameAddr(f), out);
    EXPECT_EQ(out, (std::array<std::uint8_t, 4>{0, 0, 0, 0}));
}

TEST(AddressSpace, DemandMapsOnTouch)
{
    PhysMemory pm(4);
    AddressSpace as(1, pm);
    EXPECT_FALSE(as.lookup(5).has_value());
    auto f = as.touch(5);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(as.lookup(5), f);
    EXPECT_EQ(as.mappedPages(), 1u);
    // Touch again: same frame, no new allocation.
    EXPECT_EQ(as.touch(5), f);
    EXPECT_EQ(pm.allocatedFrames(), 1u);
}

TEST(AddressSpace, TranslateComposesFrameAndOffset)
{
    PhysMemory pm(4);
    AddressSpace as(1, pm);
    auto pa = as.translate(addrOf(3) + 123);
    ASSERT_TRUE(pa.has_value());
    auto f = *as.lookup(3);
    EXPECT_EQ(*pa, frameAddr(f) + 123);
}

TEST(AddressSpace, UnmapFreesFrame)
{
    PhysMemory pm(1);
    AddressSpace as(1, pm);
    as.touch(0);
    EXPECT_EQ(pm.allocatedFrames(), 1u);
    as.unmap(0);
    EXPECT_EQ(pm.allocatedFrames(), 0u);
    EXPECT_FALSE(as.lookup(0).has_value());
}

TEST(AddressSpace, DestructorReleasesEverything)
{
    PhysMemory pm(8);
    {
        AddressSpace as(1, pm);
        for (Vpn v = 0; v < 5; ++v)
            as.touch(v);
        EXPECT_EQ(pm.allocatedFrames(), 5u);
    }
    EXPECT_EQ(pm.allocatedFrames(), 0u);
}

TEST(AddressSpace, ByteAccessStraddlesPages)
{
    PhysMemory pm(8);
    AddressSpace as(1, pm);
    std::vector<std::uint8_t> in(3 * kPageSize);
    std::iota(in.begin(), in.end(), 0);
    VirtAddr va = addrOf(10) + 1000;  // straddles pages 10..13
    as.writeBytes(va, in);
    std::vector<std::uint8_t> out(in.size());
    as.readBytes(va, out);
    EXPECT_EQ(in, out);
    EXPECT_EQ(as.mappedPages(), 4u);
}

TEST(AddressSpace, SpacesAreIsolated)
{
    PhysMemory pm(4);
    AddressSpace a(1, pm), b(2, pm);
    std::array<std::uint8_t, 4> ain{1, 1, 1, 1}, bin{2, 2, 2, 2};
    a.writeBytes(0, ain);
    b.writeBytes(0, bin);
    std::array<std::uint8_t, 4> out{};
    a.readBytes(0, out);
    EXPECT_EQ(out, ain);
    b.readBytes(0, out);
    EXPECT_EQ(out, bin);
    EXPECT_NE(*a.lookup(0), *b.lookup(0));
}

class PinFacilityTest : public ::testing::Test
{
  protected:
    PinFacilityTest() : pm(64), as(1, pm)
    {
        pf.registerSpace(as);
    }

    PhysMemory pm;
    AddressSpace as;
    PinFacility pf;
};

TEST_F(PinFacilityTest, PinDemandMapsAndReturnsFrame)
{
    auto f = pf.pinPage(1, 10);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(as.lookup(10), f);
    EXPECT_TRUE(pf.isPinned(1, 10));
    EXPECT_EQ(pf.pinnedPages(1), 1u);
}

TEST_F(PinFacilityTest, PinsAreRefcounted)
{
    pf.pinPage(1, 3);
    pf.pinPage(1, 3);
    EXPECT_EQ(pf.pinRefs(1, 3), 2u);
    EXPECT_EQ(pf.pinnedPages(1), 1u);
    EXPECT_EQ(pf.unpinPage(1, 3), PinStatus::Ok);
    EXPECT_TRUE(pf.isPinned(1, 3));
    EXPECT_EQ(pf.unpinPage(1, 3), PinStatus::Ok);
    EXPECT_FALSE(pf.isPinned(1, 3));
}

TEST_F(PinFacilityTest, UnpinOfUnpinnedReportsNotPinned)
{
    EXPECT_EQ(pf.unpinPage(1, 99), PinStatus::NotPinned);
}

TEST_F(PinFacilityTest, UnknownProcessRejected)
{
    PinStatus st;
    EXPECT_FALSE(pf.pinPage(42, 0, &st).has_value());
    EXPECT_EQ(st, PinStatus::UnknownProcess);
}

TEST_F(PinFacilityTest, LimitCountsDistinctPages)
{
    pf.setPinLimit(1, 2);
    EXPECT_TRUE(pf.pinPage(1, 0).has_value());
    EXPECT_TRUE(pf.pinPage(1, 1).has_value());
    PinStatus st;
    EXPECT_FALSE(pf.pinPage(1, 2, &st).has_value());
    EXPECT_EQ(st, PinStatus::LimitExceeded);
    // Re-pinning an already-pinned page is not limited.
    EXPECT_TRUE(pf.pinPage(1, 0).has_value());
    // Unpinning frees budget.
    pf.unpinPage(1, 0);
    pf.unpinPage(1, 0);
    EXPECT_TRUE(pf.pinPage(1, 2).has_value());
}

TEST_F(PinFacilityTest, PinRangeIsAllOrNothing)
{
    pf.setPinLimit(1, 3);
    PinStatus st;
    auto frames = pf.pinRange(1, 0, 5, &st);
    EXPECT_FALSE(frames.has_value());
    EXPECT_EQ(st, PinStatus::LimitExceeded);
    EXPECT_EQ(pf.pinnedPages(1), 0u);  // rollback happened

    frames = pf.pinRange(1, 0, 3, &st);
    ASSERT_TRUE(frames.has_value());
    EXPECT_EQ(frames->size(), 3u);
    EXPECT_EQ(pf.pinnedPages(1), 3u);
}

TEST_F(PinFacilityTest, OutOfMemorySurfaces)
{
    PhysMemory tiny(1);
    AddressSpace space(9, tiny);
    PinFacility facility;
    facility.registerSpace(space);
    EXPECT_TRUE(facility.pinPage(9, 0).has_value());
    PinStatus st;
    EXPECT_FALSE(facility.pinPage(9, 1, &st).has_value());
    EXPECT_EQ(st, PinStatus::OutOfMemory);
}

TEST_F(PinFacilityTest, PinnedFrameIsStableAcrossOtherActivity)
{
    auto f = *pf.pinPage(1, 7);
    // Other pages come and go.
    for (Vpn v = 20; v < 30; ++v) {
        pf.pinPage(1, v);
        pf.unpinPage(1, v);
        as.unmap(v);
    }
    EXPECT_EQ(pf.pinnedFrame(1, 7), f);
    EXPECT_EQ(as.lookup(7), f);
}

TEST_F(PinFacilityTest, CountersTrackOps)
{
    pf.pinPage(1, 0);
    pf.pinPage(1, 0);
    pf.unpinPage(1, 0);
    pf.unpinPage(1, 0);
    pf.setPinLimit(1, 1);
    pf.pinPage(1, 1);
    PinStatus st;
    pf.pinPage(1, 2, &st);  // fails
    EXPECT_EQ(pf.totalPinOps(), 4u);
    EXPECT_EQ(pf.totalUnpinOps(), 2u);
    EXPECT_EQ(pf.totalPagesPinned(), 2u);
    EXPECT_EQ(pf.totalPagesUnpinned(), 1u);
    EXPECT_EQ(pf.totalFailedPins(), 1u);
}

TEST_F(PinFacilityTest, MultiProcessAccountingIsIndependent)
{
    AddressSpace as2(2, pm);
    pf.registerSpace(as2);
    pf.setPinLimit(1, 1);
    pf.pinPage(1, 0);
    EXPECT_TRUE(pf.pinPage(2, 0).has_value());  // separate budget
    EXPECT_EQ(pf.pinnedPages(1), 1u);
    EXPECT_EQ(pf.pinnedPages(2), 1u);
}

} // namespace

namespace {

TEST(PhysMemory, CapacityBytesMatchesFrames)
{
    PhysMemory pm(7);
    EXPECT_EQ(pm.capacityBytes(), 7u * kPageSize);
}

TEST(PhysMemory, ReallocatedFrameReadsAsZero)
{
    // Frames are zeroed on allocation: data never leaks between
    // owners through frame reuse.
    PhysMemory pm(1);
    auto f = *pm.allocFrame(1);
    std::array<std::uint8_t, 8> dirty{9, 9, 9, 9, 9, 9, 9, 9};
    pm.write(frameAddr(f), dirty);
    pm.freeFrame(f);
    auto f2 = *pm.allocFrame(2);
    ASSERT_EQ(f, f2);
    std::array<std::uint8_t, 8> out{1, 1, 1, 1, 1, 1, 1, 1};
    pm.read(frameAddr(f2), out);
    EXPECT_EQ(out, (std::array<std::uint8_t, 8>{}));
}

TEST_F(PinFacilityTest, UnregisterProcessDropsItsState)
{
    pf.pinPage(1, 5);
    pf.unregisterProcess(1);
    EXPECT_FALSE(pf.isPinned(1, 5));
    EXPECT_EQ(pf.pinnedPages(1), 0u);
    // Pins from an unregistered process are rejected again.
    PinStatus st;
    EXPECT_FALSE(pf.pinPage(1, 6, &st).has_value());
    EXPECT_EQ(st, PinStatus::UnknownProcess);
}

} // namespace
