/**
 * @file
 * Edge-case suite: boundary conditions and error paths that the
 * per-module suites do not reach — zero-length operations, leaf
 * boundaries, dead exports, batch unpins over partially-pinned
 * ranges, and defensive death checks.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/driver.hpp"
#include "core/translation_table.hpp"
#include "core/utlb.hpp"
#include "mem/address_space.hpp"
#include "mem/phys_memory.hpp"
#include "mem/pinning.hpp"
#include "net/network.hpp"
#include "nic/sram.hpp"
#include "nic/timing.hpp"
#include "sim/event_queue.hpp"
#include "vmmc/system.hpp"

namespace {

using namespace utlb;
using core::CacheConfig;
using core::HostCosts;
using core::HostPageTable;
using core::SharedUtlbCache;
using core::UserUtlb;
using core::UtlbConfig;
using core::UtlbDriver;
using mem::addrOf;
using mem::AddressSpace;
using mem::kPageSize;
using mem::PhysMemory;
using mem::PinFacility;
using mem::PinStatus;
using mem::Vpn;
using nic::NicTimings;
using nic::Sram;

class EdgeStack : public ::testing::Test
{
  protected:
    EdgeStack()
        : physMem(4096), sram(1 << 20),
          cache(CacheConfig{256, 1, true}, timings, &sram),
          driver(physMem, pins, sram, cache, costs), space(1, physMem)
    {
        driver.registerProcess(space);
    }

    HostCosts costs;
    NicTimings timings;
    PhysMemory physMem;
    PinFacility pins;
    Sram sram;
    SharedUtlbCache cache;
    UtlbDriver driver;
    AddressSpace space;
};

TEST_F(EdgeStack, ZeroLengthTranslateIsANoop)
{
    UserUtlb utlb(driver, cache, timings, 1, {});
    auto tr = utlb.translate(addrOf(10), 0);
    EXPECT_TRUE(tr.ok);
    EXPECT_TRUE(tr.pageAddrs.empty());
    EXPECT_EQ(tr.hostCost, 0u);
    EXPECT_EQ(pins.pinnedPages(1), 0u);
}

TEST_F(EdgeStack, ZeroPageIoctlsAreFreeAndSucceed)
{
    auto pin = driver.ioctlPinAndInstall(1, 10, 0);
    EXPECT_EQ(pin.status, PinStatus::Ok);
    EXPECT_EQ(pin.cost, 0u);
    EXPECT_EQ(pin.pagesDone, 0u);
}

TEST_F(EdgeStack, BatchUnpinSkipsUnpinnedHoles)
{
    // Pin pages 10 and 12 but not 11; a batch unpin of [10,13)
    // unpins exactly the two pinned pages.
    driver.ioctlPinAndInstall(1, 10, 1);
    driver.ioctlPinAndInstall(1, 12, 1);
    auto res = driver.ioctlUnpinAndInvalidate(1, 10, 3);
    EXPECT_EQ(res.status, PinStatus::Ok);
    EXPECT_EQ(res.pagesDone, 2u);
    EXPECT_FALSE(pins.isPinned(1, 10));
    EXPECT_FALSE(pins.isPinned(1, 12));
}

TEST_F(EdgeStack, PrefetchRequestLargerThanLeafTruncates)
{
    // Pin a run straddling a leaf boundary; a miss just before the
    // boundary fetches only up to the leaf's end (one DMA reads one
    // physically contiguous table).
    const Vpn boundary = HostPageTable::kLeafEntries;
    UtlbConfig cfg;
    cfg.prefetchEntries = 32;
    UserUtlb utlb(driver, cache, timings, 1, cfg);
    utlb.prepare(addrOf(boundary - 4), 8 * kPageSize);
    auto nl = utlb.nicTranslate(boundary - 4);
    EXPECT_TRUE(nl.miss);
    EXPECT_EQ(nl.fetched, 4u);  // truncated at the leaf edge
    // Pages past the boundary were not installed by this miss.
    EXPECT_FALSE(cache.peek(1, boundary).has_value());
    // ...but translate fine on their own (next leaf).
    auto nl2 = utlb.nicTranslate(boundary);
    EXPECT_TRUE(nl2.miss);
    EXPECT_FALSE(nl2.fault);
}

TEST_F(EdgeStack, LookupSpanningLeafBoundaryWorks)
{
    const Vpn boundary = HostPageTable::kLeafEntries;
    UserUtlb utlb(driver, cache, timings, 1, {});
    auto tr = utlb.translate(addrOf(boundary - 1), 2 * kPageSize);
    ASSERT_TRUE(tr.ok);
    ASSERT_EQ(tr.pageAddrs.size(), 2u);
    EXPECT_EQ(driver.pageTable(1).leafTables(), 2u);
    EXPECT_EQ(tr.faults, 0u);
}

TEST_F(EdgeStack, RepinningBumpsRefcountNotBudget)
{
    pins.setPinLimit(1, 4);
    driver.ioctlPinAndInstall(1, 0, 4);
    // Pin the same range again: refcounts go to 2, the limit is not
    // exceeded, and a single unpin leaves everything resident.
    auto res = driver.ioctlPinAndInstall(1, 0, 4);
    EXPECT_EQ(res.status, PinStatus::Ok);
    driver.ioctlUnpinAndInvalidate(1, 0, 4);
    for (Vpn v = 0; v < 4; ++v) {
        EXPECT_TRUE(pins.isPinned(1, v));
        EXPECT_TRUE(driver.pageTable(1).get(v).has_value());
    }
}

TEST(NetworkEdge, IsNodeDownReflectsState)
{
    sim::EventQueue eq;
    NicTimings t;
    net::Network net(eq, t, {2, 0.0, true, 1});
    EXPECT_FALSE(net.isNodeDown(0));
    net.setNodeDown(0, true);
    EXPECT_TRUE(net.isNodeDown(0));
    net.setNodeDown(0, false);
    EXPECT_FALSE(net.isNodeDown(0));
    // Unknown node queries are safe (false), setting them panics.
    EXPECT_FALSE(net.isNodeDown(99));
}

TEST(NetworkEdgeDeath, PacketToNonexistentNodePanics)
{
    EXPECT_DEATH(
        {
            sim::EventQueue eq;
            NicTimings t;
            net::Network net(eq, t, {2, 0.0, true, 1});
            net::Packet p;
            p.hdr.src = 0;
            p.hdr.dst = 7;
            net.send(std::move(p));
        },
        "nonexistent");
}

TEST(VmmcEdge, DepositToUnexportedBufferIsDroppedSafely)
{
    vmmc::ClusterConfig cfg;
    cfg.nodes = 2;
    vmmc::Cluster cluster(cfg);
    auto &a = cluster.node(0);
    auto &b = cluster.node(1);
    a.createProcess(1);
    b.createProcess(2);
    auto exp = b.exportBuffer(2, addrOf(20), kPageSize);
    auto slot = a.importBuffer(1, 1, *exp);

    std::vector<std::uint8_t> data(64, 7);
    a.space(1).writeBytes(addrOf(5), data);
    // Unexport *before* the transfer lands: the stale deposit is
    // dropped with a warning, not written through a dead handle.
    ASSERT_TRUE(a.send(1, addrOf(5), 64, slot, 0));
    b.unexportBuffer(*exp);
    cluster.run();
    EXPECT_EQ(b.bytesDeposited(), 0u);
    std::vector<std::uint8_t> got(64);
    b.space(2).readBytes(addrOf(20), got);
    EXPECT_EQ(std::count(got.begin(), got.end(), 0), 64);
}

TEST(VmmcEdge, RedirectOnDeadOrBogusExportFails)
{
    vmmc::ClusterConfig cfg;
    cfg.nodes = 1;
    vmmc::Cluster cluster(cfg);
    auto &n = cluster.node(0);
    n.createProcess(1);
    EXPECT_FALSE(n.redirect(42, addrOf(1)));   // never existed
    auto exp = n.exportBuffer(1, addrOf(10), kPageSize);
    n.unexportBuffer(*exp);
    EXPECT_FALSE(n.redirect(*exp, addrOf(1))); // dead
    EXPECT_FALSE(n.unredirect(*exp));
}

TEST(VmmcEdge, FetchBeyondExportBoundsIsClampedToNothing)
{
    vmmc::ClusterConfig cfg;
    cfg.nodes = 2;
    vmmc::Cluster cluster(cfg);
    auto &a = cluster.node(0);
    auto &b = cluster.node(1);
    a.createProcess(1);
    b.createProcess(2);
    auto exp = b.exportBuffer(2, addrOf(20), kPageSize);
    auto slot = a.importBuffer(1, 1, *exp);
    // Offset past the end of the exported buffer: the responder
    // sends nothing; the requester's transfer never completes but
    // the system stays healthy.
    ASSERT_TRUE(a.fetch(1, addrOf(50), 256, slot, 10 * kPageSize));
    cluster.run();
    EXPECT_EQ(a.transfersCompleted(), 0u);
    // Normal traffic still flows afterwards.
    ASSERT_TRUE(a.fetch(1, addrOf(60), 256, slot, 0));
    cluster.run();
    EXPECT_EQ(a.transfersCompleted(), 1u);
}

TEST(ReliableEdge, StaleAckDoesNotRewindTheWindow)
{
    sim::EventQueue eq;
    NicTimings t;
    net::Network net(eq, t, {2, 0.0, true, 1});
    vmmc::ReliableEndpoint a(0, net, eq), b(1, net, eq);
    std::size_t delivered = 0;
    net.attach(0, [&](const net::Packet &p) { a.onPacket(p); });
    net.attach(1, [&](const net::Packet &p) {
        if (b.onPacket(p))
            ++delivered;
    });
    for (int i = 0; i < 5; ++i) {
        net::Packet p;
        p.hdr.type = net::PacketType::Data;
        p.hdr.src = 0;
        p.hdr.dst = 1;
        a.sendReliable(std::move(p));
    }
    eq.run();
    EXPECT_EQ(delivered, 5u);
    EXPECT_EQ(a.unackedPackets(), 0u);
    // Replay an old ack out of the blue: must be ignored.
    net::Packet stale;
    stale.hdr.type = net::PacketType::Ack;
    stale.hdr.src = 1;
    stale.hdr.dst = 0;
    stale.hdr.ackSeq = 1;
    a.onPacket(stale);
    // New traffic continues with correct sequencing.
    net::Packet p;
    p.hdr.type = net::PacketType::Data;
    p.hdr.src = 0;
    p.hdr.dst = 1;
    a.sendReliable(std::move(p));
    eq.run();
    EXPECT_EQ(delivered, 6u);
    EXPECT_EQ(a.unackedPackets(), 0u);
}

} // namespace
