/**
 * @file
 * Minimal streaming JSON writer.
 *
 * Every machine-readable artifact this project emits — the stats
 * tree (`tlbsim --stats-json`), the Chrome trace-event stream
 * (`--trace-out`), and the bench harnesses' `BENCH_*.json` files —
 * goes through this one writer, so escaping and number formatting
 * are uniform and schema tests only have to trust one serializer.
 *
 * The writer is strictly streaming (no DOM): callers open and close
 * objects/arrays in order and the writer tracks comma placement and
 * indentation. Misnesting panics, since it would emit malformed JSON
 * that downstream tooling (catapult, jq, the golden tests) would
 * reject anyway.
 */

#ifndef UTLB_SIM_JSON_HPP
#define UTLB_SIM_JSON_HPP

#include <cmath>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "sim/log.hpp"

namespace utlb::sim {

/** Render @p s as a double-quoted JSON string with full escaping. */
inline void
jsonEscape(std::ostream &os, std::string_view s)
{
    os << '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"':  os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\b': os << "\\b"; break;
          case '\f': os << "\\f"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (c < 0x20) {
                static const char hex[] = "0123456789abcdef";
                os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
            } else {
                os << static_cast<char>(c);
            }
        }
    }
    os << '"';
}

/**
 * Streaming JSON writer with automatic comma/indent management.
 *
 * Inside an object use the field() overloads (key + value) and the
 * keyed beginObject/beginArray; inside an array use the value()
 * overloads and the unkeyed begin calls.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, bool pretty = true)
        : out(&os), prettyPrint(pretty)
    {}

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    /** @name Containers @{ */
    void beginObject() { open('{', nullptr); }
    void beginObject(std::string_view key) { open('{', &key); }
    void endObject() { close('}'); }
    void beginArray() { open('[', nullptr); }
    void beginArray(std::string_view key) { open('[', &key); }
    void endArray() { close(']'); }
    /** @} */

    /** @name Object fields @{ */
    void
    field(std::string_view key, std::string_view v)
    {
        prefix(&key);
        jsonEscape(*out, v);
    }

    void
    field(std::string_view key, const char *v)
    {
        field(key, std::string_view(v));
    }

    void
    field(std::string_view key, std::uint64_t v)
    {
        prefix(&key);
        *out << v;
    }

    void
    field(std::string_view key, double v)
    {
        prefix(&key);
        writeDouble(v);
    }

    void
    field(std::string_view key, bool v)
    {
        prefix(&key);
        *out << (v ? "true" : "false");
    }
    /** @} */

    /**
     * Embed pre-serialized JSON verbatim (the caller vouches for its
     * validity; indentation of the embedded text is preserved as-is).
     * @{
     */
    void
    rawField(std::string_view key, std::string_view json)
    {
        prefix(&key);
        *out << json;
    }

    void
    rawValue(std::string_view json)
    {
        prefix(nullptr);
        *out << json;
    }
    /** @} */

    /** @name Array elements @{ */
    void
    value(std::string_view v)
    {
        prefix(nullptr);
        jsonEscape(*out, v);
    }

    void
    value(std::uint64_t v)
    {
        prefix(nullptr);
        *out << v;
    }

    void
    value(double v)
    {
        prefix(nullptr);
        writeDouble(v);
    }
    /** @} */

    /** True once every opened container has been closed. */
    bool done() const { return depth.empty() && emitted; }

  private:
    struct Level {
        char kind;       //!< '{' or '['
        bool hasItems = false;
    };

    void
    writeDouble(double v)
    {
        // JSON has no NaN/Infinity literal; empty-histogram min/max
        // are +-inf, so map non-finite values to 0 rather than emit
        // a token every parser rejects.
        if (!std::isfinite(v))
            v = 0.0;
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.12g", v);
        *out << buf;
    }

    void
    prefix(const std::string_view *key)
    {
        if (!depth.empty()) {
            Level &top = depth.back();
            if ((top.kind == '{') != (key != nullptr))
                panic("JsonWriter: %s used inside %c",
                      key ? "keyed write" : "bare value", top.kind);
            if (top.hasItems)
                *out << ',';
            top.hasItems = true;
            newlineIndent();
        } else if (emitted) {
            panic("JsonWriter: multiple top-level values");
        }
        if (key) {
            jsonEscape(*out, *key);
            *out << (prettyPrint ? ": " : ":");
        }
        emitted = true;
    }

    void
    open(char kind, const std::string_view *key)
    {
        prefix(key);
        *out << kind;
        depth.push_back(Level{kind, false});
    }

    void
    close(char kind)
    {
        char closer = kind;
        char opener = (kind == '}') ? '{' : '[';
        if (depth.empty() || depth.back().kind != opener)
            panic("JsonWriter: mismatched close '%c'", closer);
        bool hadItems = depth.back().hasItems;
        depth.pop_back();
        if (hadItems)
            newlineIndent();
        *out << closer;
    }

    void
    newlineIndent()
    {
        if (!prettyPrint)
            return;
        *out << '\n';
        for (std::size_t i = 0; i < depth.size(); ++i)
            *out << "  ";
    }

    std::ostream *out;
    bool prettyPrint;
    bool emitted = false;
    std::vector<Level> depth;
};

} // namespace utlb::sim

#endif // UTLB_SIM_JSON_HPP
