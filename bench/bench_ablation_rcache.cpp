/**
 * @file
 * Ablation: UTLB page-granular pinning vs a modern (RDMA-era)
 * region-granular registration cache, on the same workload traces
 * and the same 4 MB per-process pin budget.
 *
 * The UTLB idea survives today as the registration caches in RDMA
 * stacks; the granularity changed. This bench quantifies the
 * trade: region registration batches pins (cheaper per page,
 * cheaper hit checks) but evicts whole regions (over-unpinning
 * under pressure), while the UTLB bitmap pins and evicts single
 * pages. Host-side cost per lookup tells the story per workload.
 */

#include "bench_common.hpp"

#include <map>
#include <memory>

#include "core/pin_manager.hpp"
#include "core/registration_cache.hpp"
#include "mem/address_space.hpp"
#include "mem/phys_memory.hpp"
#include "mem/pinning.hpp"

namespace {

using namespace utlb;
using mem::kPageSize;
using mem::ProcId;

struct HostSide {
    std::uint64_t pinned = 0;
    std::uint64_t unpinned = 0;
    double usPerLookup = 0.0;
};

/** Shared scaffolding for one replay. */
struct Node {
    explicit Node(std::size_t frames)
        : physMem(frames),
          cache({64, 1, true}, timings),
          driver(physMem, pins, sram, cache, costs)
    {}

    nic::NicTimings timings;
    core::HostCosts costs;
    mem::PhysMemory physMem;
    mem::PinFacility pins;
    nic::Sram sram{4u << 20};
    core::SharedUtlbCache cache;
    core::UtlbDriver driver;
    std::map<ProcId, std::unique_ptr<mem::AddressSpace>> spaces;

    void
    ensureProc(ProcId pid)
    {
        if (spaces.count(pid))
            return;
        auto space =
            std::make_unique<mem::AddressSpace>(pid, physMem);
        driver.registerProcess(*space);
        spaces.emplace(pid, std::move(space));
    }
};

HostSide
runUtlb(const trace::Trace &tr, std::size_t budget_pages)
{
    Node node(trace::measure(tr).distinctPages * 3 + 1024);
    std::map<ProcId, std::unique_ptr<core::PinManager>> mgrs;
    HostSide out;
    sim::Tick cost = 0;
    for (const auto &rec : tr) {
        node.ensureProc(rec.pid);
        auto it = mgrs.find(rec.pid);
        if (it == mgrs.end()) {
            core::PinManagerConfig cfg;
            cfg.memLimitPages = budget_pages;
            it = mgrs.emplace(rec.pid,
                              std::make_unique<core::PinManager>(
                                  node.driver, rec.pid, cfg))
                     .first;
        }
        auto r = it->second->ensurePinned(
            mem::pageOf(rec.va), mem::pagesSpanned(rec.va, rec.nbytes));
        cost += r.cost;
        out.pinned += r.pagesPinned;
        out.unpinned += r.pagesUnpinned;
    }
    out.usPerLookup = sim::ticksToUs(cost)
        / static_cast<double>(tr.size());
    return out;
}

HostSide
runRcache(const trace::Trace &tr, std::size_t budget_pages)
{
    Node node(trace::measure(tr).distinctPages * 3 + 1024);
    std::map<ProcId,
             std::unique_ptr<core::RegistrationCache>> caches;
    HostSide out;
    sim::Tick cost = 0;
    for (const auto &rec : tr) {
        node.ensureProc(rec.pid);
        auto it = caches.find(rec.pid);
        if (it == caches.end()) {
            core::RegCacheConfig cfg;
            cfg.maxBytes = budget_pages * kPageSize;
            it = caches
                     .emplace(rec.pid,
                              std::make_unique<
                                  core::RegistrationCache>(
                                  node.driver, rec.pid, cfg))
                     .first;
        }
        auto r = it->second->acquire(rec.va, rec.nbytes);
        cost += r.cost;
        out.pinned += r.pagesPinned;
        out.unpinned += r.pagesUnpinned;
    }
    out.usPerLookup = sim::ticksToUs(cost)
        / static_cast<double>(tr.size());
    return out;
}

} // namespace

int
main()
{
    using namespace bench;
    constexpr std::size_t kBudgetPages = 1024;  // 4 MB, Table 5's

    utlb::sim::TextTable t(
        "UTLB page-granular pinning vs RDMA-style registration cache "
        "(4 MB/process budget; host-side us per lookup | pages "
        "pinned | pages unpinned)");
    t.setHeader({"workload", "UTLB bitmap", "registration cache"});

    for (const auto &name : workloadNames()) {
        auto tr = utlb::trace::generateTrace(name);
        auto u = runUtlb(tr, kBudgetPages);
        auto r = runRcache(tr, kBudgetPages);
        auto cell = [](const HostSide &h) {
            return utlb::sim::TextTable::num(h.usPerLookup, 2) + " | "
                + utlb::sim::TextTable::num(h.pinned) + " | "
                + utlb::sim::TextTable::num(h.unpinned);
        };
        t.addRow({name, cell(u), cell(r)});
    }
    t.print(std::cout);

    std::cout << "\nReading the table: when the working set fits the "
                 "budget the two are equivalent (same pins, zero "
                 "unpins) and the\nrcache's cheaper interval lookup "
                 "wins slightly. Under pressure the granularity "
                 "trade appears: on lu the rcache\nunpins 50% more "
                 "pages (whole-region eviction) yet costs 30% less "
                 "per lookup because deregistration is one\nbatched "
                 "ioctl instead of page-at-a-time unpins — the same "
                 "batching argument as the paper's own Table 7.\n";
    return 0;
}
