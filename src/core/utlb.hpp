/**
 * @file
 * The Hierarchical-UTLB facade (§3.3 + §3.2 + §6.4).
 *
 * UserUtlb ties together the pieces a process uses to translate a
 * buffer for communication:
 *
 *  host side  — the pin manager's bit-vector check and demand-driven
 *               pinning via the driver ioctl (prepare());
 *  NIC side   — the Shared UTLB-Cache probe and, on a miss, a DMA
 *               fetch of up to prefetchEntries consecutive entries
 *               from the host-resident page table (nicTranslate()).
 *
 * translate() runs both halves for a full buffer, one page at a time
 * (the Myrinet firmware "breaks down data transfer at 4 KB page
 * boundaries. Translation lookups are performed one page at a
 * time", §5 footnote).
 *
 * If the NIC ever finds an invalid host-table entry (the page was
 * not pinned — only possible when a caller bypasses prepare()), it
 * falls back to interrupting the host to pin the page (§3.1's
 * safety note), which is counted in nicFaults.
 */

#ifndef UTLB_CORE_UTLB_HPP
#define UTLB_CORE_UTLB_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/driver.hpp"
#include "core/pin_manager.hpp"
#include "core/shared_cache.hpp"
#include "nic/timing.hpp"
#include "sim/small_vector.hpp"
#include "sim/stats.hpp"
#include "sim/tracer.hpp"

namespace utlb::core {

/** Configuration of one process' UTLB view. */
struct UtlbConfig {
    PinManagerConfig pin;

    /**
     * Entries fetched from the host table per NIC cache miss
     * (§6.4 prefetching); 1 = no prefetch.
     */
    std::size_t prefetchEntries = 1;

    /**
     * Let posted fills' modeled DMA time survive translateRange()
     * window boundaries: each outstanding-fill slot is a modeled DMA
     * engine whose busy-until time persists on the view, so a fill
     * still in flight when a window ends charges nothing at the edge
     * — its residual cost is paid lazily, by the first later post
     * that needs the engine before it is ready. Models the paper's
     * firmware keeping translation-miss DMAs outstanding across
     * message boundaries. false restores the per-window accounting
     * (every fill settled at its own window's end). Translation
     * *results* are identical either way; only the modeled cost
     * attribution differs.
     */
    bool asyncCarryFills = true;

    /**
     * Build this process' UTLB view for multi-threaded use: arms the
     * shared cache's striped locking and the pin manager's mutex,
     * and gives this instance a per-worker stat shard. One thread
     * drives each UserUtlb (the instance itself is not shared); the
     * shared cache and driver below it are then safe to hit from all
     * such workers at once. Works at any associativity: lookups read
     * the ways optimistically under per-set seqlock versions, writes
     * serialize on the striped locks.
     *
     * With a single worker, results, modeled costs, and the stats
     * tree (after flushShardStats) are bit-identical to the
     * sequential mode — concurrency changes wall-clock behaviour
     * only.
     */
    bool concurrent = false;
};

class FillPipeline;
struct FillTicket;

/**
 * Outcome of servicing one NIC-cache miss: the host-table fetch,
 * the optional fault-repair ioctl, and the cache installs. Shared
 * between the synchronous miss path (UserUtlb::nicTranslate) and the
 * asynchronous fill thread (FillPipeline), so both charge the same
 * modeled costs and count the same statistics.
 */
struct MissOutcome {
    mem::Pfn pfn = mem::kInvalidPfn;
    sim::Tick cost = 0;     //!< modeled service cost (probe excluded)
    bool fault = false;     //!< host-table entry was invalid
    bool ok = false;        //!< pfn is a real frame, not garbage
    std::size_t fetched = 0;          //!< entries installed
    std::size_t prefetchInstalls = 0; //!< neighbours among them
};

/**
 * Service a Shared UTLB-Cache miss for (pid, vpn): DMA up to
 * @p width consecutive host-table entries, repair an invalid first
 * entry by interrupting the host (the §3.1 fault path), and install
 * every valid entry fetched. @p runBuf / @p repairBuf are caller
 * scratch (the miss path must not allocate); @p shard selects the
 * concurrent install path; @p tracer may be null.
 *
 * Fault repair reuses the initial wide fetch: when the wide DMA
 * returned valid neighbours around an invalid first entry, only the
 * repaired entry is re-fetched (1-wide) and spliced into the run, so
 * the neighbours already transferred are installed — and counted —
 * exactly once.
 */
MissOutcome serviceMiss(UtlbDriver &driver, SharedUtlbCache &cache,
                        const nic::NicTimings &timings, mem::ProcId pid,
                        mem::Vpn vpn, std::size_t width,
                        std::vector<std::optional<mem::Pfn>> &runBuf,
                        std::vector<std::optional<mem::Pfn>> &repairBuf,
                        SharedUtlbCache::Shard *shard,
                        sim::Tracer *tracer);

/** NIC-side outcome for one page. */
struct NicLookup {
    mem::Pfn pfn = mem::kInvalidPfn;
    sim::Tick cost = 0;
    bool miss = false;
    bool fault = false;       //!< host-table entry was invalid
    std::size_t fetched = 0;  //!< entries installed on a miss (valid
                              //!< slots of the DMAed run, not its
                              //!< raw width)
};

/** Full translation of a user buffer. */
struct Translation {
    bool ok = true;
    /** One physical address per page. Small-buffer storage: the
     *  common short translations (single-page lookups especially)
     *  stay heap-free. */
    sim::SmallVector<mem::PhysAddr, 8> pageAddrs;
    sim::Tick hostCost = 0;
    sim::Tick nicCost = 0;
    sim::Tick pinCost = 0;        //!< portion of hostCost in pin ioctls
    sim::Tick unpinCost = 0;      //!< portion of hostCost in unpins
    bool checkMiss = false;
    std::size_t niMisses = 0;
    std::size_t pagesPinned = 0;
    std::size_t pagesUnpinned = 0;
    std::size_t pinIoctls = 0;
    std::size_t unpinIoctls = 0;
    std::size_t faults = 0;
    /** Indices (page offsets in the buffer) that missed in the NIC
     *  cache, ascending. */
    sim::SmallVector<std::uint32_t, 8> missPages;
};

/**
 * A process' handle on the Hierarchical-UTLB.
 *
 * One instance per (process, NIC) pair; all instances on a node
 * share the same SharedUtlbCache and UtlbDriver.
 */
class UserUtlb
{
  public:
    UserUtlb(UtlbDriver &drv, SharedUtlbCache &cache,
             const nic::NicTimings &timings, mem::ProcId pid,
             const UtlbConfig &cfg);

    /** Flushes any remaining shard deltas (concurrent mode). */
    ~UserUtlb();

    mem::ProcId pid() const { return procId; }
    const UtlbConfig &config() const { return cfg; }

    /** True if built with UtlbConfig::concurrent. */
    bool concurrent() const { return shard.has_value(); }

    /**
     * Concurrent mode: fold this worker's buffered shared-cache stat
     * deltas into the cache's global counters. Call after the worker
     * quiesces (and before reading the stats tree); the destructor
     * also flushes. No-op in sequential mode.
     */
    void flushShardStats();

    /**
     * Host-side half: make sure every page of [va, va+nbytes) is
     * pinned with translations installed.
     */
    EnsureResult prepare(mem::VirtAddr va, std::size_t nbytes);

    /** NIC-side half: translate one virtual page. */
    NicLookup nicTranslate(mem::Vpn vpn);

    /** Both halves over a whole buffer. */
    Translation translate(mem::VirtAddr va, std::size_t nbytes);

    /**
     * Batched translate(): identical results, modeled costs, and
     * stats as translate() over the same buffer, but the NIC half
     * probes the cache across the whole run at once (lookupRun),
     * serves repeated same-page lookups from a per-process MRU "L0"
     * line handle, and lets each miss's prefetch-width DMA refill
     * the run so contiguous misses coalesce into wide fetches. Falls
     * back to the per-page loop when a tracer is attached or the
     * cache is set-associative (per-way probe costs need per-page
     * accounting).
     */
    Translation translateRange(mem::VirtAddr va, std::size_t nbytes);

    /**
     * Attach the NIC's asynchronous fill pipeline (concurrent mode
     * only; fatal otherwise). translateRange() then services misses
     * out of order: each miss posts a fill request and the walk keeps
     * serving later hits while the fill thread DMAs the entries;
     * results are collected before the call returns. Hits never
     * touch the queue, so hit service is never blocked by an
     * in-flight fill. When the queue is full (or stopped) a miss
     * falls back to the synchronous path, so translation *results*
     * are identical either way; modeled costs differ by design — a
     * fill's DMA ticks run on a modeled fill-engine timeline and only
     * the residual stall at collection is charged to the window, so
     * nicCost reflects the overlap (docs/performance.md). Pass
     * nullptr to detach.
     */
    void attachFillPipeline(FillPipeline *fp);

    /** The attached fill pipeline, or nullptr. */
    FillPipeline *fillPipeline() { return fillPipe; }

    PinManager &pinManager() { return pinMgr; }
    const PinManager &pinManager() const { return pinMgr; }

    /** NIC-side fault counter (unpinned page seen by the NIC). */
    std::uint64_t nicFaults() const { return statFaults.value(); }

    /**
     * Attach an event tracer; nicTranslate() then emits the miss
     * path (cache probe -> table DMA read -> pin ioctl -> install)
     * as Chrome trace events. Pass nullptr to detach.
     */
    void setTracer(sim::Tracer *t) { tracer = t; }

    /** This process' statistics subtree (pin manager nested). */
    sim::StatGroup &stats() { return statsGrp; }
    const sim::StatGroup &stats() const { return statsGrp; }

  private:
    NicLookup nicTranslateImpl(mem::Vpn vpn);

    /**
     * The asynchronous NIC half of translateRange(): batched lookups
     * with misses posted to the fill pipeline; pending fills are
     * collected (demand pages first, then pages covered by a
     * neighbour's in-flight fill) before returning. @p slots receives
     * pfns, converted to frame addresses by the caller.
     */
    void nicRangeAsync(mem::Vpn start, std::size_t npages,
                       mem::Pfn *slots, Translation &tr);

    /** Service one missing page synchronously (shared tail). */
    void syncServicePage(mem::Vpn vpn, sim::Tick probeCost,
                         mem::Pfn &slot, Translation &tr);

    UtlbDriver *driver;
    SharedUtlbCache *nicCache;
    const nic::NicTimings *timings;
    mem::ProcId procId;
    UtlbConfig cfg;
    PinManager pinMgr;
    sim::Tracer *tracer = nullptr;

    /** Reused readRun buffer: the miss path must not allocate. */
    std::vector<std::optional<mem::Pfn>> runBuf;

    /** Scratch for the fault path's 1-wide repair re-fetch. */
    std::vector<std::optional<mem::Pfn>> repairBuf;

    /**
     * Outstanding fills this view may have in flight at once — the
     * model's bounded outstanding-DMA window. Misses beyond it (or
     * past a full queue) are serviced synchronously.
     */
    static constexpr std::size_t kMaxOutstandingFills = 8;

    /** Attached fill pipeline (nullptr = synchronous miss service). */
    FillPipeline *fillPipe = nullptr;

    /** This view's fill tickets (allocated on first attach). */
    std::unique_ptr<FillTicket[]> tickets;

    /** One in-flight fill of the current window. */
    struct PendingFill {
        std::uint32_t page;  //!< page index within the buffer
        std::uint32_t slot;  //!< modeled DMA engine (ticket index)
        sim::Tick probeCost; //!< the missing probe's modeled cost
        sim::Tick postTick;  //!< modeled post time (view clock)
        FillTicket *ticket;
    };

    /** In-flight fills of the current window, in post order. */
    std::vector<PendingFill> asyncPending;

    /** Pages covered by an in-flight neighbour fill (re-probed). */
    std::vector<std::uint32_t> asyncWaiters;

    /**
     * Cross-window modeled state (asyncCarryFills): the view's
     * persistent modeled clock, and per outstanding-fill slot the
     * modeled time its DMA engine frees up. engineReadyAt[k] >
     * asyncClock means slot k's last fill is still in flight at the
     * model level even though its wall-clock ticket has completed —
     * the residual is charged to whichever later post next needs
     * that engine.
     */
    sim::Tick asyncClock = 0;
    std::vector<sim::Tick> engineReadyAt;

    /**
     * Per-worker shared-cache context (concurrent mode only). Like
     * runBuf and l0, this is single-owner state: one thread drives
     * this UserUtlb, so no lock guards it.
     */
    std::optional<SharedUtlbCache::Shard> shard;

    /** MRU "L0" slot: the line that served the last first-page hit. */
    SharedUtlbCache::LineRef l0;

    sim::StatGroup statsGrp;
    sim::Counter statMisses{&statsGrp, "nic_misses",
                            "NIC cache misses seen by this process"};
    sim::Counter statFaults{&statsGrp, "nic_faults",
                            "unpinned host-table entries hit by the "
                            "NIC (prepare() bypassed)"};
    sim::Counter statPrefetchInstalls{&statsGrp, "prefetch_installs",
                                      "speculative neighbour entries "
                                      "installed alongside misses"};
    sim::Counter statAsyncFills{&statsGrp, "async_fills",
                                "misses serviced through the fill "
                                "pipeline"};
    sim::Counter statAsyncCoalesced{&statsGrp, "async_coalesced",
                                    "missing pages covered by an "
                                    "already in-flight fill"};
    sim::Counter statAsyncFallbacks{&statsGrp, "async_sync_fallbacks",
                                    "misses serviced synchronously "
                                    "because the fill queue was full, "
                                    "stopped, or the outstanding "
                                    "window was exhausted"};
    sim::Counter statAsyncCarried{&statsGrp, "async_carried_fills",
                                  "fills whose modeled DMA was still "
                                  "in flight when their window ended "
                                  "(residual cost carried into a "
                                  "later window)"};
    sim::Counter statAsyncHiddenTicks{&statsGrp, "async_hidden_ticks",
                                      "modeled miss-service ticks "
                                      "hidden behind concurrent hit "
                                      "service (DMA time off the "
                                      "window's critical path)"};
    sim::Histogram statTranslateLatency{
        &statsGrp, "translate_latency_us",
        "modeled per-page NIC translation latency", 50.0, 50};
};

} // namespace utlb::core

#endif // UTLB_CORE_UTLB_HPP
