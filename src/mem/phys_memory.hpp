/**
 * @file
 * Simulated host physical memory.
 *
 * A frame allocator over a real byte array: DMA transfers in the NIC
 * model copy actual bytes through this store, so end-to-end VMMC tests
 * can verify data integrity, not just bookkeeping.
 */

#ifndef UTLB_MEM_PHYS_MEMORY_HPP
#define UTLB_MEM_PHYS_MEMORY_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "mem/page.hpp"
#include "sim/mutex.hpp"

namespace utlb::mem {

/** Owner tag for an unallocated frame. */
inline constexpr ProcId kNoOwner = ~ProcId{0};

/**
 * Host DRAM: a pool of 4 KB frames with owner tracking and byte
 * storage.
 *
 * Frames are allocated lowest-free-first from an explicit freelist so
 * that allocation order is deterministic (important for reproducible
 * physical layouts in the trace-driven experiments).
 */
class PhysMemory
{
  public:
    /** Construct with @p frames frames of kPageSize bytes each. */
    explicit PhysMemory(std::size_t frames);

    /**
     * Arm internal locking of the allocator bookkeeping (idempotent).
     * Until called the allocator is single-threaded and entry points
     * pay no lock. The sharded driver arms it because host-table
     * leaf allocation and demand mapping run under different shard
     * locks concurrently. Only allocFrame/freeFrame and the owner
     * queries serialize; the byte-store data plane (read/write/
     * zeroFrame) stays lock-free — frames are owner-private.
     * Allocation order stays deterministic per interleaving (the
     * freelist is unchanged); with one shard the interleaving is the
     * sequential one, so results are bit-identical.
     */
    void enableConcurrent()
    {
        if (!mu)
            mu = std::make_unique<sim::Mutex>();
    }

    /** Total number of frames. */
    std::size_t totalFrames() const { return owners.size(); }

    /** Capacity in bytes. */
    std::size_t capacityBytes() const
    {
        return owners.size() * kPageSize;
    }

    /** Frames currently allocated. */
    std::size_t allocatedFrames() const { return numAllocated; }

    /** Frames still free. */
    std::size_t freeFrames() const { return owners.size() - numAllocated; }

    /**
     * Allocate one frame for @p owner. The frame's contents are
     * zeroed (the backing store is lazily mapped and deliberately
     * not pre-initialized, so freshly simulated DRAM is cheap even
     * at multi-GB sizes).
     * @return the frame number, or nullopt if memory is exhausted.
     */
    std::optional<Pfn> allocFrame(ProcId owner);

    /** Release a frame. @pre the frame is allocated. */
    void freeFrame(Pfn pfn);

    /** Owner of @p pfn, or kNoOwner. */
    ProcId ownerOf(Pfn pfn) const;

    /** True if @p pfn is currently allocated. */
    bool isAllocated(Pfn pfn) const;

    /** Read @p out.size() bytes starting at physical address @p pa. */
    void read(PhysAddr pa, std::span<std::uint8_t> out) const;

    /** Write @p in to physical memory starting at @p pa. */
    void write(PhysAddr pa, std::span<const std::uint8_t> in);

    /** Zero-fill one frame. */
    void zeroFrame(Pfn pfn);

    /** Lifetime counters. */
    std::uint64_t totalAllocs() const { return numAllocs; }
    std::uint64_t totalFrees() const { return numFrees; }

  private:
    void checkRange(PhysAddr pa, std::size_t len) const;

    /** The opt-in allocator lock (see enableConcurrent). */
    sim::OptionalLockGuard guard() const
    {
        return sim::OptionalLockGuard(mu.get());
    }

    mutable std::unique_ptr<sim::Mutex> mu;

    std::unique_ptr<std::uint8_t[]> bytes;  //!< zeroed on allocFrame
    std::vector<ProcId> owners;
    std::vector<Pfn> freeList;  //!< kept sorted descending; pop_back
    std::size_t numAllocated = 0;
    std::uint64_t numAllocs = 0;
    std::uint64_t numFrees = 0;
};

} // namespace utlb::mem

#endif // UTLB_MEM_PHYS_MEMORY_HPP
