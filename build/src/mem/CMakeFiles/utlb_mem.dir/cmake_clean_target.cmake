file(REMOVE_RECURSE
  "libutlb_mem.a"
)
