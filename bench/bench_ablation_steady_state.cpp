/**
 * @file
 * Ablation: cold-start vs steady-state translation behaviour.
 *
 * The paper's tables include the cold start (compulsory misses and
 * first-use pinning dominate several rows). This ablation separates
 * the phases: full-trace statistics vs statistics collected only
 * after the first half of the trace has warmed the pin set and the
 * NIC cache. The steady state is where UTLB's "keep translations
 * alive" property pays: for reuse-heavy apps the steady-state UTLB
 * cost collapses to the 1.3 us check+hit floor, while the interrupt
 * baseline keeps paying for cache-eviction churn.
 */

#include "bench_common.hpp"

int
main()
{
    using namespace bench;
    using utlb::tlbsim::SimConfig;
    using utlb::tlbsim::simulateIntr;
    using utlb::tlbsim::simulateUtlb;

    TraceSet traces;

    utlb::sim::TextTable t(
        "Cold-start vs steady-state (2K-entry cache): check-miss / "
        "probe-miss / avg cost (us)");
    t.setHeader({"workload", "phase", "UTLB check", "UTLB miss",
                 "UTLB cost", "Intr miss", "Intr cost"});

    for (const auto &name : workloadNames()) {
        const auto &tr = traces.get(name);
        for (bool steady : {false, true}) {
            SimConfig cfg;
            cfg.cache = {2048, 1, true};
            cfg.warmupLookups = steady ? tr.size() / 2 : 0;
            auto u = simulateUtlb(tr, cfg);
            auto i = simulateIntr(tr, cfg);
            t.addRow({steady ? "" : name,
                      steady ? "steady" : "full",
                      rate(u.checkMissPerLookup()),
                      rate(u.probeMissRate()),
                      rate(u.avgLookupCostUs()),
                      rate(i.probeMissRate()),
                      rate(i.avgLookupCostUs())});
        }
        t.addRule();
    }
    t.print(std::cout);

    std::cout << "\nReading the table: reuse-heavy apps (barnes, "
                 "water, volrend) drop to near-zero steady-state "
                 "check misses — the\nUTLB common path with no "
                 "syscalls or interrupts — while streaming apps "
                 "(lu, radix) keep their compulsory\ncomponent in "
                 "both phases, as their steady state still touches "
                 "new pages.\n";
    return 0;
}
