/**
 * @file
 * Multi-core throughput harness: aggregate translations per second
 * with 1..N worker threads driving the concurrent UTLB stack.
 *
 * Like bench_hotpath this measures the simulator's wall clock, not
 * the modeled machine: concurrency never changes results, modeled
 * costs, or stats (asserted below and by tests/test_concurrency.cpp)
 * — only how fast the host chews through them.
 *
 * Scenarios (bench_mt_common.hpp):
 *   mt_warm          disjoint per-worker ranges, all NIC-cache hits:
 *                    workers share no lock stripe, the shard-local
 *                    scaling ceiling;
 *   mt_miss_prefetch all workers sweep the same sets under their own
 *                    pids: stripe locks, miss DMAs, and evictions
 *                    stay contended;
 *   mt_pin_churn     disjoint sweeps under a per-process pin limit
 *                    half the working set: every window sheds and
 *                    repins pages, so the PinManager mutex and the
 *                    coherence-invalidate path carry the load;
 *   mt_warm_assoc4   the warm disjoint sweep at 4-way associativity:
 *                    page-at-a-time lookupMT through the per-set
 *                    seqlock way search.
 *
 * Before timing anything, a fixed-iteration golden check replays an
 * identical workload through a sequential-mode and a concurrent-mode
 * single-worker stack and dies unless every per-call field and the
 * full stats tree match bit-for-bit.
 *
 * UTLB_MT_MS bounds the per-cell budget (default 300 ms);
 * UTLB_MT_THREADS caps the sweep (default 4). BENCH_mt.json records
 * threads, aggregate pages/sec, and scaling_efficiency
 * (pages/sec at N threads over N x the 1-thread rate). Efficiency
 * only exceeds ~1/N x hardware_concurrency when real cores back the
 * workers — host_info records both counts so readers can judge.
 */

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_mt_common.hpp"
#include "sim/stats.hpp"
#include "sim/table.hpp"

namespace {

using namespace utlb;
using bench::MtCell;
using bench::MtScenario;
using bench::MtStack;

double
budgetMs()
{
    if (const char *e = std::getenv("UTLB_MT_MS")) {
        double v = std::atof(e);
        if (v > 0)
            return v;
    }
    return 300.0;
}

unsigned
maxThreads()
{
    if (const char *e = std::getenv("UTLB_MT_THREADS")) {
        int v = std::atoi(e);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    return 4;
}

} // namespace

int
main()
{
    const MtScenario scenarios[] = {bench::kMtWarm,
                                    bench::kMtMissPrefetch,
                                    bench::kMtPinChurn,
                                    bench::kMtWarmAssoc4};
    double ms = budgetMs();
    unsigned nmax = maxThreads();

    bench::JsonReporter json("mt");
    json.setWorkerThreads(nmax);
    sim::TextTable table("multi-thread wall clock ("
                         + sim::TextTable::num(ms, 0) + " ms/cell, "
                         + std::to_string(nmax) + " threads max)");
    table.setHeader({"scenario", "threads", "agg pages/sec",
                     "ns/page", "modeled us/page", "efficiency"});

    for (const MtScenario &sc : scenarios) {
        std::string divergence = bench::mtGoldenDivergence(sc);
        if (!divergence.empty())
            sim::fatal("%s", divergence.c_str());
        json.add({{"scenario", sc.name}, {"mode", "golden"}},
                 {{"golden_equivalence", 1.0}});

        double base = 0.0;
        for (unsigned t = 1; t <= nmax; t *= 2) {
            MtStack stack(sc, t, true);
            MtCell cell = runMtCell(sc, stack, t, ms);
            double pps = cell.pagesPerSec();
            if (t == 1)
                base = pps;
            double eff = (base > 0 && t > 0)
                ? pps / (static_cast<double>(t) * base)
                : 0.0;
            table.addRow({sc.name, std::to_string(t),
                          sim::TextTable::num(pps, 0),
                          sim::TextTable::num(cell.nsPerPage(), 1),
                          sim::TextTable::num(
                              cell.modeledUsPerPage(), 3),
                          sim::TextTable::num(eff, 2)});
            json.add({{"scenario", sc.name},
                      {"mode", "mt"},
                      {"threads", std::to_string(t)}},
                     {{"threads", static_cast<double>(t)},
                      {"pages_per_sec", pps},
                      {"wall_ns", cell.wallNs},
                      {"ns_per_page", cell.nsPerPage()},
                      {"modeled_us_per_page",
                       cell.modeledUsPerPage()},
                      {"scaling_efficiency", eff}});
        }
    }
    table.print(std::cout);
    return 0;
}
