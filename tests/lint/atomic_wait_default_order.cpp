// Known-bad fixture for scripts/concurrency_lint.py (never compiled).
//
// C++20 atomic wait and the compare_exchange pair relying on the
// seq_cst default. A completion flag's wait must spell the acquire
// it pairs with the publisher's release, and a CAS must state both
// its success and failure orders — the defaults hide the protocol.
//
// utlb-lint-expect: memory-order

#include <atomic>

void
awaitFillDone(std::atomic<bool> &done)
{
    // BAD: defaulted order on the blocking wait.
    done.wait(false);
}

bool
claimTicket(std::atomic<int> &state)
{
    int expected = 0;
    // BAD: defaulted success/failure orders on the CAS.
    return state.compare_exchange_strong(expected, 1);
}
