// Known-bad fixture for scripts/concurrency_lint.py (never compiled).
//
// `volatile` used as a thread-communication flag. volatile is not a
// synchronization primitive: it neither orders surrounding accesses
// nor makes the access atomic.
//
// utlb-lint-expect: memory-order

// BAD: a volatile stop flag shared between threads.
volatile bool gStopRequested = false;

void
requestStop()
{
    gStopRequested = true;
}
