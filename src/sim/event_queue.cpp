#include "sim/event_queue.hpp"

#include <utility>

#include "check/audit.hpp"
#include "check/check.hpp"
#include "sim/log.hpp"

namespace utlb::sim {

void
EventQueue::schedule(Tick when, EventFn fn)
{
    if (when < curTick) {
        panic("event scheduled in the past (when=%llu now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(curTick));
    }
    heap.push(Entry{when, nextSeq++, std::move(fn)});
}

Tick
EventQueue::run()
{
    while (step()) {
        // run to empty
    }
    return curTick;
}

std::uint64_t
EventQueue::runUntil(Tick horizon)
{
    std::uint64_t count = 0;
    while (!heap.empty() && heap.top().when <= horizon) {
        step();
        ++count;
    }
    if (curTick < horizon)
        curTick = horizon;
    return count;
}

bool
EventQueue::step()
{
    if (heap.empty())
        return false;
    // Copy out before pop: the callback may schedule new events.
    Entry e = heap.top();
    heap.pop();
    UTLB_ASSERT(e.when >= curTick,
                "event %llu fires at %llu, before the current tick "
                "%llu",
                static_cast<unsigned long long>(e.seq),
                static_cast<unsigned long long>(e.when),
                static_cast<unsigned long long>(curTick));
    curTick = e.when;
    ++numFired;
    e.fn();
    return true;
}

void
EventQueue::clear()
{
    while (!heap.empty())
        heap.pop();
}

void
EventQueue::audit(check::AuditReport &report) const
{
    report.component("event-queue");
    if (!heap.empty()) {
        const Entry &next = heap.top();
        report.require(next.when >= curTick,
                       "next event (seq %llu) is scheduled at %llu, "
                       "in the past of tick %llu",
                       static_cast<unsigned long long>(next.seq),
                       static_cast<unsigned long long>(next.when),
                       static_cast<unsigned long long>(curTick));
        report.require(next.seq < nextSeq,
                       "pending event carries sequence %llu >= the "
                       "allocator's next %llu",
                       static_cast<unsigned long long>(next.seq),
                       static_cast<unsigned long long>(nextSeq));
    }
    // Every sequence number ever handed out was either fired,
    // dropped by clear(), or is still pending; fired + pending can
    // never exceed the total handed out.
    report.require(numFired + heap.size() <= nextSeq,
                   "%llu fired + %zu pending events exceed the %llu "
                   "sequence numbers ever issued",
                   static_cast<unsigned long long>(numFired),
                   heap.size(),
                   static_cast<unsigned long long>(nextSeq));
}

} // namespace utlb::sim
