/**
 * @file
 * Google-benchmark micro suite for the hot data structures: the
 * Shared UTLB-Cache probe/insert paths, the user-level lookup tree,
 * the pin bit vector, replacement policy operations, the host page
 * table, and the event queue. These measure *wall-clock* cost of
 * the simulator itself (not simulated time) — they gate performance
 * regressions in the library.
 */

#include <benchmark/benchmark.h>

#include "core/bitvector.hpp"
#include "core/lookup_tree.hpp"
#include "core/driver.hpp"
#include "core/pin_manager.hpp"
#include "core/registration_cache.hpp"
#include "core/replacement.hpp"
#include "core/shared_cache.hpp"
#include "core/translation_table.hpp"
#include "mem/address_space.hpp"
#include "mem/phys_memory.hpp"
#include "mem/pinning.hpp"
#include "nic/timing.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"

namespace {

using namespace utlb;

void
BM_CacheLookupHit(benchmark::State &state)
{
    nic::NicTimings t;
    core::SharedUtlbCache cache(
        {static_cast<std::size_t>(state.range(0)),
         static_cast<unsigned>(state.range(1)), true}, t);
    for (mem::Vpn v = 0; v < 512; ++v)
        cache.insert(1, v, v);
    mem::Vpn v = 0;
    for (auto _ : state) {
        auto probe = cache.lookup(1, v % 512);
        benchmark::DoNotOptimize(probe);
        ++v;
    }
}
BENCHMARK(BM_CacheLookupHit)
    ->Args({1024, 1})
    ->Args({8192, 1})
    ->Args({8192, 4});

void
BM_CacheInsertEvict(benchmark::State &state)
{
    nic::NicTimings t;
    core::SharedUtlbCache cache({1024, 2, true}, t);
    mem::Vpn v = 0;
    for (auto _ : state) {
        auto evicted = cache.insert(1, v, v + 1);
        ++v;
        benchmark::DoNotOptimize(evicted);
    }
}
BENCHMARK(BM_CacheInsertEvict);

void
BM_LookupTreeGet(benchmark::State &state)
{
    core::LookupTree tree;
    for (mem::Vpn v = 0; v < 10000; v += 2)
        tree.set(v, static_cast<core::UtlbIndex>(v));
    mem::Vpn v = 0;
    for (auto _ : state) {
        auto idx = tree.get(v % 10000);
        benchmark::DoNotOptimize(idx);
        ++v;
    }
}
BENCHMARK(BM_LookupTreeGet);

void
BM_BitVectorCheckRange(benchmark::State &state)
{
    core::PinBitVector bits;
    for (mem::Vpn v = 0; v < 4096; ++v)
        bits.set(v);
    mem::Vpn v = 0;
    for (auto _ : state) {
        auto res = bits.checkRange(v % 4000, state.range(0));
        benchmark::DoNotOptimize(res);
        ++v;
    }
}
BENCHMARK(BM_BitVectorCheckRange)->Arg(1)->Arg(8)->Arg(32);

void
BM_PolicyAccessVictim(benchmark::State &state)
{
    auto policy = core::ReplacementPolicy::create(
        static_cast<core::PolicyKind>(state.range(0)));
    for (mem::Vpn v = 0; v < 1024; ++v)
        policy->onInsert(v);
    sim::Rng rng(7);
    for (auto _ : state) {
        policy->onAccess(rng.below(1024));
        auto victim = policy->victim({});
        benchmark::DoNotOptimize(victim);
    }
}
BENCHMARK(BM_PolicyAccessVictim)
    ->Arg(static_cast<int>(core::PolicyKind::Lru))
    ->Arg(static_cast<int>(core::PolicyKind::Lfu))
    ->Arg(static_cast<int>(core::PolicyKind::Random));

void
BM_HostPageTableSetGet(benchmark::State &state)
{
    mem::PhysMemory phys_mem(512);
    core::HostPageTable table(phys_mem, 1);
    mem::Vpn v = 0;
    for (auto _ : state) {
        table.set(v % 65536, v);
        auto e = table.get(v % 65536);
        benchmark::DoNotOptimize(e);
        ++v;
    }
}
BENCHMARK(BM_HostPageTableSetGet);

void
BM_HostPageTableReadRun(benchmark::State &state)
{
    mem::PhysMemory phys_mem(512);
    core::HostPageTable table(phys_mem, 1);
    for (mem::Vpn v = 0; v < 4096; ++v)
        table.set(v, v);
    mem::Vpn v = 0;
    for (auto _ : state) {
        auto run = table.readRun(v % 4000, state.range(0));
        benchmark::DoNotOptimize(run);
        ++v;
    }
}
BENCHMARK(BM_HostPageTableReadRun)->Arg(1)->Arg(8)->Arg(32);

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        int fired = 0;
        for (int i = 0; i < 256; ++i)
            eq.schedule(static_cast<sim::Tick>((i * 37) % 101),
                        [&fired] { ++fired; });
        eq.run();
        benchmark::DoNotOptimize(fired);
    }
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_PinManagerEnsureHit(benchmark::State &state)
{
    mem::PhysMemory phys_mem(4096);
    mem::PinFacility pins;
    nic::Sram sram;
    nic::NicTimings timings;
    core::HostCosts costs;
    core::SharedUtlbCache cache({1024, 1, true}, timings);
    core::UtlbDriver driver(phys_mem, pins, sram, cache, costs);
    mem::AddressSpace space(1, phys_mem);
    driver.registerProcess(space);
    core::PinManager mgr(driver, 1, {});
    mgr.ensurePinned(0, 512);
    mem::Vpn v = 0;
    for (auto _ : state) {
        auto r = mgr.ensurePinned(v % 500, 4);
        benchmark::DoNotOptimize(r);
        ++v;
    }
}
BENCHMARK(BM_PinManagerEnsureHit);

void
BM_RcacheAcquireHit(benchmark::State &state)
{
    mem::PhysMemory phys_mem(4096);
    mem::PinFacility pins;
    nic::Sram sram;
    nic::NicTimings timings;
    core::HostCosts costs;
    core::SharedUtlbCache cache({1024, 1, true}, timings);
    core::UtlbDriver driver(phys_mem, pins, sram, cache, costs);
    mem::AddressSpace space(1, phys_mem);
    driver.registerProcess(space);
    core::RegistrationCache rc(driver, 1, {});
    rc.acquire(mem::addrOf(0), 512 * mem::kPageSize);
    mem::Vpn v = 0;
    for (auto _ : state) {
        auto r = rc.acquire(mem::addrOf(v % 500), 4 * mem::kPageSize);
        benchmark::DoNotOptimize(r);
        ++v;
    }
}
BENCHMARK(BM_RcacheAcquireHit);

} // namespace

BENCHMARK_MAIN();
