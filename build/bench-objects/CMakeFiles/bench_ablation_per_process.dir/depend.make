# Empty dependencies file for bench_ablation_per_process.
# This may be replaced when dependencies are built.
