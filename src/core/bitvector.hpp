/**
 * @file
 * Pinned-page bit vector (§3.3, Figure 4).
 *
 * Under Hierarchical-UTLB the user-level library "only needs a bit
 * array to maintain the memory-pinning status of virtual pages". The
 * check procedure scans the bits covering a buffer; its cost varies
 * with where the first zero bit falls in a machine word (Table 1
 * reports min and max costs over all bit positions), which this
 * class models explicitly.
 */

#ifndef UTLB_CORE_BITVECTOR_HPP
#define UTLB_CORE_BITVECTOR_HPP

#include <bit>
#include <cstdint>
#include <optional>
#include <vector>

#include "check/test_tamper.hpp"
#include "mem/page.hpp"
#include "sim/types.hpp"

namespace utlb::check {
class AuditReport;
} // namespace utlb::check

namespace utlb::core {

/** Result of a pin-status check over a page range. */
struct CheckResult {
    bool allPinned;                 //!< every page in range pinned
    mem::Vpn firstUnpinned;         //!< valid iff !allPinned
    std::size_t wordsScanned;       //!< bitmap words touched
    sim::Tick cost;                 //!< modeled host time
};

/**
 * A growable bit vector over virtual page numbers.
 *
 * Bits are stored in 64-bit words; checkRange() reports how many
 * words it scanned and the modeled cost, reproducing Table 1's
 * position-dependent check timing (0.2 us best case, up to 0.7 us
 * over 32 pages).
 */
class PinBitVector
{
  public:
    PinBitVector() = default;

    /** Set the pinned bit of @p vpn. */
    void set(mem::Vpn vpn);

    /** Clear the pinned bit of @p vpn. */
    void clear(mem::Vpn vpn);

    /** Test a single page. */
    bool test(mem::Vpn vpn) const;

    /** Number of set bits. */
    std::size_t count() const { return numSet; }

    /**
     * Scan [start, start + npages) for the first unpinned page.
     *
     * The modeled cost is a base charge plus a per-word charge,
     * stopping at the first zero bit — i.e. the check is cheapest
     * when the first page is already unpinned and most expensive
     * when the whole range must be scanned.
     */
    CheckResult checkRange(mem::Vpn start, std::size_t npages) const;

    /**
     * True if every page of [start, start + npages) is set. Scans a
     * whole 64-page word per iteration; an empty range is trivially
     * all-set.
     */
    bool allSetInRange(mem::Vpn start, std::size_t npages) const;

    /**
     * First clear page in [start, start + npages), or nullopt if the
     * range is fully set. Word-at-a-time scan.
     */
    std::optional<mem::Vpn>
    firstClearInRange(mem::Vpn start, std::size_t npages) const;

    /**
     * First set page in [start, start + npages), or nullopt if the
     * range is fully clear. Word-at-a-time scan.
     */
    std::optional<mem::Vpn>
    firstSetInRange(mem::Vpn start, std::size_t npages) const;

    /** Bytes of user memory consumed by the bitmap. */
    std::size_t footprintBytes() const { return words.size() * 8; }

    /**
     * Visit every set bit in ascending page order. A template so the
     * per-bit call inlines (auditors sweep the whole map; an indirect
     * call per set bit dominated the sweep).
     */
    template <typename Fn>
    void
    forEachSet(Fn &&fn) const
    {
        for (std::size_t w = 0; w < words.size(); ++w) {
            std::uint64_t word = words[w];
            while (word != 0) {
                auto bit =
                    static_cast<unsigned>(std::countr_zero(word));
                fn(static_cast<mem::Vpn>(w * 64 + bit));
                word &= word - 1;
            }
        }
    }

    /**
     * Invariant auditor: recounts the population from the raw words
     * and reports any disagreement with the cached count().
     */
    void audit(check::AuditReport &report) const;

  private:
    friend struct check::TestTamper;

    bool wordPresent(std::uint64_t w) const { return w < words.size(); }
    void ensure(std::uint64_t word_index);

    std::vector<std::uint64_t> words;
    std::size_t numSet = 0;
};

} // namespace utlb::core

#endif // UTLB_CORE_BITVECTOR_HPP
