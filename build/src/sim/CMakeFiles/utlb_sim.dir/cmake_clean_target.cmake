file(REMOVE_RECURSE
  "libutlb_sim.a"
)
