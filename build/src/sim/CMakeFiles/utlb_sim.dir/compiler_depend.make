# Empty compiler generated dependencies file for utlb_sim.
# This may be replaced when dependencies are built.
